// Figure 3: the database operations — Add Table, Project, Restrict, Sample,
// Join — over the Stations and Observations relations of §4.
//
// Reproduction: runs each operation on the demo data and reports
// cardinalities. Benchmarks: Restrict selectivity sweep, Project width,
// Sample probability sweep, and the hash-vs-nested-loop join ablation
// (DESIGN.md §4).

#include "bench/bench_common.h"

#include "db/aggregates.h"
#include "db/operators.h"

namespace tioga2::bench {
namespace {

db::RelationPtr Stations(size_t extra) {
  return Must(data::MakeStations(extra, 7), "stations");
}

db::RelationPtr Observations(const db::Relation& stations, size_t days) {
  return Must(
      data::MakeObservations(stations, types::Date::FromYmd(1985, 1, 1), days, 8),
      "observations");
}

void Report() {
  ReportHeader("Figure 3", "operations on relations (Add Table/Project/Restrict/Sample/Join)");
  auto stations = Stations(500);
  auto observations = Observations(*stations, 30);
  std::printf("  Stations: %zu rows, Observations: %zu rows\n", stations->num_rows(),
              observations->num_rows());
  auto la = Must(db::Restrict(stations, "state = \"LA\""), "restrict");
  std::printf("  Restrict(state = \"LA\"): %zu rows\n", la->num_rows());
  auto projected = Must(db::Project(la, {"name", "longitude", "latitude"}), "project");
  std::printf("  Project(name, longitude, latitude): schema %s\n",
              projected->schema()->ToString().c_str());
  auto sampled = Must(db::Sample(observations, 0.1, 42), "sample");
  std::printf("  Sample(p=0.1): %zu of %zu rows\n", sampled->num_rows(),
              observations->num_rows());
  auto joined = Must(db::Join(la, observations, "station_id = station_id_2"), "join");
  std::printf("  Join(stations x observations): %zu rows via %s join\n",
              joined.relation->num_rows(),
              joined.algorithm == db::JoinAlgorithm::kHash ? "hash" : "nested-loop");
}

void BM_Restrict(benchmark::State& state) {
  auto stations = Stations(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(db::Restrict(stations, "altitude > 3000"));
  }
  state.counters["rows"] = static_cast<double>(stations->num_rows());
}
BENCHMARK(BM_Restrict)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_RestrictCompoundPredicate(benchmark::State& state) {
  auto stations = Stations(10000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db::Restrict(
        stations,
        "(state = \"LA\" or state = \"TX\") and altitude < 2000 and "
        "contains(name, \"STATION\")"));
  }
}
BENCHMARK(BM_RestrictCompoundPredicate);

void BM_Project(benchmark::State& state) {
  auto stations = Stations(10000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db::Project(stations, {"name", "longitude", "latitude"}));
  }
}
BENCHMARK(BM_Project);

void BM_Sample(benchmark::State& state) {
  auto stations = Stations(100000);
  double probability = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db::Sample(stations, probability, 42));
  }
  state.counters["p"] = probability;
}
BENCHMARK(BM_Sample)->Arg(1)->Arg(10)->Arg(50)->Arg(100);

void BM_HashJoin(benchmark::State& state) {
  auto stations = Stations(static_cast<size_t>(state.range(0)));
  auto observations = Observations(*stations, 10);
  for (auto _ : state) {
    auto joined = db::Join(stations, observations, "station_id = station_id_2");
    benchmark::DoNotOptimize(joined);
  }
  state.counters["left"] = static_cast<double>(stations->num_rows());
  state.counters["right"] = static_cast<double>(observations->num_rows());
}
BENCHMARK(BM_HashJoin)->Arg(100)->Arg(500)->Arg(2000);

void BM_NestedLoopJoin(benchmark::State& state) {
  auto stations = Stations(static_cast<size_t>(state.range(0)));
  auto observations = Observations(*stations, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db::NestedLoopJoin(stations, observations, "station_id = station_id_2"));
  }
  state.counters["left"] = static_cast<double>(stations->num_rows());
  state.counters["right"] = static_cast<double>(observations->num_rows());
}
BENCHMARK(BM_NestedLoopJoin)->Arg(100)->Arg(500);

void BM_Sort(benchmark::State& state) {
  auto stations = Stations(50000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db::Sort(stations, "altitude"));
  }
}
BENCHMARK(BM_Sort);

void BM_GroupBy(benchmark::State& state) {
  auto stations = Stations(static_cast<size_t>(state.range(0)));
  auto observations = Observations(*stations, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db::GroupBy(
        observations, {"station_id"},
        {db::AggSpec{db::AggFn::kCount, "", "n"},
         db::AggSpec{db::AggFn::kAvg, "temperature", "avg_t"},
         db::AggSpec{db::AggFn::kMax, "precipitation", "max_p"}}));
  }
  state.counters["rows"] = static_cast<double>(observations->num_rows());
}
BENCHMARK(BM_GroupBy)->Arg(100)->Arg(1000)->Arg(5000);

}  // namespace
}  // namespace tioga2::bench

int main(int argc, char** argv) {
  tioga2::bench::Report();
  return tioga2::bench::RunBenchmarks(argc, argv);
}
