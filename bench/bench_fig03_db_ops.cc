// Figure 3: the database operations — Add Table, Project, Restrict, Sample,
// Join — over the Stations and Observations relations of §4.
//
// Reproduction: runs each operation on the demo data and reports
// cardinalities. Benchmarks: Restrict selectivity sweep, Project width,
// Sample probability sweep, and the hash-vs-nested-loop join ablation
// (DESIGN.md §4).

#include "bench/bench_common.h"

#include <chrono>
#include <fstream>

#include "db/aggregates.h"
#include "db/operators.h"

namespace tioga2::bench {
namespace {

db::RelationPtr Stations(size_t extra) {
  return Must(data::MakeStations(extra, 7), "stations");
}

db::RelationPtr Observations(const db::Relation& stations, size_t days) {
  return Must(
      data::MakeObservations(stations, types::Date::FromYmd(1985, 1, 1), days, 8),
      "observations");
}

void Report() {
  ReportHeader("Figure 3", "operations on relations (Add Table/Project/Restrict/Sample/Join)");
  auto stations = Stations(500);
  auto observations = Observations(*stations, 30);
  std::printf("  Stations: %zu rows, Observations: %zu rows\n", stations->num_rows(),
              observations->num_rows());
  auto la = Must(db::Restrict(stations, "state = \"LA\""), "restrict");
  std::printf("  Restrict(state = \"LA\"): %zu rows\n", la->num_rows());
  auto projected = Must(db::Project(la, {"name", "longitude", "latitude"}), "project");
  std::printf("  Project(name, longitude, latitude): schema %s\n",
              projected->schema()->ToString().c_str());
  auto sampled = Must(db::Sample(observations, 0.1, 42), "sample");
  std::printf("  Sample(p=0.1): %zu of %zu rows\n", sampled->num_rows(),
              observations->num_rows());
  auto joined = Must(db::Join(la, observations, "station_id = station_id_2"), "join");
  std::printf("  Join(stations x observations): %zu rows via %s join\n",
              joined.relation->num_rows(),
              joined.algorithm == db::JoinAlgorithm::kHash ? "hash" : "nested-loop");
}

void BM_Restrict(benchmark::State& state) {
  auto stations = Stations(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(db::Restrict(stations, "altitude > 3000"));
  }
  state.counters["rows"] = static_cast<double>(stations->num_rows());
}
BENCHMARK(BM_Restrict)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_RestrictScalar(benchmark::State& state) {
  // Tuple-at-a-time baseline for the vectorized Restrict above; predicate is
  // precompiled in both so the delta is pure evaluation-loop cost.
  auto stations = Stations(static_cast<size_t>(state.range(0)));
  auto predicate =
      Must(db::CompilePredicate(stations->schema(), "altitude > 3000"), "compile");
  for (auto _ : state) {
    benchmark::DoNotOptimize(db::RestrictScalar(stations, predicate));
  }
  state.counters["rows"] = static_cast<double>(stations->num_rows());
}
BENCHMARK(BM_RestrictScalar)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_RestrictVectorized(benchmark::State& state) {
  auto stations = Stations(static_cast<size_t>(state.range(0)));
  auto predicate =
      Must(db::CompilePredicate(stations->schema(), "altitude > 3000"), "compile");
  stations->columnar();  // materialize outside the timed loop
  for (auto _ : state) {
    benchmark::DoNotOptimize(db::Restrict(stations, predicate));
  }
  state.counters["rows"] = static_cast<double>(stations->num_rows());
}
BENCHMARK(BM_RestrictVectorized)->Arg(1000)->Arg(10000)->Arg(100000);

/// Hand-timed scalar-vs-vectorized comparison, exported as JSON so the
/// speedup is recorded alongside the render artifacts (see README "Running
/// the benchmarks"). google-benchmark's own numbers for BM_RestrictScalar /
/// BM_RestrictVectorized should agree; this report exists so a single run
/// leaves a machine-readable record in bench_out/.
void WriteColumnarReport() {
  auto stations = Stations(100000);
  // ~5% selectivity: evaluation cost dominates, so this isolates the
  // vectorized evaluator. The 50% cut measures the blended cost where
  // copying the surviving tuples (paid identically by both paths) dominates.
  auto selective =
      Must(db::CompilePredicate(stations->schema(), "altitude > 5700"), "compile");
  auto half =
      Must(db::CompilePredicate(stations->schema(), "altitude > 3000"), "compile");
  auto compound = Must(db::CompilePredicate(
                           stations->schema(),
                           "(state = \"LA\" or state = \"TX\") and altitude < 2000 "
                           "and contains(name, \"STATION\")"),
                       "compile");
  stations->columnar();  // pay the one-time materialization up front

  auto time_us = [](auto&& fn) {
    constexpr int kIters = 15;
    fn();  // warm-up
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kIters; ++i) benchmark::DoNotOptimize(fn());
    auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(end - start).count() / kIters;
  };

  double restrict_scalar_us =
      time_us([&] { return db::RestrictScalar(stations, selective); });
  double restrict_vec_us = time_us([&] { return db::Restrict(stations, selective); });
  double half_scalar_us = time_us([&] { return db::RestrictScalar(stations, half); });
  double half_vec_us = time_us([&] { return db::Restrict(stations, half); });
  double compound_scalar_us =
      time_us([&] { return db::RestrictScalar(stations, compound); });
  double compound_vec_us = time_us([&] { return db::Restrict(stations, compound); });

  db::ExecPolicy scalar_policy;
  scalar_policy.vectorized = false;
  double sort_scalar_us =
      time_us([&] { return db::Sort(stations, "altitude", true, scalar_policy); });
  double sort_vec_us = time_us([&] { return db::Sort(stations, "altitude"); });

  auto section = [](const char* name, double scalar_us, double vec_us) {
    std::string json = "\"";
    json += name;
    json += "\":{\"scalar_us\":" + std::to_string(scalar_us) +
            ",\"vectorized_us\":" + std::to_string(vec_us) +
            ",\"speedup\":" + std::to_string(scalar_us / vec_us) + "}";
    return json;
  };
  std::string json = "{\"rows\":" + std::to_string(stations->num_rows()) + ",";
  json += section("restrict_selective", restrict_scalar_us, restrict_vec_us) + ",";
  json += section("restrict_half_selectivity", half_scalar_us, half_vec_us) + ",";
  json += section("restrict_compound", compound_scalar_us, compound_vec_us) + ",";
  json += section("sort", sort_scalar_us, sort_vec_us) + "}";
  std::ofstream out(OutDir() + "/fig03_columnar.json");
  out << json << "\n";
  std::printf(
      "  columnar restrict: %.0f us scalar vs %.0f us vectorized (%.2fx "
      "selective); half-selectivity %.2fx; compound %.2fx; sort %.2fx "
      "-> bench_out/fig03_columnar.json\n",
      restrict_scalar_us, restrict_vec_us, restrict_scalar_us / restrict_vec_us,
      half_scalar_us / half_vec_us, compound_scalar_us / compound_vec_us,
      sort_scalar_us / sort_vec_us);
}

void BM_RestrictCompoundPredicate(benchmark::State& state) {
  auto stations = Stations(10000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db::Restrict(
        stations,
        "(state = \"LA\" or state = \"TX\") and altitude < 2000 and "
        "contains(name, \"STATION\")"));
  }
}
BENCHMARK(BM_RestrictCompoundPredicate);

void BM_Project(benchmark::State& state) {
  auto stations = Stations(10000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db::Project(stations, {"name", "longitude", "latitude"}));
  }
}
BENCHMARK(BM_Project);

void BM_Sample(benchmark::State& state) {
  auto stations = Stations(100000);
  double probability = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db::Sample(stations, probability, 42));
  }
  state.counters["p"] = probability;
}
BENCHMARK(BM_Sample)->Arg(1)->Arg(10)->Arg(50)->Arg(100);

void BM_HashJoin(benchmark::State& state) {
  auto stations = Stations(static_cast<size_t>(state.range(0)));
  auto observations = Observations(*stations, 10);
  for (auto _ : state) {
    auto joined = db::Join(stations, observations, "station_id = station_id_2");
    benchmark::DoNotOptimize(joined);
  }
  state.counters["left"] = static_cast<double>(stations->num_rows());
  state.counters["right"] = static_cast<double>(observations->num_rows());
}
BENCHMARK(BM_HashJoin)->Arg(100)->Arg(500)->Arg(2000);

void BM_NestedLoopJoin(benchmark::State& state) {
  auto stations = Stations(static_cast<size_t>(state.range(0)));
  auto observations = Observations(*stations, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db::NestedLoopJoin(stations, observations, "station_id = station_id_2"));
  }
  state.counters["left"] = static_cast<double>(stations->num_rows());
  state.counters["right"] = static_cast<double>(observations->num_rows());
}
BENCHMARK(BM_NestedLoopJoin)->Arg(100)->Arg(500);

void BM_Sort(benchmark::State& state) {
  auto stations = Stations(50000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db::Sort(stations, "altitude"));
  }
}
BENCHMARK(BM_Sort);

void BM_GroupBy(benchmark::State& state) {
  auto stations = Stations(static_cast<size_t>(state.range(0)));
  auto observations = Observations(*stations, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db::GroupBy(
        observations, {"station_id"},
        {db::AggSpec{db::AggFn::kCount, "", "n"},
         db::AggSpec{db::AggFn::kAvg, "temperature", "avg_t"},
         db::AggSpec{db::AggFn::kMax, "precipitation", "max_p"}}));
  }
  state.counters["rows"] = static_cast<double>(observations->num_rows());
}
BENCHMARK(BM_GroupBy)->Arg(100)->Arg(1000)->Arg(5000);

}  // namespace
}  // namespace tioga2::bench

int main(int argc, char** argv) {
  tioga2::bench::Report();
  tioga2::bench::WriteColumnarReport();
  return tioga2::bench::RunBenchmarks(argc, argv);
}
