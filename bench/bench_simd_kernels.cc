// SIMD kernel tier ablation (expr/simd/). The batch evaluator's typed loops
// can be served by explicit lane kernels at SSE2/AVX2 width; this bench
// measures the three execution tiers — tuple-at-a-time scalar, vectorized
// typed loops, vectorized + SIMD kernels — on the fig03-style station
// workloads: a wide numeric compound Restrict and a computed ("method")
// attribute. Writes bench_out/simd_kernels.json.

#include "bench/bench_common.h"

#include <chrono>
#include <fstream>

#include "data/generators.h"
#include "db/exec_policy.h"
#include "db/operators.h"
#include "display/display_relation.h"
#include "expr/simd/simd.h"

namespace tioga2::bench {
namespace {

constexpr size_t kRows = 200000;

// Every node is SIMD-eligible under a dense selection (float + - * /, one
// comparison), so the whole predicate runs as lane kernels when the tier is
// on and as typed loops when it is pinned off — the purest kernel-vs-loop
// comparison the operator layer can stage.
constexpr const char* kCompoundPredicate =
    "altitude * 0.004 + latitude * latitude * 0.02 "
    "- longitude * altitude * 0.0001 "
    "+ (altitude - 500.0) * (latitude - 30.0) * 0.001 "
    "+ altitude / 250.0 - latitude / (longitude + 200.0) >= 12.0";

constexpr const char* kComputedAttr =
    "altitude / 100.0 + latitude * 2.0 - longitude * 0.5 "
    "+ (altitude - 200.0) * 0.01 * (latitude + 5.0)";

db::ExecPolicy TierPolicy(db::SimdLevel level) {
  db::ExecPolicy policy;
  policy.vectorized = true;
  policy.simd = level;
  return policy;
}

/// Sets the process-default ExecPolicy for a scope (the computed-attribute
/// path reads the default; Restrict takes the policy explicitly).
class PolicyScope {
 public:
  explicit PolicyScope(const db::ExecPolicy& policy)
      : saved_(db::DefaultExecPolicy()) {
    db::SetDefaultExecPolicy(policy);
  }
  ~PolicyScope() { db::SetDefaultExecPolicy(saved_); }

 private:
  db::ExecPolicy saved_;
};

template <typename Fn>
double TimeUs(int iters, Fn&& fn) {
  fn();  // warm-up
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(end - start).count() / iters;
}

void WriteReport() {
  ReportHeader("SIMD kernel tiers",
               "batch evaluation of compound predicates and computed "
               "attributes (§5.1, §6.1)");
  std::printf("  dispatch: best level on this machine = %s\n",
              expr::simd::LevelName(expr::simd::BestLevel()));

  auto stations = Must(data::MakeStations(kRows, 7), "stations");
  stations->columnar();  // materialize the columns outside the timed region
  auto predicate =
      Must(db::CompilePredicate(stations->schema(), kCompoundPredicate),
           "predicate");

  const db::ExecPolicy vec = TierPolicy(db::SimdLevel::kScalar);
  const db::ExecPolicy simd = TierPolicy(db::SimdLevel::kAuto);

  double r_scalar_us = TimeUs(
      3, [&] { benchmark::DoNotOptimize(db::RestrictScalar(stations, predicate)); });
  double r_vec_us = TimeUs(
      10, [&] { benchmark::DoNotOptimize(db::Restrict(stations, predicate, vec)); });
  double r_simd_us = TimeUs(
      10, [&] { benchmark::DoNotOptimize(db::Restrict(stations, predicate, simd)); });

  auto display = Must(display::DisplayRelation::WithDefaults("Stations", stations),
                      "display");
  display::DisplayRelation scored =
      Must(display.AddAttribute("score", kComputedAttr), "score");
  double a_scalar_us = TimeUs(3, [&] {
    for (size_t r = 0; r < scored.num_rows(); ++r) {
      benchmark::DoNotOptimize(scored.AttributeValue(r, "score"));
    }
  });
  double a_vec_us = TimeUs(10, [&] {
    PolicyScope scope(vec);
    benchmark::DoNotOptimize(scored.AttributeValues("score"));
  });
  double a_simd_us = TimeUs(10, [&] {
    PolicyScope scope(simd);
    benchmark::DoNotOptimize(scored.AttributeValues("score"));
  });

  std::string json = std::string("{\"rows\":") + std::to_string(kRows) +
                     ",\"simd_level\":\"" +
                     expr::simd::LevelName(expr::simd::BestLevel()) + "\"" +
                     ",\"compound_restrict\":{\"predicate\":\"" +
                     kCompoundPredicate + "\"" +
                     ",\"scalar_us\":" + std::to_string(r_scalar_us) +
                     ",\"vectorized_us\":" + std::to_string(r_vec_us) +
                     ",\"simd_us\":" + std::to_string(r_simd_us) +
                     ",\"simd_vs_vectorized\":" + std::to_string(r_vec_us / r_simd_us) +
                     ",\"simd_vs_scalar\":" + std::to_string(r_scalar_us / r_simd_us) +
                     "},\"computed_attr\":{\"expr\":\"" + kComputedAttr + "\"" +
                     ",\"scalar_us\":" + std::to_string(a_scalar_us) +
                     ",\"vectorized_us\":" + std::to_string(a_vec_us) +
                     ",\"simd_us\":" + std::to_string(a_simd_us) +
                     ",\"simd_vs_vectorized\":" + std::to_string(a_vec_us / a_simd_us) +
                     ",\"simd_vs_scalar\":" + std::to_string(a_scalar_us / a_simd_us) +
                     "}}";
  std::ofstream out(OutDir() + "/simd_kernels.json");
  out << json << "\n";
  std::printf(
      "  compound restrict (%zu rows): %.0f us scalar, %.0f us vectorized, "
      "%.0f us simd (%.2fx over vectorized)\n",
      kRows, r_scalar_us, r_vec_us, r_simd_us, r_vec_us / r_simd_us);
  std::printf(
      "  computed attribute:           %.0f us scalar, %.0f us vectorized, "
      "%.0f us simd (%.2fx over vectorized)\n",
      a_scalar_us, a_vec_us, a_simd_us, a_vec_us / a_simd_us);
  std::printf("  -> bench_out/simd_kernels.json\n");
}

void BM_CompoundRestrictScalar(benchmark::State& state) {
  auto stations = Must(data::MakeStations(50000, 7), "stations");
  auto predicate =
      Must(db::CompilePredicate(stations->schema(), kCompoundPredicate), "pred");
  for (auto _ : state) {
    benchmark::DoNotOptimize(db::RestrictScalar(stations, predicate));
  }
}
BENCHMARK(BM_CompoundRestrictScalar);

void BM_CompoundRestrictVectorized(benchmark::State& state) {
  auto stations = Must(data::MakeStations(50000, 7), "stations");
  stations->columnar();
  auto predicate =
      Must(db::CompilePredicate(stations->schema(), kCompoundPredicate), "pred");
  const db::ExecPolicy policy = TierPolicy(db::SimdLevel::kScalar);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db::Restrict(stations, predicate, policy));
  }
}
BENCHMARK(BM_CompoundRestrictVectorized);

void BM_CompoundRestrictSimd(benchmark::State& state) {
  auto stations = Must(data::MakeStations(50000, 7), "stations");
  stations->columnar();
  auto predicate =
      Must(db::CompilePredicate(stations->schema(), kCompoundPredicate), "pred");
  const db::ExecPolicy policy = TierPolicy(db::SimdLevel::kAuto);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db::Restrict(stations, predicate, policy));
  }
}
BENCHMARK(BM_CompoundRestrictSimd);

}  // namespace
}  // namespace tioga2::bench

int main(int argc, char** argv) {
  tioga2::bench::WriteReport();
  return tioga2::bench::RunBenchmarks(argc, argv);
}
