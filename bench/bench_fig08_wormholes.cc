// Figure 8: wormholes — viewer drawables into another canvas, fly-through,
// and the rear view mirror (§6.2, §6.3).
//
// Reproduction: stations display wormholes into a temperature/time canvas;
// a fly-through lands at the station's data; the rear view mirror shows the
// departed canvas. Benchmarks: render vs wormhole nesting depth, the
// fly-through operation, and rear-view rendering.

#include "bench/bench_common.h"

namespace tioga2::bench {
namespace {

void BuildFig8(Environment* env) {
  ui::Session& session = env->session();
  auto chain = [&session](std::string previous,
                          std::initializer_list<std::pair<
                              std::string, std::map<std::string, std::string>>>
                              boxes) {
    for (const auto& [type, params] : boxes) {
      std::string id = Must(session.AddBox(type, params), type.c_str());
      MustOk(session.Connect(previous, 0, id, 0), "connect");
      previous = id;
    }
    return previous;
  };
  // Destination canvas: temperature vs time.
  std::string temps = chain(Must(session.AddTable("Observations"), "obs"), {
      {"AddAttribute", {{"name", "t"}, {"definition", "float(days(obs_date))"}}},
      {"SetLocation", {{"dim", "0"}, {"attr", "t"}}},
      {"SetLocation", {{"dim", "1"}, {"attr", "temperature"}}},
      {"AddAttribute", {{"name", "d"}, {"definition", "point(\"#1e46c8\")"}}},
      {"SetDisplay", {{"attr", "d"}}}});
  Must(session.AddViewer(temps, 0, "temps"), "viewer temps");
  // Source canvas: station wormholes (with an underside marker for the
  // mirror).
  std::string scatter = chain(Must(session.AddTable("Stations"), "stations"), {
      {"Restrict", {{"predicate", "state = \"LA\""}}},
      {"SetLocation", {{"dim", "0"}, {"attr", "longitude"}}},
      {"SetLocation", {{"dim", "1"}, {"attr", "latitude"}}}});
  std::string holes = chain(scatter, {
      {"AddAttribute",
       {{"name", "w"},
        {"definition", "viewer(0.5, 0.4, \"temps\", 5480.0, 60.0, 80.0)"}}},
      {"SetDisplay", {{"attr", "w"}}},
      {"SetName", {{"name", "Holes"}}}});
  std::string underside = chain(scatter, {
      {"AddAttribute", {{"name", "u"}, {"definition", "circle(0.1, \"#808080\", true)"}}},
      {"SetDisplay", {{"attr", "u"}}},
      {"SetRange", {{"min", "-1000"}, {"max", "0"}}},
      {"SetName", {{"name", "Underside"}}}});
  std::string overlay = Must(session.AddBox("Overlay", {{"offset", ""}}), "overlay");
  MustOk(session.Connect(holes, 0, overlay, 0), "w");
  MustOk(session.Connect(underside, 0, overlay, 1), "w");
  Must(session.AddViewer(overlay, 0, "fig8"), "viewer");
}

void Report() {
  ReportHeader("Figure 8", "a visualization with wormholes and rear view mirrors");
  Environment env;
  MustOk(env.LoadDemoData(20, 60), "load");
  BuildFig8(&env);
  auto viewer = Must(env.GetViewer("fig8"), "viewer");
  viewer->mutable_camera()->MoveTo(-90.2, 30.05);
  viewer->mutable_camera()->SetElevation(1.5);
  auto stats = Must(env.RenderViewer(viewer, 800, 600, OutDir() + "/fig08.ppm"),
                    "render");
  std::printf("  map render: %zu tuples, %zu wormholes showing nested canvases\n",
              stats.tuples_drawn, stats.wormholes_rendered);

  viewer->mutable_camera()->MoveTo(-90.08 + 0.25, 29.95 + 0.2);
  viewer->mutable_camera()->SetElevation(0.5);
  bool passed = Must(viewer->TryPassThrough(1.0), "fly through");
  std::printf("  fly-through at zero-ish elevation: %s -> now on '%s' at "
              "elevation %g\n",
              passed ? "passed" : "missed", viewer->canvas_name().c_str(),
              viewer->camera().elevation());

  render::Framebuffer mirror(300, 200, draw::kLightGray);
  render::RasterSurface mirror_surface(&mirror);
  auto mirror_stats = Must(viewer->RenderRearView(&mirror_surface), "mirror");
  MustOk(mirror.WritePpm(OutDir() + "/fig08_mirror.ppm"), "write");
  std::printf("  rear view mirror: %zu underside tuples of the departed canvas\n",
              mirror_stats.tuples_drawn);
  Must(viewer->TravelBack(), "back");
  std::printf("  travelled back to '%s'\n", viewer->canvas_name().c_str());
}

void BM_RenderByWormholeDepth(benchmark::State& state) {
  Environment env;
  MustOk(env.LoadDemoData(20, 60), "load");
  BuildFig8(&env);
  auto viewer = Must(env.GetViewer("fig8"), "viewer");
  viewer->mutable_camera()->MoveTo(-90.2, 30.05);
  viewer->mutable_camera()->SetElevation(1.5);
  render::Framebuffer fb(640, 480);
  render::RasterSurface surface(&fb);
  viewer::RenderOptions options;
  options.wormhole_depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    fb.Clear(draw::kWhite);
    benchmark::DoNotOptimize(viewer->RenderTo(&surface, options));
  }
  state.counters["depth"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_RenderByWormholeDepth)->Arg(0)->Arg(1)->Arg(2);

void BM_PassThroughAndBack(benchmark::State& state) {
  Environment env;
  MustOk(env.LoadDemoData(20, 60), "load");
  BuildFig8(&env);
  auto viewer = Must(env.GetViewer("fig8"), "viewer");
  for (auto _ : state) {
    viewer->mutable_camera()->MoveTo(-90.08 + 0.25, 29.95 + 0.2);
    viewer->mutable_camera()->SetElevation(0.5);
    bool passed = Must(viewer->TryPassThrough(1.0), "through");
    if (!passed) state.SkipWithError("fly-through missed");
    Must(viewer->TravelBack(), "back");
  }
}
BENCHMARK(BM_PassThroughAndBack);

void BM_RearViewRender(benchmark::State& state) {
  Environment env;
  MustOk(env.LoadDemoData(20, 60), "load");
  BuildFig8(&env);
  auto viewer = Must(env.GetViewer("fig8"), "viewer");
  viewer->mutable_camera()->MoveTo(-90.08 + 0.25, 29.95 + 0.2);
  viewer->mutable_camera()->SetElevation(0.5);
  Must(viewer->TryPassThrough(1.0), "through");
  render::Framebuffer fb(300, 200);
  render::RasterSurface surface(&fb);
  for (auto _ : state) {
    benchmark::DoNotOptimize(viewer->RenderRearView(&surface));
  }
}
BENCHMARK(BM_RearViewRender);

}  // namespace
}  // namespace tioga2::bench

int main(int argc, char** argv) {
  tioga2::bench::Report();
  return tioga2::bench::RunBenchmarks(argc, argv);
}
