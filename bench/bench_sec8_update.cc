// §8: update in Tioga-2 — click a screen object, engage the update dialog,
// install the new tuple, and recompute downstream visualizations.
//
// Reproduction: the inventory scenario of §8 ("the user would find an item
// of interest and then wish to order a certain number of the item, thereby
// decreasing the quantity on hand"). Benchmarks: hit testing, the update
// install, and the invalidation-plus-recompute cost vs table size.

#include "bench/bench_common.h"

#include "common/rng.h"
#include "db/relation.h"

namespace tioga2::bench {
namespace {

db::RelationPtr Inventory(size_t items) {
  db::Schema schema =
      Must(db::Schema::Make({db::Column{"item", types::DataType::kString},
                             db::Column{"shelf_x", types::DataType::kFloat},
                             db::Column{"shelf_y", types::DataType::kFloat},
                             db::Column{"on_hand", types::DataType::kInt}}),
           "schema");
  db::RelationBuilder builder(std::make_shared<const db::Schema>(std::move(schema)));
  Rng rng(11);
  for (size_t i = 0; i < items; ++i) {
    builder.AddRowUnchecked(db::Tuple{
        types::Value::String("ITEM_" + std::to_string(i)),
        types::Value::Float(rng.Uniform(0, 100)),
        types::Value::Float(rng.Uniform(0, 100)),
        types::Value::Int(static_cast<int64_t>(rng.NextBounded(50)))});
  }
  return builder.Build();
}

void SetUpStore(Environment* env, size_t items) {
  MustOk(env->catalog().RegisterTable("Inventory", Inventory(items)), "register");
  ui::Session& session = env->session();
  std::string inventory = Must(session.AddTable("Inventory"), "table");
  std::string previous = inventory;
  auto chain = [&](const std::string& type,
                   const std::map<std::string, std::string>& params) {
    std::string id = Must(session.AddBox(type, params), type.c_str());
    MustOk(session.Connect(previous, 0, id, 0), "connect");
    previous = id;
  };
  chain("SetLocation", {{"dim", "0"}, {"attr", "shelf_x"}});
  chain("SetLocation", {{"dim", "1"}, {"attr", "shelf_y"}});
  chain("AddAttribute",
        {{"name", "d"},
         {"definition",
          "circle(1.5, if(on_hand = 0, \"#c81e1e\", \"#1ea03c\"), true)"}});
  chain("SetDisplay", {{"attr", "d"}});
  Must(session.AddViewer(previous, 0, "store"), "viewer");
}

void Report() {
  ReportHeader("Section 8", "update: click a screen object, decrease quantity on hand");
  Environment env;
  SetUpStore(&env, 50);
  auto viewer = Must(env.GetViewer("store"), "viewer");
  MustOk(viewer->FitContent(400, 400), "fit");
  render::Framebuffer fb(400, 400, draw::kWhite);
  render::RasterSurface surface(&fb);
  MustOk(viewer->RenderTo(&surface).status(), "render");

  // Click the first item.
  auto table = Must(env.catalog().GetTable("Inventory"), "table");
  double dx = 0;
  double dy = 0;
  viewer->camera().WorldToDevice(table->at(0, 1).float_value(),
                                 table->at(0, 2).float_value(), &dx, &dy);
  auto hit = Must(viewer->HitTestAt(&surface, dx, dy), "hit");
  if (!hit.has_value()) {
    std::printf("  (click missed; overlapping items)\n");
    return;
  }
  std::printf("  clicked tuple row %zu of '%s'\n", hit->row,
              hit->relation_name.c_str());
  int64_t before = table->at(hit->row, 3).int_value();
  MustOk(env.session().ClickUpdate("store", *hit, "Inventory",
                                   {{"on_hand", std::to_string(before - 1)}}),
         "update");
  auto after = Must(env.catalog().GetTable("Inventory"), "table");
  std::printf("  on_hand %lld -> %lld; table version %llu (downstream canvases "
              "recompute)\n",
              static_cast<long long>(before),
              static_cast<long long>(after->at(hit->row, 3).int_value()),
              static_cast<unsigned long long>(
                  Must(env.catalog().TableVersion("Inventory"), "version")));
}

void BM_HitTest(benchmark::State& state) {
  Environment env;
  SetUpStore(&env, static_cast<size_t>(state.range(0)));
  auto viewer = Must(env.GetViewer("store"), "viewer");
  MustOk(viewer->FitContent(400, 400), "fit");
  render::Framebuffer fb(400, 400);
  render::RasterSurface surface(&fb);
  for (auto _ : state) {
    benchmark::DoNotOptimize(viewer->HitTestAt(&surface, 200, 200));
  }
  state.counters["items"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_HitTest)->Arg(100)->Arg(1000)->Arg(5000);

void BM_UpdateInstall(benchmark::State& state) {
  Environment env;
  SetUpStore(&env, static_cast<size_t>(state.range(0)));
  update::UpdateManager& updates = env.session().updates();
  int64_t counter = 0;
  for (auto _ : state) {
    MustOk(updates
               .ApplyUpdate("Inventory", 0,
                            {{"on_hand", std::to_string(counter++ % 50)}})
               .status(),
           "update");
  }
  state.counters["items"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_UpdateInstall)->Arg(100)->Arg(1000)->Arg(10000);

void BM_UpdateThenRecompute(benchmark::State& state) {
  // The §8 end-to-end path: install + re-evaluate the canvas (the table
  // version bump invalidates the memoized Table box).
  Environment env;
  SetUpStore(&env, static_cast<size_t>(state.range(0)));
  ui::Session& session = env.session();
  MustOk(session.EvaluateCanvas("store").status(), "warm");
  int64_t counter = 0;
  for (auto _ : state) {
    MustOk(session.updates()
               .ApplyUpdate("Inventory", 0,
                            {{"on_hand", std::to_string(counter++ % 50)}})
               .status(),
           "update");
    benchmark::DoNotOptimize(session.EvaluateCanvas("store"));
  }
  state.counters["items"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_UpdateThenRecompute)->Arg(100)->Arg(1000);

void BM_InvalidationScope(benchmark::State& state) {
  // Ablation for the §8 invalidation policy: after a single-table update,
  // ClickUpdate evicts only the boxes downstream of the edited table
  // (InvalidateDownstreamOf), so canvases over other tables stay memoized.
  // arg 0 = targeted invalidation, arg 1 = the old InvalidateAll behavior.
  Environment env;
  MustOk(env.LoadDemoData(2000, 5), "load");
  SetUpStore(&env, 1000);
  BuildScatter(&env, "stations");  // unrelated canvas over the Stations table
  ui::Session& session = env.session();
  MustOk(session.EvaluateCanvas("store").status(), "warm store");
  MustOk(session.EvaluateCanvas("stations").status(), "warm stations");
  bool targeted = state.range(0) == 0;
  int64_t counter = 0;
  for (auto _ : state) {
    MustOk(session.updates()
               .ApplyUpdate("Inventory", 0,
                            {{"on_hand", std::to_string(counter++ % 50)}})
               .status(),
           "update");
    if (targeted) {
      session.engine().InvalidateDownstreamOf(session.graph(), "Inventory");
    } else {
      session.engine().InvalidateAll();
    }
    benchmark::DoNotOptimize(session.EvaluateCanvas("store"));
    benchmark::DoNotOptimize(session.EvaluateCanvas("stations"));
  }
  state.SetLabel(targeted ? "downstream-only(stations stays warm)"
                          : "invalidate-all(stations recomputes)");
}
BENCHMARK(BM_InvalidationScope)->Arg(0)->Arg(1);

}  // namespace
}  // namespace tioga2::bench

int main(int argc, char** argv) {
  tioga2::bench::Report();
  return tioga2::bench::RunBenchmarks(argc, argv);
}
