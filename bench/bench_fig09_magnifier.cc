// Figure 9: magnifying glasses — a viewer inside a viewer, optionally
// showing an alternative display attribute (§7.2).
//
// Reproduction: temperature-vs-time with a precipitation magnifier rendered
// to bench_out/fig09.ppm. Benchmarks: render with/without the glass, zoom
// sweep, and the alternative-display switch cost.

#include "bench/bench_common.h"

namespace tioga2::bench {
namespace {

void BuildFig9(Environment* env) {
  ui::Session& session = env->session();
  std::string previous = Must(session.AddTable("Observations"), "obs");
  auto chain = [&](const std::string& type,
                   const std::map<std::string, std::string>& params) {
    std::string id = Must(session.AddBox(type, params), type.c_str());
    MustOk(session.Connect(previous, 0, id, 0), "connect");
    previous = id;
  };
  chain("Restrict", {{"predicate", "station_id = 1"}});
  chain("AddAttribute", {{"name", "t"}, {"definition", "float(days(obs_date))"}});
  chain("SetLocation", {{"dim", "0"}, {"attr", "t"}});
  chain("SetLocation", {{"dim", "1"}, {"attr", "temperature"}});
  chain("AddAttribute", {{"name", "temp_d"}, {"definition", "point(\"#c81e1e\")"}});
  chain("AddAttribute",
        {{"name", "precip_d"},
         {"definition", "rect(0.9, precipitation * 15.0, \"#1e46c8\", true)"}});
  chain("SetDisplay", {{"attr", "temp_d"}});
  Must(session.AddViewer(previous, 0, "fig9"), "viewer");
}

viewer::MagnifyingGlass Glass(double zoom, bool alternative) {
  viewer::MagnifyingGlass glass;
  glass.rect = render::DeviceRect{380, 80, 220, 200};
  glass.zoom = zoom;
  if (alternative) glass.display_attribute = "precip_d";
  return glass;
}

void Report() {
  ReportHeader("Figure 9", "using a magnifying glass (alternative precipitation display)");
  Environment env;
  MustOk(env.LoadDemoData(10, 365), "load");
  BuildFig9(&env);
  auto viewer = Must(env.GetViewer("fig9"), "viewer");
  MustOk(viewer->FitContent(800, 600), "fit");
  viewer->AddMagnifyingGlass(Glass(4.0, /*alternative=*/true));
  auto stats = Must(env.RenderViewer(viewer, 800, 600, OutDir() + "/fig09.ppm"),
                    "render");
  std::printf("  temperature series with precipitation magnifier: %zu tuples "
              "(outer + magnified)\n",
              stats.tuples_drawn);
  std::printf("  glass: zoom 4x over device rect (380,80)+(220x200), display "
              "attribute 'precip_d'\n");
}

void BM_RenderWithoutGlass(benchmark::State& state) {
  Environment env;
  MustOk(env.LoadDemoData(10, 365), "load");
  BuildFig9(&env);
  auto viewer = Must(env.GetViewer("fig9"), "viewer");
  MustOk(viewer->FitContent(640, 480), "fit");
  render::Framebuffer fb(640, 480);
  render::RasterSurface surface(&fb);
  for (auto _ : state) {
    fb.Clear(draw::kWhite);
    benchmark::DoNotOptimize(viewer->RenderTo(&surface));
  }
}
BENCHMARK(BM_RenderWithoutGlass);

void BM_RenderWithGlass(benchmark::State& state) {
  Environment env;
  MustOk(env.LoadDemoData(10, 365), "load");
  BuildFig9(&env);
  auto viewer = Must(env.GetViewer("fig9"), "viewer");
  MustOk(viewer->FitContent(640, 480), "fit");
  viewer->AddMagnifyingGlass(Glass(static_cast<double>(state.range(0)),
                                   /*alternative=*/state.range(1) == 1));
  render::Framebuffer fb(640, 480);
  render::RasterSurface surface(&fb);
  for (auto _ : state) {
    fb.Clear(draw::kWhite);
    benchmark::DoNotOptimize(viewer->RenderTo(&surface));
  }
  state.counters["zoom"] = static_cast<double>(state.range(0));
  state.counters["alt_display"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_RenderWithGlass)
    ->Args({2, 0})
    ->Args({4, 0})
    ->Args({8, 0})
    ->Args({4, 1});

void BM_SwapDisplayAttribute(benchmark::State& state) {
  // The Figure 9 construction uses Swap Attributes to realize the
  // alternative display; measure the box-level path.
  Environment env;
  MustOk(env.LoadDemoData(10, 365), "load");
  ui::Session& session = env.session();
  std::string previous = Must(session.AddTable("Observations"), "obs");
  auto chain = [&](const std::string& type,
                   const std::map<std::string, std::string>& params) {
    std::string id = Must(session.AddBox(type, params), type.c_str());
    MustOk(session.Connect(previous, 0, id, 0), "connect");
    previous = id;
  };
  chain("AddAttribute", {{"name", "a"}, {"definition", "point()"}});
  chain("AddAttribute", {{"name", "b"}, {"definition", "circle(1)"}});
  chain("SwapAttributes", {{"a", "a"}, {"b", "b"}});
  Must(session.AddViewer(previous, 0, "swapped"), "viewer");
  for (auto _ : state) {
    session.engine().InvalidateAll();
    benchmark::DoNotOptimize(session.EvaluateCanvas("swapped"));
  }
}
BENCHMARK(BM_SwapDisplayAttribute);

}  // namespace
}  // namespace tioga2::bench

int main(int argc, char** argv) {
  tioga2::bench::Report();
  return tioga2::bench::RunBenchmarks(argc, argv);
}
