// Ablation: expression constant folding. Display expressions are evaluated
// once per tuple per render; folding their constant subtrees (color ramps,
// fixed geometry) off the per-tuple path is the library's main expression
// optimization. This bench measures evaluation with and without it.

#include "bench/bench_common.h"

#include "db/operators.h"
#include "expr/optimizer.h"
#include "expr/parser.h"

namespace tioga2::bench {
namespace {

// A display expression with a large constant core (folds to two nodes) and
// a small data-dependent part.
constexpr const char* kHeavyExpr =
    "circle(0.02 + 0.01 * 2.0, lerp_color(rgb(30, 70, 200), rgb(200, 30, 30), "
    "clamp(altitude / (1000.0 + 500.0 * 2.0), 0.0, 1.0)), true) + "
    "offset(point(), 0.1 * 3.0, 0.2 * 2.0)";

expr::TypeEnv Env() {
  return expr::MakeSchemaTypeEnv({{"altitude", types::DataType::kFloat}});
}

void Report() {
  ReportHeader("Ablation: expression constant folding",
               "per-tuple display expressions with constant subtrees (§5.1)");
  expr::ExprNodePtr ast = Must(expr::ParseExpr(kHeavyExpr), "parse");
  MustOk(expr::AnalyzeExpr(ast.get(), Env()), "analyze");
  std::function<size_t(const expr::ExprNode&)> count_nodes =
      [&](const expr::ExprNode& node) {
        size_t n = 1;
        for (const auto& child : node.children) n += count_nodes(*child);
        return n;
      };
  size_t before = count_nodes(*ast);
  size_t folded = Must(expr::FoldConstants(ast.get()), "fold");
  size_t after = count_nodes(*ast);
  std::printf("  expression nodes: %zu before folding, %zu after (%zu folds)\n",
              before, after, folded);
}

void BM_EvalUnfolded(benchmark::State& state) {
  expr::ExprNodePtr ast = Must(expr::ParseExpr(kHeavyExpr), "parse");
  MustOk(expr::AnalyzeExpr(ast.get(), Env()), "analyze");
  db::Tuple row{types::Value::Float(1234.0)};
  expr::TupleAccessor accessor(row);
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr::EvalExpr(*ast, accessor));
  }
}
BENCHMARK(BM_EvalUnfolded);

void BM_EvalFolded(benchmark::State& state) {
  expr::ExprNodePtr ast = Must(expr::ParseExpr(kHeavyExpr), "parse");
  MustOk(expr::AnalyzeExpr(ast.get(), Env()), "analyze");
  Must(expr::FoldConstants(ast.get()), "fold");
  db::Tuple row{types::Value::Float(1234.0)};
  expr::TupleAccessor accessor(row);
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr::EvalExpr(*ast, accessor));
  }
}
BENCHMARK(BM_EvalFolded);

void BM_RestrictSimplePredicate(benchmark::State& state) {
  // End-to-end effect on a Restrict whose predicate has constant parts.
  Environment env;
  MustOk(env.LoadDemoData(20000, 5), "load");
  auto stations = Must(env.catalog().GetTable("Stations"), "table");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db::Restrict(stations, "altitude > 100.0 * 2.0 + 300.0"));
  }
}
BENCHMARK(BM_RestrictSimplePredicate);

}  // namespace
}  // namespace tioga2::bench

int main(int argc, char** argv) {
  tioga2::bench::Report();
  return tioga2::bench::RunBenchmarks(argc, argv);
}
