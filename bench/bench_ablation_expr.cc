// Ablation: expression evaluation strategies. Display expressions are
// evaluated once per tuple per render; two optimizations move work off the
// per-tuple path: (1) folding constant subtrees (color ramps, fixed
// geometry), and (2) vectorized batch evaluation of computed attributes
// over the columnar view. This bench measures both against their scalar
// baselines and records the batch speedup in bench_out/.

#include "bench/bench_common.h"

#include <chrono>
#include <fstream>

#include "db/operators.h"
#include "display/display_relation.h"
#include "expr/optimizer.h"
#include "expr/parser.h"

namespace tioga2::bench {
namespace {

// A display expression with a large constant core (folds to two nodes) and
// a small data-dependent part.
constexpr const char* kHeavyExpr =
    "circle(0.02 + 0.01 * 2.0, lerp_color(rgb(30, 70, 200), rgb(200, 30, 30), "
    "clamp(altitude / (1000.0 + 500.0 * 2.0), 0.0, 1.0)), true) + "
    "offset(point(), 0.1 * 3.0, 0.2 * 2.0)";

expr::TypeEnv Env() {
  return expr::MakeSchemaTypeEnv({{"altitude", types::DataType::kFloat}});
}

void Report() {
  ReportHeader("Ablation: expression constant folding",
               "per-tuple display expressions with constant subtrees (§5.1)");
  expr::ExprNodePtr ast = Must(expr::ParseExpr(kHeavyExpr), "parse");
  MustOk(expr::AnalyzeExpr(ast.get(), Env()), "analyze");
  std::function<size_t(const expr::ExprNode&)> count_nodes =
      [&](const expr::ExprNode& node) {
        size_t n = 1;
        for (const auto& child : node.children) n += count_nodes(*child);
        return n;
      };
  size_t before = count_nodes(*ast);
  size_t folded = Must(expr::FoldConstants(ast.get()), "fold");
  size_t after = count_nodes(*ast);
  std::printf("  expression nodes: %zu before folding, %zu after (%zu folds)\n",
              before, after, folded);
}

void BM_EvalUnfolded(benchmark::State& state) {
  expr::ExprNodePtr ast = Must(expr::ParseExpr(kHeavyExpr), "parse");
  MustOk(expr::AnalyzeExpr(ast.get(), Env()), "analyze");
  db::Tuple row{types::Value::Float(1234.0)};
  expr::TupleAccessor accessor(row);
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr::EvalExpr(*ast, accessor));
  }
}
BENCHMARK(BM_EvalUnfolded);

void BM_EvalFolded(benchmark::State& state) {
  expr::ExprNodePtr ast = Must(expr::ParseExpr(kHeavyExpr), "parse");
  MustOk(expr::AnalyzeExpr(ast.get(), Env()), "analyze");
  Must(expr::FoldConstants(ast.get()), "fold");
  db::Tuple row{types::Value::Float(1234.0)};
  expr::TupleAccessor accessor(row);
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr::EvalExpr(*ast, accessor));
  }
}
BENCHMARK(BM_EvalFolded);

void BM_RestrictSimplePredicate(benchmark::State& state) {
  // End-to-end effect on a Restrict whose predicate has constant parts.
  Environment env;
  MustOk(env.LoadDemoData(20000, 5), "load");
  auto stations = Must(env.catalog().GetTable("Stations"), "table");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db::Restrict(stations, "altitude > 100.0 * 2.0 + 300.0"));
  }
}
BENCHMARK(BM_RestrictSimplePredicate);

// ---- Vectorized computed-attribute ("method") evaluation ----

constexpr const char* kComputedAttr =
    "altitude / 100.0 + latitude * 2.0 - abs(longitude)";

display::DisplayRelation StationsDisplay(size_t rows) {
  auto stations = Must(data::MakeStations(rows, 7), "stations");
  auto rel = Must(display::DisplayRelation::WithDefaults("Stations", stations),
                  "display");
  return Must(rel.AddAttribute("score", kComputedAttr), "score");
}

void BM_ComputedAttrScalar(benchmark::State& state) {
  // Per-tuple AttributeValue: rebuilds the accessor and walks the AST row by
  // row — the pre-columnar "method" evaluation path.
  display::DisplayRelation rel = StationsDisplay(10000);
  for (auto _ : state) {
    for (size_t r = 0; r < rel.num_rows(); ++r) {
      benchmark::DoNotOptimize(rel.AttributeValue(r, "score"));
    }
  }
  state.counters["rows"] = static_cast<double>(rel.num_rows());
}
BENCHMARK(BM_ComputedAttrScalar);

void BM_ComputedAttrBatch(benchmark::State& state) {
  display::DisplayRelation rel = StationsDisplay(10000);
  rel.base()->columnar();  // materialize outside the timed loop
  for (auto _ : state) {
    benchmark::DoNotOptimize(rel.AttributeValues("score"));
  }
  state.counters["rows"] = static_cast<double>(rel.num_rows());
}
BENCHMARK(BM_ComputedAttrBatch);

/// Hand-timed batch-vs-scalar comparison for the computed-attribute path,
/// exported as JSON (see README "Running the benchmarks").
void WriteBatchReport() {
  display::DisplayRelation rel = StationsDisplay(50000);
  rel.base()->columnar();
  auto time_us = [](auto&& fn) {
    constexpr int kIters = 15;
    fn();  // warm-up
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kIters; ++i) fn();
    auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(end - start).count() / kIters;
  };
  double scalar_us = time_us([&] {
    for (size_t r = 0; r < rel.num_rows(); ++r) {
      benchmark::DoNotOptimize(rel.AttributeValue(r, "score"));
    }
  });
  double batch_us =
      time_us([&] { benchmark::DoNotOptimize(rel.AttributeValues("score")); });
  std::string json = "{\"rows\":" + std::to_string(rel.num_rows()) +
                     ",\"expr\":\"" + kComputedAttr + "\"" +
                     ",\"computed_attr\":{\"scalar_us\":" + std::to_string(scalar_us) +
                     ",\"batch_us\":" + std::to_string(batch_us) +
                     ",\"speedup\":" + std::to_string(scalar_us / batch_us) + "}}";
  std::ofstream out(OutDir() + "/ablation_expr_batch.json");
  out << json << "\n";
  std::printf(
      "  computed attribute: %.0f us scalar vs %.0f us batch (%.2fx) "
      "-> bench_out/ablation_expr_batch.json\n",
      scalar_us, batch_us, scalar_us / batch_us);
}

}  // namespace
}  // namespace tioga2::bench

int main(int argc, char** argv) {
  tioga2::bench::Report();
  tioga2::bench::WriteBatchReport();
  return tioga2::bench::RunBenchmarks(argc, argv);
}
