// Dictionary-encoded string execution ablation (db/columnar.h dictionaries,
// the comparison lowering in expr/batch.cc, code-hashed joins in
// db/operators.cc, and the columnar group-by in db/aggregates.cc). Three
// categorical workloads over a ~200k-row station relation, each run three
// ways — tuple-at-a-time scalar, vectorized without dictionaries, vectorized
// with dictionaries — plus a fig07 program trace recording how the batch
// counters move with encoding on vs off. Every variant is checked
// cell-identical against the scalar oracle before anything is timed.
// Writes bench_out/dict_strings.json.
//
// Usage:
//   bench_dict_strings [--rows=N] [--smoke] [--out=PATH]
//
// --smoke shrinks the relation for CI (scripts/check.sh `dict-smoke`); the
// correctness assertions and counter assertions are hard failures in every
// mode.

#include "bench/bench_common.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "data/generators.h"
#include "db/aggregates.h"
#include "db/exec_policy.h"
#include "db/operators.h"
#include "expr/batch.h"
#include "testing/fig_programs.h"

namespace tioga2::bench {
namespace {

using types::DataType;
using types::Value;

struct Config {
  size_t rows = 200000;
  bool smoke = false;
  std::string out = "";
};

Config ParseFlags(int argc, char** argv) {
  Config config;
  auto value_of = [](const char* arg, const char* name) -> const char* {
    size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') return arg + len + 1;
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (const char* v = value_of(arg, "--rows")) {
      config.rows = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of(arg, "--out")) {
      config.out = v;
    } else if (std::strcmp(arg, "--smoke") == 0) {
      config.smoke = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      std::exit(2);
    }
  }
  if (config.smoke) config.rows = 20000;
  if (config.out.empty()) config.out = OutDir() + "/dict_strings.json";
  return config;
}

// Five string comparisons (two equalities, one inequality, one range) over
// the two categorical columns, merged through and/or — every one lowers to
// an integer-code lane kernel when `state`/`name` are dictionary-encoded.
constexpr const char* kCategoricalPredicate =
    "state = \"LA\" or state = \"CA\" or "
    "(state >= \"TN\" and state <= \"TX\") or name < \"B\"";

/// Sets the process-default ExecPolicy for a scope — dictionaries are built
/// when a relation first materializes its columnar image, so relations meant
/// to differ in encoding must be *created and warmed* inside this scope.
class PolicyScope {
 public:
  explicit PolicyScope(const db::ExecPolicy& policy)
      : saved_(db::DefaultExecPolicy()) {
    db::SetDefaultExecPolicy(policy);
  }
  ~PolicyScope() { db::SetDefaultExecPolicy(saved_); }

 private:
  db::ExecPolicy saved_;
};

db::ExecPolicy Vectorized() {
  db::ExecPolicy policy;
  policy.vectorized = true;
  return policy;
}

db::ExecPolicy Scalar() {
  db::ExecPolicy policy;
  policy.vectorized = false;
  return policy;
}

template <typename Fn>
double TimeUs(int iters, Fn&& fn) {
  fn();  // warm-up
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(end - start).count() / iters;
}

/// Columns materialize lazily (one call_once per column), consulting the
/// process-default policy at that moment — so "warm under this policy" means
/// touching every column, not just grabbing the table.
void WarmColumns(const db::RelationPtr& rel) {
  for (size_t c = 0; c < rel->num_columns(); ++c) rel->columnar().column(c);
}

/// Builds the station relation and warms its columnar image under the given
/// encoding policy, so one build carries dictionaries and the other does not.
db::RelationPtr BuildStations(size_t rows, bool dict_encode) {
  db::ExecPolicy policy = db::DefaultExecPolicy();
  policy.dict_encode = dict_encode;
  PolicyScope scope(policy);
  auto stations = Must(data::MakeStations(rows, 7), "stations");
  WarmColumns(stations);
  return stations;
}

/// Dimension relation keyed on the station states: one row per distinct
/// state plus two keys no station carries (exercising unmatched probe
/// entries), built under the given encoding policy.
db::RelationPtr BuildStateDim(const db::RelationPtr& stations, bool dict_encode) {
  size_t state_col = stations->num_columns();
  for (size_t c = 0; c < stations->num_columns(); ++c) {
    if (stations->schema()->column(c).name == "state") state_col = c;
  }
  if (state_col >= stations->num_columns()) {
    std::fprintf(stderr, "FATAL: stations relation has no state column\n");
    std::exit(1);
  }
  std::set<std::string> states;
  for (size_t r = 0; r < stations->num_rows(); ++r) {
    states.insert(stations->row(r)[state_col].string_value());
  }
  std::vector<db::Tuple> rows;
  int64_t region = 0;
  for (const std::string& s : states) {
    rows.push_back({Value::String(s), Value::Int(region++)});
  }
  rows.push_back({Value::String("ZZ"), Value::Int(region++)});
  rows.push_back({Value::String(""), Value::Int(region++)});
  db::ExecPolicy policy = db::DefaultExecPolicy();
  policy.dict_encode = dict_encode;
  PolicyScope scope(policy);
  auto dim = Must(db::MakeRelation({db::Column{"state_name", DataType::kString},
                                    db::Column{"region", DataType::kInt}},
                                   rows),
                  "state dim");
  WarmColumns(dim);
  return dim;
}

/// Cell-identity between two relations that tolerates nothing: schema text,
/// row count, per-cell nullness, runtime type, and text must all match.
void MustMatch(const db::Relation& oracle, const db::Relation& got,
               const char* what) {
  bool ok = oracle.schema()->ToString() == got.schema()->ToString() &&
            oracle.num_rows() == got.num_rows();
  for (size_t r = 0; ok && r < oracle.num_rows(); ++r) {
    for (size_t c = 0; ok && c < oracle.num_columns(); ++c) {
      const Value& a = oracle.row(r)[c];
      const Value& b = got.row(r)[c];
      ok = a.is_null() == b.is_null() &&
           (a.is_null() || (a.type() == b.type() && a.ToString() == b.ToString()));
    }
  }
  if (!ok) {
    std::fprintf(stderr, "FATAL %s: output diverged from the scalar oracle\n",
                 what);
    std::exit(1);
  }
}

struct Fig07Trace {
  uint64_t nodes_fallback = 0;
  uint64_t nodes_vectorized = 0;
  uint64_t dict_simd_batches = 0;
  uint64_t dict_columns_built = 0;
};

/// Evaluates the fig07 drill-down program end to end with dictionary
/// encoding on or off and returns the batch counters the run produced.
Fig07Trace TraceFig07(bool dict_encode) {
  const testing::FigProgram* fig7 = nullptr;
  for (const testing::FigProgram& program : testing::AllFigPrograms()) {
    if (program.name.find("fig07") != std::string::npos) fig7 = &program;
  }
  Fig07Trace trace;
  if (fig7 == nullptr) return trace;
  db::ExecPolicy policy = db::DefaultExecPolicy();
  policy.dict_encode = dict_encode;
  PolicyScope scope(policy);
  expr::BatchMetrics::Global().Reset();
  Environment env;
  MustOk(env.LoadDemoData(fig7->extra_stations, fig7->num_days), "fig07 data");
  MustOk(fig7->build(&env), "fig07 build");
  ui::Session& session = env.session();
  MustOk(session.engine().EvaluateAll(session.graph()), "fig07 evaluate");
  expr::BatchMetrics& m = expr::BatchMetrics::Global();
  trace.nodes_fallback = m.nodes_fallback.load();
  trace.nodes_vectorized = m.nodes_vectorized.load();
  trace.dict_simd_batches = m.dict_simd_batches.load();
  trace.dict_columns_built = m.dict_columns_built.load();
  expr::BatchMetrics::Global().Reset();
  return trace;
}

int Run(int argc, char** argv) {
  Config config = ParseFlags(argc, argv);
  ReportHeader("Dictionary-encoded strings",
               "categorical restrict / group-by / join on integer code lanes "
               "(§4.2 database operations over categorical attributes)");

  auto stations_dict = BuildStations(config.rows, /*dict_encode=*/true);
  auto stations_plain = BuildStations(config.rows, /*dict_encode=*/false);
  const int scalar_iters = config.smoke ? 2 : 3;
  const int vec_iters = config.smoke ? 3 : 10;

  // ---- Workload 1: categorical compound Restrict. -------------------------
  auto predicate_dict = Must(
      db::CompilePredicate(stations_dict->schema(), kCategoricalPredicate),
      "predicate");
  auto predicate_plain = Must(
      db::CompilePredicate(stations_plain->schema(), kCategoricalPredicate),
      "predicate");
  auto r_oracle =
      Must(db::RestrictScalar(stations_dict, predicate_dict), "restrict oracle");
  const uint64_t dict_batches_before =
      expr::BatchMetrics::Global().dict_simd_batches.load();
  MustMatch(*r_oracle,
            *Must(db::Restrict(stations_dict, predicate_dict, Vectorized()),
                  "restrict dict"),
            "restrict(dict)");
  if (expr::BatchMetrics::Global().dict_simd_batches.load() <=
      dict_batches_before) {
    std::fprintf(stderr, "FATAL: restrict(dict) never dispatched a dict batch\n");
    return 1;
  }
  MustMatch(*r_oracle,
            *Must(db::Restrict(stations_plain, predicate_plain, Vectorized()),
                  "restrict plain"),
            "restrict(plain)");
  double restrict_scalar_us = TimeUs(scalar_iters, [&] {
    benchmark::DoNotOptimize(db::RestrictScalar(stations_dict, predicate_dict));
  });
  double restrict_plain_us = TimeUs(vec_iters, [&] {
    benchmark::DoNotOptimize(
        db::Restrict(stations_plain, predicate_plain, Vectorized()));
  });
  double restrict_dict_us = TimeUs(vec_iters, [&] {
    benchmark::DoNotOptimize(
        db::Restrict(stations_dict, predicate_dict, Vectorized()));
  });

  // ---- Workload 2: group-by on the string key. ----------------------------
  const std::vector<db::AggSpec> aggs = {
      db::AggSpec{db::AggFn::kCount, "", "n"},
      db::AggSpec{db::AggFn::kAvg, "altitude", "avg_altitude"},
      db::AggSpec{db::AggFn::kMax, "name", "max_name"}};
  auto g_oracle =
      Must(db::GroupBy(stations_dict, {"state"}, aggs, Scalar()), "groupby oracle");
  MustMatch(*g_oracle,
            *Must(db::GroupBy(stations_dict, {"state"}, aggs, Vectorized()),
                  "groupby dict"),
            "groupby(dict)");
  MustMatch(*g_oracle,
            *Must(db::GroupBy(stations_plain, {"state"}, aggs, Vectorized()),
                  "groupby plain"),
            "groupby(plain)");
  double groupby_scalar_us = TimeUs(scalar_iters, [&] {
    benchmark::DoNotOptimize(db::GroupBy(stations_dict, {"state"}, aggs, Scalar()));
  });
  double groupby_plain_us = TimeUs(vec_iters, [&] {
    benchmark::DoNotOptimize(
        db::GroupBy(stations_plain, {"state"}, aggs, Vectorized()));
  });
  double groupby_dict_us = TimeUs(vec_iters, [&] {
    benchmark::DoNotOptimize(
        db::GroupBy(stations_dict, {"state"}, aggs, Vectorized()));
  });

  // ---- Workload 3: string-key hash join against a state dimension. --------
  auto dim_dict = BuildStateDim(stations_dict, /*dict_encode=*/true);
  auto dim_plain = BuildStateDim(stations_dict, /*dict_encode=*/false);
  auto j_oracle = Must(
      db::Join(stations_dict, dim_dict, "state = state_name", Scalar()),
      "join oracle");
  const uint64_t remap_before =
      expr::BatchMetrics::Global().dict_remap_fallbacks.load();
  MustMatch(*j_oracle.relation,
            *Must(db::Join(stations_dict, dim_dict, "state = state_name",
                           Vectorized()),
                  "join dict")
                 .relation,
            "join(dict)");
  if (expr::BatchMetrics::Global().dict_remap_fallbacks.load() != remap_before) {
    std::fprintf(stderr, "FATAL: join(dict) fell back to string hashing\n");
    return 1;
  }
  MustMatch(*j_oracle.relation,
            *Must(db::Join(stations_plain, dim_plain, "state = state_name",
                           Vectorized()),
                  "join plain")
                 .relation,
            "join(plain)");
  if (expr::BatchMetrics::Global().dict_remap_fallbacks.load() == remap_before) {
    std::fprintf(stderr, "FATAL: join(plain) did not record its fallback\n");
    return 1;
  }
  double join_scalar_us = TimeUs(scalar_iters, [&] {
    benchmark::DoNotOptimize(
        db::Join(stations_dict, dim_dict, "state = state_name", Scalar()));
  });
  double join_plain_us = TimeUs(vec_iters, [&] {
    benchmark::DoNotOptimize(
        db::Join(stations_plain, dim_plain, "state = state_name", Vectorized()));
  });
  double join_dict_us = TimeUs(vec_iters, [&] {
    benchmark::DoNotOptimize(
        db::Join(stations_dict, dim_dict, "state = state_name", Vectorized()));
  });

  // ---- fig07 trace: counters with encoding on vs off. ---------------------
  Fig07Trace fig_on = TraceFig07(/*dict_encode=*/true);
  Fig07Trace fig_off = TraceFig07(/*dict_encode=*/false);
  if (fig_on.dict_columns_built > 0 && fig_on.dict_simd_batches == 0) {
    std::fprintf(stderr,
                 "FATAL: fig07 built dictionaries but never used them\n");
    return 1;
  }

  auto section = [](const char* name, double scalar_us, double plain_us,
                    double dict_us) {
    return std::string("\"") + name + "\":{" +
           "\"scalar_us\":" + std::to_string(scalar_us) +
           ",\"vectorized_plain_us\":" + std::to_string(plain_us) +
           ",\"vectorized_dict_us\":" + std::to_string(dict_us) +
           ",\"dict_vs_plain\":" + std::to_string(plain_us / dict_us) +
           ",\"dict_vs_scalar\":" + std::to_string(scalar_us / dict_us) + "}";
  };
  std::string json =
      std::string("{\"rows\":") + std::to_string(config.rows) +
      ",\"smoke\":" + (config.smoke ? "true" : "false") +
      ",\"predicate\":\"categorical compound (5 string comparisons)\"," +
      section("restrict", restrict_scalar_us, restrict_plain_us,
              restrict_dict_us) +
      "," +
      section("group_by", groupby_scalar_us, groupby_plain_us, groupby_dict_us) +
      "," + section("join", join_scalar_us, join_plain_us, join_dict_us) +
      ",\"fig07\":{\"dict_on\":{\"nodes_fallback\":" +
      std::to_string(fig_on.nodes_fallback) +
      ",\"nodes_vectorized\":" + std::to_string(fig_on.nodes_vectorized) +
      ",\"dict_simd_batches\":" + std::to_string(fig_on.dict_simd_batches) +
      ",\"dict_columns_built\":" + std::to_string(fig_on.dict_columns_built) +
      "},\"dict_off\":{\"nodes_fallback\":" +
      std::to_string(fig_off.nodes_fallback) +
      ",\"nodes_vectorized\":" + std::to_string(fig_off.nodes_vectorized) +
      ",\"dict_simd_batches\":" + std::to_string(fig_off.dict_simd_batches) +
      ",\"dict_columns_built\":" + std::to_string(fig_off.dict_columns_built) +
      "}}}";
  std::ofstream out(config.out);
  out << json << "\n";
  out.close();

  std::printf(
      "  categorical restrict (%zu rows): %.0f us scalar, %.0f us plain "
      "vectorized, %.0f us dict (%.2fx over plain, %.2fx over scalar)\n",
      config.rows, restrict_scalar_us, restrict_plain_us, restrict_dict_us,
      restrict_plain_us / restrict_dict_us,
      restrict_scalar_us / restrict_dict_us);
  std::printf(
      "  state group-by:                  %.0f us scalar, %.0f us plain "
      "vectorized, %.0f us dict (%.2fx over plain, %.2fx over scalar)\n",
      groupby_scalar_us, groupby_plain_us, groupby_dict_us,
      groupby_plain_us / groupby_dict_us, groupby_scalar_us / groupby_dict_us);
  std::printf(
      "  state-key join:                  %.0f us scalar, %.0f us plain "
      "vectorized, %.0f us dict (%.2fx over plain, %.2fx over scalar)\n",
      join_scalar_us, join_plain_us, join_dict_us, join_plain_us / join_dict_us,
      join_scalar_us / join_dict_us);
  std::printf(
      "  fig07 trace: dict on — fallback %llu / vectorized %llu / dict "
      "batches %llu; dict off — fallback %llu / vectorized %llu\n",
      static_cast<unsigned long long>(fig_on.nodes_fallback),
      static_cast<unsigned long long>(fig_on.nodes_vectorized),
      static_cast<unsigned long long>(fig_on.dict_simd_batches),
      static_cast<unsigned long long>(fig_off.nodes_fallback),
      static_cast<unsigned long long>(fig_off.nodes_vectorized));
  std::printf("  -> %s\n", config.out.c_str());
  return 0;
}

}  // namespace
}  // namespace tioga2::bench

int main(int argc, char** argv) { return tioga2::bench::Run(argc, argv); }
