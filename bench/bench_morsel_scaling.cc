// Morsel-scaling ablation (ROADMAP "Morsel-driven intra-operator
// parallelism"): how Restrict and the hash-join probe scale when their
// inputs split into fixed-size morsels fanned out across a ThreadPool
// (db/morsel.h), swept over 1/2/4/8 threads x morsel sizes.
//
// Two workloads:
//   restrict_chain — the Figure 7 shape at ~200k stations: three chained
//     Restricts over the station table (each output a selection view
//     composed over the last), the operator the fig07 layers spend their
//     time in.
//   join — the 50k x 100k stations-x-observations equi-join of
//     bench_join_columnar; the build stays serial, the probe morselizes.
//
// Correctness is asserted here too, not just in tests: every cell of the
// sweep must produce a relation equal to the serial run, and a fig07
// program evaluated under an 8-thread morsel policy must reproduce the
// serial dataflow::Engine's output fingerprints and memo stamps exactly.
//
// Writes bench_out/morsel_scaling.json (recorded in EXPERIMENTS.md). The
// speedup claim is hardware-bounded: on fewer than 8 visible cores the
// wall-clock target cannot reproduce, so the JSON carries hardware_cores
// and the claim degrades to a low-overhead check, as in claim_parallel.

#include "bench/bench_common.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "db/morsel.h"
#include "db/operators.h"
#include "runtime/parallel_engine.h"
#include "runtime/thread_pool.h"
#include "testing/fig_programs.h"
#include "tioga2/environment.h"

namespace tioga2::bench {
namespace {

constexpr size_t kRestrictStations = 200000;
constexpr size_t kJoinStations = 50000;
constexpr size_t kThreadCounts[] = {1, 2, 4, 8};
constexpr size_t kMorselSizes[] = {8192, 32768, 131072};

struct Cell {
  size_t threads = 0;
  size_t morsel_rows = 0;
  double micros = 0;
};

double TimeUs(const std::function<void()>& fn) {
  constexpr int kIters = 5;
  fn();  // warm-up
  double best = 0;
  for (int i = 0; i < kIters; ++i) {
    auto start = std::chrono::steady_clock::now();
    fn();
    double micros = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    if (i == 0 || micros < best) best = micros;
  }
  return best;
}

/// Sweeps `run` over the thread x morsel-size grid, checking each cell's
/// output against `serial` via `equals`. Returns the grid timings.
template <typename RunFn, typename EqualsFn>
std::vector<Cell> Sweep(const RunFn& run, const EqualsFn& equals,
                        bool* identical) {
  std::vector<Cell> cells;
  for (size_t threads : kThreadCounts) {
    runtime::ThreadPool pool(threads);
    for (size_t morsel_rows : kMorselSizes) {
      db::ExecPolicy policy;
      policy.morsel_rows = morsel_rows;
      policy.runner = &pool;
      Cell cell;
      cell.threads = threads;
      cell.morsel_rows = morsel_rows;
      cell.micros = TimeUs([&] { run(policy); });
      *identical = *identical && equals(policy);
      cells.push_back(cell);
    }
  }
  return cells;
}

double BestAtThreads(const std::vector<Cell>& cells, size_t threads) {
  double best = 0;
  for (const Cell& cell : cells) {
    if (cell.threads != threads) continue;
    if (best == 0 || cell.micros < best) best = cell.micros;
  }
  return best;
}

void AppendGridJson(std::ofstream& out, double serial_us,
                    const std::vector<Cell>& cells) {
  out << "\"serial_us\": " << serial_us << ", \"grid\": [";
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out << ", ";
    out << "{\"threads\": " << cells[i].threads
        << ", \"morsel_rows\": " << cells[i].morsel_rows
        << ", \"us\": " << cells[i].micros
        << ", \"speedup\": " << serial_us / cells[i].micros << "}";
  }
  out << "]";
}

void PrintGrid(const char* name, double serial_us,
               const std::vector<Cell>& cells) {
  std::printf("  %s: serial %0.0f us\n", name, serial_us);
  for (const Cell& cell : cells) {
    std::printf("    %zu thread%s morsel=%-6zu %10.0f us (speedup %.2fx)\n",
                cell.threads, cell.threads == 1 ? ", " : "s,",
                cell.morsel_rows, cell.micros, serial_us / cell.micros);
  }
}

/// Serial-vs-morsel program-level check: fig07's output fingerprints and
/// memo stamps under an 8-thread small-morsel policy must equal the serial
/// engine's. Returns false (and prints) on any mismatch.
bool Fig7StampsIdentical() {
  const testing::FigProgram* fig7 = nullptr;
  for (const testing::FigProgram& program : testing::AllFigPrograms()) {
    if (std::string(program.name).find("fig07") != std::string::npos) {
      fig7 = &program;
      break;
    }
  }
  if (fig7 == nullptr) {
    std::printf("  (no fig07 program found; skipping stamp check)\n");
    return false;
  }
  auto build = [&](Environment* env) {
    MustOk(env->LoadDemoData(fig7->extra_stations, fig7->num_days), "load");
    MustOk(fig7->build(env), "build");
  };
  Environment serial_env;
  build(&serial_env);
  ui::Session& serial_session = serial_env.session();
  MustOk(serial_session.engine().EvaluateAll(serial_session.graph()), "serial");

  Environment env;
  build(&env);
  ui::Session& session = env.session();
  runtime::ThreadPool pool(8);
  runtime::ParallelEngine engine(session.catalog(), &pool);
  db::ExecPolicy policy;
  policy.morsel_rows = 4096;
  engine.set_exec_policy(policy);
  MustOk(engine.EvaluateAll(session.graph()), "morsel");

  bool identical = true;
  for (const std::string& id : serial_session.graph().BoxIds()) {
    if (serial_session.engine().cache().StampOf(id) != engine.cache().StampOf(id)) {
      std::printf("  STAMP MISMATCH at box %s\n", id.c_str());
      identical = false;
    }
  }
  return identical;
}

void Report() {
  ReportHeader("Morsel scaling",
               "intra-operator parallelism: threads x morsel size ablation");
  const unsigned cores = std::thread::hardware_concurrency();
  bool identical = true;

  // ---- Workload 1: fig07-style Restrict chain over ~200k stations. -------
  auto stations = Must(data::MakeStations(kRestrictStations, 7), "stations");
  stations->columnar();  // steady state: input arrives columnar
  const char* predicates[] = {
      "latitude > 30.0 and latitude < 47.5",
      "longitude < -85.0 or altitude > 120.0",
      "state != \"LA\" or altitude <= 400.0",
  };
  auto run_chain = [&](const db::ExecPolicy& policy) {
    db::RelationPtr current = stations;
    for (const char* predicate : predicates) {
      auto compiled = Must(db::CompilePredicate(current->schema(), predicate),
                           "predicate");
      current = Must(db::Restrict(current, compiled, policy), "restrict");
    }
    return current;
  };
  db::RelationPtr serial_chain = run_chain(db::ExecPolicy{});
  double chain_serial_us = TimeUs([&] { run_chain(db::ExecPolicy{}); });
  std::vector<Cell> chain_cells = Sweep(
      run_chain,
      [&](const db::ExecPolicy& policy) {
        return db::RelationEquals(*serial_chain, *run_chain(policy));
      },
      &identical);
  PrintGrid("restrict chain (200k rows, 3 composed restricts)",
            chain_serial_us, chain_cells);

  // ---- Workload 2: 50k x 100k equi-join, morselized hash probe. ----------
  auto build_side = Must(data::MakeStations(kJoinStations, 7), "stations");
  auto probe_side =
      Must(data::MakeObservations(*build_side, types::Date::FromYmd(1985, 1, 1),
                                  2, 8),
           "observations");
  build_side->columnar();
  probe_side->columnar();
  const char* join_predicate = "station_id = station_id_2";
  auto run_join = [&](const db::ExecPolicy& policy) {
    return Must(db::Join(build_side, probe_side, join_predicate, policy), "join")
        .relation;
  };
  db::RelationPtr serial_join = run_join(db::ExecPolicy{});
  double join_serial_us = TimeUs([&] { run_join(db::ExecPolicy{}); });
  std::vector<Cell> join_cells = Sweep(
      run_join,
      [&](const db::ExecPolicy& policy) {
        return db::RelationEquals(*serial_join, *run_join(policy));
      },
      &identical);
  PrintGrid("hash join (50k build, ~100k probe)", join_serial_us, join_cells);

  std::printf("  outputs identical to serial in every cell: %s\n",
              identical ? "yes" : "NO");
  bool stamps_identical = Fig7StampsIdentical();
  std::printf("  fig07 stamps identical under 8-thread morsel policy: %s\n",
              stamps_identical ? "yes" : "NO");

  // ---- The hardware-bounded claim. ----------------------------------------
  const double chain_speedup8 =
      chain_serial_us / BestAtThreads(chain_cells, 8);
  std::string claim_status;
  if (cores >= 8) {
    claim_status = chain_speedup8 >= 3.0 ? "REPRODUCED" : "NOT reproduced";
    std::printf("  claim (>= 3x on restrict chain at 8 threads, %u cores): "
                "%.2fx -> %s\n",
                cores, chain_speedup8, claim_status.c_str());
  } else {
    // One visible core: morsels time-slice it, so the most a correct
    // executor can do is stay out of the way. Gate on overhead instead.
    const bool low_overhead = chain_speedup8 >= 1.0 / 1.15;
    claim_status = low_overhead
                       ? "HARDWARE-BOUNDED (overhead ok; re-run on >= 8 cores)"
                       : "FAIL (executor overhead above 15%)";
    std::printf("  claim: only %u core(s) visible, no wall-clock speedup "
                "possible here.\n  checked instead: 8-thread overhead %.1f%% "
                "-> %s\n",
                cores, (1.0 / chain_speedup8 - 1.0) * 100.0,
                claim_status.c_str());
  }

  std::ofstream out(OutDir() + "/morsel_scaling.json");
  out << "{\n  \"benchmark\": \"morsel_scaling\",\n"
      << "  \"hardware_cores\": " << cores << ",\n"
      << "  \"restrict_chain\": {\"rows\": " << stations->num_rows() << ", ";
  AppendGridJson(out, chain_serial_us, chain_cells);
  out << "},\n  \"join\": {\"build_rows\": " << build_side->num_rows()
      << ", \"probe_rows\": " << probe_side->num_rows() << ", ";
  AppendGridJson(out, join_serial_us, join_cells);
  out << "},\n"
      << "  \"outputs_identical\": " << (identical ? "true" : "false") << ",\n"
      << "  \"fig07_stamps_identical\": "
      << (stamps_identical ? "true" : "false") << ",\n"
      << "  \"restrict_chain_speedup_8_threads\": " << chain_speedup8 << ",\n"
      << "  \"claim_3x_at_8_threads\": \"" << claim_status << "\"\n}\n";
  std::printf("  wrote %s/morsel_scaling.json\n", OutDir().c_str());
}

void BM_RestrictMorsels(benchmark::State& state) {
  auto stations = Must(data::MakeStations(100000, 7), "stations");
  stations->columnar();
  auto compiled = Must(
      db::CompilePredicate(stations->schema(), "latitude > 30.0"), "predicate");
  runtime::ThreadPool pool(static_cast<size_t>(state.range(0)));
  db::ExecPolicy policy;
  policy.morsel_rows = static_cast<size_t>(state.range(1));
  policy.runner = state.range(0) > 0 ? &pool : nullptr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db::Restrict(stations, compiled, policy));
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["morsel_rows"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_RestrictMorsels)
    ->Args({0, 32768})
    ->Args({2, 32768})
    ->Args({8, 32768})
    ->Args({8, 8192});

}  // namespace
}  // namespace tioga2::bench

int main(int argc, char** argv) {
  tioga2::bench::Report();
  return tioga2::bench::RunBenchmarks(argc, argv);
}
