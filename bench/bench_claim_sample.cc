// Paper claim (§4.2): "Sample is useful for improving interactive response
// by reducing the size of data sets to be processed."
//
// Reproduction: end-to-end canvas latency (evaluate + render) of a large
// observation scatter as a function of the sampling probability. The claim
// holds if latency scales down roughly linearly with p while the picture
// stays representative.

#include "bench/bench_common.h"

#include <chrono>

#include "common/str_util.h"
#include "db/operators.h"

namespace tioga2::bench {
namespace {

void BuildSampled(Environment* env, double probability, const std::string& canvas) {
  ui::Session& session = env->session();
  std::string previous = Must(session.AddTable("Observations"), "obs");
  auto chain = [&](const std::string& type,
                   const std::map<std::string, std::string>& params) {
    std::string id = Must(session.AddBox(type, params), type.c_str());
    MustOk(session.Connect(previous, 0, id, 0), "connect");
    previous = id;
  };
  if (probability < 1.0) {
    chain("Sample", {{"probability", FormatDouble(probability)}, {"seed", "42"}});
  }
  chain("AddAttribute", {{"name", "t"}, {"definition", "float(days(obs_date))"}});
  chain("SetLocation", {{"dim", "0"}, {"attr", "t"}});
  chain("SetLocation", {{"dim", "1"}, {"attr", "temperature"}});
  chain("AddAttribute", {{"name", "d"}, {"definition", "point(\"#1e46c8\")"}});
  chain("SetDisplay", {{"attr", "d"}});
  Must(session.AddViewer(previous, 0, canvas), "viewer");
}

void Report() {
  ReportHeader("Claim: Sample for interactive response",
               "\"Sample is useful for improving interactive response\" (§4.2)");
  Environment env;
  MustOk(env.LoadDemoData(100, 365), "load");  // 115 stations x 365 days
  std::printf("  workload: %zu observation tuples end-to-end (evaluate + render)\n",
              Must(env.catalog().GetTable("Observations"), "t")->num_rows());
  std::printf("  %-6s %12s %12s\n", "p", "tuples", "latency(ms)");
  for (double p : {0.01, 0.05, 0.1, 0.25, 0.5, 1.0}) {
    Environment fresh;
    MustOk(fresh.LoadDemoData(100, 365), "load");
    BuildSampled(&fresh, p, "series");
    auto viewer = Must(fresh.GetViewer("series"), "viewer");
    MustOk(viewer->FitContent(640, 480), "fit");
    render::Framebuffer fb(640, 480);
    render::RasterSurface surface(&fb);
    // Median-ish of 3 runs, cold engine each time (the interactive case is
    // a fresh query).
    double best_ms = 1e18;
    size_t drawn = 0;
    for (int run = 0; run < 3; ++run) {
      fresh.session().engine().InvalidateAll();
      fb.Clear(draw::kWhite);
      auto start = std::chrono::steady_clock::now();
      MustOk(viewer->Refresh(), "refresh");
      auto stats = Must(viewer->RenderTo(&surface), "render");
      auto end = std::chrono::steady_clock::now();
      double ms = std::chrono::duration<double, std::milli>(end - start).count();
      best_ms = std::min(best_ms, ms);
      drawn = stats.tuples_drawn + stats.tuples_culled_viewport +
              stats.tuples_culled_slider;
    }
    std::printf("  %-6g %12zu %12.2f\n", p, drawn, best_ms);
  }
}

void BM_EndToEndBySampleProbability(benchmark::State& state) {
  Environment env;
  MustOk(env.LoadDemoData(100, 365), "load");
  double probability = static_cast<double>(state.range(0)) / 100.0;
  BuildSampled(&env, probability, "series");
  auto viewer = Must(env.GetViewer("series"), "viewer");
  MustOk(viewer->FitContent(640, 480), "fit");
  render::Framebuffer fb(640, 480);
  render::RasterSurface surface(&fb);
  for (auto _ : state) {
    env.session().engine().InvalidateAll();
    fb.Clear(draw::kWhite);
    MustOk(viewer->Refresh(), "refresh");
    benchmark::DoNotOptimize(viewer->RenderTo(&surface));
  }
  state.counters["p_percent"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_EndToEndBySampleProbability)->Arg(1)->Arg(10)->Arg(25)->Arg(100);

void BM_SampleOperatorOnly(benchmark::State& state) {
  Environment env;
  MustOk(env.LoadDemoData(100, 365), "load");
  auto observations = Must(env.catalog().GetTable("Observations"), "t");
  double probability = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db::Sample(observations, probability, 42));
  }
  state.counters["p_percent"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SampleOperatorOnly)->Arg(1)->Arg(25)->Arg(100);

}  // namespace
}  // namespace tioga2::bench

int main(int argc, char** argv) {
  tioga2::bench::Report();
  return tioga2::bench::RunBenchmarks(argc, argv);
}
