// Paper claim (§2): "Execution is lazy, evaluating only what is required to
// produce the demanded visualization", and (§1.2) incremental modifications
// give immediate feedback.
//
// Reproduction + ablation (DESIGN.md §4): lazy demand-driven evaluation vs
// the eager evaluate-everything baseline on a program with many undemanded
// branches, and memoized vs cold recomputation after a one-box edit.

#include "bench/bench_common.h"

namespace tioga2::bench {
namespace {

/// Builds a program with one demanded chain and `branches` undemanded
/// side-branches hanging off the source (each a Restrict + Project).
void BuildBranchy(Environment* env, int branches) {
  ui::Session& session = env->session();
  std::string stations = Must(session.AddTable("Stations"), "t");
  std::string demanded =
      Must(session.AddBox("Restrict", {{"predicate", "state = \"LA\""}}), "r");
  MustOk(session.Connect(stations, 0, demanded, 0), "w");
  Must(session.AddViewer(demanded, 0, "demanded"), "viewer");
  for (int i = 0; i < branches; ++i) {
    std::string r = Must(
        session.AddBox("Restrict",
                       {{"predicate", "altitude > " + std::to_string(i * 10)}}),
        "r");
    std::string p =
        Must(session.AddBox("Project", {{"columns", "name,altitude"}}), "p");
    MustOk(session.Connect(stations, 0, r, 0), "w");
    MustOk(session.Connect(r, 0, p, 0), "w");
  }
}

void Report() {
  ReportHeader("Claim: lazy evaluation",
               "\"execution is lazy, evaluating only what is required\" (§2)");
  Environment env;
  MustOk(env.LoadDemoData(5000, 10), "load");
  BuildBranchy(&env, 16);
  ui::Session& session = env.session();
  session.engine().ResetStats();
  MustOk(session.EvaluateCanvas("demanded").status(), "lazy");
  uint64_t lazy_fired = session.engine().stats().boxes_fired;
  session.engine().InvalidateAll();
  session.engine().ResetStats();
  MustOk(session.engine().EvaluateAll(session.graph()), "eager");
  uint64_t eager_fired = session.engine().stats().boxes_fired;
  std::printf("  program: 1 demanded chain + 16 idle branches (%zu boxes)\n",
              session.graph().num_boxes());
  std::printf("  lazy (demanded viewer only): %llu boxes fired\n",
              static_cast<unsigned long long>(lazy_fired));
  std::printf("  eager (whole program):       %llu boxes fired (%.1fx more work)\n",
              static_cast<unsigned long long>(eager_fired),
              static_cast<double>(eager_fired) / static_cast<double>(lazy_fired));

  // Incremental feedback: edit one box, recompute.
  session.engine().InvalidateAll();
  MustOk(session.EvaluateCanvas("demanded").status(), "warm");
  session.engine().ResetStats();
  MustOk(session.EvaluateCanvas("demanded").status(), "memo");
  std::printf("  re-evaluation after no edit: %llu boxes fired, %llu cache hits\n",
              static_cast<unsigned long long>(session.engine().stats().boxes_fired),
              static_cast<unsigned long long>(session.engine().stats().cache_hits));
}

void BM_LazyDemandedOnly(benchmark::State& state) {
  Environment env;
  MustOk(env.LoadDemoData(2000, 10), "load");
  BuildBranchy(&env, static_cast<int>(state.range(0)));
  ui::Session& session = env.session();
  for (auto _ : state) {
    session.engine().InvalidateAll();
    benchmark::DoNotOptimize(session.EvaluateCanvas("demanded"));
  }
  state.counters["idle_branches"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_LazyDemandedOnly)->Arg(0)->Arg(8)->Arg(32);

void BM_EagerWholeProgram(benchmark::State& state) {
  Environment env;
  MustOk(env.LoadDemoData(2000, 10), "load");
  BuildBranchy(&env, static_cast<int>(state.range(0)));
  ui::Session& session = env.session();
  for (auto _ : state) {
    session.engine().InvalidateAll();
    MustOk(session.engine().EvaluateAll(session.graph()), "eager");
  }
  state.counters["idle_branches"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_EagerWholeProgram)->Arg(0)->Arg(8)->Arg(32);

void BM_IncrementalEditMemoized(benchmark::State& state) {
  // Edit the tail of a deep chain: with memoization only the edited suffix
  // re-fires, so feedback latency is independent of upstream depth.
  Environment env;
  MustOk(env.LoadDemoData(2000, 10), "load");
  ui::Session& session = env.session();
  std::string previous = Must(session.AddTable("Stations"), "t");
  for (int64_t i = 0; i < state.range(0); ++i) {
    std::string box = Must(
        session.AddBox("Restrict",
                       {{"predicate", "altitude > " + std::to_string(i)}}),
        "r");
    MustOk(session.Connect(previous, 0, box, 0), "w");
    previous = box;
  }
  std::string tail = Must(session.AddBox("Restrict", {{"predicate", "true"}}), "tail");
  MustOk(session.Connect(previous, 0, tail, 0), "w");
  Must(session.AddViewer(tail, 0, "deep"), "viewer");
  MustOk(session.EvaluateCanvas("deep").status(), "warm");
  int64_t flip = 0;
  for (auto _ : state) {
    MustOk(session.ReplaceBox(
               tail, "Restrict",
               {{"predicate", (flip++ % 2) == 0 ? "altitude >= 0" : "true"}}),
           "edit");
    benchmark::DoNotOptimize(session.EvaluateCanvas("deep"));
  }
  state.counters["chain_depth"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_IncrementalEditMemoized)->Arg(2)->Arg(8)->Arg(32);

void BM_IncrementalEditCold(benchmark::State& state) {
  // The no-memoization baseline: invalidate everything on each edit.
  Environment env;
  MustOk(env.LoadDemoData(2000, 10), "load");
  ui::Session& session = env.session();
  std::string previous = Must(session.AddTable("Stations"), "t");
  for (int64_t i = 0; i < state.range(0); ++i) {
    std::string box = Must(
        session.AddBox("Restrict",
                       {{"predicate", "altitude > " + std::to_string(i)}}),
        "r");
    MustOk(session.Connect(previous, 0, box, 0), "w");
    previous = box;
  }
  std::string tail = Must(session.AddBox("Restrict", {{"predicate", "true"}}), "tail");
  MustOk(session.Connect(previous, 0, tail, 0), "w");
  Must(session.AddViewer(tail, 0, "deep"), "viewer");
  int64_t flip = 0;
  for (auto _ : state) {
    MustOk(session.ReplaceBox(
               tail, "Restrict",
               {{"predicate", (flip++ % 2) == 0 ? "altitude >= 0" : "true"}}),
           "edit");
    session.engine().InvalidateAll();
    benchmark::DoNotOptimize(session.EvaluateCanvas("deep"));
  }
  state.counters["chain_depth"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_IncrementalEditCold)->Arg(2)->Arg(8)->Arg(32);

}  // namespace
}  // namespace tioga2::bench

int main(int argc, char** argv) {
  tioga2::bench::Report();
  return tioga2::bench::RunBenchmarks(argc, argv);
}
