#ifndef TIOGA2_BENCH_BENCH_COMMON_H_
#define TIOGA2_BENCH_BENCH_COMMON_H_

// Shared helpers for the figure-reproduction benchmarks. Each bench binary
// prints a human-readable reproduction report for its figure (what the
// paper shows, what this build produces — recorded in EXPERIMENTS.md), then
// runs google-benchmark timings.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "tioga2/environment.h"

namespace tioga2::bench {

template <typename T>
T Must(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

inline void MustOk(Status status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

/// Directory for rendered artifacts; created on first use.
inline std::string OutDir() {
  std::error_code ec;
  std::filesystem::create_directories("bench_out", ec);
  return "bench_out";
}

inline void ReportHeader(const char* id, const char* paper_content) {
  std::printf("==============================================================\n");
  std::printf("Reproduction %s\n", id);
  std::printf("  paper: %s\n", paper_content);
}

/// Builds the Figure 4 Louisiana scatter program inside `env`'s session:
/// Stations -> Restrict(LA) -> SetLocation(lon/lat) -> Altitude slider ->
/// circle display. Returns the id of the final box; the canvas is
/// registered as `canvas`.
inline std::string BuildScatter(Environment* env, const std::string& canvas) {
  ui::Session& session = env->session();
  std::string stations = Must(session.AddTable("Stations"), "Stations");
  std::string previous = stations;
  auto chain = [&](const std::string& type,
                   const std::map<std::string, std::string>& params) {
    std::string id = Must(session.AddBox(type, params), type.c_str());
    MustOk(session.Connect(previous, 0, id, 0), "connect");
    previous = id;
  };
  chain("Restrict", {{"predicate", "state = \"LA\""}});
  chain("SetLocation", {{"dim", "0"}, {"attr", "longitude"}});
  chain("SetLocation", {{"dim", "1"}, {"attr", "latitude"}});
  chain("AddLocationDimension", {{"attr", "altitude"}});
  chain("AddAttribute",
        {{"name", "dot"}, {"definition", "circle(0.05, \"#c81e1e\", true)"}});
  chain("SetDisplay", {{"attr", "dot"}});
  Must(session.AddViewer(previous, 0, canvas), "viewer");
  return previous;
}

/// Runs google-benchmark with a short default min time so the whole bench
/// suite stays fast on one core; callers may still override on the command
/// line.
inline int RunBenchmarks(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string min_time = "--benchmark_min_time=0.05";
  bool user_set = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_min_time", 0) == 0) user_set = true;
  }
  if (!user_set) args.push_back(min_time.data());
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace tioga2::bench

#endif  // TIOGA2_BENCH_BENCH_COMMON_H_
