// Figure 1: the program window with Stations -> Restrict -> Viewer and the
// default two-dimensional table view (§4, §5.2).
//
// Reproduction: builds the exact program of Figure 1 through the Session,
// evaluates it through the lazy engine, and renders the default
// terminal-monitor-style display to bench_out/fig01.ppm.
// Benchmarks: program construction, cold and memoized evaluation, and the
// default-display render.

#include "bench/bench_common.h"

namespace tioga2::bench {
namespace {

constexpr size_t kExtraStations = 200;

void Report() {
  ReportHeader("Figure 1",
               "program window + canvas with default table view of LA stations");
  Environment env;
  MustOk(env.LoadDemoData(kExtraStations, /*num_days=*/30), "load");
  ui::Session& session = env.session();
  std::string stations = Must(session.AddTable("Stations"), "Stations");
  std::string restrict =
      Must(session.AddBox("Restrict", {{"predicate", "state = \"LA\""}}), "Restrict");
  MustOk(session.Connect(stations, 0, restrict, 0), "connect");
  Must(session.AddViewer(restrict, 0, "fig1"), "viewer");

  auto content = Must(session.EvaluateCanvas("fig1"), "evaluate");
  auto relation = Must(display::AsRelation(content), "relation");
  std::printf("  built program: %s", session.graph().ToString().c_str());
  std::printf("  result: %zu LA stations of %zu total\n", relation.num_rows(),
              kExtraStations + 15);
  auto viewer = Must(env.GetViewer("fig1"), "viewer");
  MustOk(viewer->FitContent(800, 600), "fit");
  auto stats =
      Must(env.RenderViewer(viewer, 800, 600, OutDir() + "/fig01.ppm"), "render");
  std::printf("  rendered default table display: %zu tuples -> %s/fig01.ppm\n",
              stats.tuples_drawn, OutDir().c_str());
}

void BM_BuildProgram(benchmark::State& state) {
  Environment env;
  MustOk(env.LoadDemoData(kExtraStations, 30), "load");
  for (auto _ : state) {
    ui::Session session(&env.catalog());
    std::string stations = Must(session.AddTable("Stations"), "Stations");
    std::string restrict =
        Must(session.AddBox("Restrict", {{"predicate", "state = \"LA\""}}), "R");
    MustOk(session.Connect(stations, 0, restrict, 0), "connect");
    Must(session.AddViewer(restrict, 0, "fig1"), "viewer");
    benchmark::DoNotOptimize(session.graph().num_boxes());
  }
}
BENCHMARK(BM_BuildProgram);

void BM_EvaluateCold(benchmark::State& state) {
  Environment env;
  MustOk(env.LoadDemoData(static_cast<size_t>(state.range(0)), 30), "load");
  ui::Session& session = env.session();
  std::string stations = Must(session.AddTable("Stations"), "Stations");
  std::string restrict =
      Must(session.AddBox("Restrict", {{"predicate", "state = \"LA\""}}), "R");
  MustOk(session.Connect(stations, 0, restrict, 0), "connect");
  Must(session.AddViewer(restrict, 0, "fig1"), "viewer");
  for (auto _ : state) {
    session.engine().InvalidateAll();
    benchmark::DoNotOptimize(session.EvaluateCanvas("fig1"));
  }
  state.counters["stations"] = static_cast<double>(state.range(0)) + 15;
}
BENCHMARK(BM_EvaluateCold)->Arg(100)->Arg(1000)->Arg(10000);

void BM_EvaluateMemoized(benchmark::State& state) {
  Environment env;
  MustOk(env.LoadDemoData(10000, 30), "load");
  ui::Session& session = env.session();
  std::string stations = Must(session.AddTable("Stations"), "Stations");
  std::string restrict =
      Must(session.AddBox("Restrict", {{"predicate", "state = \"LA\""}}), "R");
  MustOk(session.Connect(stations, 0, restrict, 0), "connect");
  Must(session.AddViewer(restrict, 0, "fig1"), "viewer");
  MustOk(session.EvaluateCanvas("fig1").status(), "warm");
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.EvaluateCanvas("fig1"));
  }
}
BENCHMARK(BM_EvaluateMemoized);

void BM_RenderDefaultTable(benchmark::State& state) {
  Environment env;
  MustOk(env.LoadDemoData(kExtraStations, 30), "load");
  ui::Session& session = env.session();
  std::string stations = Must(session.AddTable("Stations"), "Stations");
  std::string restrict =
      Must(session.AddBox("Restrict", {{"predicate", "state = \"LA\""}}), "R");
  MustOk(session.Connect(stations, 0, restrict, 0), "connect");
  Must(session.AddViewer(restrict, 0, "fig1"), "viewer");
  auto viewer = Must(env.GetViewer("fig1"), "viewer");
  MustOk(viewer->FitContent(800, 600), "fit");
  render::Framebuffer fb(800, 600);
  render::RasterSurface surface(&fb);
  for (auto _ : state) {
    fb.Clear(draw::kWhite);
    benchmark::DoNotOptimize(viewer->RenderTo(&surface));
  }
}
BENCHMARK(BM_RenderDefaultTable);

}  // namespace
}  // namespace tioga2::bench

int main(int argc, char** argv) {
  tioga2::bench::Report();
  return tioga2::bench::RunBenchmarks(argc, argv);
}
