// Parallel-runtime claim: evaluating a multi-layer visualization through
// runtime::ParallelEngine is faster than the serial engine, with
// bit-identical results (runtime_determinism_test asserts the equality; this
// bench measures the speedup and exports it to bench_out/).
//
// The program is Figure 7 *as drawn*: three independent layers — Dots,
// Labels, and the Louisiana map — each with its own source-to-display chain,
// overlaid at the end. The serial engine walks the layers one after another;
// the parallel engine fires them concurrently, bounded by the heaviest
// single chain.

#include "bench/bench_common.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

#include "runtime/metrics.h"
#include "runtime/parallel_engine.h"
#include "runtime/thread_pool.h"
#include "testing/fig_programs.h"

namespace tioga2::bench {
namespace {

constexpr size_t kStations = 20000;
constexpr size_t kNumDays = 5;

/// Builds Figure 7 with fully independent layers (each layer restricts the
/// station table itself, as in the paper's drawing) and returns the id of
/// the final Overlay — the evaluation target.
std::string BuildFig7AsDrawn(Environment* env) {
  ui::Session& session = env->session();
  auto chain = [&session](std::string previous,
                          std::initializer_list<std::pair<
                              std::string, std::map<std::string, std::string>>>
                              boxes) {
    for (const auto& [type, params] : boxes) {
      std::string id = Must(session.AddBox(type, params), type.c_str());
      MustOk(session.Connect(previous, 0, id, 0), "connect");
      previous = id;
    }
    return previous;
  };
  auto scatter = [&](const char* what) {
    return chain(Must(session.AddTable("Stations"), what), {
        {"Restrict", {{"predicate", "state = \"LA\""}}},
        {"SetLocation", {{"dim", "0"}, {"attr", "longitude"}}},
        {"SetLocation", {{"dim", "1"}, {"attr", "latitude"}}},
        {"AddLocationDimension", {{"attr", "altitude"}}}});
  };
  std::string dots = chain(scatter("dots"), {
      {"AddAttribute",
       {{"name", "c"}, {"definition", "circle(0.05, \"#c81e1e\", true)"}}},
      {"SetDisplay", {{"attr", "c"}}},
      {"SetRange", {{"min", "2"}, {"max", "1000"}}},
      {"SetName", {{"name", "Dots"}}}});
  std::string labels = chain(scatter("labels"), {
      {"AddAttribute",
       {{"name", "l"},
        {"definition",
         "circle(0.05, \"#c81e1e\", true) + offset(text(name, 0.1), -0.25, -0.2)"}}},
      {"SetDisplay", {{"attr", "l"}}},
      {"SetRange", {{"min", "0"}, {"max", "2"}}},
      {"SetName", {{"name", "Labels"}}}});
  std::string map = chain(Must(session.AddTable("LouisianaMap"), "map"), {
      {"SetLocation", {{"dim", "0"}, {"attr", "x"}}},
      {"SetLocation", {{"dim", "1"}, {"attr", "y"}}},
      {"AddAttribute", {{"name", "seg"}, {"definition", "line(dx, dy, \"#646464\")"}}},
      {"SetDisplay", {{"attr", "seg"}}},
      {"SetName", {{"name", "Map"}}}});
  std::string overlay1 = Must(session.AddBox("Overlay", {{"offset", ""}}), "o1");
  MustOk(session.Connect(map, 0, overlay1, 0), "w");
  MustOk(session.Connect(dots, 0, overlay1, 1), "w");
  std::string overlay2 = Must(session.AddBox("Overlay", {{"offset", ""}}), "o2");
  MustOk(session.Connect(overlay1, 0, overlay2, 0), "w");
  MustOk(session.Connect(labels, 0, overlay2, 1), "w");
  Must(session.AddViewer(overlay2, 0, "fig7"), "viewer");
  return overlay2;
}

/// Best-of-`reps` cold-cache evaluation time in microseconds.
template <typename Invalidate, typename Evaluate>
double BestColdMicros(int reps, Invalidate invalidate, Evaluate evaluate) {
  double best = 0;
  for (int i = 0; i < reps; ++i) {
    invalidate();
    auto start = std::chrono::steady_clock::now();
    evaluate();
    double micros = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    if (i == 0 || micros < best) best = micros;
  }
  return best;
}

void Report() {
  ReportHeader("Parallel runtime",
               "multi-layer programs evaluate layers concurrently");
  Environment env;
  MustOk(env.LoadDemoData(kStations, kNumDays), "load");
  std::string target = BuildFig7AsDrawn(&env);
  ui::Session& session = env.session();
  const int reps = 5;

  double serial_us = BestColdMicros(
      reps, [&] { session.engine().InvalidateAll(); },
      [&] {
        Must(session.engine().Evaluate(session.graph(), target, 0), "serial");
      });
  std::string serial_print = testing::FingerprintBoxValue(
      Must(session.engine().Evaluate(session.graph(), target, 0), "serial"));
  std::printf("  serial engine:       %10.0f us (cold cache, best of %d)\n",
              serial_us, reps);

  runtime::Metrics metrics;
  std::map<size_t, double> parallel_us;
  bool identical = true;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    runtime::ThreadPool pool(threads);
    runtime::ParallelEngine engine(&env.catalog(), &pool, nullptr,
                                   threads == 4 ? &metrics : nullptr);
    parallel_us[threads] = BestColdMicros(
        reps, [&] { engine.InvalidateAll(); },
        [&] { Must(engine.Evaluate(session.graph(), target, 0), "parallel"); });
    identical =
        identical &&
        testing::FingerprintBoxValue(Must(
            engine.Evaluate(session.graph(), target, 0), "parallel")) ==
            serial_print;
    std::printf("  parallel, %zu thread%s %10.0f us (speedup %.2fx)\n", threads,
                threads == 1 ? ": " : "s:", parallel_us[threads],
                serial_us / parallel_us[threads]);
  }
  double speedup4 = serial_us / parallel_us[4];
  std::printf("  outputs bit-identical to serial: %s\n", identical ? "yes" : "NO");
  // The speedup is bounded by the machine: on a single-core box the layers
  // time-slice one core and the most a correct scheduler can do is stay out
  // of the way (overhead < 15%). With >= 4 cores the three independent
  // layers must deliver the >= 1.5x claim.
  unsigned cores = std::thread::hardware_concurrency();
  if (cores >= 4) {
    std::printf("  claim (>= 1.5x at 4 threads, %u cores): %.2fx -> %s\n", cores,
                speedup4, speedup4 >= 1.5 ? "REPRODUCED" : "NOT reproduced");
  } else {
    bool low_overhead = speedup4 >= 1.0 / 1.15;
    std::printf("  claim: only %u core(s) visible; no wall-clock speedup is "
                "possible here.\n  checked instead: scheduler overhead at 4 "
                "threads %.1f%% -> %s\n",
                cores, (1.0 / speedup4 - 1.0) * 100.0,
                low_overhead ? "PASS (re-run on >= 4 cores for the speedup)"
                             : "FAIL");
  }

  std::ofstream out(OutDir() + "/claim_parallel.json");
  out << "{\n  \"benchmark\": \"claim_parallel\",\n"
      << "  \"program\": \"fig07_as_drawn\",\n"
      << "  \"extra_stations\": " << kStations << ",\n"
      << "  \"hardware_cores\": " << cores << ",\n"
      << "  \"serial_us\": " << serial_us << ",\n"
      << "  \"parallel_us\": {";
  bool first = true;
  for (const auto& [threads, micros] : parallel_us) {
    out << (first ? "" : ", ") << "\"" << threads << "\": " << micros;
    first = false;
  }
  out << "},\n"
      << "  \"speedup_4_threads\": " << speedup4 << ",\n"
      << "  \"outputs_identical\": " << (identical ? "true" : "false") << ",\n"
      << "  \"metrics_4_threads\": " << metrics.ToJson() << "\n}\n";
  std::printf("  wrote %s/claim_parallel.json\n", OutDir().c_str());
}

void BM_SerialColdEval(benchmark::State& state) {
  Environment env;
  MustOk(env.LoadDemoData(static_cast<size_t>(state.range(0)), kNumDays), "load");
  std::string target = BuildFig7AsDrawn(&env);
  ui::Session& session = env.session();
  for (auto _ : state) {
    session.engine().InvalidateAll();
    benchmark::DoNotOptimize(
        session.engine().Evaluate(session.graph(), target, 0));
  }
  state.counters["stations"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SerialColdEval)->Arg(4000);

void BM_ParallelColdEval(benchmark::State& state) {
  Environment env;
  MustOk(env.LoadDemoData(4000, kNumDays), "load");
  std::string target = BuildFig7AsDrawn(&env);
  runtime::ThreadPool pool(static_cast<size_t>(state.range(0)));
  runtime::ParallelEngine engine(&env.catalog(), &pool);
  for (auto _ : state) {
    engine.InvalidateAll();
    benchmark::DoNotOptimize(
        engine.Evaluate(env.session().graph(), target, 0));
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ParallelColdEval)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace tioga2::bench

int main(int argc, char** argv) {
  tioga2::bench::Report();
  return tioga2::bench::RunBenchmarks(argc, argv);
}
