// Lock-contention reproduction for the DESIGN.md §13 lock-free read paths:
// sweeps shared-memo-cache lookup throughput and catalog name-resolution
// throughput at 1 / 8 / 32 reader threads, comparing the epoch-reclaimed
// lock-free structures against in-bench mutex/shared_mutex baselines that
// model the pre-§13 synchronization (one mutex around the memo tier, a
// readers-writer lock around the catalog).
//
//   bench_lock_contention [--ops=N] [--entries=N] [--tables=N]
//                         [--smoke] [--out=PATH]
//
// --smoke shrinks the op counts for CI (scripts/check.sh `contention`) and
// turns on the gate assertions: the JSON must be written, and the 8-thread
// lock-free throughput must hold parity with 1 thread (margin below) —
// i.e. adding readers must not collapse the structure back to serialized.
// On a multi-core host the lock-free sweep separates further from the mutex
// baseline as threads grow; on a 1-core container the gate is parity, since
// time-slicing cannot add throughput. Emits bench_out/lock_contention.json.

#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench/bench_common.h"
#include "dataflow/memo_cache.h"
#include "dataflow/shared_memo_cache.h"
#include "db/catalog.h"
#include "db/relation.h"
#include "runtime/epoch.h"

namespace tioga2::bench {
namespace {

/// Parity margin for the smoke gate: on one core, T threads time-slice one
/// structure, so aggregate throughput should match one thread; the margin
/// absorbs scheduler noise on a loaded CI box.
constexpr double kSmokeParityMargin = 0.75;

struct Config {
  size_t ops_per_thread = 400000;
  size_t entries = 4096;   // shared-cache population
  size_t tables = 64;      // catalog population
  bool smoke = false;
  std::string out = "";
};

Config ParseFlags(int argc, char** argv) {
  Config config;
  auto value_of = [](const char* arg, const char* name) -> const char* {
    size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') return arg + len + 1;
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (const char* v = value_of(arg, "--ops")) {
      config.ops_per_thread = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of(arg, "--entries")) {
      config.entries = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of(arg, "--tables")) {
      config.tables = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of(arg, "--out")) {
      config.out = v;
    } else if (std::strcmp(arg, "--smoke") == 0) {
      config.smoke = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      std::exit(2);
    }
  }
  if (config.smoke) {
    config.ops_per_thread = 60000;
    config.entries = 1024;
    config.tables = 32;
  }
  if (config.out.empty()) config.out = OutDir() + "/lock_contention.json";
  return config;
}

uint64_t Mix(uint64_t x) {
  // splitmix64 finalizer: deterministic per-thread stamp sequence.
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Runs `op` ops_per_thread times on each of `threads` threads; returns
/// aggregate ops/second. `op(thread_index, i)` must consume its result into
/// `sink` itself to defeat dead-code elimination.
template <typename Op>
double Sweep(size_t threads, size_t ops_per_thread, Op op) {
  std::atomic<uint64_t> sink{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  auto start = std::chrono::steady_clock::now();
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      uint64_t local = 0;
      for (size_t i = 0; i < ops_per_thread; ++i) local += op(t, i);
      sink.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (auto& w : workers) w.join();
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (sink.load() == ~uint64_t{0}) std::printf("(impossible)\n");
  double total = static_cast<double>(threads) * static_cast<double>(ops_per_thread);
  return seconds > 0 ? total / seconds : 0.0;
}

/// The pre-§13 memo tier in miniature: one mutex around an unordered_map,
/// hit bookkeeping under the lock — what SharedMemoCache::Lookup used to do.
class MutexMemoBaseline {
 public:
  void Insert(uint64_t stamp, dataflow::MemoCache::EntryPtr entry) {
    std::lock_guard<std::mutex> lock(mu_);
    index_[stamp] = std::move(entry);
  }
  dataflow::MemoCache::EntryPtr Lookup(uint64_t stamp) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(stamp);
    if (it == index_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    return it->second;
  }

 private:
  std::mutex mu_;
  std::unordered_map<uint64_t, dataflow::MemoCache::EntryPtr> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

struct SweepResult {
  size_t threads = 0;
  double lockfree_ops = 0;
  double baseline_ops = 0;
};

std::string SweepJson(const std::vector<SweepResult>& rows) {
  std::string json = "[";
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) json += ',';
    char buffer[160];
    std::snprintf(buffer, sizeof(buffer),
                  "{\"threads\":%zu,\"lockfree_ops_per_sec\":%.0f,"
                  "\"baseline_ops_per_sec\":%.0f}",
                  rows[i].threads, rows[i].lockfree_ops, rows[i].baseline_ops);
    json += buffer;
  }
  json += "]";
  return json;
}

int Run(int argc, char** argv) {
  Config config = ParseFlags(argc, argv);
  ReportHeader("lock-contention (DESIGN.md §13)",
               "read-dominated hot paths must scale with reader threads");
  std::printf("  ops/thread=%zu entries=%zu tables=%zu%s\n",
              config.ops_per_thread, config.entries, config.tables,
              config.smoke ? " (smoke)" : "");

  const std::vector<size_t> thread_counts = {1, 8, 32};
  runtime::EpochDomain domain(128);

  // ---- Workload 1: shared-memo lookup (hot path of every box eval) ----
  dataflow::SharedMemoCache shared(config.entries, &domain);
  MutexMemoBaseline baseline;
  for (size_t s = 0; s < config.entries; ++s) {
    auto entry = std::make_shared<dataflow::MemoCache::Entry>();
    entry->stamp = Mix(s);
    shared.Insert(entry);
    baseline.Insert(entry->stamp, entry);
  }

  std::vector<SweepResult> memo;
  for (size_t threads : thread_counts) {
    SweepResult row;
    row.threads = threads;
    row.lockfree_ops =
        Sweep(threads, config.ops_per_thread, [&](size_t t, size_t i) {
          uint64_t stamp = Mix((t * 0x10001 + i) % config.entries);
          return shared.Lookup(stamp) != nullptr ? 1u : 0u;
        });
    row.baseline_ops =
        Sweep(threads, config.ops_per_thread, [&](size_t t, size_t i) {
          uint64_t stamp = Mix((t * 0x10001 + i) % config.entries);
          return baseline.Lookup(stamp) != nullptr ? 1u : 0u;
        });
    std::printf("  memo    %2zu threads: lock-free %12.0f ops/s | mutex %12.0f ops/s\n",
                threads, row.lockfree_ops, row.baseline_ops);
    memo.push_back(row);
  }

  // ---- Workload 2: catalog name resolution (stamp + fetch per request) ----
  db::Catalog catalog;
  catalog.set_reclamation_domain(&domain);
  std::vector<std::string> names;
  for (size_t i = 0; i < config.tables; ++i) {
    auto relation = db::MakeRelation({db::Column{"v", types::DataType::kInt}},
                                     {{types::Value::Int(static_cast<int64_t>(i))}});
    std::string name = "T" + std::to_string(i);
    MustOk(catalog.RegisterTable(name, Must(std::move(relation), "relation")),
           "RegisterTable");
    names.push_back(name);
  }
  std::shared_mutex catalog_mu;  // models the old per-request reader lock

  std::vector<SweepResult> resolve;
  for (size_t threads : thread_counts) {
    SweepResult row;
    row.threads = threads;
    // Lock-free: the SessionServer kRead path — one ReadPin, then the
    // TableVersion + GetTable pair every TableBox evaluation performs.
    row.lockfree_ops =
        Sweep(threads, config.ops_per_thread, [&](size_t t, size_t i) {
          const std::string& name = names[(t + i) % names.size()];
          db::Catalog::ReadPin pin(catalog);
          uint64_t version = catalog.TableVersion(name).value();
          return catalog.GetTable(name).ok() ? (version != 0 ? 1u : 0u) : 0u;
        });
    // Baseline: the same reads under a shared_lock, as session_server.cc
    // took before §13.
    row.baseline_ops =
        Sweep(threads, config.ops_per_thread, [&](size_t t, size_t i) {
          const std::string& name = names[(t + i) % names.size()];
          std::shared_lock<std::shared_mutex> lock(catalog_mu);
          uint64_t version = catalog.TableVersion(name).value();
          return catalog.GetTable(name).ok() ? (version != 0 ? 1u : 0u) : 0u;
        });
    std::printf("  catalog %2zu threads: lock-free %12.0f ops/s | rwlock %12.0f ops/s\n",
                threads, row.lockfree_ops, row.baseline_ops);
    resolve.push_back(row);
  }

  runtime::EpochDomain::Stats epoch = domain.stats();
  std::string json = "{\"config\":{";
  json += "\"ops_per_thread\":" + std::to_string(config.ops_per_thread);
  json += ",\"entries\":" + std::to_string(config.entries);
  json += ",\"tables\":" + std::to_string(config.tables);
  json += ",\"smoke\":" + std::string(config.smoke ? "true" : "false");
  json += ",\"hardware_threads\":" +
          std::to_string(std::thread::hardware_concurrency());
  json += "},\"memo_lookup\":" + SweepJson(memo);
  json += ",\"catalog_resolve\":" + SweepJson(resolve);
  json += ",\"epoch\":{\"pins\":" + std::to_string(epoch.pins);
  json += ",\"advances\":" + std::to_string(epoch.advances);
  json += ",\"retired\":" + std::to_string(epoch.retired);
  json += ",\"reclaimed\":" + std::to_string(epoch.reclaimed);
  json += ",\"overflow_pins\":" + std::to_string(epoch.overflow_pins) + "}";
  json += "}";
  std::ofstream out(config.out);
  out << json << "\n";
  out.close();
  std::printf("  -> %s\n", config.out.c_str());

  // Smoke assertions (scripts/check.sh `contention`).
  int failures = 0;
  if (config.smoke) {
    auto gate = [&failures](const char* what, const std::vector<SweepResult>& rows) {
      double one = rows[0].lockfree_ops;
      double eight = rows[1].lockfree_ops;
      if (eight < kSmokeParityMargin * one) {
        std::fprintf(stderr,
                     "SMOKE FAIL: %s 8-thread lock-free throughput %.0f < "
                     "%.2f x 1-thread %.0f (collapsed to serialized)\n",
                     what, eight, kSmokeParityMargin, one);
        ++failures;
      }
    };
    gate("memo_lookup", memo);
    gate("catalog_resolve", resolve);
    if (epoch.pins == 0) {
      std::fprintf(stderr, "SMOKE FAIL: no epoch pins recorded\n");
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace tioga2::bench

int main(int argc, char** argv) { return tioga2::bench::Run(argc, argv); }
