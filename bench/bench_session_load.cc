// Session-server load harness: replays thousands of concurrent sessions of
// mixed pan/zoom, drill-down, and edit traffic over the nine figure programs
// through SessionServer::Submit, and reports p50/p99 latency, throughput,
// and rejection/deadline rates from the server's runtime::Metrics
// histograms — with the cross-session SharedMemoCache ON vs OFF, plus the §7
// convergence experiment (M sessions viewing one canvas converge to ~1x
// evaluation work). Writes bench_out/session_load.json.
//
// Usage:
//   bench_session_load [--sessions=N] [--requests=N] [--threads=N]
//                      [--queue-bound=N] [--deadline-ms=N]
//                      [--shared-entries=N] [--seed=N] [--stations=N]
//                      [--days=N] [--smoke] [--out=PATH]
//
// --smoke shrinks every knob for CI (scripts/check.sh `load-smoke`) and
// turns on hard assertions: zero handler errors, nonzero shared-cache hits,
// and convergence within 2x single-session work.

#include "bench/bench_common.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <deque>
#include <fstream>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "dataflow/shared_memo_cache.h"
#include "db/catalog.h"
#include "runtime/session_server.h"
#include "testing/fig_programs.h"

namespace tioga2::bench {
namespace {

struct Config {
  size_t sessions = 1000;
  size_t requests_per_session = 6;
  size_t threads = 8;
  size_t queue_bound = 256;
  int deadline_ms = 0;  // 0 = no per-request deadline
  size_t shared_entries = 4096;
  uint64_t seed = 42;
  size_t extra_stations = 30;
  size_t num_days = 20;
  size_t convergence_sessions = 8;
  bool smoke = false;
  std::string out = "";  // default: OutDir() + "/session_load.json"
};

Config ParseFlags(int argc, char** argv) {
  Config config;
  auto value_of = [](const char* arg, const char* name) -> const char* {
    size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') return arg + len + 1;
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (const char* v = value_of(arg, "--sessions")) {
      config.sessions = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of(arg, "--requests")) {
      config.requests_per_session = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of(arg, "--threads")) {
      config.threads = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of(arg, "--queue-bound")) {
      config.queue_bound = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of(arg, "--deadline-ms")) {
      config.deadline_ms = std::atoi(v);
    } else if (const char* v = value_of(arg, "--shared-entries")) {
      config.shared_entries = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of(arg, "--seed")) {
      config.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of(arg, "--stations")) {
      config.extra_stations = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of(arg, "--days")) {
      config.num_days = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of(arg, "--out")) {
      config.out = v;
    } else if (std::strcmp(arg, "--smoke") == 0) {
      config.smoke = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      std::exit(2);
    }
  }
  if (config.smoke) {
    config.sessions = 24;
    config.requests_per_session = 4;
    config.threads = 4;
    config.queue_bound = 64;
    config.extra_stations = 20;
    config.num_days = 10;
  }
  if (config.out.empty()) config.out = OutDir() + "/session_load.json";
  return config;
}

/// One saved figure program the replay draws from.
struct ProgramInfo {
  std::string name;
  std::vector<std::string> canvases;
};

/// Builds every figure program once in the environment's own session and
/// saves it into the shared catalog; server sessions then LoadProgram their
/// copy — the multi-user picture of §7 (a library of saved visualization
/// programs over one database).
std::vector<ProgramInfo> SavePrograms(Environment* env) {
  std::vector<ProgramInfo> programs;
  for (const testing::FigProgram& fig : testing::AllFigPrograms()) {
    env->session().NewProgram();
    Status built = fig.build(env);
    if (!built.ok()) {
      std::fprintf(stderr, "FATAL building %s: %s\n", fig.name.c_str(),
                   built.ToString().c_str());
      std::exit(1);
    }
    MustOk(env->session().SaveProgram(fig.name), fig.name.c_str());
    programs.push_back(ProgramInfo{fig.name, fig.canvases});
  }
  env->session().NewProgram();
  return programs;
}

/// Per-session replay state: which program it loaded, and the Restrict box
/// drill-down traffic rewrites (empty when the program has none).
struct SessionState {
  std::string id;
  size_t program = 0;
  std::string drill_box;
  std::string drill_predicate;
  int drill_depth = 0;
};

/// Tally of request outcomes as the client saw them (cross-checked against
/// the server's metrics counters in the JSON report).
struct Tally {
  uint64_t ok = 0;
  uint64_t rejected = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t errors = 0;
  std::string first_error;

  void Add(const Status& status) {
    if (status.ok()) {
      ++ok;
    } else if (status.IsUnavailable()) {
      ++rejected;
    } else if (status.IsDeadlineExceeded()) {
      ++deadline_exceeded;
    } else {
      ++errors;
      if (first_error.empty()) first_error = status.ToString();
    }
  }
  uint64_t total() const { return ok + rejected + deadline_exceeded + errors; }
};

std::string JsonHistogram(const runtime::LatencyHistogram& h) {
  return h.ToJson();
}

struct RunReport {
  double wall_seconds = 0;
  Tally tally;
  runtime::MetricsSnapshot snapshot;
  runtime::LatencyHistogram latency;
  std::map<std::string, runtime::LatencyHistogram> classes;
  /// Summed over every session's engine after the replay (the server-side
  /// Metrics only sees ParallelEngine fires, not the per-session serial
  /// engines).
  uint64_t boxes_fired = 0;
  uint64_t engine_cache_hits = 0;
  uint64_t engine_shared_hits = 0;

  std::string ToJson() const {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.3f", wall_seconds);
    std::string json = "{\"wall_seconds\":" + std::string(buffer);
    double rps = wall_seconds > 0
                     ? static_cast<double>(tally.total()) / wall_seconds
                     : 0.0;
    std::snprintf(buffer, sizeof(buffer), "%.1f", rps);
    json += ",\"throughput_rps\":" + std::string(buffer);
    json += ",\"submitted\":" + std::to_string(tally.total());
    json += ",\"ok\":" + std::to_string(tally.ok);
    json += ",\"rejected\":" + std::to_string(tally.rejected);
    json += ",\"deadline_exceeded\":" + std::to_string(tally.deadline_exceeded);
    json += ",\"errors\":" + std::to_string(tally.errors);
    json += ",\"latency\":" + JsonHistogram(latency);
    json += ",\"classes\":{";
    bool first = true;
    for (const auto& [tag, histogram] : classes) {
      if (!first) json += ',';
      first = false;
      json += "\"" + tag + "\":" + JsonHistogram(histogram);
    }
    json += "}";
    json += ",\"server\":{";
    json += "\"requests_completed\":" + std::to_string(snapshot.requests_completed);
    json += ",\"requests_rejected\":" + std::to_string(snapshot.requests_rejected);
    json += ",\"requests_timed_out\":" + std::to_string(snapshot.requests_timed_out);
    json += ",\"boxes_fired\":" + std::to_string(boxes_fired);
    json += ",\"engine_cache_hits\":" + std::to_string(engine_cache_hits);
    json += ",\"engine_shared_hits\":" + std::to_string(engine_shared_hits);
    json += ",\"shared_cache\":{";
    json += "\"hits\":" + std::to_string(snapshot.shared_cache_hits);
    json += ",\"misses\":" + std::to_string(snapshot.shared_cache_misses);
    json += ",\"inserts\":" + std::to_string(snapshot.shared_cache_inserts);
    json += ",\"evictions\":" + std::to_string(snapshot.shared_cache_evictions);
    json += ",\"entries\":" + std::to_string(snapshot.shared_cache_entries);
    json += "}}}";
    return json;
  }
};

using runtime::Session;
using runtime::SessionServer;

/// Finds the first Restrict box of the session's loaded program (drill-down
/// traffic replaces its predicate); empty id when the program has none.
void FindDrillBox(Session& session, SessionState* state) {
  const dataflow::Graph& graph = session.ui().graph();
  for (const std::string& id : graph.BoxIds()) {
    auto box = graph.GetBox(id);
    if (!box.ok() || box.value()->type_name() != "Restrict") continue;
    auto params = box.value()->Params();
    auto it = params.find("predicate");
    if (it == params.end()) continue;
    state->drill_box = id;
    state->drill_predicate = it->second;
    return;
  }
}

/// Drill-down: rewrite the Restrict predicate to an equivalent-but-distinct
/// form (wrapped in `depth` parentheses). The new predicate has a new box
/// signature, so every downstream stamp changes and the chain re-evaluates —
/// the §5 drill-down cost — while staying valid against any input schema.
/// Depth cycles, so sessions drilling to the same depth share work through
/// the shared memo tier exactly like same-canvas viewers do.
std::string WrapPredicate(const std::string& predicate, int depth) {
  std::string wrapped = predicate;
  for (int i = 0; i < depth; ++i) wrapped = "(" + wrapped + ")";
  return wrapped;
}

/// The mixed traffic replay. Returns the client-side tally and drains the
/// server's metrics into the report.
RunReport RunLoad(Environment* env, const std::vector<ProgramInfo>& programs,
                  const Config& config, size_t shared_entries) {
  SessionServer::Options options;
  options.num_threads = config.threads;
  options.queue_bound = config.queue_bound;
  options.shared_cache_entries = shared_entries;
  std::unique_ptr<SessionServer> server = env->CreateServer(options);

  // Setup: open every session and load its program (synchronous, so a
  // rejected load cannot silently leave a session without a program).
  std::vector<SessionState> states(config.sessions);
  for (size_t i = 0; i < config.sessions; ++i) {
    SessionState& state = states[i];
    state.id = Must(server->OpenSession(), "OpenSession");
    state.program = i % programs.size();
    const std::string program_name = programs[state.program].name;
    SessionState* state_ptr = &state;
    Status loaded =
        server
            ->Submit(state.id,
                     {.handler =
                          [program_name, state_ptr](Session& s) {
                            TIOGA2_RETURN_IF_ERROR(
                                s.ui().LoadProgram(program_name));
                            FindDrillBox(s, state_ptr);
                            return Status::OK();
                          },
                      .tag = "load"})
            .get();
    if (!loaded.ok()) {
      std::fprintf(stderr, "FATAL loading %s into %s: %s\n",
                   program_name.c_str(), state.id.c_str(),
                   loaded.ToString().c_str());
      std::exit(1);
    }
  }

  // Replay: a deterministic interleaving of pan/zoom (75%), drill-down
  // (15%), and edit (10%) requests round-robined across all sessions, with
  // a sliding window of outstanding futures so client concurrency tracks
  // the admission bound instead of submitting everything at once.
  std::mt19937_64 rng(config.seed);
  std::uniform_real_distribution<double> mix(0.0, 1.0);
  Tally tally;
  std::deque<std::future<Status>> outstanding;
  auto drain_to = [&](size_t limit) {
    while (outstanding.size() > limit) {
      tally.Add(outstanding.front().get());
      outstanding.pop_front();
    }
  };
  std::chrono::milliseconds deadline{config.deadline_ms};
  auto start = std::chrono::steady_clock::now();
  for (size_t round = 0; round < config.requests_per_session; ++round) {
    for (SessionState& state : states) {
      double dice = mix(rng);
      SessionServer::Request request;
      request.deadline = deadline;
      if (dice < 0.10) {
        // Edit: a §8 single-tuple update against the shared catalog. Bumps
        // the table version, so every downstream stamp changes and the
        // shared tier turns over. kBatch: background writes must not starve
        // interactive admission.
        size_t row_seed = rng();
        request.handler = [row_seed](Session& s) {
          TIOGA2_ASSIGN_OR_RETURN(db::RelationPtr stations,
                                  s.ui().catalog()->GetTable("Stations"));
          if (stations->num_rows() == 0) return Status::OK();
          size_t row = row_seed % stations->num_rows();
          TIOGA2_ASSIGN_OR_RETURN(size_t alt,
                                  stations->schema()->ColumnIndex("altitude"));
          db::Tuple tuple = stations->row(row);
          tuple[alt] = types::Value::Float(tuple[alt].AsDouble() + 1.0);
          return s.ui()
              .catalog()
              ->UpdateRow("Stations", row, std::move(tuple))
              .status();
        };
        request.access = SessionServer::Access::kWrite;
        request.priority = SessionServer::Priority::kBatch;
        request.tag = "edit";
      } else if (dice < 0.25 && !state.drill_box.empty()) {
        // Drill-down: narrow the Restrict and re-evaluate its canvas.
        state.drill_depth = state.drill_depth % 4 + 1;
        std::string box = state.drill_box;
        std::string predicate = WrapPredicate(state.drill_predicate,
                                              state.drill_depth);
        std::string canvas = programs[state.program].canvases.front();
        request.handler = [box, predicate, canvas](Session& s) {
          TIOGA2_RETURN_IF_ERROR(
              s.ui().ReplaceBox(box, "Restrict", {{"predicate", predicate}}));
          return s.ui().EvaluateCanvas(canvas).status();
        };
        request.tag = "drilldown";
      } else {
        // Pan/zoom: re-resolve a canvas (memoized unless an edit or a
        // drill-down invalidated the chain) — the dominant interactive op.
        const std::vector<std::string>& canvases =
            programs[state.program].canvases;
        std::string canvas = canvases[rng() % canvases.size()];
        request.handler = [canvas](Session& s) {
          return s.ui().EvaluateCanvas(canvas).status();
        };
        request.tag = "panzoom";
      }
      outstanding.push_back(server->Submit(state.id, std::move(request)));
      drain_to(config.queue_bound);
    }
  }
  drain_to(0);
  auto elapsed = std::chrono::steady_clock::now() - start;

  RunReport report;
  report.wall_seconds = std::chrono::duration<double>(elapsed).count();
  // Total evaluation work: summed over every session's engine.
  for (SessionState& state : states) {
    MustOk(server
               ->Submit(state.id, {.handler =
                                       [&report](Session& s) {
                                         dataflow::EngineStats stats =
                                             s.ui().engine().stats();
                                         report.boxes_fired += stats.boxes_fired;
                                         report.engine_cache_hits +=
                                             stats.cache_hits;
                                         report.engine_shared_hits +=
                                             stats.shared_hits;
                                         return Status::OK();
                                       }})
               .get(),
           "stats");
  }
  report.tally = tally;
  report.snapshot = server->metrics().snapshot();
  report.latency = server->metrics().request_latency();
  report.classes = server->metrics().request_classes();
  if (!tally.first_error.empty()) {
    std::fprintf(stderr, "  first handler error: %s\n",
                 tally.first_error.c_str());
  }
  return report;
}

/// The §7 convergence experiment: M sessions all load the same program and
/// evaluate the same canvas, sequentially. With the shared tier the M-th
/// viewer adopts the first viewer's entries; total box fires should stay
/// within 2x one session's fires. Without it, work scales with M.
struct ConvergenceReport {
  size_t sessions = 0;
  uint64_t single_fired = 0;
  uint64_t total_fired_shared = 0;
  uint64_t total_fired_unshared = 0;
  uint64_t shared_hits = 0;
  size_t distinct_fingerprints = 0;

  std::string ToJson() const {
    std::string json = "{\"sessions\":" + std::to_string(sessions);
    json += ",\"single_session_boxes_fired\":" + std::to_string(single_fired);
    json += ",\"total_boxes_fired_shared\":" + std::to_string(total_fired_shared);
    json += ",\"total_boxes_fired_unshared\":" +
            std::to_string(total_fired_unshared);
    char buffer[32];
    double ratio = single_fired == 0
                       ? 0.0
                       : static_cast<double>(total_fired_shared) /
                             static_cast<double>(single_fired);
    std::snprintf(buffer, sizeof(buffer), "%.2f", ratio);
    json += ",\"shared_to_single_ratio\":" + std::string(buffer);
    json += ",\"shared_hits\":" + std::to_string(shared_hits);
    json += ",\"distinct_fingerprints\":" +
            std::to_string(distinct_fingerprints);
    json += "}";
    return json;
  }
};

ConvergenceReport RunConvergence(Environment* env,
                                 const std::vector<ProgramInfo>& programs,
                                 const Config& config) {
  ConvergenceReport report;
  report.sessions = config.convergence_sessions;
  const std::string& program = programs.front().name;
  const std::string& canvas = programs.front().canvases.front();
  for (bool shared : {true, false}) {
    SessionServer::Options options;
    options.num_threads = 1;  // sequential: makes the fire counts exact
    options.shared_cache_entries = shared ? config.shared_entries : 0;
    std::unique_ptr<SessionServer> server = env->CreateServer(options);
    std::vector<std::string> fingerprints;
    uint64_t total_fired = 0;
    for (size_t i = 0; i < config.convergence_sessions; ++i) {
      std::string id = Must(server->OpenSession(), "OpenSession");
      MustOk(server
                 ->Submit(id, {.handler =
                                   [&program](Session& s) {
                                     return s.ui().LoadProgram(program);
                                   }})
                 .get(),
             "LoadProgram");
      auto displayable = server->EvaluateCanvas(id, canvas);
      MustOk(displayable.status(), "EvaluateCanvas");
      fingerprints.push_back(
          testing::FingerprintDisplayable(displayable.value()));
      uint64_t fired = 0;
      MustOk(server
                 ->Submit(id, {.handler =
                                   [&fired](Session& s) {
                                     fired = s.ui().engine().stats().boxes_fired;
                                     return Status::OK();
                                   }})
                 .get(),
             "stats");
      total_fired += fired;
      if (shared && i == 0) report.single_fired = fired;
    }
    if (shared) {
      report.total_fired_shared = total_fired;
      report.shared_hits = server->metrics().snapshot().shared_cache_hits;
      std::vector<std::string> unique = fingerprints;
      std::sort(unique.begin(), unique.end());
      unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
      report.distinct_fingerprints = unique.size();
    } else {
      report.total_fired_unshared = total_fired;
    }
  }
  return report;
}

int Run(int argc, char** argv) {
  Config config = ParseFlags(argc, argv);
  ReportHeader("session load",
               "§7 multi-user serving: many viewers, one database");
  std::printf(
      "  sessions=%zu requests/session=%zu threads=%zu queue_bound=%zu "
      "shared_entries=%zu%s\n",
      config.sessions, config.requests_per_session, config.threads,
      config.queue_bound, config.shared_entries, config.smoke ? " (smoke)" : "");

  Environment env;
  MustOk(env.LoadDemoData(config.extra_stations, config.num_days, config.seed),
         "LoadDemoData");
  std::vector<ProgramInfo> programs = SavePrograms(&env);
  std::printf("  %zu figure programs saved to the catalog\n", programs.size());

  ConvergenceReport convergence = RunConvergence(&env, programs, config);
  std::printf(
      "  convergence: %zu sessions, one canvas -> %llu fires shared vs %llu "
      "unshared (single session: %llu; ratio %.2fx; %zu distinct "
      "fingerprint[s])\n",
      convergence.sessions,
      static_cast<unsigned long long>(convergence.total_fired_shared),
      static_cast<unsigned long long>(convergence.total_fired_unshared),
      static_cast<unsigned long long>(convergence.single_fired),
      convergence.single_fired == 0
          ? 0.0
          : static_cast<double>(convergence.total_fired_shared) /
                static_cast<double>(convergence.single_fired),
      convergence.distinct_fingerprints);

  std::printf("  replaying with shared cache ON...\n");
  RunReport shared_on = RunLoad(&env, programs, config, config.shared_entries);
  std::printf("  replaying with shared cache OFF...\n");
  RunReport shared_off = RunLoad(&env, programs, config, 0);

  auto summarize = [](const char* name, const RunReport& r) {
    std::printf(
        "  %s: %.2fs, %.0f req/s, p50 %.0fus p99 %.0fus | ok=%llu "
        "rejected=%llu deadline=%llu errors=%llu | fires=%llu shared_hits=%llu\n",
        name, r.wall_seconds,
        r.wall_seconds > 0 ? static_cast<double>(r.tally.total()) / r.wall_seconds
                           : 0.0,
        r.latency.QuantileUpperBoundMicros(0.5),
        r.latency.QuantileUpperBoundMicros(0.99),
        static_cast<unsigned long long>(r.tally.ok),
        static_cast<unsigned long long>(r.tally.rejected),
        static_cast<unsigned long long>(r.tally.deadline_exceeded),
        static_cast<unsigned long long>(r.tally.errors),
        static_cast<unsigned long long>(r.boxes_fired),
        static_cast<unsigned long long>(r.snapshot.shared_cache_hits));
  };
  summarize("shared ON ", shared_on);
  summarize("shared OFF", shared_off);

  std::string json = "{\"config\":{";
  json += "\"sessions\":" + std::to_string(config.sessions);
  json += ",\"requests_per_session\":" +
          std::to_string(config.requests_per_session);
  json += ",\"threads\":" + std::to_string(config.threads);
  json += ",\"queue_bound\":" + std::to_string(config.queue_bound);
  json += ",\"deadline_ms\":" + std::to_string(config.deadline_ms);
  json += ",\"shared_entries\":" + std::to_string(config.shared_entries);
  json += ",\"seed\":" + std::to_string(config.seed);
  json += ",\"smoke\":" + std::string(config.smoke ? "true" : "false");
  json += "},\"programs\":[";
  for (size_t i = 0; i < programs.size(); ++i) {
    if (i > 0) json += ',';
    json += "\"" + programs[i].name + "\"";
  }
  json += "],\"convergence\":" + convergence.ToJson();
  json += ",\"shared_on\":" + shared_on.ToJson();
  json += ",\"shared_off\":" + shared_off.ToJson();
  json += "}";
  std::ofstream out(config.out);
  out << json << "\n";
  out.close();
  std::printf("  -> %s\n", config.out.c_str());

  // Smoke assertions (scripts/check.sh `load-smoke`).
  int failures = 0;
  if (config.smoke) {
    if (shared_on.tally.errors != 0 || shared_off.tally.errors != 0) {
      std::fprintf(stderr, "SMOKE FAIL: handler errors (on=%llu off=%llu)\n",
                   static_cast<unsigned long long>(shared_on.tally.errors),
                   static_cast<unsigned long long>(shared_off.tally.errors));
      ++failures;
    }
    if (shared_on.snapshot.shared_cache_hits == 0) {
      std::fprintf(stderr, "SMOKE FAIL: shared cache recorded zero hits\n");
      ++failures;
    }
    if (convergence.distinct_fingerprints != 1) {
      std::fprintf(stderr, "SMOKE FAIL: %zu distinct fingerprints (want 1)\n",
                   convergence.distinct_fingerprints);
      ++failures;
    }
    if (convergence.single_fired == 0 ||
        convergence.total_fired_shared > 2 * convergence.single_fired) {
      std::fprintf(stderr,
                   "SMOKE FAIL: convergence %llu fires vs single %llu "
                   "(want <= 2x)\n",
                   static_cast<unsigned long long>(
                       convergence.total_fired_shared),
                   static_cast<unsigned long long>(convergence.single_fired));
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace tioga2::bench

int main(int argc, char** argv) { return tioga2::bench::Run(argc, argv); }
