// Figure 2: the program-editing operations — New/Add/Load/Save Program,
// Apply Box, Delete Box, Replace Box, T, Encapsulate.
//
// Reproduction: exercises every Figure 2 operation once and reports its
// outcome. Benchmarks: the latency of each editing operation, including
// Save/Load round trips and Encapsulate + instantiation, plus Undo.

#include "bench/bench_common.h"

namespace tioga2::bench {
namespace {

std::unique_ptr<Environment> FreshEnv() {
  auto env = std::make_unique<Environment>();
  MustOk(env->LoadDemoData(/*extra_stations=*/100, /*num_days=*/10), "load");
  return env;
}

void Report() {
  ReportHeader("Figure 2", "operations that manipulate the boxes-and-arrows diagram");
  auto env = FreshEnv();
  ui::Session& session = env->session();

  std::string stations = Must(session.AddTable("Stations"), "Add Table");
  std::string restrict =
      Must(session.AddBox("Restrict", {{"predicate", "state = \"LA\""}}), "box");
  MustOk(session.Connect(stations, 0, restrict, 0), "connect");
  std::printf("  Add Table / Apply Box / Connect: ok\n");

  auto candidates = Must(session.ApplyBoxCandidates({{stations, 0}}), "Apply Box");
  std::printf("  Apply Box menu for a R edge: %zu candidate box types\n",
              candidates.size());

  std::string t = Must(session.InsertT(restrict, 0), "T");
  std::printf("  T inserted on the Stations->Restrict edge: %s\n", t.c_str());

  MustOk(session.ReplaceBox(restrict, "Restrict",
                            {{"predicate", "state = \"TX\""}}),
         "Replace Box");
  std::printf("  Replace Box: predicate swapped\n");

  MustOk(session.Encapsulate({restrict}, {}, "tx_filter"), "Encapsulate");
  std::printf("  Encapsulate: 'tx_filter' in library (%zu definitions)\n",
              session.EncapsulatedNames().size());

  MustOk(session.SaveProgram("fig2"), "Save Program");
  MustOk(session.LoadProgram("fig2"), "Load Program");
  std::printf("  Save Program + Load Program: %zu boxes round-tripped\n",
              session.graph().num_boxes());

  MustOk(session.Undo(), "Undo");
  std::printf("  Undo: ok (depth now %zu)\n", session.UndoDepth());
}

void BM_AddBoxAndUndo(benchmark::State& state) {
  auto env = FreshEnv();
  ui::Session& session = env->session();
  for (auto _ : state) {
    Must(session.AddBox("Restrict", {{"predicate", "state = \"LA\""}}), "box");
    MustOk(session.Undo(), "undo");
  }
}
BENCHMARK(BM_AddBoxAndUndo);

void BM_ConnectDisconnect(benchmark::State& state) {
  auto env = FreshEnv();
  ui::Session& session = env->session();
  std::string stations = Must(session.AddTable("Stations"), "t");
  std::string restrict =
      Must(session.AddBox("Restrict", {{"predicate", "true"}}), "r");
  for (auto _ : state) {
    MustOk(session.Connect(stations, 0, restrict, 0), "connect");
    MustOk(session.Undo(), "undo");
  }
}
BENCHMARK(BM_ConnectDisconnect);

void BM_ApplyBoxCandidates(benchmark::State& state) {
  auto env = FreshEnv();
  ui::Session& session = env->session();
  std::string stations = Must(session.AddTable("Stations"), "t");
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.ApplyBoxCandidates({{stations, 0}}));
  }
}
BENCHMARK(BM_ApplyBoxCandidates);

void BM_InsertTAndUndo(benchmark::State& state) {
  auto env = FreshEnv();
  ui::Session& session = env->session();
  std::string stations = Must(session.AddTable("Stations"), "t");
  std::string restrict = Must(session.AddBox("Restrict", {{"predicate", "true"}}), "r");
  MustOk(session.Connect(stations, 0, restrict, 0), "connect");
  for (auto _ : state) {
    Must(session.InsertT(restrict, 0), "T");
    MustOk(session.Undo(), "undo");
  }
}
BENCHMARK(BM_InsertTAndUndo);

void BM_SaveLoadRoundTrip(benchmark::State& state) {
  auto env = FreshEnv();
  ui::Session& session = env->session();
  // A program with `range(0)` chained Restrict boxes.
  std::string previous = Must(session.AddTable("Stations"), "t");
  for (int64_t i = 0; i < state.range(0); ++i) {
    std::string box =
        Must(session.AddBox("Restrict", {{"predicate", "altitude > " +
                                                           std::to_string(i)}}),
             "r");
    MustOk(session.Connect(previous, 0, box, 0), "connect");
    previous = box;
  }
  for (auto _ : state) {
    MustOk(session.SaveProgram("bench"), "save");
    MustOk(session.LoadProgram("bench"), "load");
  }
  state.counters["boxes"] = static_cast<double>(state.range(0) + 1);
}
BENCHMARK(BM_SaveLoadRoundTrip)->Arg(4)->Arg(32)->Arg(128);

void BM_EncapsulateAndInstantiate(benchmark::State& state) {
  auto env = FreshEnv();
  ui::Session& session = env->session();
  std::string stations = Must(session.AddTable("Stations"), "t");
  std::string a = Must(session.AddBox("Restrict", {{"predicate", "altitude > 10"}}), "a");
  std::string b = Must(session.AddBox("Project", {{"columns", "name,state"}}), "b");
  MustOk(session.Connect(stations, 0, a, 0), "c1");
  MustOk(session.Connect(a, 0, b, 0), "c2");
  int counter = 0;
  for (auto _ : state) {
    std::string name = "def" + std::to_string(counter++);
    MustOk(session.Encapsulate({a, b}, {}, name), "encapsulate");
    Must(session.InsertEncapsulated(name, {}), "instantiate");
    MustOk(session.Undo(), "undo");
  }
}
BENCHMARK(BM_EncapsulateAndInstantiate);

void BM_GraphClone(benchmark::State& state) {
  auto env = FreshEnv();
  ui::Session& session = env->session();
  std::string previous = Must(session.AddTable("Stations"), "t");
  for (int i = 0; i < 64; ++i) {
    std::string box = Must(session.AddBox("Restrict", {{"predicate", "true"}}), "r");
    MustOk(session.Connect(previous, 0, box, 0), "connect");
    previous = box;
  }
  for (auto _ : state) {
    dataflow::Graph copy = session.graph().Clone();
    benchmark::DoNotOptimize(copy.num_boxes());
  }
}
BENCHMARK(BM_GraphClone);

}  // namespace
}  // namespace tioga2::bench

int main(int argc, char** argv) {
  tioga2::bench::Report();
  return tioga2::bench::RunBenchmarks(argc, argv);
}
