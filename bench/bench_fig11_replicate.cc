// Figure 11: a replicated viewer — partitioning a relation by predicates
// into a stitched group (§7.4).
//
// Reproduction: replicates observations by year and employees by
// salary x department (the paper's own example predicates). Benchmarks:
// replicate cost vs partition count and grid size, plus partition
// completeness checks.

#include "bench/bench_common.h"

namespace tioga2::bench {
namespace {

void Report() {
  ReportHeader("Figure 11", "a replicated viewer (years; salary x department)");
  Environment env;
  MustOk(env.LoadDemoData(10, 730), "load");
  ui::Session& session = env.session();

  // Observations replicated into 1985 / 1986.
  std::string obs = Must(session.AddTable("Observations"), "obs");
  std::string one =
      Must(session.AddBox("Restrict", {{"predicate", "station_id = 1"}}), "one");
  std::string by_year = Must(
      session.AddBox("Replicate",
                     {{"rows", "year(obs_date) = 1985;year(obs_date) = 1986"},
                      {"columns", ""}}),
      "replicate");
  MustOk(session.Connect(obs, 0, one, 0), "w");
  MustOk(session.Connect(one, 0, by_year, 0), "w");
  Must(session.AddViewer(by_year, 0, "years"), "viewer");
  auto years = display::AsGroup(Must(session.EvaluateCanvas("years"), "eval"));
  std::printf("  observations by year: %zu panes of %zu + %zu rows\n", years.size(),
              years.members()[0].entries()[0].relation.num_rows(),
              years.members()[1].entries()[0].relation.num_rows());

  // Employees replicated salary x department — the §7.4 example:
  // "replication is tabular, with predicates salary <= 5000 and
  // salary > 5000 in the horizontal dimension and the enumerated type
  // department in the vertical dimension".
  std::string employees = Must(session.AddTable("Employees"), "employees");
  std::string grid = Must(
      session.AddBox(
          "Replicate",
          {{"rows", "department = \"shoe\";department = \"toy\";department = "
                    "\"candy\";department = \"hardware\""},
           {"columns", "salary <= 5000;salary > 5000"}}),
      "replicate");
  MustOk(session.Connect(employees, 0, grid, 0), "w");
  Must(session.AddViewer(grid, 0, "salaries"), "viewer");
  auto salary_grid = display::AsGroup(Must(session.EvaluateCanvas("salaries"), "eval"));
  auto shape = salary_grid.GridShape();
  size_t total = 0;
  for (const display::Composite& member : salary_grid.members()) {
    total += member.entries()[0].relation.num_rows();
  }
  std::printf("  employees grid: %zux%zu panes covering %zu employees\n",
              shape.first, shape.second, total);
  auto viewer = Must(env.GetViewer("salaries"), "viewer");
  MustOk(viewer->FitContent(800, 600), "fit");
  Must(env.RenderViewer(viewer, 800, 600, OutDir() + "/fig11.ppm"), "render");
  std::printf("  rendered -> %s/fig11.ppm\n", OutDir().c_str());
}

void BM_ReplicateByPartitionCount(benchmark::State& state) {
  Environment env;
  MustOk(env.LoadDemoData(10, 60), "load");
  ui::Session& session = env.session();
  std::string employees = Must(session.AddTable("Employees"), "employees");
  // n salary bands.
  int64_t n = state.range(0);
  std::vector<std::string> bands;
  for (int64_t i = 0; i < n; ++i) {
    double lo = 2000.0 + 8000.0 * static_cast<double>(i) / static_cast<double>(n);
    double hi = 2000.0 + 8000.0 * static_cast<double>(i + 1) / static_cast<double>(n);
    bands.push_back("salary > " + std::to_string(lo) + " and salary <= " +
                    std::to_string(hi));
  }
  std::string rows;
  for (size_t i = 0; i < bands.size(); ++i) {
    if (i > 0) rows += ";";
    rows += bands[i];
  }
  std::string replicate =
      Must(session.AddBox("Replicate", {{"rows", rows}, {"columns", ""}}), "rep");
  MustOk(session.Connect(employees, 0, replicate, 0), "w");
  Must(session.AddViewer(replicate, 0, "bands"), "viewer");
  for (auto _ : state) {
    session.engine().InvalidateAll();
    benchmark::DoNotOptimize(session.EvaluateCanvas("bands"));
  }
  state.counters["partitions"] = static_cast<double>(n);
}
BENCHMARK(BM_ReplicateByPartitionCount)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_ReplicateTabularGrid(benchmark::State& state) {
  Environment env;
  MustOk(env.LoadDemoData(10, 60), "load");
  ui::Session& session = env.session();
  std::string employees = Must(session.AddTable("Employees"), "employees");
  std::string replicate = Must(
      session.AddBox(
          "Replicate",
          {{"rows", "department = \"shoe\";department = \"toy\";department = "
                    "\"candy\";department = \"hardware\""},
           {"columns", "salary <= 5000;salary > 5000"}}),
      "rep");
  MustOk(session.Connect(employees, 0, replicate, 0), "w");
  Must(session.AddViewer(replicate, 0, "grid"), "viewer");
  for (auto _ : state) {
    session.engine().InvalidateAll();
    benchmark::DoNotOptimize(session.EvaluateCanvas("grid"));
  }
}
BENCHMARK(BM_ReplicateTabularGrid);

void BM_RenderReplicatedGroup(benchmark::State& state) {
  Environment env;
  MustOk(env.LoadDemoData(10, 60), "load");
  ui::Session& session = env.session();
  std::string employees = Must(session.AddTable("Employees"), "employees");
  std::string replicate = Must(
      session.AddBox("Replicate", {{"rows", "salary <= 5000;salary > 5000"},
                                   {"columns", ""}}),
      "rep");
  MustOk(session.Connect(employees, 0, replicate, 0), "w");
  Must(session.AddViewer(replicate, 0, "grid"), "viewer");
  auto viewer = Must(env.GetViewer("grid"), "viewer");
  MustOk(viewer->FitContent(640, 480), "fit");
  render::Framebuffer fb(640, 480);
  render::RasterSurface surface(&fb);
  for (auto _ : state) {
    fb.Clear(draw::kWhite);
    benchmark::DoNotOptimize(viewer->RenderTo(&surface));
  }
}
BENCHMARK(BM_RenderReplicatedGroup);

}  // namespace
}  // namespace tioga2::bench

int main(int argc, char** argv) {
  tioga2::bench::Report();
  return tioga2::bench::RunBenchmarks(argc, argv);
}
