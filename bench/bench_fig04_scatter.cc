// Figure 4: the weather-station scatter — (longitude, latitude) locations,
// a circle + name display, and the Altitude slider dimension (§5.1).
//
// Reproduction: renders the Figure 4 visualization to bench_out/fig04.ppm
// and .svg, and sweeps the Altitude slider. Benchmarks: render latency vs
// data size, slider filtering, and per-tuple attribute evaluation.

#include "bench/bench_common.h"

namespace tioga2::bench {
namespace {

void Report() {
  ReportHeader("Figure 4", "visualization of weather station locations");
  Environment env;
  MustOk(env.LoadDemoData(300, 10), "load");
  BuildScatter(&env, "fig4");
  auto viewer = Must(env.GetViewer("fig4"), "viewer");
  MustOk(viewer->FitContent(800, 600), "fit");
  auto stats = Must(env.RenderViewer(viewer, 800, 600, OutDir() + "/fig04.ppm"),
                    "render");
  Must(env.RenderViewerSvg(viewer, 800, 600, OutDir() + "/fig04.svg"), "svg");
  std::printf("  rendered %zu station dots -> %s/fig04.{ppm,svg}\n",
              stats.tuples_drawn, OutDir().c_str());
  // Slider sweep over altitude, reproducing "the user can see any
  // appropriate subset of the stations" (§5.1).
  for (double hi : {50.0, 100.0, 200.0, 300.0}) {
    viewer->SetSlider(2, viewer::SliderRange{0, hi});
    auto s = Must(env.RenderViewer(viewer, 800, 600, ""), "render");
    std::printf("  altitude <= %4.0f ft: %2zu visible, %2zu culled by slider\n", hi,
                s.tuples_drawn, s.tuples_culled_slider);
  }
}

void BM_RenderScatter(benchmark::State& state) {
  Environment env;
  MustOk(env.LoadDemoData(static_cast<size_t>(state.range(0)), 10), "load");
  // All-states scatter: skip the LA restriction so data size scales.
  ui::Session& session = env.session();
  std::string stations = Must(session.AddTable("Stations"), "t");
  std::string previous = stations;
  auto chain = [&](const std::string& type,
                   const std::map<std::string, std::string>& params) {
    std::string id = Must(session.AddBox(type, params), type.c_str());
    MustOk(session.Connect(previous, 0, id, 0), "connect");
    previous = id;
  };
  chain("SetLocation", {{"dim", "0"}, {"attr", "longitude"}});
  chain("SetLocation", {{"dim", "1"}, {"attr", "latitude"}});
  chain("AddAttribute",
        {{"name", "dot"}, {"definition", "circle(0.2, \"#c81e1e\", true)"}});
  chain("SetDisplay", {{"attr", "dot"}});
  Must(session.AddViewer(previous, 0, "scatter"), "viewer");
  auto viewer = Must(env.GetViewer("scatter"), "viewer");
  MustOk(viewer->FitContent(640, 480), "fit");
  render::Framebuffer fb(640, 480);
  render::RasterSurface surface(&fb);
  for (auto _ : state) {
    fb.Clear(draw::kWhite);
    benchmark::DoNotOptimize(viewer->RenderTo(&surface));
  }
  state.counters["stations"] = static_cast<double>(state.range(0)) + 15;
}
BENCHMARK(BM_RenderScatter)->Arg(100)->Arg(1000)->Arg(5000);

void BM_SliderFilteredRender(benchmark::State& state) {
  Environment env;
  MustOk(env.LoadDemoData(2000, 10), "load");
  BuildScatter(&env, "fig4");
  auto viewer = Must(env.GetViewer("fig4"), "viewer");
  MustOk(viewer->FitContent(640, 480), "fit");
  viewer->SetSlider(2, viewer::SliderRange{0, static_cast<double>(state.range(0))});
  render::Framebuffer fb(640, 480);
  render::RasterSurface surface(&fb);
  for (auto _ : state) {
    fb.Clear(draw::kWhite);
    benchmark::DoNotOptimize(viewer->RenderTo(&surface));
  }
  state.counters["altitude_hi"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SliderFilteredRender)->Arg(50)->Arg(150)->Arg(1000000);

void BM_AttributeEvaluation(benchmark::State& state) {
  Environment env;
  MustOk(env.LoadDemoData(1000, 10), "load");
  ui::Session& session = env.session();
  std::string stations = Must(session.AddTable("Stations"), "t");
  Must(session.AddViewer(stations, 0, "raw"), "viewer");
  auto content = Must(session.EvaluateCanvas("raw"), "eval");
  auto relation = Must(display::AsRelation(content), "rel");
  auto with_attr = Must(
      relation.AddAttribute(
          "score", "sqrt(altitude) * 2.0 + if(state = \"LA\", 100.0, 0.0)"),
      "attr");
  for (auto _ : state) {
    double sum = 0;
    for (size_t r = 0; r < with_attr.num_rows(); ++r) {
      sum += Must(with_attr.AttributeValue(r, "score"), "value").AsDouble();
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(with_attr.num_rows()));
}
BENCHMARK(BM_AttributeEvaluation);

void BM_SvgBackendRender(benchmark::State& state) {
  Environment env;
  MustOk(env.LoadDemoData(1000, 10), "load");
  BuildScatter(&env, "fig4");
  auto viewer = Must(env.GetViewer("fig4"), "viewer");
  MustOk(viewer->FitContent(640, 480), "fit");
  for (auto _ : state) {
    render::SvgSurface surface(640, 480);
    surface.Clear(draw::kWhite);
    benchmark::DoNotOptimize(viewer->RenderTo(&surface));
    benchmark::DoNotOptimize(surface.ToSvg().size());
  }
}
BENCHMARK(BM_SvgBackendRender);

}  // namespace
}  // namespace tioga2::bench

int main(int argc, char** argv) {
  tioga2::bench::Report();
  return tioga2::bench::RunBenchmarks(argc, argv);
}
