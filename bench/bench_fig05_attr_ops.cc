// Figure 5: the location and display operations — Add/Remove/Set/Swap/
// Scale/Translate Attribute and Combine Displays.
//
// Reproduction: applies each Figure 5 operation to the Stations extended
// relation and reports the result. Benchmarks: the cost of each edit (all
// are O(attributes) copies) and of evaluating the edited attributes.

#include "bench/bench_common.h"

namespace tioga2::bench {
namespace {

display::DisplayRelation BaseRelation(size_t extra_stations) {
  auto stations = Must(data::MakeStations(extra_stations, 7), "stations");
  return Must(display::DisplayRelation::WithDefaults("Stations", stations), "defaults");
}

void Report() {
  ReportHeader("Figure 5", "location and display operations on extended relations");
  display::DisplayRelation rel = BaseRelation(100);
  rel = Must(rel.AddAttribute("half_alt", "altitude / 2"), "Add Attribute");
  std::printf("  Add Attribute half_alt = altitude / 2 -> type %s\n",
              types::DataTypeToString(rel.FindAttribute("half_alt")->type).c_str());
  rel = Must(rel.SetAttribute("half_alt", "altitude / 4"), "Set Attribute");
  rel = Must(rel.ScaleAttribute("longitude", 1.5), "Scale Attribute");
  rel = Must(rel.TranslateAttribute("latitude", -29.0), "Translate Attribute");
  std::printf("  Scale/Translate: longitude*1.5, latitude-29\n");
  rel = Must(rel.AddAttribute("dot", "circle(2)"), "display 1");
  rel = Must(rel.AddAttribute("label", "text(name, 8)"), "display 2");
  rel = Must(rel.CombineDisplays("both", "dot", "label", 0, -10), "Combine Displays");
  rel = Must(rel.SetDisplayAttribute("both"), "set display");
  auto combined = Must(rel.DisplayOf(0), "display of");
  std::printf("  Combine Displays: %zu drawables per tuple\n", combined->size());
  rel = Must(rel.SwapAttributes("longitude", "latitude"), "Swap Attributes");
  std::printf("  Swap Attributes longitude <-> latitude ('rotates the canvas')\n");
  rel = Must(rel.RemoveAttribute("half_alt"), "Remove Attribute");
  std::printf("  Remove Attribute half_alt: %zu attributes remain\n",
              rel.attributes().size());
}

void BM_AddAttribute(benchmark::State& state) {
  display::DisplayRelation rel = BaseRelation(1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rel.AddAttribute("a", "altitude * 2.0 + 1.0"));
  }
}
BENCHMARK(BM_AddAttribute);

void BM_SetAttribute(benchmark::State& state) {
  display::DisplayRelation rel =
      Must(BaseRelation(1000).AddAttribute("a", "altitude"), "attr");
  for (auto _ : state) {
    benchmark::DoNotOptimize(rel.SetAttribute("a", "altitude * 3.0"));
  }
}
BENCHMARK(BM_SetAttribute);

void BM_ScaleAttribute(benchmark::State& state) {
  display::DisplayRelation rel = BaseRelation(1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rel.ScaleAttribute("altitude", 2.0));
  }
}
BENCHMARK(BM_ScaleAttribute);

void BM_SwapAttributes(benchmark::State& state) {
  display::DisplayRelation rel = BaseRelation(1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rel.SwapAttributes("longitude", "latitude"));
  }
}
BENCHMARK(BM_SwapAttributes);

void BM_CombineDisplaysEdit(benchmark::State& state) {
  display::DisplayRelation rel = BaseRelation(1000);
  rel = Must(rel.AddAttribute("dot", "circle(2)"), "d1");
  rel = Must(rel.AddAttribute("label", "text(name, 8)"), "d2");
  for (auto _ : state) {
    benchmark::DoNotOptimize(rel.CombineDisplays("both", "dot", "label", 0, -10));
  }
}
BENCHMARK(BM_CombineDisplaysEdit);

void BM_CombinedDisplayEvaluation(benchmark::State& state) {
  display::DisplayRelation rel = BaseRelation(static_cast<size_t>(state.range(0)));
  rel = Must(rel.AddAttribute("dot", "circle(2)"), "d1");
  rel = Must(rel.AddAttribute("label", "text(name, 8)"), "d2");
  rel = Must(rel.CombineDisplays("both", "dot", "label", 0, -10), "combine");
  rel = Must(rel.SetDisplayAttribute("both"), "set");
  for (auto _ : state) {
    for (size_t r = 0; r < rel.num_rows(); ++r) {
      benchmark::DoNotOptimize(rel.DisplayOf(r));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rel.num_rows()));
}
BENCHMARK(BM_CombinedDisplayEvaluation)->Arg(100)->Arg(1000);

void BM_ScaledAttributeEvaluation(benchmark::State& state) {
  // The Scale/Translate shorthands cost one multiply-add per access.
  display::DisplayRelation rel = BaseRelation(1000);
  rel = Must(rel.ScaleAttribute("altitude", 0.3048), "scale");  // feet -> meters
  for (auto _ : state) {
    for (size_t r = 0; r < rel.num_rows(); ++r) {
      benchmark::DoNotOptimize(rel.AttributeValue(r, "altitude"));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rel.num_rows()));
}
BENCHMARK(BM_ScaledAttributeEvaluation);

}  // namespace
}  // namespace tioga2::bench

int main(int argc, char** argv) {
  tioga2::bench::Report();
  return tioga2::bench::RunBenchmarks(argc, argv);
}
