// Figure 10: stitched viewers — temperature and precipitation views
// combined into a group, with slaving keeping their date ranges aligned
// (§7.3, §7.1).
//
// Reproduction: renders the stitched pair to bench_out/fig10.ppm and
// demonstrates slaved panning. Benchmarks: group render vs member count,
// layout variants, and slaved navigation fan-out.

#include "bench/bench_common.h"

namespace tioga2::bench {
namespace {

/// Builds the Figure 10 program: temperature and precipitation branches for
/// station 1, stitched vertically.
void BuildFig10(Environment* env) {
  ui::Session& session = env->session();
  std::string obs = Must(session.AddTable("Observations"), "obs");
  std::string one =
      Must(session.AddBox("Restrict", {{"predicate", "station_id = 1"}}), "one");
  MustOk(session.Connect(obs, 0, one, 0), "w");
  auto branch = [&](const std::string& y_attr, const std::string& color,
                    const std::string& name) {
    std::string previous = one;
    auto chain = [&](const std::string& type,
                     const std::map<std::string, std::string>& params) {
      std::string id = Must(session.AddBox(type, params), type.c_str());
      MustOk(session.Connect(previous, 0, id, 0), "connect");
      previous = id;
    };
    chain("AddAttribute", {{"name", "t"}, {"definition", "float(days(obs_date))"}});
    chain("SetLocation", {{"dim", "0"}, {"attr", "t"}});
    chain("SetLocation", {{"dim", "1"}, {"attr", y_attr}});
    chain("AddAttribute",
          {{"name", "d"}, {"definition", "point(\"" + color + "\")"}});
    chain("SetDisplay", {{"attr", "d"}});
    chain("SetName", {{"name", name}});
    return previous;
  };
  std::string temperature = branch("temperature", "#c81e1e", "Temperature");
  std::string precipitation = branch("precipitation", "#1e46c8", "Precipitation");
  std::string stitch = Must(
      session.AddBox("Stitch",
                     {{"arity", "2"}, {"layout", "vertical"}, {"columns", "1"}}),
      "stitch");
  MustOk(session.Connect(temperature, 0, stitch, 0), "w");
  MustOk(session.Connect(precipitation, 0, stitch, 1), "w");
  Must(session.AddViewer(stitch, 0, "fig10"), "viewer");
}

void Report() {
  ReportHeader("Figure 10", "an example of stitched viewers (temperature | precipitation)");
  Environment env;
  MustOk(env.LoadDemoData(10, 365), "load");
  BuildFig10(&env);
  auto viewer = Must(env.GetViewer("fig10"), "viewer");
  MustOk(viewer->FitContent(800, 600), "fit");
  auto stats = Must(env.RenderViewer(viewer, 800, 600, OutDir() + "/fig10.ppm"),
                    "render");
  std::printf("  stitched group: %zu members, %zu tuples drawn\n",
              viewer->num_members(), stats.tuples_drawn);

  // Slaving (§7.1 / §7.3): a second viewer of the same canvas follows the
  // first so both show the same date range.
  viewer::Viewer follower("follower", "fig10", &env.session().registry());
  MustOk(follower.Refresh(), "refresh");
  MustOk(viewer->SlaveTo(&follower), "slave");
  double before = follower.camera().center_x();
  viewer->Pan(30, 0);  // pan one month of days
  std::printf("  slaved pan: follower moved %.0f days along the time axis\n",
              follower.camera().center_x() - before);
  viewer->Unslave(&follower);
}

void BM_RenderStitchedGroup(benchmark::State& state) {
  Environment env;
  MustOk(env.LoadDemoData(10, 120), "load");
  ui::Session& session = env.session();
  // Stitch `n` copies of the temperature branch.
  int64_t n = state.range(0);
  std::string obs = Must(session.AddTable("Observations"), "obs");
  std::string one =
      Must(session.AddBox("Restrict", {{"predicate", "station_id = 1"}}), "one");
  MustOk(session.Connect(obs, 0, one, 0), "w");
  std::string stitch =
      Must(session.AddBox("Stitch", {{"arity", std::to_string(n)},
                                     {"layout", "tabular"},
                                     {"columns", "2"}}),
           "stitch");
  for (int64_t i = 0; i < n; ++i) {
    std::string previous = one;
    auto chain = [&](const std::string& type,
                     const std::map<std::string, std::string>& params) {
      std::string id = Must(session.AddBox(type, params), type.c_str());
      MustOk(session.Connect(previous, 0, id, 0), "connect");
      previous = id;
    };
    chain("AddAttribute", {{"name", "t"}, {"definition", "float(days(obs_date))"}});
    chain("SetLocation", {{"dim", "0"}, {"attr", "t"}});
    chain("SetLocation", {{"dim", "1"}, {"attr", "temperature"}});
    MustOk(session.Connect(previous, 0, stitch, static_cast<size_t>(i)), "w");
  }
  Must(session.AddViewer(stitch, 0, "grid"), "viewer");
  auto viewer = Must(env.GetViewer("grid"), "viewer");
  MustOk(viewer->FitContent(640, 480), "fit");
  render::Framebuffer fb(640, 480);
  render::RasterSurface surface(&fb);
  for (auto _ : state) {
    fb.Clear(draw::kWhite);
    benchmark::DoNotOptimize(viewer->RenderTo(&surface));
  }
  state.counters["members"] = static_cast<double>(n);
}
BENCHMARK(BM_RenderStitchedGroup)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_SlavedPanFanout(benchmark::State& state) {
  Environment env;
  MustOk(env.LoadDemoData(10, 30), "load");
  BuildFig10(&env);
  auto leader = Must(env.GetViewer("fig10"), "viewer");
  std::vector<std::unique_ptr<viewer::Viewer>> followers;
  for (int64_t i = 0; i < state.range(0); ++i) {
    followers.push_back(std::make_unique<viewer::Viewer>(
        "f" + std::to_string(i), "fig10", &env.session().registry()));
    MustOk(followers.back()->Refresh(), "refresh");
    MustOk(leader->SlaveTo(followers.back().get()), "slave");
  }
  for (auto _ : state) {
    leader->Pan(1, 0);
    leader->Pan(-1, 0);
  }
  state.counters["slaves"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SlavedPanFanout)->Arg(1)->Arg(4)->Arg(16);

}  // namespace
}  // namespace tioga2::bench

int main(int argc, char** argv) {
  tioga2::bench::Report();
  return tioga2::bench::RunBenchmarks(argc, argv);
}
