// Persistence cost and recovery time. Two questions the storage subsystem
// must answer with numbers:
//
//   1. What does WAL durability cost the §8 interactive edit path?
//      UpdateRow throughput with no persistence, and with the WAL at each
//      durability policy (kNone / kFlushEveryN / kFsyncEachRecord), the
//      fsync policy with and without group commit (4 writer threads share
//      the fsyncs). The acceptance bar: kFlushEveryN adds < 10% to the
//      bench_delta_update edit latency.
//
//   2. How fast is recovery, and how does it scale with log length?
//      The fig07 drill-down catalog at 50k stations, recovered from a
//      snapshot plus WAL suffixes of increasing length.
//
// Everything is exported to bench_out/wal_recovery.json so a single run
// leaves a machine-readable record (see EXPERIMENTS.md).

#include "bench/bench_common.h"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "storage/storage_engine.h"
#include "testing/fig_programs.h"

namespace tioga2::bench {
namespace {

std::string ScratchDir(const std::string& name) {
  std::string dir =
      (std::filesystem::temp_directory_path() / ("tioga2_bench_" + name)).string();
  std::filesystem::remove_all(dir);
  return dir;
}

/// Builds the fig07 environment (the delta-update bench's workload) with
/// `extra_stations` and returns it.
std::unique_ptr<Environment> SetUpFig7(size_t extra_stations) {
  auto env = std::make_unique<Environment>();
  MustOk(env->LoadDemoData(extra_stations, 5), "load");
  const testing::FigProgram fig07 = testing::AllFigPrograms()[4];
  MustOk(fig07.build(env.get()), "build fig07");
  return env;
}

/// One persistent edit: nudges the latitude of row `i % rows` of Stations.
void NudgeStation(db::Catalog* catalog, size_t i) {
  auto stations = Must(catalog->GetTable("Stations"), "Stations");
  size_t lat_col = Must(stations->schema()->ColumnIndex("latitude"), "latitude");
  size_t row = i % stations->num_rows();
  db::Tuple tuple = stations->row(row);
  tuple[lat_col] = types::Value::Float(tuple[lat_col].float_value() +
                                       ((i % 2) == 0 ? 0.01 : -0.01));
  Must(catalog->UpdateRow("Stations", row, std::move(tuple)), "update");
}

/// Mean per-edit latency (µs) of `iters` UpdateRow calls on a 4k-station
/// catalog, with the given persistence configuration (or none).
double EditLatencyUs(const char* tag, bool persistent,
                     storage::Durability durability, bool group_commit,
                     int iters) {
  auto env = SetUpFig7(4000);
  std::string dir;
  if (persistent) {
    dir = ScratchDir(std::string("edit_") + tag);
    storage::StorageOptions options;
    options.dir = dir;
    options.wal.durability = durability;
    options.wal.group_commit = group_commit;
    MustOk(env->OpenPersistent(options), "open persistent");
  }
  // Warm-up outside the timer (first edit pays relation columnarization).
  NudgeStation(&env->catalog(), 0);
  auto start = std::chrono::steady_clock::now();
  for (int i = 1; i <= iters; ++i) {
    NudgeStation(&env->catalog(), static_cast<size_t>(i));
  }
  auto end = std::chrono::steady_clock::now();
  if (persistent) {
    MustOk(env->ClosePersistent(), "close persistent");
    std::filesystem::remove_all(dir);
  }
  return std::chrono::duration<double, std::micro>(end - start).count() / iters;
}

/// Group-commit is only visible under concurrency: per-edit latency with
/// `threads` writers hammering kFsyncEachRecord appends (each thread edits a
/// distinct private table so the catalog sees one writer per table; the WAL
/// serializes them all).
double FsyncConcurrentUs(bool group_commit, int threads, int iters_per_thread) {
  Environment env;
  MustOk(env.LoadDemoData(100, 5), "load");
  // One private table per thread, same schema as a small edit target.
  for (int t = 0; t < threads; ++t) {
    auto rel = Must(db::MakeRelation({db::Column{"v", types::DataType::kFloat}},
                                     {{types::Value::Float(0.0)}}),
                    "make");
    MustOk(env.catalog().RegisterTable("bench_t" + std::to_string(t), rel),
           "register");
  }
  std::string dir = ScratchDir(group_commit ? "fsync_group" : "fsync_solo");
  storage::StorageOptions options;
  options.dir = dir;
  options.wal.durability = storage::Durability::kFsyncEachRecord;
  options.wal.group_commit = group_commit;
  MustOk(env.OpenPersistent(options), "open persistent");

  // NOTE: Catalog is not synchronized for concurrent writers; each thread
  // therefore owns its table, and UpdateRow touches only that entry. The
  // contention being measured is in the WAL (shared queue + fsync), which is
  // exactly the group-commit question.
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const std::string table = "bench_t" + std::to_string(t);
      for (int i = 0; i < iters_per_thread; ++i) {
        auto rel = Must(env.catalog().GetTable(table), "get");
        db::Tuple tuple = rel->row(0);
        tuple[0] = types::Value::Float(static_cast<double>(i));
        Must(env.catalog().UpdateRow(table, 0, std::move(tuple)), "update");
      }
    });
  }
  for (auto& w : workers) w.join();
  auto end = std::chrono::steady_clock::now();
  MustOk(env.ClosePersistent(), "close persistent");
  std::filesystem::remove_all(dir);
  return std::chrono::duration<double, std::micro>(end - start).count() /
         (static_cast<double>(threads) * iters_per_thread);
}

/// Builds a 50k-station fig07 catalog, persists it with `wal_edits` logged
/// after the last snapshot, and measures a cold recovery.
double RecoveryMs(size_t wal_edits, size_t* records_replayed) {
  std::string dir = ScratchDir("recover_" + std::to_string(wal_edits));
  {
    auto env = SetUpFig7(50000);
    storage::StorageOptions options;
    options.dir = dir;
    options.wal.durability = storage::Durability::kNone;
    MustOk(env->OpenPersistent(options), "open persistent");
    MustOk(env->Checkpoint(), "checkpoint");  // snapshot covers the base state
    for (size_t i = 0; i < wal_edits; ++i) {
      NudgeStation(&env->catalog(), i);
    }
    MustOk(env->storage()->Sync(), "sync");
    // Abandon without ClosePersistent: recovery must replay the WAL suffix.
    env->catalog().SetListener(nullptr);
    MustOk(env->storage()->Close(), "close wal");
  }
  Environment env;
  storage::StorageOptions options;
  options.dir = dir;
  storage::RecoveryInfo info;
  auto start = std::chrono::steady_clock::now();
  MustOk(env.OpenPersistent(options, &info), "recover");
  auto end = std::chrono::steady_clock::now();
  *records_replayed = info.records_replayed;
  MustOk(env.ClosePersistent(), "close");
  std::filesystem::remove_all(dir);
  return std::chrono::duration<double, std::milli>(end - start).count();
}

void Report() {
  ReportHeader("Persistence (WAL + snapshot recovery)",
               "crash-safe catalog: UpdateRow durability cost, recovery time");
  constexpr int kIters = 400;

  double baseline_us = EditLatencyUs("base", false, storage::Durability::kNone,
                                     true, kIters);
  double none_us =
      EditLatencyUs("none", true, storage::Durability::kNone, true, kIters);
  double flush_us = EditLatencyUs("flush", true, storage::Durability::kFlushEveryN,
                                  true, kIters);
  double fsync_us = EditLatencyUs("fsync", true,
                                  storage::Durability::kFsyncEachRecord, true, 80);
  double flush_overhead_pct = (flush_us - baseline_us) / baseline_us * 100.0;

  double solo_us = FsyncConcurrentUs(false, 4, 50);
  double group_us = FsyncConcurrentUs(true, 4, 50);

  std::printf("  UpdateRow edit latency (4k stations, %d edits):\n", kIters);
  std::printf("    no persistence     %8.1f us/edit\n", baseline_us);
  std::printf("    wal kNone          %8.1f us/edit\n", none_us);
  std::printf("    wal kFlushEveryN   %8.1f us/edit  (+%.1f%% vs baseline)\n",
              flush_us, flush_overhead_pct);
  std::printf("    wal kFsyncEach     %8.1f us/edit\n", fsync_us);
  std::printf("  kFsyncEachRecord, 4 concurrent writers:\n");
  std::printf("    no group commit    %8.1f us/edit\n", solo_us);
  std::printf("    group commit       %8.1f us/edit  (%.1fx)\n", group_us,
              solo_us / group_us);

  std::string json = "{\"edit_latency_us\":{";
  json += "\"baseline\":" + std::to_string(baseline_us);
  json += ",\"wal_none\":" + std::to_string(none_us);
  json += ",\"wal_flush_every_n\":" + std::to_string(flush_us);
  json += ",\"wal_fsync_each\":" + std::to_string(fsync_us);
  json += ",\"flush_overhead_pct\":" + std::to_string(flush_overhead_pct);
  json += "},\"group_commit_us\":{";
  json += "\"solo\":" + std::to_string(solo_us);
  json += ",\"group\":" + std::to_string(group_us);
  json += ",\"speedup\":" + std::to_string(solo_us / group_us);
  json += "},\"recovery\":[";

  std::printf("  recovery of 50k-station fig07 catalog (snapshot + WAL suffix):\n");
  bool first = true;
  for (size_t edits : {size_t{0}, size_t{1000}, size_t{5000}, size_t{20000}}) {
    size_t replayed = 0;
    double ms = RecoveryMs(edits, &replayed);
    std::printf("    %6zu logged edits -> %8.1f ms (replayed %zu records)\n",
                edits, ms, replayed);
    if (!first) json += ',';
    first = false;
    json += "{\"wal_edits\":" + std::to_string(edits) +
            ",\"recovery_ms\":" + std::to_string(ms) +
            ",\"records_replayed\":" + std::to_string(replayed) + "}";
  }
  json += "]}";
  std::ofstream out(OutDir() + "/wal_recovery.json");
  out << json << "\n";
  std::printf("  -> bench_out/wal_recovery.json\n");
}

void BM_UpdateRowWalFlushEveryN(benchmark::State& state) {
  auto env = SetUpFig7(4000);
  std::string dir = ScratchDir("bm_flush");
  storage::StorageOptions options;
  options.dir = dir;
  options.wal.durability = storage::Durability::kFlushEveryN;
  MustOk(env->OpenPersistent(options), "open persistent");
  size_t i = 0;
  for (auto _ : state) {
    NudgeStation(&env->catalog(), i++);
  }
  MustOk(env->ClosePersistent(), "close");
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_UpdateRowWalFlushEveryN);

void BM_UpdateRowNoPersistence(benchmark::State& state) {
  auto env = SetUpFig7(4000);
  size_t i = 0;
  for (auto _ : state) {
    NudgeStation(&env->catalog(), i++);
  }
}
BENCHMARK(BM_UpdateRowNoPersistence);

}  // namespace
}  // namespace tioga2::bench

int main(int argc, char** argv) {
  tioga2::bench::Report();
  return tioga2::bench::RunBenchmarks(argc, argv);
}
