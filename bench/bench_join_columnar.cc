// Columnar join vs the row-store baseline (ROADMAP "Columnar join").
//
// The equi-join is the §6/§7 wormhole/stitch shape: demo stations joined
// with their observations on station_id. The scalar policy is the oracle —
// it hashes Value keys tuple-at-a-time and materializes concatenated output
// tuples. The vectorized policy hashes typed key cells straight from the
// inputs' ColumnVectors and emits a join view (two row-id vectors, no tuple
// materialization). A third timing charges the view with gathering every
// output column through the selection, so the speedup is honest about late
// materialization rather than just deferring it.
//
// Writes bench_out/join_columnar.json (recorded in EXPERIMENTS.md).

#include "bench/bench_common.h"

#include <chrono>
#include <fstream>

#include "db/operators.h"

namespace tioga2::bench {
namespace {

constexpr db::ExecPolicy kScalar{false};
constexpr db::ExecPolicy kVectorized{true};

db::RelationPtr Stations(size_t extra) {
  return Must(data::MakeStations(extra, 7), "stations");
}

db::RelationPtr Observations(const db::Relation& stations, size_t days) {
  return Must(
      data::MakeObservations(stations, types::Date::FromYmd(1985, 1, 1), days, 8),
      "observations");
}

/// Gathers every output column of a join result (for a view this is the
/// deferred materialization cost; for the scalar baseline the tuples already
/// exist and this builds the columnar image the next operator would ask for).
size_t TouchAllColumns(const db::RelationPtr& relation) {
  size_t total = 0;
  for (size_t c = 0; c < relation->num_columns(); ++c) {
    total += relation->columnar().column(c).num_rows;
  }
  return total;
}

void WriteJoinReport() {
  ReportHeader("Join columnar",
               "equi-join stations x observations (columnar vs row-store)");
  auto stations = Stations(50000);           // 50,007 rows
  auto observations = Observations(*stations, 2);  // ~100k rows
  const char* predicate = "station_id = station_id_2";
  // Inputs arrive columnar in the steady state (upstream operators already
  // materialized their columns); pay that once, outside the timings.
  stations->columnar();
  observations->columnar();

  auto time_us = [](auto&& fn) {
    constexpr int kIters = 10;
    fn();  // warm-up
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kIters; ++i) benchmark::DoNotOptimize(fn());
    auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(end - start).count() / kIters;
  };

  auto scalar_join = [&] {
    return Must(db::Join(stations, observations, predicate, kScalar), "join");
  };
  auto vectorized_join = [&] {
    return Must(db::Join(stations, observations, predicate, kVectorized), "join");
  };

  double scalar_us = time_us(scalar_join);
  double vectorized_us = time_us(vectorized_join);
  double vectorized_gather_us = time_us([&] {
    auto joined = vectorized_join();
    return TouchAllColumns(joined.relation);
  });

  auto reference = scalar_join();
  auto columnar = vectorized_join();
  if (reference.relation->num_rows() != columnar.relation->num_rows() ||
      reference.relation->ToString(32) != columnar.relation->ToString(32)) {
    std::fprintf(stderr, "FATAL: columnar join diverged from row-store oracle\n");
    std::exit(1);
  }

  std::string json = "{";
  json += "\"left_rows\":" + std::to_string(stations->num_rows());
  json += ",\"right_rows\":" + std::to_string(observations->num_rows());
  json += ",\"out_rows\":" + std::to_string(reference.relation->num_rows());
  json += ",\"row_store_us\":" + std::to_string(scalar_us);
  json += ",\"columnar_view_us\":" + std::to_string(vectorized_us);
  json += ",\"columnar_gathered_us\":" + std::to_string(vectorized_gather_us);
  json += ",\"speedup_view\":" + std::to_string(scalar_us / vectorized_us);
  json += ",\"speedup_gathered\":" + std::to_string(scalar_us / vectorized_gather_us);
  json += "}";
  std::ofstream out(OutDir() + "/join_columnar.json");
  out << json << "\n";
  std::printf(
      "  join %zu x %zu -> %zu rows: %.0f us row-store vs %.0f us columnar "
      "view (%.2fx), %.0f us with all columns gathered (%.2fx) "
      "-> bench_out/join_columnar.json\n",
      stations->num_rows(), observations->num_rows(),
      reference.relation->num_rows(), scalar_us, vectorized_us,
      scalar_us / vectorized_us, vectorized_gather_us,
      scalar_us / vectorized_gather_us);
}

void BM_JoinRowStore(benchmark::State& state) {
  auto stations = Stations(static_cast<size_t>(state.range(0)));
  auto observations = Observations(*stations, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db::Join(stations, observations, "station_id = station_id_2", kScalar));
  }
  state.counters["left"] = static_cast<double>(stations->num_rows());
  state.counters["right"] = static_cast<double>(observations->num_rows());
}
BENCHMARK(BM_JoinRowStore)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_JoinColumnar(benchmark::State& state) {
  auto stations = Stations(static_cast<size_t>(state.range(0)));
  auto observations = Observations(*stations, 2);
  stations->columnar();
  observations->columnar();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db::Join(stations, observations, "station_id = station_id_2", kVectorized));
  }
  state.counters["left"] = static_cast<double>(stations->num_rows());
  state.counters["right"] = static_cast<double>(observations->num_rows());
}
BENCHMARK(BM_JoinColumnar)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_JoinColumnarGathered(benchmark::State& state) {
  auto stations = Stations(static_cast<size_t>(state.range(0)));
  auto observations = Observations(*stations, 2);
  stations->columnar();
  observations->columnar();
  for (auto _ : state) {
    auto joined = Must(
        db::Join(stations, observations, "station_id = station_id_2", kVectorized),
        "join");
    benchmark::DoNotOptimize(TouchAllColumns(joined.relation));
  }
}
BENCHMARK(BM_JoinColumnarGathered)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_NestedLoopBatched(benchmark::State& state) {
  // Non-equi predicate: the BatchEvaluator cross-product path vs the scalar
  // tuple-at-a-time loop (state.range(1) flips the policy).
  auto stations = Stations(static_cast<size_t>(state.range(0)));
  auto observations = Observations(*stations, 1);
  const db::ExecPolicy policy{state.range(1) != 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(db::NestedLoopJoin(
        stations, observations, "station_id = station_id_2 and temperature > 60.0",
        policy));
  }
}
BENCHMARK(BM_NestedLoopBatched)->Args({100, 0})->Args({100, 1})->Args({300, 0})->Args({300, 1});

}  // namespace
}  // namespace tioga2::bench

int main(int argc, char** argv) {
  tioga2::bench::WriteJoinReport();
  return tioga2::bench::RunBenchmarks(argc, argv);
}
