// Figures 6+7: drill down — Set Range, Overlay, Shuffle, and the elevation
// map. "Station names disappear at high elevations, where they would be
// illegible" (§6.1).
//
// Reproduction: builds the Figure 7 composite (map + dots + labels with
// elevation ranges), renders it above and below the range boundary, and
// prints the elevation map. Benchmarks: render at both elevations, the
// elevation-range pre-filter ablation, and Overlay/Shuffle edits.

#include "bench/bench_common.h"

namespace tioga2::bench {
namespace {

/// Builds the Figure 7 program; returns the canvas name.
void BuildFig7(Environment* env) {
  ui::Session& session = env->session();
  auto chain = [&session](std::string previous,
                          std::initializer_list<std::pair<
                              std::string, std::map<std::string, std::string>>>
                              boxes) {
    for (const auto& [type, params] : boxes) {
      std::string id = Must(session.AddBox(type, params), type.c_str());
      MustOk(session.Connect(previous, 0, id, 0), "connect");
      previous = id;
    }
    return previous;
  };
  std::string stations = Must(session.AddTable("Stations"), "Stations");
  std::string scatter = chain(stations, {
      {"Restrict", {{"predicate", "state = \"LA\""}}},
      {"SetLocation", {{"dim", "0"}, {"attr", "longitude"}}},
      {"SetLocation", {{"dim", "1"}, {"attr", "latitude"}}},
      {"AddLocationDimension", {{"attr", "altitude"}}}});
  std::string dots = chain(scatter, {
      {"AddAttribute",
       {{"name", "c"}, {"definition", "circle(0.05, \"#c81e1e\", true)"}}},
      {"SetDisplay", {{"attr", "c"}}},
      {"SetRange", {{"min", "2"}, {"max", "1000"}}},
      {"SetName", {{"name", "Dots"}}}});
  std::string labels = chain(scatter, {
      {"AddAttribute",
       {{"name", "l"},
        {"definition",
         "circle(0.05, \"#c81e1e\", true) + offset(text(name, 0.1), -0.25, -0.2)"}}},
      {"SetDisplay", {{"attr", "l"}}},
      {"SetRange", {{"min", "0"}, {"max", "2"}}},
      {"SetName", {{"name", "Labels"}}}});
  std::string map = chain(Must(session.AddTable("LouisianaMap"), "map"), {
      {"SetLocation", {{"dim", "0"}, {"attr", "x"}}},
      {"SetLocation", {{"dim", "1"}, {"attr", "y"}}},
      {"AddAttribute", {{"name", "seg"}, {"definition", "line(dx, dy, \"#646464\")"}}},
      {"SetDisplay", {{"attr", "seg"}}},
      {"SetName", {{"name", "Map"}}}});
  std::string overlay1 = Must(session.AddBox("Overlay", {{"offset", ""}}), "o1");
  MustOk(session.Connect(map, 0, overlay1, 0), "w");
  MustOk(session.Connect(dots, 0, overlay1, 1), "w");
  std::string overlay2 = Must(session.AddBox("Overlay", {{"offset", ""}}), "o2");
  MustOk(session.Connect(overlay1, 0, overlay2, 0), "w");
  MustOk(session.Connect(labels, 0, overlay2, 1), "w");
  Must(session.AddViewer(overlay2, 0, "fig7"), "viewer");
}

void Report() {
  ReportHeader("Figure 7", "overlaid displays with restricted elevation ranges");
  Environment env;
  MustOk(env.LoadDemoData(100, 10), "load");
  BuildFig7(&env);
  auto viewer = Must(env.GetViewer("fig7"), "viewer");
  viewer->mutable_camera()->MoveTo(-91.5, 31.0);

  viewer->mutable_camera()->SetElevation(5.0);
  auto high = Must(env.RenderViewer(viewer, 800, 600, OutDir() + "/fig07_high.ppm"),
                   "render high");
  std::printf("  elevation 5.0: drew %zu tuples, %zu relation(s) outside range "
              "(Labels hidden)\n",
              high.tuples_drawn, high.relations_skipped);

  viewer->mutable_camera()->MoveTo(-90.5, 30.2);
  viewer->mutable_camera()->SetElevation(1.2);
  auto low = Must(env.RenderViewer(viewer, 800, 600, OutDir() + "/fig07_low.ppm"),
                  "render low");
  std::printf("  elevation 1.2: drew %zu tuples, %zu relation(s) outside range "
              "(Dots hidden, names visible)\n",
              low.tuples_drawn, low.relations_skipped);

  auto bars = Must(viewer->ElevationMap(0), "elevation map");
  std::printf("  elevation map (drawing order, ranges):\n");
  for (const auto& bar : bars) {
    std::printf("    %zu. %-7s [%g, %g]\n", bar.drawing_order,
                bar.relation_name.c_str(), bar.min_elevation, bar.max_elevation);
  }
  for (const std::string& warning : env.session().LastWarnings()) {
    std::printf("  warning surfaced (§6.1): %s\n", warning.c_str());
  }
}

void BM_RenderHighElevation(benchmark::State& state) {
  Environment env;
  MustOk(env.LoadDemoData(100, 10), "load");
  BuildFig7(&env);
  auto viewer = Must(env.GetViewer("fig7"), "viewer");
  viewer->mutable_camera()->MoveTo(-91.5, 31.0);
  viewer->mutable_camera()->SetElevation(5.0);
  render::Framebuffer fb(640, 480);
  render::RasterSurface surface(&fb);
  for (auto _ : state) {
    fb.Clear(draw::kWhite);
    benchmark::DoNotOptimize(viewer->RenderTo(&surface));
  }
}
BENCHMARK(BM_RenderHighElevation);

void BM_RenderLowElevation(benchmark::State& state) {
  Environment env;
  MustOk(env.LoadDemoData(100, 10), "load");
  BuildFig7(&env);
  auto viewer = Must(env.GetViewer("fig7"), "viewer");
  viewer->mutable_camera()->MoveTo(-90.5, 30.2);
  viewer->mutable_camera()->SetElevation(1.2);
  render::Framebuffer fb(640, 480);
  render::RasterSurface surface(&fb);
  for (auto _ : state) {
    fb.Clear(draw::kWhite);
    benchmark::DoNotOptimize(viewer->RenderTo(&surface));
  }
}
BENCHMARK(BM_RenderLowElevation);

void BM_ElevationRangeAblation(benchmark::State& state) {
  // Ablation (DESIGN.md §4): the whole-relation elevation-range pre-filter
  // vs a composite whose members are always "in range" (ranges widened), so
  // every tuple must be considered. arg 0 = with ranges, 1 = without.
  Environment env;
  MustOk(env.LoadDemoData(3000, 10), "load");
  ui::Session& session = env.session();
  std::string stations = Must(session.AddTable("Stations"), "t");
  std::string previous = stations;
  auto chain = [&](const std::string& type,
                   const std::map<std::string, std::string>& params) {
    std::string id = Must(session.AddBox(type, params), type.c_str());
    MustOk(session.Connect(previous, 0, id, 0), "connect");
    previous = id;
  };
  chain("SetLocation", {{"dim", "0"}, {"attr", "longitude"}});
  chain("SetLocation", {{"dim", "1"}, {"attr", "latitude"}});
  chain("AddAttribute",
        {{"name", "l"},
         {"definition", "circle(0.1, \"#c81e1e\", true) + text(name, 0.2)"}});
  chain("SetDisplay", {{"attr", "l"}});
  bool use_range = state.range(0) == 0;
  chain("SetRange", {{"min", use_range ? "0" : "0"},
                     {"max", use_range ? "2" : "100000"}});
  Must(session.AddViewer(previous, 0, "abl"), "viewer");
  auto viewer = Must(env.GetViewer("abl"), "viewer");
  MustOk(viewer->FitContent(640, 480), "fit");  // elevation far above 2
  render::Framebuffer fb(640, 480);
  render::RasterSurface surface(&fb);
  for (auto _ : state) {
    fb.Clear(draw::kWhite);
    benchmark::DoNotOptimize(viewer->RenderTo(&surface));
  }
  state.SetLabel(use_range ? "range-prefilter(skips relation)" : "no-range(draws all)");
}
BENCHMARK(BM_ElevationRangeAblation)->Arg(0)->Arg(1);

void BM_OverlayEdit(benchmark::State& state) {
  Environment env;
  MustOk(env.LoadDemoData(1000, 10), "load");
  ui::Session& session = env.session();
  std::string a = Must(session.AddTable("Stations"), "a");
  std::string b = Must(session.AddTable("LouisianaMap"), "b");
  std::string overlay = Must(session.AddBox("Overlay", {{"offset", ""}}), "o");
  MustOk(session.Connect(a, 0, overlay, 0), "w");
  MustOk(session.Connect(b, 0, overlay, 1), "w");
  Must(session.AddViewer(overlay, 0, "ov"), "viewer");
  for (auto _ : state) {
    session.engine().InvalidateAll();
    benchmark::DoNotOptimize(session.EvaluateCanvas("ov"));
  }
}
BENCHMARK(BM_OverlayEdit);

}  // namespace
}  // namespace tioga2::bench

int main(int argc, char** argv) {
  tioga2::bench::Report();
  return tioga2::bench::RunBenchmarks(argc, argv);
}
