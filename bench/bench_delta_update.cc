// §8 delta propagation: after a single-tuple update, maintaining memoized
// box outputs in place (Invalidation::Delta) versus evicting the table's
// downstream closure and recomputing (Invalidation::DownstreamOf).
//
// Reproduction: the Figure 7 drill-down program over an enlarged Stations
// table; one station is nudged per iteration, as a §8 click-update would.
// The hand-timed comparison is exported to bench_out/delta_update.json so a
// single run leaves a machine-readable record of the speedup.

#include "bench/bench_common.h"

#include <chrono>
#include <fstream>

#include "dataflow/engine.h"
#include "testing/fig_programs.h"

namespace tioga2::bench {
namespace {

/// Builds the Figure 7 program (map + dots + labels) over `extra_stations`
/// demo stations and warms the canvas.
std::unique_ptr<Environment> SetUpFig7(size_t extra_stations) {
  auto env = std::make_unique<Environment>();
  MustOk(env->LoadDemoData(extra_stations, 5), "load");
  const testing::FigProgram fig07 = testing::AllFigPrograms()[4];
  MustOk(fig07.build(env.get()), "build fig07");
  MustOk(env->session().EvaluateCanvas("fig7").status(), "warm");
  return env;
}

/// One §8 edit: nudges the latitude of the first Louisiana station (the
/// restricted subset fig07 actually draws) by an alternating offset, so
/// every iteration really changes a drawn tuple.
struct StationNudge {
  size_t row = 0;
  size_t lat_col = 0;
  double base_lat = 0;
  int flip = 0;

  static StationNudge Find(Environment* env) {
    StationNudge nudge;
    auto stations = Must(env->catalog().GetTable("Stations"), "Stations");
    size_t state_col = Must(stations->schema()->ColumnIndex("state"), "state");
    nudge.lat_col = Must(stations->schema()->ColumnIndex("latitude"), "latitude");
    for (size_t r = 0; r < stations->num_rows(); ++r) {
      const types::Value& state = stations->at(r, state_col);
      if (state.is_string() && state.string_value() == "LA") {
        nudge.row = r;
        nudge.base_lat = stations->at(r, nudge.lat_col).float_value();
        return nudge;
      }
    }
    std::fprintf(stderr, "FATAL: no LA station in demo data\n");
    std::exit(1);
  }

  db::TableDelta Apply(Environment* env) {
    auto stations = Must(env->catalog().GetTable("Stations"), "Stations");
    db::Tuple tuple = stations->row(row);
    tuple[lat_col] =
        types::Value::Float(base_lat + ((flip++ % 2) == 0 ? 0.01 : 0.0));
    return Must(env->catalog().UpdateRow("Stations", row, std::move(tuple)),
                "update");
  }
};

void Report() {
  ReportHeader("Section 8 (delta)",
               "update propagation: recompute downstream vs delta-maintain");
  // Per-edit cost of the propagation + re-evaluation step only: the
  // single-row install (Catalog::UpdateRow, an O(table) splice) is identical
  // on both paths and is excluded so the number isolates what the
  // Invalidation API actually changes.
  constexpr size_t kStations = 50000;
  auto measure = [&](bool use_delta) {
    auto env = SetUpFig7(kStations);
    ui::Session& session = env->session();
    StationNudge nudge = StationNudge::Find(env.get());
    constexpr int kIters = 20;
    double total_us = 0;
    for (int i = 0; i < kIters + 1; ++i) {
      // Hold the superseded table snapshot across the timed region: when the
      // memo cache lets go of the pre-update outputs, this reference keeps
      // the old 50k-row relation alive so its O(table) teardown — identical
      // on both paths — runs at the end of the iteration, outside the timer,
      // just like the UpdateRow splice above it.
      auto superseded = Must(env->catalog().GetTable("Stations"), "snapshot");
      db::TableDelta delta = nudge.Apply(env.get());
      auto start = std::chrono::steady_clock::now();
      dataflow::Invalidation inv =
          use_delta ? dataflow::Invalidation::Delta(std::move(delta))
                    : dataflow::Invalidation::DownstreamOf("Stations");
      MustOk(session.engine().Invalidate(session.graph(), inv).status(),
             "invalidate");
      MustOk(session.EvaluateCanvas("fig7").status(), "evaluate");
      auto end = std::chrono::steady_clock::now();
      if (i > 0) {  // first iteration is warm-up
        total_us += std::chrono::duration<double, std::micro>(end - start).count();
      }
    }
    return total_us / kIters;
  };

  double recompute_us = measure(false);
  double delta_us = measure(true);
  double speedup = recompute_us / delta_us;

  std::string json = "{\"extra_stations\":" + std::to_string(kStations) +
                     ",\"recompute_us\":" + std::to_string(recompute_us) +
                     ",\"delta_us\":" + std::to_string(delta_us) +
                     ",\"speedup\":" + std::to_string(speedup) + "}";
  std::ofstream out(OutDir() + "/delta_update.json");
  out << json << "\n";
  std::printf(
      "  single-station edit on fig07 (%zu stations): %.0f us full recompute "
      "vs %.0f us delta (%.1fx) -> bench_out/delta_update.json\n",
      kStations, recompute_us, delta_us, speedup);
}

void BM_RecomputeAfterEdit(benchmark::State& state) {
  auto env = SetUpFig7(static_cast<size_t>(state.range(0)));
  ui::Session& session = env->session();
  StationNudge nudge = StationNudge::Find(env.get());
  for (auto _ : state) {
    db::TableDelta delta = nudge.Apply(env.get());
    MustOk(session.engine()
               .Invalidate(session.graph(),
                           dataflow::Invalidation::DownstreamOf(delta.table))
               .status(),
           "evict");
    benchmark::DoNotOptimize(session.EvaluateCanvas("fig7"));
  }
  state.counters["stations"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_RecomputeAfterEdit)->Arg(4000)->Arg(50000);

void BM_DeltaAfterEdit(benchmark::State& state) {
  auto env = SetUpFig7(static_cast<size_t>(state.range(0)));
  ui::Session& session = env->session();
  StationNudge nudge = StationNudge::Find(env.get());
  for (auto _ : state) {
    db::TableDelta delta = nudge.Apply(env.get());
    MustOk(session.engine()
               .Invalidate(session.graph(),
                           dataflow::Invalidation::Delta(std::move(delta)))
               .status(),
           "delta");
    benchmark::DoNotOptimize(session.EvaluateCanvas("fig7"));
  }
  state.counters["stations"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_DeltaAfterEdit)->Arg(4000)->Arg(50000);

}  // namespace
}  // namespace tioga2::bench

int main(int argc, char** argv) {
  tioga2::bench::Report();
  return tioga2::bench::RunBenchmarks(argc, argv);
}
