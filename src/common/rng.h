#ifndef TIOGA2_COMMON_RNG_H_
#define TIOGA2_COMMON_RNG_H_

#include <cstdint>

namespace tioga2 {

/// A small, fast, deterministic PRNG (xorshift64*). Used by the Sample box
/// (§4.2) and by the synthetic data generators so that every test and
/// benchmark in the repository is reproducible bit-for-bit.
class Rng {
 public:
  /// Seeds the generator. A zero seed is remapped to a fixed non-zero value
  /// (xorshift has a zero fixed point).
  explicit Rng(uint64_t seed) : state_(seed == 0 ? 0x9E3779B97F4A7C15ULL : seed) {}

  /// Next raw 64-bit value.
  uint64_t NextUint64() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1DULL;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t NextBounded(uint64_t bound) { return NextUint64() % bound; }

 private:
  uint64_t state_;
};

}  // namespace tioga2

#endif  // TIOGA2_COMMON_RNG_H_
