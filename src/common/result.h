#ifndef TIOGA2_COMMON_RESULT_H_
#define TIOGA2_COMMON_RESULT_H_

#include <cstdlib>
#include <utility>
#include <variant>

#include "common/status.h"

namespace tioga2 {

/// A value-or-error type in the style of arrow::Result. A `Result<T>` holds
/// either a `T` or a non-OK `Status` explaining why the `T` could not be
/// produced. Constructing a Result from an OK status is a programming error
/// and aborts.
template <typename T>
class Result {
 public:
  /// Constructs a Result holding a value.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Constructs a Result holding an error. `status` must be non-OK.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    if (std::get<Status>(repr_).ok()) std::abort();
  }

  /// True iff the Result holds a value.
  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The status: OK when a value is held, the error otherwise.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// The held value. Must only be called when `ok()`.
  const T& value() const& {
    if (!ok()) std::abort();
    return std::get<T>(repr_);
  }
  T& value() & {
    if (!ok()) std::abort();
    return std::get<T>(repr_);
  }
  T&& value() && {
    if (!ok()) std::abort();
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the held value, or `alternative` if this Result is an error.
  T value_or(T alternative) const {
    return ok() ? value() : std::move(alternative);
  }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace tioga2

/// Evaluates an expression producing Result<T>; on error, propagates the
/// status to the caller, otherwise assigns the value to `lhs`.
#define TIOGA2_ASSIGN_OR_RETURN(lhs, rexpr)                                 \
  TIOGA2_ASSIGN_OR_RETURN_IMPL(                                             \
      TIOGA2_CONCAT_NAME(_tioga2_result, __COUNTER__), lhs, rexpr)

#define TIOGA2_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                                 \
  if (!result_name.ok()) return result_name.status();         \
  lhs = std::move(result_name).value()

#define TIOGA2_CONCAT_NAME(x, y) TIOGA2_CONCAT_NAME_INNER(x, y)
#define TIOGA2_CONCAT_NAME_INNER(x, y) x##y

#endif  // TIOGA2_COMMON_RESULT_H_
