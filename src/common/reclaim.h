#ifndef TIOGA2_COMMON_RECLAIM_H_
#define TIOGA2_COMMON_RECLAIM_H_

#include <cstdint>
#include <functional>

namespace tioga2::common {

/// Safe-memory-reclamation seam for lock-free read paths. A reader *pins*
/// the domain (RAII Guard) before dereferencing any pointer it loaded from a
/// shared atomic; a writer that unlinks an object *retires* it here instead
/// of deleting it, and the domain runs the deleter only once no pin taken
/// out before the retirement can still be live. The concrete implementation
/// is runtime::EpochDomain (epoch-based reclamation); this interface exists
/// so that db:: and viewer:: structures can publish immutable snapshots and
/// retire the old ones without depending on the runtime layer — the same
/// layering rule as db::MorselRunner.
///
/// Contract:
///  - Pin/Unpin must bracket every traversal of reclaimed-managed memory.
///    Pins may nest freely (each Guard is independent) and may be held
///    across blocking work, at the cost of delaying reclamation.
///  - Retire may be called with or without a pin held. The deleter runs
///    later, on whichever thread drives reclamation — it must not touch the
///    retiring structure or call back into the domain.
///  - A null domain pointer (the Guard accepts one) means "no concurrent
///    readers exist": users fall back to deferred-until-destruction or
///    immediate deletion, whichever their own contract allows.
class ReclamationDomain {
 public:
  virtual ~ReclamationDomain() = default;

  /// Pins the calling thread; returns an opaque ticket for Unpin.
  virtual uint64_t Pin() = 0;
  virtual void Unpin(uint64_t ticket) = 0;

  /// Defers `deleter` until every pin that could have observed the retired
  /// object has been released.
  virtual void Retire(std::function<void()> deleter) = 0;

  /// RAII pin. A null domain makes the guard a no-op, so call sites can be
  /// written unconditionally.
  class Guard {
   public:
    explicit Guard(ReclamationDomain* domain) : domain_(domain) {
      if (domain_ != nullptr) ticket_ = domain_->Pin();
    }
    ~Guard() {
      if (domain_ != nullptr) domain_->Unpin(ticket_);
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    ReclamationDomain* domain_;
    uint64_t ticket_ = 0;
  };
};

}  // namespace tioga2::common

#endif  // TIOGA2_COMMON_RECLAIM_H_
