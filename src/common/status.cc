#include "common/status.h"

#include <utility>

namespace tioga2 {

namespace {
const std::string kEmptyMessage;
}  // namespace

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    state_ = std::make_unique<State>(State{code, std::move(message)});
  }
}

Status::Status(const Status& other) {
  if (other.state_ != nullptr) {
    state_ = std::make_unique<State>(*other.state_);
  }
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    state_ = other.state_ == nullptr ? nullptr : std::make_unique<State>(*other.state_);
  }
  return *this;
}

const std::string& Status::message() const {
  return state_ == nullptr ? kEmptyMessage : state_->message;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result(StatusCodeToString(state_->code));
  result += ": ";
  result += state_->message;
  return result;
}

Status Status::InvalidArgument(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status Status::NotFound(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status Status::AlreadyExists(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
Status Status::TypeError(std::string message) {
  return Status(StatusCode::kTypeError, std::move(message));
}
Status Status::ParseError(std::string message) {
  return Status(StatusCode::kParseError, std::move(message));
}
Status Status::OutOfRange(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status Status::FailedPrecondition(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status Status::Unimplemented(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
Status Status::Internal(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status Status::IOError(std::string message) {
  return Status(StatusCode::kIOError, std::move(message));
}
Status Status::Unavailable(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}
Status Status::DeadlineExceeded(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}

}  // namespace tioga2
