#ifndef TIOGA2_COMMON_STATUS_H_
#define TIOGA2_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>

namespace tioga2 {

/// Error categories used across the Tioga-2 library. The set mirrors the
/// failure modes of the paper's operations: type errors when wiring boxes
/// (§2), invalid program edits such as illegal box deletion (§4.1), lookup
/// failures against the catalog, and malformed expressions or predicates.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kTypeError,
  kParseError,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kIOError,
  // Server-side conditions (runtime::SessionServer): transient overload
  // rejection (backpressure) and per-request deadline expiry.
  kUnavailable,
  kDeadlineExceeded,
};

/// Returns a human-readable name for `code`, e.g. "TypeError".
std::string_view StatusCodeToString(StatusCode code);

/// Arrow/RocksDB-style status object. All fallible public operations in this
/// library return `Status` (or `Result<T>`); exceptions are never thrown
/// across API boundaries. The OK status carries no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given error code and message. `code` must
  /// not be `StatusCode::kOk`; use the default constructor for success.
  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string message);
  static Status NotFound(std::string message);
  static Status AlreadyExists(std::string message);
  static Status TypeError(std::string message);
  static Status ParseError(std::string message);
  static Status OutOfRange(std::string message);
  static Status FailedPrecondition(std::string message);
  static Status Unimplemented(std::string message);
  static Status Internal(std::string message);
  static Status IOError(std::string message);
  static Status Unavailable(std::string message);
  static Status DeadlineExceeded(std::string message);

  /// True iff this status represents success.
  bool ok() const { return state_ == nullptr; }

  /// The status code; `kOk` for a successful status.
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }

  /// The error message; empty for a successful status.
  const std::string& message() const;

  /// True iff the status carries the given error code.
  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsTypeError() const { return code() == StatusCode::kTypeError; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const { return code() == StatusCode::kFailedPrecondition; }
  bool IsUnimplemented() const { return code() == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const { return code() == StatusCode::kDeadlineExceeded; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code() && a.message() == b.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // Null iff OK.
  std::unique_ptr<State> state_;
};

}  // namespace tioga2

/// Propagates a non-OK Status from the evaluated expression to the caller.
#define TIOGA2_RETURN_IF_ERROR(expr)                      \
  do {                                                    \
    ::tioga2::Status _tioga2_status = (expr);             \
    if (!_tioga2_status.ok()) return _tioga2_status;      \
  } while (false)

#endif  // TIOGA2_COMMON_STATUS_H_
