#include "common/str_util.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace tioga2 {

std::vector<std::string> StrSplit(std::string_view input, char delimiter) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delimiter, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(input.substr(start));
      return pieces;
    }
    pieces.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string StrJoin(const std::vector<std::string>& pieces, std::string_view separator) {
  std::string result;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) result += separator;
    result += pieces[i];
  }
  return result;
}

std::string_view StripWhitespace(std::string_view input) {
  size_t begin = 0;
  while (begin < input.size() && std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  size_t end = input.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string AsciiToLower(std::string_view input) {
  std::string result(input);
  for (char& c : result) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return result;
}

std::string FormatDouble(double value) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  // Negative zero would print as "0" through the integer fast path below and
  // come back as +0.0 — a bit-level round-trip loss CSV must not have.
  if (value == 0.0 && std::signbit(value)) return "-0";
  if (value == static_cast<long long>(value) && std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
    return buf;
  }
  // Shortest representation that parses back to the same double (CSV and
  // program files must round-trip losslessly).
  char buf[64];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

std::string QuoteString(std::string_view input) {
  std::string result = "\"";
  for (char c : input) {
    switch (c) {
      case '\\':
        result += "\\\\";
        break;
      case '"':
        result += "\\\"";
        break;
      case '\n':
        result += "\\n";
        break;
      default:
        result += c;
    }
  }
  result += '"';
  return result;
}

bool UnquoteString(std::string_view quoted, std::string* out) {
  if (quoted.size() < 2 || quoted.front() != '"' || quoted.back() != '"') return false;
  out->clear();
  // Body excludes the surrounding quotes.
  size_t i = 1;
  const size_t end = quoted.size() - 1;
  while (i < end) {
    char c = quoted[i];
    if (c == '\\') {
      if (i + 1 >= end) return false;  // dangling escape
      char esc = quoted[i + 1];
      switch (esc) {
        case '\\':
          *out += '\\';
          break;
        case '"':
          *out += '"';
          break;
        case 'n':
          *out += '\n';
          break;
        default:
          return false;
      }
      i += 2;
    } else if (c == '"') {
      return false;  // unescaped quote inside the body
    } else {
      *out += c;
      ++i;
    }
  }
  return true;
}

}  // namespace tioga2
