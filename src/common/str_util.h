#ifndef TIOGA2_COMMON_STR_UTIL_H_
#define TIOGA2_COMMON_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace tioga2 {

/// Splits `input` on `delimiter`, returning the (possibly empty) pieces.
/// Splitting the empty string yields a single empty piece.
std::vector<std::string> StrSplit(std::string_view input, char delimiter);

/// Joins `pieces` with `separator` between consecutive elements.
std::string StrJoin(const std::vector<std::string>& pieces, std::string_view separator);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view input);

/// True iff `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Lower-cases ASCII letters.
std::string AsciiToLower(std::string_view input);

/// Formats a double compactly: integral values render without a fraction,
/// others with up to six significant decimals ("3", "3.25", "0.125").
std::string FormatDouble(double value);

/// Escapes backslashes, quotes and newlines, and wraps in double quotes.
std::string QuoteString(std::string_view input);

/// Inverse of QuoteString. Returns false on malformed input.
bool UnquoteString(std::string_view quoted, std::string* out);

}  // namespace tioga2

#endif  // TIOGA2_COMMON_STR_UTIL_H_
