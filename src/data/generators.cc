#include "data/generators.h"

#include <cmath>

#include "common/rng.h"

namespace tioga2::data {

using db::Column;
using db::RelationBuilder;
using db::RelationPtr;
using db::Schema;
using db::Tuple;
using types::DataType;
using types::Date;
using types::Value;

namespace {

struct NamedStation {
  const char* name;
  double longitude;
  double latitude;
  double altitude;  // feet
};

/// Louisiana stations visible in Figures 4 and 7 (approximate coordinates).
constexpr NamedStation kLouisianaStations[] = {
    {"NEW ORLEANS", -90.08, 29.95, 7},
    {"BATON ROUGE", -91.15, 30.45, 56},
    {"SHREVEPORT", -93.75, 32.52, 141},
    {"LAFAYETTE", -92.02, 30.22, 36},
    {"LAKE CHARLES", -93.22, 30.23, 13},
    {"MONROE", -92.12, 32.51, 72},
    {"ALEXANDRIA", -92.45, 31.31, 79},
    {"HOUMA", -90.72, 29.60, 9},
    {"NATCHITOCHES", -93.09, 31.76, 120},
    {"RUSTON", -92.64, 32.52, 255},
    {"HAMMOND", -90.46, 30.50, 43},
    {"THIBODAUX", -90.82, 29.80, 12},
    {"OPELOUSAS", -92.08, 30.53, 70},
    {"BOGALUSA", -89.85, 30.79, 103},
    {"MINDEN", -93.29, 32.62, 250},
};

const char* kOtherStates[] = {"TX", "MS", "AR", "AL", "FL", "GA", "OK", "TN", "MO", "NM"};

}  // namespace

Result<RelationPtr> MakeStations(size_t extra_stations, uint64_t seed) {
  TIOGA2_ASSIGN_OR_RETURN(
      Schema schema,
      Schema::Make({Column{"station_id", DataType::kInt},
                    Column{"name", DataType::kString},
                    Column{"state", DataType::kString},
                    Column{"longitude", DataType::kFloat},
                    Column{"latitude", DataType::kFloat},
                    Column{"altitude", DataType::kFloat}}));
  RelationBuilder builder(std::make_shared<const Schema>(std::move(schema)));
  int64_t id = 1;
  for (const NamedStation& station : kLouisianaStations) {
    builder.AddRowUnchecked(Tuple{Value::Int(id++), Value::String(station.name),
                                  Value::String("LA"), Value::Float(station.longitude),
                                  Value::Float(station.latitude),
                                  Value::Float(station.altitude)});
  }
  Rng rng(seed);
  for (size_t i = 0; i < extra_stations; ++i) {
    const char* state = kOtherStates[rng.NextBounded(std::size(kOtherStates))];
    // Continental US-ish bounding box.
    double longitude = rng.Uniform(-124.0, -70.0);
    double latitude = rng.Uniform(26.0, 48.0);
    double altitude = rng.Uniform(0.0, 6000.0);
    builder.AddRowUnchecked(Tuple{
        Value::Int(id), Value::String("STATION_" + std::to_string(id)),
        Value::String(state), Value::Float(longitude), Value::Float(latitude),
        Value::Float(altitude)});
    ++id;
  }
  return builder.Build();
}

Result<RelationPtr> MakeObservations(const db::Relation& stations, Date start,
                                     size_t num_days, uint64_t seed) {
  TIOGA2_ASSIGN_OR_RETURN(size_t id_col, stations.schema()->ColumnIndex("station_id"));
  TIOGA2_ASSIGN_OR_RETURN(size_t lat_col, stations.schema()->ColumnIndex("latitude"));
  TIOGA2_ASSIGN_OR_RETURN(size_t alt_col, stations.schema()->ColumnIndex("altitude"));
  TIOGA2_ASSIGN_OR_RETURN(
      Schema schema,
      Schema::Make({Column{"station_id", DataType::kInt},
                    Column{"obs_date", DataType::kDate},
                    Column{"temperature", DataType::kFloat},
                    Column{"precipitation", DataType::kFloat},
                    Column{"conditions", DataType::kString}}));
  RelationBuilder builder(std::make_shared<const Schema>(std::move(schema)));
  builder.Reserve(stations.num_rows() * num_days);
  Rng rng(seed);
  for (size_t s = 0; s < stations.num_rows(); ++s) {
    int64_t station_id = stations.at(s, id_col).int_value();
    double latitude = stations.at(s, lat_col).AsDouble();
    double altitude = stations.at(s, alt_col).AsDouble();
    // Warmer south, cooler with altitude (3.5F per 1000 ft lapse).
    double base = 95.0 - 1.3 * (latitude - 25.0) - 3.5 * altitude / 1000.0;
    double wet_spell = 0;
    for (size_t d = 0; d < num_days; ++d) {
      Date date = start.AddDays(static_cast<int64_t>(d));
      double day_of_year = static_cast<double>((date.DaysValue() % 365 + 365) % 365);
      double season = std::cos((day_of_year - 200.0) / 365.0 * 2.0 * M_PI);
      double temperature = base - 18.0 + 18.0 * season + rng.Uniform(-6.0, 6.0);
      // Bursty precipitation: wet spells begin with probability 0.15/day and
      // decay over a few days.
      if (wet_spell <= 0 && rng.NextDouble() < 0.15) wet_spell = rng.Uniform(1.0, 4.0);
      double precipitation = 0;
      if (wet_spell > 0) {
        precipitation = rng.Uniform(0.05, 1.8) * std::min(wet_spell, 1.5);
        wet_spell -= 1.0;
      }
      const char* conditions = precipitation > 0.6   ? "RAIN"
                               : precipitation > 0.0 ? "DRIZZLE"
                               : temperature > 90.0  ? "HOT"
                                                     : "CLEAR";
      builder.AddRowUnchecked(Tuple{Value::Int(station_id), Value::DateVal(date),
                                    Value::Float(temperature),
                                    Value::Float(precipitation),
                                    Value::String(conditions)});
    }
  }
  return builder.Build();
}

Result<RelationPtr> MakeLouisianaMap() {
  // A coarse clockwise outline of Louisiana (longitude, latitude).
  static constexpr double kOutline[][2] = {
      {-94.04, 33.02}, {-91.17, 33.00}, {-91.10, 32.40}, {-90.95, 31.95},
      {-91.40, 31.60}, {-91.52, 31.05}, {-91.63, 30.99}, {-89.73, 31.00},
      {-89.84, 30.67}, {-89.62, 30.29}, {-89.20, 30.18}, {-89.00, 29.70},
      {-89.40, 29.10}, {-90.10, 29.00}, {-90.75, 29.05}, {-91.30, 29.50},
      {-91.90, 29.65}, {-92.60, 29.55}, {-93.35, 29.75}, {-93.85, 29.70},
      {-93.93, 29.80}, {-93.70, 30.10}, {-93.70, 30.60}, {-93.55, 31.10},
      {-93.82, 31.60}, {-94.04, 31.99}, {-94.04, 33.02},
  };
  TIOGA2_ASSIGN_OR_RETURN(Schema schema,
                          Schema::Make({Column{"x", DataType::kFloat},
                                        Column{"y", DataType::kFloat},
                                        Column{"dx", DataType::kFloat},
                                        Column{"dy", DataType::kFloat}}));
  RelationBuilder builder(std::make_shared<const Schema>(std::move(schema)));
  constexpr size_t kPoints = std::size(kOutline);
  for (size_t i = 0; i + 1 < kPoints; ++i) {
    builder.AddRowUnchecked(Tuple{
        Value::Float(kOutline[i][0]), Value::Float(kOutline[i][1]),
        Value::Float(kOutline[i + 1][0] - kOutline[i][0]),
        Value::Float(kOutline[i + 1][1] - kOutline[i][1])});
  }
  return builder.Build();
}

Result<RelationPtr> MakeEmployees(size_t count, uint64_t seed) {
  static constexpr const char* kDepartments[] = {"shoe", "toy", "candy", "hardware"};
  static constexpr const char* kFirst[] = {"ALEX", "JOLLY", "MIKE", "ALLISON", "SAM",
                                           "PAT", "CHRIS", "DANA", "ROBIN", "JEAN"};
  static constexpr const char* kLast[] = {"SMITH", "NGUYEN", "GARCIA", "CHEN", "DAVIS",
                                          "MILLER", "JOHNSON", "LEE", "BROWN", "JONES"};
  TIOGA2_ASSIGN_OR_RETURN(
      Schema schema,
      Schema::Make({Column{"emp_id", DataType::kInt},
                    Column{"name", DataType::kString},
                    Column{"department", DataType::kString},
                    Column{"salary", DataType::kFloat},
                    Column{"hired", DataType::kDate}}));
  RelationBuilder builder(std::make_shared<const Schema>(std::move(schema)));
  Rng rng(seed);
  for (size_t i = 0; i < count; ++i) {
    std::string name = std::string(kFirst[rng.NextBounded(std::size(kFirst))]) + " " +
                       kLast[rng.NextBounded(std::size(kLast))];
    const char* department = kDepartments[rng.NextBounded(std::size(kDepartments))];
    double salary = 2000.0 + rng.Uniform(0.0, 8000.0);
    Date hired = Date::FromYmd(1980 + static_cast<int>(rng.NextBounded(16)),
                               1 + static_cast<int>(rng.NextBounded(12)),
                               1 + static_cast<int>(rng.NextBounded(28)));
    builder.AddRowUnchecked(Tuple{Value::Int(static_cast<int64_t>(i + 1)),
                                  Value::String(std::move(name)),
                                  Value::String(department), Value::Float(salary),
                                  Value::DateVal(hired)});
  }
  return builder.Build();
}

Status LoadDemoData(db::Catalog* catalog, size_t extra_stations, size_t num_days,
                    uint64_t seed) {
  TIOGA2_ASSIGN_OR_RETURN(RelationPtr stations, MakeStations(extra_stations, seed));
  TIOGA2_ASSIGN_OR_RETURN(
      RelationPtr observations,
      MakeObservations(*stations, Date::FromYmd(1985, 1, 1), num_days, seed + 1));
  TIOGA2_ASSIGN_OR_RETURN(RelationPtr map, MakeLouisianaMap());
  TIOGA2_ASSIGN_OR_RETURN(RelationPtr employees, MakeEmployees(200, seed + 2));
  TIOGA2_RETURN_IF_ERROR(catalog->RegisterTable("Stations", std::move(stations)));
  TIOGA2_RETURN_IF_ERROR(catalog->RegisterTable("Observations", std::move(observations)));
  TIOGA2_RETURN_IF_ERROR(catalog->RegisterTable("LouisianaMap", std::move(map)));
  TIOGA2_RETURN_IF_ERROR(catalog->RegisterTable("Employees", std::move(employees)));
  return Status::OK();
}

}  // namespace tioga2::data
