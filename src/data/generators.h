#ifndef TIOGA2_DATA_GENERATORS_H_
#define TIOGA2_DATA_GENERATORS_H_

#include <cstdint>

#include "common/result.h"
#include "db/catalog.h"
#include "db/relation.h"

namespace tioga2::data {

/// The `Stations` relation of the paper's running example (§4): one tuple
/// per weather station with id, name, state, longitude, latitude, and
/// altitude. A fixed set of real Louisiana cities (Figure 4 shows New
/// Orleans, Baton Rouge, Shreveport, ...) is followed by `extra_stations`
/// synthetic stations spread over North America. Deterministic in `seed`.
Result<db::RelationPtr> MakeStations(size_t extra_stations, uint64_t seed);

/// The `Observations` relation (§4): daily temperature (F) and precipitation
/// (inches) per station over `num_days` days starting at `start`.
/// Temperatures follow a seasonal sinusoid attenuated by latitude and
/// altitude; precipitation is bursty. Deterministic in `seed`.
Result<db::RelationPtr> MakeObservations(const db::Relation& stations,
                                         types::Date start, size_t num_days,
                                         uint64_t seed);

/// The Louisiana state outline "derived from a relation of lines defining
/// the map" (§6.1): tuples (x, y, dx, dy), one border segment each.
Result<db::RelationPtr> MakeLouisianaMap();

/// An employees relation for the §7.4 Replicate example (salary bands ×
/// departments).
Result<db::RelationPtr> MakeEmployees(size_t count, uint64_t seed);

/// Registers the standard demo dataset: Stations, Observations, LouisianaMap
/// and Employees.
Status LoadDemoData(db::Catalog* catalog, size_t extra_stations, size_t num_days,
                    uint64_t seed);

}  // namespace tioga2::data

#endif  // TIOGA2_DATA_GENERATORS_H_
