#include "boxes/composite_boxes.h"

#include "common/str_util.h"

namespace tioga2::boxes {

using display::Composite;
using display::Displayable;
using display::DisplayRelation;
using display::Group;
using display::GroupLayout;

namespace {

Result<Composite> InputComposite(const BoxValue& value) {
  TIOGA2_ASSIGN_OR_RETURN(Displayable displayable, dataflow::AsDisplayable(value));
  return display::AsComposite(displayable);
}

std::string LayoutToString(GroupLayout layout) {
  switch (layout) {
    case GroupLayout::kHorizontal: return "horizontal";
    case GroupLayout::kVertical: return "vertical";
    case GroupLayout::kTabular: return "tabular";
  }
  return "horizontal";
}

}  // namespace

Result<std::vector<BoxValue>> OverlayBox::Fire(const std::vector<BoxValue>& inputs,
                                               const ExecContext& ctx) const {
  TIOGA2_ASSIGN_OR_RETURN(Composite below, InputComposite(inputs[0]));
  TIOGA2_ASSIGN_OR_RETURN(Composite above, InputComposite(inputs[1]));
  bool mismatch = false;
  Composite combined = below.Overlay(above, offset_, &mismatch);
  if (mismatch) {
    ctx.warnings.push_back(
        "Overlay: composite members have different dimensions; lower-dimensional "
        "relations are treated as invariant in the extra dimensions (§6.1)");
  }
  return std::vector<BoxValue>{BoxValue(Displayable(std::move(combined)))};
}

std::map<std::string, std::string> OverlayBox::Params() const {
  std::vector<std::string> parts;
  parts.reserve(offset_.size());
  for (double v : offset_) parts.push_back(FormatDouble(v));
  return {{"offset", StrJoin(parts, ",")}};
}

Result<std::optional<dataflow::DeltaFire>> OverlayBox::ApplyDelta(
    const std::vector<dataflow::DeltaInput>& inputs,
    const std::vector<BoxValue>& old_outputs, const ExecContext& ctx) const {
  (void)old_outputs;
  // Overlay concatenates the member lists without touching any base rows:
  // re-firing is O(members) and the input edit scripts pass through with
  // the second input's member indices shifted past the first input's.
  std::vector<BoxValue> new_inputs{*inputs[0].new_value, *inputs[1].new_value};
  TIOGA2_ASSIGN_OR_RETURN(std::vector<BoxValue> outputs, Fire(new_inputs, ctx));
  TIOGA2_ASSIGN_OR_RETURN(Composite first, InputComposite(*inputs[0].new_value));
  dataflow::ValueDelta merged;
  for (const dataflow::MemberDelta& m : inputs[0].delta->members) {
    merged.members.push_back(m);
  }
  for (dataflow::MemberDelta m : inputs[1].delta->members) {
    m.member += first.size();
    merged.members.push_back(std::move(m));
  }
  return std::optional<dataflow::DeltaFire>(
      dataflow::DeltaFire{std::move(outputs), {std::move(merged)}});
}

Result<std::vector<BoxValue>> ShuffleBox::Fire(const std::vector<BoxValue>& inputs,
                                               const ExecContext& ctx) const {
  (void)ctx;
  TIOGA2_ASSIGN_OR_RETURN(Composite composite, InputComposite(inputs[0]));
  TIOGA2_ASSIGN_OR_RETURN(size_t index, composite.FindMember(member_));
  TIOGA2_ASSIGN_OR_RETURN(Composite shuffled, composite.Shuffle(index));
  return std::vector<BoxValue>{BoxValue(Displayable(std::move(shuffled)))};
}

Result<std::optional<dataflow::DeltaFire>> ShuffleBox::ApplyDelta(
    const std::vector<dataflow::DeltaInput>& inputs,
    const std::vector<BoxValue>& old_outputs, const ExecContext& ctx) const {
  (void)old_outputs;
  std::vector<BoxValue> new_inputs{*inputs[0].new_value};
  TIOGA2_ASSIGN_OR_RETURN(std::vector<BoxValue> outputs, Fire(new_inputs, ctx));
  TIOGA2_ASSIGN_OR_RETURN(Composite composite, InputComposite(*inputs[0].new_value));
  TIOGA2_ASSIGN_OR_RETURN(size_t index, composite.FindMember(member_));
  // Member `index` moved to the end; members after it shifted down one.
  dataflow::ValueDelta remapped;
  for (dataflow::MemberDelta m : inputs[0].delta->members) {
    if (m.member == index) {
      m.member = composite.size() - 1;
    } else if (m.member > index) {
      --m.member;
    }
    remapped.members.push_back(std::move(m));
  }
  return std::optional<dataflow::DeltaFire>(
      dataflow::DeltaFire{std::move(outputs), {std::move(remapped)}});
}

StitchBox::StitchBox(size_t arity, GroupLayout layout, size_t tabular_columns)
    : arity_(arity < 1 ? 1 : arity),
      layout_(layout),
      tabular_columns_(tabular_columns == 0 ? 1 : tabular_columns) {}

Result<std::vector<BoxValue>> StitchBox::Fire(const std::vector<BoxValue>& inputs,
                                              const ExecContext& ctx) const {
  (void)ctx;
  std::vector<Composite> members;
  members.reserve(inputs.size());
  for (const BoxValue& input : inputs) {
    TIOGA2_ASSIGN_OR_RETURN(Composite composite, InputComposite(input));
    members.push_back(std::move(composite));
  }
  Group group(std::move(members), layout_, tabular_columns_);
  return std::vector<BoxValue>{BoxValue(Displayable(std::move(group)))};
}

std::map<std::string, std::string> StitchBox::Params() const {
  return {{"arity", std::to_string(arity_)},
          {"layout", LayoutToString(layout_)},
          {"columns", std::to_string(tabular_columns_)}};
}

Result<std::optional<dataflow::DeltaFire>> StitchBox::ApplyDelta(
    const std::vector<dataflow::DeltaInput>& inputs,
    const std::vector<BoxValue>& old_outputs, const ExecContext& ctx) const {
  (void)old_outputs;
  std::vector<BoxValue> new_inputs;
  new_inputs.reserve(inputs.size());
  for (const dataflow::DeltaInput& input : inputs) {
    new_inputs.push_back(*input.new_value);
  }
  TIOGA2_ASSIGN_OR_RETURN(std::vector<BoxValue> outputs, Fire(new_inputs, ctx));
  // Input p becomes group member p; its composite-local member indices are
  // preserved.
  dataflow::ValueDelta merged;
  for (size_t p = 0; p < inputs.size(); ++p) {
    for (dataflow::MemberDelta m : inputs[p].delta->members) {
      m.group_member = p;
      merged.members.push_back(std::move(m));
    }
  }
  return std::optional<dataflow::DeltaFire>(
      dataflow::DeltaFire{std::move(outputs), {std::move(merged)}});
}

ReplicateBox::ReplicateBox(std::vector<std::string> row_predicates,
                           std::vector<std::string> column_predicates)
    : row_predicates_(std::move(row_predicates)),
      column_predicates_(std::move(column_predicates)) {}

Result<std::vector<BoxValue>> ReplicateBox::Fire(const std::vector<BoxValue>& inputs,
                                                 const ExecContext& ctx) const {
  TIOGA2_ASSIGN_OR_RETURN(Displayable displayable, dataflow::AsDisplayable(inputs[0]));
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation relation, display::AsRelation(displayable));
  if (row_predicates_.empty()) {
    return Status::InvalidArgument("Replicate needs at least one partition predicate");
  }
  std::vector<Composite> members;
  for (const std::string& row_predicate : row_predicates_) {
    if (column_predicates_.empty()) {
      TIOGA2_ASSIGN_OR_RETURN(DisplayRelation part,
                              relation.Restrict(row_predicate, ctx.policy));
      part.set_name(relation.name() + "[" + row_predicate + "]");
      members.emplace_back(std::move(part));
      continue;
    }
    for (const std::string& column_predicate : column_predicates_) {
      std::string predicate = "(" + row_predicate + ") and (" + column_predicate + ")";
      TIOGA2_ASSIGN_OR_RETURN(DisplayRelation part,
                              relation.Restrict(predicate, ctx.policy));
      part.set_name(relation.name() + "[" + predicate + "]");
      members.emplace_back(std::move(part));
    }
  }
  size_t columns = column_predicates_.empty() ? 1 : column_predicates_.size();
  GroupLayout layout =
      column_predicates_.empty() ? GroupLayout::kVertical : GroupLayout::kTabular;
  Group group(std::move(members), layout, columns);
  return std::vector<BoxValue>{BoxValue(Displayable(std::move(group)))};
}

std::map<std::string, std::string> ReplicateBox::Params() const {
  return {{"rows", StrJoin(row_predicates_, ";")},
          {"columns", StrJoin(column_predicates_, ";")}};
}

LiftBox::LiftBox(BoxPtr inner, PortType lifted_type, size_t group_member,
                 std::string member)
    : inner_(std::move(inner)),
      lifted_type_(lifted_type),
      group_member_(group_member),
      member_(std::move(member)) {}

Result<std::vector<BoxValue>> LiftBox::Fire(const std::vector<BoxValue>& inputs,
                                            const ExecContext& ctx) const {
  TIOGA2_ASSIGN_OR_RETURN(Displayable displayable, dataflow::AsDisplayable(inputs[0]));

  // Pull out the group, the composite, and the target relation, run the
  // inner box on the relation, and reassemble (§2).
  Group group = display::AsGroup(displayable);
  if (group_member_ >= group.size()) {
    return Status::OutOfRange("Lift: group member " + std::to_string(group_member_) +
                              " out of range (group has " + std::to_string(group.size()) +
                              ")");
  }
  Composite& composite = group.mutable_members()[group_member_];
  TIOGA2_ASSIGN_OR_RETURN(size_t member_index, composite.FindMember(member_));
  DisplayRelation& target = composite.mutable_entries()[member_index].relation;

  std::vector<BoxValue> inner_inputs{BoxValue(Displayable(target))};
  TIOGA2_ASSIGN_OR_RETURN(std::vector<BoxValue> inner_outputs,
                          inner_->Fire(inner_inputs, ctx));
  if (inner_outputs.size() != 1) {
    return Status::Internal("Lift: inner box must have exactly one output");
  }
  TIOGA2_ASSIGN_OR_RETURN(Displayable inner_result,
                          dataflow::AsDisplayable(inner_outputs[0]));
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation replaced, display::AsRelation(inner_result));
  target = std::move(replaced);

  // Narrow the result back to the lifted type.
  if (lifted_type_.kind() == PortType::Kind::kComposite) {
    return std::vector<BoxValue>{BoxValue(Displayable(group.members()[0]))};
  }
  return std::vector<BoxValue>{BoxValue(Displayable(std::move(group)))};
}

std::map<std::string, std::string> LiftBox::Params() const {
  std::map<std::string, std::string> params = {
      {"type", lifted_type_.ToString()},
      {"group_member", std::to_string(group_member_)},
      {"member", member_},
      {"inner", inner_->type_name()},
  };
  for (const auto& [key, value] : inner_->Params()) {
    params["inner." + key] = value;
  }
  return params;
}

std::unique_ptr<Box> LiftBox::Clone() const {
  return std::make_unique<LiftBox>(inner_->Clone(), lifted_type_, group_member_,
                                   member_);
}

}  // namespace tioga2::boxes
