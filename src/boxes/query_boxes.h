#ifndef TIOGA2_BOXES_QUERY_BOXES_H_
#define TIOGA2_BOXES_QUERY_BOXES_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dataflow/box.h"
#include "db/aggregates.h"

namespace tioga2::boxes {

using dataflow::Box;
using dataflow::BoxValue;
using dataflow::DeltaFire;
using dataflow::DeltaInput;
using dataflow::ExecContext;
using dataflow::PortType;

/// GroupBy: hash aggregation over the base relation; the result carries
/// fresh default location/display attributes (like Join). An extension box
/// in the §1.2 principle-5 sense — registered by a "big programmer", usable
/// by anyone.
class GroupByBox : public Box {
 public:
  GroupByBox(std::vector<std::string> keys, std::vector<db::AggSpec> aggs)
      : keys_(std::move(keys)), aggs_(std::move(aggs)) {}

  std::string type_name() const override { return "GroupBy"; }
  std::vector<PortType> InputTypes() const override { return {PortType::Relation()}; }
  std::vector<PortType> OutputTypes() const override { return {PortType::Relation()}; }
  Result<std::vector<BoxValue>> Fire(const std::vector<BoxValue>& inputs,
                                     const ExecContext& ctx) const override;
  std::map<std::string, std::string> Params() const override;
  std::unique_ptr<Box> Clone() const override {
    return std::make_unique<GroupByBox>(keys_, aggs_);
  }

 private:
  std::vector<std::string> keys_;
  std::vector<db::AggSpec> aggs_;
};

/// Distinct: removes duplicate base tuples; extended attributes preserved.
class DistinctBox : public Box {
 public:
  DistinctBox() = default;

  std::string type_name() const override { return "Distinct"; }
  std::vector<PortType> InputTypes() const override { return {PortType::Relation()}; }
  std::vector<PortType> OutputTypes() const override { return {PortType::Relation()}; }
  Result<std::vector<BoxValue>> Fire(const std::vector<BoxValue>& inputs,
                                     const ExecContext& ctx) const override;
  std::map<std::string, std::string> Params() const override { return {}; }
  std::unique_ptr<Box> Clone() const override { return std::make_unique<DistinctBox>(); }
};

/// UnionAll: bag union of two extended relations with identical base
/// schemas; the first input's attributes and designations win.
class UnionAllBox : public Box {
 public:
  UnionAllBox() = default;

  std::string type_name() const override { return "UnionAll"; }
  std::vector<PortType> InputTypes() const override {
    return {PortType::Relation(), PortType::Relation()};
  }
  std::vector<PortType> OutputTypes() const override { return {PortType::Relation()}; }
  Result<std::vector<BoxValue>> Fire(const std::vector<BoxValue>& inputs,
                                     const ExecContext& ctx) const override;
  std::map<std::string, std::string> Params() const override { return {}; }
  std::unique_ptr<Box> Clone() const override { return std::make_unique<UnionAllBox>(); }
};

/// Sort: orders the base tuples by a stored column (stable).
class SortBox : public Box {
 public:
  SortBox(std::string column, bool ascending)
      : column_(std::move(column)), ascending_(ascending) {}

  std::string type_name() const override { return "Sort"; }
  std::vector<PortType> InputTypes() const override { return {PortType::Relation()}; }
  std::vector<PortType> OutputTypes() const override { return {PortType::Relation()}; }
  Result<std::vector<BoxValue>> Fire(const std::vector<BoxValue>& inputs,
                                     const ExecContext& ctx) const override;
  std::map<std::string, std::string> Params() const override {
    return {{"column", column_}, {"ascending", ascending_ ? "true" : "false"}};
  }
  /// Single-row fast path: relocates the edited tuple by counting rows that
  /// sort before it (O(n) compares, no re-sort) and splices the old output
  /// with at most a delete+insert pair.
  Result<std::optional<DeltaFire>> ApplyDelta(
      const std::vector<DeltaInput>& inputs,
      const std::vector<BoxValue>& old_outputs,
      const ExecContext& ctx) const override;
  std::unique_ptr<Box> Clone() const override {
    return std::make_unique<SortBox>(column_, ascending_);
  }

 private:
  std::string column_;
  bool ascending_;
};

/// Limit: keeps the first n base tuples.
class LimitBox : public Box {
 public:
  explicit LimitBox(size_t limit) : limit_(limit) {}

  std::string type_name() const override { return "Limit"; }
  std::vector<PortType> InputTypes() const override { return {PortType::Relation()}; }
  std::vector<PortType> OutputTypes() const override { return {PortType::Relation()}; }
  Result<std::vector<BoxValue>> Fire(const std::vector<BoxValue>& inputs,
                                     const ExecContext& ctx) const override;
  std::map<std::string, std::string> Params() const override {
    return {{"n", std::to_string(limit_)}};
  }
  /// In-place updates within the first n rows splice the old output; edits
  /// at or past the limit leave it untouched. Inserts/deletes shift rows
  /// across the boundary and decline.
  Result<std::optional<DeltaFire>> ApplyDelta(
      const std::vector<DeltaInput>& inputs,
      const std::vector<BoxValue>& old_outputs,
      const ExecContext& ctx) const override;
  std::unique_ptr<Box> Clone() const override {
    return std::make_unique<LimitBox>(limit_);
  }

 private:
  size_t limit_;
};

/// Parses "fn:column:output;fn:column:output" (column empty for count).
Result<std::vector<db::AggSpec>> ParseAggSpecs(const std::string& text);

/// Inverse of ParseAggSpecs.
std::string AggSpecsToString(const std::vector<db::AggSpec>& aggs);

}  // namespace tioga2::boxes

#endif  // TIOGA2_BOXES_QUERY_BOXES_H_
