#ifndef TIOGA2_BOXES_RELATIONAL_BOXES_H_
#define TIOGA2_BOXES_RELATIONAL_BOXES_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dataflow/box.h"

namespace tioga2::boxes {

using dataflow::Box;
using dataflow::BoxValue;
using dataflow::DeltaFire;
using dataflow::DeltaInput;
using dataflow::ExecContext;
using dataflow::PortType;

/// Add Table (§4.2): "for every relation known to the Tioga-2 system there
/// is a box of the same name that takes no inputs and produces as output the
/// tuples of the relation", wrapped with the §5.2 default display. The cache
/// salt is the table's catalog version, so §8 updates invalidate downstream
/// boxes automatically.
class TableBox : public Box {
 public:
  explicit TableBox(std::string table) : table_(std::move(table)) {}

  std::string type_name() const override { return "Table"; }
  std::vector<PortType> InputTypes() const override { return {}; }
  std::vector<PortType> OutputTypes() const override { return {PortType::Relation()}; }
  Result<std::vector<BoxValue>> Fire(const std::vector<BoxValue>& inputs,
                                     const ExecContext& ctx) const override;
  std::map<std::string, std::string> Params() const override {
    return {{"table", table_}};
  }
  std::string CacheSalt(const ExecContext& ctx) const override;
  /// Accepts the pending table delta when it targets this box's table:
  /// re-fires (sharing the catalog's relation) and emits the single-row
  /// edit script downstream.
  Result<std::optional<DeltaFire>> ApplyDelta(
      const std::vector<DeltaInput>& inputs,
      const std::vector<BoxValue>& old_outputs,
      const ExecContext& ctx) const override;
  std::unique_ptr<Box> Clone() const override {
    return std::make_unique<TableBox>(table_);
  }

  const std::string& table() const { return table_; }

 private:
  std::string table_;
};

/// Restrict (§4.2): filters to tuples satisfying a predicate written over
/// the extended relation's attributes (stored and computed).
class RestrictBox : public Box {
 public:
  explicit RestrictBox(std::string predicate) : predicate_(std::move(predicate)) {}

  std::string type_name() const override { return "Restrict"; }
  std::vector<PortType> InputTypes() const override { return {PortType::Relation()}; }
  std::vector<PortType> OutputTypes() const override { return {PortType::Relation()}; }
  Result<std::vector<BoxValue>> Fire(const std::vector<BoxValue>& inputs,
                                     const ExecContext& ctx) const override;
  std::map<std::string, std::string> Params() const override {
    return {{"predicate", predicate_}};
  }
  /// Single-row fast path: re-tests the predicate on the edited row only,
  /// splicing the old output instead of re-filtering the whole relation.
  Result<std::optional<DeltaFire>> ApplyDelta(
      const std::vector<DeltaInput>& inputs,
      const std::vector<BoxValue>& old_outputs,
      const ExecContext& ctx) const override;
  std::unique_ptr<Box> Clone() const override {
    return std::make_unique<RestrictBox>(predicate_);
  }

 private:
  std::string predicate_;
};

/// Project (§4.2): keeps the named stored columns.
class ProjectBox : public Box {
 public:
  explicit ProjectBox(std::vector<std::string> columns) : columns_(std::move(columns)) {}

  std::string type_name() const override { return "Project"; }
  std::vector<PortType> InputTypes() const override { return {PortType::Relation()}; }
  std::vector<PortType> OutputTypes() const override { return {PortType::Relation()}; }
  Result<std::vector<BoxValue>> Fire(const std::vector<BoxValue>& inputs,
                                     const ExecContext& ctx) const override;
  std::map<std::string, std::string> Params() const override;
  /// Projects just the edited tuples and splices the old output.
  Result<std::optional<DeltaFire>> ApplyDelta(
      const std::vector<DeltaInput>& inputs,
      const std::vector<BoxValue>& old_outputs,
      const ExecContext& ctx) const override;
  std::unique_ptr<Box> Clone() const override {
    return std::make_unique<ProjectBox>(columns_);
  }

 private:
  std::vector<std::string> columns_;
};

/// Sample (§4.2): Bernoulli sample, "useful for improving interactive
/// response by reducing the size of data sets to be processed".
class SampleBox : public Box {
 public:
  SampleBox(double probability, uint64_t seed)
      : probability_(probability), seed_(seed) {}

  std::string type_name() const override { return "Sample"; }
  std::vector<PortType> InputTypes() const override { return {PortType::Relation()}; }
  std::vector<PortType> OutputTypes() const override { return {PortType::Relation()}; }
  Result<std::vector<BoxValue>> Fire(const std::vector<BoxValue>& inputs,
                                     const ExecContext& ctx) const override;
  std::map<std::string, std::string> Params() const override;
  std::unique_ptr<Box> Clone() const override {
    return std::make_unique<SampleBox>(probability_, seed_);
  }

 private:
  double probability_;
  uint64_t seed_;
};

/// Join (§4.2): joins the base relations of two extended relations on a
/// predicate over the join's output schema; the result carries fresh
/// default location/display attributes.
class JoinBox : public Box {
 public:
  explicit JoinBox(std::string predicate) : predicate_(std::move(predicate)) {}

  std::string type_name() const override { return "Join"; }
  std::vector<PortType> InputTypes() const override {
    return {PortType::Relation(), PortType::Relation()};
  }
  std::vector<PortType> OutputTypes() const override { return {PortType::Relation()}; }
  Result<std::vector<BoxValue>> Fire(const std::vector<BoxValue>& inputs,
                                     const ExecContext& ctx) const override;
  std::map<std::string, std::string> Params() const override {
    return {{"predicate", predicate_}};
  }
  std::unique_ptr<Box> Clone() const override {
    return std::make_unique<JoinBox>(predicate_);
  }

 private:
  std::string predicate_;
};

/// Switch: the multi-output control-flow box motivating §1.1 problem 3 —
/// "if condition then deliver data to box i else deliver data to box j".
/// Output 0 receives tuples satisfying the predicate, output 1 the rest.
class SwitchBox : public Box {
 public:
  explicit SwitchBox(std::string predicate) : predicate_(std::move(predicate)) {}

  std::string type_name() const override { return "Switch"; }
  std::vector<PortType> InputTypes() const override { return {PortType::Relation()}; }
  std::vector<PortType> OutputTypes() const override {
    return {PortType::Relation(), PortType::Relation()};
  }
  Result<std::vector<BoxValue>> Fire(const std::vector<BoxValue>& inputs,
                                     const ExecContext& ctx) const override;
  std::map<std::string, std::string> Params() const override {
    return {{"predicate", predicate_}};
  }
  /// Like Restrict's fast path, applied to both output ports.
  Result<std::optional<DeltaFire>> ApplyDelta(
      const std::vector<DeltaInput>& inputs,
      const std::vector<BoxValue>& old_outputs,
      const ExecContext& ctx) const override;
  std::unique_ptr<Box> Clone() const override {
    return std::make_unique<SwitchBox>(predicate_);
  }

 private:
  std::string predicate_;
};

/// A scalar constant source — the textual form of a runtime parameter (§2).
class ConstBox : public Box {
 public:
  ConstBox(types::DataType type, std::string text)
      : type_(type), text_(std::move(text)) {}

  std::string type_name() const override { return "Const"; }
  std::vector<PortType> InputTypes() const override { return {}; }
  std::vector<PortType> OutputTypes() const override {
    return {PortType::Scalar(type_)};
  }
  Result<std::vector<BoxValue>> Fire(const std::vector<BoxValue>& inputs,
                                     const ExecContext& ctx) const override;
  std::map<std::string, std::string> Params() const override;
  std::unique_ptr<Box> Clone() const override {
    return std::make_unique<ConstBox>(type_, text_);
  }

 private:
  types::DataType type_;
  std::string text_;
};

/// A viewer (§2): the sink translating a displayable into screen output.
/// The box itself is a pure marker — the ui::Session registers each viewer
/// box's input as a named canvas, which viewer::Viewer objects then render.
class ViewerBox : public Box {
 public:
  explicit ViewerBox(std::string canvas) : canvas_(std::move(canvas)) {}

  std::string type_name() const override { return "Viewer"; }
  std::vector<PortType> InputTypes() const override { return {PortType::GroupT()}; }
  std::vector<PortType> OutputTypes() const override { return {}; }
  Result<std::vector<BoxValue>> Fire(const std::vector<BoxValue>& inputs,
                                     const ExecContext& ctx) const override {
    (void)inputs;
    (void)ctx;
    return std::vector<BoxValue>{};
  }
  std::map<std::string, std::string> Params() const override {
    return {{"canvas", canvas_}};
  }
  /// Accepts trivially — the viewer has no outputs, so there is nothing to
  /// maintain. Keeping the cached (empty) entry warm prevents a spurious
  /// fallback for programs whose viewer was evaluated via EvaluateAll.
  Result<std::optional<DeltaFire>> ApplyDelta(
      const std::vector<DeltaInput>& inputs,
      const std::vector<BoxValue>& old_outputs,
      const ExecContext& ctx) const override {
    (void)inputs;
    (void)old_outputs;
    (void)ctx;
    return std::optional<DeltaFire>(DeltaFire{});
  }
  std::unique_ptr<Box> Clone() const override {
    return std::make_unique<ViewerBox>(canvas_);
  }

  const std::string& canvas() const { return canvas_; }

 private:
  std::string canvas_;
};

}  // namespace tioga2::boxes

#endif  // TIOGA2_BOXES_RELATIONAL_BOXES_H_
