#ifndef TIOGA2_BOXES_PROGRAM_IO_H_
#define TIOGA2_BOXES_PROGRAM_IO_H_

#include <string>

#include "common/result.h"
#include "dataflow/graph.h"

namespace tioga2::boxes {

/// Serializes a boxes-and-arrows program to the line-based text format used
/// by Save Program (Figure 2). Encapsulated boxes serialize their inner
/// program as a nested block, so user-defined boxes survive the round trip.
///
///   tioga2-program v1
///   box b1 Table table="Stations"
///   encap b2 name="la_filter" outputs="r1:0" {
///     box in0 InputStub index="0" type="R"
///     box r1 Restrict predicate="state = \"LA\""
///     edge in0:0 r1:0
///   }
///   edge b1:0 b2:0
Result<std::string> SerializeProgram(const dataflow::Graph& graph);

/// Parses the format produced by SerializeProgram.
Result<dataflow::Graph> DeserializeProgram(const std::string& text);

}  // namespace tioga2::boxes

#endif  // TIOGA2_BOXES_PROGRAM_IO_H_
