#include "boxes/relational_boxes.h"

#include "common/str_util.h"
#include "db/operators.h"
#include "display/display_relation.h"

namespace tioga2::boxes {

using dataflow::AsDisplayable;
using dataflow::MemberDelta;
using dataflow::RowOp;
using dataflow::SinglePrimaryOp;
using dataflow::ValueDelta;
using display::DisplayRelation;
using display::Displayable;

namespace {

/// Unwraps a BoxValue known (by port typing) to be an R.
Result<DisplayRelation> InputRelation(const BoxValue& value) {
  TIOGA2_ASSIGN_OR_RETURN(Displayable displayable, AsDisplayable(value));
  return display::AsRelation(displayable);
}

BoxValue WrapRelation(DisplayRelation relation) {
  return BoxValue(Displayable(std::move(relation)));
}

/// The delta declined: caller falls back to a full recompute.
std::optional<DeltaFire> Decline() { return std::optional<DeltaFire>(); }

/// One predicate filter's worth of delta maintenance, shared by Restrict
/// and Switch. Pushes a single-row input edit through `predicate`: re-tests
/// only the edited row, locates where it lands in the filtered output by
/// counting kept rows in the prefix, and splices the old output base. The
/// result is byte-identical to re-filtering the whole new input. `ops` is
/// left empty when the output is unchanged (the edited row is dropped on
/// both sides of the edit).
struct FilteredDelta {
  DisplayRelation output;
  std::vector<RowOp> ops;
};

Result<FilteredDelta> FilterRowEdit(const DisplayRelation& old_in,
                                    const DisplayRelation& new_in,
                                    const DisplayRelation& old_out,
                                    const RowOp& op, const std::string& predicate,
                                    const db::ExecPolicy& policy) {
  // The prefix [0, op.row) is identical in the old and new inputs for every
  // op kind, so the edited row's output position is the kept count there.
  TIOGA2_ASSIGN_OR_RETURN(size_t k, new_in.CountKept(predicate, op.row, policy));
  bool keep_old = false;
  bool keep_new = false;
  if (op.kind != RowOp::Kind::kInsert) {
    TIOGA2_ASSIGN_OR_RETURN(keep_old, old_in.KeepsRow(predicate, op.row));
  }
  if (op.kind != RowOp::Kind::kDelete) {
    TIOGA2_ASSIGN_OR_RETURN(keep_new, new_in.KeepsRow(predicate, op.row));
  }

  FilteredDelta out;
  if (keep_old && keep_new) {
    TIOGA2_ASSIGN_OR_RETURN(db::RelationPtr spliced,
                            db::WithRowReplaced(old_out.base(), k, op.new_tuple));
    RowOp o;
    o.kind = RowOp::Kind::kUpdate;
    o.row = k;
    o.old_tuple = op.old_tuple;
    o.new_tuple = op.new_tuple;
    out.ops.push_back(std::move(o));
    TIOGA2_ASSIGN_OR_RETURN(out.output, new_in.WithBase(std::move(spliced)));
    return out;
  }
  if (keep_old) {
    TIOGA2_ASSIGN_OR_RETURN(db::RelationPtr spliced,
                            db::WithRowErased(old_out.base(), k));
    RowOp o;
    o.kind = RowOp::Kind::kDelete;
    o.row = k;
    o.old_tuple = op.old_tuple;
    out.ops.push_back(std::move(o));
    TIOGA2_ASSIGN_OR_RETURN(out.output, new_in.WithBase(std::move(spliced)));
    return out;
  }
  if (keep_new) {
    TIOGA2_ASSIGN_OR_RETURN(db::RelationPtr spliced,
                            db::WithRowInserted(old_out.base(), k, op.new_tuple));
    RowOp o;
    o.kind = RowOp::Kind::kInsert;
    o.row = k;
    o.new_tuple = op.new_tuple;
    out.ops.push_back(std::move(o));
    TIOGA2_ASSIGN_OR_RETURN(out.output, new_in.WithBase(std::move(spliced)));
    return out;
  }
  // Dropped before and after: the output is unchanged. Reuse the old
  // output's base so the result is byte-identical without any splice.
  TIOGA2_ASSIGN_OR_RETURN(out.output, new_in.WithBase(old_out.base()));
  return out;
}

/// Wraps filter ops into the single-member ValueDelta shape.
ValueDelta PrimaryDelta(std::vector<RowOp> ops) {
  ValueDelta delta;
  if (!ops.empty()) {
    MemberDelta member;
    member.ops = std::move(ops);
    delta.members.push_back(std::move(member));
  }
  return delta;
}

}  // namespace

Result<std::vector<BoxValue>> TableBox::Fire(const std::vector<BoxValue>& inputs,
                                             const ExecContext& ctx) const {
  (void)inputs;
  if (ctx.catalog == nullptr) {
    return Status::FailedPrecondition("Table box needs a catalog");
  }
  TIOGA2_ASSIGN_OR_RETURN(db::RelationPtr relation, ctx.catalog->GetTable(table_));
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation display,
                          DisplayRelation::WithDefaults(table_, std::move(relation)));
  return std::vector<BoxValue>{WrapRelation(std::move(display))};
}

std::string TableBox::CacheSalt(const ExecContext& ctx) const {
  if (ctx.catalog == nullptr) return "no-catalog";
  Result<uint64_t> version = ctx.catalog->TableVersion(table_);
  return version.ok() ? std::to_string(version.value()) : "missing";
}

Result<std::optional<DeltaFire>> TableBox::ApplyDelta(
    const std::vector<DeltaInput>& inputs, const std::vector<BoxValue>& old_outputs,
    const ExecContext& ctx) const {
  (void)inputs;
  (void)old_outputs;
  if (ctx.pending_delta == nullptr || ctx.pending_delta->table != table_) {
    return Decline();
  }
  // Re-firing a source box is O(attributes): the relation itself is shared
  // with the catalog. The interesting part is the edit script it seeds.
  TIOGA2_ASSIGN_OR_RETURN(std::vector<BoxValue> outputs, Fire({}, ctx));
  RowOp op;
  op.kind = RowOp::Kind::kUpdate;
  op.row = ctx.pending_delta->row;
  op.old_tuple = ctx.pending_delta->old_tuple;
  op.new_tuple = ctx.pending_delta->new_tuple;
  return std::optional<DeltaFire>(
      DeltaFire{std::move(outputs), {PrimaryDelta({std::move(op)})}});
}

Result<std::vector<BoxValue>> RestrictBox::Fire(const std::vector<BoxValue>& inputs,
                                                const ExecContext& ctx) const {
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation input, InputRelation(inputs[0]));
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation output,
                          input.Restrict(predicate_, ctx.policy));
  return std::vector<BoxValue>{WrapRelation(std::move(output))};
}

Result<std::optional<DeltaFire>> RestrictBox::ApplyDelta(
    const std::vector<DeltaInput>& inputs, const std::vector<BoxValue>& old_outputs,
    const ExecContext& ctx) const {
  const RowOp* op = SinglePrimaryOp(*inputs[0].delta);
  if (op == nullptr) return Decline();
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation old_in, InputRelation(*inputs[0].old_value));
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation new_in, InputRelation(*inputs[0].new_value));
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation old_out, InputRelation(old_outputs[0]));
  TIOGA2_ASSIGN_OR_RETURN(
      FilteredDelta filtered,
      FilterRowEdit(old_in, new_in, old_out, *op, predicate_, ctx.policy));
  return std::optional<DeltaFire>(
      DeltaFire{{WrapRelation(std::move(filtered.output))},
                {PrimaryDelta(std::move(filtered.ops))}});
}

Result<std::vector<BoxValue>> ProjectBox::Fire(const std::vector<BoxValue>& inputs,
                                               const ExecContext& ctx) const {
  (void)ctx;
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation input, InputRelation(inputs[0]));
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation output, input.Project(columns_));
  return std::vector<BoxValue>{WrapRelation(std::move(output))};
}

std::map<std::string, std::string> ProjectBox::Params() const {
  return {{"columns", StrJoin(columns_, ",")}};
}

Result<std::optional<DeltaFire>> ProjectBox::ApplyDelta(
    const std::vector<DeltaInput>& inputs, const std::vector<BoxValue>& old_outputs,
    const ExecContext& ctx) const {
  (void)ctx;
  const std::vector<RowOp>* ops = dataflow::PrimaryMemberOps(*inputs[0].delta);
  if (ops == nullptr) return Decline();
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation old_in, InputRelation(*inputs[0].old_value));
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation old_out, InputRelation(old_outputs[0]));

  // Column indices of the projection in the input base schema.
  std::vector<size_t> indices;
  indices.reserve(columns_.size());
  for (const std::string& column : columns_) {
    TIOGA2_ASSIGN_OR_RETURN(size_t index,
                            old_in.base()->schema()->ColumnIndex(column));
    indices.push_back(index);
  }
  auto project_tuple = [&indices](const db::Tuple& tuple) {
    db::Tuple out;
    out.reserve(indices.size());
    for (size_t index : indices) out.push_back(tuple[index]);
    return out;
  };

  // Project preserves row order and count, so each input op maps to the
  // same position in the output with projected tuples.
  db::RelationPtr spliced = old_out.base();
  std::vector<RowOp> out_ops;
  out_ops.reserve(ops->size());
  for (const RowOp& op : *ops) {
    RowOp out_op;
    out_op.kind = op.kind;
    out_op.row = op.row;
    switch (op.kind) {
      case RowOp::Kind::kUpdate: {
        out_op.old_tuple = project_tuple(op.old_tuple);
        out_op.new_tuple = project_tuple(op.new_tuple);
        TIOGA2_ASSIGN_OR_RETURN(
            spliced, db::WithRowReplaced(spliced, op.row, out_op.new_tuple));
        break;
      }
      case RowOp::Kind::kInsert: {
        out_op.new_tuple = project_tuple(op.new_tuple);
        TIOGA2_ASSIGN_OR_RETURN(
            spliced, db::WithRowInserted(spliced, op.row, out_op.new_tuple));
        break;
      }
      case RowOp::Kind::kDelete: {
        out_op.old_tuple = project_tuple(op.old_tuple);
        TIOGA2_ASSIGN_OR_RETURN(spliced, db::WithRowErased(spliced, op.row));
        break;
      }
    }
    out_ops.push_back(std::move(out_op));
  }

  // The output metadata (attribute remapping) is a pure function of the
  // program and the input schema, both unchanged since the old firing — so
  // the old output's metadata already matches a fresh Project over the new
  // input, and only the base needs splicing.
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation out, old_out.WithBase(std::move(spliced)));
  return std::optional<DeltaFire>(DeltaFire{
      {WrapRelation(std::move(out))}, {PrimaryDelta(std::move(out_ops))}});
}

Result<std::vector<BoxValue>> SampleBox::Fire(const std::vector<BoxValue>& inputs,
                                              const ExecContext& ctx) const {
  (void)ctx;
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation input, InputRelation(inputs[0]));
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation output, input.Sample(probability_, seed_));
  return std::vector<BoxValue>{WrapRelation(std::move(output))};
}

std::map<std::string, std::string> SampleBox::Params() const {
  return {{"probability", FormatDouble(probability_)}, {"seed", std::to_string(seed_)}};
}

Result<std::vector<BoxValue>> JoinBox::Fire(const std::vector<BoxValue>& inputs,
                                            const ExecContext& ctx) const {
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation left, InputRelation(inputs[0]));
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation right, InputRelation(inputs[1]));
  TIOGA2_ASSIGN_OR_RETURN(db::JoinResult joined,
                          db::Join(left.base(), right.base(), predicate_, ctx.policy));
  TIOGA2_ASSIGN_OR_RETURN(
      DisplayRelation output,
      DisplayRelation::WithDefaults(left.name() + "_" + right.name(),
                                    std::move(joined.relation)));
  return std::vector<BoxValue>{WrapRelation(std::move(output))};
}

Result<std::vector<BoxValue>> SwitchBox::Fire(const std::vector<BoxValue>& inputs,
                                              const ExecContext& ctx) const {
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation input, InputRelation(inputs[0]));
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation matching,
                          input.Restrict(predicate_, ctx.policy));
  TIOGA2_ASSIGN_OR_RETURN(
      DisplayRelation rest,
      input.Restrict("not (" + predicate_ + ")", ctx.policy));
  return std::vector<BoxValue>{WrapRelation(std::move(matching)),
                               WrapRelation(std::move(rest))};
}

Result<std::optional<DeltaFire>> SwitchBox::ApplyDelta(
    const std::vector<DeltaInput>& inputs, const std::vector<BoxValue>& old_outputs,
    const ExecContext& ctx) const {
  const RowOp* op = SinglePrimaryOp(*inputs[0].delta);
  if (op == nullptr) return Decline();
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation old_in, InputRelation(*inputs[0].old_value));
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation new_in, InputRelation(*inputs[0].new_value));
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation old_match, InputRelation(old_outputs[0]));
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation old_rest, InputRelation(old_outputs[1]));
  TIOGA2_ASSIGN_OR_RETURN(
      FilteredDelta matching,
      FilterRowEdit(old_in, new_in, old_match, *op, predicate_, ctx.policy));
  TIOGA2_ASSIGN_OR_RETURN(
      FilteredDelta rest,
      FilterRowEdit(old_in, new_in, old_rest, *op,
                    "not (" + predicate_ + ")", ctx.policy));
  return std::optional<DeltaFire>(
      DeltaFire{{WrapRelation(std::move(matching.output)),
                 WrapRelation(std::move(rest.output))},
                {PrimaryDelta(std::move(matching.ops)),
                 PrimaryDelta(std::move(rest.ops))}});
}

Result<std::vector<BoxValue>> ConstBox::Fire(const std::vector<BoxValue>& inputs,
                                             const ExecContext& ctx) const {
  (void)inputs;
  (void)ctx;
  TIOGA2_ASSIGN_OR_RETURN(types::Value value, types::Value::Parse(type_, text_));
  return std::vector<BoxValue>{BoxValue(std::move(value))};
}

std::map<std::string, std::string> ConstBox::Params() const {
  return {{"type", types::DataTypeToString(type_)}, {"value", text_}};
}

}  // namespace tioga2::boxes
