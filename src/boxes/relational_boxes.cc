#include "boxes/relational_boxes.h"

#include "common/str_util.h"
#include "db/operators.h"
#include "display/display_relation.h"

namespace tioga2::boxes {

using dataflow::AsDisplayable;
using display::DisplayRelation;
using display::Displayable;

namespace {

/// Unwraps a BoxValue known (by port typing) to be an R.
Result<DisplayRelation> InputRelation(const BoxValue& value) {
  TIOGA2_ASSIGN_OR_RETURN(Displayable displayable, AsDisplayable(value));
  return display::AsRelation(displayable);
}

BoxValue WrapRelation(DisplayRelation relation) {
  return BoxValue(Displayable(std::move(relation)));
}

}  // namespace

Result<std::vector<BoxValue>> TableBox::Fire(const std::vector<BoxValue>& inputs,
                                             const ExecContext& ctx) const {
  (void)inputs;
  if (ctx.catalog == nullptr) {
    return Status::FailedPrecondition("Table box needs a catalog");
  }
  TIOGA2_ASSIGN_OR_RETURN(db::RelationPtr relation, ctx.catalog->GetTable(table_));
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation display,
                          DisplayRelation::WithDefaults(table_, std::move(relation)));
  return std::vector<BoxValue>{WrapRelation(std::move(display))};
}

std::string TableBox::CacheSalt(const ExecContext& ctx) const {
  if (ctx.catalog == nullptr) return "no-catalog";
  Result<uint64_t> version = ctx.catalog->TableVersion(table_);
  return version.ok() ? std::to_string(version.value()) : "missing";
}

Result<std::vector<BoxValue>> RestrictBox::Fire(const std::vector<BoxValue>& inputs,
                                                const ExecContext& ctx) const {
  (void)ctx;
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation input, InputRelation(inputs[0]));
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation output, input.Restrict(predicate_));
  return std::vector<BoxValue>{WrapRelation(std::move(output))};
}

Result<std::vector<BoxValue>> ProjectBox::Fire(const std::vector<BoxValue>& inputs,
                                               const ExecContext& ctx) const {
  (void)ctx;
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation input, InputRelation(inputs[0]));
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation output, input.Project(columns_));
  return std::vector<BoxValue>{WrapRelation(std::move(output))};
}

std::map<std::string, std::string> ProjectBox::Params() const {
  return {{"columns", StrJoin(columns_, ",")}};
}

Result<std::vector<BoxValue>> SampleBox::Fire(const std::vector<BoxValue>& inputs,
                                              const ExecContext& ctx) const {
  (void)ctx;
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation input, InputRelation(inputs[0]));
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation output, input.Sample(probability_, seed_));
  return std::vector<BoxValue>{WrapRelation(std::move(output))};
}

std::map<std::string, std::string> SampleBox::Params() const {
  return {{"probability", FormatDouble(probability_)}, {"seed", std::to_string(seed_)}};
}

Result<std::vector<BoxValue>> JoinBox::Fire(const std::vector<BoxValue>& inputs,
                                            const ExecContext& ctx) const {
  (void)ctx;
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation left, InputRelation(inputs[0]));
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation right, InputRelation(inputs[1]));
  TIOGA2_ASSIGN_OR_RETURN(db::JoinResult joined,
                          db::Join(left.base(), right.base(), predicate_));
  TIOGA2_ASSIGN_OR_RETURN(
      DisplayRelation output,
      DisplayRelation::WithDefaults(left.name() + "_" + right.name(),
                                    std::move(joined.relation)));
  return std::vector<BoxValue>{WrapRelation(std::move(output))};
}

Result<std::vector<BoxValue>> SwitchBox::Fire(const std::vector<BoxValue>& inputs,
                                              const ExecContext& ctx) const {
  (void)ctx;
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation input, InputRelation(inputs[0]));
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation matching, input.Restrict(predicate_));
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation rest,
                          input.Restrict("not (" + predicate_ + ")"));
  return std::vector<BoxValue>{WrapRelation(std::move(matching)),
                               WrapRelation(std::move(rest))};
}

Result<std::vector<BoxValue>> ConstBox::Fire(const std::vector<BoxValue>& inputs,
                                             const ExecContext& ctx) const {
  (void)inputs;
  (void)ctx;
  TIOGA2_ASSIGN_OR_RETURN(types::Value value, types::Value::Parse(type_, text_));
  return std::vector<BoxValue>{BoxValue(std::move(value))};
}

std::map<std::string, std::string> ConstBox::Params() const {
  return {{"type", types::DataTypeToString(type_)}, {"value", text_}};
}

}  // namespace tioga2::boxes
