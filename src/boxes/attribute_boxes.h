#ifndef TIOGA2_BOXES_ATTRIBUTE_BOXES_H_
#define TIOGA2_BOXES_ATTRIBUTE_BOXES_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dataflow/box.h"
#include "display/display_relation.h"

namespace tioga2::boxes {

using dataflow::Box;
using dataflow::BoxValue;
using dataflow::ExecContext;
using dataflow::PortType;

/// Shared base for the R → R attribute operations of Figure 5. Subclasses
/// implement Apply(); the base handles unwrapping and rewrapping.
class UnaryRelationBox : public Box {
 public:
  std::vector<PortType> InputTypes() const override { return {PortType::Relation()}; }
  std::vector<PortType> OutputTypes() const override { return {PortType::Relation()}; }
  Result<std::vector<BoxValue>> Fire(const std::vector<BoxValue>& inputs,
                                     const ExecContext& ctx) const override;
  /// Every Figure-5 attribute operation is metadata-only: the base relation
  /// passes through row-for-row, so the input edit script IS the output
  /// edit script and re-firing costs O(attributes), not O(rows).
  Result<std::optional<dataflow::DeltaFire>> ApplyDelta(
      const std::vector<dataflow::DeltaInput>& inputs,
      const std::vector<BoxValue>& old_outputs,
      const ExecContext& ctx) const override;

 protected:
  virtual Result<display::DisplayRelation> Apply(
      const display::DisplayRelation& input) const = 0;
};

/// Add Attribute (§5.3): a new computed attribute from an expression.
class AddAttributeBox : public UnaryRelationBox {
 public:
  AddAttributeBox(std::string name, std::string definition)
      : name_(std::move(name)), definition_(std::move(definition)) {}
  std::string type_name() const override { return "AddAttribute"; }
  std::map<std::string, std::string> Params() const override {
    return {{"name", name_}, {"definition", definition_}};
  }
  std::unique_ptr<Box> Clone() const override {
    return std::make_unique<AddAttributeBox>(name_, definition_);
  }

 protected:
  Result<display::DisplayRelation> Apply(
      const display::DisplayRelation& input) const override {
    return input.AddAttribute(name_, definition_);
  }

 private:
  std::string name_;
  std::string definition_;
};

/// Set Attribute (§5.3): redefine an existing attribute.
class SetAttributeBox : public UnaryRelationBox {
 public:
  SetAttributeBox(std::string name, std::string definition)
      : name_(std::move(name)), definition_(std::move(definition)) {}
  std::string type_name() const override { return "SetAttribute"; }
  std::map<std::string, std::string> Params() const override {
    return {{"name", name_}, {"definition", definition_}};
  }
  std::unique_ptr<Box> Clone() const override {
    return std::make_unique<SetAttributeBox>(name_, definition_);
  }

 protected:
  Result<display::DisplayRelation> Apply(
      const display::DisplayRelation& input) const override {
    return input.SetAttribute(name_, definition_);
  }

 private:
  std::string name_;
  std::string definition_;
};

/// Remove Attribute (§5.3).
class RemoveAttributeBox : public UnaryRelationBox {
 public:
  explicit RemoveAttributeBox(std::string name) : name_(std::move(name)) {}
  std::string type_name() const override { return "RemoveAttribute"; }
  std::map<std::string, std::string> Params() const override {
    return {{"name", name_}};
  }
  std::unique_ptr<Box> Clone() const override {
    return std::make_unique<RemoveAttributeBox>(name_);
  }

 protected:
  Result<display::DisplayRelation> Apply(
      const display::DisplayRelation& input) const override {
    return input.RemoveAttribute(name_);
  }

 private:
  std::string name_;
};

/// Swap Attributes (§5.3).
class SwapAttributesBox : public UnaryRelationBox {
 public:
  SwapAttributesBox(std::string a, std::string b)
      : a_(std::move(a)), b_(std::move(b)) {}
  std::string type_name() const override { return "SwapAttributes"; }
  std::map<std::string, std::string> Params() const override {
    return {{"a", a_}, {"b", b_}};
  }
  std::unique_ptr<Box> Clone() const override {
    return std::make_unique<SwapAttributesBox>(a_, b_);
  }

 protected:
  Result<display::DisplayRelation> Apply(
      const display::DisplayRelation& input) const override {
    return input.SwapAttributes(a_, b_);
  }

 private:
  std::string a_;
  std::string b_;
};

/// Scale Attribute (§5.3).
class ScaleAttributeBox : public UnaryRelationBox {
 public:
  ScaleAttributeBox(std::string name, double factor)
      : name_(std::move(name)), factor_(factor) {}
  std::string type_name() const override { return "ScaleAttribute"; }
  std::map<std::string, std::string> Params() const override;
  std::unique_ptr<Box> Clone() const override {
    return std::make_unique<ScaleAttributeBox>(name_, factor_);
  }

 protected:
  Result<display::DisplayRelation> Apply(
      const display::DisplayRelation& input) const override {
    return input.ScaleAttribute(name_, factor_);
  }

 private:
  std::string name_;
  double factor_;
};

/// Translate Attribute (§5.3).
class TranslateAttributeBox : public UnaryRelationBox {
 public:
  TranslateAttributeBox(std::string name, double delta)
      : name_(std::move(name)), delta_(delta) {}
  std::string type_name() const override { return "TranslateAttribute"; }
  std::map<std::string, std::string> Params() const override;
  std::unique_ptr<Box> Clone() const override {
    return std::make_unique<TranslateAttributeBox>(name_, delta_);
  }

 protected:
  Result<display::DisplayRelation> Apply(
      const display::DisplayRelation& input) const override {
    return input.TranslateAttribute(name_, delta_);
  }

 private:
  std::string name_;
  double delta_;
};

/// Combine Displays (§5.3).
class CombineDisplaysBox : public UnaryRelationBox {
 public:
  CombineDisplaysBox(std::string name, std::string first, std::string second, double dx,
                     double dy)
      : name_(std::move(name)),
        first_(std::move(first)),
        second_(std::move(second)),
        dx_(dx),
        dy_(dy) {}
  std::string type_name() const override { return "CombineDisplays"; }
  std::map<std::string, std::string> Params() const override;
  std::unique_ptr<Box> Clone() const override {
    return std::make_unique<CombineDisplaysBox>(name_, first_, second_, dx_, dy_);
  }

 protected:
  Result<display::DisplayRelation> Apply(
      const display::DisplayRelation& input) const override {
    return input.CombineDisplays(name_, first_, second_, dx_, dy_);
  }

 private:
  std::string name_;
  std::string first_;
  std::string second_;
  double dx_;
  double dy_;
};

/// Binds a location dimension to an attribute (the Figure 4 step that maps
/// (longitude, latitude) to the (x, y) canvas dimensions).
class SetLocationBox : public UnaryRelationBox {
 public:
  SetLocationBox(size_t dim, std::string attr) : dim_(dim), attr_(std::move(attr)) {}
  std::string type_name() const override { return "SetLocation"; }
  std::map<std::string, std::string> Params() const override {
    return {{"dim", std::to_string(dim_)}, {"attr", attr_}};
  }
  std::unique_ptr<Box> Clone() const override {
    return std::make_unique<SetLocationBox>(dim_, attr_);
  }

 protected:
  Result<display::DisplayRelation> Apply(
      const display::DisplayRelation& input) const override {
    return input.SetLocationAttribute(dim_, attr_);
  }

 private:
  size_t dim_;
  std::string attr_;
};

/// Adds a slider dimension (§5.3: "adding a location attribute adds a new
/// dimension to the visualization"), e.g. Figure 4's Altitude slider.
class AddLocationDimensionBox : public UnaryRelationBox {
 public:
  explicit AddLocationDimensionBox(std::string attr) : attr_(std::move(attr)) {}
  std::string type_name() const override { return "AddLocationDimension"; }
  std::map<std::string, std::string> Params() const override {
    return {{"attr", attr_}};
  }
  std::unique_ptr<Box> Clone() const override {
    return std::make_unique<AddLocationDimensionBox>(attr_);
  }

 protected:
  Result<display::DisplayRelation> Apply(
      const display::DisplayRelation& input) const override {
    return input.AddLocationDimension(attr_);
  }

 private:
  std::string attr_;
};

/// Drops a slider dimension.
class RemoveLocationDimensionBox : public UnaryRelationBox {
 public:
  explicit RemoveLocationDimensionBox(size_t dim) : dim_(dim) {}
  std::string type_name() const override { return "RemoveLocationDimension"; }
  std::map<std::string, std::string> Params() const override {
    return {{"dim", std::to_string(dim_)}};
  }
  std::unique_ptr<Box> Clone() const override {
    return std::make_unique<RemoveLocationDimensionBox>(dim_);
  }

 protected:
  Result<display::DisplayRelation> Apply(
      const display::DisplayRelation& input) const override {
    return input.RemoveLocationDimension(dim_);
  }

 private:
  size_t dim_;
};

/// Selects the active display attribute (switching between the "multiple,
/// alternative representations" of §2).
class SetDisplayBox : public UnaryRelationBox {
 public:
  explicit SetDisplayBox(std::string attr) : attr_(std::move(attr)) {}
  std::string type_name() const override { return "SetDisplay"; }
  std::map<std::string, std::string> Params() const override {
    return {{"attr", attr_}};
  }
  std::unique_ptr<Box> Clone() const override {
    return std::make_unique<SetDisplayBox>(attr_);
  }

 protected:
  Result<display::DisplayRelation> Apply(
      const display::DisplayRelation& input) const override {
    return input.SetDisplayAttribute(attr_);
  }

 private:
  std::string attr_;
};

/// Renames the relation (shown in elevation maps and group UIs).
class SetNameBox : public UnaryRelationBox {
 public:
  explicit SetNameBox(std::string name) : name_(std::move(name)) {}
  std::string type_name() const override { return "SetName"; }
  std::map<std::string, std::string> Params() const override {
    return {{"name", name_}};
  }
  std::unique_ptr<Box> Clone() const override {
    return std::make_unique<SetNameBox>(name_);
  }

 protected:
  Result<display::DisplayRelation> Apply(
      const display::DisplayRelation& input) const override {
    display::DisplayRelation out = input;
    out.set_name(name_);
    return out;
  }

 private:
  std::string name_;
};

/// Set Range (§6.1): the elevations at which the relation's display is
/// defined — "outside of this range, the relation contributes nothing to
/// the canvas". Negative elevations program the canvas underside (§6.3).
class SetRangeBox : public UnaryRelationBox {
 public:
  SetRangeBox(double min, double max) : min_(min), max_(max) {}
  std::string type_name() const override { return "SetRange"; }
  std::map<std::string, std::string> Params() const override;
  std::unique_ptr<Box> Clone() const override {
    return std::make_unique<SetRangeBox>(min_, max_);
  }

 protected:
  Result<display::DisplayRelation> Apply(
      const display::DisplayRelation& input) const override {
    return input.SetElevationRange(min_, max_);
  }

 private:
  double min_;
  double max_;
};

}  // namespace tioga2::boxes

#endif  // TIOGA2_BOXES_ATTRIBUTE_BOXES_H_
