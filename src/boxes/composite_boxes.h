#ifndef TIOGA2_BOXES_COMPOSITE_BOXES_H_
#define TIOGA2_BOXES_COMPOSITE_BOXES_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dataflow/box.h"
#include "display/displayable.h"

namespace tioga2::boxes {

using dataflow::Box;
using dataflow::BoxPtr;
using dataflow::BoxValue;
using dataflow::ExecContext;
using dataflow::PortType;

/// Overlay (§6.1): superimposes the second composite on the first ("the
/// visualizations are simply superimposed"), at an optional n-dimensional
/// offset. A dimension mismatch raises the §6.1 warning through the
/// ExecContext but proceeds, treating lower-dimensional relations as
/// invariant in the extra dimensions.
class OverlayBox : public Box {
 public:
  explicit OverlayBox(std::vector<double> offset) : offset_(std::move(offset)) {}

  std::string type_name() const override { return "Overlay"; }
  std::vector<PortType> InputTypes() const override {
    return {PortType::CompositeT(), PortType::CompositeT()};
  }
  std::vector<PortType> OutputTypes() const override {
    return {PortType::CompositeT()};
  }
  Result<std::vector<BoxValue>> Fire(const std::vector<BoxValue>& inputs,
                                     const ExecContext& ctx) const override;
  std::map<std::string, std::string> Params() const override;
  /// Metadata-only with respect to base rows: re-fires (sharing bases) and
  /// remaps the second input's member indices past the first's members.
  Result<std::optional<dataflow::DeltaFire>> ApplyDelta(
      const std::vector<dataflow::DeltaInput>& inputs,
      const std::vector<BoxValue>& old_outputs,
      const ExecContext& ctx) const override;
  std::unique_ptr<Box> Clone() const override {
    return std::make_unique<OverlayBox>(offset_);
  }

 private:
  std::vector<double> offset_;
};

/// Shuffle (§6.1): "moves a relation to the top of the drawing order".
class ShuffleBox : public Box {
 public:
  explicit ShuffleBox(std::string member) : member_(std::move(member)) {}

  std::string type_name() const override { return "Shuffle"; }
  std::vector<PortType> InputTypes() const override {
    return {PortType::CompositeT()};
  }
  std::vector<PortType> OutputTypes() const override {
    return {PortType::CompositeT()};
  }
  Result<std::vector<BoxValue>> Fire(const std::vector<BoxValue>& inputs,
                                     const ExecContext& ctx) const override;
  std::map<std::string, std::string> Params() const override {
    return {{"member", member_}};
  }
  /// Re-fires (sharing bases) and permutes member indices the way the
  /// shuffle moved the members.
  Result<std::optional<dataflow::DeltaFire>> ApplyDelta(
      const std::vector<dataflow::DeltaInput>& inputs,
      const std::vector<BoxValue>& old_outputs,
      const ExecContext& ctx) const override;
  std::unique_ptr<Box> Clone() const override {
    return std::make_unique<ShuffleBox>(member_);
  }

 private:
  std::string member_;
};

/// Stitch (§7.3): combines n composites into a group with the chosen layout.
class StitchBox : public Box {
 public:
  StitchBox(size_t arity, display::GroupLayout layout, size_t tabular_columns);

  std::string type_name() const override { return "Stitch"; }
  std::vector<PortType> InputTypes() const override {
    return std::vector<PortType>(arity_, PortType::CompositeT());
  }
  std::vector<PortType> OutputTypes() const override { return {PortType::GroupT()}; }
  Result<std::vector<BoxValue>> Fire(const std::vector<BoxValue>& inputs,
                                     const ExecContext& ctx) const override;
  std::map<std::string, std::string> Params() const override;
  /// Re-fires (sharing bases); input p's deltas become group-member-p
  /// deltas in the stitched output.
  Result<std::optional<dataflow::DeltaFire>> ApplyDelta(
      const std::vector<dataflow::DeltaInput>& inputs,
      const std::vector<BoxValue>& old_outputs,
      const ExecContext& ctx) const override;
  std::unique_ptr<Box> Clone() const override {
    return std::make_unique<StitchBox>(arity_, layout_, tabular_columns_);
  }

 private:
  size_t arity_;
  display::GroupLayout layout_;
  size_t tabular_columns_;
};

/// Replicate (§7.4): partitions a relation by predicate lists and stitches
/// the partitions into a group. `row_predicates` × `column_predicates`
/// produce a tabular layout (e.g. salary bands × departments); an empty
/// column list produces a single row.
class ReplicateBox : public Box {
 public:
  ReplicateBox(std::vector<std::string> row_predicates,
               std::vector<std::string> column_predicates);

  std::string type_name() const override { return "Replicate"; }
  std::vector<PortType> InputTypes() const override { return {PortType::Relation()}; }
  std::vector<PortType> OutputTypes() const override { return {PortType::GroupT()}; }
  Result<std::vector<BoxValue>> Fire(const std::vector<BoxValue>& inputs,
                                     const ExecContext& ctx) const override;
  std::map<std::string, std::string> Params() const override;
  std::unique_ptr<Box> Clone() const override {
    return std::make_unique<ReplicateBox>(row_predicates_, column_predicates_);
  }

 private:
  std::vector<std::string> row_predicates_;
  std::vector<std::string> column_predicates_;
};

/// Lifts an R → R box to composites or groups, implementing the §2
/// operator overloading: "given a group G input, Tioga-2 asks the user for
/// the composite within the group, and the relation within that composite,
/// to which the operation applies ... Tioga-2 reassembles the composite and
/// the group in the obvious way". The user's selections become the
/// `group_member` index and `member` relation name.
class LiftBox : public Box {
 public:
  /// `inner` must be a single-R-input, single-R-output box.
  LiftBox(BoxPtr inner, PortType lifted_type, size_t group_member, std::string member);

  std::string type_name() const override { return "Lift"; }
  std::vector<PortType> InputTypes() const override { return {lifted_type_}; }
  std::vector<PortType> OutputTypes() const override { return {lifted_type_}; }
  Result<std::vector<BoxValue>> Fire(const std::vector<BoxValue>& inputs,
                                     const ExecContext& ctx) const override;
  std::map<std::string, std::string> Params() const override;
  std::unique_ptr<Box> Clone() const override;

  const Box& inner() const { return *inner_; }

 private:
  BoxPtr inner_;
  PortType lifted_type_;
  size_t group_member_;
  std::string member_;
};

}  // namespace tioga2::boxes

#endif  // TIOGA2_BOXES_COMPOSITE_BOXES_H_
