#include "boxes/program_io.h"

#include <cstdlib>

#include "boxes/box_registry.h"
#include "common/str_util.h"
#include "dataflow/encapsulate.h"

namespace tioga2::boxes {

using dataflow::Box;
using dataflow::BoxPtr;
using dataflow::EncapsulatedBox;
using dataflow::Graph;

namespace {

constexpr const char* kHeader = "tioga2-program v1";

void SerializeGraphBody(const Graph& graph, int indent, std::string* out);

std::string Indent(int levels) { return std::string(static_cast<size_t>(levels) * 2, ' '); }

void SerializeBoxLine(const std::string& id, const Box& box, int indent,
                      std::string* out) {
  if (const auto* encap = dynamic_cast<const EncapsulatedBox*>(&box)) {
    std::vector<std::string> bindings;
    for (const auto& [inner_id, port] : encap->output_bindings()) {
      bindings.push_back(inner_id + ":" + std::to_string(port));
    }
    *out += Indent(indent) + "encap " + id + " name=" + QuoteString(encap->name()) +
            " outputs=" + QuoteString(StrJoin(bindings, ",")) + " {\n";
    SerializeGraphBody(encap->inner(), indent + 1, out);
    *out += Indent(indent) + "}\n";
    return;
  }
  *out += Indent(indent) + "box " + id + " " + box.type_name();
  for (const auto& [key, value] : box.Params()) {
    *out += " " + key + "=" + QuoteString(value);
  }
  *out += "\n";
}

void SerializeGraphBody(const Graph& graph, int indent, std::string* out) {
  for (const std::string& id : graph.BoxIds()) {
    SerializeBoxLine(id, **graph.GetBox(id), indent, out);
    std::optional<std::pair<double, double>> position = graph.BoxPosition(id);
    if (position.has_value()) {
      *out += Indent(indent) + "pos " + id + " " + FormatDouble(position->first) +
              " " + FormatDouble(position->second) + "\n";
    }
  }
  for (const dataflow::Edge& edge : graph.edges()) {
    *out += Indent(indent) + "edge " + edge.from_box + ":" +
            std::to_string(edge.from_port) + " " + edge.to_box + ":" +
            std::to_string(edge.to_port) + "\n";
  }
}

/// Splits a serialized line into words, where a word is either bare text or
/// key="quoted value" (quotes may contain escaped characters).
Result<std::vector<std::string>> SplitLine(const std::string& line) {
  std::vector<std::string> words;
  size_t i = 0;
  while (i < line.size()) {
    if (line[i] == ' ') {
      ++i;
      continue;
    }
    size_t start = i;
    bool in_quotes = false;
    while (i < line.size() && (in_quotes || line[i] != ' ')) {
      if (line[i] == '"') in_quotes = !in_quotes;
      if (in_quotes && line[i] == '\\') ++i;  // skip escaped char
      ++i;
    }
    if (in_quotes) return Status::ParseError("unterminated quote in line: " + line);
    words.push_back(line.substr(start, i - start));
  }
  return words;
}

Result<std::map<std::string, std::string>> ParseParams(
    const std::vector<std::string>& words, size_t first) {
  std::map<std::string, std::string> params;
  for (size_t i = first; i < words.size(); ++i) {
    size_t eq = words[i].find('=');
    if (eq == std::string::npos) {
      return Status::ParseError("expected key=\"value\", got '" + words[i] + "'");
    }
    std::string value;
    if (!UnquoteString(words[i].substr(eq + 1), &value)) {
      return Status::ParseError("malformed quoted value in '" + words[i] + "'");
    }
    params[words[i].substr(0, eq)] = value;
  }
  return params;
}

Result<std::pair<std::string, size_t>> ParseEndpoint(const std::string& text) {
  size_t colon = text.rfind(':');
  if (colon == std::string::npos) {
    return Status::ParseError("expected box:port, got '" + text + "'");
  }
  char* end = nullptr;
  unsigned long long port = std::strtoull(text.c_str() + colon + 1, &end, 10);
  if (*end != '\0') return Status::ParseError("bad port number in '" + text + "'");
  return std::make_pair(text.substr(0, colon), static_cast<size_t>(port));
}

/// Parses lines[*index..] as a graph body, stopping at a lone "}" (consumed)
/// or at end of input.
Result<Graph> ParseGraphBody(const std::vector<std::string>& lines, size_t* index,
                             bool expect_close) {
  Graph graph;
  struct PendingEdge {
    std::string from;
    size_t from_port;
    std::string to;
    size_t to_port;
  };
  std::vector<PendingEdge> pending;
  while (*index < lines.size()) {
    std::string line(StripWhitespace(lines[*index]));
    ++*index;
    if (line.empty() || line[0] == '#') continue;
    if (line == "}") {
      if (!expect_close) return Status::ParseError("unexpected '}'");
      expect_close = false;
      break;
    }
    TIOGA2_ASSIGN_OR_RETURN(std::vector<std::string> words, SplitLine(line));
    if (words.empty()) continue;
    if (words[0] == "box") {
      if (words.size() < 3) return Status::ParseError("malformed box line: " + line);
      TIOGA2_ASSIGN_OR_RETURN(auto params, ParseParams(words, 3));
      TIOGA2_ASSIGN_OR_RETURN(BoxPtr box, MakeBox(words[2], params));
      TIOGA2_RETURN_IF_ERROR(graph.AddBox(std::move(box), words[1]).status());
    } else if (words[0] == "encap") {
      if (words.size() < 3 || words.back() != "{") {
        return Status::ParseError("malformed encap line: " + line);
      }
      TIOGA2_ASSIGN_OR_RETURN(auto params,
                              ParseParams({words.begin(), words.end() - 1}, 2));
      TIOGA2_ASSIGN_OR_RETURN(Graph inner, ParseGraphBody(lines, index, true));
      std::vector<std::pair<std::string, size_t>> outputs;
      auto outputs_it = params.find("outputs");
      if (outputs_it != params.end()) {
        for (const std::string& binding : StrSplit(outputs_it->second, ',')) {
          if (binding.empty()) continue;
          TIOGA2_ASSIGN_OR_RETURN(auto endpoint, ParseEndpoint(binding));
          outputs.push_back(endpoint);
        }
      }
      std::string name = params.count("name") > 0 ? params.at("name") : words[1];
      auto encap = std::make_unique<EncapsulatedBox>(name, std::move(inner),
                                                     std::move(outputs));
      TIOGA2_RETURN_IF_ERROR(graph.AddBox(std::move(encap), words[1]).status());
    } else if (words[0] == "pos") {
      if (words.size() != 4) return Status::ParseError("malformed pos line: " + line);
      char* end = nullptr;
      double x = std::strtod(words[2].c_str(), &end);
      if (*end != '\0') return Status::ParseError("bad x in pos line: " + line);
      double y = std::strtod(words[3].c_str(), &end);
      if (*end != '\0') return Status::ParseError("bad y in pos line: " + line);
      TIOGA2_RETURN_IF_ERROR(graph.SetBoxPosition(words[1], x, y));
    } else if (words[0] == "edge") {
      if (words.size() != 3) return Status::ParseError("malformed edge line: " + line);
      TIOGA2_ASSIGN_OR_RETURN(auto from, ParseEndpoint(words[1]));
      TIOGA2_ASSIGN_OR_RETURN(auto to, ParseEndpoint(words[2]));
      pending.push_back(PendingEdge{from.first, from.second, to.first, to.second});
    } else {
      return Status::ParseError("unknown program directive '" + words[0] + "'");
    }
  }
  if (expect_close) return Status::ParseError("missing '}' in program");
  for (const PendingEdge& edge : pending) {
    TIOGA2_RETURN_IF_ERROR(graph.Connect(edge.from, edge.from_port, edge.to,
                                         edge.to_port));
  }
  return graph;
}

}  // namespace

Result<std::string> SerializeProgram(const Graph& graph) {
  std::string out = std::string(kHeader) + "\n";
  SerializeGraphBody(graph, 0, &out);
  return out;
}

Result<Graph> DeserializeProgram(const std::string& text) {
  std::vector<std::string> lines = StrSplit(text, '\n');
  size_t index = 0;
  // Skip blank lines before the header.
  while (index < lines.size() && StripWhitespace(lines[index]).empty()) ++index;
  if (index >= lines.size() || StripWhitespace(lines[index]) != kHeader) {
    return Status::ParseError("missing program header '" + std::string(kHeader) + "'");
  }
  ++index;
  return ParseGraphBody(lines, &index, /*expect_close=*/false);
}

}  // namespace tioga2::boxes
