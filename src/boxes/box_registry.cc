#include "boxes/box_registry.h"

#include <cstdlib>

#include "boxes/attribute_boxes.h"
#include "boxes/composite_boxes.h"
#include "boxes/query_boxes.h"
#include "boxes/relational_boxes.h"
#include "common/str_util.h"
#include "dataflow/encapsulate.h"
#include "dataflow/t_box.h"

namespace tioga2::boxes {

using dataflow::BoxPtr;
using dataflow::PortType;

namespace {

using Params = std::map<std::string, std::string>;

Result<std::string> Require(const Params& params, const std::string& key) {
  auto it = params.find(key);
  if (it == params.end()) {
    return Status::InvalidArgument("missing box parameter '" + key + "'");
  }
  return it->second;
}

std::string Optional(const Params& params, const std::string& key,
                     const std::string& fallback) {
  auto it = params.find(key);
  return it == params.end() ? fallback : it->second;
}

Result<double> RequireDouble(const Params& params, const std::string& key) {
  TIOGA2_ASSIGN_OR_RETURN(std::string text, Require(params, key));
  char* end = nullptr;
  double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str()) {
    return Status::ParseError("box parameter '" + key + "' is not a number: " + text);
  }
  return v;
}

Result<uint64_t> RequireUint(const Params& params, const std::string& key) {
  TIOGA2_ASSIGN_OR_RETURN(std::string text, Require(params, key));
  char* end = nullptr;
  unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    return Status::ParseError("box parameter '" + key + "' is not an integer: " + text);
  }
  return static_cast<uint64_t>(v);
}

std::vector<std::string> SplitNonEmpty(const std::string& text, char delimiter) {
  std::vector<std::string> parts;
  for (std::string& part : StrSplit(text, delimiter)) {
    if (!part.empty()) parts.push_back(std::move(part));
  }
  return parts;
}

Result<display::GroupLayout> ParseLayout(const std::string& text) {
  if (text == "horizontal") return display::GroupLayout::kHorizontal;
  if (text == "vertical") return display::GroupLayout::kVertical;
  if (text == "tabular") return display::GroupLayout::kTabular;
  return Status::ParseError("unknown group layout '" + text + "'");
}

}  // namespace

Result<BoxPtr> MakeBox(const std::string& type_name, const Params& params) {
  if (type_name == "Table") {
    TIOGA2_ASSIGN_OR_RETURN(std::string table, Require(params, "table"));
    return BoxPtr(std::make_unique<TableBox>(table));
  }
  if (type_name == "Restrict") {
    TIOGA2_ASSIGN_OR_RETURN(std::string predicate, Require(params, "predicate"));
    return BoxPtr(std::make_unique<RestrictBox>(predicate));
  }
  if (type_name == "Project") {
    TIOGA2_ASSIGN_OR_RETURN(std::string columns, Require(params, "columns"));
    return BoxPtr(std::make_unique<ProjectBox>(SplitNonEmpty(columns, ',')));
  }
  if (type_name == "Sample") {
    TIOGA2_ASSIGN_OR_RETURN(double probability, RequireDouble(params, "probability"));
    TIOGA2_ASSIGN_OR_RETURN(uint64_t seed, RequireUint(params, "seed"));
    return BoxPtr(std::make_unique<SampleBox>(probability, seed));
  }
  if (type_name == "Join") {
    TIOGA2_ASSIGN_OR_RETURN(std::string predicate, Require(params, "predicate"));
    return BoxPtr(std::make_unique<JoinBox>(predicate));
  }
  if (type_name == "Switch") {
    TIOGA2_ASSIGN_OR_RETURN(std::string predicate, Require(params, "predicate"));
    return BoxPtr(std::make_unique<SwitchBox>(predicate));
  }
  if (type_name == "Const") {
    TIOGA2_ASSIGN_OR_RETURN(std::string type_text, Require(params, "type"));
    TIOGA2_ASSIGN_OR_RETURN(std::string value, Require(params, "value"));
    types::DataType type;
    if (!types::DataTypeFromString(type_text, &type)) {
      return Status::ParseError("unknown scalar type '" + type_text + "'");
    }
    return BoxPtr(std::make_unique<ConstBox>(type, value));
  }
  if (type_name == "Viewer") {
    TIOGA2_ASSIGN_OR_RETURN(std::string canvas, Require(params, "canvas"));
    return BoxPtr(std::make_unique<ViewerBox>(canvas));
  }
  if (type_name == "T") {
    TIOGA2_ASSIGN_OR_RETURN(std::string type_text, Require(params, "type"));
    PortType type = PortType::Relation();
    if (!PortType::FromString(type_text, &type)) {
      return Status::ParseError("unknown port type '" + type_text + "'");
    }
    return BoxPtr(std::make_unique<dataflow::TBox>(type));
  }
  if (type_name == "AddAttribute") {
    TIOGA2_ASSIGN_OR_RETURN(std::string name, Require(params, "name"));
    TIOGA2_ASSIGN_OR_RETURN(std::string definition, Require(params, "definition"));
    return BoxPtr(std::make_unique<AddAttributeBox>(name, definition));
  }
  if (type_name == "SetAttribute") {
    TIOGA2_ASSIGN_OR_RETURN(std::string name, Require(params, "name"));
    TIOGA2_ASSIGN_OR_RETURN(std::string definition, Require(params, "definition"));
    return BoxPtr(std::make_unique<SetAttributeBox>(name, definition));
  }
  if (type_name == "RemoveAttribute") {
    TIOGA2_ASSIGN_OR_RETURN(std::string name, Require(params, "name"));
    return BoxPtr(std::make_unique<RemoveAttributeBox>(name));
  }
  if (type_name == "SwapAttributes") {
    TIOGA2_ASSIGN_OR_RETURN(std::string a, Require(params, "a"));
    TIOGA2_ASSIGN_OR_RETURN(std::string b, Require(params, "b"));
    return BoxPtr(std::make_unique<SwapAttributesBox>(a, b));
  }
  if (type_name == "ScaleAttribute") {
    TIOGA2_ASSIGN_OR_RETURN(std::string name, Require(params, "name"));
    TIOGA2_ASSIGN_OR_RETURN(double factor, RequireDouble(params, "factor"));
    return BoxPtr(std::make_unique<ScaleAttributeBox>(name, factor));
  }
  if (type_name == "TranslateAttribute") {
    TIOGA2_ASSIGN_OR_RETURN(std::string name, Require(params, "name"));
    TIOGA2_ASSIGN_OR_RETURN(double delta, RequireDouble(params, "delta"));
    return BoxPtr(std::make_unique<TranslateAttributeBox>(name, delta));
  }
  if (type_name == "CombineDisplays") {
    TIOGA2_ASSIGN_OR_RETURN(std::string name, Require(params, "name"));
    TIOGA2_ASSIGN_OR_RETURN(std::string first, Require(params, "first"));
    TIOGA2_ASSIGN_OR_RETURN(std::string second, Require(params, "second"));
    TIOGA2_ASSIGN_OR_RETURN(double dx, RequireDouble(params, "dx"));
    TIOGA2_ASSIGN_OR_RETURN(double dy, RequireDouble(params, "dy"));
    return BoxPtr(std::make_unique<CombineDisplaysBox>(name, first, second, dx, dy));
  }
  if (type_name == "SetLocation") {
    TIOGA2_ASSIGN_OR_RETURN(uint64_t dim, RequireUint(params, "dim"));
    TIOGA2_ASSIGN_OR_RETURN(std::string attr, Require(params, "attr"));
    return BoxPtr(std::make_unique<SetLocationBox>(dim, attr));
  }
  if (type_name == "AddLocationDimension") {
    TIOGA2_ASSIGN_OR_RETURN(std::string attr, Require(params, "attr"));
    return BoxPtr(std::make_unique<AddLocationDimensionBox>(attr));
  }
  if (type_name == "RemoveLocationDimension") {
    TIOGA2_ASSIGN_OR_RETURN(uint64_t dim, RequireUint(params, "dim"));
    return BoxPtr(std::make_unique<RemoveLocationDimensionBox>(dim));
  }
  if (type_name == "SetDisplay") {
    TIOGA2_ASSIGN_OR_RETURN(std::string attr, Require(params, "attr"));
    return BoxPtr(std::make_unique<SetDisplayBox>(attr));
  }
  if (type_name == "SetName") {
    TIOGA2_ASSIGN_OR_RETURN(std::string name, Require(params, "name"));
    return BoxPtr(std::make_unique<SetNameBox>(name));
  }
  if (type_name == "SetRange") {
    TIOGA2_ASSIGN_OR_RETURN(double min, RequireDouble(params, "min"));
    TIOGA2_ASSIGN_OR_RETURN(double max, RequireDouble(params, "max"));
    return BoxPtr(std::make_unique<SetRangeBox>(min, max));
  }
  if (type_name == "Overlay") {
    std::vector<double> offset;
    for (const std::string& part : SplitNonEmpty(Optional(params, "offset", ""), ',')) {
      offset.push_back(std::strtod(part.c_str(), nullptr));
    }
    return BoxPtr(std::make_unique<OverlayBox>(std::move(offset)));
  }
  if (type_name == "Shuffle") {
    TIOGA2_ASSIGN_OR_RETURN(std::string member, Require(params, "member"));
    return BoxPtr(std::make_unique<ShuffleBox>(member));
  }
  if (type_name == "Stitch") {
    TIOGA2_ASSIGN_OR_RETURN(uint64_t arity, RequireUint(params, "arity"));
    TIOGA2_ASSIGN_OR_RETURN(display::GroupLayout layout,
                            ParseLayout(Optional(params, "layout", "horizontal")));
    TIOGA2_ASSIGN_OR_RETURN(uint64_t columns, RequireUint(params, "columns"));
    return BoxPtr(std::make_unique<StitchBox>(arity, layout, columns));
  }
  if (type_name == "Replicate") {
    TIOGA2_ASSIGN_OR_RETURN(std::string rows, Require(params, "rows"));
    return BoxPtr(std::make_unique<ReplicateBox>(
        SplitNonEmpty(rows, ';'), SplitNonEmpty(Optional(params, "columns", ""), ';')));
  }
  if (type_name == "GroupBy") {
    TIOGA2_ASSIGN_OR_RETURN(std::string keys, Require(params, "keys"));
    TIOGA2_ASSIGN_OR_RETURN(std::string aggs_text, Require(params, "aggs"));
    TIOGA2_ASSIGN_OR_RETURN(std::vector<db::AggSpec> aggs, ParseAggSpecs(aggs_text));
    return BoxPtr(std::make_unique<GroupByBox>(SplitNonEmpty(keys, ','),
                                               std::move(aggs)));
  }
  if (type_name == "Distinct") {
    return BoxPtr(std::make_unique<DistinctBox>());
  }
  if (type_name == "UnionAll") {
    return BoxPtr(std::make_unique<UnionAllBox>());
  }
  if (type_name == "Sort") {
    TIOGA2_ASSIGN_OR_RETURN(std::string column, Require(params, "column"));
    std::string ascending = Optional(params, "ascending", "true");
    return BoxPtr(std::make_unique<SortBox>(column, ascending != "false"));
  }
  if (type_name == "Limit") {
    TIOGA2_ASSIGN_OR_RETURN(uint64_t n, RequireUint(params, "n"));
    return BoxPtr(std::make_unique<LimitBox>(n));
  }
  if (type_name == "InputStub") {
    TIOGA2_ASSIGN_OR_RETURN(uint64_t index, RequireUint(params, "index"));
    TIOGA2_ASSIGN_OR_RETURN(std::string type_text, Require(params, "type"));
    PortType type = PortType::Relation();
    if (!PortType::FromString(type_text, &type)) {
      return Status::ParseError("unknown port type '" + type_text + "'");
    }
    return BoxPtr(std::make_unique<dataflow::InputStub>(index, type));
  }
  if (type_name == "Hole") {
    TIOGA2_ASSIGN_OR_RETURN(std::string label, Require(params, "label"));
    auto parse_ports = [](const std::string& text) -> Result<std::vector<PortType>> {
      std::vector<PortType> ports;
      for (const std::string& part : SplitNonEmpty(text, ',')) {
        PortType type = PortType::Relation();
        if (!PortType::FromString(part, &type)) {
          return Status::ParseError("unknown port type '" + part + "'");
        }
        ports.push_back(type);
      }
      return ports;
    };
    TIOGA2_ASSIGN_OR_RETURN(std::vector<PortType> ins,
                            parse_ports(Optional(params, "inputs", "")));
    TIOGA2_ASSIGN_OR_RETURN(std::vector<PortType> outs,
                            parse_ports(Optional(params, "outputs", "")));
    return BoxPtr(std::make_unique<dataflow::HoleBox>(label, std::move(ins),
                                                      std::move(outs)));
  }
  if (type_name == "Lift") {
    TIOGA2_ASSIGN_OR_RETURN(std::string type_text, Require(params, "type"));
    PortType lifted = PortType::CompositeT();
    if (!PortType::FromString(type_text, &lifted)) {
      return Status::ParseError("unknown port type '" + type_text + "'");
    }
    TIOGA2_ASSIGN_OR_RETURN(uint64_t group_member, RequireUint(params, "group_member"));
    TIOGA2_ASSIGN_OR_RETURN(std::string member, Require(params, "member"));
    TIOGA2_ASSIGN_OR_RETURN(std::string inner_type, Require(params, "inner"));
    Params inner_params;
    for (const auto& [key, value] : params) {
      if (StartsWith(key, "inner.")) inner_params[key.substr(6)] = value;
    }
    TIOGA2_ASSIGN_OR_RETURN(BoxPtr inner, MakeBox(inner_type, inner_params));
    return BoxPtr(std::make_unique<LiftBox>(std::move(inner), lifted, group_member,
                                            member));
  }
  return Status::NotFound("unknown box type '" + type_name + "'");
}

std::vector<std::string> AllBoxTypes() {
  return {"AddAttribute",
          "AddLocationDimension",
          "CombineDisplays",
          "Const",
          "Distinct",
          "GroupBy",
          "Join",
          "Lift",
          "Limit",
          "Overlay",
          "Project",
          "RemoveAttribute",
          "RemoveLocationDimension",
          "Replicate",
          "Restrict",
          "Sample",
          "ScaleAttribute",
          "SetAttribute",
          "SetDisplay",
          "SetLocation",
          "SetName",
          "SetRange",
          "Shuffle",
          "Sort",
          "Stitch",
          "SwapAttributes",
          "Switch",
          "T",
          "Table",
          "TranslateAttribute",
          "UnionAll",
          "Viewer"};
}

Result<std::string> BoxDocumentation(const std::string& type_name) {
  static constexpr std::pair<const char*, const char*> kDocs[] = {
      {"AddAttribute", "Add a computed attribute defined by an expression (§5.3)."},
      {"AddLocationDimension",
       "Add a slider dimension bound to a numeric attribute (§5.3)."},
      {"CombineDisplays",
       "Combine two display attributes into a new one at an offset (§5.3)."},
      {"Const", "Produce a scalar constant (a textual runtime parameter, §2)."},
      {"Distinct", "Remove duplicate tuples, keeping first occurrences."},
      {"GroupBy", "Group on key columns and compute count/sum/avg/min/max."},
      {"Join", "Join two relations on a predicate; hash join for equality (§4.2)."},
      {"Lift", "Apply an R->R box to one relation inside a composite or group (§2)."},
      {"Limit", "Keep the first n tuples."},
      {"Overlay", "Superimpose one composite on another at an offset (§6.1)."},
      {"Project", "Keep only the named stored columns (§4.2)."},
      {"RemoveAttribute", "Remove an attribute; x, y and the display are protected."},
      {"RemoveLocationDimension", "Drop a slider dimension (x and y are mandatory)."},
      {"Replicate", "Partition by predicates and stitch the parts into a group (§7.4)."},
      {"Restrict", "Keep tuples satisfying a predicate (§4.2)."},
      {"Sample", "Keep each tuple with a fixed probability, for interactivity (§4.2)."},
      {"ScaleAttribute", "Multiply a numeric attribute by a constant (§5.3)."},
      {"SetAttribute", "Redefine an existing attribute by an expression (§5.3)."},
      {"SetDisplay", "Select which display attribute is rendered (§2)."},
      {"SetLocation", "Bind a location dimension (x, y, or slider) to an attribute."},
      {"SetName", "Rename the relation as shown in elevation maps and groups."},
      {"SetRange", "Set the elevations at which the display is defined (§6.1)."},
      {"Shuffle", "Move a composite member to the top of the drawing order (§6.1)."},
      {"Sort", "Order tuples by a column (stable; nulls first)."},
      {"Stitch", "Combine composites into a group with a layout (§7.3)."},
      {"SwapAttributes", "Interchange two same-typed attributes (§5.3)."},
      {"Switch", "Route tuples to output 0 or 1 by a predicate (§1.2)."},
      {"T", "Pass the input unchanged to both outputs, e.g. for a viewer (§4.1)."},
      {"Table", "Produce the tuples of a named catalog relation (§4.2)."},
      {"TranslateAttribute", "Add a constant to a numeric attribute (§5.3)."},
      {"UnionAll", "Append two relations with identical schemas."},
      {"Viewer", "Translate a displayable into screen output on a named canvas (§2)."},
  };
  for (const auto& [name, doc] : kDocs) {
    if (type_name == name) return std::string(doc);
  }
  return Status::NotFound("no documentation for box type '" + type_name + "'");
}

std::vector<std::string> ApplyBoxCandidates(const std::vector<PortType>& edge_types) {
  // Canonical input signatures per box type. "D" = any displayable
  // (accepted via the R ≤ C ≤ G equivalences when the declared input is C
  // or G); Stitch is variadic.
  std::vector<std::string> candidates;
  auto all_displayable = [&edge_types] {
    for (const PortType& type : edge_types) {
      if (!type.is_displayable()) return false;
    }
    return true;
  };
  auto all_relations = [&edge_types] {
    for (const PortType& type : edge_types) {
      if (type.kind() != PortType::Kind::kRelation) return false;
    }
    return true;
  };
  if (edge_types.size() == 1) {
    if (edge_types[0].kind() == PortType::Kind::kRelation) {
      for (const char* name :
           {"Restrict", "Project", "Sample", "Switch", "AddAttribute", "SetAttribute",
            "RemoveAttribute", "SwapAttributes", "ScaleAttribute", "TranslateAttribute",
            "CombineDisplays", "SetLocation", "AddLocationDimension",
            "RemoveLocationDimension", "SetDisplay", "SetName", "SetRange",
            "Replicate", "GroupBy", "Distinct", "Sort", "Limit"}) {
        candidates.push_back(name);
      }
    }
    if (edge_types[0].is_displayable()) {
      // C-typed boxes accept R or C inputs; G-typed accept anything.
      if (edge_types[0].kind() != PortType::Kind::kGroup) {
        candidates.push_back("Shuffle");
        candidates.push_back("Stitch");
      } else {
        candidates.push_back("Stitch");
      }
      candidates.push_back("Viewer");
      candidates.push_back("Lift");
    }
    candidates.push_back("T");
  } else if (edge_types.size() == 2) {
    if (all_relations()) {
      candidates.push_back("Join");
      candidates.push_back("UnionAll");
    }
    if (all_displayable()) {
      bool overlay_ok = true;
      for (const PortType& type : edge_types) {
        if (type.kind() == PortType::Kind::kGroup) overlay_ok = false;
      }
      if (overlay_ok) candidates.push_back("Overlay");
      candidates.push_back("Stitch");
    }
  } else if (edge_types.size() > 2 && all_displayable()) {
    bool stitch_ok = true;
    for (const PortType& type : edge_types) {
      if (type.kind() == PortType::Kind::kGroup) stitch_ok = false;
    }
    if (stitch_ok) candidates.push_back("Stitch");
  }
  return candidates;
}

}  // namespace tioga2::boxes
