#include "boxes/attribute_boxes.h"

#include "common/str_util.h"
#include "display/displayable.h"

namespace tioga2::boxes {

Result<std::vector<BoxValue>> UnaryRelationBox::Fire(const std::vector<BoxValue>& inputs,
                                                     const ExecContext& ctx) const {
  (void)ctx;
  TIOGA2_ASSIGN_OR_RETURN(display::Displayable displayable,
                          dataflow::AsDisplayable(inputs[0]));
  TIOGA2_ASSIGN_OR_RETURN(display::DisplayRelation input,
                          display::AsRelation(displayable));
  TIOGA2_ASSIGN_OR_RETURN(display::DisplayRelation output, Apply(input));
  return std::vector<BoxValue>{BoxValue(display::Displayable(std::move(output)))};
}

Result<std::optional<dataflow::DeltaFire>> UnaryRelationBox::ApplyDelta(
    const std::vector<dataflow::DeltaInput>& inputs,
    const std::vector<BoxValue>& old_outputs, const ExecContext& ctx) const {
  (void)old_outputs;
  std::vector<BoxValue> new_inputs{*inputs[0].new_value};
  TIOGA2_ASSIGN_OR_RETURN(std::vector<BoxValue> outputs, Fire(new_inputs, ctx));
  return std::optional<dataflow::DeltaFire>(
      dataflow::DeltaFire{std::move(outputs), {*inputs[0].delta}});
}

std::map<std::string, std::string> ScaleAttributeBox::Params() const {
  return {{"name", name_}, {"factor", FormatDouble(factor_)}};
}

std::map<std::string, std::string> TranslateAttributeBox::Params() const {
  return {{"name", name_}, {"delta", FormatDouble(delta_)}};
}

std::map<std::string, std::string> CombineDisplaysBox::Params() const {
  return {{"name", name_},
          {"first", first_},
          {"second", second_},
          {"dx", FormatDouble(dx_)},
          {"dy", FormatDouble(dy_)}};
}

std::map<std::string, std::string> SetRangeBox::Params() const {
  return {{"min", FormatDouble(min_)}, {"max", FormatDouble(max_)}};
}

}  // namespace tioga2::boxes
