#include "boxes/query_boxes.h"

#include "common/str_util.h"
#include "db/aggregates.h"
#include "db/operators.h"
#include "display/displayable.h"

namespace tioga2::boxes {

using display::Displayable;
using display::DisplayRelation;

namespace {

Result<DisplayRelation> InputRelation(const BoxValue& value) {
  TIOGA2_ASSIGN_OR_RETURN(Displayable displayable, dataflow::AsDisplayable(value));
  return display::AsRelation(displayable);
}

BoxValue WrapRelation(DisplayRelation relation) {
  return BoxValue(Displayable(std::move(relation)));
}

}  // namespace

Result<std::vector<BoxValue>> GroupByBox::Fire(const std::vector<BoxValue>& inputs,
                                               const ExecContext& ctx) const {
  (void)ctx;
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation input, InputRelation(inputs[0]));
  TIOGA2_ASSIGN_OR_RETURN(db::RelationPtr grouped,
                          db::GroupBy(input.base(), keys_, aggs_));
  TIOGA2_ASSIGN_OR_RETURN(
      DisplayRelation output,
      DisplayRelation::WithDefaults(input.name() + "_by", std::move(grouped)));
  return std::vector<BoxValue>{WrapRelation(std::move(output))};
}

std::map<std::string, std::string> GroupByBox::Params() const {
  return {{"keys", StrJoin(keys_, ",")}, {"aggs", AggSpecsToString(aggs_)}};
}

Result<std::vector<BoxValue>> DistinctBox::Fire(const std::vector<BoxValue>& inputs,
                                                const ExecContext& ctx) const {
  (void)ctx;
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation input, InputRelation(inputs[0]));
  TIOGA2_ASSIGN_OR_RETURN(db::RelationPtr distinct, db::Distinct(input.base()));
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation output, input.WithBase(std::move(distinct)));
  return std::vector<BoxValue>{WrapRelation(std::move(output))};
}

Result<std::vector<BoxValue>> UnionAllBox::Fire(const std::vector<BoxValue>& inputs,
                                                const ExecContext& ctx) const {
  (void)ctx;
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation first, InputRelation(inputs[0]));
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation second, InputRelation(inputs[1]));
  TIOGA2_ASSIGN_OR_RETURN(db::RelationPtr merged,
                          db::UnionAll(first.base(), second.base()));
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation output, first.WithBase(std::move(merged)));
  return std::vector<BoxValue>{WrapRelation(std::move(output))};
}

Result<std::vector<BoxValue>> SortBox::Fire(const std::vector<BoxValue>& inputs,
                                            const ExecContext& ctx) const {
  (void)ctx;
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation input, InputRelation(inputs[0]));
  TIOGA2_ASSIGN_OR_RETURN(db::RelationPtr sorted,
                          db::Sort(input.base(), column_, ascending_));
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation output, input.WithBase(std::move(sorted)));
  return std::vector<BoxValue>{WrapRelation(std::move(output))};
}

Result<std::vector<BoxValue>> LimitBox::Fire(const std::vector<BoxValue>& inputs,
                                             const ExecContext& ctx) const {
  (void)ctx;
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation input, InputRelation(inputs[0]));
  TIOGA2_ASSIGN_OR_RETURN(db::RelationPtr limited, db::Limit(input.base(), limit_));
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation output, input.WithBase(std::move(limited)));
  return std::vector<BoxValue>{WrapRelation(std::move(output))};
}

Result<std::vector<db::AggSpec>> ParseAggSpecs(const std::string& text) {
  std::vector<db::AggSpec> specs;
  for (const std::string& piece : StrSplit(text, ';')) {
    if (piece.empty()) continue;
    std::vector<std::string> parts = StrSplit(piece, ':');
    if (parts.size() != 3) {
      return Status::ParseError("aggregate spec '" + piece +
                                "' is not fn:column:output");
    }
    db::AggSpec spec;
    if (!db::AggFnFromString(parts[0], &spec.fn)) {
      return Status::ParseError("unknown aggregate function '" + parts[0] + "'");
    }
    spec.column = parts[1];
    spec.output_name = parts[2];
    if (spec.fn != db::AggFn::kCount && spec.column.empty()) {
      return Status::ParseError("aggregate '" + parts[0] + "' needs a column");
    }
    specs.push_back(std::move(spec));
  }
  if (specs.empty()) {
    return Status::InvalidArgument("GroupBy needs at least one aggregate");
  }
  return specs;
}

std::string AggSpecsToString(const std::vector<db::AggSpec>& aggs) {
  std::vector<std::string> pieces;
  pieces.reserve(aggs.size());
  for (const db::AggSpec& spec : aggs) {
    pieces.push_back(AggFnToString(spec.fn) + ":" + spec.column + ":" +
                     spec.output_name);
  }
  return StrJoin(pieces, ";");
}

}  // namespace tioga2::boxes
