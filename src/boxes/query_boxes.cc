#include "boxes/query_boxes.h"

#include "common/str_util.h"
#include "db/aggregates.h"
#include "db/operators.h"
#include "display/displayable.h"

namespace tioga2::boxes {

using dataflow::RowOp;
using dataflow::SinglePrimaryOp;
using dataflow::ValueDelta;
using display::Displayable;
using display::DisplayRelation;

namespace {

Result<DisplayRelation> InputRelation(const BoxValue& value) {
  TIOGA2_ASSIGN_OR_RETURN(Displayable displayable, dataflow::AsDisplayable(value));
  return display::AsRelation(displayable);
}

BoxValue WrapRelation(DisplayRelation relation) {
  return BoxValue(Displayable(std::move(relation)));
}

}  // namespace

Result<std::vector<BoxValue>> GroupByBox::Fire(const std::vector<BoxValue>& inputs,
                                               const ExecContext& ctx) const {
  (void)ctx;
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation input, InputRelation(inputs[0]));
  TIOGA2_ASSIGN_OR_RETURN(db::RelationPtr grouped,
                          db::GroupBy(input.base(), keys_, aggs_));
  TIOGA2_ASSIGN_OR_RETURN(
      DisplayRelation output,
      DisplayRelation::WithDefaults(input.name() + "_by", std::move(grouped)));
  return std::vector<BoxValue>{WrapRelation(std::move(output))};
}

std::map<std::string, std::string> GroupByBox::Params() const {
  return {{"keys", StrJoin(keys_, ",")}, {"aggs", AggSpecsToString(aggs_)}};
}

Result<std::vector<BoxValue>> DistinctBox::Fire(const std::vector<BoxValue>& inputs,
                                                const ExecContext& ctx) const {
  (void)ctx;
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation input, InputRelation(inputs[0]));
  TIOGA2_ASSIGN_OR_RETURN(db::RelationPtr distinct, db::Distinct(input.base()));
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation output, input.WithBase(std::move(distinct)));
  return std::vector<BoxValue>{WrapRelation(std::move(output))};
}

Result<std::vector<BoxValue>> UnionAllBox::Fire(const std::vector<BoxValue>& inputs,
                                                const ExecContext& ctx) const {
  (void)ctx;
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation first, InputRelation(inputs[0]));
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation second, InputRelation(inputs[1]));
  TIOGA2_ASSIGN_OR_RETURN(db::RelationPtr merged,
                          db::UnionAll(first.base(), second.base()));
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation output, first.WithBase(std::move(merged)));
  return std::vector<BoxValue>{WrapRelation(std::move(output))};
}

Result<std::vector<BoxValue>> SortBox::Fire(const std::vector<BoxValue>& inputs,
                                            const ExecContext& ctx) const {
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation input, InputRelation(inputs[0]));
  TIOGA2_ASSIGN_OR_RETURN(db::RelationPtr sorted,
                          db::Sort(input.base(), column_, ascending_, ctx.policy));
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation output, input.WithBase(std::move(sorted)));
  return std::vector<BoxValue>{WrapRelation(std::move(output))};
}

Result<std::optional<DeltaFire>> SortBox::ApplyDelta(
    const std::vector<DeltaInput>& inputs, const std::vector<BoxValue>& old_outputs,
    const ExecContext& ctx) const {
  (void)ctx;
  const RowOp* op = SinglePrimaryOp(*inputs[0].delta);
  // Inserts and deletes shift the original row indices that stable_sort
  // breaks ties with, so only in-place updates are maintained.
  if (op == nullptr || op->kind != RowOp::Kind::kUpdate) {
    return std::optional<DeltaFire>();
  }
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation old_in, InputRelation(*inputs[0].old_value));
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation new_in, InputRelation(*inputs[0].new_value));
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation old_out, InputRelation(old_outputs[0]));
  TIOGA2_ASSIGN_OR_RETURN(size_t index, old_in.base()->schema()->ColumnIndex(column_));
  const db::RelationPtr& old_base = old_in.base();
  const size_t edited = op->row;
  if (edited >= old_base->num_rows() || index >= op->old_tuple.size()) {
    return std::optional<DeltaFire>();
  }

  // The edited tuple's output position is the number of rows that sort
  // strictly before it: smaller key, or equal key and smaller original row
  // index (stable_sort's tie-break). Every other row's key and index are
  // unchanged, so their relative order is too — the whole re-sort reduces
  // to relocating one row.
  auto sorts_before = [&](const types::Value& key, size_t row,
                          const types::Value& pivot) -> Result<bool> {
    TIOGA2_ASSIGN_OR_RETURN(int cmp, key.Compare(pivot));
    if (cmp == 0) return row < edited;
    return ascending_ ? cmp < 0 : cmp > 0;
  };
  size_t p_old = 0;
  size_t p_new = 0;
  for (size_t i = 0; i < old_base->num_rows(); ++i) {
    if (i == edited) continue;
    const types::Value& key = old_base->at(i, index);
    TIOGA2_ASSIGN_OR_RETURN(bool before_old,
                            sorts_before(key, i, op->old_tuple[index]));
    if (before_old) ++p_old;
    TIOGA2_ASSIGN_OR_RETURN(bool before_new,
                            sorts_before(key, i, op->new_tuple[index]));
    if (before_new) ++p_new;
  }

  std::vector<RowOp> ops;
  db::RelationPtr spliced;
  if (p_old == p_new) {
    RowOp o;
    o.kind = RowOp::Kind::kUpdate;
    o.row = p_old;
    o.old_tuple = op->old_tuple;
    o.new_tuple = op->new_tuple;
    ops.push_back(std::move(o));
    TIOGA2_ASSIGN_OR_RETURN(
        spliced, db::WithRowReplaced(old_out.base(), p_old, op->new_tuple));
  } else {
    RowOp del;
    del.kind = RowOp::Kind::kDelete;
    del.row = p_old;
    del.old_tuple = op->old_tuple;
    RowOp ins;
    ins.kind = RowOp::Kind::kInsert;
    ins.row = p_new;
    ins.new_tuple = op->new_tuple;
    TIOGA2_ASSIGN_OR_RETURN(db::RelationPtr erased,
                            db::WithRowErased(old_out.base(), p_old));
    TIOGA2_ASSIGN_OR_RETURN(
        spliced, db::WithRowInserted(std::move(erased), p_new, op->new_tuple));
    ops.push_back(std::move(del));
    ops.push_back(std::move(ins));
  }
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation out, new_in.WithBase(std::move(spliced)));
  ValueDelta delta;
  dataflow::MemberDelta member;
  member.ops = std::move(ops);
  delta.members.push_back(std::move(member));
  return std::optional<DeltaFire>(
      DeltaFire{{WrapRelation(std::move(out))}, {std::move(delta)}});
}

Result<std::vector<BoxValue>> LimitBox::Fire(const std::vector<BoxValue>& inputs,
                                             const ExecContext& ctx) const {
  (void)ctx;
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation input, InputRelation(inputs[0]));
  TIOGA2_ASSIGN_OR_RETURN(db::RelationPtr limited, db::Limit(input.base(), limit_));
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation output, input.WithBase(std::move(limited)));
  return std::vector<BoxValue>{WrapRelation(std::move(output))};
}

Result<std::optional<DeltaFire>> LimitBox::ApplyDelta(
    const std::vector<DeltaInput>& inputs, const std::vector<BoxValue>& old_outputs,
    const ExecContext& ctx) const {
  (void)ctx;
  const RowOp* op = SinglePrimaryOp(*inputs[0].delta);
  if (op == nullptr || op->kind != RowOp::Kind::kUpdate) {
    return std::optional<DeltaFire>();  // inserts/deletes shift the boundary
  }
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation new_in, InputRelation(*inputs[0].new_value));
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation old_out, InputRelation(old_outputs[0]));
  if (op->row >= limit_) {
    // The edit happened past the cut: the output bytes are unchanged, only
    // the metadata carrier (the new input) moves forward.
    TIOGA2_ASSIGN_OR_RETURN(DisplayRelation out, new_in.WithBase(old_out.base()));
    return std::optional<DeltaFire>(
        DeltaFire{{WrapRelation(std::move(out))}, {ValueDelta{}}});
  }
  TIOGA2_ASSIGN_OR_RETURN(
      db::RelationPtr spliced,
      db::WithRowReplaced(old_out.base(), op->row, op->new_tuple));
  TIOGA2_ASSIGN_OR_RETURN(DisplayRelation out, new_in.WithBase(std::move(spliced)));
  RowOp out_op = *op;
  ValueDelta delta;
  dataflow::MemberDelta member;
  member.ops.push_back(std::move(out_op));
  delta.members.push_back(std::move(member));
  return std::optional<DeltaFire>(
      DeltaFire{{WrapRelation(std::move(out))}, {std::move(delta)}});
}

Result<std::vector<db::AggSpec>> ParseAggSpecs(const std::string& text) {
  std::vector<db::AggSpec> specs;
  for (const std::string& piece : StrSplit(text, ';')) {
    if (piece.empty()) continue;
    std::vector<std::string> parts = StrSplit(piece, ':');
    if (parts.size() != 3) {
      return Status::ParseError("aggregate spec '" + piece +
                                "' is not fn:column:output");
    }
    db::AggSpec spec;
    if (!db::AggFnFromString(parts[0], &spec.fn)) {
      return Status::ParseError("unknown aggregate function '" + parts[0] + "'");
    }
    spec.column = parts[1];
    spec.output_name = parts[2];
    if (spec.fn != db::AggFn::kCount && spec.column.empty()) {
      return Status::ParseError("aggregate '" + parts[0] + "' needs a column");
    }
    specs.push_back(std::move(spec));
  }
  if (specs.empty()) {
    return Status::InvalidArgument("GroupBy needs at least one aggregate");
  }
  return specs;
}

std::string AggSpecsToString(const std::vector<db::AggSpec>& aggs) {
  std::vector<std::string> pieces;
  pieces.reserve(aggs.size());
  for (const db::AggSpec& spec : aggs) {
    pieces.push_back(AggFnToString(spec.fn) + ":" + spec.column + ":" +
                     spec.output_name);
  }
  return StrJoin(pieces, ";");
}

}  // namespace tioga2::boxes
