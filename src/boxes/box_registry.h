#ifndef TIOGA2_BOXES_BOX_REGISTRY_H_
#define TIOGA2_BOXES_BOX_REGISTRY_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "dataflow/box.h"

namespace tioga2::boxes {

/// Constructs a box from its serialized (type name, params) form. Knows
/// every primitive box type; EncapsulatedBox is reconstructed structurally
/// by the program serializer instead.
Result<dataflow::BoxPtr> MakeBox(const std::string& type_name,
                                 const std::map<std::string, std::string>& params);

/// Every constructible box type name, sorted (the "menu of all boxes
/// available" of §3).
std::vector<std::string> AllBoxTypes();

/// Apply Box (§4.1): "a menu of all boxes whose inputs match the types of
/// the selected edges". Returns the type names of boxes able to take edges
/// of `edge_types` as inputs, in order.
std::vector<std::string> ApplyBoxCandidates(
    const std::vector<dataflow::PortType>& edge_types);

/// One-line help for a box type — the §3 menu bar's help button content.
/// Returns an explanatory string for every name in AllBoxTypes() and a
/// NotFound error otherwise.
Result<std::string> BoxDocumentation(const std::string& type_name);

}  // namespace tioga2::boxes

#endif  // TIOGA2_BOXES_BOX_REGISTRY_H_
