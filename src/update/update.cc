#include "update/update.h"

namespace tioga2::update {

using types::DataType;
using types::Value;

UpdateManager::UpdateManager(db::Catalog* catalog) : catalog_(catalog) {
  // Default update functions: parse the dialog input as the field's type.
  for (DataType type :
       {DataType::kBool, DataType::kInt, DataType::kFloat, DataType::kString,
        DataType::kDate}) {
    type_functions_[type] = [type](const Value& old_value,
                                   const std::string& input) -> Result<Value> {
      (void)old_value;
      return Value::Parse(type, input);
    };
  }
  // Display values are computed, never stored, hence never updatable.
  type_functions_[DataType::kDisplay] = [](const Value&,
                                           const std::string&) -> Result<Value> {
    return Status::FailedPrecondition("display attributes are computed and cannot be "
                                      "updated (§5.1)");
  };
}

void UpdateManager::SetTypeUpdateFunction(DataType type, FieldUpdateFn fn) {
  type_functions_[type] = std::move(fn);
}

void UpdateManager::SetColumnUpdateFunction(const std::string& table,
                                            const std::string& column,
                                            FieldUpdateFn fn) {
  column_functions_[table + "." + column] = std::move(fn);
}

const FieldUpdateFn& UpdateManager::ResolveUpdateFunction(const std::string& table,
                                                          const std::string& column,
                                                          DataType type) const {
  auto column_it = column_functions_.find(table + "." + column);
  if (column_it != column_functions_.end()) return column_it->second;
  return type_functions_.at(type);
}

Result<db::Tuple> UpdateManager::BuildUpdatedTuple(
    const std::string& table, size_t row,
    const std::map<std::string, std::string>& inputs) const {
  TIOGA2_ASSIGN_OR_RETURN(db::RelationPtr relation, catalog_->GetTable(table));
  if (row >= relation->num_rows()) {
    return Status::OutOfRange("row " + std::to_string(row) + " out of range in '" +
                              table + "'");
  }
  db::Tuple updated = relation->row(row);
  for (const auto& [column, input] : inputs) {
    TIOGA2_ASSIGN_OR_RETURN(size_t index, relation->schema()->ColumnIndex(column));
    DataType type = relation->schema()->column(index).type;
    const FieldUpdateFn& fn = ResolveUpdateFunction(table, column, type);
    TIOGA2_ASSIGN_OR_RETURN(Value new_value, fn(updated[index], input));
    if (!new_value.is_null() && new_value.type() != type) {
      TIOGA2_ASSIGN_OR_RETURN(new_value, new_value.CastTo(type));
    }
    updated[index] = std::move(new_value);
  }
  return updated;
}

Result<db::TableDelta> UpdateManager::ApplyUpdate(
    const std::string& table, size_t row,
    const std::map<std::string, std::string>& inputs) {
  TIOGA2_ASSIGN_OR_RETURN(db::Tuple updated, BuildUpdatedTuple(table, row, inputs));
  return catalog_->UpdateRow(table, row, std::move(updated));
}

Result<std::vector<UpdateManager::DialogField>> UpdateManager::DescribeTuple(
    const std::string& table, size_t row) const {
  TIOGA2_ASSIGN_OR_RETURN(db::RelationPtr relation, catalog_->GetTable(table));
  if (row >= relation->num_rows()) {
    return Status::OutOfRange("row " + std::to_string(row) + " out of range in '" +
                              table + "'");
  }
  std::vector<DialogField> fields;
  const db::Schema& schema = *relation->schema();
  fields.reserve(schema.num_columns());
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    DialogField field;
    field.column = schema.column(c).name;
    field.type = schema.column(c).type;
    field.current_value = relation->at(row, c).ToString();
    field.updatable = field.type != DataType::kDisplay;
    fields.push_back(std::move(field));
  }
  return fields;
}

Result<db::TableDelta> UpdateManager::ApplyUpdateByMatch(
    const std::string& table, const db::Tuple& original,
    const std::map<std::string, std::string>& inputs) {
  TIOGA2_ASSIGN_OR_RETURN(db::RelationPtr relation, catalog_->GetTable(table));
  std::vector<size_t> matches;
  for (size_t r = 0; r < relation->num_rows(); ++r) {
    const db::Tuple& candidate = relation->row(r);
    if (candidate.size() != original.size()) continue;
    bool equal = true;
    for (size_t c = 0; c < candidate.size(); ++c) {
      if (!candidate[c].Equals(original[c])) {
        equal = false;
        break;
      }
    }
    if (equal) matches.push_back(r);
  }
  if (matches.empty()) {
    return Status::NotFound("no tuple in '" + table +
                            "' matches the clicked screen object");
  }
  if (matches.size() > 1) {
    return Status::FailedPrecondition(
        std::to_string(matches.size()) + " tuples in '" + table +
        "' match the clicked screen object; a by-value match is ambiguous, so "
        "the update was not applied (use ApplyUpdate with a row index)");
  }
  return ApplyUpdate(table, matches[0], inputs);
}

}  // namespace tioga2::update
