#ifndef TIOGA2_UPDATE_UPDATE_H_
#define TIOGA2_UPDATE_UPDATE_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "db/catalog.h"

namespace tioga2::update {

/// An update function (§8): given the field's current value and the user's
/// textual input from the update dialog, produces the new value. "For each
/// primitive type, the type definer is required to write an update function"
/// — defaults exist for every DataType (parse the input as that type); both
/// per-type and per-column functions can be replaced to give an update
/// system "a desired look and feel".
using FieldUpdateFn =
    std::function<Result<types::Value>(const types::Value& old_value,
                                       const std::string& input)>;

/// The generic update procedure of §8. When the user clicks a screen object
/// the viewer layer hit-tests back to a tuple; UpdateManager engages the
/// (simulated) dialog — a map from column name to textual input — builds the
/// new tuple using the per-field update functions, and installs it in the
/// base table via an SQL-style update (Catalog::ReplaceTable, which bumps
/// the table version so every memoized box downstream recomputes).
class UpdateManager {
 public:
  /// `catalog` must outlive the manager.
  explicit UpdateManager(db::Catalog* catalog);

  /// Replaces the default update function for a primitive type.
  void SetTypeUpdateFunction(types::DataType type, FieldUpdateFn fn);

  /// Replaces the update function for one column of one table (the
  /// "customized look and feel" hook).
  void SetColumnUpdateFunction(const std::string& table, const std::string& column,
                               FieldUpdateFn fn);

  /// The update function that would handle (table, column of given type).
  const FieldUpdateFn& ResolveUpdateFunction(const std::string& table,
                                             const std::string& column,
                                             types::DataType type) const;

  /// Builds the updated tuple for row `row` of `table` from dialog inputs
  /// (column name → text). Columns absent from `inputs` keep their value.
  Result<db::Tuple> BuildUpdatedTuple(const std::string& table, size_t row,
                                      const std::map<std::string, std::string>& inputs) const;

  /// Builds and installs the update for a known row index, via
  /// Catalog::UpdateRow. The returned TableDelta is the typed record of
  /// exactly what changed — feed it to Engine::Invalidate
  /// (Invalidation::Delta) to maintain memoized outputs incrementally
  /// instead of recomputing them.
  Result<db::TableDelta> ApplyUpdate(const std::string& table, size_t row,
                                     const std::map<std::string, std::string>& inputs);

  /// Installs an update for the unique base tuple equal to `original` —
  /// the path used from a canvas hit, where the clicked tuple came from a
  /// derived relation and is located in the base table by value. Errors
  /// with NotFound when no tuple matches and with FailedPrecondition when
  /// several do: a by-value match cannot tell which duplicate the user
  /// clicked, and silently updating the first would edit an arbitrary one.
  Result<db::TableDelta> ApplyUpdateByMatch(
      const std::string& table, const db::Tuple& original,
      const std::map<std::string, std::string>& inputs);

  /// One row of the §8 update dialog: the field's name, type, current value
  /// (rendered), and whether the resolved update function can change it.
  struct DialogField {
    std::string column;
    types::DataType type;
    std::string current_value;
    bool updatable;
  };

  /// The dialog contents for row `row` of `table` — what the generic update
  /// procedure shows the user before collecting inputs ("the function
  /// engages a dialog with the user to construct a new tuple", §8).
  Result<std::vector<DialogField>> DescribeTuple(const std::string& table,
                                                 size_t row) const;

 private:
  db::Catalog* catalog_;
  std::map<types::DataType, FieldUpdateFn> type_functions_;
  std::map<std::string, FieldUpdateFn> column_functions_;  // "table.column"
};

}  // namespace tioga2::update

#endif  // TIOGA2_UPDATE_UPDATE_H_
