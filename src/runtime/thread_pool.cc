#include "runtime/thread_pool.h"

namespace tioga2::runtime {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace tioga2::runtime
