#ifndef TIOGA2_RUNTIME_PARALLEL_ENGINE_H_
#define TIOGA2_RUNTIME_PARALLEL_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "dataflow/engine.h"
#include "db/exec_policy.h"
#include "dataflow/graph.h"
#include "dataflow/memo_cache.h"
#include "runtime/metrics.h"
#include "runtime/thread_pool.h"

namespace tioga2::runtime {

/// Snapshot of the parallel engine's counters (mirrors dataflow::EngineStats).
struct ParallelEngineStats {
  uint64_t boxes_fired = 0;
  uint64_t cache_hits = 0;
  uint64_t shared_hits = 0;  // subset of cache_hits served by the shared tier
  uint64_t evaluations = 0;
  uint64_t boxes_skipped = 0;
  uint64_t deltas_applied = 0;
  uint64_t delta_fallbacks = 0;
};

/// A dependency-counting parallel evaluator for boxes-and-arrows programs.
///
/// Evaluate() partitions the transitive input closure of the demanded box
/// into ready sets: every box whose inputs are all available is fired
/// concurrently on the ThreadPool, and a finished box decrements its
/// dependents' counts, releasing them as they become ready. The calling
/// thread participates in draining the ready queue, so evaluation makes
/// progress (and cannot deadlock) even when every pool worker is occupied —
/// e.g. when a SessionServer handler running on the pool evaluates through
/// this engine.
///
/// Memoization uses the same stamp algebra as the serial dataflow::Engine
/// (dataflow/stamp.h) and the same MemoCache entry format, so a cache may be
/// shared between the two: serial and parallel evaluation are bit-identical
/// in both outputs and stamps (asserted by runtime_determinism_test).
///
/// One Evaluate/EvaluateAll call runs at a time per instance (like the
/// serial Engine); concurrency across clients is layered on top by
/// SessionServer, with each session evaluating through its own engine into
/// the shared cache.
class ParallelEngine {
 public:
  /// `catalog` and `pool` must outlive the engine. When `shared_cache` is
  /// non-null the engine memoizes into it instead of a private cache; pass a
  /// serial Engine's cache() to share memoized results across both. Metrics,
  /// if given, receives per-box fire latencies and cache hit/miss counts.
  ParallelEngine(const db::Catalog* catalog, ThreadPool* pool,
                 dataflow::MemoCache* shared_cache = nullptr,
                 Metrics* metrics = nullptr)
      : catalog_(catalog),
        pool_(pool),
        cache_(shared_cache != nullptr ? shared_cache : &owned_cache_),
        metrics_(metrics) {}

  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  /// Evaluates one output port, firing independent upstream boxes
  /// concurrently. Identical results and error messages to
  /// dataflow::Engine::Evaluate.
  Result<dataflow::BoxValue> Evaluate(const dataflow::Graph& graph,
                                      const std::string& box_id,
                                      size_t output_port);

  /// Evaluates every runnable box in the graph concurrently. Boxes with
  /// dangling inputs (and boxes downstream of them) are counted in
  /// stats().boxes_skipped and reported through warnings(), matching the
  /// serial Engine.
  Status EvaluateAll(const dataflow::Graph& graph);

  /// Drops all cached outputs.
  /// DEPRECATED: prefer Invalidate(graph, Invalidation::All()).
  void InvalidateAll() { cache_->Clear(); }

  /// Drops the cached outputs of every box downstream of a source box
  /// reading `table`. Returns the number of entries evicted.
  /// DEPRECATED: prefer Invalidate(graph, Invalidation::DownstreamOf(table)).
  size_t InvalidateDownstreamOf(const dataflow::Graph& graph,
                                const std::string& table);

  /// The unified invalidation entry point, identical in semantics to
  /// dataflow::Engine::Invalidate. Delta propagation (Invalidation::Delta)
  /// runs serially on the calling thread — the cost is O(touched boxes) on a
  /// single edited tuple, far below the plan-building overhead of a parallel
  /// walk — but maintains this engine's cache (shared or owned), so the next
  /// parallel Evaluate sees the maintained entries as cache hits.
  Result<dataflow::InvalidationResult> Invalidate(
      const dataflow::Graph& graph, const dataflow::Invalidation& inv);

  /// Pins the execution policy used by boxes fired through this engine
  /// (and by delta propagation). Unset, every fire resolves
  /// db::DefaultExecPolicy() at fire time.
  void set_exec_policy(db::ExecPolicy policy) { policy_ = policy; }
  const std::optional<db::ExecPolicy>& exec_policy() const { return policy_; }

  /// Attaches a cross-session shared memo tier (null detaches), consulted by
  /// stamp after a local-cache miss and fed by every firing — identical
  /// semantics (and byte-identical results) to
  /// dataflow::Engine::set_shared_cache. The pointee must outlive the
  /// engine.
  void set_shared_cache(dataflow::SharedMemoCache* shared) {
    shared_cache_ = shared;
  }
  dataflow::SharedMemoCache* shared_cache() const { return shared_cache_; }

  ParallelEngineStats stats() const;
  void ResetStats();

  /// The memo cache (shared or owned).
  dataflow::MemoCache& cache() { return *cache_; }
  const dataflow::MemoCache& cache() const { return *cache_; }

  /// Warnings from the most recent evaluation. Fire warnings are sorted by
  /// (box id, text) so the result is deterministic regardless of the firing
  /// interleaving; EvaluateAll skip warnings precede them in topological
  /// order, as in the serial Engine.
  const std::vector<std::string>& warnings() const { return warnings_; }

 private:
  struct Plan;
  struct RunState;

  /// Builds the dependency plan for `targets`: their transitive input
  /// closures, with per-box resolved input edges and dependent lists.
  Status BuildPlan(const dataflow::Graph& graph,
                   const std::vector<std::string>& targets, Plan* plan) const;

  /// Runs a plan to completion on the pool + calling thread. On success,
  /// fills `done` with the cache entry of every box in the plan.
  Status RunPlan(
      Plan* plan,
      std::unordered_map<std::string, dataflow::MemoCache::EntryPtr>* done);

  /// A pool task that claims one ready box, if any, and fires it. Touches
  /// only `state` until a box is claimed, so stale tickets left in the pool
  /// queue after RunPlan returns are harmless.
  std::function<void()> MakeTicket(Plan* plan,
                                   std::shared_ptr<RunState> state);

  /// Evaluates one box (cache lookup or fire), records the result, and
  /// releases any dependents that became ready.
  void FireBox(Plan* plan, const std::shared_ptr<RunState>& state,
               const std::string& box_id);

  const db::Catalog* catalog_;
  ThreadPool* pool_;
  dataflow::MemoCache owned_cache_;
  dataflow::MemoCache* cache_;  // owned_cache_ or an external shared cache
  dataflow::SharedMemoCache* shared_cache_ = nullptr;  // cross-session tier
  Metrics* metrics_ = nullptr;

  std::optional<db::ExecPolicy> policy_;

  std::atomic<uint64_t> boxes_fired_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> shared_hits_{0};
  std::atomic<uint64_t> evaluations_{0};
  std::atomic<uint64_t> boxes_skipped_{0};
  std::atomic<uint64_t> deltas_applied_{0};
  std::atomic<uint64_t> delta_fallbacks_{0};
  std::vector<std::string> warnings_;
};

}  // namespace tioga2::runtime

#endif  // TIOGA2_RUNTIME_PARALLEL_ENGINE_H_
