#ifndef TIOGA2_RUNTIME_SESSION_SERVER_H_
#define TIOGA2_RUNTIME_SESSION_SERVER_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "common/result.h"
#include "db/catalog.h"
#include "display/displayable.h"
#include "runtime/metrics.h"
#include "runtime/thread_pool.h"
#include "ui/session.h"
#include "viewer/viewer.h"

namespace tioga2::runtime {

/// One client's state on the server: a ui::Session (program, engine, canvas
/// registry, undo stack) plus the viewers the client has opened. Requests
/// for one session are serialized by the server (a per-session mutex), so a
/// handler may use the ui::Session freely; distinct sessions run
/// concurrently.
class Session {
 public:
  Session(std::string id, db::Catalog* catalog)
      : id_(std::move(id)), ui_(catalog) {}

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const std::string& id() const { return id_; }
  ui::Session& ui() { return ui_; }

  /// Creates (or returns the existing) viewer onto `canvas_name`, like
  /// Environment::GetViewer but per client.
  Result<viewer::Viewer*> GetViewer(const std::string& canvas_name);

 private:
  friend class SessionServer;

  std::string id_;
  ui::Session ui_;
  std::map<std::string, std::unique_ptr<viewer::Viewer>> viewers_;
  std::mutex mu_;  // serializes this client's requests
};

/// Multiplexes N client sessions over one ThreadPool against one shared
/// catalog — the runtime for the paper's multi-user picture (§7: several
/// viewers, possibly several users, over the same database).
///
/// Concurrency policy:
///  - Distinct sessions run concurrently; requests within one session are
///    serialized by the session's mutex (a client is a single logical
///    thread).
///  - The shared catalog is guarded by a readers-writer lock: Access::kRead
///    handlers (evaluation, rendering) share it; Access::kWrite handlers
///    (§8 updates via ReplaceTable) take it exclusively.
///  - Admission control is bounded and non-blocking: when `queue_bound`
///    requests are already in flight, Submit immediately resolves the
///    request with Status::Unavailable instead of queueing or blocking
///    (backpressure is the caller's signal to retry later).
///  - A request carries an optional deadline, checked when a worker dequeues
///    it; an expired request resolves with Status::DeadlineExceeded without
///    running its handler.
class SessionServer {
 public:
  /// Catalog access a handler needs: kRead handlers run concurrently with
  /// each other, kWrite handlers run exclusively.
  enum class Access { kRead, kWrite };

  struct Options {
    size_t num_threads = 4;
    /// Max requests accepted but not yet finished; beyond it Submit rejects.
    size_t queue_bound = 64;
    /// Applied to requests submitted without a deadline; zero = none.
    std::chrono::milliseconds default_deadline{0};
  };

  /// A request body. The Status it returns is delivered through the future.
  using Handler = std::function<Status(Session&)>;

  /// `catalog` must outlive the server.
  explicit SessionServer(db::Catalog* catalog) : SessionServer(catalog, Options{}) {}
  SessionServer(db::Catalog* catalog, Options options);
  ~SessionServer();

  SessionServer(const SessionServer&) = delete;
  SessionServer& operator=(const SessionServer&) = delete;

  /// Opens a session; generates an id ("s1", "s2", ...) unless one is given.
  /// Returns the id.
  Result<std::string> OpenSession(const std::string& id = "");

  /// Closes a session. Requests already in flight for it finish normally
  /// (they hold a reference); new Submits fail with NotFound.
  Status CloseSession(const std::string& id);

  size_t num_sessions() const;

  /// Enqueues `handler` for `session_id`. Returns a future resolving to the
  /// handler's Status — or Unavailable (rejected at the queue bound),
  /// DeadlineExceeded (expired before a worker picked it up), or NotFound
  /// (no such session). Never blocks.
  std::future<Status> Submit(const std::string& session_id, Handler handler,
                             Access access = Access::kRead,
                             std::chrono::milliseconds deadline =
                                 std::chrono::milliseconds{0});

  /// Blocking convenience: evaluates the displayable on `canvas_name` in
  /// `session_id` through the session's engine.
  Result<display::Displayable> EvaluateCanvas(const std::string& session_id,
                                              const std::string& canvas_name);

  Metrics& metrics() { return metrics_; }
  ThreadPool& pool() { return pool_; }
  db::Catalog* catalog() { return catalog_; }
  const Options& options() const { return options_; }

 private:
  std::shared_ptr<Session> FindSession(const std::string& id) const;

  db::Catalog* catalog_;
  Options options_;
  Metrics metrics_;

  mutable std::mutex sessions_mu_;
  std::map<std::string, std::shared_ptr<Session>> sessions_;
  uint64_t next_session_ = 1;

  /// Readers-writer lock over the shared catalog (kRead vs kWrite handlers).
  std::shared_mutex catalog_mu_;

  /// Requests accepted but not yet finished (admission control).
  std::atomic<size_t> in_flight_{0};

  /// Declared last so it is destroyed FIRST: the destructor drains queued
  /// requests and joins the workers while every other member is still alive.
  ThreadPool pool_;
};

}  // namespace tioga2::runtime

#endif  // TIOGA2_RUNTIME_SESSION_SERVER_H_
