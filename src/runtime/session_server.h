#ifndef TIOGA2_RUNTIME_SESSION_SERVER_H_
#define TIOGA2_RUNTIME_SESSION_SERVER_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "common/result.h"
#include "dataflow/shared_memo_cache.h"
#include "db/catalog.h"
#include "display/displayable.h"
#include "runtime/metrics.h"
#include "runtime/thread_pool.h"
#include "ui/session.h"
#include "viewer/viewer.h"

namespace tioga2::runtime {

/// One client's state on the server: a ui::Session (program, engine, canvas
/// registry, undo stack) plus the viewers the client has opened. Requests
/// for one session are serialized by the server (a per-session mutex), so a
/// handler may use the ui::Session freely; distinct sessions run
/// concurrently.
class Session {
 public:
  Session(std::string id, db::Catalog* catalog)
      : id_(std::move(id)), ui_(catalog) {}

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const std::string& id() const { return id_; }
  ui::Session& ui() { return ui_; }

  /// Creates (or returns the existing) viewer onto `canvas_name`, like
  /// Environment::GetViewer but per client.
  Result<viewer::Viewer*> GetViewer(const std::string& canvas_name);

 private:
  friend class SessionServer;

  std::string id_;
  ui::Session ui_;
  std::map<std::string, std::unique_ptr<viewer::Viewer>> viewers_;
  std::mutex mu_;  // serializes this client's requests
};

/// Multiplexes N client sessions over one ThreadPool against one shared
/// catalog — the runtime for the paper's multi-user picture (§7: several
/// viewers, possibly several users, over the same database).
///
/// Concurrency policy (DESIGN.md §13):
///  - Distinct sessions run concurrently; requests within one session are
///    serialized by the session's mutex (a client is a single logical
///    thread).
///  - Access::kRead handlers never take a lock on the shared catalog: they
///    run inside a db::Catalog::ReadPin, which pins one immutable catalog
///    snapshot (epoch-reclaimed through runtime::EpochDomain::Global()) for
///    the whole handler, so stamping and table fetches cannot straddle a
///    concurrent writer's publish. Access::kWrite handlers (§8 updates via
///    ReplaceTable) still take catalog_mu_ exclusively — the lock now only
///    serializes writers against each other, since the catalog's mutators
///    are not internally synchronized.
///  - Admission control is bounded and non-blocking: when `queue_bound`
///    requests are already in flight, Submit immediately resolves the
///    request with Status::Unavailable instead of queueing or blocking
///    (backpressure is the caller's signal to retry later). kBatch-priority
///    requests admit against a lower bound (see Priority), reserving
///    headroom for interactive traffic.
///  - A request carries an optional deadline, checked when a worker dequeues
///    it; an expired request resolves with Status::DeadlineExceeded without
///    running its handler.
class SessionServer {
 public:
  /// Catalog access a handler needs: kRead handlers run concurrently with
  /// each other, kWrite handlers run exclusively.
  enum class Access { kRead, kWrite };

  /// Scheduling class of a request. kInteractive (the default) may use the
  /// full queue bound; kBatch requests are admitted only while in-flight
  /// load stays below the batch bound (queue_bound minus a reserved
  /// headroom of queue_bound/4), so background traffic can never starve
  /// interactive clients of admission capacity.
  enum class Priority { kInteractive, kBatch };

  struct Options {
    size_t num_threads = 4;
    /// Max requests accepted but not yet finished; beyond it Submit rejects.
    size_t queue_bound = 64;
    /// Applied to requests submitted without a deadline; zero = none.
    std::chrono::milliseconds default_deadline{0};
    /// Capacity (in entries) of the cross-session SharedMemoCache wired into
    /// every session's engine; 0 disables the shared tier, leaving sessions
    /// with only their per-session memoization. See
    /// dataflow/shared_memo_cache.h for the sharing argument.
    size_t shared_cache_entries = 0;
  };

  /// A request body. The Status it returns is delivered through the future.
  using Handler = std::function<Status(Session&)>;

  /// A typed request — the one Submit entry point. Replaces the old
  /// positional (handler, access, deadline) signature, which could not grow
  /// a field without breaking every call site.
  struct Request {
    /// The request body; must be non-null.
    Handler handler;
    /// Catalog access the handler needs (readers share, writers exclude).
    Access access = Access::kRead;
    /// Deadline measured from Submit; zero = Options::default_deadline.
    std::chrono::milliseconds deadline{0};
    /// Admission class (see Priority).
    Priority priority = Priority::kInteractive;
    /// Optional request-class label ("panzoom", "edit", ...). Nonempty tags
    /// get their own latency histogram under "requests"."classes" in the
    /// metrics JSON — the per-class breakdown bench_session_load reports.
    std::string tag;
  };

  /// `catalog` must outlive the server.
  explicit SessionServer(db::Catalog* catalog) : SessionServer(catalog, Options{}) {}
  SessionServer(db::Catalog* catalog, Options options);
  ~SessionServer();

  SessionServer(const SessionServer&) = delete;
  SessionServer& operator=(const SessionServer&) = delete;

  /// Opens a session; generates an id ("s1", "s2", ...) unless one is given.
  /// Returns the id.
  Result<std::string> OpenSession(const std::string& id = "");

  /// Closes a session. Requests already in flight for it finish normally
  /// (they hold a reference); new Submits fail with NotFound.
  Status CloseSession(const std::string& id);

  size_t num_sessions() const;

  /// Enqueues `request` for `session_id`. Returns a future resolving to the
  /// handler's Status — or Unavailable (rejected at the admission bound for
  /// the request's priority), DeadlineExceeded (expired before a worker
  /// picked it up), or NotFound (no such session). Never blocks. Session
  /// existence is checked before the request is charged against the
  /// admission bound, so a burst of submits to unknown or closed sessions
  /// cannot consume queue slots and spuriously reject valid traffic.
  std::future<Status> Submit(const std::string& session_id, Request request);

  /// DEPRECATED positional overload, kept for one release: forwards to the
  /// Request overload with default priority and no tag. New code should
  /// submit a Request — it is the only signature that carries priority and
  /// the request-class tag.
  std::future<Status> Submit(const std::string& session_id, Handler handler,
                             Access access = Access::kRead,
                             std::chrono::milliseconds deadline =
                                 std::chrono::milliseconds{0});

  /// Blocking convenience: evaluates the displayable on `canvas_name` in
  /// `session_id` through the session's engine.
  Result<display::Displayable> EvaluateCanvas(const std::string& session_id,
                                              const std::string& canvas_name);

  Metrics& metrics() { return metrics_; }
  ThreadPool& pool() { return pool_; }
  db::Catalog* catalog() { return catalog_; }
  const Options& options() const { return options_; }

  /// The cross-session shared memo tier, or null when
  /// Options::shared_cache_entries is 0.
  dataflow::SharedMemoCache* shared_cache() { return shared_cache_.get(); }

  /// The in-flight count a kBatch request must stay below to be admitted
  /// (kInteractive admits up to the full queue_bound).
  size_t batch_admission_bound() const {
    return options_.queue_bound - options_.queue_bound / 4;
  }

 private:
  std::shared_ptr<Session> FindSession(const std::string& id) const;

  db::Catalog* catalog_;
  Options options_;
  Metrics metrics_;

  /// Cross-session stamp-keyed memo tier (null when disabled); attached to
  /// every session's engine at OpenSession.
  std::unique_ptr<dataflow::SharedMemoCache> shared_cache_;

  mutable std::mutex sessions_mu_;
  std::map<std::string, std::shared_ptr<Session>> sessions_;
  uint64_t next_session_ = 1;

  /// Serializes Access::kWrite handlers against each other. kRead handlers
  /// no longer touch it — they read epoch-pinned catalog snapshots (see the
  /// class comment) — so this is a writer-writer lock in all but type.
  std::shared_mutex catalog_mu_;

  /// Requests accepted but not yet finished (admission control).
  std::atomic<size_t> in_flight_{0};

  /// Set by the destructor before pool_ drains: queued requests that have
  /// not started resolve Unavailable("server shutting down") instead of
  /// running their handlers (or, worse, being dropped with a broken
  /// promise). Requests already executing finish normally.
  std::atomic<bool> shutting_down_{false};

  /// Declared last so it is destroyed FIRST: the destructor drains queued
  /// requests and joins the workers while every other member is still alive.
  ThreadPool pool_;
};

}  // namespace tioga2::runtime

#endif  // TIOGA2_RUNTIME_SESSION_SERVER_H_
