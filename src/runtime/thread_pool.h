#ifndef TIOGA2_RUNTIME_THREAD_POOL_H_
#define TIOGA2_RUNTIME_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "db/morsel.h"

namespace tioga2::runtime {

/// A fixed-size worker pool with a FIFO task queue. Tasks may submit further
/// tasks (the ParallelEngine schedules a box's dependents from the worker
/// that finished it). Destruction drains the queue: every task submitted
/// before the destructor runs is executed before the workers join, so
/// callers never lose queued work.
///
/// Implements db::MorselRunner, so the same pool that fires boxes also
/// serves intra-operator morsel fan-out (ExecPolicy::runner). Morsel help
/// tickets are ordinary Submit() tasks; db::ForEachMorsel never blocks a
/// worker on queue capacity, which is what keeps nested use (a box running
/// ON the pool lending morsels TO the pool) deadlock-free.
class ThreadPool : public db::MorselRunner {
 public:
  /// Spawns `num_threads` workers (at least one).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool() override;

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Thread-safe; never blocks on queue capacity (admission
  /// control is the SessionServer's job, not the pool's).
  void Submit(std::function<void()> task) override;

  size_t num_threads() const override { return workers_.size(); }

  /// Tasks queued but not yet claimed by a worker.
  size_t QueueDepth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace tioga2::runtime

#endif  // TIOGA2_RUNTIME_THREAD_POOL_H_
