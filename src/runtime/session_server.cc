#include "runtime/session_server.h"

#include <utility>

#include "runtime/epoch.h"

namespace tioga2::runtime {

Result<viewer::Viewer*> Session::GetViewer(const std::string& canvas_name) {
  auto it = viewers_.find(canvas_name);
  if (it != viewers_.end()) return it->second.get();
  if (!ui_.registry().Has(canvas_name)) {
    return Status::NotFound("no canvas named '" + canvas_name + "'");
  }
  auto viewer = std::make_unique<viewer::Viewer>("viewer:" + canvas_name,
                                                 canvas_name, &ui_.registry());
  TIOGA2_RETURN_IF_ERROR(viewer->Refresh());
  viewer::Viewer* raw = viewer.get();
  viewers_[canvas_name] = std::move(viewer);
  return raw;
}

SessionServer::SessionServer(db::Catalog* catalog, Options options)
    : catalog_(catalog),
      options_(options),
      pool_(options.num_threads == 0 ? 1 : options.num_threads) {
  // Every lock-free read structure the server touches shares the process
  // EpochDomain: one Guard pin covers the catalog snapshot, the shared memo
  // table, and the canvas registries alike.
  catalog_->set_reclamation_domain(&EpochDomain::Global());
  if (options_.shared_cache_entries > 0) {
    shared_cache_ = std::make_unique<dataflow::SharedMemoCache>(
        options_.shared_cache_entries, &EpochDomain::Global());
    metrics_.AttachSharedCache(shared_cache_.get());
  }
}

SessionServer::~SessionServer() {
  // pool_ is declared last, so its destructor — which drains every queued
  // task — runs right after this body. Queued request lambdas observe the
  // flag and resolve Unavailable without touching handlers or metrics state
  // mid-teardown; in-flight handlers (already past the check) finish first
  // because the drain joins the workers.
  shutting_down_.store(true, std::memory_order_release);
}

Result<std::string> SessionServer::OpenSession(const std::string& id) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  std::string session_id = id;
  if (session_id.empty()) {
    session_id = "s" + std::to_string(next_session_++);
  }
  if (sessions_.count(session_id) > 0) {
    return Status::AlreadyExists("session '" + session_id + "' already open");
  }
  auto session = std::make_shared<Session>(session_id, catalog_);
  // Sessions viewing the same canvas share identical box subgraphs; the
  // shared tier lets the second session reuse the first one's evaluations.
  if (shared_cache_ != nullptr) session->ui().set_shared_cache(shared_cache_.get());
  session->ui().set_reclamation_domain(&EpochDomain::Global());
  sessions_[session_id] = std::move(session);
  return session_id;
}

Status SessionServer::CloseSession(const std::string& id) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  if (sessions_.erase(id) == 0) {
    return Status::NotFound("no session '" + id + "'");
  }
  return Status::OK();
}

size_t SessionServer::num_sessions() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return sessions_.size();
}

std::shared_ptr<Session> SessionServer::FindSession(const std::string& id) const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

std::future<Status> SessionServer::Submit(const std::string& session_id,
                                          Request request) {
  auto promise = std::make_shared<std::promise<Status>>();
  std::future<Status> future = promise->get_future();

  if (request.handler == nullptr) {
    promise->set_value(Status::InvalidArgument("request has no handler"));
    return future;
  }

  // Resolve the session BEFORE charging admission: requests for unknown or
  // closed sessions resolve NotFound without ever occupying a queue slot, so
  // a burst of misdirected submits cannot spuriously reject valid traffic
  // (regression: NotFoundBurstDoesNotConsumeAdmission).
  std::shared_ptr<Session> session = FindSession(session_id);
  if (session == nullptr) {
    promise->set_value(Status::NotFound("no session '" + session_id + "'"));
    return future;
  }

  // Admission control: reject immediately at the bound instead of queueing
  // unboundedly or blocking the caller. Batch-priority requests admit
  // against a lower bound, reserving headroom for interactive traffic.
  size_t bound = request.priority == Priority::kBatch ? batch_admission_bound()
                                                      : options_.queue_bound;
  size_t in_flight = in_flight_.fetch_add(1, std::memory_order_acq_rel);
  if (in_flight >= bound) {
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    metrics_.RecordRequestRejected();
    promise->set_value(Status::Unavailable(
        "server at capacity (" + std::to_string(in_flight) + " in flight, " +
        (request.priority == Priority::kBatch ? "batch" : "interactive") +
        " bound " + std::to_string(bound) + "); retry later"));
    return future;
  }
  metrics_.RecordQueueDepth(in_flight + 1);

  std::chrono::milliseconds effective_deadline =
      request.deadline.count() > 0 ? request.deadline
                                   : options_.default_deadline;
  std::chrono::steady_clock::time_point expires_at{};
  bool has_deadline = effective_deadline.count() > 0;
  if (has_deadline) {
    expires_at = std::chrono::steady_clock::now() + effective_deadline;
  }

  pool_.Submit([this, session = std::move(session),
                handler = std::move(request.handler), access = request.access,
                tag = std::move(request.tag), has_deadline, expires_at,
                promise] {
    // A destroyed server drains its queue through here: resolve instead of
    // running the handler against half-torn-down state, and never drop the
    // promise (a broken promise would throw std::future_error at the
    // caller's future.get()).
    if (shutting_down_.load(std::memory_order_acquire)) {
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      promise->set_value(Status::Unavailable("server shutting down"));
      return;
    }
    if (has_deadline && std::chrono::steady_clock::now() >= expires_at) {
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      metrics_.RecordRequestTimedOut();
      promise->set_value(
          Status::DeadlineExceeded("request expired before a worker ran it"));
      return;
    }
    auto start = std::chrono::steady_clock::now();
    Status status;
    {
      // One client at a time per session. Writers serialize on catalog_mu_;
      // readers take no lock at all — the ReadPin pins one epoch-protected
      // catalog snapshot for the whole handler, so every TableVersion /
      // GetTable pair inside sees the same catalog state even while a
      // writer publishes a new one.
      std::lock_guard<std::mutex> session_lock(session->mu_);
      if (access == Access::kWrite) {
        std::unique_lock<std::shared_mutex> catalog_lock(catalog_mu_);
        status = handler(*session);
      } else {
        db::Catalog::ReadPin pin(*catalog_);
        status = handler(*session);
      }
    }
    double micros = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    metrics_.RecordRequestComplete(micros, tag);
    promise->set_value(std::move(status));
  });
  return future;
}

std::future<Status> SessionServer::Submit(const std::string& session_id,
                                          Handler handler, Access access,
                                          std::chrono::milliseconds deadline) {
  Request request;
  request.handler = std::move(handler);
  request.access = access;
  request.deadline = deadline;
  return Submit(session_id, std::move(request));
}

Result<display::Displayable> SessionServer::EvaluateCanvas(
    const std::string& session_id, const std::string& canvas_name) {
  auto result = std::make_shared<Result<display::Displayable>>(
      Status::Internal("canvas evaluation did not run"));
  Request request;
  request.handler = [canvas_name, result](Session& session) {
    *result = session.ui().EvaluateCanvas(canvas_name);
    return result->status();
  };
  request.tag = "evaluate_canvas";
  std::future<Status> future = Submit(session_id, std::move(request));
  Status status = future.get();
  if (!status.ok()) return status;
  return std::move(*result);
}

}  // namespace tioga2::runtime
