#include "runtime/epoch.h"

#include <thread>

namespace tioga2::runtime {

namespace {

/// A per-thread starting slot so concurrent pinners land on distinct cache
/// lines instead of all CASing slot 0. Updated to the slot actually claimed,
/// so a thread that pins repeatedly hits its last slot first.
thread_local size_t tl_slot_hint =
    std::hash<std::thread::id>{}(std::this_thread::get_id());

}  // namespace

EpochDomain::EpochDomain(size_t num_slots)
    : num_slots_(num_slots == 0 ? 1 : num_slots),
      slots_(new Slot[num_slots == 0 ? 1 : num_slots]) {}

EpochDomain::~EpochDomain() {
  // No pins may be live (contract); every pending deleter is safe to run.
  for (Retired& retired : limbo_) {
    retired.deleter();
    reclaimed_.fetch_add(1, std::memory_order_relaxed);
  }
  limbo_.clear();
}

uint64_t EpochDomain::Pin() {
  pins_.fetch_add(1, std::memory_order_relaxed);
  size_t start = tl_slot_hint % num_slots_;
  for (size_t n = 0; n < num_slots_; ++n) {
    size_t i = (start + n) % num_slots_;
    uint64_t expected = kSlotFree;
    uint64_t e = epoch_.load();
    if (!slots_[i].state.compare_exchange_strong(expected, e)) continue;
    // Confirm loop: the slot must hold the epoch that is CURRENT after the
    // slot became visible. Without it, a pin that published a stale epoch
    // could slip past an in-flight advance's slot scan and then dereference
    // an already-reclaimed object (the classic late-pin race). Sequentially
    // consistent store/load keeps the publication and the confirm ordered.
    while (true) {
      uint64_t current = epoch_.load();
      if (current == e) break;
      slots_[i].state.store(current);
      e = current;
    }
    tl_slot_hint = i;
    return i;
  }
  // Every slot occupied: fall back to a shared lock. TryAdvance needs the
  // exclusive side, so this pin blocks advancement — reclamation is delayed,
  // never unsafe — and the lock acquisition provides the happens-before
  // edge that makes everything already unlinked visible to this reader.
  overflow_pins_.fetch_add(1, std::memory_order_relaxed);
  fallback_mu_.lock_shared();
  return kOverflowTicket;
}

void EpochDomain::Unpin(uint64_t ticket) {
  if (ticket == kOverflowTicket) {
    fallback_mu_.unlock_shared();
  } else {
    slots_[ticket].state.store(kSlotFree);
  }
  // Opportunistically drain the limbo list once the last reader leaves a
  // quiescent structure; skipped whenever a writer already holds the lock.
  if (pending_.load(std::memory_order_relaxed) > 0) MaybeAdvanceNonBlocking();
}

void EpochDomain::Retire(std::function<void()> deleter) {
  std::vector<std::function<void()>> ready;
  {
    std::lock_guard<std::mutex> lock(mu_);
    limbo_.push_back(Retired{epoch_.load(), std::move(deleter)});
    retired_.fetch_add(1, std::memory_order_relaxed);
    TryAdvanceLocked();
    TakeReclaimableLocked(&ready);
    pending_.store(limbo_.size(), std::memory_order_relaxed);
  }
  // Deleters run outside mu_ — they may free arbitrarily large structures
  // and must never deadlock a concurrent Retire.
  for (auto& run : ready) run();
}

bool EpochDomain::TryAdvance() {
  std::vector<std::function<void()>> ready;
  bool advanced;
  {
    std::lock_guard<std::mutex> lock(mu_);
    advanced = TryAdvanceLocked();
    TakeReclaimableLocked(&ready);
    pending_.store(limbo_.size(), std::memory_order_relaxed);
  }
  for (auto& run : ready) run();
  return advanced;
}

void EpochDomain::MaybeAdvanceNonBlocking() {
  std::vector<std::function<void()>> ready;
  {
    std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
    if (!lock.owns_lock()) return;
    TryAdvanceLocked();
    TakeReclaimableLocked(&ready);
    pending_.store(limbo_.size(), std::memory_order_relaxed);
  }
  for (auto& run : ready) run();
}

bool EpochDomain::TryAdvanceLocked() {
  std::unique_lock<std::shared_mutex> overflow(fallback_mu_, std::try_to_lock);
  if (!overflow.owns_lock()) return false;  // an overflow pin is live
  uint64_t e = epoch_.load();
  for (size_t i = 0; i < num_slots_; ++i) {
    uint64_t state = slots_[i].state.load();
    // A reader pinned at the current epoch cannot hold anything retired at
    // e-1 or earlier, so it does not block the advance; a reader at an
    // older epoch might, and does.
    if (state != kSlotFree && state != e) return false;
  }
  epoch_.store(e + 1);
  advances_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void EpochDomain::TakeReclaimableLocked(
    std::vector<std::function<void()>>* ready) {
  uint64_t e = epoch_.load();
  while (!limbo_.empty() && limbo_.front().epoch + 2 <= e) {
    ready->push_back(std::move(limbo_.front().deleter));
    limbo_.pop_front();
    reclaimed_.fetch_add(1, std::memory_order_relaxed);
  }
}

EpochDomain::Stats EpochDomain::stats() const {
  Stats stats;
  stats.epoch = epoch_.load();
  stats.advances = advances_.load(std::memory_order_relaxed);
  stats.retired = retired_.load(std::memory_order_relaxed);
  stats.reclaimed = reclaimed_.load(std::memory_order_relaxed);
  stats.pending = pending_.load(std::memory_order_relaxed);
  stats.pins = pins_.load(std::memory_order_relaxed);
  stats.overflow_pins = overflow_pins_.load(std::memory_order_relaxed);
  return stats;
}

EpochDomain& EpochDomain::Global() {
  static EpochDomain* domain = new EpochDomain();  // never destroyed
  return *domain;
}

}  // namespace tioga2::runtime
