#include "runtime/parallel_engine.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "dataflow/stamp.h"

namespace tioga2::runtime {

using dataflow::Box;
using dataflow::BoxValue;
using dataflow::Edge;
using dataflow::Graph;
using dataflow::MemoCache;

/// The immutable dependency structure of one evaluation: for every box in
/// the transitive input closure of the targets, its resolved input edges (in
/// port order) and the boxes that consume it (one entry per consuming edge).
struct ParallelEngine::Plan {
  struct Node {
    const Box* box = nullptr;
    std::vector<Edge> inputs;
    std::vector<std::string> dependents;
  };
  std::unordered_map<std::string, Node> nodes;
};

/// The mutable scheduler state, shared between the calling thread and pool
/// tickets. Heap-allocated (shared_ptr) because a stale ticket may run after
/// RunPlan returns; such a ticket finds `ready` empty and touches nothing
/// else.
struct ParallelEngine::RunState {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::string> ready;
  size_t running = 0;
  std::unordered_map<std::string, size_t> deps;
  std::unordered_map<std::string, MemoCache::EntryPtr> done;
  bool has_error = false;
  Status error;
  // (box id, warning) pairs; sorted before reporting so the output is
  // deterministic regardless of the firing interleaving.
  std::vector<std::pair<std::string, std::string>> fire_warnings;
};

Status ParallelEngine::BuildPlan(const Graph& graph,
                                 const std::vector<std::string>& targets,
                                 Plan* plan) const {
  // Depth-first in port order, matching the serial Engine's traversal so a
  // dangling input is reported with the same message for the same box.
  std::function<Status(const std::string&)> visit =
      [&](const std::string& id) -> Status {
    if (plan->nodes.count(id) > 0) return Status::OK();
    TIOGA2_ASSIGN_OR_RETURN(const Box* box, graph.GetBox(id));
    plan->nodes.emplace(id, Plan::Node{});  // dedup marker; filled below
    Plan::Node node;
    node.box = box;
    size_t num_inputs = box->InputTypes().size();
    for (size_t port = 0; port < num_inputs; ++port) {
      std::optional<Edge> edge = graph.IncomingEdge(id, port);
      if (!edge.has_value()) {
        return Status::FailedPrecondition(
            "box '" + id + "' (" + box->type_name() + ") input " +
            std::to_string(port) + " is not connected");
      }
      node.inputs.push_back(*edge);
      TIOGA2_RETURN_IF_ERROR(visit(edge->from_box));
    }
    plan->nodes[id] = std::move(node);
    return Status::OK();
  };
  for (const std::string& target : targets) {
    TIOGA2_RETURN_IF_ERROR(visit(target));
  }
  for (auto& [id, node] : plan->nodes) {
    for (const Edge& edge : node.inputs) {
      plan->nodes.at(edge.from_box).dependents.push_back(id);
    }
  }
  return Status::OK();
}

std::function<void()> ParallelEngine::MakeTicket(
    Plan* plan, std::shared_ptr<RunState> state) {
  return [this, plan, state = std::move(state)] {
    std::string id;
    {
      std::lock_guard<std::mutex> lock(state->mu);
      if (state->ready.empty()) return;
      id = std::move(state->ready.front());
      state->ready.pop_front();
      ++state->running;
    }
    // A claimed box means RunPlan is still waiting on this state, so `this`
    // and `plan` are alive.
    FireBox(plan, state, id);
  };
}

void ParallelEngine::FireBox(Plan* plan,
                             const std::shared_ptr<RunState>& state,
                             const std::string& box_id) {
  const Plan::Node& node = plan->nodes.at(box_id);
  dataflow::ExecContext ctx;
  ctx.catalog = catalog_;
  ctx.policy = policy_.value_or(db::DefaultExecPolicy());
  // Lend the box our own pool for intra-operator morsel fan-out. Safe even
  // though this box is itself running on a pool worker: ForEachMorsel's
  // submitter claims morsels too and never blocks on pool capacity
  // (db/morsel.h), so inter-box and intra-box work share the workers
  // without the scheduler deadlocking.
  if (ctx.policy.runner == nullptr) ctx.policy.runner = pool_;

  Status failure;
  MemoCache::EntryPtr entry;
  std::vector<MemoCache::EntryPtr> upstream;
  bool aborted = false;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    aborted = state->has_error;
    if (!aborted) {
      upstream.reserve(node.inputs.size());
      for (const Edge& edge : node.inputs) {
        upstream.push_back(state->done.at(edge.from_box));
      }
    }
  }

  if (!aborted) {
    // The exact stamp algebra of the serial Engine (dataflow/stamp.h).
    uint64_t stamp = dataflow::BoxSignature(*node.box, ctx);
    for (size_t port = 0; port < node.inputs.size(); ++port) {
      const Edge& edge = node.inputs[port];
      stamp = dataflow::HashCombine(stamp, upstream[port]->stamp);
      stamp = dataflow::HashCombine(stamp, edge.from_port);
      stamp = dataflow::HashCombine(stamp, port);
      if (edge.from_port >= upstream[port]->outputs.size()) {
        failure = Status::Internal("box '" + edge.from_box +
                                   "' produced no output " +
                                   std::to_string(edge.from_port));
        break;
      }
    }
    if (failure.ok()) {
      entry = cache_->Lookup(box_id, stamp);
      if (entry == nullptr && shared_cache_ != nullptr) {
        // Cross-session tier: an identical subgraph evaluated by any other
        // session yields the same stamp and byte-identical outputs; adopt
        // its entry into the local cache instead of firing.
        if (MemoCache::EntryPtr shared = shared_cache_->Lookup(stamp)) {
          entry = cache_->InsertEntry(box_id, std::move(shared));
          shared_hits_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (entry != nullptr) {
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        if (metrics_ != nullptr) metrics_->RecordCacheHit();
      } else {
        if (metrics_ != nullptr) metrics_->RecordCacheMiss();
        std::vector<dataflow::PortType> input_types = node.box->InputTypes();
        std::vector<BoxValue> inputs;
        inputs.reserve(input_types.size());
        for (size_t port = 0; port < input_types.size() && failure.ok(); ++port) {
          Result<BoxValue> coerced = dataflow::CoerceBoxValue(
              upstream[port]->outputs[node.inputs[port].from_port],
              input_types[port]);
          if (!coerced.ok()) {
            failure = coerced.status();
          } else {
            inputs.push_back(std::move(coerced).value());
          }
        }
        if (failure.ok()) {
          auto start = std::chrono::steady_clock::now();
          Result<std::vector<BoxValue>> outputs = node.box->Fire(inputs, ctx);
          double micros = std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - start)
                              .count();
          if (!ctx.warnings.empty()) {
            std::lock_guard<std::mutex> lock(state->mu);
            for (std::string& warning : ctx.warnings) {
              state->fire_warnings.emplace_back(box_id, std::move(warning));
            }
          }
          if (!outputs.ok()) {
            failure = outputs.status();
          } else {
            boxes_fired_.fetch_add(1, std::memory_order_relaxed);
            if (metrics_ != nullptr) {
              metrics_->RecordBoxFire(node.box->type_name(), micros);
            }
            if (outputs->size() != node.box->OutputTypes().size()) {
              failure = Status::Internal(
                  "box '" + box_id + "' (" + node.box->type_name() +
                  ") fired " + std::to_string(outputs->size()) +
                  " outputs, declared " +
                  std::to_string(node.box->OutputTypes().size()));
            } else {
              entry = cache_->Insert(box_id, stamp, std::move(outputs).value());
              if (shared_cache_ != nullptr) shared_cache_->Insert(entry);
            }
          }
        }
      }
    }
  }

  size_t newly_ready = 0;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    if (!failure.ok()) {
      if (!state->has_error) {
        state->has_error = true;
        state->error = std::move(failure);
      }
    } else if (!aborted && entry != nullptr) {
      state->done[box_id] = entry;
      if (!state->has_error) {
        for (const std::string& dependent : node.dependents) {
          if (--state->deps.at(dependent) == 0) {
            state->ready.push_back(dependent);
            ++newly_ready;
          }
        }
      }
    }
    --state->running;
    state->cv.notify_all();
  }
  // One ticket per released dependent; the caller thread also drains, so
  // these are extra width, not required for progress.
  for (size_t i = 0; i < newly_ready; ++i) {
    pool_->Submit(MakeTicket(plan, state));
  }
  if (metrics_ != nullptr && newly_ready > 0) {
    metrics_->RecordQueueDepth(pool_->QueueDepth());
  }
}

Status ParallelEngine::RunPlan(
    Plan* plan, std::unordered_map<std::string, MemoCache::EntryPtr>* done) {
  if (plan->nodes.empty()) return Status::OK();
  auto state = std::make_shared<RunState>();
  for (auto& [id, node] : plan->nodes) {
    state->deps[id] = node.inputs.size();
    if (node.inputs.empty()) state->ready.push_back(id);
  }
  // The caller runs one initially-ready box itself; pool tickets cover the
  // rest.
  size_t initial = state->ready.size();
  for (size_t i = 1; i < initial; ++i) pool_->Submit(MakeTicket(plan, state));
  if (metrics_ != nullptr) metrics_->RecordQueueDepth(pool_->QueueDepth());

  std::unique_lock<std::mutex> lock(state->mu);
  for (;;) {
    if (!state->ready.empty()) {
      std::string id = std::move(state->ready.front());
      state->ready.pop_front();
      ++state->running;
      lock.unlock();
      FireBox(plan, state, id);
      lock.lock();
    } else if (state->running == 0) {
      break;
    } else {
      state->cv.wait(lock);
    }
  }

  std::sort(state->fire_warnings.begin(), state->fire_warnings.end());
  for (auto& [id, text] : state->fire_warnings) {
    warnings_.push_back(std::move(text));
  }
  if (state->has_error) return state->error;
  *done = std::move(state->done);
  return Status::OK();
}

Result<BoxValue> ParallelEngine::Evaluate(const Graph& graph,
                                          const std::string& box_id,
                                          size_t output_port) {
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  warnings_.clear();
  Plan plan;
  TIOGA2_RETURN_IF_ERROR(BuildPlan(graph, {box_id}, &plan));
  std::unordered_map<std::string, MemoCache::EntryPtr> done;
  TIOGA2_RETURN_IF_ERROR(RunPlan(&plan, &done));
  const MemoCache::EntryPtr& entry = done.at(box_id);
  if (output_port >= entry->outputs.size()) {
    return Status::OutOfRange("box '" + box_id + "' has no output " +
                              std::to_string(output_port));
  }
  return entry->outputs[output_port];
}

Status ParallelEngine::EvaluateAll(const Graph& graph) {
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  warnings_.clear();
  TIOGA2_ASSIGN_OR_RETURN(std::vector<std::string> order,
                          graph.TopologicalOrder());
  // Same skip policy (and warnings) as the serial Engine: boxes with a
  // dangling input, and boxes downstream of them, cannot fire.
  std::vector<std::string> blocked = graph.BoxesWithDanglingInputs();
  std::vector<std::string> targets;
  for (const std::string& id : order) {
    if (std::find(blocked.begin(), blocked.end(), id) != blocked.end()) {
      boxes_skipped_.fetch_add(1, std::memory_order_relaxed);
      warnings_.push_back("EvaluateAll: skipped box '" + id +
                          "' (dangling input, cannot fire)");
      continue;
    }
    TIOGA2_ASSIGN_OR_RETURN(const Box* box, graph.GetBox(id));
    bool upstream_blocked = false;
    size_t num_inputs = box->InputTypes().size();
    for (size_t port = 0; port < num_inputs; ++port) {
      std::optional<Edge> edge = graph.IncomingEdge(id, port);
      if (edge.has_value() &&
          std::find(blocked.begin(), blocked.end(), edge->from_box) !=
              blocked.end()) {
        upstream_blocked = true;
      }
    }
    if (upstream_blocked) {
      blocked.push_back(id);
      boxes_skipped_.fetch_add(1, std::memory_order_relaxed);
      warnings_.push_back("EvaluateAll: skipped box '" + id +
                          "' (upstream of it has a dangling input)");
      continue;
    }
    targets.push_back(id);
  }
  if (targets.empty()) return Status::OK();
  Plan plan;
  TIOGA2_RETURN_IF_ERROR(BuildPlan(graph, targets, &plan));
  std::unordered_map<std::string, MemoCache::EntryPtr> done;
  return RunPlan(&plan, &done);
}

size_t ParallelEngine::InvalidateDownstreamOf(const Graph& graph,
                                              const std::string& table) {
  size_t evicted = 0;
  for (const std::string& id : dataflow::BoxesDownstreamOfTable(graph, table)) {
    if (cache_->StampOf(id).has_value()) {
      cache_->Erase(id);
      ++evicted;
    }
  }
  return evicted;
}

Result<dataflow::InvalidationResult> ParallelEngine::Invalidate(
    const Graph& graph, const dataflow::Invalidation& inv) {
  dataflow::InvalidationResult result;
  switch (inv.scope()) {
    case dataflow::Invalidation::Scope::kAll:
      result.entries_evicted = cache_->size();
      cache_->Clear();
      return result;
    case dataflow::Invalidation::Scope::kDownstreamOf:
      result.entries_evicted = InvalidateDownstreamOf(graph, inv.table());
      return result;
    case dataflow::Invalidation::Scope::kDelta: {
      db::ExecPolicy delta_policy = policy_.value_or(db::DefaultExecPolicy());
      // Delta propagation runs on the calling thread, but any box it re-fires
      // may still fan its morsels out across the pool.
      if (delta_policy.runner == nullptr) delta_policy.runner = pool_;
      TIOGA2_ASSIGN_OR_RETURN(
          result, dataflow::PropagateDelta(graph, catalog_, inv.delta(), *cache_,
                                           delta_policy));
      deltas_applied_.fetch_add(result.deltas_applied, std::memory_order_relaxed);
      delta_fallbacks_.fetch_add(result.delta_fallbacks, std::memory_order_relaxed);
      if (metrics_ != nullptr) {
        metrics_->RecordDeltaApplied(result.deltas_applied);
        metrics_->RecordDeltaFallback(result.delta_fallbacks);
      }
      for (const std::string& warning : result.warnings) {
        warnings_.push_back(warning);
      }
      return result;
    }
  }
  return Status::Internal("unknown invalidation scope");
}

ParallelEngineStats ParallelEngine::stats() const {
  ParallelEngineStats stats;
  stats.boxes_fired = boxes_fired_.load(std::memory_order_relaxed);
  stats.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  stats.shared_hits = shared_hits_.load(std::memory_order_relaxed);
  stats.evaluations = evaluations_.load(std::memory_order_relaxed);
  stats.boxes_skipped = boxes_skipped_.load(std::memory_order_relaxed);
  stats.deltas_applied = deltas_applied_.load(std::memory_order_relaxed);
  stats.delta_fallbacks = delta_fallbacks_.load(std::memory_order_relaxed);
  return stats;
}

void ParallelEngine::ResetStats() {
  boxes_fired_.store(0, std::memory_order_relaxed);
  cache_hits_.store(0, std::memory_order_relaxed);
  shared_hits_.store(0, std::memory_order_relaxed);
  evaluations_.store(0, std::memory_order_relaxed);
  boxes_skipped_.store(0, std::memory_order_relaxed);
  deltas_applied_.store(0, std::memory_order_relaxed);
  delta_fallbacks_.store(0, std::memory_order_relaxed);
}

}  // namespace tioga2::runtime
