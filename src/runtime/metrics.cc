#include "runtime/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "dataflow/shared_memo_cache.h"
#include "expr/batch.h"
#include "expr/simd/simd.h"
#include "runtime/epoch.h"
#include "storage/storage_metrics.h"

namespace tioga2::runtime {

std::string EscapeJsonString(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

size_t BucketFor(double micros) {
  if (micros < 1.0) return 0;
  size_t bucket = 1 + static_cast<size_t>(std::log2(micros));
  return std::min(bucket, LatencyHistogram::kNumBuckets - 1);
}

std::string FormatDouble(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  return buffer;
}

}  // namespace

void LatencyHistogram::Record(double micros) {
  if (micros < 0) micros = 0;
  ++buckets_[BucketFor(micros)];
  ++count_;
  sum_micros_ += micros;
  max_micros_ = std::max(max_micros_, micros);
}

double LatencyHistogram::QuantileUpperBoundMicros(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(count_)));
  rank = std::max<uint64_t>(rank, 1);
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      double bound = i == 0 ? 1.0 : std::pow(2.0, static_cast<double>(i));
      // The bucket upper bound can exceed the largest observation (a 1100 µs
      // max lands in the [1024, 2048) bucket, whose bound is 2048); clamping
      // keeps every reported quantile <= max_us in the JSON.
      return std::min(bound, max_micros_);
    }
  }
  return max_micros_;
}

std::string LatencyHistogram::ToJson() const {
  std::string json = "{\"count\":" + std::to_string(count_);
  json += ",\"mean_us\":" + FormatDouble(mean_micros());
  json += ",\"max_us\":" + FormatDouble(max_micros_);
  json += ",\"p50_us\":" + FormatDouble(QuantileUpperBoundMicros(0.5));
  json += ",\"p99_us\":" + FormatDouble(QuantileUpperBoundMicros(0.99));
  json += ",\"buckets\":[";
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (i > 0) json += ',';
    json += std::to_string(buckets_[i]);
  }
  json += "]}";
  return json;
}

void Metrics::RecordBoxFire(const std::string& box_type, double micros) {
  std::lock_guard<std::mutex> lock(mu_);
  box_fires_[box_type].Record(micros);
  ++counters_.boxes_fired;
}

void Metrics::RecordCacheHit() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.cache_hits;
}

void Metrics::RecordCacheMiss() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.cache_misses;
}

void Metrics::RecordQueueDepth(size_t depth) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.max_queue_depth = std::max(counters_.max_queue_depth, depth);
}

void Metrics::RecordDeltaApplied(uint64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.deltas_applied += count;
}

void Metrics::RecordDeltaFallback(uint64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.delta_fallbacks += count;
}

void Metrics::RecordRequestComplete(double micros, const std::string& tag) {
  std::lock_guard<std::mutex> lock(mu_);
  request_latency_.Record(micros);
  if (!tag.empty()) request_classes_[tag].Record(micros);
  ++counters_.requests_completed;
}

void Metrics::AttachSharedCache(const dataflow::SharedMemoCache* shared) {
  std::lock_guard<std::mutex> lock(mu_);
  shared_cache_ = shared;
}

void Metrics::RecordRequestRejected() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.requests_rejected;
}

void Metrics::RecordRequestTimedOut() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.requests_timed_out;
}

LatencyHistogram Metrics::request_latency() const {
  std::lock_guard<std::mutex> lock(mu_);
  return request_latency_;
}

std::map<std::string, LatencyHistogram> Metrics::request_classes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return request_classes_;
}

MetricsSnapshot Metrics::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap = counters_;
  if (shared_cache_ != nullptr) {
    dataflow::SharedMemoCache::Stats shared = shared_cache_->stats();
    snap.shared_cache_hits = shared.hits;
    snap.shared_cache_misses = shared.misses;
    snap.shared_cache_inserts = shared.inserts;
    snap.shared_cache_evictions = shared.evictions;
    snap.shared_cache_entries = shared.entries;
  }
  const expr::BatchMetrics& batch = expr::BatchMetrics::Global();
  snap.batch_restrict_batches = batch.restrict_batches.load();
  snap.batch_restrict_rows = batch.restrict_rows.load();
  snap.batch_nodes_vectorized = batch.nodes_vectorized.load();
  snap.batch_nodes_fallback = batch.nodes_fallback.load();
  snap.batch_morsel_groups = batch.morsel_groups.load();
  snap.batch_morsel_groups_parallel = batch.morsel_groups_parallel.load();
  snap.batch_morsels_executed = batch.morsels_executed.load();
  snap.batch_morsels_stolen = batch.morsels_stolen.load();
  snap.batch_morsel_parallel_rows = batch.morsel_parallel_rows.load();
  const storage::StorageMetrics& stor = storage::StorageMetrics::Global();
  snap.wal_records = stor.wal_records.load();
  snap.wal_bytes = stor.wal_bytes.load();
  snap.wal_fsyncs = stor.wal_fsyncs.load();
  snap.snapshots_written = stor.snapshots_written.load();
  snap.snapshot_ms = static_cast<double>(stor.snapshot_us_last.load()) / 1000.0;
  snap.recovery_ms = static_cast<double>(stor.recovery_us_last.load()) / 1000.0;
  EpochDomain::Stats epoch = EpochDomain::Global().stats();
  snap.epoch_current = epoch.epoch;
  snap.epoch_advances = epoch.advances;
  snap.epoch_retired = epoch.retired;
  snap.epoch_reclaimed = epoch.reclaimed;
  snap.epoch_pending = epoch.pending;
  snap.epoch_pins = epoch.pins;
  snap.epoch_overflow_pins = epoch.overflow_pins;
  return snap;
}

std::string Metrics::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string json = "{";
  json += "\"cache\":{\"hits\":" + std::to_string(counters_.cache_hits) +
          ",\"misses\":" + std::to_string(counters_.cache_misses) + "}";
  json += ",\"requests\":{\"completed\":" +
          std::to_string(counters_.requests_completed) +
          ",\"rejected\":" + std::to_string(counters_.requests_rejected) +
          ",\"timed_out\":" + std::to_string(counters_.requests_timed_out) +
          ",\"latency\":" + request_latency_.ToJson();
  json += ",\"classes\":{";
  {
    bool first_class = true;
    for (const auto& [tag, histogram] : request_classes_) {
      if (!first_class) json += ',';
      first_class = false;
      json += "\"" + EscapeJsonString(tag) + "\":" + histogram.ToJson();
    }
  }
  json += "}}";
  if (shared_cache_ != nullptr) {
    dataflow::SharedMemoCache::Stats shared = shared_cache_->stats();
    json += ",\"shared_cache\":{\"hits\":" + std::to_string(shared.hits) +
            ",\"misses\":" + std::to_string(shared.misses) +
            ",\"inserts\":" + std::to_string(shared.inserts) +
            ",\"evictions\":" + std::to_string(shared.evictions) +
            ",\"entries\":" + std::to_string(shared.entries) +
            ",\"capacity\":" + std::to_string(shared_cache_->capacity()) + "}";
  }
  json += ",\"queue\":{\"max_depth\":" +
          std::to_string(counters_.max_queue_depth) + "}";
  json += ",\"invalidation\":{\"deltas_applied\":" +
          std::to_string(counters_.deltas_applied) +
          ",\"delta_fallbacks\":" + std::to_string(counters_.delta_fallbacks) + "}";
  json += ",\"box_fires\":{";
  bool first = true;
  for (const auto& [type, histogram] : box_fires_) {
    if (!first) json += ',';
    first = false;
    json += "\"" + EscapeJsonString(type) + "\":" + histogram.ToJson();
  }
  json += "}";
  const expr::BatchMetrics& batch = expr::BatchMetrics::Global();
  json += ",\"batch_eval\":{";
  json += "\"restrict_batches\":" + std::to_string(batch.restrict_batches.load());
  json += ",\"restrict_rows\":" + std::to_string(batch.restrict_rows.load());
  json += ",\"restrict_scalar_rows\":" +
          std::to_string(batch.restrict_scalar_rows.load());
  json += ",\"sort_key_batches\":" + std::to_string(batch.sort_key_batches.load());
  json += ",\"sort_scalar_fallbacks\":" +
          std::to_string(batch.sort_scalar_fallbacks.load());
  json += ",\"display_attr_batches\":" +
          std::to_string(batch.display_attr_batches.load());
  json += ",\"display_attr_rows\":" + std::to_string(batch.display_attr_rows.load());
  json += ",\"render_location_batches\":" +
          std::to_string(batch.render_location_batches.load());
  json += ",\"render_scalar_fallbacks\":" +
          std::to_string(batch.render_scalar_fallbacks.load());
  json += ",\"join_hash_build_rows\":" +
          std::to_string(batch.join_hash_build_rows.load());
  json += ",\"join_hash_probe_rows\":" +
          std::to_string(batch.join_hash_probe_rows.load());
  json += ",\"join_nested_batches\":" +
          std::to_string(batch.join_nested_batches.load());
  json += ",\"nodes_vectorized\":" + std::to_string(batch.nodes_vectorized.load());
  json += ",\"nodes_fallback\":" + std::to_string(batch.nodes_fallback.load());
  json += ",\"simd_level\":\"" +
          std::string(expr::simd::LevelName(expr::simd::BestLevel())) + "\"";
  json += ",\"simd_batches_sse2\":" +
          std::to_string(batch.simd_batches_sse2.load());
  json += ",\"simd_batches_avx2\":" +
          std::to_string(batch.simd_batches_avx2.load());
  json += ",\"simd_rows\":" + std::to_string(batch.simd_rows.load());
  json += ",\"simd_scalar_fallbacks\":" +
          std::to_string(batch.simd_scalar_fallbacks.load());
  json += ",\"dict_columns_built\":" +
          std::to_string(batch.dict_columns_built.load());
  json += ",\"dict_simd_batches\":" +
          std::to_string(batch.dict_simd_batches.load());
  json += ",\"dict_remap_fallbacks\":" +
          std::to_string(batch.dict_remap_fallbacks.load());
  json += ",\"sparse_gathers\":" + std::to_string(batch.sparse_gathers.load());
  json += ",\"morsel_groups\":" + std::to_string(batch.morsel_groups.load());
  json += ",\"morsel_groups_parallel\":" +
          std::to_string(batch.morsel_groups_parallel.load());
  json += ",\"morsels_executed\":" +
          std::to_string(batch.morsels_executed.load());
  json += ",\"morsels_stolen\":" + std::to_string(batch.morsels_stolen.load());
  json += ",\"morsel_parallel_rows\":" +
          std::to_string(batch.morsel_parallel_rows.load());
  json += "}";
  const storage::StorageMetrics& stor = storage::StorageMetrics::Global();
  json += ",\"storage\":{";
  json += "\"wal_records\":" + std::to_string(stor.wal_records.load());
  json += ",\"wal_bytes\":" + std::to_string(stor.wal_bytes.load());
  json += ",\"wal_fsyncs\":" + std::to_string(stor.wal_fsyncs.load());
  json += ",\"wal_group_commits\":" +
          std::to_string(stor.wal_group_commits.load());
  json += ",\"wal_rotations\":" + std::to_string(stor.wal_rotations.load());
  json += ",\"wal_segments_truncated\":" +
          std::to_string(stor.wal_segments_truncated.load());
  json += ",\"snapshots_written\":" +
          std::to_string(stor.snapshots_written.load());
  json += ",\"snapshot_bytes\":" + std::to_string(stor.snapshot_bytes.load());
  json += ",\"snapshot_ms\":" +
          FormatDouble(static_cast<double>(stor.snapshot_us_last.load()) / 1000.0);
  json += ",\"recovery_ms\":" +
          FormatDouble(static_cast<double>(stor.recovery_us_last.load()) / 1000.0);
  json += ",\"recovery_records_replayed\":" +
          std::to_string(stor.recovery_records_replayed.load());
  json += "}";
  EpochDomain::Stats epoch = EpochDomain::Global().stats();
  json += ",\"epoch\":{";
  json += "\"epoch\":" + std::to_string(epoch.epoch);
  json += ",\"advances\":" + std::to_string(epoch.advances);
  json += ",\"retired\":" + std::to_string(epoch.retired);
  json += ",\"reclaimed\":" + std::to_string(epoch.reclaimed);
  json += ",\"pending\":" + std::to_string(epoch.pending);
  json += ",\"pins\":" + std::to_string(epoch.pins);
  json += ",\"overflow_pins\":" + std::to_string(epoch.overflow_pins);
  json += "}}";
  return json;
}

void Metrics::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  box_fires_.clear();
  request_latency_ = LatencyHistogram{};
  request_classes_.clear();
  counters_ = MetricsSnapshot{};
  expr::BatchMetrics::Global().Reset();
}

}  // namespace tioga2::runtime
