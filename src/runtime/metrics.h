#ifndef TIOGA2_RUNTIME_METRICS_H_
#define TIOGA2_RUNTIME_METRICS_H_

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace tioga2::dataflow {
class SharedMemoCache;  // dataflow/shared_memo_cache.h
}

namespace tioga2::runtime {

/// Escapes `s` for embedding inside a JSON string literal: backslash, double
/// quote, and control characters (U+0000..U+001F, as \n/\t/... or \u00XX).
/// Every DYNAMIC key or value interpolated into hand-built JSON — request
/// tags, box-type names — must pass through here; a tag containing `"` would
/// otherwise split the key and corrupt the whole document.
std::string EscapeJsonString(const std::string& s);

/// A log2-bucketed latency histogram (microseconds). Bucket i counts
/// observations in [2^(i-1), 2^i) µs; the first bucket is [0, 1) µs and the
/// last absorbs everything beyond. Cheap enough to record per box firing.
class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = 24;  // up to ~8.4 s

  void Record(double micros);

  uint64_t count() const { return count_; }
  double sum_micros() const { return sum_micros_; }
  double max_micros() const { return max_micros_; }
  double mean_micros() const {
    return count_ == 0 ? 0.0 : sum_micros_ / static_cast<double>(count_);
  }

  /// Upper bound of the bucket containing the q-quantile (q in [0, 1]) —
  /// a coarse but monotone percentile estimate, clamped to max_micros() so
  /// a reported quantile can never exceed the largest observation (the raw
  /// bucket bound 2^i can).
  double QuantileUpperBoundMicros(double q) const;

  /// {"count":N,"mean_us":...,"max_us":...,"p50_us":...,"p99_us":...,
  ///  "buckets":[...]}
  std::string ToJson() const;

 private:
  std::array<uint64_t, kNumBuckets> buckets_{};
  uint64_t count_ = 0;
  double sum_micros_ = 0;
  double max_micros_ = 0;
};

/// Counters snapshot for quick assertions (see Metrics::snapshot()).
struct MetricsSnapshot {
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t boxes_fired = 0;
  uint64_t requests_completed = 0;
  uint64_t requests_rejected = 0;
  uint64_t requests_timed_out = 0;
  // Cross-session shared memo tier (dataflow::SharedMemoCache), copied from
  // the cache attached via AttachSharedCache at snapshot time; all zero when
  // no shared tier is attached.
  uint64_t shared_cache_hits = 0;
  uint64_t shared_cache_misses = 0;
  uint64_t shared_cache_inserts = 0;
  uint64_t shared_cache_evictions = 0;
  size_t shared_cache_entries = 0;
  // Delta propagation outcomes (see dataflow::PropagateDelta): boxes whose
  // cached outputs were maintained in place vs. evicted for recompute.
  uint64_t deltas_applied = 0;
  uint64_t delta_fallbacks = 0;
  size_t max_queue_depth = 0;
  // Vectorized execution counters, copied from expr::BatchMetrics::Global()
  // at snapshot time (they are process-wide, not per-Metrics; see below).
  uint64_t batch_restrict_batches = 0;
  uint64_t batch_restrict_rows = 0;
  uint64_t batch_nodes_vectorized = 0;
  uint64_t batch_nodes_fallback = 0;
  // Morsel-driven fan-out counters (db/morsel.h), same global-copy pattern.
  uint64_t batch_morsel_groups = 0;
  uint64_t batch_morsel_groups_parallel = 0;
  uint64_t batch_morsels_executed = 0;
  uint64_t batch_morsels_stolen = 0;
  uint64_t batch_morsel_parallel_rows = 0;
  // Persistence counters, copied from storage::StorageMetrics::Global() at
  // snapshot time (same pattern: storage cannot depend on runtime).
  uint64_t wal_records = 0;
  uint64_t wal_bytes = 0;
  uint64_t wal_fsyncs = 0;
  uint64_t snapshots_written = 0;
  double snapshot_ms = 0.0;
  double recovery_ms = 0.0;
  // Epoch-based reclamation (runtime::EpochDomain::Global()), copied at
  // snapshot time: the process-wide domain behind every lock-free read path.
  uint64_t epoch_current = 0;
  uint64_t epoch_advances = 0;
  uint64_t epoch_retired = 0;
  uint64_t epoch_reclaimed = 0;
  uint64_t epoch_pending = 0;
  uint64_t epoch_pins = 0;
  uint64_t epoch_overflow_pins = 0;
};

/// The observability surface of the runtime: per-box-type fire latency
/// histograms, memo-cache hit/miss counters, request outcomes, and queue
/// depth. All methods are thread-safe; benches export ToJson() into
/// bench_out/.
class Metrics {
 public:
  Metrics() = default;
  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  void RecordBoxFire(const std::string& box_type, double micros);
  void RecordCacheHit();
  void RecordCacheMiss();
  void RecordQueueDepth(size_t depth);
  void RecordDeltaApplied(uint64_t count = 1);
  void RecordDeltaFallback(uint64_t count = 1);
  /// Records a completed request's latency. A nonempty `tag` (the request
  /// class from SessionServer::Request::tag) additionally lands in that
  /// class's own histogram, serialized under "requests"."classes" in the
  /// JSON — the per-request-class latency breakdown the load harness
  /// reports.
  void RecordRequestComplete(double micros, const std::string& tag = "");
  void RecordRequestRejected();
  void RecordRequestTimedOut();

  /// Attaches the cross-session shared memo tier whose counters snapshot()
  /// and ToJson() should surface (null detaches). Non-owning; the pointee
  /// must outlive this Metrics (or be detached first).
  void AttachSharedCache(const dataflow::SharedMemoCache* shared);

  /// Includes the process-wide expr::BatchMetrics counters (vectorized
  /// operator batches, fallback rows). Those counters are global — shared
  /// across Metrics instances — because the db layer, which records them,
  /// cannot depend on runtime.
  MetricsSnapshot snapshot() const;

  /// Copies of the aggregate and per-class request-latency histograms, for
  /// callers (the load harness) that need numeric quantiles rather than the
  /// JSON rendering.
  LatencyHistogram request_latency() const;
  std::map<std::string, LatencyHistogram> request_classes() const;

  /// The whole surface as a JSON object:
  /// {"cache":{...},"requests":{...},"queue":{...},
  ///  "box_fires":{"Restrict":{...}},"batch_eval":{...}}
  /// The "batch_eval" section reports the vectorized execution counters:
  /// batches run per operator (restrict/sort/display/render) and how many
  /// expression nodes executed as typed loops versus element-wise fallback.
  std::string ToJson() const;

  /// Zeroes all counters and histograms, including the process-wide
  /// expr::BatchMetrics (so two Metrics instances resetting concurrently
  /// would clobber each other's batch counters — benches and tests reset
  /// once, up front).
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, LatencyHistogram> box_fires_;
  LatencyHistogram request_latency_;
  /// Per-request-class latency (keyed by Request::tag; untagged requests
  /// land only in the aggregate request_latency_).
  std::map<std::string, LatencyHistogram> request_classes_;
  const dataflow::SharedMemoCache* shared_cache_ = nullptr;
  MetricsSnapshot counters_;
};

}  // namespace tioga2::runtime

#endif  // TIOGA2_RUNTIME_METRICS_H_
