#ifndef TIOGA2_RUNTIME_EPOCH_H_
#define TIOGA2_RUNTIME_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "common/reclaim.h"

namespace tioga2::runtime {

/// Epoch-based reclamation (EBR), the memory-reclamation half of the
/// lock-free read paths (DESIGN.md §13). The classic three-phase scheme:
///
///  - A global epoch counter only ever moves forward.
///  - A reader pins itself into one of `num_slots` cache-line-padded slots,
///    recording the epoch it entered at (Pin confirms the epoch after
///    publishing the slot, closing the late-pin race against a concurrent
///    advance). While pinned it may dereference any pointer it loads from a
///    managed atomic.
///  - A writer that unlinks an object calls Retire; the deleter is tagged
///    with the current epoch and parked on a limbo list.
///  - The epoch advances from E to E+1 only when every pinned slot is at E
///    (TryAdvance); an object retired at epoch e is reclaimed once the
///    global epoch reaches e+2, because by then every pin that could have
///    loaded the object before it was unlinked has been released.
///
/// Writers are expected to be rare: Retire and TryAdvance serialize on a
/// mutex, and Retire drives advancement and reclamation inline so no
/// background thread is needed. Readers never block: Pin is a CAS into a
/// hashed slot (plus an epoch confirm), Unpin a store. If every slot is
/// occupied — more concurrent pins than slots — Pin falls back to a shared
/// lock that simply blocks advancement until released; reclamation is
/// delayed, never unsafe.
///
/// The Global() domain is the one the SessionServer wires into the catalog,
/// the shared memo tier, and the canvas registries; it is never destroyed,
/// so retired objects whose deleters have not yet run are reclaimed by a
/// later Retire/TryAdvance rather than lost.
class EpochDomain final : public common::ReclamationDomain {
 public:
  /// Counter snapshot, surfaced through runtime::Metrics JSON ("epoch").
  struct Stats {
    uint64_t epoch = 0;       ///< current global epoch
    uint64_t advances = 0;    ///< successful epoch advances
    uint64_t retired = 0;     ///< objects handed to Retire
    uint64_t reclaimed = 0;   ///< deleters actually run
    uint64_t pending = 0;     ///< retired - reclaimed (limbo size)
    uint64_t pins = 0;        ///< total Pin calls
    uint64_t overflow_pins = 0;  ///< pins that hit the slot-exhaustion fallback
  };

  explicit EpochDomain(size_t num_slots = 128);
  /// Runs every pending deleter. By contract no pins are live at this point.
  ~EpochDomain() override;

  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  // common::ReclamationDomain
  uint64_t Pin() override;
  void Unpin(uint64_t ticket) override;
  void Retire(std::function<void()> deleter) override;

  /// Attempts one epoch advance and reclaims whatever became safe. Returns
  /// true iff the epoch moved. Retire calls this inline; tests call it to
  /// drive reclamation deterministically.
  bool TryAdvance();

  Stats stats() const;

  /// The process-wide domain every server-wired structure shares.
  static EpochDomain& Global();

 private:
  struct alignas(64) Slot {
    /// kSlotFree, or the epoch the occupying reader pinned at (>= kFirstEpoch).
    std::atomic<uint64_t> state{0};
  };
  struct Retired {
    uint64_t epoch;
    std::function<void()> deleter;
  };

  static constexpr uint64_t kSlotFree = 0;
  static constexpr uint64_t kFirstEpoch = 2;
  static constexpr uint64_t kOverflowTicket = ~uint64_t{0};

  /// Advances the epoch if every pinned slot is at the current one and no
  /// overflow pin is live. Caller holds mu_.
  bool TryAdvanceLocked();
  /// Moves every limbo entry whose epoch is <= current-2 into `ready`.
  /// Caller holds mu_; deleters run after mu_ is released.
  void TakeReclaimableLocked(std::vector<std::function<void()>>* ready);
  /// Unpin's cheap path: advance/reclaim only if the lock is free.
  void MaybeAdvanceNonBlocking();

  const size_t num_slots_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> epoch_{kFirstEpoch};

  /// Slot-exhaustion fallback: overflow pins hold it shared; TryAdvance
  /// try-locks it exclusively, so any live overflow pin blocks advancement
  /// (and therefore reclamation) with full happens-before edges.
  std::shared_mutex fallback_mu_;

  mutable std::mutex mu_;  // limbo list + advancement (writer side)
  std::deque<Retired> limbo_;

  std::atomic<uint64_t> advances_{0};
  std::atomic<uint64_t> retired_{0};
  std::atomic<uint64_t> reclaimed_{0};
  std::atomic<uint64_t> pending_{0};
  std::atomic<uint64_t> pins_{0};
  std::atomic<uint64_t> overflow_pins_{0};
};

}  // namespace tioga2::runtime

#endif  // TIOGA2_RUNTIME_EPOCH_H_
