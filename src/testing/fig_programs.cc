#include "testing/fig_programs.h"

#include <cstdio>
#include <initializer_list>
#include <map>
#include <utility>

#include "types/value.h"

namespace tioga2::testing {
namespace {

using BoxSpec = std::pair<std::string, std::map<std::string, std::string>>;

/// Status-propagating builder for linear box chains (the bench files use an
/// exit-on-error equivalent; tests need the error back).
class Chain {
 public:
  explicit Chain(ui::Session* session) : session_(session) {}

  /// Starts a chain at a table source; returns the table box id.
  Result<std::string> Table(const std::string& table) {
    return session_->AddTable(table);
  }

  /// Appends `boxes` one after another starting from `from`; returns the id
  /// of the last box.
  Result<std::string> Extend(std::string from,
                             std::initializer_list<BoxSpec> boxes) {
    for (const auto& [type, params] : boxes) {
      TIOGA2_ASSIGN_OR_RETURN(std::string id, session_->AddBox(type, params));
      TIOGA2_RETURN_IF_ERROR(session_->Connect(from, 0, id, 0));
      from = id;
    }
    return from;
  }

 private:
  ui::Session* session_;
};

Status BuildFig1(Environment* env) {
  ui::Session& session = env->session();
  Chain chain(&session);
  TIOGA2_ASSIGN_OR_RETURN(std::string stations, chain.Table("Stations"));
  TIOGA2_ASSIGN_OR_RETURN(
      std::string tail,
      chain.Extend(stations, {{"Restrict", {{"predicate", "state = \"LA\""}}}}));
  return session.AddViewer(tail, 0, "fig1").status();
}

Status BuildFig3(Environment* env) {
  // The §4.2 database operations as program boxes: Restrict + Sample feeding
  // a Join (a diamond over two tables), plus a Project branch.
  ui::Session& session = env->session();
  Chain chain(&session);
  TIOGA2_ASSIGN_OR_RETURN(std::string stations, chain.Table("Stations"));
  TIOGA2_ASSIGN_OR_RETURN(
      std::string la,
      chain.Extend(stations, {{"Restrict", {{"predicate", "state = \"LA\""}}}}));
  TIOGA2_ASSIGN_OR_RETURN(std::string observations, chain.Table("Observations"));
  TIOGA2_ASSIGN_OR_RETURN(
      std::string sampled,
      chain.Extend(observations,
                   {{"Sample", {{"probability", "0.5"}, {"seed", "7"}}}}));
  TIOGA2_ASSIGN_OR_RETURN(
      std::string join,
      session.AddBox("Join", {{"predicate", "station_id = station_id_2"}}));
  TIOGA2_RETURN_IF_ERROR(session.Connect(la, 0, join, 0));
  TIOGA2_RETURN_IF_ERROR(session.Connect(sampled, 0, join, 1));
  TIOGA2_RETURN_IF_ERROR(session.AddViewer(join, 0, "fig3").status());
  TIOGA2_ASSIGN_OR_RETURN(
      std::string projected,
      chain.Extend(stations,
                   {{"Project", {{"columns", "station_id,name,state"}}}}));
  return session.AddViewer(projected, 0, "fig3proj").status();
}

Status BuildFig4(Environment* env) {
  // The Figure 4 Louisiana scatter (same shape as bench_common's
  // BuildScatter).
  ui::Session& session = env->session();
  Chain chain(&session);
  TIOGA2_ASSIGN_OR_RETURN(std::string stations, chain.Table("Stations"));
  TIOGA2_ASSIGN_OR_RETURN(
      std::string tail,
      chain.Extend(
          stations,
          {{"Restrict", {{"predicate", "state = \"LA\""}}},
           {"SetLocation", {{"dim", "0"}, {"attr", "longitude"}}},
           {"SetLocation", {{"dim", "1"}, {"attr", "latitude"}}},
           {"AddLocationDimension", {{"attr", "altitude"}}},
           {"AddAttribute",
            {{"name", "dot"}, {"definition", "circle(0.05, \"#c81e1e\", true)"}}},
           {"SetDisplay", {{"attr", "dot"}}}}));
  return session.AddViewer(tail, 0, "fig4").status();
}

Status BuildFig5(Environment* env) {
  // The Figure 5 attribute operations as a box chain.
  ui::Session& session = env->session();
  Chain chain(&session);
  TIOGA2_ASSIGN_OR_RETURN(std::string stations, chain.Table("Stations"));
  TIOGA2_ASSIGN_OR_RETURN(
      std::string tail,
      chain.Extend(
          stations,
          {{"AddAttribute",
            {{"name", "half_alt"}, {"definition", "altitude / 2"}}},
           {"SetAttribute",
            {{"name", "half_alt"}, {"definition", "altitude / 4"}}},
           {"ScaleAttribute", {{"name", "longitude"}, {"factor", "1.5"}}},
           {"TranslateAttribute", {{"name", "latitude"}, {"delta", "-29"}}},
           {"AddAttribute", {{"name", "dot"}, {"definition", "circle(2)"}}},
           {"AddAttribute",
            {{"name", "label"}, {"definition", "text(name, 8)"}}},
           {"CombineDisplays",
            {{"name", "both"},
             {"first", "dot"},
             {"second", "label"},
             {"dx", "0"},
             {"dy", "-10"}}},
           {"SetDisplay", {{"attr", "both"}}},
           {"SwapAttributes", {{"a", "longitude"}, {"b", "latitude"}}}}));
  return session.AddViewer(tail, 0, "fig5").status();
}

Status BuildFig7(Environment* env) {
  // Figure 7 drill-down: map + dots + labels with elevation ranges.
  ui::Session& session = env->session();
  Chain chain(&session);
  TIOGA2_ASSIGN_OR_RETURN(std::string stations, chain.Table("Stations"));
  TIOGA2_ASSIGN_OR_RETURN(
      std::string scatter,
      chain.Extend(stations,
                   {{"Restrict", {{"predicate", "state = \"LA\""}}},
                    {"SetLocation", {{"dim", "0"}, {"attr", "longitude"}}},
                    {"SetLocation", {{"dim", "1"}, {"attr", "latitude"}}},
                    {"AddLocationDimension", {{"attr", "altitude"}}}}));
  TIOGA2_ASSIGN_OR_RETURN(
      std::string dots,
      chain.Extend(
          scatter,
          {{"AddAttribute",
            {{"name", "c"},
             {"definition", "circle(0.05, \"#c81e1e\", true)"}}},
           {"SetDisplay", {{"attr", "c"}}},
           {"SetRange", {{"min", "2"}, {"max", "1000"}}},
           {"SetName", {{"name", "Dots"}}}}));
  TIOGA2_ASSIGN_OR_RETURN(
      std::string labels,
      chain.Extend(
          scatter,
          {{"AddAttribute",
            {{"name", "l"},
             {"definition",
              "circle(0.05, \"#c81e1e\", true) + offset(text(name, 0.1), "
              "-0.25, -0.2)"}}},
           {"SetDisplay", {{"attr", "l"}}},
           {"SetRange", {{"min", "0"}, {"max", "2"}}},
           {"SetName", {{"name", "Labels"}}}}));
  TIOGA2_ASSIGN_OR_RETURN(std::string map_table, chain.Table("LouisianaMap"));
  TIOGA2_ASSIGN_OR_RETURN(
      std::string map,
      chain.Extend(
          map_table,
          {{"SetLocation", {{"dim", "0"}, {"attr", "x"}}},
           {"SetLocation", {{"dim", "1"}, {"attr", "y"}}},
           {"AddAttribute",
            {{"name", "seg"}, {"definition", "line(dx, dy, \"#646464\")"}}},
           {"SetDisplay", {{"attr", "seg"}}},
           {"SetName", {{"name", "Map"}}}}));
  TIOGA2_ASSIGN_OR_RETURN(std::string overlay1,
                          session.AddBox("Overlay", {{"offset", ""}}));
  TIOGA2_RETURN_IF_ERROR(session.Connect(map, 0, overlay1, 0));
  TIOGA2_RETURN_IF_ERROR(session.Connect(dots, 0, overlay1, 1));
  TIOGA2_ASSIGN_OR_RETURN(std::string overlay2,
                          session.AddBox("Overlay", {{"offset", ""}}));
  TIOGA2_RETURN_IF_ERROR(session.Connect(overlay1, 0, overlay2, 0));
  TIOGA2_RETURN_IF_ERROR(session.Connect(labels, 0, overlay2, 1));
  return session.AddViewer(overlay2, 0, "fig7").status();
}

Status BuildFig8(Environment* env) {
  // Figure 8 wormholes: a destination canvas plus the source overlay.
  ui::Session& session = env->session();
  Chain chain(&session);
  TIOGA2_ASSIGN_OR_RETURN(std::string observations, chain.Table("Observations"));
  TIOGA2_ASSIGN_OR_RETURN(
      std::string temps,
      chain.Extend(
          observations,
          {{"AddAttribute",
            {{"name", "t"}, {"definition", "float(days(obs_date))"}}},
           {"SetLocation", {{"dim", "0"}, {"attr", "t"}}},
           {"SetLocation", {{"dim", "1"}, {"attr", "temperature"}}},
           {"AddAttribute",
            {{"name", "d"}, {"definition", "point(\"#1e46c8\")"}}},
           {"SetDisplay", {{"attr", "d"}}}}));
  TIOGA2_RETURN_IF_ERROR(session.AddViewer(temps, 0, "temps").status());
  TIOGA2_ASSIGN_OR_RETURN(std::string stations, chain.Table("Stations"));
  TIOGA2_ASSIGN_OR_RETURN(
      std::string scatter,
      chain.Extend(stations,
                   {{"Restrict", {{"predicate", "state = \"LA\""}}},
                    {"SetLocation", {{"dim", "0"}, {"attr", "longitude"}}},
                    {"SetLocation", {{"dim", "1"}, {"attr", "latitude"}}}}));
  TIOGA2_ASSIGN_OR_RETURN(
      std::string holes,
      chain.Extend(
          scatter,
          {{"AddAttribute",
            {{"name", "w"},
             {"definition",
              "viewer(0.5, 0.4, \"temps\", 5480.0, 60.0, 80.0)"}}},
           {"SetDisplay", {{"attr", "w"}}},
           {"SetName", {{"name", "Holes"}}}}));
  TIOGA2_ASSIGN_OR_RETURN(
      std::string underside,
      chain.Extend(
          scatter,
          {{"AddAttribute",
            {{"name", "u"},
             {"definition", "circle(0.1, \"#808080\", true)"}}},
           {"SetDisplay", {{"attr", "u"}}},
           {"SetRange", {{"min", "-1000"}, {"max", "0"}}},
           {"SetName", {{"name", "Underside"}}}}));
  TIOGA2_ASSIGN_OR_RETURN(std::string overlay,
                          session.AddBox("Overlay", {{"offset", ""}}));
  TIOGA2_RETURN_IF_ERROR(session.Connect(holes, 0, overlay, 0));
  TIOGA2_RETURN_IF_ERROR(session.Connect(underside, 0, overlay, 1));
  return session.AddViewer(overlay, 0, "fig8").status();
}

Status BuildFig9(Environment* env) {
  ui::Session& session = env->session();
  Chain chain(&session);
  TIOGA2_ASSIGN_OR_RETURN(std::string observations, chain.Table("Observations"));
  TIOGA2_ASSIGN_OR_RETURN(
      std::string tail,
      chain.Extend(
          observations,
          {{"Restrict", {{"predicate", "station_id = 1"}}},
           {"AddAttribute",
            {{"name", "t"}, {"definition", "float(days(obs_date))"}}},
           {"SetLocation", {{"dim", "0"}, {"attr", "t"}}},
           {"SetLocation", {{"dim", "1"}, {"attr", "temperature"}}},
           {"AddAttribute",
            {{"name", "temp_d"}, {"definition", "point(\"#c81e1e\")"}}},
           {"AddAttribute",
            {{"name", "precip_d"},
             {"definition",
              "rect(0.9, precipitation * 15.0, \"#1e46c8\", true)"}}},
           {"SetDisplay", {{"attr", "temp_d"}}}}));
  return session.AddViewer(tail, 0, "fig9").status();
}

Status BuildFig10(Environment* env) {
  // Figure 10 stitched viewers: temperature | precipitation for station 1.
  ui::Session& session = env->session();
  Chain chain(&session);
  TIOGA2_ASSIGN_OR_RETURN(std::string observations, chain.Table("Observations"));
  TIOGA2_ASSIGN_OR_RETURN(
      std::string one,
      chain.Extend(observations,
                   {{"Restrict", {{"predicate", "station_id = 1"}}}}));
  auto branch = [&](const std::string& y_attr, const std::string& color,
                    const std::string& name) -> Result<std::string> {
    return chain.Extend(
        one,
        {{"AddAttribute",
          {{"name", "t"}, {"definition", "float(days(obs_date))"}}},
         {"SetLocation", {{"dim", "0"}, {"attr", "t"}}},
         {"SetLocation", {{"dim", "1"}, {"attr", y_attr}}},
         {"AddAttribute",
          {{"name", "d"}, {"definition", "point(\"" + color + "\")"}}},
         {"SetDisplay", {{"attr", "d"}}},
         {"SetName", {{"name", name}}}});
  };
  TIOGA2_ASSIGN_OR_RETURN(std::string temperature,
                          branch("temperature", "#c81e1e", "Temperature"));
  TIOGA2_ASSIGN_OR_RETURN(std::string precipitation,
                          branch("precipitation", "#1e46c8", "Precipitation"));
  TIOGA2_ASSIGN_OR_RETURN(
      std::string stitch,
      session.AddBox("Stitch", {{"arity", "2"},
                                {"layout", "vertical"},
                                {"columns", "1"}}));
  TIOGA2_RETURN_IF_ERROR(session.Connect(temperature, 0, stitch, 0));
  TIOGA2_RETURN_IF_ERROR(session.Connect(precipitation, 0, stitch, 1));
  return session.AddViewer(stitch, 0, "fig10").status();
}

Status BuildFig11(Environment* env) {
  // Figure 11 replicated viewers: observations by year, employees in a
  // salary x department grid.
  ui::Session& session = env->session();
  Chain chain(&session);
  TIOGA2_ASSIGN_OR_RETURN(std::string observations, chain.Table("Observations"));
  TIOGA2_ASSIGN_OR_RETURN(
      std::string by_year,
      chain.Extend(
          observations,
          {{"Restrict", {{"predicate", "station_id = 1"}}},
           {"Replicate",
            {{"rows", "year(obs_date) = 1985;year(obs_date) = 1986"},
             {"columns", ""}}}}));
  TIOGA2_RETURN_IF_ERROR(session.AddViewer(by_year, 0, "years").status());
  TIOGA2_ASSIGN_OR_RETURN(std::string employees, chain.Table("Employees"));
  TIOGA2_ASSIGN_OR_RETURN(
      std::string grid,
      chain.Extend(
          employees,
          {{"Replicate",
            {{"rows",
              "department = \"shoe\";department = \"toy\";department = "
              "\"candy\";department = \"hardware\""},
             {"columns", "salary <= 5000;salary > 5000"}}}}));
  return session.AddViewer(grid, 0, "salaries").status();
}

std::string Hex(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%a", value);
  return buffer;
}

void AppendRelation(const display::DisplayRelation& relation, std::string* out) {
  *out += "R{name=" + relation.name();
  *out += ";display=" + relation.display_name();
  *out += ";locations=";
  for (const std::string& location : relation.location_names()) {
    *out += location + ",";
  }
  *out += ";range=[" + Hex(relation.elevation_range().min) + "," +
          Hex(relation.elevation_range().max) + "]";
  *out += ";attrs=";
  for (const display::Attribute& attribute : relation.attributes()) {
    *out += attribute.name + ":" +
            types::DataTypeToString(attribute.type) + ":" +
            std::to_string(static_cast<int>(attribute.source)) + ":" +
            std::to_string(attribute.stored_index) + ":" +
            attribute.combine_first + ":" + attribute.combine_second + ":" +
            Hex(attribute.combine_dx) + ":" + Hex(attribute.combine_dy) + ":" +
            Hex(attribute.scale) + ":" + Hex(attribute.translate) + "|";
  }
  *out += ";rows=" + std::to_string(relation.num_rows());
  *out += ";base=" + relation.base()->ToString(relation.num_rows() + 1);
  *out += "}";
}

void AppendComposite(const display::Composite& composite, std::string* out) {
  *out += "C{";
  for (const display::CompositeEntry& entry : composite.entries()) {
    AppendRelation(entry.relation, out);
    *out += "@[";
    for (double offset : entry.offset) *out += Hex(offset) + ",";
    *out += "];";
  }
  *out += "}";
}

}  // namespace

std::vector<FigProgram> AllFigPrograms() {
  return {
      {"fig01", 200, 10, BuildFig1, {"fig1"}},
      {"fig03", 100, 10, BuildFig3, {"fig3", "fig3proj"}},
      {"fig04", 100, 10, BuildFig4, {"fig4"}},
      {"fig05", 100, 10, BuildFig5, {"fig5"}},
      {"fig07", 100, 10, BuildFig7, {"fig7"}},
      {"fig08", 20, 60, BuildFig8, {"temps", "fig8"}},
      {"fig09", 10, 120, BuildFig9, {"fig9"}},
      {"fig10", 10, 120, BuildFig10, {"fig10"}},
      {"fig11", 10, 365, BuildFig11, {"years", "salaries"}},
  };
}

std::string FingerprintDisplayable(const display::Displayable& displayable) {
  std::string out;
  if (const auto* relation = std::get_if<display::DisplayRelation>(&displayable)) {
    AppendRelation(*relation, &out);
  } else if (const auto* composite = std::get_if<display::Composite>(&displayable)) {
    AppendComposite(*composite, &out);
  } else {
    const auto& group = std::get<display::Group>(displayable);
    out += "G{layout=" + std::to_string(static_cast<int>(group.layout())) +
           ";columns=" + std::to_string(group.tabular_columns()) + ";";
    for (const display::Composite& member : group.members()) {
      AppendComposite(member, &out);
    }
    out += "}";
  }
  return out;
}

std::string FingerprintBoxValue(const dataflow::BoxValue& value) {
  if (const auto* displayable = std::get_if<display::Displayable>(&value)) {
    return "D:" + FingerprintDisplayable(*displayable);
  }
  const auto& scalar = std::get<types::Value>(value);
  return "V:" + types::DataTypeToString(scalar.type()) + ":" + scalar.ToString();
}

}  // namespace tioga2::testing
