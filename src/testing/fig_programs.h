#ifndef TIOGA2_TESTING_FIG_PROGRAMS_H_
#define TIOGA2_TESTING_FIG_PROGRAMS_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "dataflow/port_type.h"
#include "display/displayable.h"
#include "tioga2/environment.h"

namespace tioga2::testing {

/// One figure-reproduction program, buildable on demand into a fresh
/// Environment. Mirrors the programs the bench/bench_fig* binaries
/// construct, packaged so runtime_determinism_test can evaluate every one of
/// them through both the serial and the parallel engine.
struct FigProgram {
  std::string name;
  /// LoadDemoData sizing (kept small: these run in tests).
  size_t extra_stations = 100;
  size_t num_days = 10;
  /// Builds the program into env's session; demo data is already loaded.
  std::function<Status(Environment*)> build;
  /// The canvases the program registers — the evaluation targets.
  std::vector<std::string> canvases;
};

/// Every figure program (fig01 through fig11).
std::vector<FigProgram> AllFigPrograms();

/// A deterministic textual fingerprint of a box output, stable across
/// evaluation strategies: base rows and schema, attribute metadata
/// (hexfloat scale/translate — bit-exact), location and display
/// designations, elevation ranges, composite offsets, and group layout.
/// Two BoxValues with equal fingerprints are the same visualization.
std::string FingerprintBoxValue(const dataflow::BoxValue& value);
std::string FingerprintDisplayable(const display::Displayable& displayable);

}  // namespace tioga2::testing

#endif  // TIOGA2_TESTING_FIG_PROGRAMS_H_
