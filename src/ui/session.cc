#include "ui/session.h"

#include <algorithm>

#include "boxes/composite_boxes.h"
#include "boxes/program_io.h"
#include "boxes/relational_boxes.h"

namespace tioga2::ui {

using dataflow::Edge;
using dataflow::Graph;

Session::Session(db::Catalog* catalog)
    : catalog_(catalog), engine_(catalog), updates_(catalog) {}

void Session::Snapshot() {
  undo_stack_.push_back(graph_.Clone());
  // Bound memory: the paper specifies a single undo button; we keep a
  // generous but finite history.
  constexpr size_t kMaxUndo = 64;
  if (undo_stack_.size() > kMaxUndo) undo_stack_.erase(undo_stack_.begin());
}

void Session::NewProgram() {
  Snapshot();
  graph_ = Graph();
}

Result<std::map<std::string, std::string>> Session::AddProgram(const std::string& name) {
  TIOGA2_ASSIGN_OR_RETURN(std::string serialized, catalog_->GetProgram(name));
  TIOGA2_ASSIGN_OR_RETURN(Graph loaded, boxes::DeserializeProgram(serialized));
  Snapshot();
  // Remap ids that collide with the current program.
  std::map<std::string, std::string> mapping;
  for (const std::string& id : loaded.BoxIds()) {
    std::string new_id = id;
    int suffix = 1;
    while (graph_.HasBox(new_id)) new_id = id + "_" + std::to_string(suffix++);
    mapping[id] = new_id;
    TIOGA2_ASSIGN_OR_RETURN(const dataflow::Box* box, loaded.GetBox(id));
    TIOGA2_RETURN_IF_ERROR(graph_.AddBox(box->Clone(), new_id).status());
  }
  for (const Edge& edge : loaded.edges()) {
    TIOGA2_RETURN_IF_ERROR(graph_.Connect(mapping.at(edge.from_box), edge.from_port,
                                          mapping.at(edge.to_box), edge.to_port));
  }
  // Re-register canvases for any viewer boxes in the loaded program.
  for (const auto& [old_id, new_id] : mapping) {
    TIOGA2_ASSIGN_OR_RETURN(const dataflow::Box* box, graph_.GetBox(new_id));
    if (const auto* viewer_box = dynamic_cast<const boxes::ViewerBox*>(box)) {
      std::string canvas = viewer_box->canvas();
      std::string viewer_id = new_id;
      registry_.Register(canvas, [this, viewer_id]() -> Result<display::Displayable> {
        std::optional<Edge> edge = graph_.IncomingEdge(viewer_id, 0);
        if (!edge.has_value()) {
          return Status::FailedPrecondition("viewer '" + viewer_id +
                                            "' has no input connected");
        }
        TIOGA2_ASSIGN_OR_RETURN(dataflow::BoxValue value,
                                engine_.Evaluate(graph_, edge->from_box, edge->from_port));
        return dataflow::AsDisplayable(value);
      });
    }
  }
  return mapping;
}

Status Session::LoadProgram(const std::string& name) {
  // Validate before clearing so a failed load keeps the current program.
  TIOGA2_ASSIGN_OR_RETURN(std::string serialized, catalog_->GetProgram(name));
  TIOGA2_RETURN_IF_ERROR(boxes::DeserializeProgram(serialized).status());
  NewProgram();
  Status added = AddProgram(name).status();
  if (!added.ok()) {
    (void)Undo();
    return added;
  }
  return Status::OK();
}

Status Session::SaveProgram(const std::string& name) {
  TIOGA2_ASSIGN_OR_RETURN(std::string serialized, boxes::SerializeProgram(graph_));
  catalog_->SaveProgram(name, serialized);
  return Status::OK();
}

Result<std::string> Session::AddBox(const std::string& type_name,
                                    const std::map<std::string, std::string>& params) {
  TIOGA2_ASSIGN_OR_RETURN(dataflow::BoxPtr box, boxes::MakeBox(type_name, params));
  Snapshot();
  return graph_.AddBox(std::move(box));
}

Result<std::string> Session::AddTable(const std::string& table) {
  if (!catalog_->HasTable(table)) {
    return Status::NotFound("no table named '" + table +
                            "' (menu of tables: use ListTables())");
  }
  return AddBox("Table", {{"table", table}});
}

Status Session::Connect(const std::string& from, size_t from_port, const std::string& to,
                        size_t to_port) {
  Snapshot();
  Status status = graph_.Connect(from, from_port, to, to_port);
  if (!status.ok()) undo_stack_.pop_back();
  return status;
}

Result<std::vector<std::string>> Session::ApplyBoxCandidates(
    const std::vector<std::pair<std::string, size_t>>& outputs) const {
  std::vector<dataflow::PortType> types;
  for (const auto& [box_id, port] : outputs) {
    TIOGA2_ASSIGN_OR_RETURN(const dataflow::Box* box, graph_.GetBox(box_id));
    std::vector<dataflow::PortType> out_types = box->OutputTypes();
    if (port >= out_types.size()) {
      return Status::OutOfRange("box '" + box_id + "' has no output " +
                                std::to_string(port));
    }
    types.push_back(out_types[port]);
  }
  return boxes::ApplyBoxCandidates(types);
}

Result<std::string> Session::ApplyBox(
    const std::string& type_name, const std::map<std::string, std::string>& params,
    const std::vector<std::pair<std::string, size_t>>& inputs,
    const std::string& member, size_t group_member) {
  TIOGA2_ASSIGN_OR_RETURN(dataflow::BoxPtr box, boxes::MakeBox(type_name, params));

  // The §2 overloading: an R -> R box applied to a C or G edge is lifted to
  // operate on the selected relation inside the displayable.
  std::vector<dataflow::PortType> box_inputs = box->InputTypes();
  std::vector<dataflow::PortType> box_outputs = box->OutputTypes();
  bool relational_unary =
      box_inputs.size() == 1 && box_outputs.size() == 1 &&
      box_inputs[0].kind() == dataflow::PortType::Kind::kRelation &&
      box_outputs[0].kind() == dataflow::PortType::Kind::kRelation;
  if (relational_unary && inputs.size() == 1) {
    TIOGA2_ASSIGN_OR_RETURN(const dataflow::Box* from, graph_.GetBox(inputs[0].first));
    std::vector<dataflow::PortType> from_outputs = from->OutputTypes();
    if (inputs[0].second >= from_outputs.size()) {
      return Status::OutOfRange("box '" + inputs[0].first + "' has no output " +
                                std::to_string(inputs[0].second));
    }
    dataflow::PortType edge_type = from_outputs[inputs[0].second];
    if (edge_type.kind() != dataflow::PortType::Kind::kRelation) {
      if (member.empty()) {
        return Status::FailedPrecondition(
            "applying an R -> R box to a " + edge_type.ToString() +
            " edge needs the target relation name (the composite-member "
            "selection of §2)");
      }
      box = std::make_unique<boxes::LiftBox>(std::move(box), edge_type, group_member,
                                             member);
    }
  }

  Snapshot();
  TIOGA2_ASSIGN_OR_RETURN(std::string id, graph_.AddBox(std::move(box)));
  for (size_t port = 0; port < inputs.size(); ++port) {
    Status connected =
        graph_.Connect(inputs[port].first, inputs[port].second, id, port);
    if (!connected.ok()) {
      graph_ = std::move(undo_stack_.back());
      undo_stack_.pop_back();
      return connected;
    }
  }
  return id;
}

Status Session::DeleteBox(const std::string& id) {
  Snapshot();
  Status status = graph_.DeleteBox(id);
  if (!status.ok()) undo_stack_.pop_back();
  return status;
}

Status Session::ReplaceBox(const std::string& id, const std::string& type_name,
                           const std::map<std::string, std::string>& params) {
  TIOGA2_ASSIGN_OR_RETURN(dataflow::BoxPtr box, boxes::MakeBox(type_name, params));
  Snapshot();
  Status status = graph_.ReplaceBox(id, std::move(box));
  if (!status.ok()) undo_stack_.pop_back();
  return status;
}

Result<std::string> Session::InsertT(const std::string& to, size_t to_port) {
  Snapshot();
  Result<std::string> result = graph_.InsertT(to, to_port);
  if (!result.ok()) undo_stack_.pop_back();
  return result;
}

Status Session::Encapsulate(const std::vector<std::string>& box_ids,
                            const std::vector<std::string>& hole_ids,
                            const std::string& name) {
  if (library_.count(name) > 0) {
    return Status::AlreadyExists("encapsulated box '" + name + "' already defined");
  }
  TIOGA2_ASSIGN_OR_RETURN(std::unique_ptr<dataflow::EncapsulatedBox> box,
                          dataflow::EncapsulateSubgraph(graph_, box_ids, hole_ids, name));
  library_[name] = std::move(box);
  return Status::OK();
}

Result<std::string> Session::InsertEncapsulated(
    const std::string& name,
    const std::vector<std::pair<std::string, std::map<std::string, std::string>>>&
        hole_fillers) {
  auto it = library_.find(name);
  if (it == library_.end()) {
    return Status::NotFound("no encapsulated box named '" + name + "'");
  }
  std::vector<dataflow::BoxPtr> fillers;
  for (const auto& [type_name, params] : hole_fillers) {
    TIOGA2_ASSIGN_OR_RETURN(dataflow::BoxPtr filler, boxes::MakeBox(type_name, params));
    fillers.push_back(std::move(filler));
  }
  dataflow::BoxPtr instance;
  if (fillers.empty() && it->second->HoleIds().empty()) {
    instance = it->second->Clone();
  } else {
    TIOGA2_ASSIGN_OR_RETURN(std::unique_ptr<dataflow::EncapsulatedBox> filled,
                            it->second->FillHoles(std::move(fillers)));
    instance = std::move(filled);
  }
  Snapshot();
  return graph_.AddBox(std::move(instance));
}

std::vector<std::string> Session::EncapsulatedNames() const {
  std::vector<std::string> names;
  names.reserve(library_.size());
  for (const auto& [name, box] : library_) names.push_back(name);
  return names;
}

Status Session::Undo() {
  if (undo_stack_.empty()) return Status::FailedPrecondition("nothing to undo");
  graph_ = std::move(undo_stack_.back());
  undo_stack_.pop_back();
  return Status::OK();
}

Result<std::string> Session::AddViewer(const std::string& from, size_t from_port,
                                       const std::string& canvas_name) {
  TIOGA2_ASSIGN_OR_RETURN(std::string viewer_id,
                          AddBox("Viewer", {{"canvas", canvas_name}}));
  Status connected = graph_.Connect(from, from_port, viewer_id, 0);
  if (!connected.ok()) {
    (void)graph_.DeleteBox(viewer_id);
    undo_stack_.pop_back();
    return connected;
  }
  registry_.Register(canvas_name, [this, viewer_id]() -> Result<display::Displayable> {
    std::optional<Edge> edge = graph_.IncomingEdge(viewer_id, 0);
    if (!edge.has_value()) {
      return Status::FailedPrecondition("viewer '" + viewer_id +
                                        "' has no input connected");
    }
    TIOGA2_ASSIGN_OR_RETURN(dataflow::BoxValue value,
                            engine_.Evaluate(graph_, edge->from_box, edge->from_port));
    return dataflow::AsDisplayable(value);
  });
  return viewer_id;
}

Status Session::RemoveViewer(const std::string& viewer_box_id) {
  TIOGA2_ASSIGN_OR_RETURN(const dataflow::Box* box, graph_.GetBox(viewer_box_id));
  const auto* viewer_box = dynamic_cast<const boxes::ViewerBox*>(box);
  if (viewer_box == nullptr) {
    return Status::InvalidArgument("box '" + viewer_box_id + "' is not a Viewer");
  }
  std::string canvas = viewer_box->canvas();
  TIOGA2_RETURN_IF_ERROR(DeleteBox(viewer_box_id));  // viewers are sinks: rule (1)
  registry_.Unregister(canvas);
  return Status::OK();
}

Result<display::Displayable> Session::EvaluateCanvas(const std::string& canvas_name) {
  return registry_.Resolve(canvas_name);
}

Status Session::ClickUpdate(const std::string& canvas_name, const viewer::Hit& hit,
                            const std::string& table,
                            const std::map<std::string, std::string>& inputs) {
  TIOGA2_ASSIGN_OR_RETURN(display::Displayable content, EvaluateCanvas(canvas_name));
  display::Group group = display::AsGroup(content);
  if (hit.group_member >= group.size()) {
    return Status::OutOfRange("hit names a group member that no longer exists");
  }
  const display::Composite& composite = group.members()[hit.group_member];
  if (hit.member >= composite.size()) {
    return Status::OutOfRange("hit names a composite member that no longer exists");
  }
  const display::DisplayRelation& relation = composite.entries()[hit.member].relation;
  if (hit.row >= relation.num_rows()) {
    return Status::OutOfRange("hit names a row that no longer exists");
  }
  // Locate the clicked (derived) tuple in the base table by value and
  // install the update (§8). The typed TableDelta drives delta propagation:
  // boxes downstream of `table` are maintained in place where their type
  // supports it and evicted otherwise, while every other canvas's memoized
  // results stay warm.
  TIOGA2_ASSIGN_OR_RETURN(
      db::TableDelta delta,
      updates_.ApplyUpdateByMatch(table, relation.base()->row(hit.row), inputs));
  TIOGA2_ASSIGN_OR_RETURN(
      dataflow::InvalidationResult result,
      engine_.Invalidate(graph_, dataflow::Invalidation::Delta(std::move(delta))));
  last_invalidation_ = std::move(result);
  return Status::OK();
}

const dataflow::ValueDelta* Session::LastCanvasDelta(
    const std::string& canvas_name) const {
  if (!last_invalidation_.has_value()) return nullptr;
  // The canvas is fed by the edge into its viewer box; the feeding box's
  // recorded output delta (if it was delta-maintained) describes exactly how
  // the canvas content changed.
  for (const std::string& id : graph_.BoxIds()) {
    Result<const dataflow::Box*> box = graph_.GetBox(id);
    if (!box.ok()) continue;
    const auto* viewer_box = dynamic_cast<const boxes::ViewerBox*>(box.value());
    if (viewer_box == nullptr || viewer_box->canvas() != canvas_name) continue;
    std::optional<dataflow::Edge> edge = graph_.IncomingEdge(id, 0);
    if (!edge.has_value()) return nullptr;
    auto it = last_invalidation_->box_deltas.find(edge->from_box);
    if (it == last_invalidation_->box_deltas.end()) return nullptr;
    if (edge->from_port >= it->second.size()) return nullptr;
    return &it->second[edge->from_port];
  }
  return nullptr;
}

}  // namespace tioga2::ui
