#ifndef TIOGA2_UI_PROGRAM_RENDERER_H_
#define TIOGA2_UI_PROGRAM_RENDERER_H_

#include <map>
#include <string>

#include "common/result.h"
#include "dataflow/graph.h"
#include "render/surface.h"

namespace tioga2::ui {

/// Where each box of the program window landed (device coordinates), for
/// click dispatch back onto the diagram.
struct ProgramLayout {
  std::map<std::string, render::DeviceRect> box_rects;
};

/// Renders the boxes-and-arrows diagram — the program window of §3 / Figure
/// 1 — onto a surface. Boxes with recorded positions (Graph::BoxPosition)
/// are honored; the rest are auto-laid-out left to right by topological
/// depth, stacking parallel boxes vertically. Edges draw as lines from
/// output to input sides; viewer boxes get a double border.
Result<ProgramLayout> RenderProgram(const dataflow::Graph& graph,
                                    render::Surface* surface);

/// The box under a click in the program window, if any.
std::optional<std::string> HitTestProgram(const ProgramLayout& layout, double dx,
                                          double dy);

}  // namespace tioga2::ui

#endif  // TIOGA2_UI_PROGRAM_RENDERER_H_
