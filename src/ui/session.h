#ifndef TIOGA2_UI_SESSION_H_
#define TIOGA2_UI_SESSION_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "boxes/box_registry.h"
#include "common/result.h"
#include "dataflow/encapsulate.h"
#include "dataflow/engine.h"
#include "dataflow/graph.h"
#include "db/catalog.h"
#include "update/update.h"
#include "viewer/canvas_registry.h"
#include "viewer/canvas_renderer.h"

namespace tioga2::ui {

/// The headless user-interface model of §3: one program window (the
/// boxes-and-arrows diagram), the menu-bar operations of Figures 2/3/5/6 as
/// methods, the undo button, canvas registration for viewers, and the §8
/// click-to-update path.
///
/// This class is the substitute for the X11 GUI (see DESIGN.md §1): every
/// direct-manipulation gesture the paper describes corresponds to one
/// Session call with the same semantics, which is exactly the layer a real
/// GUI would sit on.
class Session {
 public:
  /// `catalog` must outlive the session.
  explicit Session(db::Catalog* catalog);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // ---- Program window (Figure 2) ----

  /// New Program: erases the program canvas.
  void NewProgram();

  /// Add Program: merges a saved program into the current one. Box ids are
  /// remapped to avoid collisions; returns the id mapping.
  Result<std::map<std::string, std::string>> AddProgram(const std::string& name);

  /// Load Program: New Program followed by Add Program.
  Status LoadProgram(const std::string& name);

  /// Save Program: serializes the current program into the database.
  Status SaveProgram(const std::string& name);

  /// Adds a box by type name and parameters; returns its id.
  Result<std::string> AddBox(const std::string& type_name,
                             const std::map<std::string, std::string>& params);

  /// Add Table (§4.2): shorthand for AddBox("Table", {table}), validated
  /// against the catalog.
  Result<std::string> AddTable(const std::string& table);

  /// Connects an output to an input (type-checked).
  Status Connect(const std::string& from, size_t from_port, const std::string& to,
                 size_t to_port);

  /// Apply Box (§4.1): the box types able to take the selected output edges
  /// as inputs.
  Result<std::vector<std::string>> ApplyBoxCandidates(
      const std::vector<std::pair<std::string, size_t>>& outputs) const;

  /// Apply Box, step two: builds the chosen box and wires the selected
  /// outputs to its inputs in order. When an R -> R box is applied to a
  /// composite or group edge, it is lifted transparently (§2: "the user
  /// need not be aware explicitly of how Restrict is overloaded"): the
  /// system wraps it in a Lift targeting `member` (the relation name within
  /// the composite) and `group_member` (the composite within the group) —
  /// in the GUI these are the point-and-click selections. Returns the new
  /// box id.
  Result<std::string> ApplyBox(const std::string& type_name,
                               const std::map<std::string, std::string>& params,
                               const std::vector<std::pair<std::string, size_t>>& inputs,
                               const std::string& member = "",
                               size_t group_member = 0);

  /// Delete Box with the §4.1 legality rules.
  Status DeleteBox(const std::string& id);

  /// Replace Box by a new box of compatible types.
  Status ReplaceBox(const std::string& id, const std::string& type_name,
                    const std::map<std::string, std::string>& params);

  /// Inserts a T on the edge into `to:to_port`; returns the T's id.
  Result<std::string> InsertT(const std::string& to, size_t to_port);

  /// Encapsulate (§4.1): turns a region of the program into a reusable box
  /// definition stored in the session's box library.
  Status Encapsulate(const std::vector<std::string>& box_ids,
                     const std::vector<std::string>& hole_ids, const std::string& name);

  /// Instantiates an encapsulated definition (filling holes with boxes
  /// built from (type, params) pairs) and adds it to the program.
  Result<std::string> InsertEncapsulated(
      const std::string& name,
      const std::vector<std::pair<std::string, std::map<std::string, std::string>>>&
          hole_fillers);

  /// Names of encapsulated definitions in the library.
  std::vector<std::string> EncapsulatedNames() const;

  /// Undo: restores the program to before the most recent mutating
  /// operation. Fails when there is nothing to undo.
  Status Undo();

  // ---- Viewers and canvases ----

  /// Installs a viewer on `from:from_port` (on any edge, via T insertion the
  /// caller performs, or directly on a free output). Registers canvas
  /// `canvas_name` resolving through the lazy engine. Returns the viewer
  /// box id.
  Result<std::string> AddViewer(const std::string& from, size_t from_port,
                                const std::string& canvas_name);

  /// Removes a viewer box and unregisters its canvas (§7.1: "when a viewer
  /// is deleted, all of its slaving relationships are also deleted" — the
  /// viewer::Viewer objects watching the canvas start failing to Refresh,
  /// which is their cue to drop slaving and close).
  Status RemoveViewer(const std::string& viewer_box_id);

  /// Evaluates the displayable feeding the named canvas (lazy, memoized).
  Result<display::Displayable> EvaluateCanvas(const std::string& canvas_name);

  /// The canvas registry for viewer::Viewer construction.
  const viewer::CanvasRegistry& registry() const { return registry_; }

  // ---- §8 updates ----

  update::UpdateManager& updates() { return updates_; }

  /// The click-to-update path: `hit` (from Viewer::HitTestAt) identifies a
  /// tuple of a derived relation shown on a canvas; `table` names the base
  /// table it came from; `inputs` simulates the §8 dialog. Installs the
  /// update and propagates the resulting TableDelta through the program:
  /// boxes with a delta fast path keep their memoized outputs maintained in
  /// place, the rest are evicted, and unrelated canvases stay memoized.
  Status ClickUpdate(const std::string& canvas_name, const viewer::Hit& hit,
                     const std::string& table,
                     const std::map<std::string, std::string>& inputs);

  /// The outcome of the most recent ClickUpdate's delta propagation
  /// (counts, per-box edit scripts, warnings); empty until a ClickUpdate
  /// succeeds.
  const std::optional<dataflow::InvalidationResult>& LastInvalidation() const {
    return last_invalidation_;
  }

  /// The edit script for the value feeding `canvas_name` from the most
  /// recent ClickUpdate, or nullptr when that value was not delta-maintained
  /// (no update yet, the feeding box fell back to recompute, or the canvas
  /// does not exist). A renderer holding the canvas's previous Displayable
  /// can repaint just the dirty screen regions it implies.
  const dataflow::ValueDelta* LastCanvasDelta(const std::string& canvas_name) const;

  // ---- Introspection / menus (§3) ----

  const dataflow::Graph& graph() const { return graph_; }
  dataflow::Engine& engine() { return engine_; }

  /// Attaches a cross-session shared memo tier to this session's engine
  /// (null detaches) — wired by runtime::SessionServer when its options
  /// enable the shared tier, so canvases common to several sessions are
  /// evaluated once. The pointee must outlive the session.
  void set_shared_cache(dataflow::SharedMemoCache* shared) {
    engine_.set_shared_cache(shared);
  }

  /// Wires the reclamation domain the canvas registry's lock-free readers
  /// pin — set by runtime::SessionServer alongside the shared cache. The
  /// domain must outlive the session.
  void set_reclamation_domain(common::ReclamationDomain* domain) {
    registry_.set_reclamation_domain(domain);
  }

  db::Catalog* catalog() { return catalog_; }
  std::vector<std::string> ListTables() const { return catalog_->ListTables(); }
  std::vector<std::string> ListBoxTypes() const { return boxes::AllBoxTypes(); }

  /// Warnings raised by the most recent evaluation (§6.1 overlay warning).
  const std::vector<std::string>& LastWarnings() const { return engine_.warnings(); }

  size_t UndoDepth() const { return undo_stack_.size(); }

 private:
  /// Pushes an undo snapshot; call before every mutating operation.
  void Snapshot();

  db::Catalog* catalog_;
  dataflow::Graph graph_;
  dataflow::Engine engine_;
  viewer::CanvasRegistry registry_;
  update::UpdateManager updates_;
  std::vector<dataflow::Graph> undo_stack_;
  std::map<std::string, std::unique_ptr<dataflow::EncapsulatedBox>> library_;
  std::optional<dataflow::InvalidationResult> last_invalidation_;
};

}  // namespace tioga2::ui

#endif  // TIOGA2_UI_SESSION_H_
