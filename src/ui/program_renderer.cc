#include "ui/program_renderer.h"

#include <algorithm>
#include <cmath>

namespace tioga2::ui {

using dataflow::Edge;
using dataflow::Graph;

namespace {

constexpr double kBoxWidth = 110;
constexpr double kBoxHeight = 34;
constexpr double kColumnGap = 50;
constexpr double kRowGap = 18;
constexpr double kMargin = 12;

/// Topological depth of every box: sources at 0, each consumer one past its
/// deepest producer.
Result<std::map<std::string, int>> Depths(const Graph& graph) {
  TIOGA2_ASSIGN_OR_RETURN(std::vector<std::string> order, graph.TopologicalOrder());
  std::map<std::string, int> depth;
  for (const std::string& id : order) depth[id] = 0;
  for (const std::string& id : order) {
    for (const Edge& edge : graph.edges()) {
      if (edge.to_box != id) continue;
      depth[id] = std::max(depth[id], depth[edge.from_box] + 1);
    }
  }
  return depth;
}

}  // namespace

Result<ProgramLayout> RenderProgram(const Graph& graph, render::Surface* surface) {
  if (surface == nullptr) return Status::InvalidArgument("surface must be non-null");
  ProgramLayout layout;
  using DepthMap = std::map<std::string, int>;
  TIOGA2_ASSIGN_OR_RETURN(DepthMap depths, Depths(graph));

  // Assign rects: explicit positions win; the rest stack per depth column.
  std::map<int, int> next_row;
  for (const std::string& id : graph.BoxIds()) {
    std::optional<std::pair<double, double>> position = graph.BoxPosition(id);
    double x = 0;
    double y = 0;
    if (position.has_value()) {
      x = position->first;
      y = position->second;
    } else {
      int depth = depths[id];
      int row = next_row[depth]++;
      x = kMargin + depth * (kBoxWidth + kColumnGap);
      y = kMargin + row * (kBoxHeight + kRowGap);
    }
    layout.box_rects[id] = render::DeviceRect{x, y, kBoxWidth, kBoxHeight};
  }

  // Edges first, under the boxes.
  draw::Style edge_style;
  for (const Edge& edge : graph.edges()) {
    const render::DeviceRect& from = layout.box_rects.at(edge.from_box);
    const render::DeviceRect& to = layout.box_rects.at(edge.to_box);
    TIOGA2_ASSIGN_OR_RETURN(const dataflow::Box* from_box, graph.GetBox(edge.from_box));
    TIOGA2_ASSIGN_OR_RETURN(const dataflow::Box* to_box, graph.GetBox(edge.to_box));
    // Fan output/input attachment points down the box's right/left side.
    size_t out_count = std::max<size_t>(1, from_box->OutputTypes().size());
    size_t in_count = std::max<size_t>(1, to_box->InputTypes().size());
    double y0 = from.y + from.height * (static_cast<double>(edge.from_port) + 1) /
                             (static_cast<double>(out_count) + 1);
    double y1 = to.y + to.height * (static_cast<double>(edge.to_port) + 1) /
                           (static_cast<double>(in_count) + 1);
    double x0 = from.x + from.width;
    double x1 = to.x;
    surface->DrawLine(x0, y0, x1, y1, edge_style, draw::kGray);
    // A small arrow head at the input side.
    surface->DrawLine(x1, y1, x1 - 5, y1 - 3, edge_style, draw::kGray);
    surface->DrawLine(x1, y1, x1 - 5, y1 + 3, edge_style, draw::kGray);
  }

  // Boxes: white fill, black border, type name (viewer boxes double-framed).
  draw::Style fill;
  fill.fill = draw::FillMode::kFilled;
  draw::Style border;
  for (const std::string& id : graph.BoxIds()) {
    const render::DeviceRect& rect = layout.box_rects.at(id);
    TIOGA2_ASSIGN_OR_RETURN(const dataflow::Box* box, graph.GetBox(id));
    surface->DrawRect(rect.x, rect.y, rect.width, rect.height, fill, draw::kWhite);
    surface->DrawRect(rect.x, rect.y, rect.width, rect.height, border, draw::kBlack);
    if (box->type_name() == "Viewer") {
      surface->DrawRect(rect.x + 3, rect.y + 3, rect.width - 6, rect.height - 6,
                        border, draw::kBlack);
    }
    // Type name on the first line, box id on the second.
    surface->DrawText(box->type_name(), rect.x + 6, rect.y + 15, 8, draw::kBlack);
    surface->DrawText(id, rect.x + 6, rect.y + 28, 7, draw::kGray);
  }
  return layout;
}

std::optional<std::string> HitTestProgram(const ProgramLayout& layout, double dx,
                                          double dy) {
  for (const auto& [id, rect] : layout.box_rects) {
    if (dx >= rect.x && dx <= rect.x + rect.width && dy >= rect.y &&
        dy <= rect.y + rect.height) {
      return id;
    }
  }
  return std::nullopt;
}

}  // namespace tioga2::ui
