#include "viewer/elevation_map.h"

#include <algorithm>
#include <cmath>

namespace tioga2::viewer {

namespace {

/// The elevation scale shown by the widget: covers every finite bound and
/// the current elevation, with headroom.
double ScaleMax(const std::vector<ElevationBar>& bars, double current_elevation) {
  double max_elevation = std::max(current_elevation, 1.0);
  for (const ElevationBar& bar : bars) {
    if (std::isfinite(bar.max_elevation)) {
      max_elevation = std::max(max_elevation, bar.max_elevation);
    }
    if (std::isfinite(bar.min_elevation)) {
      max_elevation = std::max(max_elevation, bar.min_elevation);
    }
  }
  return max_elevation * 1.1;
}

}  // namespace

Status RenderElevationMap(const std::vector<ElevationBar>& bars,
                          double current_elevation, const render::DeviceRect& rect,
                          render::Surface* surface) {
  if (surface == nullptr) return Status::InvalidArgument("surface must be non-null");
  draw::Style frame;
  surface->DrawRect(rect.x, rect.y, rect.width, rect.height, frame, draw::kBlack);
  if (bars.empty()) return Status::OK();

  double scale_max = ScaleMax(bars, current_elevation);
  double row_height = rect.height / static_cast<double>(bars.size());
  auto x_of = [&](double elevation) {
    double clamped = std::clamp(elevation, 0.0, scale_max);
    return rect.x + rect.width * (clamped / scale_max);
  };

  draw::Style filled;
  filled.fill = draw::FillMode::kFilled;
  for (size_t i = 0; i < bars.size(); ++i) {
    const ElevationBar& bar = bars[i];
    // Drawing order reads bottom-up: order 0 at the bottom.
    double row_top = rect.y + rect.height - row_height * static_cast<double>(i + 1);
    double x0 = x_of(std::isfinite(bar.min_elevation) ? bar.min_elevation : 0.0);
    double x1 = x_of(std::isfinite(bar.max_elevation) ? bar.max_elevation : scale_max);
    double pad = row_height * 0.2;
    surface->DrawRect(x0, row_top + pad, std::max(1.0, x1 - x0),
                      std::max(1.0, row_height - 2 * pad), filled, draw::kGray);
    surface->DrawText(bar.relation_name, rect.x + 2, row_top + row_height - pad - 1,
                      std::max(7.0, row_height * 0.4), draw::kBlack);
  }

  // The elevation control: a dashed vertical line at the current elevation
  // (§3: "an elevation control (a dashed line through the elevation map)").
  draw::Style dashed;
  dashed.line = draw::LineStyle::kDashed;
  double cx = x_of(current_elevation);
  surface->DrawLine(cx, rect.y, cx, rect.y + rect.height, dashed, draw::kRed);
  return Status::OK();
}

std::optional<size_t> HitTestElevationMap(const std::vector<ElevationBar>& bars,
                                          const render::DeviceRect& rect, double dx,
                                          double dy, double* elevation_out) {
  if (bars.empty()) return std::nullopt;
  if (dx < rect.x || dx > rect.x + rect.width || dy < rect.y ||
      dy > rect.y + rect.height) {
    return std::nullopt;
  }
  double scale_max = ScaleMax(bars, 1.0);
  if (elevation_out != nullptr) {
    *elevation_out = (dx - rect.x) / rect.width * scale_max;
  }
  double row_height = rect.height / static_cast<double>(bars.size());
  // Rows draw bottom-up.
  size_t row_from_top = static_cast<size_t>(
      std::min<double>(static_cast<double>(bars.size()) - 1,
                       std::max(0.0, (dy - rect.y) / row_height)));
  return bars.size() - 1 - row_from_top;
}

}  // namespace tioga2::viewer
