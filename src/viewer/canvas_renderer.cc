#include "viewer/canvas_renderer.h"

#include <algorithm>
#include <cmath>

#include "db/operators.h"
#include "expr/batch.h"

namespace tioga2::viewer {

using display::Composite;
using display::CompositeEntry;

RenderStats& RenderStats::operator+=(const RenderStats& other) {
  tuples_total += other.tuples_total;
  tuples_drawn += other.tuples_drawn;
  tuples_culled_slider += other.tuples_culled_slider;
  tuples_culled_viewport += other.tuples_culled_viewport;
  relations_skipped += other.relations_skipped;
  tuple_errors += other.tuple_errors;
  wormholes_rendered += other.wormholes_rendered;
  return *this;
}

namespace {

/// World-to-device projection for one render pass; handles the horizontal
/// mirroring of rear-view renders (§6.3).
struct Projector {
  const Camera& camera;
  bool mirror = false;

  void ToDevice(double wx, double wy, double* dx, double* dy) const {
    camera.WorldToDevice(wx, wy, dx, dy);
    if (mirror) *dx = camera.viewport_width() - *dx;
  }
  double Length(double world) const { return world * camera.Scale(); }
};

/// Whether a relation participates in this pass given its elevation range:
/// the top side shows ranges containing the camera elevation, the underside
/// (rear view mirror) shows ranges containing the negated elevation (§6.3).
bool ElevationVisible(const display::ElevationRange& range, const Camera& camera,
                      bool underside) {
  return range.Contains(underside ? -camera.elevation() : camera.elevation());
}

/// Visibility decision for one tuple; shared by rendering and hit-testing.
enum class TupleVisibility { kVisible, kSliderCulled, kViewportCulled, kError };

/// Per-relation location columns, precomputed once through the batch
/// "method" path instead of per tuple. nullopt means the batch evaluation
/// failed for some attribute; callers then use the per-row LocationOf path,
/// which reproduces the scalar per-tuple error accounting.
std::optional<std::vector<std::vector<types::Value>>> BatchLocations(
    const display::DisplayRelation& relation, const db::ExecPolicy& policy) {
  if (!policy.vectorized) return std::nullopt;
  std::vector<std::vector<types::Value>> columns;
  columns.reserve(relation.location_names().size());
  for (const std::string& name : relation.location_names()) {
    Result<std::vector<types::Value>> column = relation.AttributeValues(name, policy);
    if (!column.ok()) {
      ++expr::BatchMetrics::Global().render_scalar_fallbacks;
      return std::nullopt;
    }
    columns.push_back(std::move(column).value());
  }
  ++expr::BatchMetrics::Global().render_location_batches;
  return columns;
}

TupleVisibility ClassifyTuple(const display::DisplayRelation& relation,
                              const CompositeEntry& entry, const Camera& camera,
                              size_t row, std::vector<double>* location_out,
                              draw::DrawableList* display_out,
                              const std::vector<std::vector<types::Value>>*
                                  location_columns = nullptr) {
  std::vector<double>& loc = *location_out;
  if (location_columns != nullptr) {
    loc.clear();
    loc.reserve(location_columns->size());
    for (const std::vector<types::Value>& column : *location_columns) {
      const types::Value& v = column[row];
      // Same per-tuple conditions LocationOf rejects: null or non-numeric
      // location values are tuple errors.
      if (v.is_null() || (!v.is_int() && !v.is_float())) {
        return TupleVisibility::kError;
      }
      loc.push_back(v.AsDouble());
    }
  } else {
    Result<std::vector<double>> location = relation.LocationOf(row);
    if (!location.ok()) return TupleVisibility::kError;
    loc = std::move(location).value();
  }
  for (size_t d = 0; d < loc.size(); ++d) loc[d] += entry.OffsetAt(d);
  for (size_t d = 2; d < loc.size(); ++d) {
    if (!camera.SliderAccepts(d, loc[d])) return TupleVisibility::kSliderCulled;
  }
  Result<draw::DrawableList> displayed = relation.DisplayOf(row);
  if (!displayed.ok()) return TupleVisibility::kError;
  *display_out = std::move(displayed).value();
  draw::BBox bounds = draw::DrawableListBounds(*display_out);
  bounds.min_x += loc[0];
  bounds.max_x += loc[0];
  bounds.min_y += loc[1];
  bounds.max_y += loc[1];
  if (!bounds.Intersects(camera.VisibleWorld())) {
    return TupleVisibility::kViewportCulled;
  }
  return TupleVisibility::kVisible;
}

Status RenderDrawable(const draw::Drawable& drawable, double wx, double wy,
                      const Projector& projector, render::Surface* surface,
                      const RenderOptions& options, RenderStats* stats);

Status RenderDisplayList(const draw::DrawableList& list, double wx, double wy,
                         const Projector& projector, render::Surface* surface,
                         const RenderOptions& options, RenderStats* stats) {
  if (list == nullptr) return Status::OK();
  for (const draw::Drawable& drawable : *list) {
    TIOGA2_RETURN_IF_ERROR(
        RenderDrawable(drawable, wx, wy, projector, surface, options, stats));
  }
  return Status::OK();
}

Status RenderWormhole(const draw::Drawable& drawable, double ax, double ay,
                      const Projector& projector, render::Surface* surface,
                      const RenderOptions& options, RenderStats* stats) {
  // Device rectangle of the viewer window (world rect is anchored at its
  // lower-left corner, like kRectangle).
  double dx0 = 0;
  double dy0 = 0;
  projector.ToDevice(ax, ay + drawable.b, &dx0, &dy0);  // top-left in device space
  double w = projector.Length(drawable.a);
  double h = projector.Length(drawable.b);
  render::DeviceRect target{dx0, dy0, w, h};

  // Frame: light fill plus border, so an unresolvable wormhole still shows.
  draw::Style fill_style;
  fill_style.fill = draw::FillMode::kFilled;
  surface->DrawRect(dx0, dy0, w, h, fill_style, draw::kWhite);

  if (options.wormhole_depth > 0 && options.registry != nullptr &&
      options.registry->Has(drawable.wormhole.destination_canvas)) {
    TIOGA2_ASSIGN_OR_RETURN(
        display::Displayable destination,
        options.registry->Resolve(drawable.wormhole.destination_canvas));
    // Render the first composite of the destination through the wormhole's
    // initial position (§6.2: destination canvas, elevation, location).
    display::Group group = display::AsGroup(destination);
    if (!group.members().empty()) {
      const Composite& inner = group.members()[0];
      // Nominal inner viewport: match the wormhole's aspect at ~256 px.
      int inner_w = 256;
      int inner_h = h > 0 && w > 0
                        ? std::max(1, static_cast<int>(std::lround(256.0 * h / w)))
                        : 256;
      Camera inner_camera(drawable.wormhole.initial_x, drawable.wormhole.initial_y,
                          drawable.wormhole.elevation, inner_w, inner_h);
      RenderOptions inner_options = options;
      inner_options.wormhole_depth = options.wormhole_depth - 1;
      inner_options.underside = false;
      surface->PushViewport(target, inner_w, inner_h);
      Result<RenderStats> inner_stats =
          RenderComposite(inner, inner_camera, surface, inner_options);
      surface->PopViewport();
      TIOGA2_RETURN_IF_ERROR(inner_stats.status());
      *stats += inner_stats.value();
      ++stats->wormholes_rendered;
    }
  }

  draw::Style border;
  border.thickness = 1;
  surface->DrawRect(dx0, dy0, w, h, border, draw::kGray);
  return Status::OK();
}

Status RenderDrawable(const draw::Drawable& drawable, double wx, double wy,
                      const Projector& projector, render::Surface* surface,
                      const RenderOptions& options, RenderStats* stats) {
  double ax = wx + drawable.offset_x;
  double ay = wy + drawable.offset_y;
  double dx = 0;
  double dy = 0;
  projector.ToDevice(ax, ay, &dx, &dy);
  switch (drawable.kind) {
    case draw::DrawableKind::kPoint:
      surface->DrawPoint(dx, dy, drawable.style.thickness, drawable.color);
      return Status::OK();
    case draw::DrawableKind::kLine: {
      double ex = 0;
      double ey = 0;
      projector.ToDevice(ax + drawable.a, ay + drawable.b, &ex, &ey);
      surface->DrawLine(dx, dy, ex, ey, drawable.style, drawable.color);
      return Status::OK();
    }
    case draw::DrawableKind::kRectangle: {
      // World rect anchored at lower-left; device rect needs its top-left.
      double tx = 0;
      double ty = 0;
      projector.ToDevice(ax, ay + drawable.b, &tx, &ty);
      surface->DrawRect(tx, ty, projector.Length(drawable.a),
                        projector.Length(drawable.b), drawable.style, drawable.color);
      return Status::OK();
    }
    case draw::DrawableKind::kCircle:
      surface->DrawCircle(dx, dy, projector.Length(drawable.a), drawable.style,
                          drawable.color);
      return Status::OK();
    case draw::DrawableKind::kPolygon: {
      std::vector<draw::Point> device;
      device.reserve(drawable.points.size());
      for (const draw::Point& p : drawable.points) {
        double px = 0;
        double py = 0;
        projector.ToDevice(ax + p.x, ay + p.y, &px, &py);
        device.push_back(draw::Point{px, py});
      }
      surface->DrawPolygon(device, drawable.style, drawable.color);
      return Status::OK();
    }
    case draw::DrawableKind::kText:
      surface->DrawText(drawable.text, dx, dy, projector.Length(drawable.a),
                        drawable.color);
      return Status::OK();
    case draw::DrawableKind::kViewer:
      return RenderWormhole(drawable, ax, ay, projector, surface, options, stats);
  }
  return Status::Internal("unhandled drawable kind");
}

}  // namespace

Result<RenderStats> RenderComposite(const Composite& composite, const Camera& camera,
                                    render::Surface* surface,
                                    const RenderOptions& options) {
  RenderStats stats;
  Projector projector{camera, options.underside};
  db::ExecPolicy policy = options.policy.value_or(db::DefaultExecPolicy());
  for (const CompositeEntry& entry : composite.entries()) {
    const display::DisplayRelation& relation = entry.relation;
    if (!ElevationVisible(relation.elevation_range(), camera, options.underside)) {
      ++stats.relations_skipped;
      continue;
    }
    stats.tuples_total += relation.num_rows();
    std::optional<std::vector<std::vector<types::Value>>> location_columns =
        BatchLocations(relation, policy);
    const std::vector<std::vector<types::Value>>* columns =
        location_columns.has_value() ? &*location_columns : nullptr;
    for (size_t row = 0; row < relation.num_rows(); ++row) {
      std::vector<double> location;
      draw::DrawableList display_list;
      switch (ClassifyTuple(relation, entry, camera, row, &location, &display_list,
                            columns)) {
        case TupleVisibility::kError:
          ++stats.tuple_errors;
          continue;
        case TupleVisibility::kSliderCulled:
          ++stats.tuples_culled_slider;
          continue;
        case TupleVisibility::kViewportCulled:
          ++stats.tuples_culled_viewport;
          continue;
        case TupleVisibility::kVisible:
          break;
      }
      TIOGA2_RETURN_IF_ERROR(RenderDisplayList(display_list, location[0], location[1],
                                               projector, surface, options, &stats));
      if (display_list != nullptr && !display_list->empty()) ++stats.tuples_drawn;
    }
  }
  return stats;
}

Result<std::optional<Hit>> HitTest(const Composite& composite, const Camera& camera,
                                   double dx, double dy) {
  double wx = 0;
  double wy = 0;
  camera.DeviceToWorld(dx, dy, &wx, &wy);
  // Iterate topmost-first: later members draw above earlier ones, and later
  // rows above earlier rows.
  for (size_t m = composite.size(); m-- > 0;) {
    const CompositeEntry& entry = composite.entries()[m];
    const display::DisplayRelation& relation = entry.relation;
    if (!ElevationVisible(relation.elevation_range(), camera, /*underside=*/false)) {
      continue;
    }
    for (size_t row = relation.num_rows(); row-- > 0;) {
      std::vector<double> location;
      draw::DrawableList display_list;
      if (ClassifyTuple(relation, entry, camera, row, &location, &display_list) !=
          TupleVisibility::kVisible) {
        continue;
      }
      draw::BBox bounds = draw::DrawableListBounds(display_list);
      if (bounds.Contains(wx - location[0], wy - location[1])) {
        return std::optional<Hit>(Hit{m, 0, row, relation.name()});
      }
    }
  }
  return std::optional<Hit>();
}

Result<std::optional<draw::WormholeSpec>> FindWormholeAt(const Composite& composite,
                                                         const Camera& camera,
                                                         double wx, double wy) {
  for (size_t m = composite.size(); m-- > 0;) {
    const CompositeEntry& entry = composite.entries()[m];
    const display::DisplayRelation& relation = entry.relation;
    if (!ElevationVisible(relation.elevation_range(), camera, /*underside=*/false)) {
      continue;
    }
    for (size_t row = relation.num_rows(); row-- > 0;) {
      std::vector<double> location;
      draw::DrawableList display_list;
      if (ClassifyTuple(relation, entry, camera, row, &location, &display_list) !=
          TupleVisibility::kVisible) {
        continue;
      }
      if (display_list == nullptr) continue;
      for (size_t i = display_list->size(); i-- > 0;) {
        const draw::Drawable& d = (*display_list)[i];
        if (d.kind != draw::DrawableKind::kViewer) continue;
        double x0 = location[0] + d.offset_x;
        double y0 = location[1] + d.offset_y;
        if (wx >= x0 && wx <= x0 + d.a && wy >= y0 && wy <= y0 + d.b) {
          return std::optional<draw::WormholeSpec>(d.wormhole);
        }
      }
    }
  }
  return std::optional<draw::WormholeSpec>();
}

}  // namespace tioga2::viewer
