#include "viewer/viewer.h"

#include <algorithm>
#include <cmath>

#include "render/font.h"

namespace tioga2::viewer {

namespace {
constexpr int kDefaultViewportW = 640;
constexpr int kDefaultViewportH = 480;
constexpr int kMaxSlaveDepth = 8;

/// Extra device pixels around every dirty rectangle, absorbing the rounding
/// of world-to-pixel snapping in the rasterizer.
constexpr double kDirtyPad = 2.0;

/// A growable device-space bounding box for dirty-region accumulation.
struct DirtyRect {
  double x0 = 0, y0 = 0, x1 = 0, y1 = 0;
  bool empty = true;

  void Extend(double x, double y) {
    if (empty) {
      x0 = x1 = x;
      y0 = y1 = y;
      empty = false;
      return;
    }
    x0 = std::min(x0, x);
    x1 = std::max(x1, x);
    y0 = std::min(y0, y);
    y1 = std::max(y1, y);
  }
};

/// Extends `dirty` with a conservative device-space bound of everything row
/// `row` of `entry` can put on screen through `camera` within layout cell
/// `cell`. Over-approximation is safe (a few extra pixels repaint); an
/// under-approximation would leave stale pixels, so every bound here errs
/// wide — in particular kText uses the rasterizer's integral glyph scale,
/// whose painted width can exceed the world-space text bounds at low zoom.
/// Returns false when `row` does not exist (caller must fall back to a full
/// repaint); a tuple whose location/display fails to evaluate draws nothing
/// and contributes no area.
bool ExtendTupleDeviceBounds(const display::CompositeEntry& entry,
                             const Camera& camera, const render::DeviceRect& cell,
                             size_t row, DirtyRect* dirty) {
  const display::DisplayRelation& relation = entry.relation;
  if (row >= relation.num_rows()) return false;
  Result<std::vector<double>> location = relation.LocationOf(row);
  if (!location.ok() || location->size() < 2) return true;
  double lx = (*location)[0] + entry.OffsetAt(0);
  double ly = (*location)[1] + entry.OffsetAt(1);
  Result<draw::DrawableList> display = relation.DisplayOf(row);
  if (!display.ok() || *display == nullptr) return true;
  for (const draw::Drawable& d : **display) {
    double ax = lx + d.offset_x;
    double ay = ly + d.offset_y;
    double pad = static_cast<double>(std::max(1, d.style.thickness));
    auto extend_world = [&](double wx, double wy) {
      double dx = 0;
      double dy = 0;
      camera.WorldToDevice(wx, wy, &dx, &dy);
      dirty->Extend(cell.x + dx - pad, cell.y + dy - pad);
      dirty->Extend(cell.x + dx + pad, cell.y + dy + pad);
    };
    switch (d.kind) {
      case draw::DrawableKind::kPoint:
        extend_world(ax, ay);
        break;
      case draw::DrawableKind::kLine:
      case draw::DrawableKind::kRectangle:
      case draw::DrawableKind::kViewer:
        extend_world(ax, ay);
        extend_world(ax + d.a, ay + d.b);
        break;
      case draw::DrawableKind::kCircle: {
        double r = std::fabs(camera.Scale() * d.a);
        double dx = 0;
        double dy = 0;
        camera.WorldToDevice(ax, ay, &dx, &dy);
        dirty->Extend(cell.x + dx - r - pad, cell.y + dy - r - pad);
        dirty->Extend(cell.x + dx + r + pad, cell.y + dy + r + pad);
        break;
      }
      case draw::DrawableKind::kPolygon:
        if (d.points.empty()) {
          extend_world(ax, ay);
        } else {
          for (const draw::Point& p : d.points) extend_world(ax + p.x, ay + p.y);
        }
        break;
      case draw::DrawableKind::kText: {
        double dx = 0;
        double dy = 0;
        camera.WorldToDevice(ax, ay, &dx, &dy);
        double h = camera.Scale() * d.a;
        double glyph_scale = std::max<double>(
            1.0, static_cast<double>(std::lround(h / render::kGlyphHeight)));
        double width = static_cast<double>(d.text.size()) *
                       render::kGlyphAdvance * glyph_scale;
        double height = (render::kGlyphHeight + 1) * glyph_scale;
        dirty->Extend(cell.x + dx - pad, cell.y + dy - height - pad);
        dirty->Extend(cell.x + dx + width + pad, cell.y + dy + glyph_scale + pad);
        break;
      }
    }
  }
  return true;
}
}  // namespace

Viewer::Viewer(std::string name, std::string canvas_name, const CanvasRegistry* registry)
    : name_(std::move(name)),
      canvas_name_(std::move(canvas_name)),
      registry_(registry) {
  cameras_.emplace_back(0, 0, 100, kDefaultViewportW, kDefaultViewportH);
}

Status Viewer::Refresh() {
  if (registry_ == nullptr) return Status::FailedPrecondition("viewer has no registry");
  TIOGA2_ASSIGN_OR_RETURN(display::Displayable content,
                          registry_->Resolve(canvas_name_));
  content_ = display::AsGroup(content);
  size_t members = std::max<size_t>(1, content_.size());
  Camera prototype = cameras_.empty()
                         ? Camera(0, 0, 100, kDefaultViewportW, kDefaultViewportH)
                         : cameras_[0];
  while (cameras_.size() < members) cameras_.push_back(prototype);
  cameras_.resize(members);
  if (active_member_ >= members) active_member_ = 0;
  return Status::OK();
}

std::unique_ptr<Viewer> Viewer::CloneView(const std::string& name) const {
  auto clone = std::make_unique<Viewer>(name, canvas_name_, registry_);
  clone->content_ = content_;
  clone->cameras_ = cameras_;
  clone->active_member_ = active_member_;
  clone->travel_history_ = travel_history_;
  clone->glasses_ = glasses_;
  return clone;
}

Status Viewer::SetActiveMember(size_t member) {
  if (member >= cameras_.size()) {
    return Status::OutOfRange("group member " + std::to_string(member) +
                              " out of range (viewer has " +
                              std::to_string(cameras_.size()) + ")");
  }
  active_member_ = member;
  return Status::OK();
}

void Viewer::Pan(double dx, double dy) { PropagatePan(dx, dy, 0); }

void Viewer::PropagatePan(double dx, double dy, int depth) {
  if (depth > kMaxSlaveDepth) return;
  cameras_[active_member_].Pan(dx, dy);
  for (Viewer* slave : slaves_) slave->PropagatePan(dx, dy, depth + 1);
}

void Viewer::Zoom(double factor) { PropagateZoom(factor, 0); }

void Viewer::PropagateZoom(double factor, int depth) {
  if (depth > kMaxSlaveDepth) return;
  cameras_[active_member_].Zoom(factor);
  for (Viewer* slave : slaves_) slave->PropagateZoom(factor, depth + 1);
}

void Viewer::SetSlider(size_t dim, SliderRange range) {
  cameras_[active_member_].SetSlider(dim, range);
  for (Viewer* slave : slaves_) slave->cameras_[slave->active_member_].SetSlider(dim, range);
}

Status Viewer::FitContent(int viewport_w, int viewport_h) {
  TIOGA2_RETURN_IF_ERROR(Refresh());
  if (content_.members().empty()) return Status::OK();
  for (size_t m = 0; m < content_.size(); ++m) {
    const display::Composite& composite = content_.members()[m];
    draw::BBox world{0, 0, 0, 0};
    bool first = true;
    for (const display::CompositeEntry& entry : composite.entries()) {
      const display::DisplayRelation& relation = entry.relation;
      for (size_t row = 0; row < relation.num_rows(); ++row) {
        Result<std::vector<double>> location = relation.LocationOf(row);
        if (!location.ok()) continue;
        double x = (*location)[0] + entry.OffsetAt(0);
        double y = (*location)[1] + entry.OffsetAt(1);
        if (first) {
          world = draw::BBox{x, y, x, y};
          first = false;
        } else {
          world.Extend(x, y);
        }
      }
    }
    cameras_[m] = Camera::Fit(world, viewport_w, viewport_h);
  }
  return Status::OK();
}

Result<bool> Viewer::TryPassThrough(double pass_elevation) {
  if (content_.members().empty()) return false;
  const Camera& camera = cameras_[active_member_];
  if (camera.elevation() > pass_elevation) return false;
  const display::Composite& composite = content_.members()[active_member_];
  TIOGA2_ASSIGN_OR_RETURN(
      std::optional<draw::WormholeSpec> wormhole,
      FindWormholeAt(composite, camera, camera.center_x(), camera.center_y()));
  if (!wormhole.has_value()) return false;
  if (registry_ == nullptr || !registry_->Has(wormhole->destination_canvas)) {
    return Status::NotFound("wormhole destination canvas '" +
                            wormhole->destination_canvas + "' is not registered");
  }
  travel_history_.push_back(TravelRecord{canvas_name_, camera});
  canvas_name_ = wormhole->destination_canvas;
  TIOGA2_RETURN_IF_ERROR(Refresh());
  // "The user is initially positioned viewing the data for station s" —
  // the wormhole specifies the initial location and elevation (§6.2).
  Camera landing(wormhole->initial_x, wormhole->initial_y, wormhole->elevation,
                 camera.viewport_width(), camera.viewport_height());
  for (Camera& member_camera : cameras_) member_camera = landing;
  active_member_ = 0;
  return true;
}

Result<bool> Viewer::TravelBack() {
  if (travel_history_.empty()) return false;
  TravelRecord record = travel_history_.back();
  travel_history_.pop_back();
  canvas_name_ = record.canvas_name;
  TIOGA2_RETURN_IF_ERROR(Refresh());
  for (Camera& member_camera : cameras_) member_camera = record.camera;
  active_member_ = 0;
  return true;
}

Result<RenderStats> Viewer::RenderRearView(render::Surface* surface) const {
  RenderStats stats;
  if (travel_history_.empty()) {
    surface->Clear(draw::kLightGray);
    return stats;
  }
  const TravelRecord& record = travel_history_.back();
  if (registry_ == nullptr) return Status::FailedPrecondition("viewer has no registry");
  TIOGA2_ASSIGN_OR_RETURN(display::Displayable content,
                          registry_->Resolve(record.canvas_name));
  display::Group group = display::AsGroup(content);
  if (group.members().empty()) return stats;
  surface->Clear(draw::kLightGray);
  Camera mirror_camera(record.camera.center_x(), record.camera.center_y(),
                       record.camera.elevation(), surface->width(), surface->height());
  RenderOptions options;
  options.underside = true;
  options.registry = registry_;
  options.wormhole_depth = 0;
  return RenderComposite(group.members()[0], mirror_camera, surface, options);
}

Status Viewer::SlaveTo(Viewer* other) {
  if (other == nullptr || other == this) {
    return Status::InvalidArgument("cannot slave a viewer to itself");
  }
  // "Slaving is only defined for two viewers with the same dimensions"
  // (§7.1): compare the dimensions of the active composites.
  if (!content_.members().empty() && !other->content_.members().empty()) {
    size_t mine = content_.members()[active_member_].Dimension();
    size_t theirs = other->content_.members()[other->active_member_].Dimension();
    if (mine != theirs) {
      return Status::FailedPrecondition(
          "slaving needs equal dimensions: " + std::to_string(mine) + " vs " +
          std::to_string(theirs));
    }
  }
  if (std::find(slaves_.begin(), slaves_.end(), other) == slaves_.end()) {
    slaves_.push_back(other);
  }
  return Status::OK();
}

void Viewer::Unslave(Viewer* other) {
  slaves_.erase(std::remove(slaves_.begin(), slaves_.end(), other), slaves_.end());
  if (other != nullptr) {
    other->slaves_.erase(std::remove(other->slaves_.begin(), other->slaves_.end(), this),
                         other->slaves_.end());
  }
}

size_t Viewer::AddMagnifyingGlass(MagnifyingGlass glass) {
  glasses_.push_back(std::move(glass));
  return glasses_.size() - 1;
}

Status Viewer::RemoveMagnifyingGlass(size_t index) {
  if (index >= glasses_.size()) {
    return Status::OutOfRange("no magnifying glass " + std::to_string(index));
  }
  glasses_.erase(glasses_.begin() + static_cast<ptrdiff_t>(index));
  return Status::OK();
}

render::DeviceRect Viewer::CellRect(size_t member, int width, int height) const {
  auto [rows, columns] = content_.GridShape();
  if (rows == 0 || columns == 0) {
    return render::DeviceRect{0, 0, static_cast<double>(width),
                              static_cast<double>(height)};
  }
  auto [row, column] = content_.CellOf(member);
  double cell_w = static_cast<double>(width) / static_cast<double>(columns);
  double cell_h = static_cast<double>(height) / static_cast<double>(rows);
  return render::DeviceRect{column * cell_w, row * cell_h, cell_w, cell_h};
}

Result<RenderStats> Viewer::RenderTo(render::Surface* surface,
                                     const RenderOptions& base_options) const {
  RenderStats stats;
  RenderOptions options = base_options;
  if (options.registry == nullptr) options.registry = registry_;
  if (content_.members().empty()) return stats;

  for (size_t m = 0; m < content_.size(); ++m) {
    render::DeviceRect cell = CellRect(m, surface->width(), surface->height());
    const Camera& member_camera = cameras_[m];
    // Render the member through its own camera, scaled into its layout cell.
    Camera cell_camera(member_camera.center_x(), member_camera.center_y(),
                       member_camera.elevation(),
                       static_cast<int>(std::lround(cell.width)),
                       static_cast<int>(std::lround(cell.height)));
    for (size_t dim = 2; dim < 16; ++dim) {
      std::optional<SliderRange> range = member_camera.Slider(dim);
      if (range.has_value()) cell_camera.SetSlider(dim, *range);
    }
    surface->PushViewport(cell, cell.width, cell.height);
    Result<RenderStats> member_stats =
        RenderComposite(content_.members()[m], cell_camera, surface, options);
    surface->PopViewport();
    TIOGA2_RETURN_IF_ERROR(member_stats.status());
    stats += member_stats.value();
    // Cell separator for multi-member groups.
    if (content_.size() > 1) {
      draw::Style border;
      surface->DrawRect(cell.x, cell.y, cell.width - 1, cell.height - 1, border,
                        draw::kGray);
    }
  }

  // Magnifying glasses draw on top of the active member's view (§7.2).
  const Camera& outer = cameras_[active_member_];
  // The member's on-surface camera: same position, but viewported to the
  // member's layout cell so device-space glass rects map correctly.
  render::DeviceRect active_cell =
      CellRect(active_member_, surface->width(), surface->height());
  Camera outer_on_surface(outer.center_x(), outer.center_y(), outer.elevation(),
                          static_cast<int>(std::lround(active_cell.width)),
                          static_cast<int>(std::lround(active_cell.height)));
  for (const MagnifyingGlass& glass : glasses_) {
    double focus_x = glass.center_x;
    double focus_y = glass.center_y;
    if (glass.slaved) {
      // Lock the glass focus to the world point under its rect center
      // (rect coordinates are relative to the whole surface).
      outer_on_surface.DeviceToWorld(
          glass.rect.x + glass.rect.width / 2 - active_cell.x,
          glass.rect.y + glass.rect.height / 2 - active_cell.y, &focus_x, &focus_y);
    }
    int inner_w = std::max(1, static_cast<int>(std::lround(glass.rect.width)));
    int inner_h = std::max(1, static_cast<int>(std::lround(glass.rect.height)));
    Camera inner(focus_x, focus_y, outer.elevation() / std::max(glass.zoom, 1e-9),
                 inner_w, inner_h);
    for (size_t dim = 2; dim < 16; ++dim) {
      std::optional<SliderRange> range = outer.Slider(dim);
      if (range.has_value()) inner.SetSlider(dim, *range);
    }
    // Optionally switch display attributes inside the glass (Figure 9).
    display::Composite magnified = content_.members()[active_member_];
    if (glass.display_attribute.has_value()) {
      for (display::CompositeEntry& entry : magnified.mutable_entries()) {
        Result<display::DisplayRelation> switched =
            entry.relation.SetDisplayAttribute(*glass.display_attribute);
        if (switched.ok()) entry.relation = std::move(switched).value();
      }
    }
    surface->PushViewport(glass.rect, inner_w, inner_h);
    Result<RenderStats> glass_stats = RenderComposite(magnified, inner, surface, options);
    surface->PopViewport();
    TIOGA2_RETURN_IF_ERROR(glass_stats.status());
    stats += glass_stats.value();
    draw::Style frame;
    frame.thickness = 2;
    surface->DrawRect(glass.rect.x, glass.rect.y, glass.rect.width, glass.rect.height,
                      frame, draw::kBlack);
  }
  return stats;
}

Result<RenderStats> Viewer::RenderDeltaTo(render::Surface* surface,
                                          const dataflow::ValueDelta& delta,
                                          const draw::Color& background,
                                          const RenderOptions& base_options) {
  display::Group old_content = content_;
  TIOGA2_RETURN_IF_ERROR(Refresh());
  RenderOptions options = base_options;
  if (options.registry == nullptr) options.registry = registry_;

  // Byte-identical content: the previous render is already correct.
  if (delta.unchanged()) return RenderStats{};

  auto full_repaint = [&]() -> Result<RenderStats> {
    surface->Clear(background);
    return RenderTo(surface, base_options);
  };

  if (options.underside || !glasses_.empty() ||
      content_.size() != old_content.size()) {
    return full_repaint();
  }

  // One dirty rectangle per edited member, covering the old and new device
  // footprints of every edited tuple.
  std::vector<DirtyRect> rects;
  for (const dataflow::MemberDelta& m : delta.members) {
    if (m.ops.empty()) continue;
    if (m.group_member >= content_.size() ||
        m.member >= content_.members()[m.group_member].size() ||
        m.member >= old_content.members()[m.group_member].size()) {
      return full_repaint();
    }
    render::DeviceRect cell =
        CellRect(m.group_member, surface->width(), surface->height());
    const Camera& member_camera = cameras_[m.group_member];
    Camera cell_camera(member_camera.center_x(), member_camera.center_y(),
                       member_camera.elevation(),
                       static_cast<int>(std::lround(cell.width)),
                       static_cast<int>(std::lround(cell.height)));
    const display::CompositeEntry& old_entry =
        old_content.members()[m.group_member].entries()[m.member];
    const display::CompositeEntry& new_entry =
        content_.members()[m.group_member].entries()[m.member];
    DirtyRect dirty;
    for (const dataflow::RowOp& op : m.ops) {
      // Inserts and deletes shift later rows; bounding them would mean
      // diffing the whole tail, at which point a full repaint is simpler.
      if (op.kind != dataflow::RowOp::Kind::kUpdate) return full_repaint();
      if (!ExtendTupleDeviceBounds(old_entry, cell_camera, cell, op.row, &dirty) ||
          !ExtendTupleDeviceBounds(new_entry, cell_camera, cell, op.row, &dirty)) {
        return full_repaint();
      }
    }
    if (!dirty.empty) rects.push_back(dirty);
  }

  // Repaint each dirty rectangle: erase to the background, then re-render
  // the whole viewer under a pixel clip. Drawing order inside the clip is
  // identical to a full render, so overlapping neighbours repaint exactly as
  // they would from scratch; pixels outside the clip are untouched.
  RenderStats stats;
  for (const DirtyRect& r : rects) {
    render::DeviceRect rect{r.x0 - kDirtyPad, r.y0 - kDirtyPad,
                            (r.x1 - r.x0) + 2 * kDirtyPad,
                            (r.y1 - r.y0) + 2 * kDirtyPad};
    surface->PushClip(rect);
    draw::Style fill;
    fill.fill = draw::FillMode::kFilled;
    surface->DrawRect(rect.x, rect.y, rect.width, rect.height, fill, background);
    Result<RenderStats> pass = RenderTo(surface, options);
    surface->PopClip();
    TIOGA2_RETURN_IF_ERROR(pass.status());
    stats += pass.value();
  }
  return stats;
}

Result<std::vector<ElevationBar>> Viewer::ElevationMap(size_t member) const {
  if (member >= content_.size()) {
    return Status::OutOfRange("group member " + std::to_string(member) +
                              " out of range");
  }
  std::vector<ElevationBar> bars;
  const display::Composite& composite = content_.members()[member];
  for (size_t i = 0; i < composite.size(); ++i) {
    const display::DisplayRelation& relation = composite.entries()[i].relation;
    bars.push_back(ElevationBar{relation.name(), relation.elevation_range().min,
                                relation.elevation_range().max, i});
  }
  return bars;
}

Result<std::optional<Hit>> Viewer::HitTestAt(render::Surface* surface_like_dims,
                                             double dx, double dy) const {
  if (content_.members().empty()) return std::optional<Hit>();
  int width = surface_like_dims->width();
  int height = surface_like_dims->height();
  for (size_t m = 0; m < content_.size(); ++m) {
    render::DeviceRect cell = CellRect(m, width, height);
    if (dx < cell.x || dx > cell.x + cell.width || dy < cell.y ||
        dy > cell.y + cell.height) {
      continue;
    }
    Camera cell_camera(cameras_[m].center_x(), cameras_[m].center_y(),
                       cameras_[m].elevation(),
                       static_cast<int>(std::lround(cell.width)),
                       static_cast<int>(std::lround(cell.height)));
    for (size_t dim = 2; dim < 16; ++dim) {
      std::optional<SliderRange> range = cameras_[m].Slider(dim);
      if (range.has_value()) cell_camera.SetSlider(dim, *range);
    }
    TIOGA2_ASSIGN_OR_RETURN(std::optional<Hit> hit,
                            HitTest(content_.members()[m], cell_camera, dx - cell.x,
                                    dy - cell.y));
    if (hit.has_value()) {
      hit->group_member = m;
      return hit;
    }
  }
  return std::optional<Hit>();
}

}  // namespace tioga2::viewer
