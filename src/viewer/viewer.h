#ifndef TIOGA2_VIEWER_VIEWER_H_
#define TIOGA2_VIEWER_VIEWER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "dataflow/delta.h"
#include "display/displayable.h"
#include "render/surface.h"
#include "viewer/camera.h"
#include "viewer/canvas_registry.h"
#include "viewer/canvas_renderer.h"

namespace tioga2::viewer {

/// One bar of the elevation map (§6.1): the visible elevation band and
/// drawing order of a composite member on the current canvas.
struct ElevationBar {
  std::string relation_name;
  double min_elevation;
  double max_elevation;
  size_t drawing_order;  // 0 = drawn first (bottom)
};

/// A magnifying glass (§7.2): a viewer placed inside another viewer. The
/// glass occupies `rect` (device coordinates of the outer viewport) and
/// shows the area under it magnified by `zoom`, optionally through an
/// alternative display attribute (Figure 9's precipitation magnifier).
struct MagnifyingGlass {
  render::DeviceRect rect;
  double zoom = 2.0;
  /// When set, relations that have this display attribute are switched to it
  /// inside the glass.
  std::optional<std::string> display_attribute;
  /// Slaved glasses keep their world focus locked to the outer viewer
  /// (§7.2: "the inner and outer viewers may be slaved so that they move in
  /// unison"); unslaved glasses keep an independent world center.
  bool slaved = true;
  /// World focus for unslaved glasses.
  double center_x = 0;
  double center_y = 0;
};

/// One entry of the travel history behind a rear view mirror (§6.3).
struct TravelRecord {
  std::string canvas_name;
  Camera camera;
};

/// A viewer: a canvas window (§3) showing one displayable with pan, zoom
/// (elevation), sliders, wormhole travel, a rear view mirror, slaving, and
/// magnifying glasses.
///
/// For a group displayable the viewer keeps one camera per member ("the
/// user may independently pan and zoom in each of the grouped
/// visualizations", §2); `active_member` selects which camera the
/// navigation calls address, mirroring the paper's "cycle through all of the
/// elevation maps".
class Viewer {
 public:
  /// Creates a viewer named `name` showing canvas `canvas_name`, resolved
  /// through `registry` (which must outlive the viewer).
  Viewer(std::string name, std::string canvas_name, const CanvasRegistry* registry);

  const std::string& name() const { return name_; }
  const std::string& canvas_name() const { return canvas_name_; }

  /// Re-resolves the canvas content through the registry (call after
  /// program edits; the dataflow engine memoizes, so this is cheap when
  /// nothing changed). Cameras are preserved where the member count allows.
  Status Refresh();

  /// Clones this viewer: same canvas, cameras, sliders, magnifying glasses
  /// and travel history, independently navigable afterwards — the "cloning
  /// of viewers" feature the original Tioga specified but never implemented
  /// (§1.1). Slaving relationships are not cloned.
  std::unique_ptr<Viewer> CloneView(const std::string& name) const;

  /// The content currently shown (normalized to a group).
  const display::Group& content() const { return content_; }

  /// Number of group members (= cameras).
  size_t num_members() const { return cameras_.size(); }

  size_t active_member() const { return active_member_; }
  Status SetActiveMember(size_t member);

  /// Camera of the active member.
  const Camera& camera() const { return cameras_[active_member_]; }
  Camera* mutable_camera() { return &cameras_[active_member_]; }
  const Camera& camera_of(size_t member) const { return cameras_[member]; }
  Camera* mutable_camera_of(size_t member) { return &cameras_[member]; }

  // ---- Navigation (propagates to slaved viewers) ----

  /// Pans the active member by a world-space delta.
  void Pan(double dx, double dy);

  /// Zooms the active member by `factor` (> 1 descends toward the canvas).
  void Zoom(double factor);

  /// Sets a slider range on the active member.
  void SetSlider(size_t dim, SliderRange range);

  /// Frames the active member's content.
  Status FitContent(int viewport_w, int viewport_h);

  // ---- Wormholes and the rear view mirror (§6.2, §6.3) ----

  /// If the active camera sits over a wormhole and has descended to (or
  /// below) the pass-through elevation, travels through it: the viewer
  /// switches to the destination canvas and the departed canvas is pushed
  /// onto the travel history. Returns true when travel happened.
  Result<bool> TryPassThrough(double pass_elevation = 1.0);

  /// Travels back through the most recent wormhole ("find his way home").
  Result<bool> TravelBack();

  /// The canvases travelled through, most recent last.
  const std::vector<TravelRecord>& travel_history() const { return travel_history_; }

  /// Renders the rear view mirror: the underside of the canvas most
  /// recently travelled through, horizontally mirrored. Renders nothing
  /// (and reports zero stats) when there is no history.
  Result<RenderStats> RenderRearView(render::Surface* surface) const;

  // ---- Slaving (§7.1) ----

  /// Slaves `other` to this viewer: navigation applied here is replayed on
  /// `other` (with the current offset between them maintained). Both
  /// viewers must show displayables of equal dimension.
  Status SlaveTo(Viewer* other);

  /// Removes a slaving relationship in both directions.
  void Unslave(Viewer* other);

  /// Number of viewers slaved to this one.
  size_t num_slaves() const { return slaves_.size(); }

  // ---- Magnifying glasses (§7.2) ----

  /// Adds a magnifying glass; returns its index.
  size_t AddMagnifyingGlass(MagnifyingGlass glass);
  Status RemoveMagnifyingGlass(size_t index);
  const std::vector<MagnifyingGlass>& magnifying_glasses() const { return glasses_; }

  // ---- Rendering ----

  /// Renders all group members into `surface` (laid out per the group's
  /// layout), then any magnifying glasses on top.
  Result<RenderStats> RenderTo(render::Surface* surface,
                               const RenderOptions& base_options = {}) const;

  /// Incremental repaint after a §8 delta update. `surface` must still hold
  /// the previous full render of this viewer (over `background`), with the
  /// cameras unchanged since then; `delta` is the edit script for this
  /// viewer's canvas (Session::LastCanvasDelta). The viewer re-resolves its
  /// content, derives conservative device-space dirty rectangles from the
  /// old and new versions of each edited tuple, and repaints only those
  /// rectangles under a pixel clip — on a RasterSurface the result is
  /// pixel-identical to a full Clear + RenderTo of the new content.
  ///
  /// Falls back to exactly that full repaint whenever the fast path cannot
  /// bound the damage: a non-update row op (insert/delete), a structure
  /// mismatch between old and new content, magnifying glasses, or underside
  /// rendering.
  Result<RenderStats> RenderDeltaTo(render::Surface* surface,
                                    const dataflow::ValueDelta& delta,
                                    const draw::Color& background = draw::kWhite,
                                    const RenderOptions& base_options = {});

  /// Elevation map of group member `member` (§6.1).
  Result<std::vector<ElevationBar>> ElevationMap(size_t member) const;

  /// Hit-test at device coordinates of the full viewer surface; accounts
  /// for the group layout. Returns the member/relation/row hit, if any.
  Result<std::optional<Hit>> HitTestAt(render::Surface* surface_like_dims, double dx,
                                       double dy) const;

 private:
  /// Returns the layout cell of `member` on a surface of the given size.
  render::DeviceRect CellRect(size_t member, int width, int height) const;

  void PropagatePan(double dx, double dy, int depth);
  void PropagateZoom(double factor, int depth);

  std::string name_;
  std::string canvas_name_;
  const CanvasRegistry* registry_;
  display::Group content_;
  std::vector<Camera> cameras_;
  size_t active_member_ = 0;
  std::vector<TravelRecord> travel_history_;
  std::vector<Viewer*> slaves_;
  std::vector<MagnifyingGlass> glasses_;
};

}  // namespace tioga2::viewer

#endif  // TIOGA2_VIEWER_VIEWER_H_
