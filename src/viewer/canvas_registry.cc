#include "viewer/canvas_registry.h"

namespace tioga2::viewer {

void CanvasRegistry::Register(const std::string& name, Provider provider) {
  std::lock_guard<std::mutex> lock(mu_);
  providers_[name] = std::move(provider);
}

void CanvasRegistry::Unregister(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  providers_.erase(name);
}

Result<display::Displayable> CanvasRegistry::Resolve(const std::string& name) const {
  Provider provider;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = providers_.find(name);
    if (it == providers_.end()) {
      return Status::NotFound("no canvas named '" + name + "'");
    }
    provider = it->second;
  }
  // Invoked outside the lock: the provider evaluates through the engine, and
  // rendering a wormhole re-enters Resolve for the destination canvas.
  return provider();
}

bool CanvasRegistry::Has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return providers_.find(name) != providers_.end();
}

std::vector<std::string> CanvasRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(providers_.size());
  for (const auto& [name, provider] : providers_) names.push_back(name);
  return names;
}

}  // namespace tioga2::viewer
