#include "viewer/canvas_registry.h"

namespace tioga2::viewer {

CanvasRegistry::CanvasRegistry() {
  snapshot_.store(new Snapshot(), std::memory_order_release);
}

CanvasRegistry::~CanvasRegistry() {
  for (const Snapshot* old : parked_) delete old;
  delete snapshot_.load(std::memory_order_acquire);
}

void CanvasRegistry::PublishLocked(const Snapshot* fresh) {
  const Snapshot* old = snapshot_.exchange(fresh, std::memory_order_acq_rel);
  if (domain_ != nullptr) {
    domain_->Retire([old] { delete old; });
  } else {
    // No domain ⇒ a concurrent reader may still exist (tests exercise the
    // registry bare); park the snapshot instead of guessing quiescence.
    parked_.push_back(old);
  }
}

void CanvasRegistry::Register(const std::string& name, Provider provider) {
  std::lock_guard<std::mutex> lock(mu_);
  auto* fresh = new Snapshot(*snapshot_.load(std::memory_order_relaxed));
  (*fresh)[name] = std::move(provider);
  PublishLocked(fresh);
}

void CanvasRegistry::Unregister(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const Snapshot* current = snapshot_.load(std::memory_order_relaxed);
  if (current->find(name) == current->end()) return;  // idempotent, no churn
  auto* fresh = new Snapshot(*current);
  fresh->erase(name);
  PublishLocked(fresh);
}

Result<display::Displayable> CanvasRegistry::Resolve(const std::string& name) const {
  Provider provider;
  {
    common::ReclamationDomain::Guard guard(domain_);
    const Snapshot* snap = snapshot_.load(std::memory_order_acquire);
    auto it = snap->find(name);
    if (it == snap->end()) {
      return Status::NotFound("no canvas named '" + name + "'");
    }
    provider = it->second;  // copied out while pinned
  }
  // Invoked outside the pin: the provider evaluates through the engine, and
  // rendering a wormhole re-enters Resolve for the destination canvas.
  return provider();
}

bool CanvasRegistry::Has(const std::string& name) const {
  common::ReclamationDomain::Guard guard(domain_);
  const Snapshot* snap = snapshot_.load(std::memory_order_acquire);
  return snap->find(name) != snap->end();
}

std::vector<std::string> CanvasRegistry::Names() const {
  common::ReclamationDomain::Guard guard(domain_);
  const Snapshot* snap = snapshot_.load(std::memory_order_acquire);
  std::vector<std::string> names;
  names.reserve(snap->size());
  for (const auto& [name, provider] : *snap) names.push_back(name);
  return names;
}

}  // namespace tioga2::viewer
