#include "viewer/canvas_registry.h"

namespace tioga2::viewer {

void CanvasRegistry::Register(const std::string& name, Provider provider) {
  providers_[name] = std::move(provider);
}

void CanvasRegistry::Unregister(const std::string& name) { providers_.erase(name); }

Result<display::Displayable> CanvasRegistry::Resolve(const std::string& name) const {
  auto it = providers_.find(name);
  if (it == providers_.end()) {
    return Status::NotFound("no canvas named '" + name + "'");
  }
  return it->second();
}

bool CanvasRegistry::Has(const std::string& name) const {
  return providers_.find(name) != providers_.end();
}

std::vector<std::string> CanvasRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(providers_.size());
  for (const auto& [name, provider] : providers_) names.push_back(name);
  return names;
}

}  // namespace tioga2::viewer
