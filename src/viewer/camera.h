#ifndef TIOGA2_VIEWER_CAMERA_H_
#define TIOGA2_VIEWER_CAMERA_H_

#include <optional>
#include <vector>

#include "draw/drawable.h"

namespace tioga2::viewer {

/// The visible interval of one slider dimension (§3: "canvas slider bars
/// control panning in any remaining dimensions").
struct SliderRange {
  double lo = -1e300;
  double hi = 1e300;

  bool Contains(double v) const { return v >= lo && v <= hi; }

  friend bool operator==(const SliderRange& a, const SliderRange& b) = default;
};

/// The n+1-dimensional viewer position of §2: a 2-D center for the screen
/// dimensions, ranges for the n-2 slider dimensions, and the elevation.
///
/// Elevation semantics: the elevation is the height of the world-space
/// window visible in the viewport, so zooming in (descending toward the
/// canvas) decreases it; reaching zero elevation is the wormhole
/// pass-through condition of §6.2.
class Camera {
 public:
  Camera() = default;
  Camera(double center_x, double center_y, double elevation, int viewport_w,
         int viewport_h);

  /// Frames `world` with a margin; elevation = padded world height.
  static Camera Fit(const draw::BBox& world, int viewport_w, int viewport_h,
                    double margin_fraction = 0.05);

  double center_x() const { return center_x_; }
  double center_y() const { return center_y_; }
  double elevation() const { return elevation_; }
  int viewport_width() const { return viewport_w_; }
  int viewport_height() const { return viewport_h_; }

  /// Pixels per world unit.
  double Scale() const { return viewport_h_ / elevation_; }

  /// World (y-up) to device (y-down) coordinates.
  void WorldToDevice(double wx, double wy, double* dx, double* dy) const;
  void DeviceToWorld(double dx, double dy, double* wx, double* wy) const;

  /// The world rectangle visible through the viewport.
  draw::BBox VisibleWorld() const;

  /// Pans by a world-space delta.
  void Pan(double dx, double dy);

  /// Moves the center to (x, y).
  void MoveTo(double x, double y);

  /// Multiplies the zoom by `factor` (> 1 zooms in, i.e. divides the
  /// elevation). Elevation is clamped to stay positive.
  void Zoom(double factor);

  /// Sets the elevation directly (clamped positive).
  void SetElevation(double elevation);

  // ---- Slider dimensions (location dims 2, 3, ...) ----

  /// Sets the visible range of slider dimension `dim` (dim >= 2).
  void SetSlider(size_t dim, SliderRange range);

  /// The range of slider dimension `dim`, if one has been set.
  std::optional<SliderRange> Slider(size_t dim) const;

  /// True iff a location value passes the slider filter for `dim`
  /// (dims without a configured slider accept everything).
  bool SliderAccepts(size_t dim, double value) const;

  friend bool operator==(const Camera& a, const Camera& b) = default;

 private:
  double center_x_ = 0;
  double center_y_ = 0;
  double elevation_ = 100;
  int viewport_w_ = 640;
  int viewport_h_ = 480;
  // sliders_[i] is the range for location dimension i + 2.
  std::vector<std::optional<SliderRange>> sliders_;
};

}  // namespace tioga2::viewer

#endif  // TIOGA2_VIEWER_CAMERA_H_
