#ifndef TIOGA2_VIEWER_CANVAS_REGISTRY_H_
#define TIOGA2_VIEWER_CANVAS_REGISTRY_H_

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "display/displayable.h"

namespace tioga2::viewer {

/// Maps canvas names to the displayables shown on them. Wormhole drawables
/// (§6.2) name their destination canvas; the registry resolves the name when
/// the wormhole is rendered or flown through. Providers are functions so
/// that resolution pulls through the (lazy) dataflow engine.
///
/// The registration map is mutex-guarded so concurrent sessions (see
/// runtime::SessionServer) can resolve while another registers. Resolve
/// copies the provider out and invokes it OUTSIDE the lock: providers run
/// engine evaluations whose rendering may re-enter Resolve for a wormhole
/// destination, which would deadlock if the lock were held.
class CanvasRegistry {
 public:
  using Provider = std::function<Result<display::Displayable>()>;

  CanvasRegistry() = default;
  CanvasRegistry(const CanvasRegistry&) = delete;
  CanvasRegistry& operator=(const CanvasRegistry&) = delete;

  /// Registers (or replaces) the provider for `name`.
  void Register(const std::string& name, Provider provider);

  /// Removes a canvas (when its viewer box is deleted). Idempotent.
  void Unregister(const std::string& name);

  /// Evaluates the provider for `name`.
  Result<display::Displayable> Resolve(const std::string& name) const;

  bool Has(const std::string& name) const;

  /// All canvas names, sorted.
  std::vector<std::string> Names() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Provider> providers_;
};

}  // namespace tioga2::viewer

#endif  // TIOGA2_VIEWER_CANVAS_REGISTRY_H_
