#ifndef TIOGA2_VIEWER_CANVAS_REGISTRY_H_
#define TIOGA2_VIEWER_CANVAS_REGISTRY_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/reclaim.h"
#include "common/result.h"
#include "display/displayable.h"

namespace tioga2::viewer {

/// Maps canvas names to the displayables shown on them. Wormhole drawables
/// (§6.2) name their destination canvas; the registry resolves the name when
/// the wormhole is rendered or flown through. Providers are functions so
/// that resolution pulls through the (lazy) dataflow engine.
///
/// Concurrency (DESIGN.md §13): reads are lock-free. The name→provider map
/// is published as an immutable snapshot (release store / acquire load);
/// Resolve, Has, and Names pin the reclamation domain, read the current
/// snapshot, and copy whatever they need out while pinned. Writers
/// (Register/Unregister) serialize on mu_ and retire the replaced snapshot
/// through the domain; without a domain wired, replaced snapshots are parked
/// until destruction (registration traffic is human-rate, so the parking
/// list stays tiny). Resolve still invokes the provider OUTSIDE any pin or
/// lock: providers run engine evaluations whose rendering may re-enter
/// Resolve for a wormhole destination.
class CanvasRegistry {
 public:
  using Provider = std::function<Result<display::Displayable>()>;

  CanvasRegistry();
  ~CanvasRegistry();
  CanvasRegistry(const CanvasRegistry&) = delete;
  CanvasRegistry& operator=(const CanvasRegistry&) = delete;

  /// Wires the reclamation domain readers pin. Must be called before the
  /// first concurrent read; the domain must outlive the registry.
  void set_reclamation_domain(common::ReclamationDomain* domain) {
    domain_ = domain;
  }

  /// Registers (or replaces) the provider for `name`.
  void Register(const std::string& name, Provider provider);

  /// Removes a canvas (when its viewer box is deleted). Idempotent.
  void Unregister(const std::string& name);

  /// Evaluates the provider for `name`.
  Result<display::Displayable> Resolve(const std::string& name) const;

  bool Has(const std::string& name) const;

  /// All canvas names, sorted.
  std::vector<std::string> Names() const;

 private:
  using Snapshot = std::map<std::string, Provider>;

  /// Publishes a mutated copy of the current snapshot; caller holds mu_.
  void PublishLocked(const Snapshot* fresh);

  common::ReclamationDomain* domain_ = nullptr;
  mutable std::mutex mu_;  // writers only
  std::atomic<const Snapshot*> snapshot_;  // never null
  std::vector<const Snapshot*> parked_;  // no-domain fallback, freed at dtor
};

}  // namespace tioga2::viewer

#endif  // TIOGA2_VIEWER_CANVAS_REGISTRY_H_
