#include "viewer/camera.h"

#include <algorithm>

namespace tioga2::viewer {

namespace {
constexpr double kMinElevation = 1e-9;
}  // namespace

Camera::Camera(double center_x, double center_y, double elevation, int viewport_w,
               int viewport_h)
    : center_x_(center_x),
      center_y_(center_y),
      elevation_(std::max(elevation, kMinElevation)),
      viewport_w_(std::max(1, viewport_w)),
      viewport_h_(std::max(1, viewport_h)) {}

Camera Camera::Fit(const draw::BBox& world, int viewport_w, int viewport_h,
                   double margin_fraction) {
  double cx = (world.min_x + world.max_x) / 2;
  double cy = (world.min_y + world.max_y) / 2;
  double height = world.Height();
  double width = world.Width();
  double aspect = viewport_h > 0 ? static_cast<double>(viewport_w) / viewport_h : 1.0;
  // The elevation must cover the world height, and the world width once
  // translated through the viewport aspect ratio.
  double needed = std::max(height, aspect > 0 ? width / aspect : width);
  if (needed <= 0) needed = 1.0;
  needed *= 1.0 + 2.0 * margin_fraction;
  return Camera(cx, cy, needed, viewport_w, viewport_h);
}

void Camera::WorldToDevice(double wx, double wy, double* dx, double* dy) const {
  double s = Scale();
  *dx = (wx - center_x_) * s + viewport_w_ / 2.0;
  *dy = viewport_h_ / 2.0 - (wy - center_y_) * s;
}

void Camera::DeviceToWorld(double dx, double dy, double* wx, double* wy) const {
  double s = Scale();
  *wx = (dx - viewport_w_ / 2.0) / s + center_x_;
  *wy = center_y_ - (dy - viewport_h_ / 2.0) / s;
}

draw::BBox Camera::VisibleWorld() const {
  double half_h = elevation_ / 2.0;
  double half_w = half_h * viewport_w_ / viewport_h_;
  return draw::BBox{center_x_ - half_w, center_y_ - half_h, center_x_ + half_w,
                    center_y_ + half_h};
}

void Camera::Pan(double dx, double dy) {
  center_x_ += dx;
  center_y_ += dy;
}

void Camera::MoveTo(double x, double y) {
  center_x_ = x;
  center_y_ = y;
}

void Camera::Zoom(double factor) {
  if (factor <= 0) return;
  elevation_ = std::max(elevation_ / factor, kMinElevation);
}

void Camera::SetElevation(double elevation) {
  elevation_ = std::max(elevation, kMinElevation);
}

void Camera::SetSlider(size_t dim, SliderRange range) {
  if (dim < 2) return;
  size_t index = dim - 2;
  if (sliders_.size() <= index) sliders_.resize(index + 1);
  sliders_[index] = range;
}

std::optional<SliderRange> Camera::Slider(size_t dim) const {
  if (dim < 2) return std::nullopt;
  size_t index = dim - 2;
  if (index >= sliders_.size()) return std::nullopt;
  return sliders_[index];
}

bool Camera::SliderAccepts(size_t dim, double value) const {
  std::optional<SliderRange> range = Slider(dim);
  return !range.has_value() || range->Contains(value);
}

}  // namespace tioga2::viewer
