#ifndef TIOGA2_VIEWER_ELEVATION_MAP_H_
#define TIOGA2_VIEWER_ELEVATION_MAP_H_

#include <vector>

#include "common/result.h"
#include "render/surface.h"
#include "viewer/viewer.h"

namespace tioga2::viewer {

/// Draws the elevation map widget (§6.1): "a bar-chart display of the
/// maximum/minimum elevations and drawing order of all elements of a
/// composite on the current canvas", with the elevation control — "a dashed
/// line through the elevation map" (§3) — marking the current elevation.
///
/// Layout: one horizontal bar per composite member, bottom bar drawn first
/// in the composite (drawing order reads bottom-up); the x axis spans
/// elevations [0, max] with unbounded ranges clamped to the scale.
Status RenderElevationMap(const std::vector<ElevationBar>& bars,
                          double current_elevation, const render::DeviceRect& rect,
                          render::Surface* surface);

/// The widget's inverse mapping for direct manipulation: which bar (if any)
/// and which elevation a click at (dx, dy) addresses. Returns the bar index
/// and writes the clicked elevation; nullopt when the click misses all bars.
std::optional<size_t> HitTestElevationMap(const std::vector<ElevationBar>& bars,
                                          const render::DeviceRect& rect, double dx,
                                          double dy, double* elevation_out);

}  // namespace tioga2::viewer

#endif  // TIOGA2_VIEWER_ELEVATION_MAP_H_
