#ifndef TIOGA2_VIEWER_CANVAS_RENDERER_H_
#define TIOGA2_VIEWER_CANVAS_RENDERER_H_

#include <cstdint>
#include <optional>
#include <string>

#include "common/result.h"
#include "db/exec_policy.h"
#include "display/displayable.h"
#include "render/surface.h"
#include "viewer/camera.h"
#include "viewer/canvas_registry.h"

namespace tioga2::viewer {

/// Counters reported by a render pass. Tests and benchmarks assert on these
/// (e.g. that the Set Range boxes of Figure 7 actually cull station names at
/// high elevation).
struct RenderStats {
  size_t tuples_total = 0;           // tuples in all visible relations
  size_t tuples_drawn = 0;           // tuples whose display reached the surface
  size_t tuples_culled_slider = 0;   // rejected by a slider range
  size_t tuples_culled_viewport = 0; // outside the visible world rectangle
  size_t relations_skipped = 0;      // whole relations outside their elevation range
  size_t tuple_errors = 0;           // location/display evaluation failures
  size_t wormholes_rendered = 0;     // nested canvases drawn through viewers

  RenderStats& operator+=(const RenderStats& other);
};

/// Options for one render pass.
struct RenderOptions {
  /// Rear-view mirror mode (§6.3): show the canvas underside — only
  /// displayables whose elevation range reaches below zero, horizontally
  /// mirrored as in a mirror.
  bool underside = false;
  /// How many levels of wormhole canvases to render inside viewer drawables.
  /// 0 draws wormholes as framed rectangles only.
  int wormhole_depth = 1;
  /// Resolves wormhole destination canvases; may be null (wormholes are then
  /// drawn as frames).
  const CanvasRegistry* registry = nullptr;
  /// Execution policy for batch location evaluation; unset resolves
  /// db::DefaultExecPolicy() at render time. Both settings produce
  /// bit-identical pixels; the policy only chooses between the vectorized
  /// and scalar evaluation paths.
  std::optional<db::ExecPolicy> policy;
};

/// Renders a composite through `camera` onto `surface`. Relations draw in
/// composite order (§2); each relation is skipped entirely when the camera
/// elevation is outside its elevation range (§6.1).
Result<RenderStats> RenderComposite(const display::Composite& composite,
                                    const Camera& camera, render::Surface* surface,
                                    const RenderOptions& options = {});

/// A hit-test result: which member of the composite and which base row was
/// topmost under the queried point.
struct Hit {
  size_t member = 0;        // index within the composite
  size_t group_member = 0;  // index within the group (set by Viewer::HitTestAt)
  size_t row = 0;           // base-relation row
  std::string relation_name;
};

/// Finds the topmost tuple whose display bounds contain the device point
/// (dx, dy). Respects drawing order (later members and rows win), elevation
/// ranges, and slider filters — only what is visible can be clicked (§8).
Result<std::optional<Hit>> HitTest(const display::Composite& composite,
                                   const Camera& camera, double dx, double dy);

/// Finds the topmost *wormhole* drawable whose rectangle contains the world
/// point (wx, wy); used for fly-through (§6.2).
Result<std::optional<draw::WormholeSpec>> FindWormholeAt(
    const display::Composite& composite, const Camera& camera, double wx, double wy);

}  // namespace tioga2::viewer

#endif  // TIOGA2_VIEWER_CANVAS_RENDERER_H_
