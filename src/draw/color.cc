#include "draw/color.h"

#include <algorithm>
#include <cstdio>

namespace tioga2::draw {

std::string ColorToHex(const Color& color) {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "#%02x%02x%02x", color.r, color.g, color.b);
  return buf;
}

namespace {
bool HexNibble(char c, int* out) {
  if (c >= '0' && c <= '9') {
    *out = c - '0';
  } else if (c >= 'a' && c <= 'f') {
    *out = c - 'a' + 10;
  } else if (c >= 'A' && c <= 'F') {
    *out = c - 'A' + 10;
  } else {
    return false;
  }
  return true;
}
}  // namespace

bool ColorFromHex(const std::string& hex, Color* out) {
  if (hex.size() != 7 || hex[0] != '#') return false;
  int nibbles[6];
  for (int i = 0; i < 6; ++i) {
    if (!HexNibble(hex[i + 1], &nibbles[i])) return false;
  }
  out->r = static_cast<uint8_t>(nibbles[0] * 16 + nibbles[1]);
  out->g = static_cast<uint8_t>(nibbles[2] * 16 + nibbles[3]);
  out->b = static_cast<uint8_t>(nibbles[4] * 16 + nibbles[5]);
  return true;
}

Color LerpColor(const Color& a, const Color& b, double t) {
  t = std::clamp(t, 0.0, 1.0);
  auto mix = [t](uint8_t x, uint8_t y) {
    return static_cast<uint8_t>(x + (y - x) * t + 0.5);
  };
  return Color{mix(a.r, b.r), mix(a.g, b.g), mix(a.b, b.b)};
}

}  // namespace tioga2::draw
