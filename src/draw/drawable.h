#ifndef TIOGA2_DRAW_DRAWABLE_H_
#define TIOGA2_DRAW_DRAWABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "draw/color.h"

namespace tioga2::draw {

/// A 2-D point in world coordinates.
struct Point {
  double x = 0;
  double y = 0;

  friend bool operator==(const Point& a, const Point& b) = default;
};

/// Axis-aligned bounding box in world coordinates.
struct BBox {
  double min_x = 0;
  double min_y = 0;
  double max_x = 0;
  double max_y = 0;

  /// Expands this box to cover `other`.
  void Union(const BBox& other);
  /// Expands this box to cover point (x, y).
  void Extend(double x, double y);
  /// True iff (x, y) lies inside (inclusive).
  bool Contains(double x, double y) const;
  /// True iff the two boxes overlap (inclusive).
  bool Intersects(const BBox& other) const;
  double Width() const { return max_x - min_x; }
  double Height() const { return max_y - min_y; }

  friend bool operator==(const BBox& a, const BBox& b) = default;
};

/// Stroke pattern of a drawable's outline.
enum class LineStyle { kSolid, kDashed, kDotted };

/// Whether a closed shape is filled or stroked.
enum class FillMode { kOutline, kFilled };

/// Visual style carried by every primitive drawable (§5.1).
struct Style {
  LineStyle line = LineStyle::kSolid;
  FillMode fill = FillMode::kOutline;
  int thickness = 1;

  friend bool operator==(const Style& a, const Style& b) = default;
};

/// The primitive drawables of §5.1: "point, line, rectangle, circle,
/// polygon, text, and viewer". A viewer drawable implements a wormhole (§6.2).
enum class DrawableKind { kPoint, kLine, kRectangle, kCircle, kPolygon, kText, kViewer };

/// Returns e.g. "circle" for kCircle.
std::string DrawableKindToString(DrawableKind kind);

/// Parses the inverse of DrawableKindToString; returns false if unknown.
bool DrawableKindFromString(const std::string& text, DrawableKind* out);

/// Parameters of a viewer drawable (§6.2): "a viewer drawable requires
/// several parameters, including the size for the viewer, a destination
/// canvas, the elevation from which the canvas is viewed, and the initial
/// location". The destination is referenced by canvas name, resolved by the
/// viewer runtime when the user flies through.
struct WormholeSpec {
  std::string destination_canvas;
  double initial_x = 0;
  double initial_y = 0;
  double elevation = 1.0;

  friend bool operator==(const WormholeSpec& a, const WormholeSpec& b) = default;
};

/// One primitive drawable. The interpretation of the geometry fields depends
/// on `kind`:
///   kPoint     — a dot of `style.thickness` pixels at the offset.
///   kLine      — a segment from the offset to offset + (a, b).
///   kRectangle — width `a`, height `b`, lower-left corner at the offset.
///   kCircle    — radius `a`, centered at the offset.
///   kPolygon   — vertices `points` relative to the offset.
///   kText      — string `text` at height `a` world units, anchored at offset.
///   kViewer    — a wormhole window of width `a`, height `b`; see `wormhole`.
///
/// The offset positions the drawable relative to the tuple's location
/// attributes so that "multiple drawables need not be stacked directly one
/// atop the other" (§5.1).
struct Drawable {
  DrawableKind kind = DrawableKind::kPoint;
  double offset_x = 0;
  double offset_y = 0;
  Color color = kBlack;
  Style style;
  double a = 0;
  double b = 0;
  std::vector<Point> points;
  std::string text;
  WormholeSpec wormhole;

  /// Bounding box in world units, relative to the tuple location (i.e. the
  /// offset is included but the tuple location is not).
  BBox Bounds() const;

  friend bool operator==(const Drawable& a, const Drawable& b) = default;
};

/// Factory helpers for each drawable kind.
Drawable MakePoint(Color color = kBlack, int thickness = 2);
Drawable MakeLine(double dx, double dy, Color color = kBlack, int thickness = 1);
Drawable MakeRectangle(double width, double height, Color color = kBlack,
                       FillMode fill = FillMode::kOutline);
Drawable MakeCircle(double radius, Color color = kBlack,
                    FillMode fill = FillMode::kOutline);
Drawable MakePolygon(std::vector<Point> points, Color color = kBlack,
                     FillMode fill = FillMode::kOutline);
Drawable MakeText(std::string text, double height, Color color = kBlack);
Drawable MakeViewer(double width, double height, WormholeSpec wormhole);

/// A display attribute value: "a list of primitive drawable objects ...
/// the list order specifies the drawing order" (§5.1). Shared and immutable
/// so that copying tuples and values stays cheap.
using DrawableList = std::shared_ptr<const std::vector<Drawable>>;

/// Builds a DrawableList from drawables.
DrawableList MakeDrawableList(std::vector<Drawable> drawables);

/// The union of the member drawables' bounds; the empty list yields a
/// degenerate box at the origin.
BBox DrawableListBounds(const DrawableList& list);

/// Concatenates two display lists; `second` draws after (on top of) `first`.
/// `offset` shifts every drawable of `second` — this is the Combine Displays
/// primitive of §5.3.
DrawableList CombineDrawableLists(const DrawableList& first, const DrawableList& second,
                                  double offset_x, double offset_y);

/// Structural equality (drawable lists compare by contents, not pointer).
bool DrawableListEquals(const DrawableList& a, const DrawableList& b);

/// Human-readable one-line rendering, e.g. "[circle(r=2,#c81e1e), text(\"LAX\")]".
std::string DrawableListToString(const DrawableList& list);

}  // namespace tioga2::draw

#endif  // TIOGA2_DRAW_DRAWABLE_H_
