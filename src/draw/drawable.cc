#include "draw/drawable.h"

#include <algorithm>
#include <utility>

#include "common/str_util.h"

namespace tioga2::draw {

void BBox::Union(const BBox& other) {
  min_x = std::min(min_x, other.min_x);
  min_y = std::min(min_y, other.min_y);
  max_x = std::max(max_x, other.max_x);
  max_y = std::max(max_y, other.max_y);
}

void BBox::Extend(double x, double y) {
  min_x = std::min(min_x, x);
  min_y = std::min(min_y, y);
  max_x = std::max(max_x, x);
  max_y = std::max(max_y, y);
}

bool BBox::Contains(double x, double y) const {
  return x >= min_x && x <= max_x && y >= min_y && y <= max_y;
}

bool BBox::Intersects(const BBox& other) const {
  return min_x <= other.max_x && other.min_x <= max_x && min_y <= other.max_y &&
         other.min_y <= max_y;
}

std::string DrawableKindToString(DrawableKind kind) {
  switch (kind) {
    case DrawableKind::kPoint:
      return "point";
    case DrawableKind::kLine:
      return "line";
    case DrawableKind::kRectangle:
      return "rectangle";
    case DrawableKind::kCircle:
      return "circle";
    case DrawableKind::kPolygon:
      return "polygon";
    case DrawableKind::kText:
      return "text";
    case DrawableKind::kViewer:
      return "viewer";
  }
  return "unknown";
}

bool DrawableKindFromString(const std::string& text, DrawableKind* out) {
  static constexpr std::pair<const char*, DrawableKind> kNames[] = {
      {"point", DrawableKind::kPoint},         {"line", DrawableKind::kLine},
      {"rectangle", DrawableKind::kRectangle}, {"circle", DrawableKind::kCircle},
      {"polygon", DrawableKind::kPolygon},     {"text", DrawableKind::kText},
      {"viewer", DrawableKind::kViewer},
  };
  for (const auto& [name, kind] : kNames) {
    if (text == name) {
      *out = kind;
      return true;
    }
  }
  return false;
}

BBox Drawable::Bounds() const {
  BBox box{offset_x, offset_y, offset_x, offset_y};
  switch (kind) {
    case DrawableKind::kPoint:
      break;
    case DrawableKind::kLine:
      box.Extend(offset_x + a, offset_y + b);
      break;
    case DrawableKind::kRectangle:
    case DrawableKind::kViewer:
      box.Extend(offset_x + a, offset_y + b);
      break;
    case DrawableKind::kCircle:
      box = BBox{offset_x - a, offset_y - a, offset_x + a, offset_y + a};
      break;
    case DrawableKind::kPolygon:
      for (const Point& p : points) box.Extend(offset_x + p.x, offset_y + p.y);
      break;
    case DrawableKind::kText:
      // Approximate: glyphs are 0.6*height wide on the 5x7 raster font grid.
      box.Extend(offset_x + 0.6 * a * static_cast<double>(text.size()), offset_y + a);
      break;
  }
  return box;
}

Drawable MakePoint(Color color, int thickness) {
  Drawable d;
  d.kind = DrawableKind::kPoint;
  d.color = color;
  d.style.thickness = thickness;
  return d;
}

Drawable MakeLine(double dx, double dy, Color color, int thickness) {
  Drawable d;
  d.kind = DrawableKind::kLine;
  d.color = color;
  d.style.thickness = thickness;
  d.a = dx;
  d.b = dy;
  return d;
}

Drawable MakeRectangle(double width, double height, Color color, FillMode fill) {
  Drawable d;
  d.kind = DrawableKind::kRectangle;
  d.color = color;
  d.style.fill = fill;
  d.a = width;
  d.b = height;
  return d;
}

Drawable MakeCircle(double radius, Color color, FillMode fill) {
  Drawable d;
  d.kind = DrawableKind::kCircle;
  d.color = color;
  d.style.fill = fill;
  d.a = radius;
  return d;
}

Drawable MakePolygon(std::vector<Point> points, Color color, FillMode fill) {
  Drawable d;
  d.kind = DrawableKind::kPolygon;
  d.color = color;
  d.style.fill = fill;
  d.points = std::move(points);
  return d;
}

Drawable MakeText(std::string text, double height, Color color) {
  Drawable d;
  d.kind = DrawableKind::kText;
  d.color = color;
  d.text = std::move(text);
  d.a = height;
  return d;
}

Drawable MakeViewer(double width, double height, WormholeSpec wormhole) {
  Drawable d;
  d.kind = DrawableKind::kViewer;
  d.a = width;
  d.b = height;
  d.wormhole = std::move(wormhole);
  return d;
}

DrawableList MakeDrawableList(std::vector<Drawable> drawables) {
  return std::make_shared<const std::vector<Drawable>>(std::move(drawables));
}

BBox DrawableListBounds(const DrawableList& list) {
  BBox box{0, 0, 0, 0};
  if (list == nullptr || list->empty()) return box;
  box = (*list)[0].Bounds();
  for (size_t i = 1; i < list->size(); ++i) box.Union((*list)[i].Bounds());
  return box;
}

DrawableList CombineDrawableLists(const DrawableList& first, const DrawableList& second,
                                  double offset_x, double offset_y) {
  std::vector<Drawable> combined;
  if (first != nullptr) combined = *first;
  if (second != nullptr) {
    for (Drawable d : *second) {
      d.offset_x += offset_x;
      d.offset_y += offset_y;
      combined.push_back(std::move(d));
    }
  }
  return MakeDrawableList(std::move(combined));
}

bool DrawableListEquals(const DrawableList& a, const DrawableList& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return (a == nullptr || a->empty()) && (b == nullptr || b->empty());
  return *a == *b;
}

std::string DrawableListToString(const DrawableList& list) {
  std::string out = "[";
  if (list != nullptr) {
    for (size_t i = 0; i < list->size(); ++i) {
      if (i > 0) out += ", ";
      const Drawable& d = (*list)[i];
      out += DrawableKindToString(d.kind);
      switch (d.kind) {
        case DrawableKind::kCircle:
          out += "(r=" + FormatDouble(d.a) + "," + ColorToHex(d.color) + ")";
          break;
        case DrawableKind::kText:
          out += "(" + QuoteString(d.text) + ")";
          break;
        case DrawableKind::kRectangle:
        case DrawableKind::kViewer:
        case DrawableKind::kLine:
          out += "(" + FormatDouble(d.a) + "x" + FormatDouble(d.b) + ")";
          break;
        case DrawableKind::kPolygon:
          out += "(" + std::to_string(d.points.size()) + " pts)";
          break;
        case DrawableKind::kPoint:
          break;
      }
    }
  }
  out += "]";
  return out;
}

}  // namespace tioga2::draw
