#ifndef TIOGA2_DRAW_COLOR_H_
#define TIOGA2_DRAW_COLOR_H_

#include <cstdint>
#include <string>

namespace tioga2::draw {

/// An RGB color. Every primitive drawable carries a color (§5.1).
struct Color {
  uint8_t r = 0;
  uint8_t g = 0;
  uint8_t b = 0;

  friend bool operator==(const Color& a, const Color& b) = default;
};

/// Named colors used by defaults and the data generators.
inline constexpr Color kBlack{0, 0, 0};
inline constexpr Color kWhite{255, 255, 255};
inline constexpr Color kRed{200, 30, 30};
inline constexpr Color kGreen{30, 160, 60};
inline constexpr Color kBlue{40, 70, 200};
inline constexpr Color kGray{128, 128, 128};
inline constexpr Color kLightGray{210, 210, 210};
inline constexpr Color kOrange{230, 140, 20};
inline constexpr Color kPurple{130, 60, 180};

/// Formats as "#rrggbb".
std::string ColorToHex(const Color& color);

/// Parses "#rrggbb"; returns false on malformed input.
bool ColorFromHex(const std::string& hex, Color* out);

/// Linear interpolation between two colors, t clamped to [0,1]. Used by
/// data-driven color ramps in display expressions.
Color LerpColor(const Color& a, const Color& b, double t);

}  // namespace tioga2::draw

#endif  // TIOGA2_DRAW_COLOR_H_
