#include "render/surface.h"

#include <algorithm>

namespace tioga2::render {

void TransformStack::Push(const DeviceRect& target, double source_width,
                          double source_height) {
  const Frame& outer = Top();
  Frame frame;
  double sx = source_width > 0 ? target.width / source_width : 1.0;
  double sy = source_height > 0 ? target.height / source_height : 1.0;
  // Uniform scale preserves aspect (wormholes show an undistorted view).
  double s = std::min(sx, sy);
  frame.scale = outer.scale * s;
  frame.tx = outer.tx + target.x * outer.scale;
  frame.ty = outer.ty + target.y * outer.scale;
  // Clip to the target rect expressed in final device coordinates, and
  // intersect with any outer clip.
  frame.clip_x0 = outer.tx + target.x * outer.scale;
  frame.clip_y0 = outer.ty + target.y * outer.scale;
  frame.clip_x1 = frame.clip_x0 + target.width * outer.scale;
  frame.clip_y1 = frame.clip_y0 + target.height * outer.scale;
  frame.has_clip = true;
  if (outer.has_clip) {
    frame.clip_x0 = std::max(frame.clip_x0, outer.clip_x0);
    frame.clip_y0 = std::max(frame.clip_y0, outer.clip_y0);
    frame.clip_x1 = std::min(frame.clip_x1, outer.clip_x1);
    frame.clip_y1 = std::min(frame.clip_y1, outer.clip_y1);
  }
  frames_.push_back(frame);
}

void TransformStack::Pop() {
  if (!frames_.empty()) frames_.pop_back();
}

void TransformStack::PushClip(const DeviceRect& rect) {
  const Frame& outer = Top();
  Frame frame = outer;  // transform unchanged; only the clip narrows
  frame.clip_x0 = outer.tx + rect.x * outer.scale;
  frame.clip_y0 = outer.ty + rect.y * outer.scale;
  frame.clip_x1 = frame.clip_x0 + rect.width * outer.scale;
  frame.clip_y1 = frame.clip_y0 + rect.height * outer.scale;
  frame.has_clip = true;
  if (outer.has_clip) {
    frame.clip_x0 = std::max(frame.clip_x0, outer.clip_x0);
    frame.clip_y0 = std::max(frame.clip_y0, outer.clip_y0);
    frame.clip_x1 = std::min(frame.clip_x1, outer.clip_x1);
    frame.clip_y1 = std::min(frame.clip_y1, outer.clip_y1);
  }
  frames_.push_back(frame);
}

void TransformStack::Apply(double* x, double* y) const {
  const Frame& frame = Top();
  *x = *x * frame.scale + frame.tx;
  *y = *y * frame.scale + frame.ty;
}

double TransformStack::ApplyLength(double length) const { return length * Top().scale; }

bool TransformStack::Clipped(double x, double y) const {
  const Frame& frame = Top();
  if (!frame.has_clip) return false;
  return x < frame.clip_x0 || x > frame.clip_x1 || y < frame.clip_y0 ||
         y > frame.clip_y1;
}

}  // namespace tioga2::render
