#include "render/svg_surface.h"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "common/str_util.h"

namespace tioga2::render {

namespace {

std::string F(double v) { return FormatDouble(v); }

std::string EscapeXml(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string DashAttr(draw::LineStyle style) {
  switch (style) {
    case draw::LineStyle::kSolid:
      return "";
    case draw::LineStyle::kDashed:
      return " stroke-dasharray=\"6,4\"";
    case draw::LineStyle::kDotted:
      return " stroke-dasharray=\"1,3\"";
  }
  return "";
}

}  // namespace

SvgSurface::SvgSurface(int width, int height)
    : width_(std::max(1, width)), height_(std::max(1, height)) {}

void SvgSurface::Clear(const draw::Color& color) {
  body_.clear();
  open_groups_ = 0;
  body_ += "<rect x=\"0\" y=\"0\" width=\"" + std::to_string(width_) + "\" height=\"" +
           std::to_string(height_) + "\" fill=\"" + draw::ColorToHex(color) + "\"/>\n";
}

std::string SvgSurface::StyleAttrs(const draw::Style& style,
                                   const draw::Color& color) const {
  std::string hex = draw::ColorToHex(color);
  if (style.fill == draw::FillMode::kFilled) {
    return " fill=\"" + hex + "\" stroke=\"none\"";
  }
  return " fill=\"none\" stroke=\"" + hex + "\" stroke-width=\"" +
         std::to_string(std::max(1, style.thickness)) + "\"" + DashAttr(style.line);
}

void SvgSurface::DrawPoint(double x, double y, int thickness, const draw::Color& color) {
  body_ += "<circle cx=\"" + F(x) + "\" cy=\"" + F(y) + "\" r=\"" +
           F(std::max(1, thickness) / 2.0) + "\" fill=\"" + draw::ColorToHex(color) +
           "\"/>\n";
}

void SvgSurface::DrawLine(double x1, double y1, double x2, double y2,
                          const draw::Style& style, const draw::Color& color) {
  body_ += "<line x1=\"" + F(x1) + "\" y1=\"" + F(y1) + "\" x2=\"" + F(x2) +
           "\" y2=\"" + F(y2) + "\" stroke=\"" + draw::ColorToHex(color) +
           "\" stroke-width=\"" + std::to_string(std::max(1, style.thickness)) + "\"" +
           DashAttr(style.line) + "/>\n";
}

void SvgSurface::DrawRect(double x, double y, double w, double h,
                          const draw::Style& style, const draw::Color& color) {
  if (w < 0) {
    x += w;
    w = -w;
  }
  if (h < 0) {
    y += h;
    h = -h;
  }
  body_ += "<rect x=\"" + F(x) + "\" y=\"" + F(y) + "\" width=\"" + F(w) +
           "\" height=\"" + F(h) + "\"" + StyleAttrs(style, color) + "/>\n";
}

void SvgSurface::DrawCircle(double cx, double cy, double radius,
                            const draw::Style& style, const draw::Color& color) {
  body_ += "<circle cx=\"" + F(cx) + "\" cy=\"" + F(cy) + "\" r=\"" +
           F(std::fabs(radius)) + "\"" + StyleAttrs(style, color) + "/>\n";
}

void SvgSurface::DrawPolygon(const std::vector<draw::Point>& points,
                             const draw::Style& style, const draw::Color& color) {
  if (points.size() < 2) return;
  std::string coords;
  for (const draw::Point& p : points) {
    if (!coords.empty()) coords += " ";
    coords += F(p.x) + "," + F(p.y);
  }
  body_ += "<polygon points=\"" + coords + "\"" + StyleAttrs(style, color) + "/>\n";
}

void SvgSurface::DrawText(const std::string& text, double x, double y, double height,
                          const draw::Color& color) {
  body_ += "<text x=\"" + F(x) + "\" y=\"" + F(y) + "\" font-size=\"" + F(height) +
           "\" font-family=\"monospace\" fill=\"" + draw::ColorToHex(color) + "\">" +
           EscapeXml(text) + "</text>\n";
}

void SvgSurface::PushViewport(const DeviceRect& target, double source_width,
                              double source_height) {
  double sx = source_width > 0 ? target.width / source_width : 1.0;
  double sy = source_height > 0 ? target.height / source_height : 1.0;
  double s = std::min(sx, sy);
  int clip_id = clip_counter_++;
  body_ += "<clipPath id=\"clip" + std::to_string(clip_id) + "\"><rect x=\"" +
           F(target.x) + "\" y=\"" + F(target.y) + "\" width=\"" + F(target.width) +
           "\" height=\"" + F(target.height) + "\"/></clipPath>\n";
  body_ += "<g clip-path=\"url(#clip" + std::to_string(clip_id) + ")\" transform=\"" +
           "translate(" + F(target.x) + "," + F(target.y) + ") scale(" + F(s) + ")\">\n";
  ++open_groups_;
}

void SvgSurface::PopViewport() {
  if (open_groups_ > 0) {
    body_ += "</g>\n";
    --open_groups_;
  }
}

std::string SvgSurface::ToSvg() const {
  std::string out = "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" +
                    std::to_string(width_) + "\" height=\"" + std::to_string(height_) +
                    "\" viewBox=\"0 0 " + std::to_string(width_) + " " +
                    std::to_string(height_) + "\">\n";
  out += body_;
  for (int i = 0; i < open_groups_; ++i) out += "</g>\n";
  out += "</svg>\n";
  return out;
}

Status SvgSurface::WriteSvg(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out << ToSvg();
  if (!out.good()) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

}  // namespace tioga2::render
