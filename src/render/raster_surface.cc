#include "render/raster_surface.h"

#include <algorithm>
#include <cmath>

#include "render/font.h"

namespace tioga2::render {

namespace {

/// True iff this step of a dash pattern should be drawn.
bool DashOn(const draw::LineStyle style, int step) {
  switch (style) {
    case draw::LineStyle::kSolid:
      return true;
    case draw::LineStyle::kDashed:
      return (step / 4) % 2 == 0;
    case draw::LineStyle::kDotted:
      return step % 3 == 0;
  }
  return true;
}

}  // namespace

void RasterSurface::PlotDevice(int x, int y, int thickness, const draw::Color& color) {
  if (thickness <= 1) {
    if (!transform_.Clipped(x, y)) fb_->Set(x, y, color);
    return;
  }
  int half = thickness / 2;
  for (int dy = -half; dy <= half; ++dy) {
    for (int dx = -half; dx <= half; ++dx) {
      if (!transform_.Clipped(x + dx, y + dy)) fb_->Set(x + dx, y + dy, color);
    }
  }
}

void RasterSurface::Plot(double x, double y, int thickness, const draw::Color& color) {
  transform_.Apply(&x, &y);
  PlotDevice(static_cast<int>(std::lround(x)), static_cast<int>(std::lround(y)),
             thickness, color);
}

void RasterSurface::DrawPoint(double x, double y, int thickness,
                              const draw::Color& color) {
  Plot(x, y, std::max(1, thickness), color);
}

void RasterSurface::DrawLine(double x1, double y1, double x2, double y2,
                             const draw::Style& style, const draw::Color& color) {
  transform_.Apply(&x1, &y1);
  transform_.Apply(&x2, &y2);
  int ix1 = static_cast<int>(std::lround(x1));
  int iy1 = static_cast<int>(std::lround(y1));
  int ix2 = static_cast<int>(std::lround(x2));
  int iy2 = static_cast<int>(std::lround(y2));

  int dx = std::abs(ix2 - ix1);
  int dy = -std::abs(iy2 - iy1);
  int sx = ix1 < ix2 ? 1 : -1;
  int sy = iy1 < iy2 ? 1 : -1;
  int err = dx + dy;
  int x = ix1;
  int y = iy1;
  int step = 0;
  while (true) {
    if (DashOn(style.line, step)) PlotDevice(x, y, style.thickness, color);
    if (x == ix2 && y == iy2) break;
    int e2 = 2 * err;
    if (e2 >= dy) {
      err += dy;
      x += sx;
    }
    if (e2 <= dx) {
      err += dx;
      y += sy;
    }
    ++step;
  }
}

void RasterSurface::DrawRect(double x, double y, double w, double h,
                             const draw::Style& style, const draw::Color& color) {
  if (style.fill == draw::FillMode::kFilled) {
    double x0 = x;
    double y0 = y;
    double x1 = x + w;
    double y1 = y + h;
    transform_.Apply(&x0, &y0);
    transform_.Apply(&x1, &y1);
    if (x1 < x0) std::swap(x0, x1);
    if (y1 < y0) std::swap(y0, y1);
    int ix0 = static_cast<int>(std::lround(x0));
    int iy0 = static_cast<int>(std::lround(y0));
    int ix1 = static_cast<int>(std::lround(x1));
    int iy1 = static_cast<int>(std::lround(y1));
    for (int py = iy0; py <= iy1; ++py) {
      for (int px = ix0; px <= ix1; ++px) {
        if (!transform_.Clipped(px, py)) fb_->Set(px, py, color);
      }
    }
    return;
  }
  DrawLine(x, y, x + w, y, style, color);
  DrawLine(x + w, y, x + w, y + h, style, color);
  DrawLine(x + w, y + h, x, y + h, style, color);
  DrawLine(x, y + h, x, y, style, color);
}

void RasterSurface::DrawCircle(double cx, double cy, double radius,
                               const draw::Style& style, const draw::Color& color) {
  transform_.Apply(&cx, &cy);
  double r = transform_.ApplyLength(radius);
  int icx = static_cast<int>(std::lround(cx));
  int icy = static_cast<int>(std::lround(cy));
  int ir = static_cast<int>(std::lround(std::fabs(r)));
  if (ir == 0) {
    PlotDevice(icx, icy, style.thickness, color);
    return;
  }
  if (style.fill == draw::FillMode::kFilled) {
    for (int dy = -ir; dy <= ir; ++dy) {
      int span = static_cast<int>(std::floor(std::sqrt(
          static_cast<double>(ir) * ir - static_cast<double>(dy) * dy)));
      for (int dx = -span; dx <= span; ++dx) {
        if (!transform_.Clipped(icx + dx, icy + dy)) {
          fb_->Set(icx + dx, icy + dy, color);
        }
      }
    }
    return;
  }
  // Midpoint circle.
  int x = ir;
  int y = 0;
  int err = 1 - ir;
  while (x >= y) {
    const int px[8] = {icx + x, icx - x, icx + x, icx - x,
                       icx + y, icx - y, icx + y, icx - y};
    const int py[8] = {icy + y, icy + y, icy - y, icy - y,
                       icy + x, icy + x, icy - x, icy - x};
    for (int i = 0; i < 8; ++i) PlotDevice(px[i], py[i], style.thickness, color);
    ++y;
    if (err < 0) {
      err += 2 * y + 1;
    } else {
      --x;
      err += 2 * (y - x) + 1;
    }
  }
}

void RasterSurface::DrawPolygon(const std::vector<draw::Point>& points,
                                const draw::Style& style, const draw::Color& color) {
  if (points.size() < 2) return;
  if (style.fill == draw::FillMode::kFilled && points.size() >= 3) {
    // Transform vertices once, then even-odd scanline fill.
    std::vector<draw::Point> device;
    device.reserve(points.size());
    double min_y = 1e300;
    double max_y = -1e300;
    for (const draw::Point& p : points) {
      double x = p.x;
      double y = p.y;
      transform_.Apply(&x, &y);
      min_y = std::min(min_y, y);
      max_y = std::max(max_y, y);
      device.push_back(draw::Point{x, y});
    }
    int iy0 = static_cast<int>(std::ceil(min_y));
    int iy1 = static_cast<int>(std::floor(max_y));
    for (int py = iy0; py <= iy1; ++py) {
      double scan = py + 0.5;
      std::vector<double> crossings;
      for (size_t i = 0; i < device.size(); ++i) {
        const draw::Point& a = device[i];
        const draw::Point& b = device[(i + 1) % device.size()];
        if ((a.y <= scan && b.y > scan) || (b.y <= scan && a.y > scan)) {
          double t = (scan - a.y) / (b.y - a.y);
          crossings.push_back(a.x + t * (b.x - a.x));
        }
      }
      std::sort(crossings.begin(), crossings.end());
      for (size_t i = 0; i + 1 < crossings.size(); i += 2) {
        int px0 = static_cast<int>(std::ceil(crossings[i]));
        int px1 = static_cast<int>(std::floor(crossings[i + 1]));
        for (int px = px0; px <= px1; ++px) {
          if (!transform_.Clipped(px, py)) fb_->Set(px, py, color);
        }
      }
    }
    return;
  }
  for (size_t i = 0; i + 1 < points.size(); ++i) {
    DrawLine(points[i].x, points[i].y, points[i + 1].x, points[i + 1].y, style, color);
  }
  if (points.size() >= 3) {
    DrawLine(points.back().x, points.back().y, points[0].x, points[0].y, style, color);
  }
}

void RasterSurface::DrawText(const std::string& text, double x, double y, double height,
                             const draw::Color& color) {
  transform_.Apply(&x, &y);
  double h = transform_.ApplyLength(height);
  // Integral per-pixel scale keeps glyphs crisp; at least 1.
  int scale = std::max(1, static_cast<int>(std::lround(h / kGlyphHeight)));
  int origin_x = static_cast<int>(std::lround(x));
  // (x, y) anchors the glyph box's bottom-left; rows render upward from it.
  int origin_y = static_cast<int>(std::lround(y)) - kGlyphHeight * scale + scale;
  for (size_t i = 0; i < text.size(); ++i) {
    const std::array<uint8_t, 7>& glyph = GlyphFor(text[i]);
    int gx = origin_x + static_cast<int>(i) * kGlyphAdvance * scale;
    for (int row = 0; row < kGlyphHeight; ++row) {
      uint8_t bits = glyph[static_cast<size_t>(row)];
      for (int col = 0; col < kGlyphWidth; ++col) {
        if ((bits & (1 << (4 - col))) == 0) continue;
        for (int sy = 0; sy < scale; ++sy) {
          for (int sx = 0; sx < scale; ++sx) {
            int px = gx + col * scale + sx;
            int py = origin_y + row * scale + sy;
            if (!transform_.Clipped(px, py)) fb_->Set(px, py, color);
          }
        }
      }
    }
  }
}

}  // namespace tioga2::render
