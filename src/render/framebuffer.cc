#include "render/framebuffer.h"

#include <fstream>

namespace tioga2::render {

Framebuffer::Framebuffer(int width, int height, draw::Color background)
    : width_(width < 1 ? 1 : width), height_(height < 1 ? 1 : height) {
  pixels_.assign(static_cast<size_t>(width_) * static_cast<size_t>(height_), background);
}

void Framebuffer::Clear(const draw::Color& color) {
  std::fill(pixels_.begin(), pixels_.end(), color);
}

size_t Framebuffer::CountPixels(const draw::Color& color) const {
  size_t count = 0;
  for (const draw::Color& pixel : pixels_) {
    if (pixel == color) ++count;
  }
  return count;
}

size_t Framebuffer::CountPixelsNotEqual(const draw::Color& color) const {
  return pixels_.size() - CountPixels(color);
}

std::string Framebuffer::ToPpm() const {
  std::string out = "P6\n" + std::to_string(width_) + " " + std::to_string(height_) +
                    "\n255\n";
  out.reserve(out.size() + pixels_.size() * 3);
  for (const draw::Color& pixel : pixels_) {
    out.push_back(static_cast<char>(pixel.r));
    out.push_back(static_cast<char>(pixel.g));
    out.push_back(static_cast<char>(pixel.b));
  }
  return out;
}

Status Framebuffer::WritePpm(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  std::string ppm = ToPpm();
  out.write(ppm.data(), static_cast<std::streamsize>(ppm.size()));
  if (!out.good()) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

}  // namespace tioga2::render
