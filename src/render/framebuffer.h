#ifndef TIOGA2_RENDER_FRAMEBUFFER_H_
#define TIOGA2_RENDER_FRAMEBUFFER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "draw/color.h"

namespace tioga2::render {

/// An RGB8 pixel buffer. This is the substitute for the X11 canvas window of
/// the original system: every figure reproduction renders into one of these
/// and (optionally) writes a PPM file for inspection.
class Framebuffer {
 public:
  Framebuffer(int width, int height, draw::Color background = draw::kWhite);

  int width() const { return width_; }
  int height() const { return height_; }

  /// Fills with `color`.
  void Clear(const draw::Color& color);

  /// Writes one pixel; out-of-bounds writes are silently discarded.
  void Set(int x, int y, const draw::Color& color) {
    if (x < 0 || y < 0 || x >= width_ || y >= height_) return;
    pixels_[static_cast<size_t>(y) * static_cast<size_t>(width_) +
            static_cast<size_t>(x)] = color;
  }

  /// Reads one pixel; out-of-bounds reads return black.
  draw::Color Get(int x, int y) const {
    if (x < 0 || y < 0 || x >= width_ || y >= height_) return draw::kBlack;
    return pixels_[static_cast<size_t>(y) * static_cast<size_t>(width_) +
                   static_cast<size_t>(x)];
  }

  /// Number of pixels exactly equal to `color` (used by golden tests).
  size_t CountPixels(const draw::Color& color) const;

  /// Number of pixels differing from the background/most drawing activity
  /// checks ("did anything render?").
  size_t CountPixelsNotEqual(const draw::Color& color) const;

  /// Binary P6 PPM encoding.
  std::string ToPpm() const;

  /// Writes a P6 PPM file.
  Status WritePpm(const std::string& path) const;

 private:
  int width_;
  int height_;
  std::vector<draw::Color> pixels_;
};

}  // namespace tioga2::render

#endif  // TIOGA2_RENDER_FRAMEBUFFER_H_
