#ifndef TIOGA2_RENDER_SURFACE_H_
#define TIOGA2_RENDER_SURFACE_H_

#include <string>
#include <vector>

#include "draw/color.h"
#include "draw/drawable.h"

namespace tioga2::render {

/// A rectangle in device coordinates (pixels, y grows downward).
struct DeviceRect {
  double x = 0;
  double y = 0;
  double width = 0;
  double height = 0;
};

/// An output backend for rendered canvases. Coordinates are device
/// coordinates; the viewer layer maps world space through its camera before
/// calling a Surface. Implementations: RasterSurface (software framebuffer)
/// and SvgSurface (vector output).
///
/// PushViewport/PopViewport establish a nested coordinate frame used by
/// wormhole drawables (§6.2): everything drawn between the push and the pop
/// is translated/scaled into `target` as if `source_width`×`source_height`
/// device units filled it, and clipped to it.
class Surface {
 public:
  virtual ~Surface() = default;

  virtual int width() const = 0;
  virtual int height() const = 0;

  /// Fills the whole surface with `color`.
  virtual void Clear(const draw::Color& color) = 0;

  virtual void DrawPoint(double x, double y, int thickness,
                         const draw::Color& color) = 0;
  virtual void DrawLine(double x1, double y1, double x2, double y2,
                        const draw::Style& style, const draw::Color& color) = 0;
  virtual void DrawRect(double x, double y, double w, double h,
                        const draw::Style& style, const draw::Color& color) = 0;
  virtual void DrawCircle(double cx, double cy, double radius,
                          const draw::Style& style, const draw::Color& color) = 0;
  /// `points` are absolute device coordinates.
  virtual void DrawPolygon(const std::vector<draw::Point>& points,
                           const draw::Style& style, const draw::Color& color) = 0;
  /// Draws `text` with its baseline-left anchor at (x, y); `height` is the
  /// glyph height in device units.
  virtual void DrawText(const std::string& text, double x, double y, double height,
                        const draw::Color& color) = 0;

  virtual void PushViewport(const DeviceRect& target, double source_width,
                            double source_height) = 0;
  virtual void PopViewport() = 0;

  /// Restricts subsequent drawing to `rect` (device coordinates, intersected
  /// with any enclosing clip) without changing the coordinate transform —
  /// the dirty-rectangle primitive behind incremental §8 repaints. The
  /// default implementations are no-ops so that non-pixel backends (SVG)
  /// simply draw everything; only backends with per-pixel clipping
  /// (RasterSurface) get true partial repaints.
  virtual void PushClip(const DeviceRect& rect) { (void)rect; }
  virtual void PopClip() {}
};

/// Shared transform-stack bookkeeping for Surface implementations.
class TransformStack {
 public:
  struct Frame {
    double scale = 1;
    double tx = 0;
    double ty = 0;
    // Clip rectangle in final device coordinates.
    double clip_x0 = 0, clip_y0 = 0, clip_x1 = 0, clip_y1 = 0;
    bool has_clip = false;
  };

  /// Current composite frame (identity when the stack is empty).
  const Frame& Top() const { return frames_.empty() ? identity_ : frames_.back(); }

  void Push(const DeviceRect& target, double source_width, double source_height);
  void Pop();

  /// Pushes a frame with the current transform but the clip narrowed to
  /// `rect` (expressed in the current frame's coordinates). Pop() removes it.
  void PushClip(const DeviceRect& rect);

  /// Maps a point through the current transform.
  void Apply(double* x, double* y) const;
  /// Scales a length through the current transform.
  double ApplyLength(double length) const;
  /// True iff (x, y) — already transformed — survives the current clip.
  bool Clipped(double x, double y) const;

  bool Empty() const { return frames_.empty(); }

 private:
  Frame identity_;
  std::vector<Frame> frames_;
};

}  // namespace tioga2::render

#endif  // TIOGA2_RENDER_SURFACE_H_
