#ifndef TIOGA2_RENDER_SVG_SURFACE_H_
#define TIOGA2_RENDER_SVG_SURFACE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "render/surface.h"

namespace tioga2::render {

/// A vector backend emitting SVG 1.1. Wormhole viewports become nested
/// <g> elements with clip paths; the output is a faithful, scalable record
/// of the same draw calls the rasterizer receives.
class SvgSurface : public Surface {
 public:
  SvgSurface(int width, int height);

  int width() const override { return width_; }
  int height() const override { return height_; }

  void Clear(const draw::Color& color) override;
  void DrawPoint(double x, double y, int thickness, const draw::Color& color) override;
  void DrawLine(double x1, double y1, double x2, double y2, const draw::Style& style,
                const draw::Color& color) override;
  void DrawRect(double x, double y, double w, double h, const draw::Style& style,
                const draw::Color& color) override;
  void DrawCircle(double cx, double cy, double radius, const draw::Style& style,
                  const draw::Color& color) override;
  void DrawPolygon(const std::vector<draw::Point>& points, const draw::Style& style,
                   const draw::Color& color) override;
  void DrawText(const std::string& text, double x, double y, double height,
                const draw::Color& color) override;

  void PushViewport(const DeviceRect& target, double source_width,
                    double source_height) override;
  void PopViewport() override;

  /// The complete SVG document.
  std::string ToSvg() const;

  /// Writes the document to a file.
  Status WriteSvg(const std::string& path) const;

 private:
  std::string StyleAttrs(const draw::Style& style, const draw::Color& color) const;

  int width_;
  int height_;
  int open_groups_ = 0;
  int clip_counter_ = 0;
  std::string body_;
};

}  // namespace tioga2::render

#endif  // TIOGA2_RENDER_SVG_SURFACE_H_
