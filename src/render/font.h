#ifndef TIOGA2_RENDER_FONT_H_
#define TIOGA2_RENDER_FONT_H_

#include <array>
#include <cstdint>

namespace tioga2::render {

/// Glyph metrics of the built-in 5x7 bitmap font used for text drawables.
inline constexpr int kGlyphWidth = 5;
inline constexpr int kGlyphHeight = 7;
/// Horizontal advance between glyph origins, in glyph cells.
inline constexpr int kGlyphAdvance = 6;

/// Returns the 7 row bitmasks (bit 4 = leftmost column) for `c`. Characters
/// without a glyph render as a hollow box.
const std::array<uint8_t, 7>& GlyphFor(char c);

/// True iff a real glyph (not the fallback box) exists for `c`.
bool HasGlyph(char c);

}  // namespace tioga2::render

#endif  // TIOGA2_RENDER_FONT_H_
