#ifndef TIOGA2_RENDER_RASTER_SURFACE_H_
#define TIOGA2_RENDER_RASTER_SURFACE_H_

#include <string>
#include <vector>

#include "render/framebuffer.h"
#include "render/surface.h"

namespace tioga2::render {

/// Software rasterizer drawing into a Framebuffer: Bresenham lines (with
/// dash patterns), midpoint circles, even-odd scanline polygon fill, and
/// bitmap-font text.
class RasterSurface : public Surface {
 public:
  /// `framebuffer` must outlive the surface.
  explicit RasterSurface(Framebuffer* framebuffer) : fb_(framebuffer) {}

  int width() const override { return fb_->width(); }
  int height() const override { return fb_->height(); }

  void Clear(const draw::Color& color) override { fb_->Clear(color); }
  void DrawPoint(double x, double y, int thickness, const draw::Color& color) override;
  void DrawLine(double x1, double y1, double x2, double y2, const draw::Style& style,
                const draw::Color& color) override;
  void DrawRect(double x, double y, double w, double h, const draw::Style& style,
                const draw::Color& color) override;
  void DrawCircle(double cx, double cy, double radius, const draw::Style& style,
                  const draw::Color& color) override;
  void DrawPolygon(const std::vector<draw::Point>& points, const draw::Style& style,
                   const draw::Color& color) override;
  void DrawText(const std::string& text, double x, double y, double height,
                const draw::Color& color) override;

  void PushViewport(const DeviceRect& target, double source_width,
                    double source_height) override {
    transform_.Push(target, source_width, source_height);
  }
  void PopViewport() override { transform_.Pop(); }

  /// True per-pixel clipping: every drawing primitive already tests each
  /// pixel against the transform stack's clip, so pixels outside `rect`
  /// are provably untouched between PushClip and PopClip.
  void PushClip(const DeviceRect& rect) override { transform_.PushClip(rect); }
  void PopClip() override { transform_.Pop(); }

 private:
  /// Writes a transformed, clipped pixel block of side `thickness`.
  void Plot(double x, double y, int thickness, const draw::Color& color);
  /// Plot in already-transformed device coordinates.
  void PlotDevice(int x, int y, int thickness, const draw::Color& color);

  Framebuffer* fb_;
  TransformStack transform_;
};

}  // namespace tioga2::render

#endif  // TIOGA2_RENDER_RASTER_SURFACE_H_
