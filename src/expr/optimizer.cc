#include "expr/optimizer.h"

#include "expr/evaluator.h"

namespace tioga2::expr {

namespace {

/// Accessor for compile-time evaluation: any attribute access means the
/// subtree is not constant (must not happen — callers check first).
class NoRowAccessor : public RowAccessor {
 public:
  Result<types::Value> GetStored(size_t index) const override {
    (void)index;
    return Status::Internal("constant folding touched a stored attribute");
  }
  Result<types::Value> GetNamed(const std::string& name) const override {
    return Status::Internal("constant folding touched attribute '" + name + "'");
  }
};

/// Whether this node (with already-constant children) may be evaluated at
/// compile time.
bool Foldable(const ExprNode& node) {
  switch (node.kind) {
    case ExprNode::Kind::kLiteral:
    case ExprNode::Kind::kAttributeRef:
      return false;  // literals need no fold; refs are non-constant
    case ExprNode::Kind::kUnary:
    case ExprNode::Kind::kBinary:
      return true;
    case ExprNode::Kind::kCall:
      // Builtins are pure; the special forms (if/coalesce) fold as well.
      return node.overload != nullptr || node.name == "if" || node.name == "coalesce";
  }
  return false;
}

bool IsLiteral(const ExprNode& node) { return node.kind == ExprNode::Kind::kLiteral; }

Result<size_t> Fold(ExprNode* node) {
  size_t folded = 0;
  for (ExprNodePtr& child : node->children) {
    TIOGA2_ASSIGN_OR_RETURN(size_t child_folds, Fold(child.get()));
    folded += child_folds;
  }
  // A zero-argument call (e.g. point()) is constant; operators always have
  // operands.
  bool all_literal_children = node->children.empty()
                                  ? node->kind == ExprNode::Kind::kCall
                                  : true;
  for (const ExprNodePtr& child : node->children) {
    if (!IsLiteral(*child)) all_literal_children = false;
  }
  if (!all_literal_children || !Foldable(*node)) return folded;

  NoRowAccessor no_row;
  Result<types::Value> value = EvalExpr(*node, no_row);
  if (!value.ok()) {
    // Leave the node as-is; the error belongs to evaluation time.
    return folded;
  }
  types::DataType result_type = node->result_type;
  node->kind = ExprNode::Kind::kLiteral;
  node->literal = std::move(value).value();
  node->children.clear();
  node->name.clear();
  node->overload = nullptr;
  node->result_type = result_type;
  return folded + 1;
}

}  // namespace

Result<size_t> FoldConstants(ExprNode* node) {
  if (node == nullptr) return Status::InvalidArgument("node must be non-null");
  return Fold(node);
}

}  // namespace tioga2::expr
