#ifndef TIOGA2_EXPR_PARSER_H_
#define TIOGA2_EXPR_PARSER_H_

#include <string>

#include "common/result.h"
#include "expr/ast.h"

namespace tioga2::expr {

/// Parses an expression string into an (unanalyzed) AST.
///
/// Grammar (precedence low to high):
///   expr     := or_expr
///   or_expr  := and_expr ( "or" and_expr )*
///   and_expr := not_expr ( "and" not_expr )*
///   not_expr := "not" not_expr | cmp_expr
///   cmp_expr := add_expr ( ("="|"!="|"<"|"<="|">"|">=") add_expr )?
///   add_expr := mul_expr ( ("+"|"-") mul_expr )*
///   mul_expr := unary ( ("*"|"/"|"%") unary )*
///   unary    := "-" unary | primary
///   primary  := literal | identifier | identifier "(" args ")" | "(" expr ")"
Result<ExprNodePtr> ParseExpr(const std::string& source);

}  // namespace tioga2::expr

#endif  // TIOGA2_EXPR_PARSER_H_
