#ifndef TIOGA2_EXPR_EVALUATOR_H_
#define TIOGA2_EXPR_EVALUATOR_H_

#include <string>

#include "common/result.h"
#include "db/relation.h"
#include "expr/ast.h"

namespace tioga2::expr {

/// Supplies attribute values for one tuple during expression evaluation.
/// The relation layer implements it over a stored tuple; the display layer
/// adds computed attributes (location/display methods) with memoization.
class RowAccessor {
 public:
  virtual ~RowAccessor() = default;

  /// Value of the stored attribute at `index` (resolved by the analyzer).
  virtual Result<types::Value> GetStored(size_t index) const = 0;

  /// Value of the computed attribute `name`.
  virtual Result<types::Value> GetNamed(const std::string& name) const = 0;
};

/// RowAccessor over a plain stored tuple. GetNamed fails: a bare relation
/// has no computed attributes.
class TupleAccessor : public RowAccessor {
 public:
  /// `tuple` must outlive the accessor.
  explicit TupleAccessor(const db::Tuple& tuple) : tuple_(tuple) {}

  Result<types::Value> GetStored(size_t index) const override;
  Result<types::Value> GetNamed(const std::string& name) const override;

 private:
  const db::Tuple& tuple_;
};

/// Evaluates an analyzed expression tree for one row.
///
/// Null semantics (SQL-flavored): arithmetic and comparisons with a null
/// operand yield null; and/or are three-valued (false and null = false,
/// true or null = true); division or modulo by zero yields null rather than
/// an error so that one bad tuple cannot take down a visualization.
Result<types::Value> EvalExpr(const ExprNode& node, const RowAccessor& row);

}  // namespace tioga2::expr

#endif  // TIOGA2_EXPR_EVALUATOR_H_
