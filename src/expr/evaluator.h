#ifndef TIOGA2_EXPR_EVALUATOR_H_
#define TIOGA2_EXPR_EVALUATOR_H_

#include <string>

#include "common/result.h"
#include "db/relation.h"
#include "expr/ast.h"

namespace tioga2::expr {

/// Supplies attribute values for one tuple during expression evaluation.
/// The relation layer implements it over a stored tuple; the display layer
/// adds computed attributes (location/display methods) with memoization.
class RowAccessor {
 public:
  virtual ~RowAccessor() = default;

  /// Value of the stored attribute at `index` (resolved by the analyzer).
  virtual Result<types::Value> GetStored(size_t index) const = 0;

  /// Value of the computed attribute `name`.
  virtual Result<types::Value> GetNamed(const std::string& name) const = 0;
};

/// RowAccessor over a plain stored tuple. GetNamed fails: a bare relation
/// has no computed attributes.
class TupleAccessor : public RowAccessor {
 public:
  /// `tuple` must outlive the accessor.
  explicit TupleAccessor(const db::Tuple& tuple) : tuple_(tuple) {}

  Result<types::Value> GetStored(size_t index) const override;
  Result<types::Value> GetNamed(const std::string& name) const override;

 private:
  const db::Tuple& tuple_;
};

/// Evaluates an analyzed expression tree for one row.
///
/// Null semantics (SQL-flavored): arithmetic and comparisons with a null
/// operand yield null; and/or are three-valued (false and null = false,
/// true or null = true); division or modulo by zero yields null rather than
/// an error so that one bad tuple cannot take down a visualization.
Result<types::Value> EvalExpr(const ExprNode& node, const RowAccessor& row);

/// Applies one unary operator to an already-evaluated operand. This is the
/// single definition of unary semantics: EvalExpr calls it per row and the
/// BatchEvaluator calls it for operands it could not keep in typed vectors,
/// so the two paths cannot drift apart.
types::Value ApplyUnaryOp(UnaryOp op, const types::Value& v);

/// Applies one binary operator to already-evaluated operands — the shared
/// scalar kernel of EvalExpr and the BatchEvaluator's boxed fallback.
/// For kAnd/kOr this computes the three-valued result from both operands;
/// EvalExpr short-circuits before calling it when the left operand decides.
Result<types::Value> ApplyBinaryOp(BinaryOp op, const types::Value& lhs,
                                   const types::Value& rhs);

}  // namespace tioga2::expr

#endif  // TIOGA2_EXPR_EVALUATOR_H_
