// 256-bit (4-lane) kernel tier. CMake compiles this file with -mavx2 when
// the compiler supports the flag (TIOGA2_SIMD_HAVE_AVX2); callers must gate
// on the runtime CPU probe (simd::BestLevel) before using this table. When
// the flag is unavailable the table is still built — the vector extensions
// just lower to 2×128-bit ops — so dispatch stays uniform.

#include "expr/simd/kernels.h"

#if defined(TIOGA2_SIMD_ENABLED)

#define TIOGA2_SIMD_NS k256
#define TIOGA2_SIMD_LANES 4
#include "expr/simd/kernels_impl.inc"
#undef TIOGA2_SIMD_NS
#undef TIOGA2_SIMD_LANES

namespace tioga2::expr::simd {
const KernelTable* KernelsAVX2() { return &k256::kTable; }
}  // namespace tioga2::expr::simd

#else  // !TIOGA2_SIMD_ENABLED

namespace tioga2::expr::simd {
const KernelTable* KernelsAVX2() { return nullptr; }
}  // namespace tioga2::expr::simd

#endif
