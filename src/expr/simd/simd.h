#ifndef TIOGA2_EXPR_SIMD_SIMD_H_
#define TIOGA2_EXPR_SIMD_SIMD_H_

#include <cstddef>

#include "db/exec_policy.h"
#include "expr/ast.h"
#include "expr/batch.h"
#include "expr/simd/kernels.h"

namespace tioga2::expr::simd {

/// A resolved SIMD tier: unlike db::SimdLevel there is no kAuto — resolution
/// has already clamped the request to what the build and the running CPU
/// support. Numeric values match db::SimdLevel's pinned levels so the two
/// enums convert by integer value.
enum class Level : int {
  kScalar = 0,  // existing typed loops only
  kSSE2 = 1,    // 128-bit lanes
  kAVX2 = 2,    // 256-bit lanes
};

/// Best tier the build and the running CPU support, probed once at first
/// use (CPUID on x86; the 128-bit tier elsewhere, where the portable vector
/// code lowers to whatever the baseline ISA offers). kScalar when the build
/// disabled SIMD.
Level BestLevel();

/// Clamps a policy request to BestLevel(): kAuto resolves to the best tier,
/// a pinned request to min(requested, best). Requesting kAVX2 on a non-AVX2
/// machine therefore degrades safely instead of faulting.
Level Resolve(db::SimdLevel requested);

const char* LevelName(Level level);

/// Kernel table for a tier; null for kScalar (and for every tier when the
/// build disabled SIMD).
const KernelTable* Kernels(Level level);

/// SIMD path for a numeric comparison / + - * / node over operands aligned
/// with a selection of size n. Returns true and fills *out (a fresh typed
/// Vec, byte-identical to what the caller's typed loop would build) when the
/// operands flatten to contiguous lanes: kConst numeric, kOwned typed
/// int/float, or kView over a dense selection window. Sparse selections,
/// boxed vecs, kMod, and non-numeric operands return false — the caller
/// falls through to the existing typed loop unchanged.
bool TryNumericBinary(Level level, BinaryOp op, const Vec& lhs, const Vec& rhs,
                      size_t n, Vec* out);

/// SIMD path for the three-valued and/or merge, applicable only when no row
/// was decided by the left operand (rhs is aligned with lhs, element for
/// element). `out` is the caller's pre-sized typed bool Vec; on success its
/// payload and null bitmap hold exactly what the scalar merge loop would
/// have produced.
bool TryAndOrMerge(Level level, bool is_and, const Vec& lhs, const Vec& rhs,
                   size_t n, Vec* out);

}  // namespace tioga2::expr::simd

#endif  // TIOGA2_EXPR_SIMD_SIMD_H_
