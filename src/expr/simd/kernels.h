#ifndef TIOGA2_EXPR_SIMD_KERNELS_H_
#define TIOGA2_EXPR_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace tioga2::expr::simd {

/// One operand of a typed kernel: a contiguous column slice (`ptr` non-null,
/// element i at ptr[i]) or a constant splat (`ptr` null, every element is
/// `cval`). The dispatch layer (simd.cc) flattens Vec/ColumnVector operands
/// into these; kernels never see selections — sparse selections stay on the
/// existing per-element typed loops.
struct F64Src {
  const double* ptr = nullptr;
  double cval = 0;
};
struct I64Src {
  const int64_t* ptr = nullptr;
  int64_t cval = 0;
};
struct BoolSrc {
  const uint8_t* ptr = nullptr;
  uint8_t cval = 0;
};

enum class CmpOp { kLt, kLe, kGt, kGe, kEq, kNe };
enum class ArithOp { kAdd, kSub, kMul };

/// One SIMD tier's kernel entry points. Each kernel owns its scalar tail
/// (the final n % lanes elements run the same per-element expressions the
/// lane code evaluates), and each is lane-for-lane bit-identical to the
/// scalar semantics in expr::ApplyBinaryOp:
///
///   * cmp_f64 — ordering comparisons follow Value::Compare's
///     `a < b ? -1 : (a > b ? 1 : 0)` construction (so with a NaN operand
///     kLe/kGe are true, kLt/kGt false); kEq/kNe follow Value::Equals's
///     IEEE `a == b` (NaN equals nothing, -0.0 == +0.0).
///   * arith_f64 — IEEE add/sub/mul: NaN and ±0.0 propagate exactly as the
///     scalar `a + b` does.
///   * arith_i64 — two's-complement wraparound, computed on uint64_t lanes
///     (defined behavior; identical bits to the hardware wrap the scalar
///     signed path produces).
///   * div_f64 — quotient lanes plus a packed bitmap of rows whose
///     denominator == 0 (the scalar kernel's divide-by-zero -> null rule;
///     ±0.0 both trip it, NaN denominators do not). `zero_words` has
///     ceil(n/64) words and bits are OR-ed in, never cleared.
///   * cvt_i64_f64 — int64 -> double, matching static_cast per element.
///   * andor — three-valued AND/OR over bool bytes + packed null bitmaps
///     (ApplyBinaryOp's truth table: decisive non-null operand wins, null
///     otherwise when either side is null). Null inputs may be null
///     pointers (meaning "no nulls"); `out_nulls` has ceil(n/64) zeroed
///     words on entry and gets result-null bits OR-ed in.
///
/// Payload lanes under null rows are computed from whatever bytes the input
/// holds there; the dispatch layer re-zeroes them afterwards so the output
/// Vec is byte-identical to the scalar typed loop's.
struct KernelTable {
  void (*cmp_f64)(CmpOp op, F64Src a, F64Src b, uint8_t* out, size_t n);
  void (*arith_f64)(ArithOp op, F64Src a, F64Src b, double* out, size_t n);
  void (*arith_i64)(ArithOp op, I64Src a, I64Src b, int64_t* out, size_t n);
  void (*div_f64)(F64Src a, F64Src b, double* out, uint64_t* zero_words,
                  size_t n);
  void (*cvt_i64_f64)(I64Src a, double* out, size_t n);
  void (*andor)(bool is_and, BoolSrc a, const uint64_t* a_nulls, BoolSrc b,
                const uint64_t* b_nulls, uint8_t* out, uint64_t* out_nulls,
                size_t n);
};

/// The 128-bit (2-lane) and 256-bit (4-lane) kernel tables. Null when the
/// build disabled SIMD (-DTIOGA2_SIMD=OFF). The AVX2 table is compiled with
/// -mavx2 where the compiler supports it; callers must gate on the runtime
/// probe (simd::BestLevel) before invoking it.
const KernelTable* KernelsSSE2();
const KernelTable* KernelsAVX2();

}  // namespace tioga2::expr::simd

#endif  // TIOGA2_EXPR_SIMD_KERNELS_H_
