// 128-bit (2-lane) kernel tier. Compiled without extra ISA flags: the GNU
// vector extensions lower to the x86-64 baseline (SSE2) or the target's
// equivalent.

#include "expr/simd/kernels.h"

#if defined(TIOGA2_SIMD_ENABLED)

#define TIOGA2_SIMD_NS k128
#define TIOGA2_SIMD_LANES 2
#include "expr/simd/kernels_impl.inc"
#undef TIOGA2_SIMD_NS
#undef TIOGA2_SIMD_LANES

namespace tioga2::expr::simd {
const KernelTable* KernelsSSE2() { return &k128::kTable; }
}  // namespace tioga2::expr::simd

#else  // !TIOGA2_SIMD_ENABLED

namespace tioga2::expr::simd {
const KernelTable* KernelsSSE2() { return nullptr; }
}  // namespace tioga2::expr::simd

#endif
