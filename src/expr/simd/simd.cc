#include "expr/simd/simd.h"

#include <vector>

#include "db/columnar.h"

namespace tioga2::expr::simd {

using types::DataType;

Level BestLevel() {
#if defined(TIOGA2_SIMD_ENABLED)
#if defined(__x86_64__) || defined(__i386__)
  static const Level probed = [] {
    return __builtin_cpu_supports("avx2") != 0 ? Level::kAVX2 : Level::kSSE2;
  }();
  return probed;
#else
  // Non-x86: the "SSE2" tier is plain 128-bit vector-extension code and is
  // valid everywhere; the 256-bit tier needs the x86 probe, so skip it.
  return Level::kSSE2;
#endif
#else
  return Level::kScalar;
#endif
}

Level Resolve(db::SimdLevel requested) {
  const Level best = BestLevel();
  if (requested == db::SimdLevel::kAuto) return best;
  const int r = static_cast<int>(requested);
  const int b = static_cast<int>(best);
  return static_cast<Level>(r < b ? r : b);
}

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kSSE2: return "sse2";
    case Level::kAVX2: return "avx2";
  }
  return "?";
}

const KernelTable* Kernels(Level level) {
  switch (level) {
    case Level::kScalar: return nullptr;
    case Level::kSSE2: return KernelsSSE2();
    case Level::kAVX2: return KernelsAVX2();
  }
  return nullptr;
}

namespace {

/// A Vec operand flattened to contiguous storage: either a constant or a
/// pointer whose element k sits at ptr[k], plus the operand's null window
/// (`nulls` bit `null_offset + k` is element k's null flag; null `nulls`
/// means no nulls).
struct FlatNum {
  DataType type = DataType::kFloat;  // runtime lane type: kInt or kFloat
  bool is_const = false;
  double fconst = 0;
  int64_t iconst = 0;
  const double* f = nullptr;
  const int64_t* i = nullptr;
  const uint64_t* nulls = nullptr;
  size_t null_offset = 0;
  size_t null_words = 0;  // words readable at `nulls`
};

struct FlatBool {
  bool is_const = false;
  uint8_t cval = 0;
  const uint8_t* ptr = nullptr;
  const uint64_t* nulls = nullptr;
  size_t null_offset = 0;
  size_t null_words = 0;
};

/// A kView Vec flattens only when its selection is a dense run of rows
/// (selections are ascending, so back-front+1 == n means [front, front+n)),
/// letting element k read straight from column storage at front+k.
bool DenseViewBase(const Vec& v, size_t n, uint32_t* base) {
  const Selection& vs = *v.view_sel;
  if (vs.size() != n || n == 0) return false;
  if (static_cast<size_t>(vs.back() - vs.front()) + 1 != n) return false;
  *base = vs.front();
  return true;
}

bool FlattenNumeric(const Vec& v, size_t n, FlatNum* out) {
  switch (v.rep) {
    case Vec::Rep::kConst: {
      // Null constants never reach the SIMD hook (EvalBinary returns a null
      // constant for them first).
      const types::Value& c = v.cval;
      if (c.type() != DataType::kInt && c.type() != DataType::kFloat) {
        return false;
      }
      out->type = c.type();
      out->is_const = true;
      if (c.type() == DataType::kInt) {
        out->iconst = c.int_value();
        out->fconst = static_cast<double>(c.int_value());
      } else {
        out->fconst = c.float_value();
      }
      return true;
    }
    case Vec::Rep::kView: {
      const db::ColumnVector* col = v.view;
      if (col->type != DataType::kInt && col->type != DataType::kFloat) {
        return false;
      }
      uint32_t base = 0;
      if (!DenseViewBase(v, n, &base)) return false;
      out->type = col->type;
      if (col->type == DataType::kInt) {
        out->i = col->ints.data() + base;
      } else {
        out->f = col->floats.data() + base;
      }
      if (col->has_nulls()) {
        out->nulls = col->null_bits.data();
        out->null_offset = base;
        out->null_words = col->null_bits.size();
      }
      return true;
    }
    case Vec::Rep::kOwned: {
      if (!v.boxed.empty()) return false;
      if (v.type != DataType::kInt && v.type != DataType::kFloat) return false;
      out->type = v.type;
      if (v.type == DataType::kInt) {
        out->i = v.ints.data();
      } else {
        out->f = v.floats.data();
      }
      if (!v.null_bits.empty()) {
        out->nulls = v.null_bits.data();
        out->null_offset = 0;
        out->null_words = v.null_bits.size();
      }
      return true;
    }
  }
  return false;
}

bool FlattenBool(const Vec& v, size_t n, FlatBool* out) {
  switch (v.rep) {
    case Vec::Rep::kConst: {
      if (v.cval.is_null() || v.cval.type() != DataType::kBool) return false;
      out->is_const = true;
      out->cval = v.cval.bool_value() ? 1 : 0;
      return true;
    }
    case Vec::Rep::kView: {
      const db::ColumnVector* col = v.view;
      if (col->type != DataType::kBool) return false;
      uint32_t base = 0;
      if (!DenseViewBase(v, n, &base)) return false;
      out->ptr = col->bools.data() + base;
      if (col->has_nulls()) {
        out->nulls = col->null_bits.data();
        out->null_offset = base;
        out->null_words = col->null_bits.size();
      }
      return true;
    }
    case Vec::Rep::kOwned: {
      if (!v.boxed.empty() || v.type != DataType::kBool) return false;
      out->ptr = v.bools.data();
      if (!v.null_bits.empty()) {
        out->nulls = v.null_bits.data();
        out->null_offset = 0;
        out->null_words = v.null_bits.size();
      }
      return true;
    }
  }
  return false;
}

/// ORs the n-bit window starting at bit `offset` of `src` into dst[0..W),
/// re-aligned so window bit k lands at dst bit k. Bits at or past n are
/// masked off, so an all-zero dst afterwards means "no nulls in window".
void OrShiftedWindow(const uint64_t* src, size_t src_words, size_t offset,
                     size_t n, uint64_t* dst) {
  const size_t words = (n + 63) / 64;
  const size_t word0 = offset >> 6;
  const unsigned shift = static_cast<unsigned>(offset & 63);
  if (shift == 0) {
    for (size_t w = 0; w < words; ++w) dst[w] |= src[word0 + w];
  } else {
    for (size_t w = 0; w < words; ++w) {
      const uint64_t lo = src[word0 + w] >> shift;
      const uint64_t hi = word0 + w + 1 < src_words
                              ? src[word0 + w + 1] << (64 - shift)
                              : 0;
      dst[w] |= lo | hi;
    }
  }
  if ((n & 63) != 0) dst[words - 1] &= (uint64_t{1} << (n & 63)) - 1;
}

bool AnyBit(const std::vector<uint64_t>& words) {
  for (uint64_t w : words) {
    if (w != 0) return true;
  }
  return false;
}

/// Zeroes payload elements under set null bits, so the SIMD result is
/// byte-identical to the typed loop's (which never writes null rows and
/// leaves the resize-default zero there).
template <typename T>
void ZeroNullRows(const std::vector<uint64_t>& nulls, T* data) {
  for (size_t w = 0; w < nulls.size(); ++w) {
    uint64_t bits = nulls[w];
    while (bits != 0) {
      const unsigned b = static_cast<unsigned>(__builtin_ctzll(bits));
      bits &= bits - 1;
      data[(w << 6) + b] = T{};
    }
  }
}

Vec MakeTypedOut(DataType type, size_t n) {
  Vec out;
  out.rep = Vec::Rep::kOwned;
  out.type = type;
  out.size = n;
  switch (type) {
    case DataType::kBool: out.bools.resize(n); break;
    case DataType::kInt: out.ints.resize(n); break;
    case DataType::kFloat: out.floats.resize(n); break;
    default: break;  // SIMD only materializes bool/int/float
  }
  return out;
}

/// Presents a flattened numeric operand as double lanes: float storage is
/// passed through, int storage is converted once into `scratch` (matching
/// the per-element static_cast the scalar ReadDouble performs).
F64Src AsF64(const FlatNum& a, const KernelTable& k, size_t n,
             std::vector<double>* scratch) {
  if (a.is_const) return {nullptr, a.fconst};
  if (a.type == DataType::kFloat) return {a.f, 0};
  scratch->resize(n);
  k.cvt_i64_f64({a.i, 0}, scratch->data(), n);
  return {scratch->data(), 0};
}

I64Src AsI64(const FlatNum& a) {
  if (a.is_const) return {nullptr, a.iconst};
  return {a.i, 0};
}

}  // namespace

bool TryNumericBinary(Level level, BinaryOp op, const Vec& lhs, const Vec& rhs,
                      size_t n, Vec* out) {
  const KernelTable* k = Kernels(level);
  if (k == nullptr || n == 0) return false;

  FlatNum a, b;
  if (!FlattenNumeric(lhs, n, &a) || !FlattenNumeric(rhs, n, &b)) return false;

  const size_t words = (n + 63) / 64;
  thread_local std::vector<uint64_t> nulls;
  nulls.assign(words, 0);
  if (a.nulls != nullptr) {
    OrShiftedWindow(a.nulls, a.null_words, a.null_offset, n, nulls.data());
  }
  if (b.nulls != nullptr) {
    OrShiftedWindow(b.nulls, b.null_words, b.null_offset, n, nulls.data());
  }

  thread_local std::vector<double> cvt_a, cvt_b;

  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      CmpOp cmp = CmpOp::kEq;
      switch (op) {
        case BinaryOp::kEq: cmp = CmpOp::kEq; break;
        case BinaryOp::kNe: cmp = CmpOp::kNe; break;
        case BinaryOp::kLt: cmp = CmpOp::kLt; break;
        case BinaryOp::kLe: cmp = CmpOp::kLe; break;
        case BinaryOp::kGt: cmp = CmpOp::kGt; break;
        default: cmp = CmpOp::kGe; break;
      }
      *out = MakeTypedOut(DataType::kBool, n);
      k->cmp_f64(cmp, AsF64(a, *k, n, &cvt_a), AsF64(b, *k, n, &cvt_b),
                 out->bools.data(), n);
      if (AnyBit(nulls)) {
        out->null_bits = nulls;
        ZeroNullRows(nulls, out->bools.data());
      }
      return true;
    }
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul: {
      const ArithOp arith = op == BinaryOp::kAdd   ? ArithOp::kAdd
                            : op == BinaryOp::kSub ? ArithOp::kSub
                                                   : ArithOp::kMul;
      if (a.type == DataType::kInt && b.type == DataType::kInt) {
        *out = MakeTypedOut(DataType::kInt, n);
        k->arith_i64(arith, AsI64(a), AsI64(b), out->ints.data(), n);
        if (AnyBit(nulls)) {
          out->null_bits = nulls;
          ZeroNullRows(nulls, out->ints.data());
        }
        return true;
      }
      *out = MakeTypedOut(DataType::kFloat, n);
      k->arith_f64(arith, AsF64(a, *k, n, &cvt_a), AsF64(b, *k, n, &cvt_b),
                   out->floats.data(), n);
      if (AnyBit(nulls)) {
        out->null_bits = nulls;
        ZeroNullRows(nulls, out->floats.data());
      }
      return true;
    }
    case BinaryOp::kDiv: {
      *out = MakeTypedOut(DataType::kFloat, n);
      thread_local std::vector<uint64_t> zero_words;
      zero_words.assign(words, 0);
      k->div_f64(AsF64(a, *k, n, &cvt_a), AsF64(b, *k, n, &cvt_b),
                 out->floats.data(), zero_words.data(), n);
      // Divide-by-zero rows become null, exactly like the scalar kernel.
      for (size_t w = 0; w < words; ++w) nulls[w] |= zero_words[w];
      if (AnyBit(nulls)) {
        out->null_bits = nulls;
        ZeroNullRows(nulls, out->floats.data());
      }
      return true;
    }
    default:
      return false;  // kMod and non-numeric ops stay on the typed loops
  }
}

bool TryAndOrMerge(Level level, bool is_and, const Vec& lhs, const Vec& rhs,
                   size_t n, Vec* out) {
  const KernelTable* k = Kernels(level);
  if (k == nullptr || n == 0) return false;

  FlatBool a, b;
  if (!FlattenBool(lhs, n, &a) || !FlattenBool(rhs, n, &b)) return false;

  const size_t words = (n + 63) / 64;

  // The kernel wants word-aligned null windows. Word-aligned sources pass
  // straight through (stray bits past n in the last word only demote that
  // word to the per-row path, never change results); shifted windows are
  // re-packed into scratch.
  thread_local std::vector<uint64_t> a_shift, b_shift;
  const uint64_t* a_nulls = nullptr;
  const uint64_t* b_nulls = nullptr;
  if (a.nulls != nullptr) {
    if ((a.null_offset & 63) == 0) {
      a_nulls = a.nulls + (a.null_offset >> 6);
    } else {
      a_shift.assign(words, 0);
      OrShiftedWindow(a.nulls, a.null_words, a.null_offset, n, a_shift.data());
      a_nulls = a_shift.data();
    }
  }
  if (b.nulls != nullptr) {
    if ((b.null_offset & 63) == 0) {
      b_nulls = b.nulls + (b.null_offset >> 6);
    } else {
      b_shift.assign(words, 0);
      OrShiftedWindow(b.nulls, b.null_words, b.null_offset, n, b_shift.data());
      b_nulls = b_shift.data();
    }
  }

  thread_local std::vector<uint64_t> out_nulls;
  out_nulls.assign(words, 0);
  k->andor(is_and, {a.ptr, a.cval}, a_nulls, {b.ptr, b.cval}, b_nulls,
           out->bools.data(), out_nulls.data(), n);
  if (AnyBit(out_nulls)) out->null_bits = out_nulls;
  return true;
}

}  // namespace tioga2::expr::simd
