#include "expr/analyzer.h"

#include <utility>
#include <vector>

#include "expr/builtins.h"

namespace tioga2::expr {

using types::DataType;

TypeEnv MakeSchemaTypeEnv(
    const std::vector<std::pair<std::string, DataType>>& columns) {
  return [columns](const std::string& name) -> std::optional<AttrInfo> {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i].first == name) return AttrInfo{columns[i].second, i};
    }
    return std::nullopt;
  };
}

namespace {

bool IsNullLiteral(const ExprNode& node) {
  return node.kind == ExprNode::Kind::kLiteral && node.literal.is_null();
}

std::string At(const ExprNode& node) {
  return " at offset " + std::to_string(node.position);
}

bool IsNumeric(DataType t) { return t == DataType::kInt || t == DataType::kFloat; }

/// Unifies the types of two sibling subexpressions (if/coalesce branches,
/// comparison operands). Null literals adopt the other side's type.
Result<DataType> Unify(ExprNode* a, ExprNode* b) {
  if (IsNullLiteral(*a) && IsNullLiteral(*b)) {
    return Status::TypeError("cannot infer a type for null" + At(*a));
  }
  if (IsNullLiteral(*a)) {
    a->result_type = b->result_type;
    return b->result_type;
  }
  if (IsNullLiteral(*b)) {
    b->result_type = a->result_type;
    return a->result_type;
  }
  if (a->result_type == b->result_type) return a->result_type;
  if (IsNumeric(a->result_type) && IsNumeric(b->result_type)) return DataType::kFloat;
  return Status::TypeError("mismatched types " +
                           types::DataTypeToString(a->result_type) + " and " +
                           types::DataTypeToString(b->result_type) + At(*a));
}

Status AnalyzeCall(ExprNode* node, const TypeEnv& env);

Status Analyze(ExprNode* node, const TypeEnv& env) {
  switch (node->kind) {
    case ExprNode::Kind::kLiteral:
      if (!node->literal.is_null()) node->result_type = node->literal.type();
      // Null literals get a type from context (Unify) or stay untyped, in
      // which case evaluation simply yields null.
      return Status::OK();
    case ExprNode::Kind::kAttributeRef: {
      std::optional<AttrInfo> info = env(node->name);
      if (!info.has_value()) {
        return Status::NotFound("unknown attribute '" + node->name + "'" + At(*node));
      }
      node->result_type = info->type;
      node->stored_index = info->stored_index;
      return Status::OK();
    }
    case ExprNode::Kind::kUnary: {
      TIOGA2_RETURN_IF_ERROR(Analyze(node->children[0].get(), env));
      DataType t = node->children[0]->result_type;
      if (node->unary_op == UnaryOp::kNeg) {
        if (!IsNumeric(t) && !IsNullLiteral(*node->children[0])) {
          return Status::TypeError("unary '-' needs a numeric operand, got " +
                                   types::DataTypeToString(t) + At(*node));
        }
        node->result_type = IsNullLiteral(*node->children[0]) ? DataType::kFloat : t;
      } else {
        if (t != DataType::kBool && !IsNullLiteral(*node->children[0])) {
          return Status::TypeError("'not' needs a bool operand, got " +
                                   types::DataTypeToString(t) + At(*node));
        }
        node->result_type = DataType::kBool;
      }
      return Status::OK();
    }
    case ExprNode::Kind::kBinary: {
      ExprNode* lhs = node->children[0].get();
      ExprNode* rhs = node->children[1].get();
      TIOGA2_RETURN_IF_ERROR(Analyze(lhs, env));
      TIOGA2_RETURN_IF_ERROR(Analyze(rhs, env));
      DataType lt = lhs->result_type;
      DataType rt = rhs->result_type;
      switch (node->binary_op) {
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
          if ((lt != DataType::kBool && !IsNullLiteral(*lhs)) ||
              (rt != DataType::kBool && !IsNullLiteral(*rhs))) {
            return Status::TypeError("'and'/'or' need bool operands" + At(*node));
          }
          node->result_type = DataType::kBool;
          return Status::OK();
        case BinaryOp::kEq:
        case BinaryOp::kNe: {
          TIOGA2_ASSIGN_OR_RETURN(DataType unified, Unify(lhs, rhs));
          (void)unified;
          node->result_type = DataType::kBool;
          return Status::OK();
        }
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe: {
          TIOGA2_ASSIGN_OR_RETURN(DataType unified, Unify(lhs, rhs));
          if (unified == DataType::kDisplay) {
            return Status::TypeError("display values have no ordering" + At(*node));
          }
          node->result_type = DataType::kBool;
          return Status::OK();
        }
        case BinaryOp::kAdd:
          // Overloaded: numeric+numeric, string+string (concatenation),
          // display+display (Combine Displays, §5.3), date+int.
          if (lt == DataType::kString && rt == DataType::kString) {
            node->result_type = DataType::kString;
            return Status::OK();
          }
          if (lt == DataType::kDisplay && rt == DataType::kDisplay) {
            node->result_type = DataType::kDisplay;
            return Status::OK();
          }
          if (lt == DataType::kDate && rt == DataType::kInt) {
            node->result_type = DataType::kDate;
            return Status::OK();
          }
          [[fallthrough]];
        case BinaryOp::kSub:
          if (node->binary_op == BinaryOp::kSub) {
            if (lt == DataType::kDate && rt == DataType::kDate) {
              node->result_type = DataType::kInt;  // difference in days
              return Status::OK();
            }
            if (lt == DataType::kDate && rt == DataType::kInt) {
              node->result_type = DataType::kDate;
              return Status::OK();
            }
          }
          [[fallthrough]];
        case BinaryOp::kMul:
          if (IsNumeric(lt) && IsNumeric(rt)) {
            node->result_type = (lt == DataType::kInt && rt == DataType::kInt)
                                    ? DataType::kInt
                                    : DataType::kFloat;
            return Status::OK();
          }
          return Status::TypeError(
              "operator '" + BinaryOpToString(node->binary_op) + "' cannot combine " +
              types::DataTypeToString(lt) + " and " + types::DataTypeToString(rt) +
              At(*node));
        case BinaryOp::kDiv:
          if (IsNumeric(lt) && IsNumeric(rt)) {
            node->result_type = DataType::kFloat;
            return Status::OK();
          }
          return Status::TypeError("'/' needs numeric operands" + At(*node));
        case BinaryOp::kMod:
          if (lt == DataType::kInt && rt == DataType::kInt) {
            node->result_type = DataType::kInt;
            return Status::OK();
          }
          return Status::TypeError("'%' needs int operands" + At(*node));
      }
      return Status::Internal("unhandled binary op");
    }
    case ExprNode::Kind::kCall:
      return AnalyzeCall(node, env);
  }
  return Status::Internal("unhandled expression node kind");
}

Status AnalyzeCall(ExprNode* node, const TypeEnv& env) {
  for (ExprNodePtr& child : node->children) {
    TIOGA2_RETURN_IF_ERROR(Analyze(child.get(), env));
  }

  // Special forms with context-dependent result types.
  if (node->name == "if") {
    if (node->children.size() != 3) {
      return Status::TypeError("if() takes (condition, then, else)" + At(*node));
    }
    if (node->children[0]->result_type != DataType::kBool &&
        !IsNullLiteral(*node->children[0])) {
      return Status::TypeError("if() condition must be bool" + At(*node));
    }
    TIOGA2_ASSIGN_OR_RETURN(
        DataType unified, Unify(node->children[1].get(), node->children[2].get()));
    node->result_type = unified;
    return Status::OK();
  }
  if (node->name == "coalesce") {
    if (node->children.size() != 2) {
      return Status::TypeError("coalesce() takes two arguments" + At(*node));
    }
    TIOGA2_ASSIGN_OR_RETURN(
        DataType unified, Unify(node->children[0].get(), node->children[1].get()));
    node->result_type = unified;
    return Status::OK();
  }

  const std::vector<const BuiltinOverload*>& overloads = LookupBuiltins(node->name);
  if (overloads.empty()) {
    return Status::NotFound("unknown function '" + node->name + "'" + At(*node));
  }
  for (const BuiltinOverload* overload : overloads) {
    size_t fixed = overload->params.size();
    bool arity_ok = overload->variadic_tail ? node->children.size() >= fixed
                                            : node->children.size() == fixed;
    if (!arity_ok) continue;
    bool types_ok = true;
    for (size_t i = 0; i < node->children.size(); ++i) {
      ParamType param = overload->params[std::min(i, fixed - 1)];
      const ExprNode& arg = *node->children[i];
      if (IsNullLiteral(arg)) continue;  // null binds to any parameter
      if (!ParamMatches(param, arg.result_type)) {
        types_ok = false;
        break;
      }
    }
    if (!types_ok) continue;
    node->overload = overload;
    if (overload->result_rule == ResultRule::kNumericPromote) {
      bool all_int = true;
      for (const ExprNodePtr& arg : node->children) {
        if (arg->result_type != DataType::kInt) all_int = false;
      }
      node->result_type = all_int ? DataType::kInt : DataType::kFloat;
    } else {
      node->result_type = overload->result_type;
    }
    return Status::OK();
  }
  std::string got = "(";
  for (size_t i = 0; i < node->children.size(); ++i) {
    if (i > 0) got += ", ";
    got += IsNullLiteral(*node->children[i])
               ? "null"
               : types::DataTypeToString(node->children[i]->result_type);
  }
  got += ")";
  return Status::TypeError("no overload of '" + node->name + "' matches arguments " +
                           got + At(*node));
}

}  // namespace

Status AnalyzeExpr(ExprNode* node, const TypeEnv& env) { return Analyze(node, env); }

}  // namespace tioga2::expr
