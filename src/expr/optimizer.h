#ifndef TIOGA2_EXPR_OPTIMIZER_H_
#define TIOGA2_EXPR_OPTIMIZER_H_

#include "common/result.h"
#include "expr/ast.h"

namespace tioga2::expr {

/// Constant-folds an analyzed expression tree in place: any subtree whose
/// leaves are all literals evaluates once at compile time and is replaced by
/// its value. Attribute definitions are evaluated per tuple per render, so
/// folding e.g. the color ramp endpoints of
///   circle(0.05, lerp_color("#1e46c8", "#c81e1e", 0.5), true)
/// removes the whole call from the per-tuple path.
///
/// Subtrees whose compile-time evaluation fails (e.g. a malformed color
/// literal) are left unfolded so the error surfaces at evaluation time with
/// the usual per-tuple semantics. Returns the number of nodes replaced.
Result<size_t> FoldConstants(ExprNode* node);

}  // namespace tioga2::expr

#endif  // TIOGA2_EXPR_OPTIMIZER_H_
