#ifndef TIOGA2_EXPR_BUILTINS_H_
#define TIOGA2_EXPR_BUILTINS_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/value.h"

namespace tioga2::expr {

/// Parameter type pattern for overload matching.
enum class ParamType {
  kBool,
  kInt,
  kFloat,    // accepts int via implicit widening
  kString,
  kDate,
  kDisplay,
  kNumeric,  // int or float, passed through unwidened
  kAny,
};

/// How the result type of a call is derived.
enum class ResultRule {
  kFixed,           // always `result_type`
  kNumericPromote,  // int if all numeric arguments are int, else float
};

/// One callable overload of a builtin function. Builtins are the "big
/// programmer" extension point retained from Tioga (§1.2 principle 5):
/// expression-level functions registered once and usable in any box.
struct BuiltinOverload {
  std::string name;
  std::vector<ParamType> params;
  /// If true, the final entry of `params` may repeat zero or more times
  /// (used by polygon(x1, y1, x2, y2, ...)).
  bool variadic_tail = false;
  ResultRule result_rule = ResultRule::kFixed;
  types::DataType result_type = types::DataType::kFloat;
  /// If true, the implementation receives null arguments verbatim; otherwise
  /// any null argument makes the call evaluate to null without invoking it.
  bool null_opaque = false;
  std::function<Result<types::Value>(const std::vector<types::Value>&)> eval;
};

/// True iff a value of `type` may be bound to `param` (identity or int→float).
bool ParamMatches(ParamType param, types::DataType type);

/// All overloads registered under `name` (empty if unknown).
const std::vector<const BuiltinOverload*>& LookupBuiltins(const std::string& name);

/// Names of every registered builtin, sorted (for documentation/UI menus).
std::vector<std::string> AllBuiltinNames();

}  // namespace tioga2::expr

#endif  // TIOGA2_EXPR_BUILTINS_H_
