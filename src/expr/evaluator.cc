#include "expr/evaluator.h"

#include <cmath>
#include <vector>

#include "draw/drawable.h"
#include "expr/builtins.h"

namespace tioga2::expr {

using types::DataType;
using types::Value;

Result<Value> TupleAccessor::GetStored(size_t index) const {
  if (index >= tuple_.size()) {
    return Status::Internal("stored attribute index out of range");
  }
  return tuple_[index];
}

Result<Value> TupleAccessor::GetNamed(const std::string& name) const {
  return Status::NotFound("no computed attribute '" + name +
                          "' on a plain relation tuple");
}

namespace {

Result<Value> EvalBinary(const ExprNode& node, const RowAccessor& row);
Result<Value> EvalCall(const ExprNode& node, const RowAccessor& row);

Result<Value> Eval(const ExprNode& node, const RowAccessor& row) {
  switch (node.kind) {
    case ExprNode::Kind::kLiteral:
      return node.literal;
    case ExprNode::Kind::kAttributeRef:
      if (node.stored_index.has_value()) return row.GetStored(*node.stored_index);
      return row.GetNamed(node.name);
    case ExprNode::Kind::kUnary: {
      TIOGA2_ASSIGN_OR_RETURN(Value v, Eval(*node.children[0], row));
      return ApplyUnaryOp(node.unary_op, v);
    }
    case ExprNode::Kind::kBinary:
      return EvalBinary(node, row);
    case ExprNode::Kind::kCall:
      return EvalCall(node, row);
  }
  return Status::Internal("unhandled node kind in EvalExpr");
}

Result<Value> EvalBinary(const ExprNode& node, const RowAccessor& row) {
  BinaryOp op = node.binary_op;

  // Three-valued and/or with short-circuiting; the combine itself lives in
  // ApplyBinaryOp so the batch evaluator shares it.
  if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
    TIOGA2_ASSIGN_OR_RETURN(Value lhs, Eval(*node.children[0], row));
    if (!lhs.is_null()) {
      bool l = lhs.bool_value();
      if (op == BinaryOp::kAnd && !l) return Value::Bool(false);
      if (op == BinaryOp::kOr && l) return Value::Bool(true);
    }
    TIOGA2_ASSIGN_OR_RETURN(Value rhs, Eval(*node.children[1], row));
    return ApplyBinaryOp(op, lhs, rhs);
  }

  TIOGA2_ASSIGN_OR_RETURN(Value lhs, Eval(*node.children[0], row));
  TIOGA2_ASSIGN_OR_RETURN(Value rhs, Eval(*node.children[1], row));
  return ApplyBinaryOp(op, lhs, rhs);
}

Result<Value> EvalCall(const ExprNode& node, const RowAccessor& row) {
  // Special forms.
  if (node.name == "if") {
    TIOGA2_ASSIGN_OR_RETURN(Value cond, Eval(*node.children[0], row));
    if (cond.is_null()) return Value::Null();
    return Eval(*node.children[cond.bool_value() ? 1 : 2], row);
  }
  if (node.name == "coalesce") {
    TIOGA2_ASSIGN_OR_RETURN(Value first, Eval(*node.children[0], row));
    if (!first.is_null()) return first;
    return Eval(*node.children[1], row);
  }

  const BuiltinOverload* overload = node.overload;
  if (overload == nullptr) {
    return Status::Internal("call to '" + node.name + "' was not analyzed");
  }
  std::vector<Value> args;
  args.reserve(node.children.size());
  for (const ExprNodePtr& child : node.children) {
    TIOGA2_ASSIGN_OR_RETURN(Value v, Eval(*child, row));
    if (v.is_null() && !overload->null_opaque) return Value::Null();
    args.push_back(std::move(v));
  }
  return overload->eval(args);
}

}  // namespace

Value ApplyUnaryOp(UnaryOp op, const Value& v) {
  if (v.is_null()) return Value::Null();
  if (op == UnaryOp::kNeg) {
    if (v.is_int()) return Value::Int(-v.int_value());
    return Value::Float(-v.float_value());
  }
  return Value::Bool(!v.bool_value());
}

Result<Value> ApplyBinaryOp(BinaryOp op, const Value& lhs, const Value& rhs) {
  switch (op) {
    // Three-valued and/or from both operands. A decisive non-null operand
    // (false for and, true for or) wins even when the other side is null,
    // matching EvalExpr's short-circuit behavior.
    case BinaryOp::kAnd: {
      if (!lhs.is_null() && !lhs.bool_value()) return Value::Bool(false);
      if (!rhs.is_null() && !rhs.bool_value()) return Value::Bool(false);
      if (lhs.is_null() || rhs.is_null()) return Value::Null();
      return Value::Bool(true);
    }
    case BinaryOp::kOr: {
      if (!lhs.is_null() && lhs.bool_value()) return Value::Bool(true);
      if (!rhs.is_null() && rhs.bool_value()) return Value::Bool(true);
      if (lhs.is_null() || rhs.is_null()) return Value::Null();
      return Value::Bool(false);
    }
    case BinaryOp::kEq:
    case BinaryOp::kNe: {
      if (lhs.is_null() || rhs.is_null()) return Value::Null();
      bool eq = lhs.Equals(rhs);
      return Value::Bool(op == BinaryOp::kEq ? eq : !eq);
    }
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      if (lhs.is_null() || rhs.is_null()) return Value::Null();
      TIOGA2_ASSIGN_OR_RETURN(int cmp, lhs.Compare(rhs));
      switch (op) {
        case BinaryOp::kLt: return Value::Bool(cmp < 0);
        case BinaryOp::kLe: return Value::Bool(cmp <= 0);
        case BinaryOp::kGt: return Value::Bool(cmp > 0);
        default: return Value::Bool(cmp >= 0);
      }
    }
    default:
      break;
  }

  // Arithmetic: null-propagating.
  if (lhs.is_null() || rhs.is_null()) return Value::Null();

  // String concatenation.
  if (op == BinaryOp::kAdd && lhs.is_string() && rhs.is_string()) {
    return Value::String(lhs.string_value() + rhs.string_value());
  }
  // Display combination (Combine Displays at zero offset; use offset() for
  // an explicit offset).
  if (op == BinaryOp::kAdd && lhs.is_display() && rhs.is_display()) {
    return Value::Display(
        draw::CombineDrawableLists(lhs.display_value(), rhs.display_value(), 0, 0));
  }
  // Date arithmetic.
  if (lhs.is_date()) {
    if (op == BinaryOp::kAdd && rhs.is_int()) {
      return Value::DateVal(lhs.date_value().AddDays(rhs.int_value()));
    }
    if (op == BinaryOp::kSub && rhs.is_int()) {
      return Value::DateVal(lhs.date_value().AddDays(-rhs.int_value()));
    }
    if (op == BinaryOp::kSub && rhs.is_date()) {
      return Value::Int(lhs.date_value().DaysValue() - rhs.date_value().DaysValue());
    }
  }

  bool both_int = lhs.is_int() && rhs.is_int();
  switch (op) {
    case BinaryOp::kAdd:
      if (both_int) return Value::Int(lhs.int_value() + rhs.int_value());
      return Value::Float(lhs.AsDouble() + rhs.AsDouble());
    case BinaryOp::kSub:
      if (both_int) return Value::Int(lhs.int_value() - rhs.int_value());
      return Value::Float(lhs.AsDouble() - rhs.AsDouble());
    case BinaryOp::kMul:
      if (both_int) return Value::Int(lhs.int_value() * rhs.int_value());
      return Value::Float(lhs.AsDouble() * rhs.AsDouble());
    case BinaryOp::kDiv: {
      double denominator = rhs.AsDouble();
      if (denominator == 0) return Value::Null();
      return Value::Float(lhs.AsDouble() / denominator);
    }
    case BinaryOp::kMod: {
      if (rhs.int_value() == 0) return Value::Null();
      return Value::Int(lhs.int_value() % rhs.int_value());
    }
    default:
      return Status::Internal("unhandled binary operator at evaluation");
  }
}

Result<Value> EvalExpr(const ExprNode& node, const RowAccessor& row) {
  return Eval(node, row);
}

}  // namespace tioga2::expr
