#include "expr/batch.h"

#include <algorithm>
#include <utility>

#include "db/relation.h"
#include "draw/drawable.h"
#include "expr/builtins.h"
#include "expr/evaluator.h"
#include "expr/simd/simd.h"

namespace tioga2::expr {

using types::DataType;
using types::Value;

void IdentitySelection(size_t begin, size_t end, Selection* sel) {
  sel->clear();
  sel->reserve(end - begin);
  for (size_t r = begin; r < end; ++r) sel->push_back(static_cast<uint32_t>(r));
}

bool Vec::IsNull(size_t k) const {
  switch (rep) {
    case Rep::kConst:
      return cval.is_null();
    case Rep::kView:
      return view->IsNull((*view_sel)[k]);
    case Rep::kOwned:
      if (!boxed.empty()) return boxed[k].is_null();
      return !null_bits.empty() && ((null_bits[k >> 6] >> (k & 63)) & 1) != 0;
  }
  return false;
}

Value Vec::ValueAt(size_t k) const {
  switch (rep) {
    case Rep::kConst:
      return cval;
    case Rep::kView:
      return view->ValueAt((*view_sel)[k]);
    case Rep::kOwned:
      break;
  }
  if (!boxed.empty()) return boxed[k];
  if (IsNull(k)) return Value::Null();
  switch (type) {
    case DataType::kBool:
      return Value::Bool(bools[k] != 0);
    case DataType::kInt:
      return Value::Int(ints[k]);
    case DataType::kFloat:
      return Value::Float(floats[k]);
    case DataType::kString:
      return Value::String(strings[k]);
    case DataType::kDate:
      return Value::DateVal(types::Date(dates[k]));
    case DataType::kDisplay:
      break;  // typed display vecs are never built; display stays boxed
  }
  return Value::Null();
}

Vec Vec::Const(Value v, size_t n) {
  Vec out;
  out.rep = Rep::kConst;
  out.size = n;
  if (!v.is_null()) out.type = v.type();
  out.cval = std::move(v);
  return out;
}

Vec Vec::OwnedBoxed(std::vector<Value> values) {
  Vec out;
  out.rep = Rep::kOwned;
  out.size = values.size();
  out.boxed = std::move(values);
  return out;
}

void Vec::SetNull(size_t k) {
  if (null_bits.empty()) null_bits.resize((size + 63) / 64, 0);
  null_bits[k >> 6] |= uint64_t{1} << (k & 63);
}

size_t RelationBatchSource::num_rows() const { return relation_.num_rows(); }

const db::ColumnVector* RelationBatchSource::StoredColumn(size_t index) const {
  return &relation_.columnar().column(index);
}

Result<Value> RelationBatchSource::StoredAt(size_t index, size_t row) const {
  if (index >= relation_.num_columns()) {
    return Status::Internal("stored attribute index out of range");
  }
  return relation_.at(row, index);
}

Result<Value> RelationBatchSource::NamedAt(const std::string& name, size_t) const {
  return Status::NotFound("no computed attribute '" + name +
                          "' on a plain relation tuple");
}

BatchMetrics& BatchMetrics::Global() {
  static BatchMetrics* metrics = new BatchMetrics();
  return *metrics;
}

void BatchMetrics::Reset() {
  restrict_batches = 0;
  restrict_rows = 0;
  restrict_scalar_rows = 0;
  sort_key_batches = 0;
  sort_scalar_fallbacks = 0;
  display_attr_batches = 0;
  display_attr_rows = 0;
  render_location_batches = 0;
  render_scalar_fallbacks = 0;
  join_hash_build_rows = 0;
  join_hash_probe_rows = 0;
  join_nested_batches = 0;
  nodes_vectorized = 0;
  nodes_fallback = 0;
  simd_batches_sse2 = 0;
  simd_batches_avx2 = 0;
  simd_rows = 0;
  simd_scalar_fallbacks = 0;
  dict_columns_built = 0;
  dict_simd_batches = 0;
  dict_remap_fallbacks = 0;
  sparse_gathers = 0;
  morsel_groups = 0;
  morsel_groups_parallel = 0;
  morsels_executed = 0;
  morsels_stolen = 0;
  morsel_parallel_rows = 0;
}

BatchEvaluator::BatchEvaluator(const BatchSource& source)
    : BatchEvaluator(source, db::DefaultExecPolicy()) {}

BatchEvaluator::BatchEvaluator(const BatchSource& source,
                               const db::ExecPolicy& policy)
    : source_(source),
      simd_level_(static_cast<int>(simd::Resolve(policy.simd))),
      sparse_gather_density_(policy.sparse_gather_density) {}

namespace {

/// The vec-level runtime type, when uniform: the type every non-null element
/// has at runtime. nullopt for boxed vecs (per-element types may differ) and
/// null constants (no runtime type at all).
std::optional<DataType> UniformType(const Vec& v) {
  switch (v.rep) {
    case Vec::Rep::kConst:
      if (v.cval.is_null()) return std::nullopt;
      return v.cval.type();
    case Vec::Rep::kView:
      return v.view->type;
    case Vec::Rep::kOwned:
      if (!v.boxed.empty()) return std::nullopt;
      return v.type;
  }
  return std::nullopt;
}

double ReadDouble(const Vec& v, size_t k) {
  switch (v.rep) {
    case Vec::Rep::kConst:
      return v.cval.AsDouble();
    case Vec::Rep::kView: {
      size_t row = (*v.view_sel)[k];
      return v.view->type == DataType::kInt ? static_cast<double>(v.view->ints[row])
                                            : v.view->floats[row];
    }
    case Vec::Rep::kOwned:
      return v.type == DataType::kInt ? static_cast<double>(v.ints[k]) : v.floats[k];
  }
  return 0;
}

int64_t ReadInt(const Vec& v, size_t k) {
  switch (v.rep) {
    case Vec::Rep::kConst:
      return v.cval.int_value();
    case Vec::Rep::kView:
      return v.view->ints[(*v.view_sel)[k]];
    case Vec::Rep::kOwned:
      return v.ints[k];
  }
  return 0;
}

bool ReadBool(const Vec& v, size_t k) {
  switch (v.rep) {
    case Vec::Rep::kConst:
      return v.cval.bool_value();
    case Vec::Rep::kView:
      return v.view->bools[(*v.view_sel)[k]] != 0;
    case Vec::Rep::kOwned:
      if (!v.boxed.empty()) return v.boxed[k].bool_value();
      return v.bools[k] != 0;
  }
  return false;
}

const std::string& ReadString(const Vec& v, size_t k) {
  switch (v.rep) {
    case Vec::Rep::kConst:
      return v.cval.string_value();
    case Vec::Rep::kView:
      return v.view->strings[(*v.view_sel)[k]];
    case Vec::Rep::kOwned:
      return v.strings[k];
  }
  return v.cval.string_value();
}

int64_t ReadDateDays(const Vec& v, size_t k) {
  switch (v.rep) {
    case Vec::Rep::kConst:
      return v.cval.date_value().DaysValue();
    case Vec::Rep::kView:
      return v.view->dates[(*v.view_sel)[k]];
    case Vec::Rep::kOwned:
      return v.dates[k];
  }
  return 0;
}

Vec MakeTypedVec(DataType type, size_t n) {
  Vec out;
  out.rep = Vec::Rep::kOwned;
  out.type = type;
  out.size = n;
  switch (type) {
    case DataType::kBool:
      out.bools.resize(n);
      break;
    case DataType::kInt:
      out.ints.resize(n);
      break;
    case DataType::kFloat:
      out.floats.resize(n);
      break;
    case DataType::kString:
      out.strings.resize(n);
      break;
    case DataType::kDate:
      out.dates.resize(n);
      break;
    case DataType::kDisplay:
      out.boxed.resize(n);
      break;
  }
  return out;
}

/// True when `v` reads a dictionary-encoded string column: the operand a
/// string comparison can lower onto integer codes.
bool DictCompareOperand(const Vec& v) {
  return v.rep == Vec::Rep::kView && v.view->type == DataType::kString &&
         v.view->has_dict();
}

/// Gathers the dictionary codes of a kView string operand into a dense
/// kOwned int vector (nulls mirrored), ready for the numeric lane kernels.
/// Works for any selection shape — sparse string comparisons still lower.
Vec GatherCodes(const Vec& v) {
  const db::ColumnVector& col = *v.view;
  const Selection& vs = *v.view_sel;
  const size_t n = v.size;
  Vec codes = MakeTypedVec(DataType::kInt, n);
  for (size_t k = 0; k < n; ++k) {
    const uint32_t r = vs[k];
    if (col.IsNull(r)) {
      codes.SetNull(k);
    } else {
      codes.ints[k] = static_cast<int64_t>(col.dict_codes[r]);
    }
  }
  return codes;
}

BinaryOp FlipComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt: return BinaryOp::kGt;
    case BinaryOp::kLe: return BinaryOp::kGe;
    case BinaryOp::kGt: return BinaryOp::kLt;
    case BinaryOp::kGe: return BinaryOp::kLe;
    default: return op;  // kEq / kNe are symmetric
  }
}

/// Maps `column <op> constant` into code space. With L = lower-bound rank of
/// the constant in the sorted dictionary and U = its upper-bound rank
/// (L+1 when present, L when absent — the dictionary is duplicate-free):
///   =   → code == L   (== -1 when absent: always false, codes are >= 0)
///   <>  → code != L   (!= -1 when absent: always true)
///   <   → code <  L
///   <=  → code <  U
///   >   → code >= U
///   >=  → code >= L
/// Valid because the dictionary is sorted in the exact order Value::Compare
/// gives strings, so code order == string order.
void LowerDictCompare(const std::vector<std::string>& dict, BinaryOp op,
                      const std::string& constant, BinaryOp* op_out,
                      int64_t* const_out) {
  const auto lo = std::lower_bound(dict.begin(), dict.end(), constant);
  const int64_t rank = lo - dict.begin();
  const bool found = lo != dict.end() && *lo == constant;
  const int64_t upper = found ? rank + 1 : rank;
  switch (op) {
    case BinaryOp::kEq:
      *op_out = BinaryOp::kEq;
      *const_out = found ? rank : -1;
      break;
    case BinaryOp::kNe:
      *op_out = BinaryOp::kNe;
      *const_out = found ? rank : -1;
      break;
    case BinaryOp::kLt:
      *op_out = BinaryOp::kLt;
      *const_out = rank;
      break;
    case BinaryOp::kLe:
      *op_out = BinaryOp::kLt;
      *const_out = upper;
      break;
    case BinaryOp::kGt:
      *op_out = BinaryOp::kGe;
      *const_out = upper;
      break;
    default:  // kGe
      *op_out = BinaryOp::kGe;
      *const_out = rank;
      break;
  }
}

/// Gathers a sparse numeric kView operand into dense kOwned storage when its
/// density (selected / spanned rows) is at or below `density_bound`, so the
/// SIMD kernels — which require dense selections — still apply after a
/// selective Restrict. Bit-identical either way; only the storage moves.
bool MaybeGatherSparse(Vec* v, size_t n, double density_bound) {
  if (v->rep != Vec::Rep::kView || n == 0) return false;
  const db::ColumnVector& col = *v->view;
  if (col.type != DataType::kInt && col.type != DataType::kFloat) return false;
  const Selection& vs = *v->view_sel;
  const size_t span = static_cast<size_t>(vs.back() - vs.front()) + 1;
  if (span == n) return false;  // dense run: FlattenNumeric takes it as-is
  if (static_cast<double>(n) > density_bound * static_cast<double>(span)) {
    return false;
  }
  Vec gathered = MakeTypedVec(col.type, n);
  for (size_t k = 0; k < n; ++k) {
    const uint32_t r = vs[k];
    if (col.IsNull(r)) {
      gathered.SetNull(k);
    } else if (col.type == DataType::kInt) {
      gathered.ints[k] = col.ints[r];
    } else {
      gathered.floats[k] = col.floats[r];
    }
  }
  ++BatchMetrics::Global().sparse_gathers;
  *v = std::move(gathered);
  return true;
}

/// Converts a boxed Vec to a typed one when every non-null element has the
/// same primitive runtime type (all-null becomes a null constant). Uniformity
/// is checked at runtime, not taken from the analyzer: `if`/`coalesce` may
/// return Int where Float was declared, and the typed form must mirror what
/// the scalar evaluator actually produced.
void PromoteIfUniform(Vec* v) {
  if (!v->is_boxed()) return;
  std::optional<DataType> t;
  for (const Value& value : v->boxed) {
    if (value.is_null()) continue;
    DataType vt = value.type();
    if (vt == DataType::kDisplay) return;  // display stays boxed
    if (!t.has_value()) {
      t = vt;
    } else if (*t != vt) {
      return;
    }
  }
  if (!t.has_value()) {
    *v = Vec::Const(Value::Null(), v->size);
    return;
  }
  Vec typed = MakeTypedVec(*t, v->size);
  for (size_t k = 0; k < v->boxed.size(); ++k) {
    const Value& value = v->boxed[k];
    if (value.is_null()) {
      typed.SetNull(k);
      continue;
    }
    switch (*t) {
      case DataType::kBool:
        typed.bools[k] = value.bool_value() ? 1 : 0;
        break;
      case DataType::kInt:
        typed.ints[k] = value.int_value();
        break;
      case DataType::kFloat:
        typed.floats[k] = value.float_value();
        break;
      case DataType::kString:
        typed.strings[k] = value.string_value();
        break;
      case DataType::kDate:
        typed.dates[k] = value.date_value().DaysValue();
        break;
      case DataType::kDisplay:
        break;  // unreachable: display returned above
    }
  }
  *v = std::move(typed);
}

/// Batch path for the drawable-constructor builtins (point/circle/rect/line/
/// text/offset): styling arguments (colors, fill flags) must be batch
/// constants so parsing and decoding hoist out of the row loop, while
/// numeric/string/display arguments stream from the operand vectors without
/// per-row boxing. Returns true and fills *out with results value-identical
/// to running the overload's scalar eval row by row; false (including for a
/// constant color that fails to parse — the scalar loop then reports it, or
/// legitimately skips it when every row has a null argument) means the
/// caller falls back.
bool TryEvalDisplayBuiltin(const ExprNode& node, const std::vector<Vec>& args,
                           size_t n, Vec* out) {
  if (node.overload == nullptr || node.overload->null_opaque) return false;
  const std::string& name = node.name;
  const size_t argc = args.size();

  auto numeric_ok = [&](size_t a) {
    std::optional<DataType> t = UniformType(args[a]);
    return !args[a].is_boxed() && t.has_value() && IsNumericType(*t);
  };
  auto string_ok = [&](size_t a) {
    return !args[a].is_boxed() && UniformType(args[a]) == DataType::kString;
  };
  auto const_nonnull = [&](size_t a, DataType t) {
    return args[a].rep == Vec::Rep::kConst && !args[a].cval.is_null() &&
           args[a].cval.type() == t;
  };
  auto parse_color = [&](size_t a, draw::Color* color) {
    return draw::ColorFromHex(args[a].cval.string_value(), color);
  };
  auto wrap = [](draw::Drawable d) {
    return Value::Display(draw::MakeDrawableList({std::move(d)}));
  };
  auto build = [&](auto&& make) {
    std::vector<Value> values;
    values.reserve(n);
    for (size_t k = 0; k < n; ++k) {
      bool null_arg = false;
      for (const Vec& a : args) {
        if (a.IsNull(k)) {
          null_arg = true;
          break;
        }
      }
      if (null_arg) {
        values.push_back(Value::Null());
      } else {
        values.push_back(make(k));
      }
    }
    *out = Vec::OwnedBoxed(std::move(values));
    PromoteIfUniform(out);
    return true;
  };

  if (name == "point") {
    if (argc == 0) {
      *out = Vec::Const(wrap(draw::MakePoint()), n);
      return true;
    }
    draw::Color color;
    if (argc == 1 && const_nonnull(0, DataType::kString) &&
        parse_color(0, &color)) {
      *out = Vec::Const(wrap(draw::MakePoint(color)), n);
      return true;
    }
    return false;
  }
  if (name == "circle") {
    if (argc < 1 || !numeric_ok(0)) return false;
    if (argc == 1) {
      return build(
          [&](size_t k) { return wrap(draw::MakeCircle(ReadDouble(args[0], k))); });
    }
    draw::Color color;
    if (!const_nonnull(1, DataType::kString) || !parse_color(1, &color)) {
      return false;
    }
    if (argc == 2) {
      return build([&](size_t k) {
        return wrap(draw::MakeCircle(ReadDouble(args[0], k), color));
      });
    }
    if (argc == 3 && const_nonnull(2, DataType::kBool)) {
      const draw::FillMode fill = args[2].cval.bool_value()
                                      ? draw::FillMode::kFilled
                                      : draw::FillMode::kOutline;
      return build([&](size_t k) {
        return wrap(draw::MakeCircle(ReadDouble(args[0], k), color, fill));
      });
    }
    return false;
  }
  if (name == "rect") {
    if (argc < 2 || !numeric_ok(0) || !numeric_ok(1)) return false;
    if (argc == 2) {
      return build([&](size_t k) {
        return wrap(
            draw::MakeRectangle(ReadDouble(args[0], k), ReadDouble(args[1], k)));
      });
    }
    draw::Color color;
    if (!const_nonnull(2, DataType::kString) || !parse_color(2, &color)) {
      return false;
    }
    if (argc == 3) {
      return build([&](size_t k) {
        return wrap(draw::MakeRectangle(ReadDouble(args[0], k),
                                        ReadDouble(args[1], k), color));
      });
    }
    if (argc == 4 && const_nonnull(3, DataType::kBool)) {
      const draw::FillMode fill = args[3].cval.bool_value()
                                      ? draw::FillMode::kFilled
                                      : draw::FillMode::kOutline;
      return build([&](size_t k) {
        return wrap(draw::MakeRectangle(ReadDouble(args[0], k),
                                        ReadDouble(args[1], k), color, fill));
      });
    }
    return false;
  }
  if (name == "line") {
    if (argc < 2 || !numeric_ok(0) || !numeric_ok(1)) return false;
    if (argc == 2) {
      return build([&](size_t k) {
        return wrap(draw::MakeLine(ReadDouble(args[0], k), ReadDouble(args[1], k)));
      });
    }
    draw::Color color;
    if (argc == 3 && const_nonnull(2, DataType::kString) &&
        parse_color(2, &color)) {
      return build([&](size_t k) {
        return wrap(
            draw::MakeLine(ReadDouble(args[0], k), ReadDouble(args[1], k), color));
      });
    }
    return false;
  }
  if (name == "text") {
    if (argc < 2 || !string_ok(0) || !numeric_ok(1)) return false;
    draw::Color color;
    bool have_color = false;
    if (argc == 3) {
      if (!const_nonnull(2, DataType::kString) || !parse_color(2, &color)) {
        return false;
      }
      have_color = true;
    } else if (argc != 2) {
      return false;
    }
    // Dictionary splat: with an encoded label column and a constant size,
    // rows with the same code yield the same drawable — format each distinct
    // code once and share the DrawableList across its rows (sharing is
    // established practice: a kConst display Vec already shares one list).
    if (args[0].rep == Vec::Rep::kView && args[0].view->has_dict() &&
        args[1].rep == Vec::Rep::kConst && !args[1].cval.is_null()) {
      const db::ColumnVector& col = *args[0].view;
      const std::vector<std::string>& dict = *col.dict_values;
      const double size_arg = args[1].cval.AsDouble();
      std::vector<Value> per_code(dict.size());
      std::vector<Value> values;
      values.reserve(n);
      for (size_t k = 0; k < n; ++k) {
        if (args[0].IsNull(k)) {
          values.push_back(Value::Null());
          continue;
        }
        const uint32_t code = col.dict_codes[(*args[0].view_sel)[k]];
        Value& cached = per_code[code];
        if (cached.is_null()) {
          cached = have_color
                       ? wrap(draw::MakeText(dict[code], size_arg, color))
                       : wrap(draw::MakeText(dict[code], size_arg));
        }
        values.push_back(cached);
      }
      ++BatchMetrics::Global().dict_simd_batches;
      *out = Vec::OwnedBoxed(std::move(values));
      PromoteIfUniform(out);
      return true;
    }
    if (have_color) {
      return build([&](size_t k) {
        return wrap(draw::MakeText(ReadString(args[0], k),
                                   ReadDouble(args[1], k), color));
      });
    }
    return build([&](size_t k) {
      return wrap(draw::MakeText(ReadString(args[0], k), ReadDouble(args[1], k)));
    });
  }
  if (name == "offset" && argc == 3) {
    // The display operand stays boxed (DrawableLists are shared pointers);
    // the win is streaming the two offsets from typed vectors.
    if (!numeric_ok(1) || !numeric_ok(2)) return false;
    return build([&](size_t k) {
      return Value::Display(draw::CombineDrawableLists(
          draw::MakeDrawableList({}), args[0].ValueAt(k).display_value(),
          ReadDouble(args[1], k), ReadDouble(args[2], k)));
    });
  }
  return false;
}

}  // namespace

Result<Vec> BatchEvaluator::Eval(const ExprNode& node, const Selection& sel) {
  switch (node.kind) {
    case ExprNode::Kind::kLiteral:
      ++stats_.vectorized_nodes;
      return Vec::Const(node.literal, sel.size());
    case ExprNode::Kind::kAttributeRef:
      return EvalAttribute(node, sel);
    case ExprNode::Kind::kUnary: {
      TIOGA2_ASSIGN_OR_RETURN(Vec v, Eval(*node.children[0], sel));
      const size_t n = sel.size();
      if (v.rep == Vec::Rep::kConst) {
        ++stats_.vectorized_nodes;
        return Vec::Const(ApplyUnaryOp(node.unary_op, v.cval), n);
      }
      std::optional<DataType> t = UniformType(v);
      if (node.unary_op == UnaryOp::kNeg && t.has_value() && IsNumericType(*t)) {
        ++stats_.vectorized_nodes;
        Vec out = MakeTypedVec(*t, n);
        for (size_t k = 0; k < n; ++k) {
          if (v.IsNull(k)) {
            out.SetNull(k);
          } else if (*t == DataType::kInt) {
            out.ints[k] = -ReadInt(v, k);
          } else {
            out.floats[k] = -ReadDouble(v, k);
          }
        }
        return out;
      }
      if (node.unary_op == UnaryOp::kNot && t == DataType::kBool) {
        ++stats_.vectorized_nodes;
        Vec out = MakeTypedVec(DataType::kBool, n);
        for (size_t k = 0; k < n; ++k) {
          if (v.IsNull(k)) {
            out.SetNull(k);
          } else {
            out.bools[k] = ReadBool(v, k) ? 0 : 1;
          }
        }
        return out;
      }
      ++stats_.fallback_nodes;
      std::vector<Value> values;
      values.reserve(n);
      for (size_t k = 0; k < n; ++k) {
        values.push_back(ApplyUnaryOp(node.unary_op, v.ValueAt(k)));
      }
      Vec out = Vec::OwnedBoxed(std::move(values));
      PromoteIfUniform(&out);
      return out;
    }
    case ExprNode::Kind::kBinary:
      if (node.binary_op == BinaryOp::kAnd || node.binary_op == BinaryOp::kOr) {
        return EvalAndOr(node, sel);
      }
      return EvalBinary(node, sel);
    case ExprNode::Kind::kCall:
      return EvalCall(node, sel);
  }
  return Status::Internal("unhandled node kind in BatchEvaluator");
}

Result<Vec> BatchEvaluator::EvalAttribute(const ExprNode& node, const Selection& sel) {
  if (node.stored_index.has_value()) {
    const db::ColumnVector* column = source_.StoredColumn(*node.stored_index);
    if (column != nullptr) {
      ++stats_.vectorized_nodes;
      Vec out;
      out.rep = Vec::Rep::kView;
      out.type = column->type;
      out.size = sel.size();
      out.view = column;
      out.view_sel = &sel;
      return out;
    }
    ++stats_.fallback_nodes;
    std::vector<Value> values;
    values.reserve(sel.size());
    for (uint32_t row : sel) {
      TIOGA2_ASSIGN_OR_RETURN(Value v, source_.StoredAt(*node.stored_index, row));
      values.push_back(std::move(v));
    }
    Vec out = Vec::OwnedBoxed(std::move(values));
    PromoteIfUniform(&out);
    return out;
  }
  // Computed attribute with a batchable definition: recurse into the
  // defining expression as a vector instead of boxing one Value per row.
  // The in-flight stack guards self-referential definitions — those take
  // the per-row path below, which reports the recursion error.
  const ExprNode* def = source_.NamedExpr(node.name);
  if (def != nullptr &&
      std::find(named_in_flight_.begin(), named_in_flight_.end(), node.name) ==
          named_in_flight_.end()) {
    named_in_flight_.push_back(node.name);
    Result<Vec> expanded = Eval(*def, sel);
    named_in_flight_.pop_back();
    if (expanded.ok()) {
      ++stats_.vectorized_nodes;
      return expanded;
    }
    // On error fall through: the per-row path reproduces the scalar
    // evaluator's message (success/failure always agrees, see class doc).
  }
  ++stats_.fallback_nodes;
  std::vector<Value> values;
  values.reserve(sel.size());
  for (uint32_t row : sel) {
    TIOGA2_ASSIGN_OR_RETURN(Value v, source_.NamedAt(node.name, row));
    values.push_back(std::move(v));
  }
  Vec out = Vec::OwnedBoxed(std::move(values));
  PromoteIfUniform(&out);
  return out;
}

Result<Vec> BatchEvaluator::EvalBinary(const ExprNode& node, const Selection& sel) {
  BinaryOp op = node.binary_op;
  TIOGA2_ASSIGN_OR_RETURN(Vec lhs, Eval(*node.children[0], sel));
  TIOGA2_ASSIGN_OR_RETURN(Vec rhs, Eval(*node.children[1], sel));
  const size_t n = sel.size();

  // A null constant operand makes every comparison and arithmetic result
  // null (the scalar evaluator's null propagation).
  if ((lhs.rep == Vec::Rep::kConst && lhs.cval.is_null()) ||
      (rhs.rep == Vec::Rep::kConst && rhs.cval.is_null())) {
    ++stats_.vectorized_nodes;
    return Vec::Const(Value::Null(), n);
  }

  std::optional<DataType> lt = UniformType(lhs);
  std::optional<DataType> rt = UniformType(rhs);
  const bool both_numeric = lt.has_value() && rt.has_value() &&
                            IsNumericType(*lt) && IsNumericType(*rt);

  const bool is_comparison =
      op == BinaryOp::kEq || op == BinaryOp::kNe || op == BinaryOp::kLt ||
      op == BinaryOp::kLe || op == BinaryOp::kGt || op == BinaryOp::kGe;

  // SIMD fast path: dense numeric comparisons and + - * / run as explicit
  // lane kernels (expr/simd/), bit-identical to the typed loops below.
  // Boxed operands and kMod fall through unchanged; sparse selections are
  // gathered dense first when selective enough (ExecPolicy's
  // sparse_gather_density), otherwise they fall through too.
  if (simd_level_ != static_cast<int>(simd::Level::kScalar) && both_numeric &&
      op != BinaryOp::kMod) {
    if (sparse_gather_density_ > 0) {
      MaybeGatherSparse(&lhs, n, sparse_gather_density_);
      MaybeGatherSparse(&rhs, n, sparse_gather_density_);
    }
    Vec out;
    if (simd::TryNumericBinary(static_cast<simd::Level>(simd_level_), op, lhs,
                               rhs, n, &out)) {
      ++stats_.vectorized_nodes;
      ++stats_.simd_nodes;
      BatchMetrics& m = BatchMetrics::Global();
      if (simd_level_ == static_cast<int>(simd::Level::kAVX2)) {
        ++m.simd_batches_avx2;
      } else {
        ++m.simd_batches_sse2;
      }
      m.simd_rows += n;
      return out;
    }
    ++BatchMetrics::Global().simd_scalar_fallbacks;
  }

  // Dictionary lowering: `string_column <cmp> constant` over an encoded
  // column becomes an integer comparison on dictionary codes — the constant
  // resolves to a code-space threshold once, then the batch runs on the lane
  // kernels (sparse selections included: codes gather dense for free). The
  // bool bits are identical to the string loop's because code order equals
  // string order.
  if (is_comparison) {
    const Vec* col_side = nullptr;
    const Vec* const_side = nullptr;
    bool flipped = false;
    if (DictCompareOperand(lhs) && rhs.rep == Vec::Rep::kConst &&
        rhs.cval.type() == DataType::kString) {
      col_side = &lhs;
      const_side = &rhs;
    } else if (DictCompareOperand(rhs) && lhs.rep == Vec::Rep::kConst &&
               lhs.cval.type() == DataType::kString) {
      col_side = &rhs;
      const_side = &lhs;
      flipped = true;
    }
    if (col_side != nullptr) {
      BinaryOp code_op = BinaryOp::kEq;
      int64_t code_const = 0;
      LowerDictCompare(*col_side->view->dict_values,
                       flipped ? FlipComparison(op) : op,
                       const_side->cval.string_value(), &code_op, &code_const);
      Vec codes = GatherCodes(*col_side);
      ++stats_.vectorized_nodes;
      ++BatchMetrics::Global().dict_simd_batches;
      if (simd_level_ != static_cast<int>(simd::Level::kScalar)) {
        Vec threshold = Vec::Const(Value::Int(code_const), n);
        Vec out;
        if (simd::TryNumericBinary(static_cast<simd::Level>(simd_level_),
                                   code_op, codes, threshold, n, &out)) {
          ++stats_.simd_nodes;
          BatchMetrics& m = BatchMetrics::Global();
          if (simd_level_ == static_cast<int>(simd::Level::kAVX2)) {
            ++m.simd_batches_avx2;
          } else {
            ++m.simd_batches_sse2;
          }
          m.simd_rows += n;
          return out;
        }
      }
      // Scalar tail: the same integer comparison element-wise (codes are
      // exact in double, so this matches the lane kernels bit for bit).
      Vec out = MakeTypedVec(DataType::kBool, n);
      for (size_t k = 0; k < n; ++k) {
        if (codes.IsNull(k)) {
          out.SetNull(k);
          continue;
        }
        const int64_t c = codes.ints[k];
        bool result = false;
        switch (code_op) {
          case BinaryOp::kEq: result = c == code_const; break;
          case BinaryOp::kNe: result = c != code_const; break;
          case BinaryOp::kLt: result = c < code_const; break;
          default: result = c >= code_const; break;  // kGe
        }
        out.bools[k] = result ? 1 : 0;
      }
      return out;
    }
    // Same comparable class on both sides → typed loop; results mirror
    // Value::Equals/Compare exactly (all numeric pairs compare as double,
    // including int with int).
    enum class Cmp { kNumeric, kString, kDate, kBool, kNone };
    Cmp mode = Cmp::kNone;
    if (both_numeric) {
      mode = Cmp::kNumeric;
    } else if (lt == DataType::kString && rt == DataType::kString) {
      mode = Cmp::kString;
    } else if (lt == DataType::kDate && rt == DataType::kDate) {
      mode = Cmp::kDate;
    } else if (lt == DataType::kBool && rt == DataType::kBool) {
      mode = Cmp::kBool;
    }
    if (mode != Cmp::kNone) {
      ++stats_.vectorized_nodes;
      Vec out = MakeTypedVec(DataType::kBool, n);
      for (size_t k = 0; k < n; ++k) {
        if (lhs.IsNull(k) || rhs.IsNull(k)) {
          out.SetNull(k);
          continue;
        }
        if (mode == Cmp::kNumeric) {
          // Orderings mirror Value::Compare's `a < b ? -1 : (a > b ? 1 : 0)`
          // construction (a NaN operand makes <= and >= true, < and > false);
          // equality mirrors Value::Equals's IEEE `a == b` (NaN equals
          // nothing) — the two disagree on NaN, so eq/ne must not go through
          // the cmp integer.
          const double a = ReadDouble(lhs, k);
          const double b = ReadDouble(rhs, k);
          bool result = false;
          switch (op) {
            case BinaryOp::kEq: result = a == b; break;
            case BinaryOp::kNe: result = !(a == b); break;
            case BinaryOp::kLt: result = a < b; break;
            case BinaryOp::kLe: result = !(a > b); break;
            case BinaryOp::kGt: result = a > b; break;
            default: result = !(a < b); break;
          }
          out.bools[k] = result ? 1 : 0;
          continue;
        }
        int cmp = 0;
        switch (mode) {
          case Cmp::kNumeric:
            break;  // handled above
          case Cmp::kString: {
            int c = ReadString(lhs, k).compare(ReadString(rhs, k));
            cmp = c < 0 ? -1 : (c > 0 ? 1 : 0);
            break;
          }
          case Cmp::kDate: {
            int64_t a = ReadDateDays(lhs, k);
            int64_t b = ReadDateDays(rhs, k);
            cmp = a < b ? -1 : (a > b ? 1 : 0);
            break;
          }
          case Cmp::kBool: {
            int a = ReadBool(lhs, k) ? 1 : 0;
            int b = ReadBool(rhs, k) ? 1 : 0;
            cmp = a - b;
            break;
          }
          case Cmp::kNone:
            break;
        }
        bool result = false;
        switch (op) {
          case BinaryOp::kEq: result = cmp == 0; break;
          case BinaryOp::kNe: result = cmp != 0; break;
          case BinaryOp::kLt: result = cmp < 0; break;
          case BinaryOp::kLe: result = cmp <= 0; break;
          case BinaryOp::kGt: result = cmp > 0; break;
          default: result = cmp >= 0; break;
        }
        out.bools[k] = result ? 1 : 0;
      }
      return out;
    }
  } else if (both_numeric) {
    // Arithmetic over numeric vecs. The int/float decision comes from the
    // vecs' *runtime* types (not the analyzer), so an `if` that returned
    // Int where Float was declared still yields the same Value kinds as the
    // scalar evaluator.
    const bool both_int = *lt == DataType::kInt && *rt == DataType::kInt;
    if (op == BinaryOp::kAdd || op == BinaryOp::kSub || op == BinaryOp::kMul) {
      ++stats_.vectorized_nodes;
      Vec out = MakeTypedVec(both_int ? DataType::kInt : DataType::kFloat, n);
      for (size_t k = 0; k < n; ++k) {
        if (lhs.IsNull(k) || rhs.IsNull(k)) {
          out.SetNull(k);
          continue;
        }
        if (both_int) {
          int64_t a = ReadInt(lhs, k);
          int64_t b = ReadInt(rhs, k);
          out.ints[k] = op == BinaryOp::kAdd   ? a + b
                        : op == BinaryOp::kSub ? a - b
                                               : a * b;
        } else {
          double a = ReadDouble(lhs, k);
          double b = ReadDouble(rhs, k);
          out.floats[k] = op == BinaryOp::kAdd   ? a + b
                          : op == BinaryOp::kSub ? a - b
                                                 : a * b;
        }
      }
      return out;
    }
    if (op == BinaryOp::kDiv) {
      ++stats_.vectorized_nodes;
      Vec out = MakeTypedVec(DataType::kFloat, n);
      for (size_t k = 0; k < n; ++k) {
        if (lhs.IsNull(k) || rhs.IsNull(k)) {
          out.SetNull(k);
          continue;
        }
        double b = ReadDouble(rhs, k);
        if (b == 0) {
          out.SetNull(k);
        } else {
          out.floats[k] = ReadDouble(lhs, k) / b;
        }
      }
      return out;
    }
    if (op == BinaryOp::kMod && both_int) {
      ++stats_.vectorized_nodes;
      Vec out = MakeTypedVec(DataType::kInt, n);
      for (size_t k = 0; k < n; ++k) {
        if (lhs.IsNull(k) || rhs.IsNull(k)) {
          out.SetNull(k);
          continue;
        }
        int64_t b = ReadInt(rhs, k);
        if (b == 0) {
          out.SetNull(k);
        } else {
          out.ints[k] = ReadInt(lhs, k) % b;
        }
      }
      return out;
    }
  }

  // Uncovered operand combination (strings +, dates, display, mixed boxed):
  // element-wise through the shared scalar kernel.
  ++stats_.fallback_nodes;
  std::vector<Value> values;
  values.reserve(n);
  for (size_t k = 0; k < n; ++k) {
    TIOGA2_ASSIGN_OR_RETURN(Value v, ApplyBinaryOp(op, lhs.ValueAt(k), rhs.ValueAt(k)));
    values.push_back(std::move(v));
  }
  Vec out = Vec::OwnedBoxed(std::move(values));
  PromoteIfUniform(&out);
  return out;
}

Result<Vec> BatchEvaluator::EvalAndOr(const ExprNode& node, const Selection& sel) {
  const BinaryOp op = node.binary_op;
  const bool is_and = op == BinaryOp::kAnd;
  TIOGA2_ASSIGN_OR_RETURN(Vec lhs, Eval(*node.children[0], sel));
  const size_t n = sel.size();

  // Rows where the left operand decides short-circuit past the right one,
  // so the right operand is evaluated only where the scalar evaluator would
  // evaluate it (same error surface, same cost profile).
  auto decisive = [&](size_t k) {
    if (lhs.IsNull(k)) return false;
    bool l = ReadBool(lhs, k);
    return is_and ? !l : l;
  };
  Selection need;
  for (size_t k = 0; k < n; ++k) {
    if (!decisive(k)) need.push_back(sel[k]);
  }

  ++stats_.vectorized_nodes;
  Vec out = MakeTypedVec(DataType::kBool, n);
  if (need.empty()) {
    for (size_t k = 0; k < n; ++k) out.bools[k] = is_and ? 0 : 1;
    return out;
  }
  TIOGA2_ASSIGN_OR_RETURN(Vec rhs, Eval(*node.children[1], need));
  // When no row was decisive the right operand is aligned with the left
  // (need == sel), and the whole three-valued merge can run as a SIMD
  // kernel. Any decisive row keeps the scalar merge below, preserving the
  // short-circuit contract row for row.
  if (simd_level_ != static_cast<int>(simd::Level::kScalar) &&
      need.size() == n) {
    if (simd::TryAndOrMerge(static_cast<simd::Level>(simd_level_), is_and, lhs,
                            rhs, n, &out)) {
      ++stats_.simd_nodes;
      BatchMetrics& m = BatchMetrics::Global();
      if (simd_level_ == static_cast<int>(simd::Level::kAVX2)) {
        ++m.simd_batches_avx2;
      } else {
        ++m.simd_batches_sse2;
      }
      m.simd_rows += n;
      return out;
    }
    ++BatchMetrics::Global().simd_scalar_fallbacks;
  }
  size_t ri = 0;
  for (size_t k = 0; k < n; ++k) {
    if (decisive(k)) {
      out.bools[k] = is_and ? 0 : 1;
      continue;
    }
    const bool lnull = lhs.IsNull(k);
    const bool rnull = rhs.IsNull(ri);
    const bool r = rnull ? false : ReadBool(rhs, ri);
    ++ri;
    if (is_and) {
      // Non-decisive lhs is null or true.
      if (!rnull && !r) {
        out.bools[k] = 0;
      } else if (lnull || rnull) {
        out.SetNull(k);
      } else {
        out.bools[k] = 1;
      }
    } else {
      // Non-decisive lhs is null or false.
      if (!rnull && r) {
        out.bools[k] = 1;
      } else if (lnull || rnull) {
        out.SetNull(k);
      } else {
        out.bools[k] = 0;
      }
    }
  }
  return out;
}

Result<Vec> BatchEvaluator::EvalCall(const ExprNode& node, const Selection& sel) {
  const size_t n = sel.size();
  if (node.name == "if") {
    TIOGA2_ASSIGN_OR_RETURN(Vec cond, Eval(*node.children[0], sel));
    Selection then_sel, else_sel;
    for (size_t k = 0; k < n; ++k) {
      if (cond.IsNull(k)) continue;
      (ReadBool(cond, k) ? then_sel : else_sel).push_back(sel[k]);
    }
    Vec then_vec, else_vec;
    if (!then_sel.empty()) {
      TIOGA2_ASSIGN_OR_RETURN(then_vec, Eval(*node.children[1], then_sel));
    }
    if (!else_sel.empty()) {
      TIOGA2_ASSIGN_OR_RETURN(else_vec, Eval(*node.children[2], else_sel));
    }
    ++stats_.vectorized_nodes;
    std::vector<Value> values;
    values.reserve(n);
    size_t ti = 0, ei = 0;
    for (size_t k = 0; k < n; ++k) {
      if (cond.IsNull(k)) {
        values.push_back(Value::Null());
      } else if (ReadBool(cond, k)) {
        values.push_back(then_vec.ValueAt(ti++));
      } else {
        values.push_back(else_vec.ValueAt(ei++));
      }
    }
    Vec out = Vec::OwnedBoxed(std::move(values));
    PromoteIfUniform(&out);
    return out;
  }
  if (node.name == "coalesce") {
    TIOGA2_ASSIGN_OR_RETURN(Vec first, Eval(*node.children[0], sel));
    Selection null_sel;
    for (size_t k = 0; k < n; ++k) {
      if (first.IsNull(k)) null_sel.push_back(sel[k]);
    }
    ++stats_.vectorized_nodes;
    if (null_sel.empty()) return first;
    TIOGA2_ASSIGN_OR_RETURN(Vec second, Eval(*node.children[1], null_sel));
    std::vector<Value> values;
    values.reserve(n);
    size_t si = 0;
    for (size_t k = 0; k < n; ++k) {
      if (first.IsNull(k)) {
        values.push_back(second.ValueAt(si++));
      } else {
        values.push_back(first.ValueAt(k));
      }
    }
    Vec out = Vec::OwnedBoxed(std::move(values));
    PromoteIfUniform(&out);
    return out;
  }

  const BuiltinOverload* overload = node.overload;
  if (overload == nullptr) {
    return Status::Internal("call to '" + node.name + "' was not analyzed");
  }
  std::vector<Vec> args;
  args.reserve(node.children.size());
  for (const ExprNodePtr& child : node.children) {
    TIOGA2_ASSIGN_OR_RETURN(Vec v, Eval(*child, sel));
    args.push_back(std::move(v));
  }
  {
    Vec display_out;
    if (TryEvalDisplayBuiltin(node, args, n, &display_out)) {
      ++stats_.vectorized_nodes;
      return display_out;
    }
  }
  // Builtins run element-wise on the vectorized operands.
  ++stats_.fallback_nodes;
  std::vector<Value> values;
  values.reserve(n);
  std::vector<Value> row_args(args.size());
  for (size_t k = 0; k < n; ++k) {
    bool null_arg = false;
    for (size_t a = 0; a < args.size(); ++a) {
      row_args[a] = args[a].ValueAt(k);
      if (row_args[a].is_null()) null_arg = true;
    }
    if (null_arg && !overload->null_opaque) {
      values.push_back(Value::Null());
      continue;
    }
    TIOGA2_ASSIGN_OR_RETURN(Value v, overload->eval(row_args));
    values.push_back(std::move(v));
  }
  Vec out = Vec::OwnedBoxed(std::move(values));
  PromoteIfUniform(&out);
  return out;
}

Result<Selection> BatchEvaluator::FilterTrue(const ExprNode& pred, const Selection& sel) {
  if (pred.kind == ExprNode::Kind::kBinary && pred.binary_op == BinaryOp::kAnd) {
    // Conjunct narrowing: rows rejected by the left conjunct never see the
    // right one. (A row where the left conjunct is null is also dropped:
    // null AND x is never true.)
    TIOGA2_ASSIGN_OR_RETURN(Selection left, FilterTrue(*pred.children[0], sel));
    if (left.empty()) return left;
    return FilterTrue(*pred.children[1], left);
  }
  if (pred.kind == ExprNode::Kind::kBinary && pred.binary_op == BinaryOp::kOr) {
    TIOGA2_ASSIGN_OR_RETURN(Selection left_true, FilterTrue(*pred.children[0], sel));
    Selection rest;
    rest.reserve(sel.size() - left_true.size());
    std::set_difference(sel.begin(), sel.end(), left_true.begin(), left_true.end(),
                        std::back_inserter(rest));
    TIOGA2_ASSIGN_OR_RETURN(Selection right_true, FilterTrue(*pred.children[1], rest));
    Selection out;
    out.reserve(left_true.size() + right_true.size());
    std::merge(left_true.begin(), left_true.end(), right_true.begin(),
               right_true.end(), std::back_inserter(out));
    return out;
  }
  TIOGA2_ASSIGN_OR_RETURN(Vec v, Eval(pred, sel));
  Selection out;
  for (size_t k = 0; k < sel.size(); ++k) {
    if (!v.IsNull(k) && ReadBool(v, k)) out.push_back(sel[k]);
  }
  return out;
}

}  // namespace tioga2::expr
