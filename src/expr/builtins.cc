#include "expr/builtins.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <memory>

#include "common/str_util.h"
#include "draw/drawable.h"

namespace tioga2::expr {

using types::DataType;
using types::Value;

bool ParamMatches(ParamType param, DataType type) {
  switch (param) {
    case ParamType::kBool: return type == DataType::kBool;
    case ParamType::kInt: return type == DataType::kInt;
    case ParamType::kFloat: return type == DataType::kFloat || type == DataType::kInt;
    case ParamType::kString: return type == DataType::kString;
    case ParamType::kDate: return type == DataType::kDate;
    case ParamType::kDisplay: return type == DataType::kDisplay;
    case ParamType::kNumeric: return type == DataType::kInt || type == DataType::kFloat;
    case ParamType::kAny: return true;
  }
  return false;
}

namespace {

using Args = std::vector<Value>;

double D(const Value& v) { return v.AsDouble(); }

Result<draw::Color> ParseColorArg(const Value& v) {
  draw::Color color;
  if (!draw::ColorFromHex(v.string_value(), &color)) {
    return Status::InvalidArgument("bad color '" + v.string_value() +
                                   "' (want \"#rrggbb\")");
  }
  return color;
}

Value FloatOrNull(double v) {
  if (std::isnan(v) || std::isinf(v)) return Value::Null();
  return Value::Float(v);
}

/// Registry storage. Built once on first use; never destroyed (static
/// storage must be trivially destructible per style, so we leak one map).
class Registry {
 public:
  static Registry& Get() {
    static Registry& instance = *new Registry();
    return instance;
  }

  void Add(BuiltinOverload overload) {
    auto stored = std::make_unique<BuiltinOverload>(std::move(overload));
    by_name_[stored->name].push_back(stored.get());
    owned_.push_back(std::move(stored));
  }

  const std::vector<const BuiltinOverload*>& Lookup(const std::string& name) const {
    static const std::vector<const BuiltinOverload*>& empty =
        *new std::vector<const BuiltinOverload*>();
    auto it = by_name_.find(name);
    return it == by_name_.end() ? empty : it->second;
  }

  std::vector<std::string> Names() const {
    std::vector<std::string> names;
    names.reserve(by_name_.size());
    for (const auto& [name, overloads] : by_name_) names.push_back(name);
    return names;
  }

 private:
  Registry() { RegisterAll(); }
  void RegisterAll();

  std::map<std::string, std::vector<const BuiltinOverload*>> by_name_;
  std::vector<std::unique_ptr<BuiltinOverload>> owned_;
};

void Registry::RegisterAll() {
  auto add = [this](std::string name, std::vector<ParamType> params, DataType result,
                    std::function<Result<Value>(const Args&)> eval) {
    BuiltinOverload o;
    o.name = std::move(name);
    o.params = std::move(params);
    o.result_type = result;
    o.eval = std::move(eval);
    Add(std::move(o));
  };
  auto add_promote = [this](std::string name, std::vector<ParamType> params,
                            std::function<Result<Value>(const Args&)> eval) {
    BuiltinOverload o;
    o.name = std::move(name);
    o.params = std::move(params);
    o.result_rule = ResultRule::kNumericPromote;
    o.eval = std::move(eval);
    Add(std::move(o));
  };

  // ---- Math ----
  add_promote("abs", {ParamType::kNumeric}, [](const Args& a) -> Result<Value> {
    if (a[0].is_int()) return Value::Int(std::llabs(a[0].int_value()));
    return Value::Float(std::fabs(a[0].float_value()));
  });
  add_promote("min", {ParamType::kNumeric, ParamType::kNumeric},
              [](const Args& a) -> Result<Value> {
                if (a[0].is_int() && a[1].is_int()) {
                  return Value::Int(std::min(a[0].int_value(), a[1].int_value()));
                }
                return Value::Float(std::min(D(a[0]), D(a[1])));
              });
  add_promote("max", {ParamType::kNumeric, ParamType::kNumeric},
              [](const Args& a) -> Result<Value> {
                if (a[0].is_int() && a[1].is_int()) {
                  return Value::Int(std::max(a[0].int_value(), a[1].int_value()));
                }
                return Value::Float(std::max(D(a[0]), D(a[1])));
              });
  add("floor", {ParamType::kNumeric}, DataType::kInt, [](const Args& a) -> Result<Value> {
    return Value::Int(static_cast<int64_t>(std::floor(D(a[0]))));
  });
  add("ceil", {ParamType::kNumeric}, DataType::kInt, [](const Args& a) -> Result<Value> {
    return Value::Int(static_cast<int64_t>(std::ceil(D(a[0]))));
  });
  add("round", {ParamType::kNumeric}, DataType::kInt, [](const Args& a) -> Result<Value> {
    return Value::Int(static_cast<int64_t>(std::llround(D(a[0]))));
  });
  add("sqrt", {ParamType::kNumeric}, DataType::kFloat, [](const Args& a) -> Result<Value> {
    double x = D(a[0]);
    if (x < 0) return Value::Null();
    return Value::Float(std::sqrt(x));
  });
  add("pow", {ParamType::kNumeric, ParamType::kNumeric}, DataType::kFloat,
      [](const Args& a) -> Result<Value> { return FloatOrNull(std::pow(D(a[0]), D(a[1]))); });
  add("exp", {ParamType::kNumeric}, DataType::kFloat,
      [](const Args& a) -> Result<Value> { return FloatOrNull(std::exp(D(a[0]))); });
  add("ln", {ParamType::kNumeric}, DataType::kFloat, [](const Args& a) -> Result<Value> {
    double x = D(a[0]);
    if (x <= 0) return Value::Null();
    return Value::Float(std::log(x));
  });
  add("log10", {ParamType::kNumeric}, DataType::kFloat, [](const Args& a) -> Result<Value> {
    double x = D(a[0]);
    if (x <= 0) return Value::Null();
    return Value::Float(std::log10(x));
  });
  add("sin", {ParamType::kNumeric}, DataType::kFloat,
      [](const Args& a) -> Result<Value> { return Value::Float(std::sin(D(a[0]))); });
  add("cos", {ParamType::kNumeric}, DataType::kFloat,
      [](const Args& a) -> Result<Value> { return Value::Float(std::cos(D(a[0]))); });
  add("atan2", {ParamType::kNumeric, ParamType::kNumeric}, DataType::kFloat,
      [](const Args& a) -> Result<Value> {
        return Value::Float(std::atan2(D(a[0]), D(a[1])));
      });
  add("clamp", {ParamType::kNumeric, ParamType::kNumeric, ParamType::kNumeric},
      DataType::kFloat, [](const Args& a) -> Result<Value> {
        double lo = D(a[1]);
        double hi = D(a[2]);
        if (lo > hi) std::swap(lo, hi);
        return Value::Float(std::clamp(D(a[0]), lo, hi));
      });
  add("sign", {ParamType::kNumeric}, DataType::kInt, [](const Args& a) -> Result<Value> {
    double v = D(a[0]);
    return Value::Int(v > 0 ? 1 : (v < 0 ? -1 : 0));
  });
  add("trunc", {ParamType::kNumeric}, DataType::kInt,
      [](const Args& a) -> Result<Value> {
        return Value::Int(static_cast<int64_t>(std::trunc(D(a[0]))));
      });

  // ---- Conversions ----
  add("int", {ParamType::kNumeric}, DataType::kInt, [](const Args& a) -> Result<Value> {
    if (a[0].is_int()) return a[0];
    return Value::Int(static_cast<int64_t>(a[0].float_value()));
  });
  add("int", {ParamType::kString}, DataType::kInt, [](const Args& a) -> Result<Value> {
    TIOGA2_ASSIGN_OR_RETURN(Value v, Value::Parse(DataType::kInt, a[0].string_value()));
    return v;
  });
  add("float", {ParamType::kNumeric}, DataType::kFloat,
      [](const Args& a) -> Result<Value> { return Value::Float(D(a[0])); });
  add("float", {ParamType::kString}, DataType::kFloat, [](const Args& a) -> Result<Value> {
    TIOGA2_ASSIGN_OR_RETURN(Value v, Value::Parse(DataType::kFloat, a[0].string_value()));
    return v;
  });
  add("str", {ParamType::kAny}, DataType::kString, [](const Args& a) -> Result<Value> {
    if (a[0].is_string()) return a[0];  // unquoted
    return Value::String(a[0].ToString());
  });

  // ---- Strings ----
  add("len", {ParamType::kString}, DataType::kInt, [](const Args& a) -> Result<Value> {
    return Value::Int(static_cast<int64_t>(a[0].string_value().size()));
  });
  add("substr", {ParamType::kString, ParamType::kInt, ParamType::kInt}, DataType::kString,
      [](const Args& a) -> Result<Value> {
        const std::string& s = a[0].string_value();
        int64_t start = std::clamp<int64_t>(a[1].int_value(), 0,
                                            static_cast<int64_t>(s.size()));
        int64_t count = std::max<int64_t>(a[2].int_value(), 0);
        return Value::String(s.substr(static_cast<size_t>(start),
                                      static_cast<size_t>(count)));
      });
  add("upper", {ParamType::kString}, DataType::kString, [](const Args& a) -> Result<Value> {
    std::string s = a[0].string_value();
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    return Value::String(std::move(s));
  });
  add("lower", {ParamType::kString}, DataType::kString, [](const Args& a) -> Result<Value> {
    return Value::String(AsciiToLower(a[0].string_value()));
  });
  add("contains", {ParamType::kString, ParamType::kString}, DataType::kBool,
      [](const Args& a) -> Result<Value> {
        return Value::Bool(a[0].string_value().find(a[1].string_value()) !=
                           std::string::npos);
      });
  add("startswith", {ParamType::kString, ParamType::kString}, DataType::kBool,
      [](const Args& a) -> Result<Value> {
        return Value::Bool(StartsWith(a[0].string_value(), a[1].string_value()));
      });
  add("like", {ParamType::kString, ParamType::kString}, DataType::kBool,
      [](const Args& a) -> Result<Value> {
        // Glob match: '*' any run, '?' any single character.
        const std::string& text = a[0].string_value();
        const std::string& pattern = a[1].string_value();
        std::function<bool(size_t, size_t)> match = [&](size_t ti, size_t pi) {
          while (pi < pattern.size()) {
            if (pattern[pi] == '*') {
              for (size_t skip = ti; skip <= text.size(); ++skip) {
                if (match(skip, pi + 1)) return true;
              }
              return false;
            }
            if (ti >= text.size()) return false;
            if (pattern[pi] != '?' && pattern[pi] != text[ti]) return false;
            ++ti;
            ++pi;
          }
          return ti == text.size();
        };
        return Value::Bool(match(0, 0));
      });

  // ---- Dates ----
  add("date", {ParamType::kString}, DataType::kDate, [](const Args& a) -> Result<Value> {
    types::Date date;
    if (!types::Date::Parse(a[0].string_value(), &date)) {
      return Status::ParseError("not a date: '" + a[0].string_value() + "'");
    }
    return Value::DateVal(date);
  });
  add("year", {ParamType::kDate}, DataType::kInt, [](const Args& a) -> Result<Value> {
    return Value::Int(a[0].date_value().Year());
  });
  add("month", {ParamType::kDate}, DataType::kInt, [](const Args& a) -> Result<Value> {
    return Value::Int(a[0].date_value().Month());
  });
  add("day", {ParamType::kDate}, DataType::kInt, [](const Args& a) -> Result<Value> {
    return Value::Int(a[0].date_value().Day());
  });
  add("days", {ParamType::kDate}, DataType::kInt, [](const Args& a) -> Result<Value> {
    return Value::Int(a[0].date_value().DaysValue());
  });
  add("date_from_days", {ParamType::kInt}, DataType::kDate,
      [](const Args& a) -> Result<Value> {
        return Value::DateVal(types::Date(a[0].int_value()));
      });

  // ---- Null handling (null-opaque) ----
  {
    BuiltinOverload o;
    o.name = "isnull";
    o.params = {ParamType::kAny};
    o.result_type = DataType::kBool;
    o.null_opaque = true;
    o.eval = [](const Args& a) -> Result<Value> { return Value::Bool(a[0].is_null()); };
    Add(std::move(o));
  }

  // ---- Colors ----
  add("rgb", {ParamType::kInt, ParamType::kInt, ParamType::kInt}, DataType::kString,
      [](const Args& a) -> Result<Value> {
        auto channel = [](int64_t v) {
          return static_cast<uint8_t>(std::clamp<int64_t>(v, 0, 255));
        };
        return Value::String(draw::ColorToHex(draw::Color{
            channel(a[0].int_value()), channel(a[1].int_value()),
            channel(a[2].int_value())}));
      });
  add("lerp_color", {ParamType::kString, ParamType::kString, ParamType::kNumeric},
      DataType::kString, [](const Args& a) -> Result<Value> {
        TIOGA2_ASSIGN_OR_RETURN(draw::Color c1, ParseColorArg(a[0]));
        TIOGA2_ASSIGN_OR_RETURN(draw::Color c2, ParseColorArg(a[1]));
        return Value::String(draw::ColorToHex(draw::LerpColor(c1, c2, D(a[2]))));
      });

  // ---- Drawable constructors (§5.1) ----
  auto wrap = [](draw::Drawable d) {
    return Value::Display(draw::MakeDrawableList({std::move(d)}));
  };
  add("point", {}, DataType::kDisplay,
      [wrap](const Args&) -> Result<Value> { return wrap(draw::MakePoint()); });
  add("point", {ParamType::kString}, DataType::kDisplay,
      [wrap](const Args& a) -> Result<Value> {
        TIOGA2_ASSIGN_OR_RETURN(draw::Color color, ParseColorArg(a[0]));
        return wrap(draw::MakePoint(color));
      });
  add("circle", {ParamType::kNumeric}, DataType::kDisplay,
      [wrap](const Args& a) -> Result<Value> { return wrap(draw::MakeCircle(D(a[0]))); });
  add("circle", {ParamType::kNumeric, ParamType::kString}, DataType::kDisplay,
      [wrap](const Args& a) -> Result<Value> {
        TIOGA2_ASSIGN_OR_RETURN(draw::Color color, ParseColorArg(a[1]));
        return wrap(draw::MakeCircle(D(a[0]), color));
      });
  add("circle", {ParamType::kNumeric, ParamType::kString, ParamType::kBool},
      DataType::kDisplay, [wrap](const Args& a) -> Result<Value> {
        TIOGA2_ASSIGN_OR_RETURN(draw::Color color, ParseColorArg(a[1]));
        return wrap(draw::MakeCircle(D(a[0]), color,
                                     a[2].bool_value() ? draw::FillMode::kFilled
                                                       : draw::FillMode::kOutline));
      });
  add("rect", {ParamType::kNumeric, ParamType::kNumeric}, DataType::kDisplay,
      [wrap](const Args& a) -> Result<Value> {
        return wrap(draw::MakeRectangle(D(a[0]), D(a[1])));
      });
  add("rect", {ParamType::kNumeric, ParamType::kNumeric, ParamType::kString},
      DataType::kDisplay, [wrap](const Args& a) -> Result<Value> {
        TIOGA2_ASSIGN_OR_RETURN(draw::Color color, ParseColorArg(a[2]));
        return wrap(draw::MakeRectangle(D(a[0]), D(a[1]), color));
      });
  add("rect",
      {ParamType::kNumeric, ParamType::kNumeric, ParamType::kString, ParamType::kBool},
      DataType::kDisplay, [wrap](const Args& a) -> Result<Value> {
        TIOGA2_ASSIGN_OR_RETURN(draw::Color color, ParseColorArg(a[2]));
        return wrap(draw::MakeRectangle(D(a[0]), D(a[1]), color,
                                        a[3].bool_value() ? draw::FillMode::kFilled
                                                          : draw::FillMode::kOutline));
      });
  add("line", {ParamType::kNumeric, ParamType::kNumeric}, DataType::kDisplay,
      [wrap](const Args& a) -> Result<Value> {
        return wrap(draw::MakeLine(D(a[0]), D(a[1])));
      });
  add("line", {ParamType::kNumeric, ParamType::kNumeric, ParamType::kString},
      DataType::kDisplay, [wrap](const Args& a) -> Result<Value> {
        TIOGA2_ASSIGN_OR_RETURN(draw::Color color, ParseColorArg(a[2]));
        return wrap(draw::MakeLine(D(a[0]), D(a[1]), color));
      });
  add("text", {ParamType::kString, ParamType::kNumeric}, DataType::kDisplay,
      [wrap](const Args& a) -> Result<Value> {
        return wrap(draw::MakeText(a[0].string_value(), D(a[1])));
      });
  add("text", {ParamType::kString, ParamType::kNumeric, ParamType::kString},
      DataType::kDisplay, [wrap](const Args& a) -> Result<Value> {
        TIOGA2_ASSIGN_OR_RETURN(draw::Color color, ParseColorArg(a[2]));
        return wrap(draw::MakeText(a[0].string_value(), D(a[1]), color));
      });
  add("viewer",
      {ParamType::kNumeric, ParamType::kNumeric, ParamType::kString, ParamType::kNumeric,
       ParamType::kNumeric, ParamType::kNumeric},
      DataType::kDisplay, [wrap](const Args& a) -> Result<Value> {
        draw::WormholeSpec spec;
        spec.destination_canvas = a[2].string_value();
        spec.initial_x = D(a[3]);
        spec.initial_y = D(a[4]);
        spec.elevation = D(a[5]);
        return wrap(draw::MakeViewer(D(a[0]), D(a[1]), std::move(spec)));
      });
  {
    BuiltinOverload o;
    o.name = "polygon";
    o.params = {ParamType::kNumeric, ParamType::kNumeric};
    o.variadic_tail = true;
    o.result_type = DataType::kDisplay;
    o.eval = [wrap](const Args& a) -> Result<Value> {
      if (a.size() % 2 != 0 || a.size() < 6) {
        return Status::InvalidArgument(
            "polygon() wants an even number (>= 6) of coordinates");
      }
      std::vector<draw::Point> points;
      points.reserve(a.size() / 2);
      for (size_t i = 0; i < a.size(); i += 2) {
        points.push_back(draw::Point{D(a[i]), D(a[i + 1])});
      }
      return wrap(draw::MakePolygon(std::move(points)));
    };
    Add(std::move(o));
  }
  add("offset", {ParamType::kDisplay, ParamType::kNumeric, ParamType::kNumeric},
      DataType::kDisplay, [](const Args& a) -> Result<Value> {
        return Value::Display(draw::CombineDrawableLists(
            draw::MakeDrawableList({}), a[0].display_value(), D(a[1]), D(a[2])));
      });
  add("empty_display", {}, DataType::kDisplay, [](const Args&) -> Result<Value> {
    return Value::Display(draw::MakeDrawableList({}));
  });
}

}  // namespace

const std::vector<const BuiltinOverload*>& LookupBuiltins(const std::string& name) {
  return Registry::Get().Lookup(name);
}

std::vector<std::string> AllBuiltinNames() { return Registry::Get().Names(); }

}  // namespace tioga2::expr
