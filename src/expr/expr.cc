#include "expr/expr.h"

#include "expr/optimizer.h"
#include "expr/parser.h"

namespace tioga2::expr {

Result<CompiledExpr> CompiledExpr::Compile(const std::string& source,
                                           const TypeEnv& env) {
  TIOGA2_ASSIGN_OR_RETURN(ExprNodePtr ast, ParseExpr(source));
  TIOGA2_RETURN_IF_ERROR(AnalyzeExpr(ast.get(), env));
  TIOGA2_RETURN_IF_ERROR(FoldConstants(ast.get()).status());
  return CompiledExpr(std::move(ast), source);
}

Result<CompiledExpr> CompiledExpr::FromAst(ExprNodePtr ast, const TypeEnv& env) {
  TIOGA2_RETURN_IF_ERROR(AnalyzeExpr(ast.get(), env));
  std::string source = ExprToString(*ast);  // capture before folding
  TIOGA2_RETURN_IF_ERROR(FoldConstants(ast.get()).status());
  return CompiledExpr(std::move(ast), std::move(source));
}

CompiledExpr::CompiledExpr(const CompiledExpr& other)
    : root_(CloneExpr(*other.root_)), source_(other.source_) {}

CompiledExpr& CompiledExpr::operator=(const CompiledExpr& other) {
  if (this != &other) {
    root_ = CloneExpr(*other.root_);
    source_ = other.source_;
  }
  return *this;
}

}  // namespace tioga2::expr
