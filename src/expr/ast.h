#ifndef TIOGA2_EXPR_AST_H_
#define TIOGA2_EXPR_AST_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/value.h"

namespace tioga2::expr {

struct BuiltinOverload;  // builtins.h

/// Binary operators, lowest-level IR of the expression language.
enum class BinaryOp { kAdd, kSub, kMul, kDiv, kMod, kEq, kNe, kLt, kLe, kGt, kGe, kAnd, kOr };

/// Unary operators.
enum class UnaryOp { kNeg, kNot };

/// Surface syntax of a binary operator, e.g. "+".
std::string BinaryOpToString(BinaryOp op);

/// A node in an expression tree. A single tagged struct keeps the walker
/// code small; only the fields relevant to `kind` are meaningful.
struct ExprNode {
  enum class Kind { kLiteral, kAttributeRef, kUnary, kBinary, kCall };

  Kind kind = Kind::kLiteral;

  // kLiteral
  types::Value literal;

  // kAttributeRef: attribute name; kCall: function name.
  std::string name;

  // kUnary / kBinary
  UnaryOp unary_op = UnaryOp::kNeg;
  BinaryOp binary_op = BinaryOp::kAdd;

  // Operands / call arguments.
  std::vector<std::unique_ptr<ExprNode>> children;

  size_t position = 0;  // source offset, for diagnostics

  // ---- Filled in by the analyzer ----
  types::DataType result_type = types::DataType::kBool;
  // kAttributeRef: position in the stored schema, if the attribute is stored;
  // nullopt means a computed attribute resolved by name at evaluation time.
  std::optional<size_t> stored_index;
  // kCall: the resolved builtin overload.
  const BuiltinOverload* overload = nullptr;
};

using ExprNodePtr = std::unique_ptr<ExprNode>;

/// Deep copy.
ExprNodePtr CloneExpr(const ExprNode& node);

/// Re-parseable source rendering (parenthesized conservatively).
std::string ExprToString(const ExprNode& node);

/// Names of all attributes referenced anywhere in the tree.
std::vector<std::string> CollectAttributeRefs(const ExprNode& node);

/// Rewrites every stored attribute index in the tree through `remap`
/// (used when a projection renumbers the base schema). `remap` returns the
/// new index or an error if the referenced column was dropped.
Status RemapStoredAttributeIndices(
    ExprNode* node, const std::function<Result<size_t>(size_t)>& remap);

}  // namespace tioga2::expr

#endif  // TIOGA2_EXPR_AST_H_
