#ifndef TIOGA2_EXPR_TOKEN_H_
#define TIOGA2_EXPR_TOKEN_H_

#include <cstdint>
#include <string>

namespace tioga2::expr {

/// Lexical token kinds of the Tioga-2 expression language. The language is
/// the "general query language" of §5.3 in which restriction predicates,
/// join predicates, and attribute definitions are written.
enum class TokenKind {
  kEnd,
  kIdentifier,   // column or function name
  kIntLiteral,   // 42
  kFloatLiteral, // 3.5
  kStringLiteral,// "text"
  kTrue,
  kFalse,
  kNull,
  kAnd,
  kOr,
  kNot,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kEq,      // = or ==
  kNe,      // != or <>
  kLt,
  kLe,
  kGt,
  kGe,
  kLParen,
  kRParen,
  kComma,
};

/// One token with its source position (byte offset, for error messages).
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;       // identifier name or decoded string literal
  int64_t int_value = 0;  // kIntLiteral
  double float_value = 0; // kFloatLiteral
  size_t position = 0;
};

/// Human-readable token name for diagnostics.
std::string TokenKindToString(TokenKind kind);

}  // namespace tioga2::expr

#endif  // TIOGA2_EXPR_TOKEN_H_
