#ifndef TIOGA2_EXPR_BATCH_H_
#define TIOGA2_EXPR_BATCH_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "db/columnar.h"
#include "db/exec_policy.h"
#include "expr/ast.h"

namespace tioga2::expr {

/// Row ids (into a BatchSource's row domain), always in ascending order.
/// Operators evaluate expressions over a selection and narrow it as
/// predicates eliminate rows, so no tuples are copied until a row survives
/// the whole predicate.
using Selection = std::vector<uint32_t>;

/// Fills `sel` with [begin, end).
void IdentitySelection(size_t begin, size_t end, Selection* sel);

/// The result of evaluating one expression node over a selection.
///
/// Element k always corresponds to row sel[k] of the selection the Vec was
/// evaluated under. Three representations:
///   kConst — one Value for every selected row (literals, null-propagation).
///   kView  — borrows a ColumnVector; element k is view->…[(*view_sel)[k]].
///            Zero-copy leaf for stored attribute references.
///   kOwned — typed vectors (or boxed Values) of length size(), materialized
///            by a kernel. `type` is meaningful only when boxed is empty.
///
/// Invariant: a typed kOwned/kView Vec holds exactly the runtime types the
/// scalar evaluator would have produced for those rows — kernels must never
/// widen Int results to Float (or vice versa), because downstream both_int
/// arithmetic decisions and memoized fingerprints depend on runtime types.
struct Vec {
  enum class Rep { kConst, kView, kOwned };

  Rep rep = Rep::kConst;
  types::DataType type = types::DataType::kBool;
  size_t size = 0;

  // kConst
  types::Value cval;

  // kView
  const db::ColumnVector* view = nullptr;
  const Selection* view_sel = nullptr;

  // kOwned. null_bits empty means no nulls; bit k of word k/64 set = null.
  std::vector<uint64_t> null_bits;
  std::vector<uint8_t> bools;
  std::vector<int64_t> ints;
  std::vector<double> floats;
  std::vector<std::string> strings;
  std::vector<int64_t> dates;
  // Non-empty boxed makes this a boxed Vec: per-element runtime types may
  // differ (e.g. an `if` whose branches return Int and Float).
  std::vector<types::Value> boxed;

  bool is_boxed() const { return rep == Rep::kOwned && !boxed.empty(); }
  bool IsNull(size_t k) const;
  /// Reconstructs the Value for element k, bit-identical to what the scalar
  /// evaluator returns for row sel[k].
  types::Value ValueAt(size_t k) const;

  static Vec Const(types::Value v, size_t n);
  static Vec OwnedBoxed(std::vector<types::Value> values);

  void SetNull(size_t k);
};

/// Supplies attribute columns (and per-row fallbacks) to a BatchEvaluator —
/// the batch analogue of RowAccessor. The relation layer implements it over
/// a Relation's columnar() view; the display layer adds transformed stored
/// columns and computed ("method") attributes.
class BatchSource {
 public:
  virtual ~BatchSource() = default;

  /// Rows in the underlying domain; selections index [0, num_rows()).
  virtual size_t num_rows() const = 0;

  /// Typed column for stored attribute `index`, or nullptr when no columnar
  /// form exists (the evaluator then gathers per row via StoredAt).
  virtual const db::ColumnVector* StoredColumn(size_t index) const = 0;

  /// Scalar value of stored attribute `index` at `row`.
  virtual Result<types::Value> StoredAt(size_t index, size_t row) const = 0;

  /// Scalar value of the computed attribute `name` at `row`.
  virtual Result<types::Value> NamedAt(const std::string& name, size_t row) const = 0;

  /// The defining expression of computed attribute `name`, when it is a plain
  /// expression over this same source (no per-row state, no coordinate
  /// transform) — the evaluator then recurses into it as a vector instead of
  /// calling NamedAt per row. nullptr (the default) means "no batchable
  /// definition"; correctness never depends on this hook, only fallback
  /// counts do.
  virtual const ExprNode* NamedExpr(const std::string& name) const {
    return nullptr;
  }
};

/// BatchSource over a plain relation: stored columns come straight from
/// Relation::columnar(); there are no computed attributes.
class RelationBatchSource : public BatchSource {
 public:
  /// `relation` must outlive the source.
  explicit RelationBatchSource(const db::Relation& relation) : relation_(relation) {}

  size_t num_rows() const override;
  const db::ColumnVector* StoredColumn(size_t index) const override;
  Result<types::Value> StoredAt(size_t index, size_t row) const override;
  Result<types::Value> NamedAt(const std::string& name, size_t row) const override;

 private:
  const db::Relation& relation_;
};

/// Process-wide counters for the vectorized path, surfaced through
/// runtime::Metrics::ToJson under "batch_eval". Counters are atomic so
/// concurrent box firings under the ParallelEngine can record freely;
/// Reset() zeroes them (runtime::Metrics::Reset calls it).
struct BatchMetrics {
  std::atomic<uint64_t> restrict_batches{0};
  std::atomic<uint64_t> restrict_rows{0};
  std::atomic<uint64_t> restrict_scalar_rows{0};
  std::atomic<uint64_t> sort_key_batches{0};
  std::atomic<uint64_t> sort_scalar_fallbacks{0};
  std::atomic<uint64_t> display_attr_batches{0};
  std::atomic<uint64_t> display_attr_rows{0};
  std::atomic<uint64_t> render_location_batches{0};
  std::atomic<uint64_t> render_scalar_fallbacks{0};
  std::atomic<uint64_t> join_hash_build_rows{0};
  std::atomic<uint64_t> join_hash_probe_rows{0};
  std::atomic<uint64_t> join_nested_batches{0};
  std::atomic<uint64_t> nodes_vectorized{0};
  std::atomic<uint64_t> nodes_fallback{0};
  // SIMD kernel dispatch (see expr/simd/): node-batches served by each tier,
  // rows they covered, and simd-eligible node-batches that fell back to the
  // typed loops (sparse selection, boxed operands, unsupported op).
  std::atomic<uint64_t> simd_batches_sse2{0};
  std::atomic<uint64_t> simd_batches_avx2{0};
  std::atomic<uint64_t> simd_rows{0};
  std::atomic<uint64_t> simd_scalar_fallbacks{0};
  // Dictionary-encoded string execution (db/columnar.h): string columns that
  // built a dictionary at materialization, node-batches served from
  // dictionary codes (string comparisons lowered to integer-code lanes,
  // text() distinct-code splats), string-key joins that fell back to string
  // hashing because the sides' dictionaries could not be remapped, and
  // sparse selections gathered dense before a SIMD kernel.
  std::atomic<uint64_t> dict_columns_built{0};
  std::atomic<uint64_t> dict_simd_batches{0};
  std::atomic<uint64_t> dict_remap_fallbacks{0};
  std::atomic<uint64_t> sparse_gathers{0};
  // Morsel-driven fan-out (see db/morsel.h): groups run (fan-out sites),
  // groups that actually parallelized, morsels executed, morsels claimed by
  // pool help tickets (vs the submitting thread), and rows covered by
  // parallel groups. speedup = wall-clock of the group vs its serial
  // equivalent is a bench-side division (bench_morsel_scaling), not a
  // counter.
  std::atomic<uint64_t> morsel_groups{0};
  std::atomic<uint64_t> morsel_groups_parallel{0};
  std::atomic<uint64_t> morsels_executed{0};
  std::atomic<uint64_t> morsels_stolen{0};
  std::atomic<uint64_t> morsel_parallel_rows{0};

  static BatchMetrics& Global();
  void Reset();
};

/// Evaluates a checked expression tree over column batches.
///
/// Covered node kinds run as typed loops (comparisons and arithmetic over
/// int/float columns, three-valued and/or, string equality, if/coalesce with
/// need-based branch evaluation). Anything else — builtin calls, computed
/// attributes, date/string/display operators — degrades gracefully: operands
/// are still evaluated as vectors, and the node applies the *same* scalar
/// kernels (ApplyUnaryOp / ApplyBinaryOp / the builtin's eval) element-wise
/// on boxed Values. Results are therefore bit-identical to EvalExpr in all
/// cases; see tests/batch_eval_test.cc for the property test.
///
/// Error reporting caveat: when several rows of a batch would fail, the
/// scalar evaluator reports the error of the first failing *row*, while the
/// batch evaluator reports the first failing row of the first failing
/// *operand*. Success/failure always agrees; only the message can differ.
class BatchEvaluator {
 public:
  /// `source` must outlive the evaluator; dispatch follows the process-wide
  /// default ExecPolicy.
  explicit BatchEvaluator(const BatchSource& source);

  /// `source` must outlive the evaluator. `policy.simd` picks the SIMD tier
  /// for the typed kernels (resolved once against the build and CPU; see
  /// expr/simd/simd.h). Policies never change results, only how they are
  /// computed.
  BatchEvaluator(const BatchSource& source, const db::ExecPolicy& policy);

  /// Evaluates `node` for the rows in `sel`. The result is aligned with
  /// `sel` (element k ↔ row sel[k]).
  Result<Vec> Eval(const ExprNode& node, const Selection& sel);

  /// Rows of `sel` for which `pred` is non-null true, in order. kAnd
  /// narrows the selection between conjuncts (rows failing the left conjunct
  /// never evaluate the right one — the batch analogue of short-circuiting);
  /// kOr merges the true-sets of both branches, evaluating the right branch
  /// only on rows the left did not already accept.
  Result<Selection> FilterTrue(const ExprNode& pred, const Selection& sel);

  struct Stats {
    uint64_t vectorized_nodes = 0;  // nodes executed as typed loops
    uint64_t fallback_nodes = 0;    // nodes executed element-wise on Values
    uint64_t simd_nodes = 0;        // typed-loop nodes served by SIMD kernels
  };
  const Stats& stats() const { return stats_; }

 private:
  Result<Vec> EvalBinary(const ExprNode& node, const Selection& sel);
  Result<Vec> EvalAndOr(const ExprNode& node, const Selection& sel);
  Result<Vec> EvalCall(const ExprNode& node, const Selection& sel);
  Result<Vec> EvalAttribute(const ExprNode& node, const Selection& sel);

  const BatchSource& source_;
  int simd_level_ = 0;  // resolved simd::Level, stored as int to keep
                        // expr/simd/simd.h out of this header
  double sparse_gather_density_ = 0.0;  // ExecPolicy::sparse_gather_density
  // Computed attributes currently being expanded through NamedExpr — guards
  // against self-referential definitions (those fall back to NamedAt, which
  // reports the recursion error the scalar path reports).
  std::vector<std::string> named_in_flight_;
  Stats stats_;
};

/// Batch size used by the vectorized operators: large enough to amortize
/// per-batch setup, small enough that a batch's columns stay cache-resident.
inline constexpr size_t kBatchSize = 4096;

}  // namespace tioga2::expr

#endif  // TIOGA2_EXPR_BATCH_H_
