#ifndef TIOGA2_EXPR_ANALYZER_H_
#define TIOGA2_EXPR_ANALYZER_H_

#include <functional>
#include <optional>
#include <string>

#include "common/result.h"
#include "expr/ast.h"

namespace tioga2::expr {

/// What the analyzer knows about one attribute visible to an expression.
struct AttrInfo {
  types::DataType type;
  /// Index of the attribute in the stored tuple, or nullopt for a computed
  /// attribute that the evaluator must fetch by name (the "methods defining
  /// additional attributes" of §2).
  std::optional<size_t> stored_index;
};

/// Maps attribute names to their type/location; returns nullopt for unknown
/// names. Supplied by the relation layer (stored columns) or the display
/// layer (stored columns + computed attributes).
using TypeEnv = std::function<std::optional<AttrInfo>(const std::string&)>;

/// Builds a TypeEnv over a bare schema-like column list: name i maps to
/// stored index i.
TypeEnv MakeSchemaTypeEnv(const std::vector<std::pair<std::string, types::DataType>>& columns);

/// Type-checks `node` in `env`, filling in result_type, stored_index, and
/// overload annotations. On success the tree is ready for EvalExpr.
///
/// Special forms handled here (not in the builtin registry):
///   if(cond, a, b)   — cond:bool; result unifies a and b.
///   coalesce(a, b)   — result unifies a and b.
Status AnalyzeExpr(ExprNode* node, const TypeEnv& env);

}  // namespace tioga2::expr

#endif  // TIOGA2_EXPR_ANALYZER_H_
