#include "expr/lexer.h"

#include <cctype>
#include <cstdlib>

namespace tioga2::expr {

std::string TokenKindToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd: return "end of input";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kIntLiteral: return "integer literal";
    case TokenKind::kFloatLiteral: return "float literal";
    case TokenKind::kStringLiteral: return "string literal";
    case TokenKind::kTrue: return "'true'";
    case TokenKind::kFalse: return "'false'";
    case TokenKind::kNull: return "'null'";
    case TokenKind::kAnd: return "'and'";
    case TokenKind::kOr: return "'or'";
    case TokenKind::kNot: return "'not'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kEq: return "'='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kComma: return "','";
  }
  return "?";
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& source) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = source.size();
  auto push = [&](TokenKind kind, size_t pos) {
    Token t;
    t.kind = kind;
    t.position = pos;
    tokens.push_back(std::move(t));
  };
  while (i < n) {
    char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (IsIdentStart(c)) {
      while (i < n && IsIdentChar(source[i])) ++i;
      std::string word = source.substr(start, i - start);
      Token t;
      t.position = start;
      if (word == "true") {
        t.kind = TokenKind::kTrue;
      } else if (word == "false") {
        t.kind = TokenKind::kFalse;
      } else if (word == "null") {
        t.kind = TokenKind::kNull;
      } else if (word == "and") {
        t.kind = TokenKind::kAnd;
      } else if (word == "or") {
        t.kind = TokenKind::kOr;
      } else if (word == "not") {
        t.kind = TokenKind::kNot;
      } else {
        t.kind = TokenKind::kIdentifier;
        t.text = std::move(word);
      }
      tokens.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) ++i;
      if (i < n && source[i] == '.') {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) ++i;
      }
      if (i < n && (source[i] == 'e' || source[i] == 'E')) {
        size_t exp_start = i + 1;
        size_t j = exp_start;
        if (j < n && (source[j] == '+' || source[j] == '-')) ++j;
        if (j < n && std::isdigit(static_cast<unsigned char>(source[j]))) {
          is_float = true;
          i = j;
          while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) ++i;
        }
      }
      std::string number = source.substr(start, i - start);
      Token t;
      t.position = start;
      if (is_float) {
        t.kind = TokenKind::kFloatLiteral;
        t.float_value = std::strtod(number.c_str(), nullptr);
      } else {
        errno = 0;
        char* end = nullptr;
        long long v = std::strtoll(number.c_str(), &end, 10);
        if (errno != 0) {
          return Status::ParseError("integer literal out of range at offset " +
                                    std::to_string(start));
        }
        t.kind = TokenKind::kIntLiteral;
        t.int_value = v;
      }
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '"') {
      std::string decoded;
      ++i;
      bool closed = false;
      while (i < n) {
        char d = source[i];
        if (d == '"') {
          closed = true;
          ++i;
          break;
        }
        if (d == '\\') {
          if (i + 1 >= n) break;
          char esc = source[i + 1];
          if (esc == '\\') {
            decoded += '\\';
          } else if (esc == '"') {
            decoded += '"';
          } else if (esc == 'n') {
            decoded += '\n';
          } else {
            return Status::ParseError("unknown escape '\\" + std::string(1, esc) +
                                      "' at offset " + std::to_string(i));
          }
          i += 2;
        } else {
          decoded += d;
          ++i;
        }
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      Token t;
      t.kind = TokenKind::kStringLiteral;
      t.text = std::move(decoded);
      t.position = start;
      tokens.push_back(std::move(t));
      continue;
    }
    switch (c) {
      case '+': push(TokenKind::kPlus, start); ++i; break;
      case '-': push(TokenKind::kMinus, start); ++i; break;
      case '*': push(TokenKind::kStar, start); ++i; break;
      case '/': push(TokenKind::kSlash, start); ++i; break;
      case '%': push(TokenKind::kPercent, start); ++i; break;
      case '(': push(TokenKind::kLParen, start); ++i; break;
      case ')': push(TokenKind::kRParen, start); ++i; break;
      case ',': push(TokenKind::kComma, start); ++i; break;
      case '=':
        ++i;
        if (i < n && source[i] == '=') ++i;
        push(TokenKind::kEq, start);
        break;
      case '!':
        if (i + 1 < n && source[i + 1] == '=') {
          push(TokenKind::kNe, start);
          i += 2;
        } else {
          return Status::ParseError("unexpected '!' at offset " + std::to_string(start) +
                                    " (use 'not' or '!=')");
        }
        break;
      case '<':
        ++i;
        if (i < n && source[i] == '=') {
          push(TokenKind::kLe, start);
          ++i;
        } else if (i < n && source[i] == '>') {
          push(TokenKind::kNe, start);
          ++i;
        } else {
          push(TokenKind::kLt, start);
        }
        break;
      case '>':
        ++i;
        if (i < n && source[i] == '=') {
          push(TokenKind::kGe, start);
          ++i;
        } else {
          push(TokenKind::kGt, start);
        }
        break;
      default:
        return Status::ParseError("unexpected character '" + std::string(1, c) +
                                  "' at offset " + std::to_string(start));
    }
  }
  push(TokenKind::kEnd, n);
  return tokens;
}

}  // namespace tioga2::expr
