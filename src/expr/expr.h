#ifndef TIOGA2_EXPR_EXPR_H_
#define TIOGA2_EXPR_EXPR_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "expr/analyzer.h"
#include "expr/ast.h"
#include "expr/evaluator.h"

namespace tioga2::expr {

/// A parsed, type-checked, ready-to-evaluate expression. This is the unit
/// in which restriction predicates (§4.2), join predicates, and computed
/// attribute definitions (§5) are stored inside boxes, and the unit in which
/// they are serialized into saved programs.
class CompiledExpr {
 public:
  /// Parses and analyzes `source` against `env`.
  static Result<CompiledExpr> Compile(const std::string& source, const TypeEnv& env);

  /// Analyzes an already-built AST (used by programmatic box construction).
  static Result<CompiledExpr> FromAst(ExprNodePtr ast, const TypeEnv& env);

  CompiledExpr(const CompiledExpr& other);
  CompiledExpr& operator=(const CompiledExpr& other);
  CompiledExpr(CompiledExpr&&) noexcept = default;
  CompiledExpr& operator=(CompiledExpr&&) noexcept = default;

  /// Result type established by the analyzer.
  types::DataType result_type() const { return root_->result_type; }

  /// Evaluates for one row.
  Result<types::Value> Eval(const RowAccessor& row) const {
    return EvalExpr(*root_, row);
  }

  /// Re-parseable source form (used for program serialization and display).
  const std::string& source() const { return source_; }

  const ExprNode& root() const { return *root_; }

  /// Mutable tree access for index remapping after projections. Callers must
  /// preserve the analyzed invariants (types and overload bindings).
  ExprNode* mutable_root() { return root_.get(); }

 private:
  CompiledExpr(ExprNodePtr root, std::string source)
      : root_(std::move(root)), source_(std::move(source)) {}

  ExprNodePtr root_;
  std::string source_;
};

}  // namespace tioga2::expr

#endif  // TIOGA2_EXPR_EXPR_H_
