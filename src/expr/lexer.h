#ifndef TIOGA2_EXPR_LEXER_H_
#define TIOGA2_EXPR_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "expr/token.h"

namespace tioga2::expr {

/// Tokenizes an expression string. Returns the token list terminated by a
/// kEnd token, or a ParseError pointing at the offending byte.
Result<std::vector<Token>> Tokenize(const std::string& source);

}  // namespace tioga2::expr

#endif  // TIOGA2_EXPR_LEXER_H_
