#include "expr/parser.h"

#include <utility>

#include "expr/lexer.h"

namespace tioga2::expr {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ExprNodePtr> Parse() {
    TIOGA2_ASSIGN_OR_RETURN(ExprNodePtr expr, ParseOr());
    if (Current().kind != TokenKind::kEnd) {
      return Unexpected("end of expression");
    }
    return expr;
  }

 private:
  const Token& Current() const { return tokens_[pos_]; }

  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  bool Accept(TokenKind kind) {
    if (Current().kind == kind) {
      Advance();
      return true;
    }
    return false;
  }

  Status Unexpected(const std::string& wanted) const {
    return Status::ParseError("expected " + wanted + " but found " +
                              TokenKindToString(Current().kind) + " at offset " +
                              std::to_string(Current().position));
  }

  static ExprNodePtr MakeBinary(BinaryOp op, ExprNodePtr lhs, ExprNodePtr rhs,
                                size_t position) {
    auto node = std::make_unique<ExprNode>();
    node->kind = ExprNode::Kind::kBinary;
    node->binary_op = op;
    node->position = position;
    node->children.push_back(std::move(lhs));
    node->children.push_back(std::move(rhs));
    return node;
  }

  Result<ExprNodePtr> ParseOr() {
    TIOGA2_ASSIGN_OR_RETURN(ExprNodePtr lhs, ParseAnd());
    while (Current().kind == TokenKind::kOr) {
      size_t position = Current().position;
      Advance();
      TIOGA2_ASSIGN_OR_RETURN(ExprNodePtr rhs, ParseAnd());
      lhs = MakeBinary(BinaryOp::kOr, std::move(lhs), std::move(rhs), position);
    }
    return lhs;
  }

  Result<ExprNodePtr> ParseAnd() {
    TIOGA2_ASSIGN_OR_RETURN(ExprNodePtr lhs, ParseNot());
    while (Current().kind == TokenKind::kAnd) {
      size_t position = Current().position;
      Advance();
      TIOGA2_ASSIGN_OR_RETURN(ExprNodePtr rhs, ParseNot());
      lhs = MakeBinary(BinaryOp::kAnd, std::move(lhs), std::move(rhs), position);
    }
    return lhs;
  }

  Result<ExprNodePtr> ParseNot() {
    if (Current().kind == TokenKind::kNot) {
      size_t position = Current().position;
      Advance();
      TIOGA2_ASSIGN_OR_RETURN(ExprNodePtr operand, ParseNot());
      auto node = std::make_unique<ExprNode>();
      node->kind = ExprNode::Kind::kUnary;
      node->unary_op = UnaryOp::kNot;
      node->position = position;
      node->children.push_back(std::move(operand));
      return node;
    }
    return ParseComparison();
  }

  Result<ExprNodePtr> ParseComparison() {
    TIOGA2_ASSIGN_OR_RETURN(ExprNodePtr lhs, ParseAdditive());
    BinaryOp op;
    switch (Current().kind) {
      case TokenKind::kEq: op = BinaryOp::kEq; break;
      case TokenKind::kNe: op = BinaryOp::kNe; break;
      case TokenKind::kLt: op = BinaryOp::kLt; break;
      case TokenKind::kLe: op = BinaryOp::kLe; break;
      case TokenKind::kGt: op = BinaryOp::kGt; break;
      case TokenKind::kGe: op = BinaryOp::kGe; break;
      default:
        return lhs;
    }
    size_t position = Current().position;
    Advance();
    TIOGA2_ASSIGN_OR_RETURN(ExprNodePtr rhs, ParseAdditive());
    return MakeBinary(op, std::move(lhs), std::move(rhs), position);
  }

  Result<ExprNodePtr> ParseAdditive() {
    TIOGA2_ASSIGN_OR_RETURN(ExprNodePtr lhs, ParseMultiplicative());
    while (Current().kind == TokenKind::kPlus || Current().kind == TokenKind::kMinus) {
      BinaryOp op = Current().kind == TokenKind::kPlus ? BinaryOp::kAdd : BinaryOp::kSub;
      size_t position = Current().position;
      Advance();
      TIOGA2_ASSIGN_OR_RETURN(ExprNodePtr rhs, ParseMultiplicative());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs), position);
    }
    return lhs;
  }

  Result<ExprNodePtr> ParseMultiplicative() {
    TIOGA2_ASSIGN_OR_RETURN(ExprNodePtr lhs, ParseUnary());
    while (true) {
      BinaryOp op;
      if (Current().kind == TokenKind::kStar) {
        op = BinaryOp::kMul;
      } else if (Current().kind == TokenKind::kSlash) {
        op = BinaryOp::kDiv;
      } else if (Current().kind == TokenKind::kPercent) {
        op = BinaryOp::kMod;
      } else {
        return lhs;
      }
      size_t position = Current().position;
      Advance();
      TIOGA2_ASSIGN_OR_RETURN(ExprNodePtr rhs, ParseUnary());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs), position);
    }
  }

  Result<ExprNodePtr> ParseUnary() {
    if (Current().kind == TokenKind::kMinus) {
      size_t position = Current().position;
      Advance();
      TIOGA2_ASSIGN_OR_RETURN(ExprNodePtr operand, ParseUnary());
      auto node = std::make_unique<ExprNode>();
      node->kind = ExprNode::Kind::kUnary;
      node->unary_op = UnaryOp::kNeg;
      node->position = position;
      node->children.push_back(std::move(operand));
      return node;
    }
    return ParsePrimary();
  }

  Result<ExprNodePtr> ParsePrimary() {
    const Token& token = Current();
    auto node = std::make_unique<ExprNode>();
    node->position = token.position;
    switch (token.kind) {
      case TokenKind::kIntLiteral:
        node->kind = ExprNode::Kind::kLiteral;
        node->literal = types::Value::Int(token.int_value);
        Advance();
        return node;
      case TokenKind::kFloatLiteral:
        node->kind = ExprNode::Kind::kLiteral;
        node->literal = types::Value::Float(token.float_value);
        Advance();
        return node;
      case TokenKind::kStringLiteral:
        node->kind = ExprNode::Kind::kLiteral;
        node->literal = types::Value::String(token.text);
        Advance();
        return node;
      case TokenKind::kTrue:
        node->kind = ExprNode::Kind::kLiteral;
        node->literal = types::Value::Bool(true);
        Advance();
        return node;
      case TokenKind::kFalse:
        node->kind = ExprNode::Kind::kLiteral;
        node->literal = types::Value::Bool(false);
        Advance();
        return node;
      case TokenKind::kNull:
        node->kind = ExprNode::Kind::kLiteral;
        node->literal = types::Value::Null();
        Advance();
        return node;
      case TokenKind::kIdentifier: {
        std::string name = token.text;
        Advance();
        if (Accept(TokenKind::kLParen)) {
          node->kind = ExprNode::Kind::kCall;
          node->name = std::move(name);
          if (!Accept(TokenKind::kRParen)) {
            while (true) {
              TIOGA2_ASSIGN_OR_RETURN(ExprNodePtr arg, ParseOr());
              node->children.push_back(std::move(arg));
              if (Accept(TokenKind::kComma)) continue;
              if (Accept(TokenKind::kRParen)) break;
              return Unexpected("',' or ')'");
            }
          }
          return node;
        }
        node->kind = ExprNode::Kind::kAttributeRef;
        node->name = std::move(name);
        return node;
      }
      case TokenKind::kLParen: {
        Advance();
        TIOGA2_ASSIGN_OR_RETURN(ExprNodePtr inner, ParseOr());
        if (!Accept(TokenKind::kRParen)) return Unexpected("')'");
        return inner;
      }
      default:
        return Unexpected("a literal, attribute, function call, or '('");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<ExprNodePtr> ParseExpr(const std::string& source) {
  TIOGA2_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace tioga2::expr
