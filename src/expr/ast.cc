#include "expr/ast.h"

namespace tioga2::expr {

std::string BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "and";
    case BinaryOp::kOr: return "or";
  }
  return "?";
}

ExprNodePtr CloneExpr(const ExprNode& node) {
  auto copy = std::make_unique<ExprNode>();
  copy->kind = node.kind;
  copy->literal = node.literal;
  copy->name = node.name;
  copy->unary_op = node.unary_op;
  copy->binary_op = node.binary_op;
  copy->position = node.position;
  copy->result_type = node.result_type;
  copy->stored_index = node.stored_index;
  copy->overload = node.overload;
  copy->children.reserve(node.children.size());
  for (const ExprNodePtr& child : node.children) {
    copy->children.push_back(CloneExpr(*child));
  }
  return copy;
}

std::string ExprToString(const ExprNode& node) {
  switch (node.kind) {
    case ExprNode::Kind::kLiteral:
      return node.literal.ToString();
    case ExprNode::Kind::kAttributeRef:
      return node.name;
    case ExprNode::Kind::kUnary:
      if (node.unary_op == UnaryOp::kNeg) {
        return "(-" + ExprToString(*node.children[0]) + ")";
      }
      return "(not " + ExprToString(*node.children[0]) + ")";
    case ExprNode::Kind::kBinary:
      return "(" + ExprToString(*node.children[0]) + " " +
             BinaryOpToString(node.binary_op) + " " + ExprToString(*node.children[1]) +
             ")";
    case ExprNode::Kind::kCall: {
      std::string out = node.name + "(";
      for (size_t i = 0; i < node.children.size(); ++i) {
        if (i > 0) out += ", ";
        out += ExprToString(*node.children[i]);
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

namespace {
void CollectRefs(const ExprNode& node, std::vector<std::string>* out) {
  if (node.kind == ExprNode::Kind::kAttributeRef) out->push_back(node.name);
  for (const ExprNodePtr& child : node.children) CollectRefs(*child, out);
}
}  // namespace

std::vector<std::string> CollectAttributeRefs(const ExprNode& node) {
  std::vector<std::string> refs;
  CollectRefs(node, &refs);
  return refs;
}

Status RemapStoredAttributeIndices(
    ExprNode* node, const std::function<Result<size_t>(size_t)>& remap) {
  if (node->kind == ExprNode::Kind::kAttributeRef && node->stored_index.has_value()) {
    TIOGA2_ASSIGN_OR_RETURN(size_t new_index, remap(*node->stored_index));
    node->stored_index = new_index;
  }
  for (ExprNodePtr& child : node->children) {
    TIOGA2_RETURN_IF_ERROR(RemapStoredAttributeIndices(child.get(), remap));
  }
  return Status::OK();
}

}  // namespace tioga2::expr
