#include "storage/storage_engine.h"

#include <algorithm>
#include <chrono>

#include "storage/records.h"
#include "storage/storage_metrics.h"

namespace tioga2::storage {

namespace {

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Cuts a corrupt WAL back to its readable prefix: every segment after the
/// one holding the first bad frame is deleted, and that segment is rewritten
/// (atomically, tmp + rename) to end just before the bad frame. Without this
/// the corrupt frame would stay on disk, every future recovery's ReadAll
/// would stop at it again, and all records appended after this recovery —
/// even fsynced ones — would be silently unrecoverable (and fresh segment
/// names could collide with the orphaned tail).
Status QuarantineCorruptWal(Fs* fs, const std::string& dir,
                            const Wal::ReadResult& log) {
  TIOGA2_ASSIGN_OR_RETURN(std::vector<std::string> segments,
                          Wal::ListSegments(fs, dir));
  for (const std::string& name : segments) {
    // Zero-padded LSNs in the names: lexicographic order is numeric order.
    if (name > log.corrupt_segment) {
      TIOGA2_RETURN_IF_ERROR(fs->Remove(dir + "/" + name));
    }
  }
  const std::string path = dir + "/" + log.corrupt_segment;
  if (log.corrupt_prefix == 0) return fs->Remove(path);
  TIOGA2_ASSIGN_OR_RETURN(std::string data, fs->ReadFile(path));
  const std::string tmp = path + ".tmp";
  TIOGA2_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                          fs->OpenWritable(tmp));
  TIOGA2_RETURN_IF_ERROR(
      file->Append(std::string_view(data).substr(0, log.corrupt_prefix)));
  TIOGA2_RETURN_IF_ERROR(file->Sync());
  TIOGA2_RETURN_IF_ERROR(file->Close());
  return fs->Rename(tmp, path);
}

}  // namespace

StorageEngine::StorageEngine(db::Catalog* catalog, StorageOptions options,
                             Fs* fs)
    : catalog_(catalog), options_(std::move(options)), fs_(fs) {
  if (options_.retain_snapshots == 0) options_.retain_snapshots = 1;
}

StorageEngine::~StorageEngine() { (void)Close(); }

Status StorageEngine::Recover(
    Fs* fs, const std::string& dir, db::Catalog* catalog, RecoveryInfo* info,
    std::vector<std::pair<uint64_t, uint64_t>>* snapshots,
    std::vector<std::string>* covered_tables,
    std::vector<std::string>* covered_programs) {
  // Newest valid snapshot wins; older valid ones are kept as metadata (the
  // truncation floor), invalid ones are removed so retention counts stay
  // honest. A snapshot is "valid" only if every CRC, every table
  // fingerprint, and the END marker check out (snapshot.cc).
  TIOGA2_ASSIGN_OR_RETURN(auto listed, ListSnapshots(fs, dir));
  SnapshotContents base;
  bool have_base = false;
  for (auto it = listed.rbegin(); it != listed.rend(); ++it) {
    const std::string path = dir + "/" + it->second;
    Result<SnapshotContents> snap = ReadSnapshot(fs, path);
    if (!snap.ok()) {
      ++info->snapshots_skipped;
      (void)fs->Remove(path);
      continue;
    }
    snapshots->emplace_back(snap->seq, snap->last_lsn);
    if (!have_base) {
      base = std::move(*snap);
      have_base = true;
    }
  }
  std::reverse(snapshots->begin(), snapshots->end());  // ascending seq

  if (have_base) {
    info->recovered_snapshot = true;
    info->snapshot_seq = base.seq;
    info->snapshot_last_lsn = base.last_lsn;
    for (const auto& [name, floor] : base.version_floors) {
      catalog->RestoreVersionFloor(name, floor);
    }
    for (SnapshotTable& table : base.tables) {
      TIOGA2_RETURN_IF_ERROR(catalog->RestoreTable(
          table.name, std::move(table.relation), table.version));
      covered_tables->push_back(table.name);
    }
    for (auto& [name, text] : base.programs) {
      catalog->SaveProgram(name, std::move(text));  // no listener yet
      covered_programs->push_back(name);
    }
  }

  // Replay the log suffix. Records are applied restore-style — the logged
  // post-mutation state is installed directly at the logged version — so the
  // catalog lands exactly where it was when each record was written.
  TIOGA2_ASSIGN_OR_RETURN(Wal::ReadResult log,
                          Wal::ReadAll(fs, dir, base.last_lsn));
  info->torn_bytes = log.torn_bytes;
  info->wal_corrupt = log.corrupt;
  if (log.corrupt) {
    // Replay below still applies the readable prefix, but the log must be
    // made writable again before the WAL reopens at prefix+1: quarantine
    // the corrupt segment suffix so the next recovery reads a clean tail.
    TIOGA2_RETURN_IF_ERROR(QuarantineCorruptWal(fs, dir, log));
    if (log.records.empty()) {
      // No readable record lies above the snapshot's covered LSN, so the
      // corruption sits at or below it and the whole surviving prefix is
      // redundant (the snapshot contains it). It cannot stay: the WAL
      // reopens at snapshot_lsn + 1, which would leave an LSN gap between
      // the prefix's tail and the new segment — flagged as fresh corruption
      // by the next recovery's density check, quarantining away the new
      // records. Drop every remaining segment instead.
      TIOGA2_ASSIGN_OR_RETURN(std::vector<std::string> remaining,
                              Wal::ListSegments(fs, dir));
      for (const std::string& name : remaining) {
        TIOGA2_RETURN_IF_ERROR(fs->Remove(dir + "/" + name));
      }
    }
  }
  info->last_lsn = base.last_lsn;
  for (const Wal::Record& raw : log.records) {
    TIOGA2_ASSIGN_OR_RETURN(WalRecord record, DecodeWalRecord(raw.payload));
    switch (record.type) {
      case WalRecordType::kRegister:
      case WalRecordType::kReplace:
        TIOGA2_RETURN_IF_ERROR(catalog->RestoreTable(
            record.name, std::move(record.relation), record.version));
        covered_tables->push_back(record.name);
        break;
      case WalRecordType::kUpdateRow: {
        TIOGA2_ASSIGN_OR_RETURN(db::RelationPtr current,
                                catalog->GetTable(record.name));
        TIOGA2_ASSIGN_OR_RETURN(
            db::RelationPtr updated,
            db::WithRowReplaced(current, record.row,
                                std::move(record.new_tuple)));
        TIOGA2_RETURN_IF_ERROR(catalog->RestoreTable(
            record.name, std::move(updated), record.version));
        covered_tables->push_back(record.name);
        break;
      }
      case WalRecordType::kDrop:
        catalog->RestoreVersionFloor(record.name, record.version);
        TIOGA2_RETURN_IF_ERROR(catalog->DropTable(record.name));
        covered_tables->push_back(record.name);
        break;
      case WalRecordType::kSaveProgram:
        catalog->SaveProgram(record.name, std::move(record.program_text));
        covered_programs->push_back(record.name);
        break;
    }
    info->last_lsn = raw.lsn;
    ++info->records_replayed;
  }
  return Status::OK();
}

Result<std::unique_ptr<StorageEngine>> StorageEngine::Open(
    db::Catalog* catalog, StorageOptions options, RecoveryInfo* info) {
  const auto start = std::chrono::steady_clock::now();
  Fs* fs = options.fs != nullptr ? options.fs : Fs::Default();
  if (options.dir.empty()) {
    return Status::InvalidArgument("StorageOptions.dir must be non-empty");
  }
  TIOGA2_RETURN_IF_ERROR(fs->CreateDirs(options.dir));

  RecoveryInfo local_info;
  std::vector<std::pair<uint64_t, uint64_t>> snapshot_meta;
  std::vector<std::string> covered_tables;
  std::vector<std::string> covered_programs;
  TIOGA2_RETURN_IF_ERROR(Recover(fs, options.dir, catalog, &local_info,
                                 &snapshot_meta, &covered_tables,
                                 &covered_programs));

  std::unique_ptr<StorageEngine> engine(
      new StorageEngine(catalog, std::move(options), fs));
  engine->snapshots_ = snapshot_meta;
  engine->next_snapshot_seq_ =
      snapshot_meta.empty() ? 1 : snapshot_meta.back().first + 1;

  // Seed the shadow from the post-recovery catalog (which may also hold
  // pre-existing state the caller loaded before opening persistence).
  for (const std::string& name : catalog->ListTables()) {
    TIOGA2_ASSIGN_OR_RETURN(db::RelationPtr relation, catalog->GetTable(name));
    TIOGA2_ASSIGN_OR_RETURN(uint64_t version, catalog->TableVersion(name));
    engine->shadow_tables_[name] = ShadowTable{std::move(relation), version};
  }
  for (const std::string& name : catalog->ListPrograms()) {
    TIOGA2_ASSIGN_OR_RETURN(std::string text, catalog->GetProgram(name));
    engine->shadow_programs_[name] = std::move(text);
  }
  engine->shadow_floors_ = catalog->version_floors();
  engine->last_lsn_ = local_info.last_lsn;

  engine->wal_ = std::make_unique<Wal>(fs, engine->options_.dir,
                                       engine->options_.wal);
  TIOGA2_RETURN_IF_ERROR(engine->wal_->Open(local_info.last_lsn + 1));

  // Bootstrap: catalog state the directory did not cover (tables loaded
  // before OpenPersistent on a fresh or partial directory) gets logged now,
  // so the very first recovery already reproduces it.
  auto covered = [](const std::vector<std::string>& names,
                    const std::string& name) {
    return std::find(names.begin(), names.end(), name) != names.end();
  };
  for (const auto& [name, shadow] : engine->shadow_tables_) {
    if (covered(covered_tables, name)) continue;
    WalRecord record;
    record.type = WalRecordType::kRegister;
    record.name = name;
    record.version = shadow.version;
    record.relation = shadow.relation;
    uint64_t lsn = engine->AppendRecord(record);
    if (lsn != 0) engine->last_lsn_ = lsn;
  }
  for (const auto& [name, text] : engine->shadow_programs_) {
    if (covered(covered_programs, name)) continue;
    WalRecord record;
    record.type = WalRecordType::kSaveProgram;
    record.name = name;
    record.program_text = text;
    uint64_t lsn = engine->AppendRecord(record);
    if (lsn != 0) engine->last_lsn_ = lsn;
  }
  {
    std::lock_guard<std::mutex> lock(engine->shadow_mu_);
    if (!engine->append_error_.ok()) return engine->append_error_;
  }

  catalog->SetListener(engine.get());
  if (engine->options_.snapshot_every_records > 0) {
    engine->snapshotter_ = std::thread([e = engine.get()] { e->SnapshotterLoop(); });
  }

  local_info.recovery_ms = ElapsedMs(start);
  StorageMetrics::Global().recovery_us_last.store(
      static_cast<uint64_t>(local_info.recovery_ms * 1000.0),
      std::memory_order_relaxed);
  StorageMetrics::Global().recovery_records_replayed.store(
      local_info.records_replayed, std::memory_order_relaxed);
  if (info != nullptr) *info = local_info;
  return engine;
}

uint64_t StorageEngine::AppendRecord(const WalRecord& record) {
  Result<std::string> payload = EncodeWalRecord(record);
  if (!payload.ok()) {
    std::lock_guard<std::mutex> lock(shadow_mu_);
    if (append_error_.ok()) append_error_ = payload.status();
    return 0;
  }
  Result<uint64_t> lsn = wal_->Append(std::move(*payload));
  if (!lsn.ok()) {
    std::lock_guard<std::mutex> lock(shadow_mu_);
    if (append_error_.ok()) append_error_ = lsn.status();
    return 0;
  }
  return *lsn;
}

void StorageEngine::BumpRecordsLocked() {
  ++records_since_snapshot_;
  if (options_.snapshot_every_records > 0 &&
      records_since_snapshot_ >= options_.snapshot_every_records) {
    snap_cv_.notify_all();
  }
}

void StorageEngine::OnRegisterTable(const std::string& name,
                                    const db::RelationPtr& relation,
                                    uint64_t version) {
  WalRecord record;
  record.type = WalRecordType::kRegister;
  record.name = name;
  record.version = version;
  record.relation = relation;
  const uint64_t lsn = AppendRecord(record);
  std::lock_guard<std::mutex> lock(shadow_mu_);
  shadow_tables_[name] = ShadowTable{relation, version};
  if (lsn != 0) last_lsn_ = lsn;
  BumpRecordsLocked();
}

void StorageEngine::OnReplaceTable(const std::string& name,
                                   const db::RelationPtr& relation,
                                   uint64_t version) {
  WalRecord record;
  record.type = WalRecordType::kReplace;
  record.name = name;
  record.version = version;
  record.relation = relation;
  const uint64_t lsn = AppendRecord(record);
  std::lock_guard<std::mutex> lock(shadow_mu_);
  shadow_tables_[name] = ShadowTable{relation, version};
  if (lsn != 0) last_lsn_ = lsn;
  BumpRecordsLocked();
}

void StorageEngine::OnUpdateRow(const db::TableDelta& delta,
                                const db::RelationPtr& relation) {
  WalRecord record;
  record.type = WalRecordType::kUpdateRow;
  record.name = delta.table;
  record.version = delta.new_version;
  record.row = delta.row;
  record.new_tuple = delta.new_tuple;
  const uint64_t lsn = AppendRecord(record);
  std::lock_guard<std::mutex> lock(shadow_mu_);
  shadow_tables_[delta.table] = ShadowTable{relation, delta.new_version};
  if (lsn != 0) last_lsn_ = lsn;
  BumpRecordsLocked();
}

void StorageEngine::OnDropTable(const std::string& name,
                                uint64_t version_at_drop) {
  WalRecord record;
  record.type = WalRecordType::kDrop;
  record.name = name;
  record.version = version_at_drop;
  const uint64_t lsn = AppendRecord(record);
  std::lock_guard<std::mutex> lock(shadow_mu_);
  shadow_tables_.erase(name);
  uint64_t& floor = shadow_floors_[name];
  floor = std::max(floor, version_at_drop);
  if (lsn != 0) last_lsn_ = lsn;
  BumpRecordsLocked();
}

void StorageEngine::OnSaveProgram(const std::string& name,
                                  const std::string& serialized) {
  WalRecord record;
  record.type = WalRecordType::kSaveProgram;
  record.name = name;
  record.program_text = serialized;
  const uint64_t lsn = AppendRecord(record);
  std::lock_guard<std::mutex> lock(shadow_mu_);
  shadow_programs_[name] = serialized;
  if (lsn != 0) last_lsn_ = lsn;
  BumpRecordsLocked();
}

Status StorageEngine::Checkpoint() {
  std::lock_guard<std::mutex> ck(checkpoint_mu_);
  const auto start = std::chrono::steady_clock::now();
  SnapshotContents contents;
  contents.seq = next_snapshot_seq_;  // checkpoint_mu_ (held) guards the seq
  {
    std::lock_guard<std::mutex> lock(shadow_mu_);
    if (!append_error_.ok()) return append_error_;
    contents.last_lsn = last_lsn_;
    for (const auto& [name, shadow] : shadow_tables_) {
      contents.tables.push_back(
          SnapshotTable{name, shadow.relation, shadow.version, 0});
    }
    for (const auto& [name, text] : shadow_programs_) {
      contents.programs.emplace_back(name, text);
    }
    for (const auto& [name, floor] : shadow_floors_) {
      contents.version_floors.emplace_back(name, floor);
    }
    records_since_snapshot_ = 0;
  }
  // The WAL must be durable through contents.last_lsn before truncation can
  // delete any of it below.
  TIOGA2_RETURN_IF_ERROR(wal_->Sync());
  TIOGA2_RETURN_IF_ERROR(WriteSnapshot(fs_, options_.dir, contents).status());
  snapshots_.emplace_back(contents.seq, contents.last_lsn);
  next_snapshot_seq_ = contents.seq + 1;
  while (snapshots_.size() > options_.retain_snapshots) {
    TIOGA2_RETURN_IF_ERROR(
        fs_->Remove(options_.dir + "/" + SnapshotName(snapshots_.front().first)));
    snapshots_.erase(snapshots_.begin());
  }
  // Truncate through the *oldest retained* snapshot: everything older is
  // unreachable by any recovery path, everything newer may still be needed
  // as replay input if a newer snapshot turns out corrupt.
  TIOGA2_RETURN_IF_ERROR(wal_->TruncateThrough(snapshots_.front().second));
  StorageMetrics::Global().snapshot_us_last.store(
      static_cast<uint64_t>(ElapsedMs(start) * 1000.0),
      std::memory_order_relaxed);
  return Status::OK();
}

void StorageEngine::SnapshotterLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(shadow_mu_);
      snap_cv_.wait(lock, [&] {
        return stop_ ||
               records_since_snapshot_ >= options_.snapshot_every_records;
      });
      if (stop_) return;
    }
    Status status = Checkpoint();
    if (!status.ok()) {
      std::lock_guard<std::mutex> lock(shadow_mu_);
      if (append_error_.ok()) append_error_ = status;
      return;
    }
  }
}

Status StorageEngine::Sync() {
  {
    std::lock_guard<std::mutex> lock(shadow_mu_);
    if (!append_error_.ok()) return append_error_;
  }
  return wal_->Sync();
}

uint64_t StorageEngine::last_lsn() const {
  std::lock_guard<std::mutex> lock(shadow_mu_);
  return last_lsn_;
}

Status StorageEngine::Close() {
  {
    std::lock_guard<std::mutex> lock(shadow_mu_);
    if (closed_) return Status::OK();
    closed_ = true;
    stop_ = true;
    snap_cv_.notify_all();
  }
  if (snapshotter_.joinable()) snapshotter_.join();
  catalog_->SetListener(nullptr);
  Status wal_status = wal_ != nullptr ? wal_->Close() : Status::OK();
  std::lock_guard<std::mutex> lock(shadow_mu_);
  if (!append_error_.ok()) return append_error_;
  return wal_status;
}

}  // namespace tioga2::storage
