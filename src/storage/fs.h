#ifndef TIOGA2_STORAGE_FS_H_
#define TIOGA2_STORAGE_FS_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace tioga2::storage {

/// An append-only output file. Durability ladder: Append buffers in the
/// process, Flush pushes to the OS, Sync (fsync) pushes to the device —
/// the distinction the WAL durability policies are built on.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(std::string_view data) = 0;
  virtual Status Flush() = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// The filesystem surface the storage subsystem uses. Everything goes
/// through this interface so the crash-injection harness (fault_fs.h) can
/// cut writes off mid-record, exactly like a power loss would.
class Fs {
 public:
  virtual ~Fs() = default;

  /// Opens `path` for writing (truncating any existing file).
  virtual Result<std::unique_ptr<WritableFile>> OpenWritable(
      const std::string& path) = 0;

  /// Reads a whole file.
  virtual Result<std::string> ReadFile(const std::string& path) = 0;

  /// Names (not paths) of directory entries, sorted. Missing directory is an
  /// empty listing, not an error.
  virtual Result<std::vector<std::string>> ListDir(const std::string& dir) = 0;

  virtual Status CreateDirs(const std::string& dir) = 0;
  virtual Status Remove(const std::string& path) = 0;
  /// Atomic on POSIX — the snapshot writer's publish step (tmp + rename).
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  virtual bool Exists(const std::string& path) = 0;

  /// The process-wide real (POSIX) filesystem.
  static Fs* Default();
};

}  // namespace tioga2::storage

#endif  // TIOGA2_STORAGE_FS_H_
