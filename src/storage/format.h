#ifndef TIOGA2_STORAGE_FORMAT_H_
#define TIOGA2_STORAGE_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "db/relation.h"

namespace tioga2::storage {

/// The binary building blocks shared by the snapshot format and the WAL
/// (see DESIGN.md "Persistence and recovery"): fixed-width little-endian
/// scalars, length-prefixed strings, CRC32-checked frames, and a columnar
/// relation codec that round-trips catalog tables bit-exactly.
///
/// Files written with these primitives are machine-local (native endianness,
/// IEEE doubles serialized by bit pattern); they are a crash-recovery
/// format, not an interchange format — CSV (db/csv.h) is the portable
/// escape hatch.

/// CRC-32 (IEEE 802.3 polynomial, the zlib crc32). `seed` chains partial
/// computations: Crc32(b, Crc32(a)) == Crc32(a ++ b).
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

/// 64-bit FNV-1a over raw bytes — the content-fingerprint hash. Two
/// relations with equal encodings (schema, row order, null pattern, value
/// bits) have equal fingerprints.
uint64_t Hash64(std::string_view data);

/// Appends binary primitives to a growing byte string.
class Encoder {
 public:
  void PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) { PutFixed(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutFixed(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutFixed(&v, sizeof(v)); }
  /// Serialized by bit pattern: NaN payloads and -0.0 survive.
  void PutDouble(double v) { PutFixed(&v, sizeof(v)); }
  void PutString(std::string_view v) {
    PutU32(static_cast<uint32_t>(v.size()));
    out_.append(v.data(), v.size());
  }
  void PutRaw(std::string_view v) { out_.append(v.data(), v.size()); }

  const std::string& data() const { return out_; }
  size_t size() const { return out_.size(); }
  std::string Take() { return std::move(out_); }

 private:
  void PutFixed(const void* p, size_t n) {
    out_.append(reinterpret_cast<const char*>(p), n);
  }
  std::string out_;
};

/// Bounds-checked reader over an encoded byte string. Every getter returns
/// ParseError instead of reading past the end, so a truncated or corrupted
/// payload is always a clean error, never undefined behavior.
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int64_t> GetI64();
  Result<double> GetDouble();
  Result<std::string> GetString();

  size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return remaining() == 0; }
  /// The not-yet-consumed suffix (a view into the underlying data). Lets the
  /// snapshot reader hash a relation's encoded bytes before decoding them.
  std::string_view rest() const { return data_.substr(pos_); }

 private:
  Status GetFixed(void* out, size_t n);
  std::string_view data_;
  size_t pos_ = 0;
};

// ---- CRC frames ----
//
// A frame is [u32 length][u32 crc][payload], where `length` is the payload
// size and `crc` is Crc32(payload). Both the WAL and the snapshot file are
// sequences of frames; a torn tail (incomplete length/crc/payload) or a crc
// mismatch ends the readable prefix.

/// Appends one frame wrapping `payload` to `out`.
void AppendFrame(std::string_view payload, std::string* out);

/// Size on disk of a frame wrapping a payload of `payload_size` bytes.
inline size_t FrameSize(size_t payload_size) { return 8 + payload_size; }

/// Reads the frame starting at `*offset` of `data`. On success advances
/// `*offset` past the frame and returns the payload (a view into `data`).
/// Returns OutOfRange when the remaining bytes cannot hold a whole frame (a
/// torn tail — the expected end state of a crashed log) and ParseError on a
/// CRC mismatch (corruption).
Result<std::string_view> ReadFrame(std::string_view data, size_t* offset);

// ---- Value and relation codecs ----

/// Encodes one cell self-describingly (a type tag, then the payload).
/// Display values are rejected: display attributes are computed, never
/// stored (§5.1), so they never appear in a base table.
Status EncodeValue(const types::Value& value, Encoder* enc);
Result<types::Value> DecodeValue(Decoder* dec);

/// Encodes a whole tuple (cell count, then each cell).
Status EncodeTuple(const db::Tuple& tuple, Encoder* enc);
Result<db::Tuple> DecodeTuple(Decoder* dec);

/// Encodes a relation columnarly: schema, row count, then per column a null
/// bitmap and the typed vector, serialized from Relation::columnar() — the
/// snapshotter never touches the row store, so it can run concurrently with
/// readers (per-column materialization is once_flag-guarded). Decoding
/// rebuilds a materialized relation whose tuples are value- and
/// bit-identical to the source (asserted by storage_test round trips).
Status EncodeRelation(const db::Relation& relation, Encoder* enc);
Result<db::RelationPtr> DecodeRelation(Decoder* dec);

/// The content fingerprint of a relation: Hash64 over its columnar
/// encoding. Stored in snapshots next to each table and re-verified on
/// load; also the equality check the recovery tests use.
Result<uint64_t> FingerprintRelation(const db::Relation& relation);

}  // namespace tioga2::storage

#endif  // TIOGA2_STORAGE_FORMAT_H_
