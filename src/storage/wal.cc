#include "storage/wal.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "storage/format.h"
#include "storage/storage_metrics.h"

namespace tioga2::storage {

Wal::Wal(Fs* fs, std::string dir, WalOptions options)
    : fs_(fs), dir_(std::move(dir)), options_(options) {}

Wal::~Wal() { (void)Close(); }

std::string Wal::SegmentName(uint64_t first_lsn) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "wal-%020" PRIu64 ".t2w", first_lsn);
  return buf;
}

bool Wal::ParseSegmentName(const std::string& name, uint64_t* first_lsn) {
  if (name.size() != 4 + 20 + 4) return false;
  if (name.rfind("wal-", 0) != 0 || name.substr(24) != ".t2w") return false;
  uint64_t lsn = 0;
  for (size_t i = 4; i < 24; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    lsn = lsn * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *first_lsn = lsn;
  return true;
}

Result<std::vector<std::string>> Wal::ListSegments(Fs* fs, const std::string& dir) {
  TIOGA2_ASSIGN_OR_RETURN(std::vector<std::string> names, fs->ListDir(dir));
  std::vector<std::string> segments;
  for (const std::string& name : names) {
    uint64_t lsn;
    if (ParseSegmentName(name, &lsn)) segments.push_back(name);
  }
  // ListDir sorts lexicographically; zero-padded LSNs make that numeric.
  return segments;
}

Status Wal::Open(uint64_t next_lsn) {
  TIOGA2_RETURN_IF_ERROR(fs_->CreateDirs(dir_));
  std::lock_guard<std::mutex> lock(mu_);
  std::lock_guard<std::mutex> flock(file_mu_);
  if (open_) return Status::FailedPrecondition("wal already open");
  next_lsn_ = next_lsn;
  appended_lsn_ = written_lsn_ = durable_lsn_ = next_lsn - 1;
  file_written_lsn_ = next_lsn - 1;
  TIOGA2_ASSIGN_OR_RETURN(std::vector<std::string> existing,
                          ListSegments(fs_, dir_));
  segments_.clear();
  for (const std::string& name : existing) {
    uint64_t first;
    ParseSegmentName(name, &first);
    if (first >= next_lsn) {
      // Recovery already read every valid record, so a segment starting at
      // or past next_lsn holds nothing durable-readable — the residue of a
      // crash right after rotation, or the tail of a quarantined log.
      // Tracking it would alias the fresh active segment opened below (same
      // name; OpenWritable truncates it), and TruncateThrough would later
      // unlink the live file. Delete it instead.
      TIOGA2_RETURN_IF_ERROR(fs_->Remove(dir_ + "/" + name));
      continue;
    }
    segments_.push_back(Segment{dir_ + "/" + name, first});
  }
  TIOGA2_RETURN_IF_ERROR(OpenSegmentLocked(next_lsn_));
  open_ = true;
  stop_ = false;
  writer_error_ = Status::OK();
  writer_ = std::thread([this] { WriterLoop(); });
  return Status::OK();
}

Status Wal::OpenSegmentLocked(uint64_t first_lsn) {
  const std::string path = dir_ + "/" + SegmentName(first_lsn);
  TIOGA2_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                          fs_->OpenWritable(path));
  active_file_ = std::move(file);
  // OpenWritable truncated any prior incarnation of this file, so a stale
  // tracking entry would alias the active segment — segments_ must never
  // hold the same path twice.
  segments_.erase(
      std::remove_if(segments_.begin(), segments_.end(),
                     [&](const Segment& s) { return s.path == path; }),
      segments_.end());
  segments_.push_back(Segment{path, first_lsn});
  active_bytes_ = 0;
  records_since_flush_ = 0;
  return Status::OK();
}

Result<uint64_t> Wal::Append(std::string payload) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!open_) return Status::FailedPrecondition("wal not open");
  if (!writer_error_.ok()) return writer_error_;
  const uint64_t lsn = next_lsn_++;
  Encoder inner;
  inner.PutU64(lsn);
  inner.PutRaw(payload);
  std::string framed;
  AppendFrame(inner.data(), &framed);
  StorageMetrics::Global().wal_records.fetch_add(1, std::memory_order_relaxed);
  StorageMetrics::Global().wal_bytes.fetch_add(framed.size(),
                                               std::memory_order_relaxed);
  queue_.emplace_back(lsn, std::move(framed));
  appended_lsn_ = lsn;
  queue_cv_.notify_one();
  if (options_.durability == Durability::kFsyncEachRecord) {
    durable_cv_.wait(lock, [&] {
      return durable_lsn_ >= lsn || !writer_error_.ok();
    });
    if (!writer_error_.ok()) return writer_error_;
  }
  return lsn;
}

void Wal::WriterLoop() {
  for (;;) {
    std::vector<std::pair<uint64_t, std::string>> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      const bool one_at_a_time =
          options_.durability == Durability::kFsyncEachRecord &&
          !options_.group_commit;
      while (!queue_.empty()) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
        if (one_at_a_time) break;
      }
      if (!writer_error_.ok()) {
        // A previous write failed: keep draining so producers never block
        // on a queue nobody consumes, but drop the bytes.
        durable_cv_.notify_all();
        continue;
      }
    }
    Status status;
    uint64_t written;
    {
      std::lock_guard<std::mutex> flock(file_mu_);
      status = WriteBatch(batch);
      written = file_written_lsn_;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!status.ok() && writer_error_.ok()) writer_error_ = status;
      // file_written_lsn_ counts only frames whose Append succeeded, so a
      // failed batch never overstates on-disk progress here.
      written_lsn_ = std::max(written_lsn_, written);
      if (status.ok() && options_.durability == Durability::kFsyncEachRecord) {
        durable_lsn_ = std::max(durable_lsn_, written_lsn_);
      }
    }
    durable_cv_.notify_all();
  }
}

Status Wal::WriteBatch(
    const std::vector<std::pair<uint64_t, std::string>>& batch) {
  StorageMetrics& metrics = StorageMetrics::Global();
  for (const auto& [lsn, frame] : batch) {
    TIOGA2_RETURN_IF_ERROR(active_file_->Append(frame));
    file_written_lsn_ = lsn;
    active_bytes_ += frame.size();
    ++records_since_flush_;
    // Rotate per record, not per batch: a large group-committed burst must
    // not blow a segment arbitrarily past rotate_bytes.
    if (active_bytes_ >= options_.rotate_bytes) {
      TIOGA2_RETURN_IF_ERROR(active_file_->Sync());
      metrics.wal_fsyncs.fetch_add(1, std::memory_order_relaxed);
      TIOGA2_RETURN_IF_ERROR(active_file_->Close());
      TIOGA2_RETURN_IF_ERROR(OpenSegmentLocked(lsn + 1));
      metrics.wal_rotations.fetch_add(1, std::memory_order_relaxed);
    }
  }
  switch (options_.durability) {
    case Durability::kNone:
      break;
    case Durability::kFlushEveryN:
      if (records_since_flush_ >= options_.flush_every_n) {
        TIOGA2_RETURN_IF_ERROR(active_file_->Flush());
        records_since_flush_ = 0;
      }
      break;
    case Durability::kFsyncEachRecord:
      TIOGA2_RETURN_IF_ERROR(active_file_->Sync());
      records_since_flush_ = 0;
      metrics.wal_fsyncs.fetch_add(1, std::memory_order_relaxed);
      if (batch.size() > 1) {
        metrics.wal_group_commits.fetch_add(1, std::memory_order_relaxed);
      }
      break;
  }
  return Status::OK();
}

Status Wal::Sync() {
  uint64_t target;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!open_) return Status::FailedPrecondition("wal not open");
    target = appended_lsn_;
    durable_cv_.wait(lock, [&] {
      return written_lsn_ >= target || !writer_error_.ok();
    });
    if (!writer_error_.ok()) return writer_error_;
    if (durable_lsn_ >= target) return Status::OK();
  }
  Status status;
  {
    std::lock_guard<std::mutex> flock(file_mu_);
    status = active_file_->Sync();
  }
  StorageMetrics::Global().wal_fsyncs.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!status.ok() && writer_error_.ok()) writer_error_ = status;
    if (status.ok()) durable_lsn_ = std::max(durable_lsn_, target);
  }
  durable_cv_.notify_all();
  return status;
}

Status Wal::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!open_) return Status::OK();
    stop_ = true;
    queue_cv_.notify_one();
  }
  writer_.join();
  Status status;
  {
    std::lock_guard<std::mutex> flock(file_mu_);
    status = active_file_->Sync();
    Status closed = active_file_->Close();
    if (status.ok()) status = closed;
    active_file_.reset();
  }
  std::lock_guard<std::mutex> lock(mu_);
  open_ = false;
  if (status.ok()) durable_lsn_ = written_lsn_;
  if (!writer_error_.ok()) return writer_error_;
  return status;
}

Status Wal::TruncateThrough(uint64_t lsn) {
  // Lock order mu_ -> file_mu_, matching Open (the only other place the two
  // nest). Holding mu_ across the rotation briefly blocks Append, which is
  // fine: truncation runs once per checkpoint.
  std::unique_lock<std::mutex> lock(mu_);
  if (!open_) return Status::FailedPrecondition("wal not open");
  std::lock_guard<std::mutex> flock(file_mu_);
  // Rotate the active segment away if every record it holds is covered,
  // so it too becomes deletable. Queued-but-unwritten records will land
  // in the new segment (their LSNs are > file_written_lsn_). The decision
  // must read file_written_lsn_ (guarded by file_mu_, held here), not
  // written_lsn_: the writer publishes written_lsn_ only after releasing
  // file_mu_, so it can lag records already on disk, and a stale read here
  // would rotate away — then delete — a segment holding live records.
  if (!segments_.empty() && segments_.back().first_lsn <= lsn &&
      file_written_lsn_ <= lsn) {
    TIOGA2_RETURN_IF_ERROR(active_file_->Sync());
    TIOGA2_RETURN_IF_ERROR(active_file_->Close());
    TIOGA2_RETURN_IF_ERROR(OpenSegmentLocked(file_written_lsn_ + 1));
    StorageMetrics::Global().wal_rotations.fetch_add(1,
                                                     std::memory_order_relaxed);
  }
  lock.unlock();  // the deletion loop touches only file_mu_ state
  // A segment is deletable when the NEXT segment starts at or below lsn+1:
  // then every record it holds is <= lsn. The active (last) segment stays.
  size_t removed = 0;
  while (segments_.size() > 1 && segments_[1].first_lsn <= lsn + 1) {
    TIOGA2_RETURN_IF_ERROR(fs_->Remove(segments_.front().path));
    segments_.erase(segments_.begin());
    ++removed;
  }
  StorageMetrics::Global().wal_segments_truncated.fetch_add(
      removed, std::memory_order_relaxed);
  return Status::OK();
}

uint64_t Wal::next_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_;
}

uint64_t Wal::durable_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_lsn_;
}

Result<Wal::ReadResult> Wal::ReadAll(Fs* fs, const std::string& dir,
                                     uint64_t after_lsn) {
  ReadResult result;
  TIOGA2_ASSIGN_OR_RETURN(std::vector<std::string> segments,
                          ListSegments(fs, dir));
  uint64_t prev_lsn = 0;
  bool have_prev = false;
  for (const std::string& name : segments) {
    TIOGA2_ASSIGN_OR_RETURN(std::string data, fs->ReadFile(dir + "/" + name));
    size_t offset = 0;
    while (offset < data.size()) {
      const size_t frame_start = offset;
      Result<std::string_view> frame = ReadFrame(data, &offset);
      if (!frame.ok()) {
        if (frame.status().IsOutOfRange()) {
          // Torn tail — the expected end state of a crashed segment. A new
          // segment opened after recovery continues the dense LSN sequence,
          // so keep scanning subsequent segments.
          result.torn_bytes = data.size() - offset;
          break;
        }
        result.corrupt = true;  // CRC mismatch: stop at the readable prefix
        result.corrupt_segment = name;
        result.corrupt_prefix = frame_start;
        return result;
      }
      Decoder dec(*frame);
      Result<uint64_t> lsn = dec.GetU64();
      if (!lsn.ok()) {
        result.corrupt = true;
        result.corrupt_segment = name;
        result.corrupt_prefix = frame_start;
        return result;
      }
      if (have_prev && *lsn != prev_lsn + 1) {
        result.corrupt = true;  // gap in the sequence: unreadable beyond here
        result.corrupt_segment = name;
        result.corrupt_prefix = frame_start;
        return result;
      }
      prev_lsn = *lsn;
      have_prev = true;
      if (*lsn > after_lsn) {
        result.records.push_back(
            Record{*lsn, std::string(frame->substr(8))});
      }
    }
  }
  return result;
}

}  // namespace tioga2::storage
