#include "storage/fault_fs.h"

#include <algorithm>

namespace tioga2::storage {

namespace {

class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(std::unique_ptr<WritableFile> base, FaultFs* fs)
      : base_(std::move(base)), fs_(fs) {}

  Status Append(std::string_view data) override {
    size_t allowed = fs_->Claim(data.size());
    if (allowed == 0) return Status::OK();
    return base_->Append(data.substr(0, allowed));
  }

  Status Flush() override { return base_->Flush(); }
  Status Sync() override { return base_->Sync(); }
  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  FaultFs* fs_;
};

}  // namespace

size_t FaultFs::Claim(size_t want) {
  int64_t before =
      remaining_.fetch_sub(static_cast<int64_t>(want), std::memory_order_relaxed);
  int64_t allowed = before < 0 ? 0 : before;
  if (allowed < static_cast<int64_t>(want)) {
    tripped_.store(true, std::memory_order_relaxed);
  }
  return static_cast<size_t>(std::min<int64_t>(allowed, static_cast<int64_t>(want)));
}

Result<std::unique_ptr<WritableFile>> FaultFs::OpenWritable(
    const std::string& path) {
  TIOGA2_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                          base_->OpenWritable(path));
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultWritableFile>(std::move(base), this));
}

Status FaultFs::Remove(const std::string& path) {
  if (tripped()) return Status::OK();  // the platter never saw it
  return base_->Remove(path);
}

Status FaultFs::Rename(const std::string& from, const std::string& to) {
  if (tripped()) return Status::OK();
  return base_->Rename(from, to);
}

}  // namespace tioga2::storage
