#ifndef TIOGA2_STORAGE_STORAGE_ENGINE_H_
#define TIOGA2_STORAGE_STORAGE_ENGINE_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/result.h"
#include "db/catalog.h"
#include "storage/fs.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

namespace tioga2::storage {

struct StorageOptions {
  /// Directory holding both snapshot files (snapshot-*.t2s) and WAL
  /// segments (wal-*.t2w).
  std::string dir;
  WalOptions wal;
  /// Keep this many snapshots on disk (>= 1). Older snapshots are deleted
  /// when a new one is written; the WAL is truncated only through the
  /// *oldest retained* snapshot's LSN, so every retained snapshot remains a
  /// valid recovery start point (the fallback when a newer one is corrupt).
  size_t retain_snapshots = 2;
  /// When > 0, a background snapshotter thread writes a snapshot after this
  /// many logged records. 0 = snapshots only on explicit Checkpoint().
  uint64_t snapshot_every_records = 0;
  /// Filesystem to use; nullptr = Fs::Default(). Tests inject FaultFs here.
  Fs* fs = nullptr;
};

/// What recovery found and did, for logging and for the recovery tests.
struct RecoveryInfo {
  bool recovered_snapshot = false;
  uint64_t snapshot_seq = 0;
  uint64_t snapshot_last_lsn = 0;
  /// Snapshot files that failed validation and were skipped (and removed).
  size_t snapshots_skipped = 0;
  /// Highest LSN applied (snapshot + replay); the next record gets +1.
  uint64_t last_lsn = 0;
  size_t records_replayed = 0;
  /// Bytes of torn WAL tail discarded (the expected crash residue).
  size_t torn_bytes = 0;
  /// True when the WAL scan ended at a CRC mismatch rather than a clean end
  /// or torn tail. Recovery applied the readable prefix and quarantined the
  /// corrupt suffix (the bad segment was truncated to its readable prefix,
  /// later segments deleted), so the reopened log appends to a clean tail
  /// and stays recoverable.
  bool wal_corrupt = false;
  double recovery_ms = 0.0;
};

/// The crash-safety subsystem: mirrors every catalog mutation into a WAL
/// (as a CatalogListener) and periodically folds the log into a columnar
/// snapshot. Open() performs recovery first — newest valid snapshot, then
/// replay of the WAL suffix — restoring tables at their exact recorded
/// versions so memo stamps are byte-identical across a restart.
///
/// Threading: listener callbacks arrive on mutating threads (serialized by
/// the caller — SessionServer's exclusive catalog lock, or a single-threaded
/// app). The engine keeps its own mutex-guarded shadow of the catalog
/// (immutable RelationPtrs + versions), which is what the background
/// snapshotter serializes — it never reads the non-thread-safe Catalog, so
/// snapshots run concurrently with queries and edits.
class StorageEngine final : public db::CatalogListener {
 public:
  /// Recovers `options.dir` into `catalog` (overwriting same-named tables),
  /// logs any catalog state the directory did not cover (bootstrap), opens
  /// the WAL for appending, attaches the listener, and starts the
  /// snapshotter thread if configured. `info` (optional) receives what
  /// recovery did.
  static Result<std::unique_ptr<StorageEngine>> Open(db::Catalog* catalog,
                                                     StorageOptions options,
                                                     RecoveryInfo* info = nullptr);

  ~StorageEngine() override;

  StorageEngine(const StorageEngine&) = delete;
  StorageEngine& operator=(const StorageEngine&) = delete;

  /// Writes a snapshot of the current shadow state, applies the retention
  /// policy, and truncates the WAL through the oldest retained snapshot.
  /// Thread-safe; also called by the snapshotter thread.
  Status Checkpoint();

  /// Blocks until everything logged so far is fsynced.
  Status Sync();

  /// Detaches from the catalog, stops the snapshotter, drains and closes
  /// the WAL. Idempotent. Reports the first background append error, if any.
  Status Close();

  /// Highest LSN assigned to a logged record (0 = nothing logged yet).
  uint64_t last_lsn() const;

  const StorageOptions& options() const { return options_; }

  // db::CatalogListener — one WAL record per mutation, then the shadow copy.
  void OnRegisterTable(const std::string& name, const db::RelationPtr& relation,
                       uint64_t version) override;
  void OnReplaceTable(const std::string& name, const db::RelationPtr& relation,
                      uint64_t version) override;
  void OnUpdateRow(const db::TableDelta& delta,
                   const db::RelationPtr& relation) override;
  void OnDropTable(const std::string& name, uint64_t version_at_drop) override;
  void OnSaveProgram(const std::string& name,
                     const std::string& serialized) override;

 private:
  StorageEngine(db::Catalog* catalog, StorageOptions options, Fs* fs);

  /// Replays `dir` into `catalog`; fills `info` and the (seq, last_lsn)
  /// metadata of every retained valid snapshot, ascending.
  static Status Recover(Fs* fs, const std::string& dir, db::Catalog* catalog,
                        RecoveryInfo* info,
                        std::vector<std::pair<uint64_t, uint64_t>>* snapshots,
                        std::vector<std::string>* covered_tables,
                        std::vector<std::string>* covered_programs);

  /// Encodes and appends one record; returns its LSN, or 0 after noting the
  /// first failure in append_error_ (listener callbacks cannot return
  /// Status — the error surfaces on the next Sync/Checkpoint/Close).
  uint64_t AppendRecord(const struct WalRecord& record);

  void BumpRecordsLocked();
  void SnapshotterLoop();

  db::Catalog* catalog_;
  StorageOptions options_;
  Fs* fs_;
  std::unique_ptr<Wal> wal_;

  struct ShadowTable {
    db::RelationPtr relation;
    uint64_t version = 1;
  };

  /// Guards the shadow state and the snapshotter handshake.
  mutable std::mutex shadow_mu_;
  std::condition_variable snap_cv_;
  std::map<std::string, ShadowTable> shadow_tables_;
  std::map<std::string, std::string> shadow_programs_;
  std::map<std::string, uint64_t> shadow_floors_;
  uint64_t last_lsn_ = 0;
  uint64_t records_since_snapshot_ = 0;
  bool stop_ = false;
  bool closed_ = false;
  Status append_error_;

  /// Serializes checkpoints and guards the on-disk snapshot bookkeeping
  /// below (snapshots_, next_snapshot_seq_) — every read and write of those
  /// two goes under this mutex, except the seeding in Open(), which runs
  /// before the snapshotter thread exists.
  std::mutex checkpoint_mu_;
  std::vector<std::pair<uint64_t, uint64_t>> snapshots_;  // (seq, last_lsn)
  uint64_t next_snapshot_seq_ = 1;

  std::thread snapshotter_;
};

}  // namespace tioga2::storage

#endif  // TIOGA2_STORAGE_STORAGE_ENGINE_H_
