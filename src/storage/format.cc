#include "storage/format.h"

#include <array>
#include <cstring>

#include "db/columnar.h"
#include "db/schema.h"

namespace tioga2::storage {

using types::DataType;
using types::Value;

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

// Cell tags for the self-describing value codec. Stable on-disk constants:
// never renumber (old WALs must stay readable).
enum CellTag : uint8_t {
  kTagNull = 0,
  kTagBool = 1,
  kTagInt = 2,
  kTagFloat = 3,
  kTagString = 4,
  kTagDate = 5,
};

}  // namespace

uint32_t Crc32(std::string_view data, uint32_t seed) {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (char ch : data) {
    crc = table[(crc ^ static_cast<uint8_t>(ch)) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

uint64_t Hash64(std::string_view data) {
  uint64_t hash = 1469598103934665603ULL;
  for (char ch : data) {
    hash ^= static_cast<uint8_t>(ch);
    hash *= 1099511628211ULL;
  }
  return hash;
}

Status Decoder::GetFixed(void* out, size_t n) {
  if (remaining() < n) {
    return Status::ParseError("truncated payload: want " + std::to_string(n) +
                              " bytes, have " + std::to_string(remaining()));
  }
  std::memcpy(out, data_.data() + pos_, n);
  pos_ += n;
  return Status::OK();
}

Result<uint8_t> Decoder::GetU8() {
  uint8_t v;
  TIOGA2_RETURN_IF_ERROR(GetFixed(&v, sizeof(v)));
  return v;
}

Result<uint32_t> Decoder::GetU32() {
  uint32_t v;
  TIOGA2_RETURN_IF_ERROR(GetFixed(&v, sizeof(v)));
  return v;
}

Result<uint64_t> Decoder::GetU64() {
  uint64_t v;
  TIOGA2_RETURN_IF_ERROR(GetFixed(&v, sizeof(v)));
  return v;
}

Result<int64_t> Decoder::GetI64() {
  int64_t v;
  TIOGA2_RETURN_IF_ERROR(GetFixed(&v, sizeof(v)));
  return v;
}

Result<double> Decoder::GetDouble() {
  double v;
  TIOGA2_RETURN_IF_ERROR(GetFixed(&v, sizeof(v)));
  return v;
}

Result<std::string> Decoder::GetString() {
  TIOGA2_ASSIGN_OR_RETURN(uint32_t length, GetU32());
  if (remaining() < length) {
    return Status::ParseError("truncated string: want " + std::to_string(length) +
                              " bytes, have " + std::to_string(remaining()));
  }
  std::string out(data_.substr(pos_, length));
  pos_ += length;
  return out;
}

void AppendFrame(std::string_view payload, std::string* out) {
  uint32_t length = static_cast<uint32_t>(payload.size());
  uint32_t crc = Crc32(payload);
  out->append(reinterpret_cast<const char*>(&length), sizeof(length));
  out->append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  out->append(payload.data(), payload.size());
}

Result<std::string_view> ReadFrame(std::string_view data, size_t* offset) {
  if (data.size() - *offset < 8) {
    return Status::OutOfRange("torn frame header");
  }
  uint32_t length, crc;
  std::memcpy(&length, data.data() + *offset, sizeof(length));
  std::memcpy(&crc, data.data() + *offset + 4, sizeof(crc));
  if (data.size() - *offset - 8 < length) {
    return Status::OutOfRange("torn frame payload: header promises " +
                              std::to_string(length) + " bytes, " +
                              std::to_string(data.size() - *offset - 8) + " remain");
  }
  std::string_view payload = data.substr(*offset + 8, length);
  if (Crc32(payload) != crc) {
    return Status::ParseError("frame CRC mismatch at offset " +
                              std::to_string(*offset));
  }
  *offset += FrameSize(length);
  return payload;
}

Status EncodeValue(const Value& value, Encoder* enc) {
  if (value.is_null()) {
    enc->PutU8(kTagNull);
    return Status::OK();
  }
  switch (value.type()) {
    case DataType::kBool:
      enc->PutU8(kTagBool);
      enc->PutU8(value.bool_value() ? 1 : 0);
      return Status::OK();
    case DataType::kInt:
      enc->PutU8(kTagInt);
      enc->PutI64(value.int_value());
      return Status::OK();
    case DataType::kFloat:
      enc->PutU8(kTagFloat);
      enc->PutDouble(value.float_value());
      return Status::OK();
    case DataType::kString:
      enc->PutU8(kTagString);
      enc->PutString(value.string_value());
      return Status::OK();
    case DataType::kDate:
      enc->PutU8(kTagDate);
      enc->PutI64(value.date_value().DaysValue());
      return Status::OK();
    case DataType::kDisplay:
      return Status::InvalidArgument(
          "display values are computed, never persisted (§5.1)");
  }
  return Status::Internal("unhandled type in EncodeValue");
}

Result<Value> DecodeValue(Decoder* dec) {
  TIOGA2_ASSIGN_OR_RETURN(uint8_t tag, dec->GetU8());
  switch (tag) {
    case kTagNull:
      return Value::Null();
    case kTagBool: {
      TIOGA2_ASSIGN_OR_RETURN(uint8_t v, dec->GetU8());
      return Value::Bool(v != 0);
    }
    case kTagInt: {
      TIOGA2_ASSIGN_OR_RETURN(int64_t v, dec->GetI64());
      return Value::Int(v);
    }
    case kTagFloat: {
      TIOGA2_ASSIGN_OR_RETURN(double v, dec->GetDouble());
      return Value::Float(v);
    }
    case kTagString: {
      TIOGA2_ASSIGN_OR_RETURN(std::string v, dec->GetString());
      return Value::String(std::move(v));
    }
    case kTagDate: {
      TIOGA2_ASSIGN_OR_RETURN(int64_t days, dec->GetI64());
      return Value::DateVal(types::Date(days));
    }
    default:
      return Status::ParseError("unknown cell tag " + std::to_string(tag));
  }
}

Status EncodeTuple(const db::Tuple& tuple, Encoder* enc) {
  enc->PutU32(static_cast<uint32_t>(tuple.size()));
  for (const Value& cell : tuple) {
    TIOGA2_RETURN_IF_ERROR(EncodeValue(cell, enc));
  }
  return Status::OK();
}

Result<db::Tuple> DecodeTuple(Decoder* dec) {
  TIOGA2_ASSIGN_OR_RETURN(uint32_t arity, dec->GetU32());
  db::Tuple tuple;
  tuple.reserve(arity);
  for (uint32_t c = 0; c < arity; ++c) {
    TIOGA2_ASSIGN_OR_RETURN(Value v, DecodeValue(dec));
    tuple.push_back(std::move(v));
  }
  return tuple;
}

Status EncodeRelation(const db::Relation& relation, Encoder* enc) {
  const db::Schema& schema = *relation.schema();
  enc->PutU32(static_cast<uint32_t>(schema.num_columns()));
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (schema.column(c).type == DataType::kDisplay) {
      return Status::InvalidArgument("display column '" + schema.column(c).name +
                                     "' cannot be persisted");
    }
    enc->PutString(schema.column(c).name);
    enc->PutU8(static_cast<uint8_t>(schema.column(c).type));
  }
  const size_t num_rows = relation.num_rows();
  enc->PutU64(num_rows);
  const size_t null_words = (num_rows + 63) / 64;
  const db::ColumnarTable& columnar = relation.columnar();
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    const db::ColumnVector& col = columnar.column(c);
    enc->PutU8(col.has_nulls() ? 1 : 0);
    if (col.has_nulls()) {
      for (size_t w = 0; w < null_words; ++w) enc->PutU64(col.null_bits[w]);
    }
    switch (col.type) {
      case DataType::kBool:
        for (size_t r = 0; r < num_rows; ++r) enc->PutU8(col.bools[r]);
        break;
      case DataType::kInt:
        for (size_t r = 0; r < num_rows; ++r) enc->PutI64(col.ints[r]);
        break;
      case DataType::kFloat:
        for (size_t r = 0; r < num_rows; ++r) enc->PutDouble(col.floats[r]);
        break;
      case DataType::kString:
        for (size_t r = 0; r < num_rows; ++r) enc->PutString(col.strings[r]);
        break;
      case DataType::kDate:
        for (size_t r = 0; r < num_rows; ++r) enc->PutI64(col.dates[r]);
        break;
      case DataType::kDisplay:
        return Status::Internal("display column survived the schema check");
    }
  }
  return Status::OK();
}

Result<db::RelationPtr> DecodeRelation(Decoder* dec) {
  TIOGA2_ASSIGN_OR_RETURN(uint32_t num_columns, dec->GetU32());
  std::vector<db::Column> columns;
  columns.reserve(num_columns);
  for (uint32_t c = 0; c < num_columns; ++c) {
    TIOGA2_ASSIGN_OR_RETURN(std::string name, dec->GetString());
    TIOGA2_ASSIGN_OR_RETURN(uint8_t type_byte, dec->GetU8());
    if (type_byte > static_cast<uint8_t>(DataType::kDisplay)) {
      return Status::ParseError("unknown column type " + std::to_string(type_byte));
    }
    columns.push_back(db::Column{std::move(name), static_cast<DataType>(type_byte)});
  }
  TIOGA2_ASSIGN_OR_RETURN(db::Schema schema, db::Schema::Make(std::move(columns)));
  auto schema_ptr = std::make_shared<const db::Schema>(std::move(schema));
  TIOGA2_ASSIGN_OR_RETURN(uint64_t num_rows, dec->GetU64());
  const size_t null_words = (num_rows + 63) / 64;

  // Decode into per-column tuples-in-waiting: a column-major pass that
  // builds the row-major tuple store the Relation wants.
  std::vector<db::Tuple> rows(num_rows);
  for (db::Tuple& row : rows) row.resize(schema_ptr->num_columns());
  std::vector<uint64_t> nulls;
  for (size_t c = 0; c < schema_ptr->num_columns(); ++c) {
    TIOGA2_ASSIGN_OR_RETURN(uint8_t has_nulls, dec->GetU8());
    nulls.clear();
    if (has_nulls != 0) {
      nulls.reserve(null_words);
      for (size_t w = 0; w < null_words; ++w) {
        TIOGA2_ASSIGN_OR_RETURN(uint64_t word, dec->GetU64());
        nulls.push_back(word);
      }
    }
    auto is_null = [&](size_t r) {
      return !nulls.empty() && ((nulls[r >> 6] >> (r & 63)) & 1) != 0;
    };
    const DataType type = schema_ptr->column(c).type;
    for (size_t r = 0; r < num_rows; ++r) {
      Value v;
      switch (type) {
        case DataType::kBool: {
          TIOGA2_ASSIGN_OR_RETURN(uint8_t b, dec->GetU8());
          v = Value::Bool(b != 0);
          break;
        }
        case DataType::kInt: {
          TIOGA2_ASSIGN_OR_RETURN(int64_t i, dec->GetI64());
          v = Value::Int(i);
          break;
        }
        case DataType::kFloat: {
          TIOGA2_ASSIGN_OR_RETURN(double f, dec->GetDouble());
          v = Value::Float(f);
          break;
        }
        case DataType::kString: {
          TIOGA2_ASSIGN_OR_RETURN(std::string s, dec->GetString());
          v = Value::String(std::move(s));
          break;
        }
        case DataType::kDate: {
          TIOGA2_ASSIGN_OR_RETURN(int64_t days, dec->GetI64());
          v = Value::DateVal(types::Date(days));
          break;
        }
        case DataType::kDisplay:
          return Status::ParseError("display column in persisted relation");
      }
      rows[r][c] = is_null(r) ? Value::Null() : std::move(v);
    }
  }
  db::RelationBuilder builder(schema_ptr);
  builder.Reserve(num_rows);
  // Unchecked: types are correct by construction of the decode loop above.
  for (db::Tuple& row : rows) builder.AddRowUnchecked(std::move(row));
  return builder.Build();
}

Result<uint64_t> FingerprintRelation(const db::Relation& relation) {
  Encoder enc;
  TIOGA2_RETURN_IF_ERROR(EncodeRelation(relation, &enc));
  return Hash64(enc.data());
}

}  // namespace tioga2::storage
