#include "storage/storage_metrics.h"

namespace tioga2::storage {

StorageMetrics& StorageMetrics::Global() {
  static StorageMetrics metrics;
  return metrics;
}

void StorageMetrics::Reset() {
  wal_records = 0;
  wal_bytes = 0;
  wal_fsyncs = 0;
  wal_group_commits = 0;
  wal_rotations = 0;
  wal_segments_truncated = 0;
  snapshots_written = 0;
  snapshot_bytes = 0;
  snapshot_us_last = 0;
  recovery_us_last = 0;
  recovery_records_replayed = 0;
}

}  // namespace tioga2::storage
