#ifndef TIOGA2_STORAGE_WAL_H_
#define TIOGA2_STORAGE_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "storage/fs.h"

namespace tioga2::storage {

/// How hard an Append pushes each record toward the platter. The policy
/// names the durability/latency trade documented in DESIGN.md
/// ("Persistence and recovery" — durability policy table).
enum class Durability {
  /// Process-buffered only. Flushed on rotation, Sync() and Close(); a
  /// crash can lose everything since the last flush. Cheapest.
  kNone,
  /// The writer thread flushes to the OS after every N records; a process
  /// crash loses at most N-1 records, a machine crash loses whatever the
  /// kernel had not written back. The interactive default.
  kFlushEveryN,
  /// Append returns only after the record is fsynced. With group_commit a
  /// burst of concurrent appends shares one fsync (the classic group-commit
  /// amortization); without it every record pays its own.
  kFsyncEachRecord,
};

struct WalOptions {
  Durability durability = Durability::kFlushEveryN;
  /// kFlushEveryN: flush after this many records.
  size_t flush_every_n = 64;
  /// kFsyncEachRecord: batch every record queued at fsync time into one
  /// write+fsync instead of one fsync per record.
  bool group_commit = true;
  /// Start a new segment file once the active one exceeds this.
  size_t rotate_bytes = 8u << 20;
};

/// A length-prefixed, CRC-framed, segmented write-ahead log with a
/// dedicated writer thread.
///
/// Threading: Append may be called from any thread; it assigns the record
/// its LSN, enqueues the encoded frame, and — only under kFsyncEachRecord —
/// blocks until the writer thread reports the record durable. All file I/O
/// (including rotation) happens on the writer thread, so the interactive
/// path never waits on the disk under kNone/kFlushEveryN (the "persistence
/// off the hot path" requirement from PAPERS.md "Optimizing Dataflow
/// Systems").
///
/// On-disk layout: segments named wal-<first_lsn>.t2w, each a sequence of
/// frames [u32 len][u32 crc][u64 lsn][payload]. LSNs are dense across
/// segments. Readers tolerate a torn final frame (the expected crash state)
/// and stop at the first CRC mismatch.
class Wal {
 public:
  Wal(Fs* fs, std::string dir, WalOptions options);
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Scans `dir` for existing segments (recovery has already read them),
  /// positions next_lsn after the last valid record, and starts the writer
  /// thread appending into a fresh segment. Existing segments whose first
  /// LSN is at or past `next_lsn` hold no valid records (by the contract
  /// above) and are deleted — left in place they would alias the fresh
  /// active segment.
  Status Open(uint64_t next_lsn);

  /// Appends one record; returns its LSN. Blocking per the policy above.
  Result<uint64_t> Append(std::string payload);

  /// Blocks until every record appended so far is flushed and fsynced.
  Status Sync();

  /// Drains, syncs, and stops the writer thread. Idempotent.
  Status Close();

  /// Deletes whole segments whose records all have lsn <= `lsn` (rotating
  /// first if the active segment qualifies). Called after a snapshot has
  /// made those records redundant.
  Status TruncateThrough(uint64_t lsn);

  /// The LSN the next Append will receive.
  uint64_t next_lsn() const;

  /// Highest LSN known fsynced.
  uint64_t durable_lsn() const;

  struct Record {
    uint64_t lsn = 0;
    std::string payload;
  };

  struct ReadResult {
    std::vector<Record> records;  // ascending lsn, > after_lsn
    /// Bytes of torn tail discarded from the last segment read (0 when the
    /// log ends cleanly).
    size_t torn_bytes = 0;
    /// True when a CRC mismatch (not a torn tail) ended the scan —
    /// corruption rather than a crash.
    bool corrupt = false;
    /// When corrupt: the segment (file name, not path) holding the first
    /// unreadable frame, and the byte length of that segment's readable
    /// prefix — what recovery needs to cut the log back to a writable
    /// state (see StorageEngine's quarantine step).
    std::string corrupt_segment;
    size_t corrupt_prefix = 0;
  };

  /// Reads every record with lsn > `after_lsn` from the segments in `dir`,
  /// in order. Stops (without error) at a torn final record; a CRC mismatch
  /// also stops the scan and is reported via `corrupt`. Static: recovery
  /// reads before any Wal instance exists.
  static Result<ReadResult> ReadAll(Fs* fs, const std::string& dir,
                                    uint64_t after_lsn);

  /// Segment file names in `dir`, ascending by first LSN.
  static Result<std::vector<std::string>> ListSegments(Fs* fs,
                                                       const std::string& dir);

 private:
  struct Segment {
    std::string path;
    uint64_t first_lsn = 0;
  };

  /// Writer-thread main loop: drain the queue, write frames, apply the
  /// durability policy, rotate oversized segments.
  void WriterLoop();
  /// Writes a batch of frames to the active segment (writer thread or
  /// Close; file_mu_ held).
  Status WriteBatch(const std::vector<std::pair<uint64_t, std::string>>& batch);
  Status OpenSegmentLocked(uint64_t first_lsn);
  static std::string SegmentName(uint64_t first_lsn);
  static bool ParseSegmentName(const std::string& name, uint64_t* first_lsn);

  Fs* fs_;
  std::string dir_;
  WalOptions options_;

  // Queue state (producers <-> writer thread).
  mutable std::mutex mu_;
  std::condition_variable queue_cv_;    // signals the writer: work or stop
  std::condition_variable durable_cv_;  // signals producers: durable_lsn_ advanced
  std::deque<std::pair<uint64_t, std::string>> queue_;  // (lsn, frame)
  uint64_t next_lsn_ = 1;
  uint64_t appended_lsn_ = 0;   // highest lsn handed to the writer
  /// Highest lsn written to the file, mirrored from file_written_lsn_ by the
  /// writer after each batch. May briefly lag file_written_lsn_ (the writer
  /// releases file_mu_ before taking mu_); on-file decisions — rotation,
  /// truncation — must read file_written_lsn_ under file_mu_ instead.
  uint64_t written_lsn_ = 0;
  uint64_t durable_lsn_ = 0;    // highest lsn fsynced
  bool stop_ = false;
  bool open_ = false;
  Status writer_error_;  // first I/O error; Append/Sync report it

  // File state (writer thread and TruncateThrough).
  std::mutex file_mu_;
  std::unique_ptr<WritableFile> active_file_;
  std::vector<Segment> segments_;  // ascending; back() is active
  /// Highest lsn whose frame was successfully appended to a segment — the
  /// authoritative on-file high-water mark (updated inside WriteBatch, so
  /// never ahead of nor behind the actual file contents).
  uint64_t file_written_lsn_ = 0;
  size_t active_bytes_ = 0;
  size_t records_since_flush_ = 0;

  std::thread writer_;
};

}  // namespace tioga2::storage

#endif  // TIOGA2_STORAGE_WAL_H_
