#ifndef TIOGA2_STORAGE_STORAGE_METRICS_H_
#define TIOGA2_STORAGE_STORAGE_METRICS_H_

#include <atomic>
#include <cstdint>

namespace tioga2::storage {

/// Process-wide persistence counters, surfaced through
/// runtime::Metrics::ToJson under "storage" (the same Global() pattern as
/// expr::BatchMetrics: the storage layer cannot depend on runtime, so
/// runtime pulls from here at snapshot time). Counters are atomic: the WAL
/// writer thread, the background snapshotter, and recovery all record
/// concurrently with readers.
struct StorageMetrics {
  std::atomic<uint64_t> wal_records{0};
  std::atomic<uint64_t> wal_bytes{0};
  std::atomic<uint64_t> wal_fsyncs{0};
  /// Fsync batches that made more than one record durable (the group-commit
  /// win: records per fsync = wal_records / max(1, wal_fsyncs)).
  std::atomic<uint64_t> wal_group_commits{0};
  std::atomic<uint64_t> wal_rotations{0};
  std::atomic<uint64_t> wal_segments_truncated{0};
  std::atomic<uint64_t> snapshots_written{0};
  std::atomic<uint64_t> snapshot_bytes{0};
  /// Duration of the most recent snapshot / recovery, microseconds.
  std::atomic<uint64_t> snapshot_us_last{0};
  std::atomic<uint64_t> recovery_us_last{0};
  std::atomic<uint64_t> recovery_records_replayed{0};

  static StorageMetrics& Global();
  void Reset();
};

}  // namespace tioga2::storage

#endif  // TIOGA2_STORAGE_STORAGE_METRICS_H_
