#include "storage/fs.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

namespace tioga2::storage {

namespace {

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::IOError(what + " '" + path + "': " + std::strerror(errno));
}

/// stdio-backed writable file: Append buffers in the FILE*, Flush is
/// fflush, Sync is fflush + fsync(fileno).
class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Append(std::string_view data) override {
    if (file_ == nullptr) return Status::IOError("append to closed file " + path_);
    if (std::fwrite(data.data(), 1, data.size(), file_) != data.size()) {
      return ErrnoStatus("write to", path_);
    }
    return Status::OK();
  }

  Status Flush() override {
    if (file_ == nullptr) return Status::IOError("flush of closed file " + path_);
    if (std::fflush(file_) != 0) return ErrnoStatus("flush of", path_);
    return Status::OK();
  }

  Status Sync() override {
    TIOGA2_RETURN_IF_ERROR(Flush());
    if (::fsync(::fileno(file_)) != 0) return ErrnoStatus("fsync of", path_);
    return Status::OK();
  }

  Status Close() override {
    if (file_ == nullptr) return Status::OK();
    int rc = std::fclose(file_);
    file_ = nullptr;
    if (rc != 0) return ErrnoStatus("close of", path_);
    return Status::OK();
  }

 private:
  std::FILE* file_;
  std::string path_;
};

class PosixFs : public Fs {
 public:
  Result<std::unique_ptr<WritableFile>> OpenWritable(
      const std::string& path) override {
    std::FILE* file = std::fopen(path.c_str(), "wb");
    if (file == nullptr) return ErrnoStatus("cannot open", path);
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(file, path));
  }

  Result<std::string> ReadFile(const std::string& path) override {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::IOError("cannot open '" + path + "' for reading");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad()) return Status::IOError("read of '" + path + "' failed");
    return buffer.str();
  }

  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    std::vector<std::string> names;
    std::error_code ec;
    std::filesystem::directory_iterator it(dir, ec);
    if (ec) {
      if (ec == std::errc::no_such_file_or_directory) return names;
      return Status::IOError("cannot list '" + dir + "': " + ec.message());
    }
    for (const auto& entry : it) {
      names.push_back(entry.path().filename().string());
    }
    std::sort(names.begin(), names.end());
    return names;
  }

  Status CreateDirs(const std::string& dir) override {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) return Status::IOError("cannot create '" + dir + "': " + ec.message());
    return Status::OK();
  }

  Status Remove(const std::string& path) override {
    std::error_code ec;
    if (!std::filesystem::remove(path, ec) || ec) {
      return Status::IOError("cannot remove '" + path + "'" +
                             (ec ? ": " + ec.message() : ""));
    }
    return Status::OK();
  }

  Status Rename(const std::string& from, const std::string& to) override {
    std::error_code ec;
    std::filesystem::rename(from, to, ec);
    if (ec) {
      return Status::IOError("cannot rename '" + from + "' to '" + to +
                             "': " + ec.message());
    }
    return Status::OK();
  }

  bool Exists(const std::string& path) override {
    std::error_code ec;
    return std::filesystem::exists(path, ec);
  }
};

}  // namespace

Fs* Fs::Default() {
  static PosixFs fs;
  return &fs;
}

}  // namespace tioga2::storage
