#ifndef TIOGA2_STORAGE_SNAPSHOT_H_
#define TIOGA2_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "db/relation.h"
#include "storage/fs.h"

namespace tioga2::storage {

/// Everything a snapshot captures: a consistent image of the catalog plus
/// the WAL position it covers. Recovery = newest readable snapshot + replay
/// of records with lsn > last_lsn.
struct SnapshotTable {
  std::string name;
  db::RelationPtr relation;
  /// The Catalog version at capture time. Restored exactly: TableBox's
  /// CacheSalt is the version, so memo stamps after recovery are only
  /// byte-identical if versions are.
  uint64_t version = 1;
  /// Hash64 over the relation's columnar encoding; verified on load.
  uint64_t fingerprint = 0;
};

struct SnapshotContents {
  /// Monotonic snapshot number — also the file name (snapshot-<seq>.t2s).
  uint64_t seq = 0;
  /// Highest LSN whose effects this snapshot includes.
  uint64_t last_lsn = 0;
  std::vector<SnapshotTable> tables;
  std::vector<std::pair<std::string, std::string>> programs;  // name -> text
  /// Version floors (see Catalog): persisted so drop/recreate stays
  /// monotonic across restarts too.
  std::vector<std::pair<std::string, uint64_t>> version_floors;
};

/// File name for snapshot number `seq` (zero-padded so the sorted directory
/// listing is in sequence order).
std::string SnapshotName(uint64_t seq);

/// Writes `contents` to dir/snapshot-<seq>.t2s atomically: everything goes
/// to a .tmp file first, is fsynced, and only then renamed into place — a
/// crash mid-snapshot leaves at worst a stale .tmp, never a half-readable
/// snapshot under the real name. Returns bytes written.
Result<uint64_t> WriteSnapshot(Fs* fs, const std::string& dir,
                               const SnapshotContents& contents);

/// Reads and fully validates one snapshot file: every frame's CRC, every
/// table's content fingerprint, and the trailing END marker (its absence
/// means the writer died before the rename — or the file was truncated —
/// and the snapshot must not be trusted).
Result<SnapshotContents> ReadSnapshot(Fs* fs, const std::string& path);

/// Snapshots present in `dir` as (seq, file name), ascending by seq.
Result<std::vector<std::pair<uint64_t, std::string>>> ListSnapshots(
    Fs* fs, const std::string& dir);

}  // namespace tioga2::storage

#endif  // TIOGA2_STORAGE_SNAPSHOT_H_
