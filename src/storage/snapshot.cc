#include "storage/snapshot.h"

#include <cinttypes>
#include <cstdio>

#include "storage/format.h"
#include "storage/storage_metrics.h"

namespace tioga2::storage {

namespace {

// Stable on-disk constants: never renumber.
constexpr uint32_t kSnapshotMagic = 0x54325331;  // "T2S1"
constexpr uint32_t kSnapshotVersion = 1;

enum FrameKind : uint8_t {
  kFrameHeader = 1,
  kFrameTable = 2,
  kFrameProgram = 3,
  kFrameFloor = 4,
  kFrameEnd = 5,
};

bool ParseSnapshotName(const std::string& name, uint64_t* seq) {
  // snapshot-<20 digits>.t2s
  if (name.size() != 9 + 20 + 4) return false;
  if (name.rfind("snapshot-", 0) != 0 || name.substr(29) != ".t2s") return false;
  uint64_t value = 0;
  for (size_t i = 9; i < 29; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *seq = value;
  return true;
}

}  // namespace

std::string SnapshotName(uint64_t seq) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "snapshot-%020" PRIu64 ".t2s", seq);
  return buf;
}

Result<uint64_t> WriteSnapshot(Fs* fs, const std::string& dir,
                               const SnapshotContents& contents) {
  TIOGA2_RETURN_IF_ERROR(fs->CreateDirs(dir));
  std::string file_data;
  {
    Encoder header;
    header.PutU8(kFrameHeader);
    header.PutU32(kSnapshotMagic);
    header.PutU32(kSnapshotVersion);
    header.PutU64(contents.seq);
    header.PutU64(contents.last_lsn);
    header.PutU32(static_cast<uint32_t>(contents.tables.size()));
    header.PutU32(static_cast<uint32_t>(contents.programs.size()));
    header.PutU32(static_cast<uint32_t>(contents.version_floors.size()));
    AppendFrame(header.data(), &file_data);
  }
  for (const SnapshotTable& table : contents.tables) {
    Encoder enc;
    enc.PutU8(kFrameTable);
    enc.PutString(table.name);
    enc.PutU64(table.version);
    Encoder rel;
    TIOGA2_RETURN_IF_ERROR(EncodeRelation(*table.relation, &rel));
    enc.PutU64(Hash64(rel.data()));
    enc.PutRaw(rel.data());
    AppendFrame(enc.data(), &file_data);
  }
  for (const auto& [name, text] : contents.programs) {
    Encoder enc;
    enc.PutU8(kFrameProgram);
    enc.PutString(name);
    enc.PutString(text);
    AppendFrame(enc.data(), &file_data);
  }
  for (const auto& [name, floor] : contents.version_floors) {
    Encoder enc;
    enc.PutU8(kFrameFloor);
    enc.PutString(name);
    enc.PutU64(floor);
    AppendFrame(enc.data(), &file_data);
  }
  {
    Encoder end;
    end.PutU8(kFrameEnd);
    end.PutU32(kSnapshotMagic);
    AppendFrame(end.data(), &file_data);
  }

  const std::string path = dir + "/" + SnapshotName(contents.seq);
  const std::string tmp = path + ".tmp";
  TIOGA2_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                          fs->OpenWritable(tmp));
  TIOGA2_RETURN_IF_ERROR(file->Append(file_data));
  TIOGA2_RETURN_IF_ERROR(file->Sync());
  TIOGA2_RETURN_IF_ERROR(file->Close());
  TIOGA2_RETURN_IF_ERROR(fs->Rename(tmp, path));
  StorageMetrics::Global().snapshots_written.fetch_add(
      1, std::memory_order_relaxed);
  StorageMetrics::Global().snapshot_bytes.fetch_add(
      file_data.size(), std::memory_order_relaxed);
  return static_cast<uint64_t>(file_data.size());
}

Result<SnapshotContents> ReadSnapshot(Fs* fs, const std::string& path) {
  TIOGA2_ASSIGN_OR_RETURN(std::string data, fs->ReadFile(path));
  size_t offset = 0;

  auto next_frame = [&]() -> Result<std::string_view> {
    Result<std::string_view> frame = ReadFrame(data, &offset);
    if (!frame.ok() && frame.status().IsOutOfRange()) {
      // A truncated snapshot is corruption, not a tolerable torn tail:
      // the writer only renames complete files into place.
      return Status::ParseError("snapshot truncated: " + path);
    }
    return frame;
  };

  SnapshotContents contents;
  TIOGA2_ASSIGN_OR_RETURN(std::string_view header_frame, next_frame());
  Decoder header(header_frame);
  TIOGA2_ASSIGN_OR_RETURN(uint8_t kind, header.GetU8());
  if (kind != kFrameHeader) {
    return Status::ParseError("snapshot missing header frame: " + path);
  }
  TIOGA2_ASSIGN_OR_RETURN(uint32_t magic, header.GetU32());
  TIOGA2_ASSIGN_OR_RETURN(uint32_t version, header.GetU32());
  if (magic != kSnapshotMagic || version != kSnapshotVersion) {
    return Status::ParseError("not a tioga2 snapshot: " + path);
  }
  TIOGA2_ASSIGN_OR_RETURN(contents.seq, header.GetU64());
  TIOGA2_ASSIGN_OR_RETURN(contents.last_lsn, header.GetU64());
  TIOGA2_ASSIGN_OR_RETURN(uint32_t num_tables, header.GetU32());
  TIOGA2_ASSIGN_OR_RETURN(uint32_t num_programs, header.GetU32());
  TIOGA2_ASSIGN_OR_RETURN(uint32_t num_floors, header.GetU32());

  for (uint32_t i = 0; i < num_tables; ++i) {
    TIOGA2_ASSIGN_OR_RETURN(std::string_view frame, next_frame());
    Decoder dec(frame);
    TIOGA2_ASSIGN_OR_RETURN(uint8_t tag, dec.GetU8());
    if (tag != kFrameTable) {
      return Status::ParseError("snapshot frame out of order: " + path);
    }
    SnapshotTable table;
    TIOGA2_ASSIGN_OR_RETURN(table.name, dec.GetString());
    TIOGA2_ASSIGN_OR_RETURN(table.version, dec.GetU64());
    TIOGA2_ASSIGN_OR_RETURN(table.fingerprint, dec.GetU64());
    // The remaining bytes are exactly the relation's columnar encoding —
    // hash them before decoding and check the stored fingerprint.
    if (Hash64(dec.rest()) != table.fingerprint) {
      return Status::ParseError("snapshot table fingerprint mismatch: '" +
                                table.name + "' in " + path);
    }
    TIOGA2_ASSIGN_OR_RETURN(table.relation, DecodeRelation(&dec));
    if (!dec.done()) {
      return Status::ParseError("trailing bytes after table '" + table.name +
                                "' in " + path);
    }
    contents.tables.push_back(std::move(table));
  }
  for (uint32_t i = 0; i < num_programs; ++i) {
    TIOGA2_ASSIGN_OR_RETURN(std::string_view frame, next_frame());
    Decoder dec(frame);
    TIOGA2_ASSIGN_OR_RETURN(uint8_t tag, dec.GetU8());
    if (tag != kFrameProgram) {
      return Status::ParseError("snapshot frame out of order: " + path);
    }
    TIOGA2_ASSIGN_OR_RETURN(std::string name, dec.GetString());
    TIOGA2_ASSIGN_OR_RETURN(std::string text, dec.GetString());
    contents.programs.emplace_back(std::move(name), std::move(text));
  }
  for (uint32_t i = 0; i < num_floors; ++i) {
    TIOGA2_ASSIGN_OR_RETURN(std::string_view frame, next_frame());
    Decoder dec(frame);
    TIOGA2_ASSIGN_OR_RETURN(uint8_t tag, dec.GetU8());
    if (tag != kFrameFloor) {
      return Status::ParseError("snapshot frame out of order: " + path);
    }
    TIOGA2_ASSIGN_OR_RETURN(std::string name, dec.GetString());
    TIOGA2_ASSIGN_OR_RETURN(uint64_t floor, dec.GetU64());
    contents.version_floors.emplace_back(std::move(name), floor);
  }

  TIOGA2_ASSIGN_OR_RETURN(std::string_view end_frame, next_frame());
  Decoder end(end_frame);
  TIOGA2_ASSIGN_OR_RETURN(uint8_t end_tag, end.GetU8());
  TIOGA2_ASSIGN_OR_RETURN(uint32_t end_magic, end.GetU32());
  if (end_tag != kFrameEnd || end_magic != kSnapshotMagic) {
    return Status::ParseError("snapshot missing END marker: " + path);
  }
  if (offset != data.size()) {
    return Status::ParseError("trailing bytes after END marker: " + path);
  }
  return contents;
}

Result<std::vector<std::pair<uint64_t, std::string>>> ListSnapshots(
    Fs* fs, const std::string& dir) {
  TIOGA2_ASSIGN_OR_RETURN(std::vector<std::string> names, fs->ListDir(dir));
  std::vector<std::pair<uint64_t, std::string>> snapshots;
  for (const std::string& name : names) {
    uint64_t seq;
    if (ParseSnapshotName(name, &seq)) snapshots.emplace_back(seq, name);
  }
  // ListDir sorts lexicographically; zero-padding makes that ascending seq.
  return snapshots;
}

}  // namespace tioga2::storage
