#ifndef TIOGA2_STORAGE_RECORDS_H_
#define TIOGA2_STORAGE_RECORDS_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "db/catalog.h"
#include "db/relation.h"

namespace tioga2::storage {

/// One logical catalog mutation as logged to the WAL. The record types map
/// one-to-one onto CatalogListener callbacks; kUpdateRow is the common case
/// (every §8 direct-manipulation edit) and carries only the replaced row,
/// not the table.
// Stable on-disk constants: never renumber.
enum class WalRecordType : uint8_t {
  kUpdateRow = 1,
  kRegister = 2,
  kReplace = 3,
  kDrop = 4,
  kSaveProgram = 5,
};

struct WalRecord {
  WalRecordType type = WalRecordType::kUpdateRow;
  /// Table name, or program name for kSaveProgram.
  std::string name;
  /// The table version after the mutation — or, for kDrop, the version the
  /// table had when dropped (the floor a recreation must exceed). Replay
  /// verifies the catalog arrives at exactly this version (stamps depend on
  /// it). Zero for kSaveProgram.
  uint64_t version = 0;
  /// kUpdateRow only.
  uint64_t row = 0;
  db::Tuple new_tuple;
  /// kRegister / kReplace only.
  db::RelationPtr relation;
  /// kSaveProgram only.
  std::string program_text;
};

/// Serializes a record to the payload the Wal frames. Fails only if a
/// relation payload cannot be encoded (a display column — impossible for
/// catalog base tables).
Result<std::string> EncodeWalRecord(const WalRecord& record);

Result<WalRecord> DecodeWalRecord(std::string_view payload);

}  // namespace tioga2::storage

#endif  // TIOGA2_STORAGE_RECORDS_H_
