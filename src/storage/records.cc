#include "storage/records.h"

#include "storage/format.h"

namespace tioga2::storage {

Result<std::string> EncodeWalRecord(const WalRecord& record) {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(record.type));
  enc.PutString(record.name);
  enc.PutU64(record.version);
  switch (record.type) {
    case WalRecordType::kUpdateRow:
      enc.PutU64(record.row);
      TIOGA2_RETURN_IF_ERROR(EncodeTuple(record.new_tuple, &enc));
      break;
    case WalRecordType::kRegister:
    case WalRecordType::kReplace:
      if (record.relation == nullptr) {
        return Status::InvalidArgument("record has no relation payload");
      }
      TIOGA2_RETURN_IF_ERROR(EncodeRelation(*record.relation, &enc));
      break;
    case WalRecordType::kDrop:
      break;
    case WalRecordType::kSaveProgram:
      enc.PutString(record.program_text);
      break;
    default:
      return Status::InvalidArgument("unknown wal record type");
  }
  return enc.Take();
}

Result<WalRecord> DecodeWalRecord(std::string_view payload) {
  Decoder dec(payload);
  WalRecord record;
  TIOGA2_ASSIGN_OR_RETURN(uint8_t type, dec.GetU8());
  record.type = static_cast<WalRecordType>(type);
  TIOGA2_ASSIGN_OR_RETURN(record.name, dec.GetString());
  TIOGA2_ASSIGN_OR_RETURN(record.version, dec.GetU64());
  switch (record.type) {
    case WalRecordType::kUpdateRow: {
      TIOGA2_ASSIGN_OR_RETURN(record.row, dec.GetU64());
      TIOGA2_ASSIGN_OR_RETURN(record.new_tuple, DecodeTuple(&dec));
      break;
    }
    case WalRecordType::kRegister:
    case WalRecordType::kReplace: {
      TIOGA2_ASSIGN_OR_RETURN(record.relation, DecodeRelation(&dec));
      break;
    }
    case WalRecordType::kDrop:
      break;
    case WalRecordType::kSaveProgram: {
      TIOGA2_ASSIGN_OR_RETURN(record.program_text, dec.GetString());
      break;
    }
    default:
      return Status::ParseError("unknown wal record type " +
                                std::to_string(type));
  }
  if (!dec.done()) {
    return Status::ParseError("trailing bytes after wal record");
  }
  return record;
}

}  // namespace tioga2::storage
