#ifndef TIOGA2_STORAGE_FAULT_FS_H_
#define TIOGA2_STORAGE_FAULT_FS_H_

#include <atomic>
#include <memory>
#include <string>

#include "storage/fs.h"

namespace tioga2::storage {

/// Crash-injection filesystem: forwards to a base Fs until a byte budget is
/// exhausted, then silently truncates every further write — the on-disk
/// state is exactly the prefix a power loss at that byte would leave,
/// including a torn half-record at the cut. Sync/Flush keep reporting OK
/// after the cut (the "kernel" acks writes that never hit the platter; the
/// recovery path may not assume it was warned). Once tripped, Remove and
/// Rename become OK-reporting no-ops for the same reason: metadata
/// operations issued after the crash instant never reached the disk either,
/// so a truncated snapshot is never published and WAL segments covered only
/// by it are never deleted.
///
/// The budget is shared across all files opened through this Fs, so a cut
/// can land mid-WAL-frame, mid-snapshot-section, or between files — the
/// property test (storage_crash_test) samples all of them.
class FaultFs : public Fs {
 public:
  /// Writes beyond `byte_budget` total bytes are dropped. `base` must
  /// outlive this Fs.
  FaultFs(Fs* base, uint64_t byte_budget)
      : base_(base), remaining_(static_cast<int64_t>(byte_budget)) {}

  /// True once at least one write has been (partially) dropped.
  bool tripped() const { return tripped_.load(std::memory_order_relaxed); }

  /// Bytes of budget left (<= 0 once exhausted).
  int64_t remaining() const { return remaining_.load(std::memory_order_relaxed); }

  Result<std::unique_ptr<WritableFile>> OpenWritable(
      const std::string& path) override;
  Result<std::string> ReadFile(const std::string& path) override {
    return base_->ReadFile(path);
  }
  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    return base_->ListDir(dir);
  }
  Status CreateDirs(const std::string& dir) override {
    return base_->CreateDirs(dir);
  }
  Status Remove(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  bool Exists(const std::string& path) override { return base_->Exists(path); }

  /// Claims up to `want` bytes of budget; returns how many may be written.
  /// Called by the files this Fs opens.
  size_t Claim(size_t want);

 private:
  Fs* base_;
  std::atomic<int64_t> remaining_;
  std::atomic<bool> tripped_{false};
};

}  // namespace tioga2::storage

#endif  // TIOGA2_STORAGE_FAULT_FS_H_
