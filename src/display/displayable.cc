#include "display/displayable.h"

#include <algorithm>
#include <utility>

namespace tioga2::display {

Composite::Composite(DisplayRelation relation) {
  entries_.push_back(CompositeEntry{std::move(relation), {}});
}

size_t Composite::Dimension() const {
  size_t dimension = 0;
  for (const CompositeEntry& entry : entries_) {
    dimension = std::max(dimension, entry.relation.Dimension());
  }
  return std::max<size_t>(dimension, 2);
}

bool Composite::DimensionsMatch() const {
  for (const CompositeEntry& entry : entries_) {
    if (entry.relation.Dimension() != Dimension()) return false;
  }
  return true;
}

Composite Composite::Overlay(const Composite& other, const std::vector<double>& offset,
                             bool* dimension_mismatch) const {
  Composite combined = *this;
  for (CompositeEntry entry : other.entries_) {
    // Accumulate the overlay offset on top of any existing member offset.
    for (size_t d = 0; d < offset.size(); ++d) {
      if (entry.offset.size() <= d) entry.offset.resize(d + 1, 0.0);
      entry.offset[d] += offset[d];
    }
    combined.entries_.push_back(std::move(entry));
  }
  if (dimension_mismatch != nullptr) {
    *dimension_mismatch = !combined.DimensionsMatch();
  }
  return combined;
}

Result<Composite> Composite::Shuffle(size_t index) const {
  if (index >= entries_.size()) {
    return Status::OutOfRange("composite member " + std::to_string(index) +
                              " out of range");
  }
  Composite out = *this;
  CompositeEntry entry = std::move(out.entries_[index]);
  out.entries_.erase(out.entries_.begin() + static_cast<ptrdiff_t>(index));
  out.entries_.push_back(std::move(entry));
  return out;
}

Result<size_t> Composite::FindMember(const std::string& name) const {
  std::optional<size_t> found;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].relation.name() == name) {
      if (found.has_value()) {
        return Status::FailedPrecondition("composite has several members named '" +
                                          name + "'");
      }
      found = i;
    }
  }
  if (!found.has_value()) {
    return Status::NotFound("no composite member named '" + name + "'");
  }
  return *found;
}

Group::Group(Composite composite) { members_.push_back(std::move(composite)); }

Group::Group(std::vector<Composite> members, GroupLayout layout, size_t tabular_columns)
    : members_(std::move(members)),
      layout_(layout),
      tabular_columns_(tabular_columns == 0 ? 1 : tabular_columns) {}

std::pair<size_t, size_t> Group::CellOf(size_t index) const {
  switch (layout_) {
    case GroupLayout::kHorizontal:
      return {0, index};
    case GroupLayout::kVertical:
      return {index, 0};
    case GroupLayout::kTabular:
      return {index / tabular_columns_, index % tabular_columns_};
  }
  return {0, index};
}

std::pair<size_t, size_t> Group::GridShape() const {
  if (members_.empty()) return {0, 0};
  switch (layout_) {
    case GroupLayout::kHorizontal:
      return {1, members_.size()};
    case GroupLayout::kVertical:
      return {members_.size(), 1};
    case GroupLayout::kTabular: {
      size_t columns = std::min(tabular_columns_, members_.size());
      size_t rows = (members_.size() + tabular_columns_ - 1) / tabular_columns_;
      return {rows, columns};
    }
  }
  return {1, members_.size()};
}

Result<Composite> AsComposite(const Displayable& displayable) {
  if (std::holds_alternative<DisplayRelation>(displayable)) {
    return Composite(std::get<DisplayRelation>(displayable));
  }
  if (std::holds_alternative<Composite>(displayable)) {
    return std::get<Composite>(displayable);
  }
  const Group& group = std::get<Group>(displayable);
  if (group.size() == 1) return group.members()[0];
  return Status::FailedPrecondition(
      "a group of " + std::to_string(group.size()) +
      " composites cannot be used as a composite; select one member first");
}

Group AsGroup(const Displayable& displayable) {
  if (std::holds_alternative<Group>(displayable)) return std::get<Group>(displayable);
  if (std::holds_alternative<Composite>(displayable)) {
    return Group(std::get<Composite>(displayable));
  }
  return Group(Composite(std::get<DisplayRelation>(displayable)));
}

Result<DisplayRelation> AsRelation(const Displayable& displayable) {
  if (std::holds_alternative<DisplayRelation>(displayable)) {
    return std::get<DisplayRelation>(displayable);
  }
  TIOGA2_ASSIGN_OR_RETURN(Composite composite, AsComposite(displayable));
  if (composite.size() == 1 && composite.entries()[0].offset.empty()) {
    return composite.entries()[0].relation;
  }
  if (composite.size() == 1) return composite.entries()[0].relation;
  return Status::FailedPrecondition(
      "a composite of " + std::to_string(composite.size()) +
      " relations cannot be used as a relation; select one member first");
}

std::string DisplayableKindName(const Displayable& displayable) {
  if (std::holds_alternative<DisplayRelation>(displayable)) return "relation";
  if (std::holds_alternative<Composite>(displayable)) return "composite";
  return "group";
}

}  // namespace tioga2::display
