#ifndef TIOGA2_DISPLAY_DISPLAYABLE_H_
#define TIOGA2_DISPLAY_DISPLAYABLE_H_

#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "display/display_relation.h"

namespace tioga2::display {

/// One member of a composite: an extended relation plus the n-dimensional
/// offset applied to its locations ("the relative position of one overlay to
/// another may be given by an explicit n-dimensional offset", §6.1). The
/// offset vector may be shorter than the relation's dimension; missing
/// entries are zero.
struct CompositeEntry {
  DisplayRelation relation;
  std::vector<double> offset;

  /// Offset along dimension `dim` (0 when unspecified).
  double OffsetAt(size_t dim) const { return dim < offset.size() ? offset[dim] : 0.0; }
};

/// The displayable type C of §2: an overlay of relations sharing a viewing
/// space. "The viewer renders each of the relations in order on the canvas;
/// thus, the order of the relations specifies the drawing order."
class Composite {
 public:
  Composite() = default;

  /// A composite of one relation — the R = Composite(R) equivalence of §2.
  explicit Composite(DisplayRelation relation);

  const std::vector<CompositeEntry>& entries() const { return entries_; }
  std::vector<CompositeEntry>& mutable_entries() { return entries_; }
  size_t size() const { return entries_.size(); }

  /// The composite's dimension: the maximum member dimension. Members with
  /// fewer dimensions are "treated as invariant in the extra dimensions"
  /// (§6.1) — the Louisiana map stays put while the Altitude slider moves.
  size_t Dimension() const;

  /// True iff all members have equal dimension; Overlay warns otherwise.
  bool DimensionsMatch() const;

  /// Overlays `other` on top of this composite (drawn later, hence above),
  /// shifting it by `offset`. Returns the combined composite and sets
  /// `*dimension_mismatch` when the §6.1 warning applies.
  Composite Overlay(const Composite& other, const std::vector<double>& offset,
                    bool* dimension_mismatch = nullptr) const;

  /// Shuffle (§6.1): moves member `index` to the top of the drawing order
  /// (the end of the list, drawn last).
  Result<Composite> Shuffle(size_t index) const;

  /// Finds the (unique) member whose relation has `name`; NotFound if absent
  /// or ambiguous.
  Result<size_t> FindMember(const std::string& name) const;

 private:
  std::vector<CompositeEntry> entries_;
};

/// How a group lays out its composites (§7.3): "groups can be displayed
/// side-by-side, arranged vertically, or laid out in a tabular fashion".
enum class GroupLayout { kHorizontal, kVertical, kTabular };

/// The displayable type G of §2: composites shown side by side, each with
/// its own pan/zoom position.
class Group {
 public:
  Group() = default;

  /// The C = Group(C) equivalence of §2.
  explicit Group(Composite composite);

  Group(std::vector<Composite> members, GroupLayout layout, size_t tabular_columns = 2);

  const std::vector<Composite>& members() const { return members_; }
  std::vector<Composite>& mutable_members() { return members_; }
  size_t size() const { return members_.size(); }

  GroupLayout layout() const { return layout_; }
  void set_layout(GroupLayout layout) { layout_ = layout; }

  /// Number of columns when layout is kTabular.
  size_t tabular_columns() const { return tabular_columns_; }
  void set_tabular_columns(size_t columns) { tabular_columns_ = columns == 0 ? 1 : columns; }

  /// Grid position (row, column) of member `index` under the layout.
  std::pair<size_t, size_t> CellOf(size_t index) const;

  /// Grid extent (rows, columns) of the whole group.
  std::pair<size_t, size_t> GridShape() const;

 private:
  std::vector<Composite> members_;
  GroupLayout layout_ = GroupLayout::kHorizontal;
  size_t tabular_columns_ = 2;
};

/// Any displayable: R, C, or G (§2). The coercion helpers implement the
/// type equivalences R = Composite(R) and C = Group(C).
using Displayable = std::variant<DisplayRelation, Composite, Group>;

/// Widens any displayable to a composite; a Group input must have exactly
/// one member (otherwise the caller must select one — see ui::Session).
Result<Composite> AsComposite(const Displayable& displayable);

/// Widens any displayable to a group.
Group AsGroup(const Displayable& displayable);

/// Narrow accessor: the single relation of a trivial displayable. Fails if
/// the displayable holds more than one relation.
Result<DisplayRelation> AsRelation(const Displayable& displayable);

/// "relation" / "composite" / "group".
std::string DisplayableKindName(const Displayable& displayable);

}  // namespace tioga2::display

#endif  // TIOGA2_DISPLAY_DISPLAYABLE_H_
