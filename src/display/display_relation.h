#ifndef TIOGA2_DISPLAY_DISPLAY_RELATION_H_
#define TIOGA2_DISPLAY_DISPLAY_RELATION_H_

#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "db/exec_policy.h"
#include "db/relation.h"
#include "draw/drawable.h"
#include "expr/expr.h"

namespace tioga2::display {

/// How an attribute of an extended relation obtains its value.
enum class AttrSource {
  kStored,          // a column of the base relation
  kExpr,            // a computed attribute (a "method", §2)
  kCombine,         // Combine Displays of two other attributes (§5.3)
  kRowNumber,       // the tuple sequence number (the default y, §5.2)
  kDefaultDisplay,  // every stored field rendered side by side (§5.2)
};

/// One attribute (stored or computed) of an extended relation.
struct Attribute {
  std::string name;
  types::DataType type = types::DataType::kFloat;
  AttrSource source = AttrSource::kExpr;

  // kStored: position in the base relation's schema.
  size_t stored_index = 0;
  // kExpr: the defining expression.
  std::optional<expr::CompiledExpr> definition;
  // kCombine: names of the two combined display attributes and the offset
  // of the second relative to the first.
  std::string combine_first;
  std::string combine_second;
  double combine_dx = 0;
  double combine_dy = 0;

  // Scale/Translate Attribute (§5.3) accumulate here and apply after the
  // source value is computed: value * scale + translate (numeric only).
  double scale = 1.0;
  double translate = 0.0;
};

/// The elevation range of a displayable (§6.1 Set Range / §6.3): the
/// displayable contributes to a canvas only when the viewer's elevation is
/// inside [min, max]. Negative elevations are the canvas underside, visible
/// in rear view mirrors; the default range [0, +inf) puts a displayable on
/// the top side at every elevation ("if both are positive, then the viewer
/// only shows objects on the top side of the canvas", §6.3).
struct ElevationRange {
  double min = 0;
  double max = std::numeric_limits<double>::infinity();

  bool Contains(double elevation) const {
    return elevation >= min && elevation <= max;
  }

  friend bool operator==(const ElevationRange& a, const ElevationRange& b) = default;
};

/// An extended database relation — the displayable type R of §2. The base
/// tuples come from an immutable db::Relation; location and display
/// attributes are computed attributes layered on top ("the location and
/// display attributes used to define visualizations are computed attributes
/// and are not stored in the database", §2).
///
/// Invariants: at least two location dimensions (x and y) and exactly one
/// active display attribute. DisplayRelation is a value type: every editing
/// operation returns a modified copy, which is what gives the dataflow
/// engine's memoized boxes their snapshot semantics.
class DisplayRelation {
 public:
  DisplayRelation() = default;

  /// Wraps `base` with the §5.2 defaults: location (0, sequence-number) and
  /// a display rendering each field side by side as text.
  static Result<DisplayRelation> WithDefaults(std::string name, db::RelationPtr base);

  // ---- Introspection ----

  /// A name for elevation maps and group UIs (usually the source table).
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const db::RelationPtr& base() const { return base_; }
  size_t num_rows() const { return base_->num_rows(); }

  /// All attributes, stored first (in schema order) as built by WithDefaults.
  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Finds an attribute by name.
  const Attribute* FindAttribute(const std::string& name) const;

  /// The visualization dimension = number of location attributes (§2).
  size_t Dimension() const { return location_names_.size(); }

  /// Location attribute names in dimension order: x, y, then sliders.
  const std::vector<std::string>& location_names() const { return location_names_; }

  /// Name of the active display attribute.
  const std::string& display_name() const { return display_name_; }

  /// Names of every display-typed attribute (the active one plus the
  /// "multiple display attributes defining multiple, alternative
  /// representations" of §2).
  std::vector<std::string> AlternativeDisplays() const;

  const ElevationRange& elevation_range() const { return elevation_range_; }

  // ---- Attribute evaluation ----

  /// Evaluates attribute `name` for base row `row`. Computed attributes may
  /// reference other attributes; reference cycles are detected and reported.
  Result<types::Value> AttributeValue(size_t row, const std::string& name) const;

  /// Evaluates attribute `name` for every base row at once — the batch
  /// "method" path. Stored and expression attributes run through the
  /// expr::BatchEvaluator over the base relation's columnar view (with
  /// Scale/Translate transforms applied vectorized); combine/default-display
  /// attributes fall back to per-row evaluation. Element r is bit-identical
  /// to AttributeValue(r, name). `policy` selects scalar vs vectorized
  /// evaluation and never changes the produced values.
  Result<std::vector<types::Value>> AttributeValues(
      const std::string& name,
      const db::ExecPolicy& policy = db::DefaultExecPolicy()) const;

  /// The tuple's position in n-space: one double per location dimension.
  /// Null or non-numeric locations are an error.
  Result<std::vector<double>> LocationOf(size_t row) const;

  /// The tuple's active display list.
  Result<draw::DrawableList> DisplayOf(size_t row) const;

  // ---- Editing operations (Figure 5) ----
  // Each returns a modified copy; `this` is unchanged.

  /// Add Attribute: defines a new computed attribute from an expression over
  /// existing attributes.
  Result<DisplayRelation> AddAttribute(const std::string& name,
                                       const std::string& definition) const;

  /// Set Attribute: redefines an attribute. A stored attribute becomes
  /// computed (the stored column is shadowed).
  Result<DisplayRelation> SetAttribute(const std::string& name,
                                       const std::string& definition) const;

  /// Remove Attribute: "cannot remove attributes x, y, or display" — i.e.
  /// any designated location dimension or the active display.
  Result<DisplayRelation> RemoveAttribute(const std::string& name) const;

  /// Swap Attributes: interchanges two attributes of the same type by
  /// exchanging their names ("rotating the canvas" when both are location
  /// dimensions, switching visualization when one is the active display).
  Result<DisplayRelation> SwapAttributes(const std::string& a,
                                         const std::string& b) const;

  /// Scale Attribute: numeric only.
  Result<DisplayRelation> ScaleAttribute(const std::string& name, double factor) const;

  /// Translate Attribute: numeric only.
  Result<DisplayRelation> TranslateAttribute(const std::string& name,
                                             double delta) const;

  /// Combine Displays: a new display attribute drawing `first` then `second`
  /// offset by (dx, dy).
  Result<DisplayRelation> CombineDisplays(const std::string& new_name,
                                          const std::string& first,
                                          const std::string& second, double dx,
                                          double dy) const;

  // ---- Designation operations ----

  /// Binds location dimension `dim` (0 = x, 1 = y, 2+ = sliders) to the
  /// numeric attribute `attr`.
  Result<DisplayRelation> SetLocationAttribute(size_t dim, const std::string& attr) const;

  /// Appends a new slider dimension bound to `attr` ("adding a location
  /// attribute adds a new dimension to the visualization", §5.3).
  Result<DisplayRelation> AddLocationDimension(const std::string& attr) const;

  /// Drops slider dimension `dim` (>= 2; x and y are mandatory).
  Result<DisplayRelation> RemoveLocationDimension(size_t dim) const;

  /// Makes `attr` (display-typed) the active display.
  Result<DisplayRelation> SetDisplayAttribute(const std::string& attr) const;

  /// Set Range (§6.1): elevations at which this relation is visible.
  DisplayRelation SetElevationRange(double min, double max) const;

  // ---- Relational operations over the extended relation ----

  /// Restrict: predicate over all (stored and computed) attributes.
  /// `policy` selects scalar vs vectorized predicate evaluation; the output
  /// bytes are identical either way.
  Result<DisplayRelation> Restrict(
      const std::string& predicate,
      const db::ExecPolicy& policy = db::DefaultExecPolicy()) const;

  /// Number of base rows in [0, end) kept by `predicate` — used by the
  /// Restrict delta fast path to locate where an edited tuple lands in the
  /// output without recomputing the full restriction. Agrees exactly with
  /// Restrict's keep set (null predicate values drop the row).
  Result<size_t> CountKept(
      const std::string& predicate, size_t end,
      const db::ExecPolicy& policy = db::DefaultExecPolicy()) const;

  /// Whether `predicate` keeps base row `row`, with Restrict's exact
  /// semantics (null → dropped).
  Result<bool> KeepsRow(const std::string& predicate, size_t row) const;

  /// Project: keeps only the named stored columns. Computed attributes whose
  /// definitions reference dropped columns cause an error naming the
  /// offender.
  Result<DisplayRelation> Project(const std::vector<std::string>& columns) const;

  /// Sample: Bernoulli over base rows; computed attributes are preserved.
  Result<DisplayRelation> Sample(double probability, uint64_t seed) const;

  /// Replaces the base relation with one of identical schema (used when a
  /// §8 update installs new values).
  Result<DisplayRelation> WithBase(db::RelationPtr base) const;

  /// TypeEnv over all attributes of this relation (stored attributes resolve
  /// to stored indices; computed attributes resolve by name).
  expr::TypeEnv Env() const;

  /// Renders as a table including computed attribute values (debugging).
  std::string ToString(size_t max_rows = 10) const;

 private:
  Result<size_t> AttributeIndex(const std::string& name) const;

  std::string name_;
  db::RelationPtr base_;
  std::vector<Attribute> attributes_;
  std::vector<std::string> location_names_;
  std::string display_name_;
  ElevationRange elevation_range_;
};

}  // namespace tioga2::display

#endif  // TIOGA2_DISPLAY_DISPLAY_RELATION_H_
