#include "display/display_relation.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "db/morsel.h"
#include "db/operators.h"
#include "expr/batch.h"

namespace tioga2::display {

using types::DataType;
using types::Value;

namespace {

/// Width in world units of the default text rendering (§5.2).
constexpr double kDefaultTextHeight = 10.0;

/// Applies an attribute's accumulated Scale/Translate transform to one
/// value: identity transforms return the value untouched (preserving its
/// runtime type), anything else produces Float(v * scale + translate).
Result<Value> ApplyTransform(const Attribute& attr, Value v) {
  if (attr.scale == 1.0 && attr.translate == 0.0) return v;
  if (v.is_null()) return v;
  if (!v.is_int() && !v.is_float()) {
    return Status::TypeError("Scale/Translate applied to non-numeric attribute '" +
                             attr.name + "'");
  }
  return Value::Float(v.AsDouble() * attr.scale + attr.translate);
}

/// RowAccessor over one tuple of a DisplayRelation: stored attributes read
/// the base tuple (with Scale/Translate transforms applied), computed
/// attributes evaluate their definitions recursively with memoization and
/// cycle detection.
class DisplayRowAccessor : public expr::RowAccessor {
 public:
  DisplayRowAccessor(const DisplayRelation& relation, size_t row)
      : relation_(relation), row_(row) {}

  Result<Value> GetStored(size_t index) const override {
    if (row_ >= relation_.base()->num_rows() ||
        index >= relation_.base()->schema()->num_columns()) {
      return Status::Internal("stored attribute access out of range");
    }
    Value v = relation_.base()->at(row_, index);
    // Apply the stored column's Scale/Translate transform, if any.
    for (const Attribute& attr : relation_.attributes()) {
      if (attr.source == AttrSource::kStored && attr.stored_index == index) {
        return ApplyTransform(attr, std::move(v));
      }
    }
    return v;
  }

  Result<Value> GetNamed(const std::string& name) const override {
    auto cached = memo_.find(name);
    if (cached != memo_.end()) return cached->second;
    const Attribute* attr = relation_.FindAttribute(name);
    if (attr == nullptr) {
      return Status::NotFound("no attribute '" + name + "' on relation '" +
                              relation_.name() + "'");
    }
    if (!in_progress_.insert(name).second) {
      return Status::FailedPrecondition("attribute '" + name +
                                        "' has a cyclic definition");
    }
    Result<Value> result = EvalAttribute(*attr);
    in_progress_.erase(name);
    if (result.ok()) memo_.emplace(name, result.value());
    return result;
  }

 private:
  Result<Value> EvalAttribute(const Attribute& attr) const {
    switch (attr.source) {
      case AttrSource::kStored:
        // GetStored applies the transform itself.
        return GetStored(attr.stored_index);
      case AttrSource::kExpr: {
        TIOGA2_ASSIGN_OR_RETURN(Value v, attr.definition->Eval(*this));
        return ApplyTransform(attr, std::move(v));
      }
      case AttrSource::kCombine: {
        TIOGA2_ASSIGN_OR_RETURN(Value first, GetNamed(attr.combine_first));
        TIOGA2_ASSIGN_OR_RETURN(Value second, GetNamed(attr.combine_second));
        if (first.is_null() || second.is_null()) return Value::Null();
        if (!first.is_display() || !second.is_display()) {
          return Status::TypeError("Combine Displays needs display attributes");
        }
        return Value::Display(draw::CombineDrawableLists(
            first.display_value(), second.display_value(), attr.combine_dx,
            attr.combine_dy));
      }
      case AttrSource::kRowNumber:
        return ApplyTransform(attr, Value::Float(static_cast<double>(row_)));
      case AttrSource::kDefaultDisplay: {
        // Render each stored field side by side using its textual form —
        // the "terminal monitor" default of §5.2.
        std::vector<draw::Drawable> drawables;
        double x = 0;
        const db::Schema& schema = *relation_.base()->schema();
        for (size_t c = 0; c < schema.num_columns(); ++c) {
          std::string cell = relation_.base()->at(row_, c).ToString();
          draw::Drawable t = draw::MakeText(cell, kDefaultTextHeight);
          t.offset_x = x;
          x += 0.6 * kDefaultTextHeight * static_cast<double>(cell.size()) +
               kDefaultTextHeight;
          drawables.push_back(std::move(t));
        }
        return Value::Display(draw::MakeDrawableList(std::move(drawables)));
      }
    }
    return Status::Internal("unhandled attribute source");
  }

  const DisplayRelation& relation_;
  size_t row_;
  mutable std::unordered_map<std::string, Value> memo_;
  mutable std::unordered_set<std::string> in_progress_;
};

/// BatchSource over a DisplayRelation: stored attributes come from the base
/// relation's columnar view, with Scale/Translate transforms materialized
/// into owned float columns on first use; computed attributes fall back to
/// the per-row DisplayRowAccessor. The per-row fallback builds a fresh
/// accessor per row, so its memo does not span attributes the way the
/// scalar Restrict accessor's does — values are identical, only repeated
/// references re-evaluate.
class DisplayBatchSource : public expr::BatchSource {
 public:
  /// `relation` must outlive the source.
  explicit DisplayBatchSource(const DisplayRelation& relation) : relation_(relation) {}

  size_t num_rows() const override { return relation_.num_rows(); }

  const db::ColumnVector* StoredColumn(size_t index) const override {
    const Attribute* transform = nullptr;
    for (const Attribute& attr : relation_.attributes()) {
      if (attr.source == AttrSource::kStored && attr.stored_index == index &&
          !(attr.scale == 1.0 && attr.translate == 0.0)) {
        transform = &attr;
        break;
      }
    }
    const db::ColumnVector& base = relation_.base()->columnar().column(index);
    if (transform == nullptr) return &base;
    if (base.type != DataType::kInt && base.type != DataType::kFloat) {
      return nullptr;  // the per-row path reports the TypeError
    }
    // Morsel workers share one source so the transform materializes once:
    // the first caller builds the column under the lock, later callers reuse
    // it. The returned pointer stays stable (unique_ptr in the map).
    std::lock_guard<std::mutex> lock(transform_mu_);
    auto it = transformed_.find(index);
    if (it != transformed_.end()) return it->second.get();
    auto col = std::make_unique<db::ColumnVector>();
    col->type = DataType::kFloat;
    col->num_rows = base.num_rows;
    col->null_bits = base.null_bits;
    col->floats.resize(base.num_rows);
    for (size_t r = 0; r < base.num_rows; ++r) {
      if (base.IsNull(r)) continue;
      double v = base.type == DataType::kInt ? static_cast<double>(base.ints[r])
                                             : base.floats[r];
      col->floats[r] = v * transform->scale + transform->translate;
    }
    return transformed_.emplace(index, std::move(col)).first->second.get();
  }

  Result<Value> StoredAt(size_t index, size_t row) const override {
    DisplayRowAccessor accessor(relation_, row);
    return accessor.GetStored(index);
  }

  Result<Value> NamedAt(const std::string& name, size_t row) const override {
    DisplayRowAccessor accessor(relation_, row);
    return accessor.GetNamed(name);
  }

  const expr::ExprNode* NamedExpr(const std::string& name) const override {
    // Only plain-expression attributes with an identity transform expand as
    // vectors: ApplyTransform is the identity for them, so recursing into
    // the definition yields exactly the per-row accessor's value. Combine /
    // row-number / default-display attributes keep the per-row path.
    const Attribute* attr = relation_.FindAttribute(name);
    if (attr == nullptr || attr->source != AttrSource::kExpr ||
        !attr->definition.has_value() ||
        !(attr->scale == 1.0 && attr->translate == 0.0)) {
      return nullptr;
    }
    return &attr->definition->root();
  }

 private:
  const DisplayRelation& relation_;
  mutable std::mutex transform_mu_;
  mutable std::unordered_map<size_t, std::unique_ptr<db::ColumnVector>> transformed_;
};

}  // namespace

Result<DisplayRelation> DisplayRelation::WithDefaults(std::string name,
                                                      db::RelationPtr base) {
  if (base == nullptr) return Status::InvalidArgument("base relation must be non-null");
  DisplayRelation rel;
  rel.name_ = std::move(name);
  rel.base_ = std::move(base);
  const db::Schema& schema = *rel.base_->schema();
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    Attribute attr;
    attr.name = schema.column(c).name;
    attr.type = schema.column(c).type;
    attr.source = AttrSource::kStored;
    attr.stored_index = c;
    rel.attributes_.push_back(std::move(attr));
  }
  // Default location: x = 0, y = tuple sequence number (§5.2).
  if (schema.HasColumn("_x") || schema.HasColumn("_y") || schema.HasColumn("_display")) {
    return Status::InvalidArgument(
        "column names _x, _y, _display are reserved for defaults");
  }
  {
    Attribute x;
    x.name = "_x";
    x.type = DataType::kFloat;
    x.source = AttrSource::kExpr;
    TIOGA2_ASSIGN_OR_RETURN(x.definition, expr::CompiledExpr::Compile(
                                              "0.0", [](const std::string&) {
                                                return std::optional<expr::AttrInfo>();
                                              }));
    rel.attributes_.push_back(std::move(x));
  }
  {
    Attribute y;
    y.name = "_y";
    y.type = DataType::kFloat;
    y.source = AttrSource::kRowNumber;
    rel.attributes_.push_back(std::move(y));
  }
  {
    Attribute d;
    d.name = "_display";
    d.type = DataType::kDisplay;
    d.source = AttrSource::kDefaultDisplay;
    rel.attributes_.push_back(std::move(d));
  }
  rel.location_names_ = {"_x", "_y"};
  rel.display_name_ = "_display";
  return rel;
}

const Attribute* DisplayRelation::FindAttribute(const std::string& name) const {
  for (const Attribute& attr : attributes_) {
    if (attr.name == name) return &attr;
  }
  return nullptr;
}

Result<size_t> DisplayRelation::AttributeIndex(const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return Status::NotFound("no attribute '" + name + "' on relation '" + name_ + "'");
}

std::vector<std::string> DisplayRelation::AlternativeDisplays() const {
  std::vector<std::string> names;
  for (const Attribute& attr : attributes_) {
    if (attr.type == DataType::kDisplay) names.push_back(attr.name);
  }
  return names;
}

Result<Value> DisplayRelation::AttributeValue(size_t row, const std::string& name) const {
  if (row >= num_rows()) {
    return Status::OutOfRange("row " + std::to_string(row) + " out of range");
  }
  DisplayRowAccessor accessor(*this, row);
  return accessor.GetNamed(name);
}

Result<std::vector<Value>> DisplayRelation::AttributeValues(
    const std::string& name, const db::ExecPolicy& policy) const {
  const Attribute* attr = FindAttribute(name);
  if (attr == nullptr) {
    return Status::NotFound("no attribute '" + name + "' on relation '" + name_ + "'");
  }
  const size_t n = num_rows();
  std::vector<Value> out;
  out.reserve(n);
  if (policy.vectorized) {
    expr::BatchMetrics& metrics = expr::BatchMetrics::Global();
    if (attr->source == AttrSource::kRowNumber) {
      ++metrics.display_attr_batches;
      metrics.display_attr_rows += n;
      for (size_t r = 0; r < n; ++r) {
        TIOGA2_ASSIGN_OR_RETURN(
            Value v, ApplyTransform(*attr, Value::Float(static_cast<double>(r))));
        out.push_back(std::move(v));
      }
      return out;
    }
    if (attr->source == AttrSource::kStored) {
      DisplayBatchSource source(*this);
      // StoredColumn applies the Scale/Translate transform; nullptr means a
      // transformed non-numeric column, whose TypeError the per-row path
      // below reports.
      const db::ColumnVector* col = source.StoredColumn(attr->stored_index);
      if (col != nullptr) {
        ++metrics.display_attr_batches;
        metrics.display_attr_rows += n;
        for (size_t r = 0; r < n; ++r) out.push_back(col->ValueAt(r));
        return out;
      }
    }
    if (attr->source == AttrSource::kExpr) {
      ++metrics.display_attr_batches;
      metrics.display_attr_rows += n;
      // Morsels share one source (its transform cache is mutex-guarded) but
      // each gets its own evaluator; results land in preassigned slots, so
      // the merged vector is byte-identical to the serial sweep.
      DisplayBatchSource source(*this);
      std::vector<Value> slots(n);
      TIOGA2_RETURN_IF_ERROR(db::ForEachMorsel(
          policy, n, [&](size_t, size_t begin, size_t end) -> Status {
            expr::BatchEvaluator evaluator(source, policy);
            expr::Selection sel;
            for (size_t b = begin; b < end; b += expr::kBatchSize) {
              const size_t bend = std::min(b + expr::kBatchSize, end);
              expr::IdentitySelection(b, bend, &sel);
              TIOGA2_ASSIGN_OR_RETURN(
                  expr::Vec vec, evaluator.Eval(attr->definition->root(), sel));
              for (size_t k = 0; k < sel.size(); ++k) {
                TIOGA2_ASSIGN_OR_RETURN(Value v,
                                        ApplyTransform(*attr, vec.ValueAt(k)));
                slots[sel[k]] = std::move(v);
              }
            }
            metrics.nodes_vectorized += evaluator.stats().vectorized_nodes;
            metrics.nodes_fallback += evaluator.stats().fallback_nodes;
            return Status::OK();
          }));
      return slots;
    }
  }
  // Per-row fallback (kCombine, kDefaultDisplay, transformed non-numeric
  // stored columns). Rows are independent, so they fan out in morsels into
  // preassigned slots; with `vectorized` false ForEachMorsel stays serial,
  // keeping the scalar oracle strictly sequential.
  std::vector<Value> slots(n);
  TIOGA2_RETURN_IF_ERROR(db::ForEachMorsel(
      policy, n, [&](size_t, size_t begin, size_t end) -> Status {
        for (size_t r = begin; r < end; ++r) {
          TIOGA2_ASSIGN_OR_RETURN(Value v, AttributeValue(r, name));
          slots[r] = std::move(v);
        }
        return Status::OK();
      }));
  return slots;
}

Result<std::vector<double>> DisplayRelation::LocationOf(size_t row) const {
  if (row >= num_rows()) {
    return Status::OutOfRange("row " + std::to_string(row) + " out of range");
  }
  DisplayRowAccessor accessor(*this, row);
  std::vector<double> location;
  location.reserve(location_names_.size());
  for (const std::string& name : location_names_) {
    TIOGA2_ASSIGN_OR_RETURN(Value v, accessor.GetNamed(name));
    if (v.is_null()) {
      return Status::InvalidArgument("location attribute '" + name + "' is null at row " +
                                     std::to_string(row));
    }
    if (!v.is_int() && !v.is_float()) {
      return Status::TypeError("location attribute '" + name + "' is not numeric");
    }
    location.push_back(v.AsDouble());
  }
  return location;
}

Result<draw::DrawableList> DisplayRelation::DisplayOf(size_t row) const {
  TIOGA2_ASSIGN_OR_RETURN(Value v, AttributeValue(row, display_name_));
  if (v.is_null()) return draw::MakeDrawableList({});
  if (!v.is_display()) {
    return Status::TypeError("display attribute '" + display_name_ +
                             "' did not produce a display value");
  }
  return v.display_value();
}

expr::TypeEnv DisplayRelation::Env() const {
  // Snapshot the attribute table; the env outlives `this` inside boxes.
  std::vector<Attribute> attrs = attributes_;
  return [attrs](const std::string& name) -> std::optional<expr::AttrInfo> {
    for (const Attribute& attr : attrs) {
      if (attr.name != name) continue;
      // Attributes with a transform must be fetched by name so the
      // transform applies even through an analyzer-resolved reference.
      if (attr.source == AttrSource::kStored) {
        return expr::AttrInfo{attr.type, attr.stored_index};
      }
      return expr::AttrInfo{attr.type, std::nullopt};
    }
    return std::nullopt;
  };
}

Result<DisplayRelation> DisplayRelation::AddAttribute(const std::string& name,
                                                      const std::string& definition) const {
  if (FindAttribute(name) != nullptr) {
    return Status::AlreadyExists("attribute '" + name + "' already exists");
  }
  if (name.empty()) return Status::InvalidArgument("attribute name must be non-empty");
  TIOGA2_ASSIGN_OR_RETURN(expr::CompiledExpr compiled,
                          expr::CompiledExpr::Compile(definition, Env()));
  DisplayRelation out = *this;
  Attribute attr;
  attr.name = name;
  attr.type = compiled.result_type();
  attr.source = AttrSource::kExpr;
  attr.definition = std::move(compiled);
  out.attributes_.push_back(std::move(attr));
  return out;
}

Result<DisplayRelation> DisplayRelation::SetAttribute(const std::string& name,
                                                      const std::string& definition) const {
  TIOGA2_ASSIGN_OR_RETURN(size_t index, AttributeIndex(name));
  TIOGA2_ASSIGN_OR_RETURN(expr::CompiledExpr compiled,
                          expr::CompiledExpr::Compile(definition, Env()));
  DisplayRelation out = *this;
  Attribute& attr = out.attributes_[index];
  // A location dimension or the active display must keep a compatible type.
  bool is_location =
      std::find(location_names_.begin(), location_names_.end(), name) !=
      location_names_.end();
  if (is_location && !types::IsNumericType(compiled.result_type())) {
    return Status::TypeError("location attribute '" + name + "' must stay numeric");
  }
  if (name == display_name_ && compiled.result_type() != DataType::kDisplay) {
    return Status::TypeError("active display attribute '" + name +
                             "' must stay display-typed");
  }
  attr.type = compiled.result_type();
  attr.source = AttrSource::kExpr;
  attr.definition = std::move(compiled);
  attr.scale = 1.0;
  attr.translate = 0.0;
  return out;
}

Result<DisplayRelation> DisplayRelation::RemoveAttribute(const std::string& name) const {
  TIOGA2_ASSIGN_OR_RETURN(size_t index, AttributeIndex(name));
  if (std::find(location_names_.begin(), location_names_.end(), name) !=
      location_names_.end()) {
    return Status::FailedPrecondition("cannot remove location attribute '" + name +
                                      "' (x, y, and slider dimensions are protected)");
  }
  if (name == display_name_) {
    return Status::FailedPrecondition("cannot remove the active display attribute '" +
                                      name + "'");
  }
  // Refuse if another attribute's definition references it.
  for (const Attribute& attr : attributes_) {
    if (attr.name == name) continue;
    if (attr.source == AttrSource::kExpr) {
      std::vector<std::string> refs = expr::CollectAttributeRefs(attr.definition->root());
      if (std::find(refs.begin(), refs.end(), name) != refs.end()) {
        return Status::FailedPrecondition("attribute '" + attr.name + "' references '" +
                                          name + "'");
      }
    }
    if (attr.source == AttrSource::kCombine &&
        (attr.combine_first == name || attr.combine_second == name)) {
      return Status::FailedPrecondition("attribute '" + attr.name + "' combines '" +
                                        name + "'");
    }
  }
  DisplayRelation out = *this;
  out.attributes_.erase(out.attributes_.begin() + static_cast<ptrdiff_t>(index));
  return out;
}

Result<DisplayRelation> DisplayRelation::SwapAttributes(const std::string& a,
                                                        const std::string& b) const {
  TIOGA2_ASSIGN_OR_RETURN(size_t ia, AttributeIndex(a));
  TIOGA2_ASSIGN_OR_RETURN(size_t ib, AttributeIndex(b));
  if (attributes_[ia].type != attributes_[ib].type) {
    return Status::TypeError("Swap Attributes needs two attributes of the same type (" +
                             types::DataTypeToString(attributes_[ia].type) + " vs " +
                             types::DataTypeToString(attributes_[ib].type) + ")");
  }
  DisplayRelation out = *this;
  std::swap(out.attributes_[ia].name, out.attributes_[ib].name);
  return out;
}

Result<DisplayRelation> DisplayRelation::ScaleAttribute(const std::string& name,
                                                        double factor) const {
  TIOGA2_ASSIGN_OR_RETURN(size_t index, AttributeIndex(name));
  if (!types::IsNumericType(attributes_[index].type)) {
    return Status::TypeError("Scale Attribute needs a numeric attribute, '" + name +
                             "' is " + types::DataTypeToString(attributes_[index].type));
  }
  DisplayRelation out = *this;
  out.attributes_[index].scale *= factor;
  out.attributes_[index].translate *= factor;
  out.attributes_[index].type = DataType::kFloat;
  return out;
}

Result<DisplayRelation> DisplayRelation::TranslateAttribute(const std::string& name,
                                                            double delta) const {
  TIOGA2_ASSIGN_OR_RETURN(size_t index, AttributeIndex(name));
  if (!types::IsNumericType(attributes_[index].type)) {
    return Status::TypeError("Translate Attribute needs a numeric attribute, '" + name +
                             "' is " + types::DataTypeToString(attributes_[index].type));
  }
  DisplayRelation out = *this;
  out.attributes_[index].translate += delta;
  out.attributes_[index].type = DataType::kFloat;
  return out;
}

Result<DisplayRelation> DisplayRelation::CombineDisplays(const std::string& new_name,
                                                         const std::string& first,
                                                         const std::string& second,
                                                         double dx, double dy) const {
  if (FindAttribute(new_name) != nullptr) {
    return Status::AlreadyExists("attribute '" + new_name + "' already exists");
  }
  const Attribute* a = FindAttribute(first);
  const Attribute* b = FindAttribute(second);
  if (a == nullptr) return Status::NotFound("no attribute '" + first + "'");
  if (b == nullptr) return Status::NotFound("no attribute '" + second + "'");
  if (a->type != DataType::kDisplay || b->type != DataType::kDisplay) {
    return Status::TypeError("Combine Displays needs two display attributes");
  }
  DisplayRelation out = *this;
  Attribute attr;
  attr.name = new_name;
  attr.type = DataType::kDisplay;
  attr.source = AttrSource::kCombine;
  attr.combine_first = first;
  attr.combine_second = second;
  attr.combine_dx = dx;
  attr.combine_dy = dy;
  out.attributes_.push_back(std::move(attr));
  return out;
}

Result<DisplayRelation> DisplayRelation::SetLocationAttribute(
    size_t dim, const std::string& attr) const {
  if (dim >= location_names_.size()) {
    return Status::OutOfRange("location dimension " + std::to_string(dim) +
                              " out of range (dimension is " +
                              std::to_string(location_names_.size()) + ")");
  }
  const Attribute* a = FindAttribute(attr);
  if (a == nullptr) return Status::NotFound("no attribute '" + attr + "'");
  if (!types::IsNumericType(a->type)) {
    return Status::TypeError("location attribute '" + attr + "' must be numeric");
  }
  DisplayRelation out = *this;
  out.location_names_[dim] = attr;
  return out;
}

Result<DisplayRelation> DisplayRelation::AddLocationDimension(
    const std::string& attr) const {
  const Attribute* a = FindAttribute(attr);
  if (a == nullptr) return Status::NotFound("no attribute '" + attr + "'");
  if (!types::IsNumericType(a->type)) {
    return Status::TypeError("location attribute '" + attr + "' must be numeric");
  }
  DisplayRelation out = *this;
  out.location_names_.push_back(attr);
  return out;
}

Result<DisplayRelation> DisplayRelation::RemoveLocationDimension(size_t dim) const {
  if (dim < 2) {
    return Status::FailedPrecondition(
        "the x and y dimensions are mandatory (every visualization has at least two "
        "dimensions, §2)");
  }
  if (dim >= location_names_.size()) {
    return Status::OutOfRange("location dimension " + std::to_string(dim) +
                              " out of range");
  }
  DisplayRelation out = *this;
  out.location_names_.erase(out.location_names_.begin() + static_cast<ptrdiff_t>(dim));
  return out;
}

Result<DisplayRelation> DisplayRelation::SetDisplayAttribute(
    const std::string& attr) const {
  const Attribute* a = FindAttribute(attr);
  if (a == nullptr) return Status::NotFound("no attribute '" + attr + "'");
  if (a->type != DataType::kDisplay) {
    return Status::TypeError("attribute '" + attr + "' is not display-typed");
  }
  DisplayRelation out = *this;
  out.display_name_ = attr;
  return out;
}

DisplayRelation DisplayRelation::SetElevationRange(double min, double max) const {
  DisplayRelation out = *this;
  if (min > max) std::swap(min, max);
  out.elevation_range_ = ElevationRange{min, max};
  return out;
}

Result<DisplayRelation> DisplayRelation::Restrict(
    const std::string& predicate, const db::ExecPolicy& policy) const {
  TIOGA2_ASSIGN_OR_RETURN(expr::CompiledExpr compiled,
                          expr::CompiledExpr::Compile(predicate, Env()));
  if (compiled.result_type() != DataType::kBool) {
    return Status::TypeError("Restrict predicate '" + predicate + "' must be bool");
  }
  DisplayRelation out = *this;
  if (policy.vectorized) {
    expr::BatchMetrics& metrics = expr::BatchMetrics::Global();
    metrics.restrict_rows += num_rows();
    // Morsel-driven, like db::Restrict: per-morsel survivor lists merged in
    // morsel order reproduce the serial scan byte for byte.
    DisplayBatchSource source(*this);
    const size_t num_morsels = db::NumMorsels(policy, num_rows());
    std::vector<expr::Selection> survivors(num_morsels);
    TIOGA2_RETURN_IF_ERROR(db::ForEachMorsel(
        policy, num_rows(),
        [&](size_t morsel, size_t begin, size_t end) -> Status {
          expr::BatchEvaluator evaluator(source, policy);
          expr::Selection sel;
          expr::Selection& kept_rows = survivors[morsel];
          for (size_t b = begin; b < end; b += expr::kBatchSize) {
            const size_t bend = std::min(b + expr::kBatchSize, end);
            expr::IdentitySelection(b, bend, &sel);
            TIOGA2_ASSIGN_OR_RETURN(expr::Selection kept,
                                    evaluator.FilterTrue(compiled.root(), sel));
            kept_rows.insert(kept_rows.end(), kept.begin(), kept.end());
            ++metrics.restrict_batches;
          }
          metrics.nodes_vectorized += evaluator.stats().vectorized_nodes;
          metrics.nodes_fallback += evaluator.stats().fallback_nodes;
          return Status::OK();
        }));
    size_t total = 0;
    for (const expr::Selection& s : survivors) total += s.size();
    expr::Selection merged;
    merged.reserve(total);
    for (expr::Selection& s : survivors) {
      merged.insert(merged.end(), s.begin(), s.end());
    }
    // Survivors reference the base relation through a selection view — no
    // tuple copies (the tuple-copy tax dominated restrict_half_selectivity
    // in bench_out/fig03_columnar.json before this).
    out.base_ = db::Relation::MakeSelectionView(base_, std::move(merged));
  } else {
    db::RelationBuilder builder(base_->schema());
    for (size_t r = 0; r < num_rows(); ++r) {
      DisplayRowAccessor accessor(*this, r);
      TIOGA2_ASSIGN_OR_RETURN(Value keep, compiled.Eval(accessor));
      if (!keep.is_null() && keep.bool_value()) builder.AddRowShared(base_->row_ptr(r));
    }
    out.base_ = builder.Build();
  }
  return out;
}

Result<size_t> DisplayRelation::CountKept(const std::string& predicate,
                                          size_t end,
                                          const db::ExecPolicy& policy) const {
  TIOGA2_ASSIGN_OR_RETURN(expr::CompiledExpr compiled,
                          expr::CompiledExpr::Compile(predicate, Env()));
  if (compiled.result_type() != DataType::kBool) {
    return Status::TypeError("predicate '" + predicate + "' must be bool");
  }
  end = std::min(end, num_rows());
  size_t count = 0;
  if (policy.vectorized) {
    DisplayBatchSource source(*this);
    std::vector<size_t> counts(db::NumMorsels(policy, end));
    TIOGA2_RETURN_IF_ERROR(db::ForEachMorsel(
        policy, end,
        [&](size_t morsel, size_t mbegin, size_t mend) -> Status {
          expr::BatchEvaluator evaluator(source, policy);
          expr::Selection sel;
          size_t kept_in_morsel = 0;
          for (size_t b = mbegin; b < mend; b += expr::kBatchSize) {
            const size_t bend = std::min(b + expr::kBatchSize, mend);
            expr::IdentitySelection(b, bend, &sel);
            TIOGA2_ASSIGN_OR_RETURN(expr::Selection kept,
                                    evaluator.FilterTrue(compiled.root(), sel));
            kept_in_morsel += kept.size();
          }
          counts[morsel] = kept_in_morsel;
          return Status::OK();
        }));
    for (size_t c : counts) count += c;
  } else {
    for (size_t r = 0; r < end; ++r) {
      DisplayRowAccessor accessor(*this, r);
      TIOGA2_ASSIGN_OR_RETURN(Value keep, compiled.Eval(accessor));
      if (!keep.is_null() && keep.bool_value()) ++count;
    }
  }
  return count;
}

Result<bool> DisplayRelation::KeepsRow(const std::string& predicate,
                                       size_t row) const {
  if (row >= num_rows()) {
    return Status::OutOfRange("row " + std::to_string(row) + " out of range");
  }
  TIOGA2_ASSIGN_OR_RETURN(expr::CompiledExpr compiled,
                          expr::CompiledExpr::Compile(predicate, Env()));
  if (compiled.result_type() != DataType::kBool) {
    return Status::TypeError("predicate '" + predicate + "' must be bool");
  }
  DisplayRowAccessor accessor(*this, row);
  TIOGA2_ASSIGN_OR_RETURN(Value keep, compiled.Eval(accessor));
  return !keep.is_null() && keep.bool_value();
}

Result<DisplayRelation> DisplayRelation::Project(
    const std::vector<std::string>& columns) const {
  TIOGA2_ASSIGN_OR_RETURN(db::RelationPtr projected, db::Project(base_, columns));
  // Old stored index -> new stored index.
  std::vector<std::optional<size_t>> remap(base_->schema()->num_columns());
  for (size_t new_index = 0; new_index < columns.size(); ++new_index) {
    TIOGA2_ASSIGN_OR_RETURN(size_t old_index, base_->schema()->ColumnIndex(columns[new_index]));
    remap[old_index] = new_index;
  }
  DisplayRelation out = *this;
  out.base_ = projected;
  std::vector<Attribute> kept;
  for (Attribute attr : attributes_) {
    if (attr.source == AttrSource::kStored) {
      if (!remap[attr.stored_index].has_value()) {
        // Dropping a designated attribute is an error; other stored
        // attributes silently disappear with the projection.
        bool designated =
            std::find(location_names_.begin(), location_names_.end(), attr.name) !=
                location_names_.end() ||
            attr.name == display_name_;
        if (designated) {
          return Status::FailedPrecondition("cannot project out '" + attr.name +
                                            "', it is a designated location/display "
                                            "attribute");
        }
        continue;
      }
      attr.stored_index = *remap[attr.stored_index];
    } else if (attr.source == AttrSource::kExpr) {
      Status remapped = expr::RemapStoredAttributeIndices(
          attr.definition->mutable_root(),
          [&remap, &attr](size_t old_index) -> Result<size_t> {
            if (old_index >= remap.size() || !remap[old_index].has_value()) {
              return Status::FailedPrecondition(
                  "computed attribute '" + attr.name +
                  "' references a column dropped by Project");
            }
            return *remap[old_index];
          });
      TIOGA2_RETURN_IF_ERROR(remapped);
    }
    kept.push_back(std::move(attr));
  }
  out.attributes_ = std::move(kept);
  return out;
}

Result<DisplayRelation> DisplayRelation::Sample(double probability, uint64_t seed) const {
  TIOGA2_ASSIGN_OR_RETURN(db::RelationPtr sampled, db::Sample(base_, probability, seed));
  DisplayRelation out = *this;
  out.base_ = std::move(sampled);
  return out;
}

Result<DisplayRelation> DisplayRelation::WithBase(db::RelationPtr base) const {
  if (base == nullptr) return Status::InvalidArgument("base relation must be non-null");
  if (!(*base->schema() == *base_->schema())) {
    return Status::TypeError("WithBase may not change the schema");
  }
  DisplayRelation out = *this;
  out.base_ = std::move(base);
  return out;
}

std::string DisplayRelation::ToString(size_t max_rows) const {
  std::string out = "DisplayRelation '" + name_ + "' dim=" +
                    std::to_string(Dimension()) + " display=" + display_name_ + "\n";
  for (size_t c = 0; c < attributes_.size(); ++c) {
    if (c > 0) out += " | ";
    out += attributes_[c].name;
  }
  out += "\n";
  size_t shown = std::min(max_rows, num_rows());
  for (size_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < attributes_.size(); ++c) {
      if (c > 0) out += " | ";
      Result<Value> v = AttributeValue(r, attributes_[c].name);
      out += v.ok() ? v.value().ToString() : ("<" + v.status().ToString() + ">");
    }
    out += "\n";
  }
  if (shown < num_rows()) {
    out += "... (" + std::to_string(num_rows() - shown) + " more rows)\n";
  }
  return out;
}

}  // namespace tioga2::display
