#include "tioga2/environment.h"

#include "boxes/program_io.h"
#include "db/csv.h"

namespace tioga2 {

Environment::Environment() : session_(std::make_unique<ui::Session>(&catalog_)) {}

Status Environment::LoadDemoData(size_t extra_stations, size_t num_days, uint64_t seed) {
  return data::LoadDemoData(&catalog_, extra_stations, num_days, seed);
}

Status Environment::ImportCsvTable(const std::string& table, const std::string& path) {
  TIOGA2_ASSIGN_OR_RETURN(db::RelationPtr relation, db::ReadCsvFile(path));
  return catalog_.RegisterTable(table, std::move(relation));
}

Status Environment::ExportCsvTable(const std::string& table, const std::string& path) {
  TIOGA2_ASSIGN_OR_RETURN(db::RelationPtr relation, catalog_.GetTable(table));
  return db::WriteCsvFile(*relation, path);
}

Result<viewer::Viewer*> Environment::GetViewer(const std::string& canvas_name) {
  auto it = viewers_.find(canvas_name);
  if (it != viewers_.end()) return it->second.get();
  auto created = std::make_unique<viewer::Viewer>("viewer:" + canvas_name, canvas_name,
                                                  &session_->registry());
  TIOGA2_RETURN_IF_ERROR(created->Refresh());
  viewer::Viewer* raw = created.get();
  viewers_[canvas_name] = std::move(created);
  return raw;
}

Status Environment::OpenPersistent(storage::StorageOptions options,
                                   storage::RecoveryInfo* info) {
  if (storage_ != nullptr) {
    return Status::FailedPrecondition("persistent storage already open");
  }
  TIOGA2_ASSIGN_OR_RETURN(
      storage_, storage::StorageEngine::Open(&catalog_, std::move(options), info));
  // A recovered program that no longer parses would only fail much later,
  // inside Load Program; surface the corruption at open time instead.
  for (const std::string& name : catalog_.ListPrograms()) {
    TIOGA2_ASSIGN_OR_RETURN(std::string text, catalog_.GetProgram(name));
    Result<dataflow::Graph> parsed = boxes::DeserializeProgram(text);
    if (!parsed.ok()) {
      return Status::ParseError("recovered program '" + name +
                                "' does not parse: " + parsed.status().message());
    }
  }
  return Status::OK();
}

Status Environment::Checkpoint() {
  if (storage_ == nullptr) {
    return Status::FailedPrecondition("persistent storage not open");
  }
  return storage_->Checkpoint();
}

Status Environment::ClosePersistent() {
  if (storage_ == nullptr) return Status::OK();
  Status checkpoint = storage_->Checkpoint();
  Status close = storage_->Close();
  storage_.reset();
  if (!checkpoint.ok()) return checkpoint;
  return close;
}

std::unique_ptr<runtime::SessionServer> Environment::CreateServer(
    runtime::SessionServer::Options options) {
  return std::make_unique<runtime::SessionServer>(&catalog_, options);
}

Result<viewer::RenderStats> Environment::RenderViewer(viewer::Viewer* viewer, int width,
                                                      int height,
                                                      const std::string& ppm_path) {
  render::Framebuffer framebuffer(width, height);
  render::RasterSurface surface(&framebuffer);
  TIOGA2_ASSIGN_OR_RETURN(viewer::RenderStats stats, viewer->RenderTo(&surface));
  if (!ppm_path.empty()) {
    TIOGA2_RETURN_IF_ERROR(framebuffer.WritePpm(ppm_path));
  }
  return stats;
}

Result<std::string> Environment::RenderViewerSvg(viewer::Viewer* viewer, int width,
                                                 int height,
                                                 const std::string& svg_path) {
  render::SvgSurface surface(width, height);
  surface.Clear(draw::kWhite);
  TIOGA2_RETURN_IF_ERROR(viewer->RenderTo(&surface).status());
  if (!svg_path.empty()) {
    TIOGA2_RETURN_IF_ERROR(surface.WriteSvg(svg_path));
  }
  return surface.ToSvg();
}

}  // namespace tioga2
