#ifndef TIOGA2_TIOGA2_TIOGA2_H_
#define TIOGA2_TIOGA2_TIOGA2_H_

/// Umbrella header: the public API surface of the Tioga-2 library.
///
/// Most applications only need Environment (which owns the catalog, the
/// direct-manipulation Session, and the viewers); the individual headers
/// are exposed for programs that compose the layers themselves.

#include "boxes/box_registry.h"      // box construction + Apply Box matching
#include "boxes/program_io.h"        // Save/Load Program serialization
#include "db/aggregates.h"           // GroupBy / Distinct / UnionAll
#include "db/csv.h"                  // typed CSV import/export
#include "db/operators.h"            // relational operators
#include "display/displayable.h"     // R / C / G displayable algebra
#include "expr/expr.h"               // the attribute & predicate language
#include "render/raster_surface.h"   // software rasterizer -> PPM
#include "render/svg_surface.h"      // SVG backend
#include "tioga2/environment.h"      // top-level facade
#include "ui/program_renderer.h"     // the program window (boxes-and-arrows)
#include "ui/session.h"              // the direct-manipulation session
#include "update/update.h"           // §8 update machinery
#include "viewer/elevation_map.h"    // elevation map widget
#include "viewer/viewer.h"           // canvases, wormholes, mirrors, ...

#endif  // TIOGA2_TIOGA2_TIOGA2_H_
