#ifndef TIOGA2_TIOGA2_ENVIRONMENT_H_
#define TIOGA2_TIOGA2_ENVIRONMENT_H_

#include <map>
#include <memory>
#include <string>

#include "common/result.h"
#include "data/generators.h"
#include "db/catalog.h"
#include "render/framebuffer.h"
#include "render/raster_surface.h"
#include "render/svg_surface.h"
#include "runtime/session_server.h"
#include "storage/storage_engine.h"
#include "ui/session.h"
#include "viewer/viewer.h"

namespace tioga2 {

/// The top-level facade tying the whole system together: a catalog, a
/// direct-manipulation session over one boxes-and-arrows program, and the
/// viewers looking at its canvases. This is the object a Tioga-2 application
/// (GUI shell, example program, or benchmark) holds.
class Environment {
 public:
  Environment();

  Environment(const Environment&) = delete;
  Environment& operator=(const Environment&) = delete;

  db::Catalog& catalog() { return catalog_; }
  ui::Session& session() { return *session_; }

  /// Loads the demo dataset of the paper's running example (§4): Stations,
  /// Observations, LouisianaMap, and Employees.
  Status LoadDemoData(size_t extra_stations = 200, size_t num_days = 365,
                      uint64_t seed = 42);

  /// Registers a table from a typed CSV file (header "name:type", see
  /// db/csv.h) — the path by which a downstream user brings their own data.
  Status ImportCsvTable(const std::string& table, const std::string& path);

  /// Writes a catalog table to a typed CSV file.
  Status ExportCsvTable(const std::string& table, const std::string& path);

  /// Creates (or returns the existing) viewer onto `canvas_name`.
  Result<viewer::Viewer*> GetViewer(const std::string& canvas_name);

  /// Attaches crash-safe persistence (storage/storage_engine.h): recovers
  /// `options.dir` into the catalog — newest valid snapshot plus WAL replay,
  /// restoring exact table versions so memo stamps survive the restart —
  /// then logs every further catalog mutation. Any recovered saved program
  /// is validated to still parse. Tables loaded *before* this call (demo
  /// data, CSV imports) are logged as bootstrap records unless the recovered
  /// directory already covers them.
  Status OpenPersistent(storage::StorageOptions options,
                        storage::RecoveryInfo* info = nullptr);

  /// Writes a snapshot now and truncates the WAL (storage must be open).
  Status Checkpoint();

  /// Checkpoints, then detaches and shuts down the storage engine. No-op if
  /// persistence was never opened.
  Status ClosePersistent();

  /// The storage engine, or nullptr when not persistent.
  storage::StorageEngine* storage() { return storage_.get(); }

  /// Creates a multi-session server over this environment's catalog. The
  /// server's sessions are independent of `session()`; they share only the
  /// catalog (guarded by the server's readers-writer lock). The Environment
  /// must outlive the returned server.
  std::unique_ptr<runtime::SessionServer> CreateServer(
      runtime::SessionServer::Options options = runtime::SessionServer::Options{});

  /// Renders a viewer into a fresh framebuffer, returning the render stats.
  /// Writes a PPM file when `ppm_path` is non-empty.
  Result<viewer::RenderStats> RenderViewer(viewer::Viewer* viewer, int width,
                                           int height,
                                           const std::string& ppm_path = "");

  /// Renders a viewer through the SVG backend; writes when path non-empty.
  Result<std::string> RenderViewerSvg(viewer::Viewer* viewer, int width, int height,
                                      const std::string& svg_path = "");

 private:
  db::Catalog catalog_;
  std::unique_ptr<ui::Session> session_;
  std::map<std::string, std::unique_ptr<viewer::Viewer>> viewers_;
  /// Declared after catalog_: the engine detaches its catalog listener in
  /// its destructor, so it must be destroyed first.
  std::unique_ptr<storage::StorageEngine> storage_;
};

}  // namespace tioga2

#endif  // TIOGA2_TIOGA2_ENVIRONMENT_H_
