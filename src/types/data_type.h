#ifndef TIOGA2_TYPES_DATA_TYPE_H_
#define TIOGA2_TYPES_DATA_TYPE_H_

#include <string>

namespace tioga2::types {

/// The atomic column types of the object-relational engine. Location
/// attributes must be kFloat (§2: "location attributes are represented by
/// floating point numbers"); display attributes are kDisplay (a list of
/// primitive drawables, §5.1).
enum class DataType {
  kBool,
  kInt,
  kFloat,
  kString,
  kDate,
  kDisplay,
};

/// "bool", "int", "float", "string", "date", "display".
std::string DataTypeToString(DataType type);

/// Inverse of DataTypeToString; returns false if unknown.
bool DataTypeFromString(const std::string& text, DataType* out);

/// True for kInt and kFloat — the types accepted by Scale/Translate
/// Attribute (§5.3) and usable as location attributes after coercion.
bool IsNumericType(DataType type);

/// True if a value of `from` may be implicitly widened to `to`
/// (identity, or int → float).
bool IsImplicitlyConvertible(DataType from, DataType to);

}  // namespace tioga2::types

#endif  // TIOGA2_TYPES_DATA_TYPE_H_
