#include "types/value.h"

#include <cerrno>
#include <cstdlib>

#include "common/str_util.h"

namespace tioga2::types {

DataType Value::type() const {
  if (is_bool()) return DataType::kBool;
  if (is_int()) return DataType::kInt;
  if (is_float()) return DataType::kFloat;
  if (is_string()) return DataType::kString;
  if (is_date()) return DataType::kDate;
  if (is_display()) return DataType::kDisplay;
  std::abort();  // type() on null
}

double Value::AsDouble() const {
  if (is_int()) return static_cast<double>(int_value());
  return float_value();
}

Result<Value> Value::CastTo(DataType target) const {
  if (is_null()) return Value::Null();
  if (type() == target) return *this;
  if (type() == DataType::kInt && target == DataType::kFloat) {
    return Value::Float(static_cast<double>(int_value()));
  }
  return Status::TypeError("cannot convert " + DataTypeToString(type()) + " to " +
                           DataTypeToString(target));
}

bool Value::Equals(const Value& other) const {
  if (is_null() || other.is_null()) return is_null() && other.is_null();
  if (is_display() && other.is_display()) {
    return draw::DrawableListEquals(display_value(), other.display_value());
  }
  // Numeric cross-type equality: 2 == 2.0.
  if ((is_int() || is_float()) && (other.is_int() || other.is_float())) {
    return AsDouble() == other.AsDouble();
  }
  return repr_ == other.repr_;
}

Result<int> Value::Compare(const Value& other) const {
  if (is_null() && other.is_null()) return 0;
  if (is_null()) return -1;
  if (other.is_null()) return 1;
  if ((is_int() || is_float()) && (other.is_int() || other.is_float())) {
    double a = AsDouble();
    double b = other.AsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (type() != other.type()) {
    return Status::TypeError("cannot compare " + DataTypeToString(type()) + " with " +
                             DataTypeToString(other.type()));
  }
  switch (type()) {
    case DataType::kBool: {
      int a = bool_value() ? 1 : 0;
      int b = other.bool_value() ? 1 : 0;
      return a - b;
    }
    case DataType::kString: {
      int cmp = string_value().compare(other.string_value());
      return cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
    }
    case DataType::kDate: {
      if (date_value() < other.date_value()) return -1;
      if (other.date_value() < date_value()) return 1;
      return 0;
    }
    default:
      return Status::TypeError("values of type " + DataTypeToString(type()) +
                               " have no ordering");
  }
}

std::string Value::ToString() const {
  if (is_null()) return "null";
  switch (type()) {
    case DataType::kBool:
      return bool_value() ? "true" : "false";
    case DataType::kInt:
      return std::to_string(int_value());
    case DataType::kFloat:
      return FormatDouble(float_value());
    case DataType::kString:
      return QuoteString(string_value());
    case DataType::kDate:
      return date_value().ToString();
    case DataType::kDisplay:
      return draw::DrawableListToString(display_value());
  }
  return "?";
}

Result<Value> Value::Parse(DataType type, const std::string& text) {
  std::string trimmed(StripWhitespace(text));
  switch (type) {
    case DataType::kBool:
      if (trimmed == "true" || trimmed == "1") return Value::Bool(true);
      if (trimmed == "false" || trimmed == "0") return Value::Bool(false);
      return Status::ParseError("not a bool: '" + text + "'");
    case DataType::kInt: {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(trimmed.c_str(), &end, 10);
      if (errno != 0 || end == trimmed.c_str() || *end != '\0') {
        return Status::ParseError("not an int: '" + text + "'");
      }
      return Value::Int(v);
    }
    case DataType::kFloat: {
      errno = 0;
      char* end = nullptr;
      double v = std::strtod(trimmed.c_str(), &end);
      if (errno != 0 || end == trimmed.c_str() || *end != '\0') {
        return Status::ParseError("not a float: '" + text + "'");
      }
      return Value::Float(v);
    }
    case DataType::kString: {
      if (!trimmed.empty() && trimmed.front() == '"') {
        std::string unquoted;
        if (!UnquoteString(trimmed, &unquoted)) {
          return Status::ParseError("malformed quoted string: '" + text + "'");
        }
        return Value::String(std::move(unquoted));
      }
      return Value::String(std::string(trimmed));
    }
    case DataType::kDate: {
      Date date;
      if (!Date::Parse(trimmed, &date)) {
        return Status::ParseError("not a date (want YYYY-MM-DD): '" + text + "'");
      }
      return Value::DateVal(date);
    }
    case DataType::kDisplay:
      return Status::ParseError("display values cannot be parsed from text");
  }
  return Status::Internal("unhandled type in Value::Parse");
}

}  // namespace tioga2::types
