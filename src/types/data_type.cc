#include "types/data_type.h"

#include <utility>

namespace tioga2::types {

std::string DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kBool:
      return "bool";
    case DataType::kInt:
      return "int";
    case DataType::kFloat:
      return "float";
    case DataType::kString:
      return "string";
    case DataType::kDate:
      return "date";
    case DataType::kDisplay:
      return "display";
  }
  return "unknown";
}

bool DataTypeFromString(const std::string& text, DataType* out) {
  static constexpr std::pair<const char*, DataType> kNames[] = {
      {"bool", DataType::kBool},     {"int", DataType::kInt},
      {"float", DataType::kFloat},   {"string", DataType::kString},
      {"date", DataType::kDate},     {"display", DataType::kDisplay},
  };
  for (const auto& [name, type] : kNames) {
    if (text == name) {
      *out = type;
      return true;
    }
  }
  return false;
}

bool IsNumericType(DataType type) {
  return type == DataType::kInt || type == DataType::kFloat;
}

bool IsImplicitlyConvertible(DataType from, DataType to) {
  if (from == to) return true;
  return from == DataType::kInt && to == DataType::kFloat;
}

}  // namespace tioga2::types
