#ifndef TIOGA2_TYPES_VALUE_H_
#define TIOGA2_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.h"
#include "draw/drawable.h"
#include "types/data_type.h"
#include "types/date.h"

namespace tioga2::types {

/// A dynamically typed cell value: one of the atomic types of DataType, or
/// null. Nulls arise from outer-ish operations (e.g. a failed attribute
/// lookup) and compare less than every non-null value of the same type.
class Value {
 public:
  /// Constructs a null value.
  Value() = default;

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Repr(v)); }
  static Value Int(int64_t v) { return Value(Repr(v)); }
  static Value Float(double v) { return Value(Repr(v)); }
  static Value String(std::string v) { return Value(Repr(std::move(v))); }
  static Value DateVal(Date v) { return Value(Repr(v)); }
  static Value Display(draw::DrawableList v) { return Value(Repr(std::move(v))); }

  bool is_null() const { return std::holds_alternative<std::monostate>(repr_); }
  bool is_bool() const { return std::holds_alternative<bool>(repr_); }
  bool is_int() const { return std::holds_alternative<int64_t>(repr_); }
  bool is_float() const { return std::holds_alternative<double>(repr_); }
  bool is_string() const { return std::holds_alternative<std::string>(repr_); }
  bool is_date() const { return std::holds_alternative<Date>(repr_); }
  bool is_display() const { return std::holds_alternative<draw::DrawableList>(repr_); }

  /// The DataType of a non-null value. Must not be called on null.
  DataType type() const;

  /// Typed accessors. Each must only be called when the value holds that
  /// type (checked; aborts otherwise — a type-checker bug, not user error).
  bool bool_value() const { return std::get<bool>(repr_); }
  int64_t int_value() const { return std::get<int64_t>(repr_); }
  double float_value() const { return std::get<double>(repr_); }
  const std::string& string_value() const { return std::get<std::string>(repr_); }
  const Date& date_value() const { return std::get<Date>(repr_); }
  const draw::DrawableList& display_value() const {
    return std::get<draw::DrawableList>(repr_);
  }

  /// Numeric view: int and float values as double. Must be numeric.
  double AsDouble() const;

  /// Widens this value to `target` if IsImplicitlyConvertible allows it.
  Result<Value> CastTo(DataType target) const;

  /// Structural equality (display lists compare by contents).
  bool Equals(const Value& other) const;

  /// Total order within a type: null < everything; bool false < true;
  /// numerics by magnitude (int and float are inter-comparable); strings
  /// lexicographic; dates chronological. Comparing other cross-type pairs or
  /// display values is a TypeError.
  Result<int> Compare(const Value& other) const;

  /// Human-readable rendering used by the default displays of §5.2 and by
  /// error messages: 42, 3.5, "text", true, 1995-07-14, [circle(...)].
  std::string ToString() const;

  /// Parses `text` as a value of `type`. Used by CSV import and the §8
  /// default update functions (the dialog's textual entry path).
  static Result<Value> Parse(DataType type, const std::string& text);

  friend bool operator==(const Value& a, const Value& b) { return a.Equals(b); }

 private:
  using Repr = std::variant<std::monostate, bool, int64_t, double, std::string, Date,
                            draw::DrawableList>;
  explicit Value(Repr repr) : repr_(std::move(repr)) {}

  Repr repr_;
};

}  // namespace tioga2::types

#endif  // TIOGA2_TYPES_VALUE_H_
