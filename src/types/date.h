#ifndef TIOGA2_TYPES_DATE_H_
#define TIOGA2_TYPES_DATE_H_

#include <cstdint>
#include <string>

namespace tioga2::types {

/// A calendar date, stored as days since the Unix epoch (1970-01-01).
/// The Observations relation of the paper's running example is keyed by
/// date; location attributes derived from dates convert through DaysValue().
class Date {
 public:
  /// The epoch, 1970-01-01.
  Date() = default;

  /// From a day count relative to 1970-01-01 (may be negative).
  explicit Date(int64_t days) : days_(days) {}

  /// From a civil (proleptic Gregorian) date. Out-of-range month/day values
  /// are normalized arithmetically (e.g. month 13 rolls into the next year).
  static Date FromYmd(int year, int month, int day);

  /// Parses "YYYY-MM-DD"; returns false on malformed input.
  static bool Parse(const std::string& text, Date* out);

  /// Days since the epoch.
  int64_t DaysValue() const { return days_; }

  /// Civil components.
  int Year() const;
  int Month() const;
  int Day() const;

  /// Formats as "YYYY-MM-DD".
  std::string ToString() const;

  Date AddDays(int64_t days) const { return Date(days_ + days); }

  friend bool operator==(const Date& a, const Date& b) = default;
  friend auto operator<=>(const Date& a, const Date& b) = default;

 private:
  int64_t days_ = 0;
};

}  // namespace tioga2::types

#endif  // TIOGA2_TYPES_DATE_H_
