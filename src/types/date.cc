#include "types/date.h"

#include <cstdio>

namespace tioga2::types {

namespace {

// Civil-from-days and days-from-civil, Howard Hinnant's public-domain
// algorithms for the proleptic Gregorian calendar.
int64_t DaysFromCivil(int64_t y, int64_t m, int64_t d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const int64_t yoe = y - era * 400;                                  // [0, 399]
  const int64_t doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0, 365]
  const int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;           // [0, 146096]
  return era * 146097 + doe - 719468;
}

void CivilFromDays(int64_t z, int* year, int* month, int* day) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const int64_t doe = z - era * 146097;                                    // [0, 146096]
  const int64_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;  // [0, 399]
  const int64_t y = yoe + era * 400;
  const int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const int64_t mp = (5 * doy + 2) / 153;                       // [0, 11]
  const int64_t d = doy - (153 * mp + 2) / 5 + 1;               // [1, 31]
  const int64_t m = mp + (mp < 10 ? 3 : -9);                    // [1, 12]
  *year = static_cast<int>(y + (m <= 2));
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

}  // namespace

Date Date::FromYmd(int year, int month, int day) {
  // Normalize month outside [1,12] arithmetically.
  int64_t y = year;
  int64_t m = month;
  if (m < 1 || m > 12) {
    int64_t zero_based = m - 1;
    int64_t carry = zero_based >= 0 ? zero_based / 12 : (zero_based - 11) / 12;
    y += carry;
    m = zero_based - carry * 12 + 1;
  }
  return Date(DaysFromCivil(y, m, day));
}

bool Date::Parse(const std::string& text, Date* out) {
  int year = 0;
  int month = 0;
  int day = 0;
  char trailing = 0;
  if (std::sscanf(text.c_str(), "%d-%d-%d%c", &year, &month, &day, &trailing) != 3) {
    return false;
  }
  if (month < 1 || month > 12 || day < 1 || day > 31) return false;
  *out = FromYmd(year, month, day);
  return true;
}

int Date::Year() const {
  int y = 0;
  int m = 0;
  int d = 0;
  CivilFromDays(days_, &y, &m, &d);
  return y;
}

int Date::Month() const {
  int y = 0;
  int m = 0;
  int d = 0;
  CivilFromDays(days_, &y, &m, &d);
  return m;
}

int Date::Day() const {
  int y = 0;
  int m = 0;
  int d = 0;
  CivilFromDays(days_, &y, &m, &d);
  return d;
}

std::string Date::ToString() const {
  int y = 0;
  int m = 0;
  int d = 0;
  CivilFromDays(days_, &y, &m, &d);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

}  // namespace tioga2::types
