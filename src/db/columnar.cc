#include "db/columnar.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <string_view>
#include <unordered_map>

#include "db/exec_policy.h"
#include "db/relation.h"
#include "expr/batch.h"

namespace tioga2::db {

using types::DataType;
using types::Value;

types::Value ColumnVector::ValueAt(size_t row) const {
  if (IsNull(row)) return Value::Null();
  switch (type) {
    case DataType::kBool:
      return Value::Bool(bools[row] != 0);
    case DataType::kInt:
      return Value::Int(ints[row]);
    case DataType::kFloat:
      return Value::Float(floats[row]);
    case DataType::kString:
      return Value::String(strings[row]);
    case DataType::kDate:
      return Value::DateVal(types::Date(dates[row]));
    case DataType::kDisplay:
      return boxed[row];
  }
  return Value::Null();
}

namespace {

void ResizeTyped(ColumnVector* out, size_t n) {
  switch (out->type) {
    case DataType::kBool:
      out->bools.resize(n);
      break;
    case DataType::kInt:
      out->ints.resize(n);
      break;
    case DataType::kFloat:
      out->floats.resize(n);
      break;
    case DataType::kString:
      out->strings.resize(n);
      break;
    case DataType::kDate:
      out->dates.resize(n);
      break;
    case DataType::kDisplay:
      out->boxed.resize(n);
      break;
  }
}

void SetNullBit(ColumnVector* out, size_t n, size_t r) {
  if (out->null_bits.empty()) out->null_bits.resize((n + 63) / 64, 0);
  out->null_bits[r >> 6] |= uint64_t{1} << (r & 63);
}

/// Builds the sorted dictionary of a freshly materialized kString column:
/// one hash-map pass assigns provisional ids in first-appearance order, the
/// distinct set is sorted ascending (std::string order == Value::Compare's
/// string order, the property every ordered-comparison lowering relies on),
/// and the per-row codes are remapped onto the sorted ranks. Views never
/// call this — they share the parent's dict_values and gather codes.
void BuildDictionary(ColumnVector* out) {
  const size_t n = out->num_rows;
  if (n > std::numeric_limits<uint32_t>::max()) return;  // codes are uint32
  // string_views point into out->strings, which is fully materialized and
  // stable for the rest of this function.
  std::unordered_map<std::string_view, uint32_t> ids;
  std::vector<uint32_t> provisional(n, 0);
  std::vector<uint32_t> first_row;  // provisional id -> a row holding the value
  for (size_t r = 0; r < n; ++r) {
    if (out->IsNull(r)) continue;
    auto [it, inserted] = ids.emplace(std::string_view(out->strings[r]),
                                      static_cast<uint32_t>(first_row.size()));
    if (inserted) first_row.push_back(static_cast<uint32_t>(r));
    provisional[r] = it->second;
  }
  std::vector<uint32_t> order(first_row.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return out->strings[first_row[a]] < out->strings[first_row[b]];
  });
  auto values = std::make_shared<std::vector<std::string>>();
  values->reserve(order.size());
  std::vector<uint32_t> remap(order.size());
  for (uint32_t rank = 0; rank < order.size(); ++rank) {
    remap[order[rank]] = rank;
    values->push_back(out->strings[first_row[order[rank]]]);
  }
  out->dict_codes.assign(n, 0);
  for (size_t r = 0; r < n; ++r) {
    if (!out->IsNull(r)) out->dict_codes[r] = remap[provisional[r]];
  }
  out->dict_values = std::move(values);
  ++expr::BatchMetrics::Global().dict_columns_built;
}

}  // namespace

ColumnVector MaterializeColumn(
    const std::vector<std::shared_ptr<const std::vector<types::Value>>>& rows,
    size_t column, types::DataType type) {
  ColumnVector out;
  out.type = type;
  out.num_rows = rows.size();
  const size_t n = rows.size();
  ResizeTyped(&out, n);
  for (size_t r = 0; r < n; ++r) {
    const Value& v = (*rows[r])[column];
    if (v.is_null()) {
      SetNullBit(&out, n, r);
      continue;
    }
    switch (type) {
      case DataType::kBool:
        out.bools[r] = v.bool_value() ? 1 : 0;
        break;
      case DataType::kInt:
        out.ints[r] = v.int_value();
        break;
      case DataType::kFloat:
        out.floats[r] = v.float_value();
        break;
      case DataType::kString:
        out.strings[r] = v.string_value();
        break;
      case DataType::kDate:
        out.dates[r] = v.date_value().DaysValue();
        break;
      case DataType::kDisplay:
        out.boxed[r] = v;
        break;
    }
  }
  if (type == DataType::kString && DefaultExecPolicy().dict_encode) {
    BuildDictionary(&out);
  }
  return out;
}

ColumnVector GatherColumn(const ColumnVector& src,
                          const std::vector<uint32_t>& rows) {
  ColumnVector out;
  out.type = src.type;
  out.num_rows = rows.size();
  const size_t n = rows.size();
  ResizeTyped(&out, n);
  if (src.has_dict()) {
    // Share the value table, gather only the codes: views never re-encode.
    out.dict_values = src.dict_values;
    out.dict_codes.resize(n, 0);
  }
  for (size_t k = 0; k < n; ++k) {
    const size_t r = rows[k];
    if (src.IsNull(r)) {
      SetNullBit(&out, n, k);
      continue;
    }
    if (!out.dict_codes.empty()) out.dict_codes[k] = src.dict_codes[r];
    switch (src.type) {
      case DataType::kBool:
        out.bools[k] = src.bools[r];
        break;
      case DataType::kInt:
        out.ints[k] = src.ints[r];
        break;
      case DataType::kFloat:
        out.floats[k] = src.floats[r];
        break;
      case DataType::kString:
        out.strings[k] = src.strings[r];
        break;
      case DataType::kDate:
        out.dates[k] = src.dates[r];
        break;
      case DataType::kDisplay:
        out.boxed[k] = src.boxed[r];
        break;
    }
  }
  return out;
}

ColumnVector SplatCell(const ColumnVector& src, size_t row, size_t n) {
  ColumnVector out;
  out.type = src.type;
  out.num_rows = n;
  ResizeTyped(&out, n);
  if (src.has_dict()) {
    out.dict_values = src.dict_values;
    out.dict_codes.assign(n, src.IsNull(row) ? 0u : src.dict_codes[row]);
  }
  if (src.IsNull(row)) {
    // Every row null: saturate the bitmap (bits past n are never read).
    out.null_bits.assign((n + 63) / 64, ~uint64_t{0});
    return out;
  }
  switch (src.type) {
    case DataType::kBool:
      out.bools.assign(n, src.bools[row]);
      break;
    case DataType::kInt:
      out.ints.assign(n, src.ints[row]);
      break;
    case DataType::kFloat:
      out.floats.assign(n, src.floats[row]);
      break;
    case DataType::kString:
      out.strings.assign(n, src.strings[row]);
      break;
    case DataType::kDate:
      out.dates.assign(n, src.dates[row]);
      break;
    case DataType::kDisplay:
      out.boxed.assign(n, src.boxed[row]);
      break;
  }
  return out;
}

ColumnarTable::ColumnarTable(const Relation* relation)
    : relation_(relation),
      once_(relation->num_columns()),
      columns_(relation->num_columns()) {}

const ColumnVector& ColumnarTable::column(size_t c) const {
  std::call_once(once_[c], [this, c] { columns_[c] = relation_->BuildColumn(c); });
  return columns_[c];
}

}  // namespace tioga2::db
