#include "db/columnar.h"

#include "db/relation.h"

namespace tioga2::db {

using types::DataType;
using types::Value;

types::Value ColumnVector::ValueAt(size_t row) const {
  if (IsNull(row)) return Value::Null();
  switch (type) {
    case DataType::kBool:
      return Value::Bool(bools[row] != 0);
    case DataType::kInt:
      return Value::Int(ints[row]);
    case DataType::kFloat:
      return Value::Float(floats[row]);
    case DataType::kString:
      return Value::String(strings[row]);
    case DataType::kDate:
      return Value::DateVal(types::Date(dates[row]));
    case DataType::kDisplay:
      return boxed[row];
  }
  return Value::Null();
}

ColumnVector MaterializeColumn(const std::vector<std::vector<types::Value>>& rows,
                               size_t column, types::DataType type) {
  ColumnVector out;
  out.type = type;
  out.num_rows = rows.size();
  const size_t n = rows.size();
  switch (type) {
    case DataType::kBool:
      out.bools.resize(n);
      break;
    case DataType::kInt:
      out.ints.resize(n);
      break;
    case DataType::kFloat:
      out.floats.resize(n);
      break;
    case DataType::kString:
      out.strings.resize(n);
      break;
    case DataType::kDate:
      out.dates.resize(n);
      break;
    case DataType::kDisplay:
      out.boxed.resize(n);
      break;
  }
  for (size_t r = 0; r < n; ++r) {
    const Value& v = rows[r][column];
    if (v.is_null()) {
      if (out.null_bits.empty()) out.null_bits.resize((n + 63) / 64, 0);
      out.null_bits[r >> 6] |= uint64_t{1} << (r & 63);
      continue;
    }
    switch (type) {
      case DataType::kBool:
        out.bools[r] = v.bool_value() ? 1 : 0;
        break;
      case DataType::kInt:
        out.ints[r] = v.int_value();
        break;
      case DataType::kFloat:
        out.floats[r] = v.float_value();
        break;
      case DataType::kString:
        out.strings[r] = v.string_value();
        break;
      case DataType::kDate:
        out.dates[r] = v.date_value().DaysValue();
        break;
      case DataType::kDisplay:
        out.boxed[r] = v;
        break;
    }
  }
  return out;
}

ColumnarTable::ColumnarTable(const Relation* relation)
    : relation_(relation),
      once_(relation->num_columns()),
      columns_(relation->num_columns()) {}

const ColumnVector& ColumnarTable::column(size_t c) const {
  std::call_once(once_[c], [this, c] {
    columns_[c] =
        MaterializeColumn(relation_->rows(), c, relation_->schema()->column(c).type);
  });
  return columns_[c];
}

}  // namespace tioga2::db
