#include "db/exec_policy.h"

#include <atomic>

namespace tioga2::db {

namespace {
std::atomic<bool> g_default_vectorized{true};
std::atomic<int> g_default_simd{static_cast<int>(SimdLevel::kAuto)};
std::atomic<bool> g_default_dict_encode{true};
std::atomic<double> g_default_sparse_gather_density{
    ExecPolicy{}.sparse_gather_density};
std::atomic<size_t> g_default_morsel_rows{ExecPolicy{}.morsel_rows};
std::atomic<MorselRunner*> g_default_runner{nullptr};
}  // namespace

ExecPolicy DefaultExecPolicy() {
  ExecPolicy policy;
  policy.vectorized = g_default_vectorized.load(std::memory_order_relaxed);
  policy.simd =
      static_cast<SimdLevel>(g_default_simd.load(std::memory_order_relaxed));
  policy.dict_encode = g_default_dict_encode.load(std::memory_order_relaxed);
  policy.sparse_gather_density =
      g_default_sparse_gather_density.load(std::memory_order_relaxed);
  policy.morsel_rows = g_default_morsel_rows.load(std::memory_order_relaxed);
  policy.runner = g_default_runner.load(std::memory_order_relaxed);
  return policy;
}

void SetDefaultExecPolicy(const ExecPolicy& policy) {
  g_default_vectorized.store(policy.vectorized, std::memory_order_relaxed);
  g_default_simd.store(static_cast<int>(policy.simd), std::memory_order_relaxed);
  g_default_dict_encode.store(policy.dict_encode, std::memory_order_relaxed);
  g_default_sparse_gather_density.store(policy.sparse_gather_density,
                                        std::memory_order_relaxed);
  g_default_morsel_rows.store(policy.morsel_rows, std::memory_order_relaxed);
  g_default_runner.store(policy.runner, std::memory_order_relaxed);
}

}  // namespace tioga2::db
