#include "db/exec_policy.h"

#include <atomic>

namespace tioga2::db {

namespace {
std::atomic<bool> g_default_vectorized{true};
std::atomic<int> g_default_simd{static_cast<int>(SimdLevel::kAuto)};
}  // namespace

ExecPolicy DefaultExecPolicy() {
  ExecPolicy policy;
  policy.vectorized = g_default_vectorized.load(std::memory_order_relaxed);
  policy.simd =
      static_cast<SimdLevel>(g_default_simd.load(std::memory_order_relaxed));
  return policy;
}

void SetDefaultExecPolicy(const ExecPolicy& policy) {
  g_default_vectorized.store(policy.vectorized, std::memory_order_relaxed);
  g_default_simd.store(static_cast<int>(policy.simd), std::memory_order_relaxed);
}

}  // namespace tioga2::db
