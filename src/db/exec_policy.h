#ifndef TIOGA2_DB_EXEC_POLICY_H_
#define TIOGA2_DB_EXEC_POLICY_H_

#include <cstddef>

namespace tioga2::db {

class MorselRunner;  // db/morsel.h — the worker-pool seam

/// Which SIMD instruction tier the batch-evaluator kernels may use.
/// `kAuto` resolves to the best level the build and the running CPU support
/// (see expr/simd/simd.h); the pinned levels exist so equivalence tests can
/// exercise every tier on one machine. Requesting a level the machine cannot
/// run is safe — resolution clamps to the best available.
enum class SimdLevel : int {
  kAuto = -1,
  kScalar = 0,  // no explicit SIMD: the existing typed loops
  kSSE2 = 1,    // 128-bit lanes (2×double / 2×int64)
  kAVX2 = 2,    // 256-bit lanes (4×double / 4×int64)
};

/// Execution-strategy knobs threaded through the query operators, the
/// display layer, and the renderer. A policy never changes output bytes —
/// scalar, vectorized, and SIMD paths are bit-identical (property-tested) —
/// it only selects how a value is computed, so it deliberately stays out of
/// the memo stamps (see dataflow/stamp.h, point 2).
///
/// Policies are plain values carried by an evaluation context (the dataflow
/// ExecContext, a render::RenderOptions, or an explicit operator argument),
/// which makes them per-engine / per-session and safe to vary across
/// concurrently running evaluations. `SetDefaultExecPolicy` sets the
/// process-wide default used when no explicit policy is threaded in.
struct ExecPolicy {
  /// Run the vectorized operator paths (Restrict, Sort key comparison,
  /// display-attribute batches, renderer location columns). Both settings
  /// produce bit-identical results; the toggle exists for benchmarking and
  /// equivalence tests.
  bool vectorized = true;

  /// SIMD tier for the typed batch kernels. Only consulted on the
  /// vectorized paths; all tiers produce bit-identical results.
  SimdLevel simd = SimdLevel::kAuto;

  /// Build sorted dictionaries for string columns at columnar
  /// materialization (db/columnar.h, ColumnVector::dict_values). Encoded
  /// columns let string comparisons, group-by keys, and join keys run on
  /// integer codes; the canonical `strings` vector is always materialized
  /// regardless, so the toggle never changes results — it is the escape
  /// hatch that keeps scalar-oracle runs free of encoding work entirely.
  /// Consulted through the *process default* policy at the moment a column
  /// first materializes (columnar images are shared caches, so a per-call
  /// policy cannot apply); flip it with SetDefaultExecPolicy before the
  /// first columnar() touch.
  bool dict_encode = true;

  /// Density bound for gathering a sparse selection into a dense scratch
  /// window before the SIMD kernels (selected_rows / spanned_rows). After a
  /// selective Restrict the surviving selection is sparse, which used to
  /// force every downstream numeric node onto the per-element typed loops;
  /// when the density is at or below this bound the operand is gathered
  /// once into contiguous storage and the lane kernels run on the copy.
  /// 0 disables gathering; results are bit-identical either way.
  double sparse_gather_density = 0.5;

  /// Rows per morsel for intra-operator parallelism (db/morsel.h). Each
  /// vectorized operator splits its input into morsels of this many rows,
  /// evaluates them independently (possibly on `runner`), and merges the
  /// per-morsel results in morsel order, so the knob never changes output
  /// bytes — only the scheduling granularity. Multiples of expr::kBatchSize
  /// keep inner batch boundaries aligned with the serial path; anything
  /// >= 1 is legal (0 clamps to 1). Default 32k: large enough that a morsel
  /// amortizes its claim/complete handshake, small enough that 200k-row
  /// inputs still split across 8 workers.
  size_t morsel_rows = 32768;

  /// Worker pool the vectorized operators may fan morsels out across;
  /// nullptr (the default) runs every morsel on the calling thread.
  /// Non-owning — the pool must outlive any evaluation run under the
  /// policy. runtime::ParallelEngine lends boxes its own ThreadPool through
  /// this field; see ForEachMorsel (db/morsel.h) for why that cannot
  /// deadlock the inter-box scheduler. Ignored when `vectorized` is false:
  /// the scalar oracle stays strictly sequential.
  MorselRunner* runner = nullptr;
};

/// The process-wide default policy, used whenever no explicit policy is
/// threaded in (default operator arguments, engines without an override).
/// Reads and writes are individually atomic.
ExecPolicy DefaultExecPolicy();
void SetDefaultExecPolicy(const ExecPolicy& policy);

}  // namespace tioga2::db

#endif  // TIOGA2_DB_EXEC_POLICY_H_
