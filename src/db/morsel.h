#ifndef TIOGA2_DB_MORSEL_H_
#define TIOGA2_DB_MORSEL_H_

#include <cstddef>
#include <functional>

#include "common/status.h"
#include "db/exec_policy.h"

namespace tioga2::db {

/// Where morsel tasks may run. The db layer cannot depend on runtime/, so
/// operators see worker pools only through this seam; runtime::ThreadPool
/// implements it directly. Implementations must accept Submit from any
/// thread and never block the submitter on queue capacity.
///
/// A runner is *borrowed*, never relied on: ForEachMorsel always drives the
/// work to completion on the calling thread as well, so a runner whose
/// workers are all busy (or that drops tasks on shutdown after the group
/// completed) only costs parallelism, never correctness or progress.
class MorselRunner {
 public:
  virtual ~MorselRunner() = default;

  /// Enqueues a help ticket. May be called from any thread; must not block
  /// on capacity. The ticket may run at any later time, including after the
  /// morsel group it was submitted for has completed (it then finds no
  /// morsel left to claim and returns immediately).
  virtual void Submit(std::function<void()> task) = 0;

  /// Worker count, used to bound how many help tickets a group submits.
  virtual size_t num_threads() const = 0;
};

/// Rows per morsel under `policy` (never zero; a zero knob clamps to 1).
size_t MorselRows(const ExecPolicy& policy);

/// Number of morsels [0, num_rows) splits into under `policy`. Callers
/// preallocate one result slot per morsel and merge them in morsel order.
size_t NumMorsels(const ExecPolicy& policy, size_t num_rows);

/// One morsel of work: rows [begin, end) of the operator's input domain,
/// identified by `morsel` (its index in morsel order). Bodies run
/// concurrently when a runner is attached, so they must only touch shared
/// state that is thread-safe (columnar() materialization, atomic counters)
/// and must write results into their own, caller-preallocated slot.
using MorselBody = std::function<Status(size_t morsel, size_t begin, size_t end)>;

/// Runs `body` over every morsel of [0, num_rows).
///
/// Serial mode — no runner attached, `policy.vectorized` is false (the
/// scalar oracle never parallelizes), the runner has fewer than two workers,
/// or there are fewer than two morsels — calls the body in morsel order on
/// the calling thread and returns the first failure immediately, exactly
/// like the pre-morsel loops it replaces.
///
/// Parallel mode fans the morsels out: up to num_threads() help tickets are
/// submitted to the runner and the *calling thread drains the group too*.
/// Workers (caller included) claim morsels from a shared atomic cursor until
/// none remain, so evaluation completes even if no ticket ever runs — the
/// caller never blocks waiting for pool capacity, which is what makes it
/// safe for a box already running on a pool worker (ParallelEngine) to fan
/// morsels out across the same pool without deadlocking the inter-box
/// scheduler. Every morsel runs (no early abort), and the error returned is
/// the lowest-indexed morsel's — deterministic regardless of interleaving.
///
/// Determinism: which thread runs a morsel is scheduling-dependent, but
/// morsel boundaries depend only on (num_rows, policy.morsel_rows) and
/// callers merge per-morsel results in morsel order, so outputs are
/// byte-identical to serial mode (property-tested in batch_eval_test and
/// runtime_determinism_test).
Status ForEachMorsel(const ExecPolicy& policy, size_t num_rows,
                     const MorselBody& body);

}  // namespace tioga2::db

#endif  // TIOGA2_DB_MORSEL_H_
