#ifndef TIOGA2_DB_CSV_H_
#define TIOGA2_DB_CSV_H_

#include <string>

#include "common/result.h"
#include "db/relation.h"

namespace tioga2::db {

/// Serializes a relation to typed CSV: a header of "name:type" cells
/// followed by one row per tuple. Strings are quoted; display columns are
/// rejected (display attributes are computed, never stored — §5.1).
Result<std::string> RelationToCsv(const Relation& relation);

/// Parses typed CSV produced by RelationToCsv.
Result<RelationPtr> RelationFromCsv(const std::string& csv);

/// File convenience wrappers.
Status WriteCsvFile(const Relation& relation, const std::string& path);
Result<RelationPtr> ReadCsvFile(const std::string& path);

}  // namespace tioga2::db

#endif  // TIOGA2_DB_CSV_H_
