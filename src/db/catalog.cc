#include "db/catalog.h"

#include <algorithm>

namespace tioga2::db {

namespace {
/// Innermost live ReadPin on this thread (across all catalogs; each frame
/// records which catalog it pins, so nested pins of different catalogs
/// coexist).
thread_local Catalog::ReadPin* tl_top_pin = nullptr;
}  // namespace

Catalog::Catalog() { snapshot_.store(new Snapshot(), std::memory_order_release); }

Catalog::~Catalog() {
  // Snapshots retired through a domain are deleted by the domain; only the
  // currently-published one is still ours.
  delete snapshot_.load(std::memory_order_acquire);
}

Catalog::ReadPin::ReadPin(const Catalog& catalog)
    : catalog_(&catalog),
      guard_(catalog.domain_),
      snapshot_(catalog.snapshot_.load(std::memory_order_acquire)),
      prev_(tl_top_pin) {
  tl_top_pin = this;
}

Catalog::ReadPin::~ReadPin() { tl_top_pin = prev_; }

const Catalog::Snapshot* Catalog::PinnedSnapshot() const {
  for (ReadPin* pin = tl_top_pin; pin != nullptr; pin = pin->prev_) {
    if (pin->catalog_ == this)
      return static_cast<const Snapshot*>(pin->snapshot_);
  }
  return nullptr;
}

void Catalog::PublishSnapshot() {
  const Snapshot* fresh = new Snapshot{tables_, programs_};
  const Snapshot* old = snapshot_.exchange(fresh, std::memory_order_acq_rel);
  if (domain_ != nullptr) {
    domain_->Retire([old] { delete old; });
  } else {
    // No domain wired ⇒ no concurrent readers (the pre-snapshot contract):
    // deleting inline keeps single-threaded use allocation-neutral.
    delete old;
  }
}

Status Catalog::RegisterTable(const std::string& name, RelationPtr relation) {
  if (name.empty()) return Status::InvalidArgument("table name must be non-empty");
  if (relation == nullptr) return Status::InvalidArgument("relation must be non-null");
  // A recreation after a drop continues above the dropped table's final
  // version, so stamps minted against the old incarnation can never match.
  uint64_t version = 1;
  if (auto floor = version_floors_.find(name); floor != version_floors_.end()) {
    version = floor->second + 1;
  }
  auto [it, inserted] = tables_.emplace(name, TableEntry{std::move(relation), version});
  if (!inserted) return Status::AlreadyExists("table '" + name + "' already exists");
  PublishSnapshot();
  if (listener_ != nullptr) {
    listener_->OnRegisterTable(name, it->second.relation, it->second.version);
  }
  return Status::OK();
}

Status Catalog::ReplaceTable(const std::string& name, RelationPtr relation) {
  if (relation == nullptr) return Status::InvalidArgument("relation must be non-null");
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table named '" + name + "'");
  if (!(*it->second.relation->schema() == *relation->schema())) {
    return Status::TypeError("ReplaceTable may not change the schema of '" + name +
                             "': have " + it->second.relation->schema()->ToString() +
                             ", got " + relation->schema()->ToString());
  }
  it->second.relation = std::move(relation);
  ++it->second.version;
  PublishSnapshot();
  if (listener_ != nullptr) {
    listener_->OnReplaceTable(name, it->second.relation, it->second.version);
  }
  return Status::OK();
}

Result<TableDelta> Catalog::UpdateRow(const std::string& name, size_t row,
                                      Tuple tuple) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table named '" + name + "'");
  const RelationPtr& current = it->second.relation;
  if (row >= current->num_rows()) {
    return Status::OutOfRange("row " + std::to_string(row) + " out of range in '" +
                              name + "'");
  }
  TableDelta delta;
  delta.table = name;
  delta.row = row;
  delta.old_tuple = current->row(row);
  delta.new_tuple = tuple;
  delta.old_version = it->second.version;
  RelationBuilder builder(current->schema());
  builder.Reserve(current->num_rows());
  for (size_t r = 0; r < current->num_rows(); ++r) {
    if (r == row) {
      // The checked path validates the new tuple's arity and types.
      TIOGA2_RETURN_IF_ERROR(builder.AddRow(tuple));
    } else {
      builder.AddRowUnchecked(current->row(r));
    }
  }
  it->second.relation = builder.Build();
  ++it->second.version;
  delta.new_version = it->second.version;
  PublishSnapshot();
  if (listener_ != nullptr) {
    listener_->OnUpdateRow(delta, it->second.relation);
  }
  return delta;
}

Status Catalog::DropTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table named '" + name + "'");
  const uint64_t version_at_drop = it->second.version;
  // Remember the final version so a same-named recreation stays monotonic.
  uint64_t& floor = version_floors_[name];
  floor = std::max(floor, version_at_drop);
  tables_.erase(it);
  PublishSnapshot();
  if (listener_ != nullptr) listener_->OnDropTable(name, version_at_drop);
  return Status::OK();
}

Result<RelationPtr> Catalog::GetTable(const std::string& name) const {
  if (const Snapshot* pinned = PinnedSnapshot()) {
    auto it = pinned->tables.find(name);
    if (it == pinned->tables.end())
      return Status::NotFound("no table named '" + name + "'");
    return it->second.relation;
  }
  common::ReclamationDomain::Guard guard(domain_);
  const Snapshot* snap = snapshot_.load(std::memory_order_acquire);
  auto it = snap->tables.find(name);
  if (it == snap->tables.end())
    return Status::NotFound("no table named '" + name + "'");
  return it->second.relation;  // shared_ptr copied while pinned
}

bool Catalog::HasTable(const std::string& name) const {
  if (const Snapshot* pinned = PinnedSnapshot())
    return pinned->tables.count(name) > 0;
  common::ReclamationDomain::Guard guard(domain_);
  const Snapshot* snap = snapshot_.load(std::memory_order_acquire);
  return snap->tables.count(name) > 0;
}

Result<uint64_t> Catalog::TableVersion(const std::string& name) const {
  if (const Snapshot* pinned = PinnedSnapshot()) {
    auto it = pinned->tables.find(name);
    if (it == pinned->tables.end())
      return Status::NotFound("no table named '" + name + "'");
    return it->second.version;
  }
  common::ReclamationDomain::Guard guard(domain_);
  const Snapshot* snap = snapshot_.load(std::memory_order_acquire);
  auto it = snap->tables.find(name);
  if (it == snap->tables.end())
    return Status::NotFound("no table named '" + name + "'");
  return it->second.version;
}

std::vector<std::string> Catalog::ListTables() const {
  std::vector<std::string> names;
  if (const Snapshot* pinned = PinnedSnapshot()) {
    names.reserve(pinned->tables.size());
    for (const auto& [name, entry] : pinned->tables) names.push_back(name);
    return names;
  }
  common::ReclamationDomain::Guard guard(domain_);
  const Snapshot* snap = snapshot_.load(std::memory_order_acquire);
  names.reserve(snap->tables.size());
  for (const auto& [name, entry] : snap->tables) names.push_back(name);
  return names;
}

void Catalog::SaveProgram(const std::string& name, std::string serialized) {
  std::string& slot = programs_[name];
  slot = std::move(serialized);
  PublishSnapshot();
  if (listener_ != nullptr) listener_->OnSaveProgram(name, slot);
}

Status Catalog::RestoreTable(const std::string& name, RelationPtr relation,
                             uint64_t version) {
  if (name.empty()) return Status::InvalidArgument("table name must be non-empty");
  if (relation == nullptr) return Status::InvalidArgument("relation must be non-null");
  tables_[name] = TableEntry{std::move(relation), version};
  PublishSnapshot();
  return Status::OK();
}

void Catalog::RestoreVersionFloor(const std::string& name, uint64_t version) {
  uint64_t& floor = version_floors_[name];
  floor = std::max(floor, version);
}

Result<std::string> Catalog::GetProgram(const std::string& name) const {
  if (const Snapshot* pinned = PinnedSnapshot()) {
    auto it = pinned->programs.find(name);
    if (it == pinned->programs.end())
      return Status::NotFound("no program named '" + name + "'");
    return it->second;
  }
  common::ReclamationDomain::Guard guard(domain_);
  const Snapshot* snap = snapshot_.load(std::memory_order_acquire);
  auto it = snap->programs.find(name);
  if (it == snap->programs.end())
    return Status::NotFound("no program named '" + name + "'");
  return it->second;
}

std::vector<std::string> Catalog::ListPrograms() const {
  std::vector<std::string> names;
  if (const Snapshot* pinned = PinnedSnapshot()) {
    names.reserve(pinned->programs.size());
    for (const auto& [name, program] : pinned->programs) names.push_back(name);
    return names;
  }
  common::ReclamationDomain::Guard guard(domain_);
  const Snapshot* snap = snapshot_.load(std::memory_order_acquire);
  names.reserve(snap->programs.size());
  for (const auto& [name, program] : snap->programs) names.push_back(name);
  return names;
}

}  // namespace tioga2::db
