#include "db/catalog.h"

namespace tioga2::db {

Status Catalog::RegisterTable(const std::string& name, RelationPtr relation) {
  if (name.empty()) return Status::InvalidArgument("table name must be non-empty");
  if (relation == nullptr) return Status::InvalidArgument("relation must be non-null");
  auto [it, inserted] = tables_.emplace(name, TableEntry{std::move(relation), 1});
  if (!inserted) return Status::AlreadyExists("table '" + name + "' already exists");
  return Status::OK();
}

Status Catalog::ReplaceTable(const std::string& name, RelationPtr relation) {
  if (relation == nullptr) return Status::InvalidArgument("relation must be non-null");
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table named '" + name + "'");
  if (!(*it->second.relation->schema() == *relation->schema())) {
    return Status::TypeError("ReplaceTable may not change the schema of '" + name +
                             "': have " + it->second.relation->schema()->ToString() +
                             ", got " + relation->schema()->ToString());
  }
  it->second.relation = std::move(relation);
  ++it->second.version;
  return Status::OK();
}

Result<TableDelta> Catalog::UpdateRow(const std::string& name, size_t row,
                                      Tuple tuple) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table named '" + name + "'");
  const RelationPtr& current = it->second.relation;
  if (row >= current->num_rows()) {
    return Status::OutOfRange("row " + std::to_string(row) + " out of range in '" +
                              name + "'");
  }
  TableDelta delta;
  delta.table = name;
  delta.row = row;
  delta.old_tuple = current->row(row);
  delta.new_tuple = tuple;
  delta.old_version = it->second.version;
  RelationBuilder builder(current->schema());
  builder.Reserve(current->num_rows());
  for (size_t r = 0; r < current->num_rows(); ++r) {
    if (r == row) {
      // The checked path validates the new tuple's arity and types.
      TIOGA2_RETURN_IF_ERROR(builder.AddRow(tuple));
    } else {
      builder.AddRowUnchecked(current->row(r));
    }
  }
  it->second.relation = builder.Build();
  ++it->second.version;
  delta.new_version = it->second.version;
  return delta;
}

Status Catalog::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) return Status::NotFound("no table named '" + name + "'");
  return Status::OK();
}

Result<RelationPtr> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table named '" + name + "'");
  return it->second.relation;
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.find(name) != tables_.end();
}

Result<uint64_t> Catalog::TableVersion(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table named '" + name + "'");
  return it->second.version;
}

std::vector<std::string> Catalog::ListTables() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, entry] : tables_) names.push_back(name);
  return names;
}

void Catalog::SaveProgram(const std::string& name, std::string serialized) {
  programs_[name] = std::move(serialized);
}

Result<std::string> Catalog::GetProgram(const std::string& name) const {
  auto it = programs_.find(name);
  if (it == programs_.end()) return Status::NotFound("no program named '" + name + "'");
  return it->second;
}

std::vector<std::string> Catalog::ListPrograms() const {
  std::vector<std::string> names;
  names.reserve(programs_.size());
  for (const auto& [name, program] : programs_) names.push_back(name);
  return names;
}

}  // namespace tioga2::db
