#include "db/catalog.h"

#include <algorithm>

namespace tioga2::db {

Status Catalog::RegisterTable(const std::string& name, RelationPtr relation) {
  if (name.empty()) return Status::InvalidArgument("table name must be non-empty");
  if (relation == nullptr) return Status::InvalidArgument("relation must be non-null");
  // A recreation after a drop continues above the dropped table's final
  // version, so stamps minted against the old incarnation can never match.
  uint64_t version = 1;
  if (auto floor = version_floors_.find(name); floor != version_floors_.end()) {
    version = floor->second + 1;
  }
  auto [it, inserted] = tables_.emplace(name, TableEntry{std::move(relation), version});
  if (!inserted) return Status::AlreadyExists("table '" + name + "' already exists");
  if (listener_ != nullptr) {
    listener_->OnRegisterTable(name, it->second.relation, it->second.version);
  }
  return Status::OK();
}

Status Catalog::ReplaceTable(const std::string& name, RelationPtr relation) {
  if (relation == nullptr) return Status::InvalidArgument("relation must be non-null");
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table named '" + name + "'");
  if (!(*it->second.relation->schema() == *relation->schema())) {
    return Status::TypeError("ReplaceTable may not change the schema of '" + name +
                             "': have " + it->second.relation->schema()->ToString() +
                             ", got " + relation->schema()->ToString());
  }
  it->second.relation = std::move(relation);
  ++it->second.version;
  if (listener_ != nullptr) {
    listener_->OnReplaceTable(name, it->second.relation, it->second.version);
  }
  return Status::OK();
}

Result<TableDelta> Catalog::UpdateRow(const std::string& name, size_t row,
                                      Tuple tuple) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table named '" + name + "'");
  const RelationPtr& current = it->second.relation;
  if (row >= current->num_rows()) {
    return Status::OutOfRange("row " + std::to_string(row) + " out of range in '" +
                              name + "'");
  }
  TableDelta delta;
  delta.table = name;
  delta.row = row;
  delta.old_tuple = current->row(row);
  delta.new_tuple = tuple;
  delta.old_version = it->second.version;
  RelationBuilder builder(current->schema());
  builder.Reserve(current->num_rows());
  for (size_t r = 0; r < current->num_rows(); ++r) {
    if (r == row) {
      // The checked path validates the new tuple's arity and types.
      TIOGA2_RETURN_IF_ERROR(builder.AddRow(tuple));
    } else {
      builder.AddRowUnchecked(current->row(r));
    }
  }
  it->second.relation = builder.Build();
  ++it->second.version;
  delta.new_version = it->second.version;
  if (listener_ != nullptr) {
    listener_->OnUpdateRow(delta, it->second.relation);
  }
  return delta;
}

Status Catalog::DropTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table named '" + name + "'");
  const uint64_t version_at_drop = it->second.version;
  // Remember the final version so a same-named recreation stays monotonic.
  uint64_t& floor = version_floors_[name];
  floor = std::max(floor, version_at_drop);
  tables_.erase(it);
  if (listener_ != nullptr) listener_->OnDropTable(name, version_at_drop);
  return Status::OK();
}

Result<RelationPtr> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table named '" + name + "'");
  return it->second.relation;
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.find(name) != tables_.end();
}

Result<uint64_t> Catalog::TableVersion(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table named '" + name + "'");
  return it->second.version;
}

std::vector<std::string> Catalog::ListTables() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, entry] : tables_) names.push_back(name);
  return names;
}

void Catalog::SaveProgram(const std::string& name, std::string serialized) {
  std::string& slot = programs_[name];
  slot = std::move(serialized);
  if (listener_ != nullptr) listener_->OnSaveProgram(name, slot);
}

Status Catalog::RestoreTable(const std::string& name, RelationPtr relation,
                             uint64_t version) {
  if (name.empty()) return Status::InvalidArgument("table name must be non-empty");
  if (relation == nullptr) return Status::InvalidArgument("relation must be non-null");
  tables_[name] = TableEntry{std::move(relation), version};
  return Status::OK();
}

void Catalog::RestoreVersionFloor(const std::string& name, uint64_t version) {
  uint64_t& floor = version_floors_[name];
  floor = std::max(floor, version);
}

Result<std::string> Catalog::GetProgram(const std::string& name) const {
  auto it = programs_.find(name);
  if (it == programs_.end()) return Status::NotFound("no program named '" + name + "'");
  return it->second;
}

std::vector<std::string> Catalog::ListPrograms() const {
  std::vector<std::string> names;
  names.reserve(programs_.size());
  for (const auto& [name, program] : programs_) names.push_back(name);
  return names;
}

}  // namespace tioga2::db
