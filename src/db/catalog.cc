#include "db/catalog.h"

namespace tioga2::db {

Status Catalog::RegisterTable(const std::string& name, RelationPtr relation) {
  if (name.empty()) return Status::InvalidArgument("table name must be non-empty");
  if (relation == nullptr) return Status::InvalidArgument("relation must be non-null");
  auto [it, inserted] = tables_.emplace(name, TableEntry{std::move(relation), 1});
  if (!inserted) return Status::AlreadyExists("table '" + name + "' already exists");
  return Status::OK();
}

Status Catalog::ReplaceTable(const std::string& name, RelationPtr relation) {
  if (relation == nullptr) return Status::InvalidArgument("relation must be non-null");
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table named '" + name + "'");
  if (!(*it->second.relation->schema() == *relation->schema())) {
    return Status::TypeError("ReplaceTable may not change the schema of '" + name +
                             "': have " + it->second.relation->schema()->ToString() +
                             ", got " + relation->schema()->ToString());
  }
  it->second.relation = std::move(relation);
  ++it->second.version;
  return Status::OK();
}

Status Catalog::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) return Status::NotFound("no table named '" + name + "'");
  return Status::OK();
}

Result<RelationPtr> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table named '" + name + "'");
  return it->second.relation;
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.find(name) != tables_.end();
}

Result<uint64_t> Catalog::TableVersion(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table named '" + name + "'");
  return it->second.version;
}

std::vector<std::string> Catalog::ListTables() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, entry] : tables_) names.push_back(name);
  return names;
}

void Catalog::SaveProgram(const std::string& name, std::string serialized) {
  programs_[name] = std::move(serialized);
}

Result<std::string> Catalog::GetProgram(const std::string& name) const {
  auto it = programs_.find(name);
  if (it == programs_.end()) return Status::NotFound("no program named '" + name + "'");
  return it->second;
}

std::vector<std::string> Catalog::ListPrograms() const {
  std::vector<std::string> names;
  names.reserve(programs_.size());
  for (const auto& [name, program] : programs_) names.push_back(name);
  return names;
}

}  // namespace tioga2::db
