#include "db/schema.h"

#include <unordered_set>

namespace tioga2::db {

Result<Schema> Schema::Make(std::vector<Column> columns) {
  std::unordered_set<std::string> seen;
  for (const Column& column : columns) {
    if (column.name.empty()) {
      return Status::InvalidArgument("column names must be non-empty");
    }
    if (!seen.insert(column.name).second) {
      return Status::AlreadyExists("duplicate column name '" + column.name + "'");
    }
  }
  return Schema(std::move(columns));
}

std::optional<size_t> Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return std::nullopt;
}

Result<size_t> Schema::ColumnIndex(const std::string& name) const {
  std::optional<size_t> index = FindColumn(name);
  if (!index.has_value()) {
    return Status::NotFound("no column named '" + name + "' in " + ToString());
  }
  return *index;
}

Result<Schema> Schema::AddColumn(Column column) const {
  std::vector<Column> columns = columns_;
  columns.push_back(std::move(column));
  return Make(std::move(columns));
}

Result<Schema> Schema::RemoveColumn(size_t i) const {
  if (i >= columns_.size()) {
    return Status::OutOfRange("column index " + std::to_string(i) + " out of range");
  }
  std::vector<Column> columns = columns_;
  columns.erase(columns.begin() + static_cast<ptrdiff_t>(i));
  return Schema(std::move(columns));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name + ":" + types::DataTypeToString(columns_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace tioga2::db
