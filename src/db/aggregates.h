#ifndef TIOGA2_DB_AGGREGATES_H_
#define TIOGA2_DB_AGGREGATES_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "db/exec_policy.h"
#include "db/relation.h"

namespace tioga2::db {

/// Aggregate functions available to GroupBy. These are the kind of
/// "additional boxes constructed by big programmers" the paper's §1.2
/// principle 5 anticipates: visualizations of summarized data (e.g. average
/// temperature per station) need them.
enum class AggFn { kCount, kSum, kAvg, kMin, kMax };

/// "count", "sum", ...
std::string AggFnToString(AggFn fn);
bool AggFnFromString(const std::string& text, AggFn* out);

/// One aggregate column specification: fn over `column` (ignored for
/// kCount), emitted as `output_name`.
struct AggSpec {
  AggFn fn = AggFn::kCount;
  std::string column;
  std::string output_name;
};

/// Hash group-by: groups `input` on the `keys` columns (nulls form their own
/// group) and computes `aggs` per group. The output schema is the key
/// columns followed by the aggregate columns. Null inputs are skipped by
/// every aggregate; empty groups cannot occur. Output group order follows
/// first appearance in the input (deterministic).
///
/// Types: count -> int; sum/avg -> float; min/max -> the column's type.
///
/// With `policy.vectorized` set, keys whose columns are int/bool/date or
/// dictionary-encoded strings group on a columnar path (hashing typed cells
/// and dictionary codes instead of building a TupleKey string per row);
/// float keys and un-encoded strings take the scalar row loop. Both paths
/// produce identical relations — group order is first appearance either way,
/// and the columnar path reproduces TupleKey's exact grouping semantics
/// (see aggregates.cc for the eligibility argument).
Result<RelationPtr> GroupBy(const RelationPtr& input,
                            const std::vector<std::string>& keys,
                            const std::vector<AggSpec>& aggs,
                            const ExecPolicy& policy = DefaultExecPolicy());

/// Removes duplicate tuples, keeping first occurrences. Display columns are
/// rejected (no cheap canonical form).
Result<RelationPtr> Distinct(const RelationPtr& input);

/// Bag union: appends `second` to `first`; schemas must match exactly.
Result<RelationPtr> UnionAll(const RelationPtr& first, const RelationPtr& second);

/// Canonical grouping key for a tuple restricted to `columns` (int and
/// float values unify, so 2 and 2.0 land in one group). Exposed for reuse
/// by tests and operators.
Result<std::string> TupleKey(const Tuple& tuple, const std::vector<size_t>& columns);

}  // namespace tioga2::db

#endif  // TIOGA2_DB_AGGREGATES_H_
