#ifndef TIOGA2_DB_COLUMNAR_H_
#define TIOGA2_DB_COLUMNAR_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "db/schema.h"
#include "types/value.h"

namespace tioga2::db {

class Relation;

/// One column of a relation materialized as a typed vector plus a packed
/// null bitmap. Exactly one of the typed vectors is populated (the one
/// matching `type`); null rows hold a default-constructed element so that
/// vector positions stay aligned with row numbers. Display columns are kept
/// boxed (a DrawableList is a shared_ptr, so "boxed" is one pointer copy).
///
/// ColumnVectors are immutable after construction and derived from the row
/// store, never the other way around: the rows remain the canonical value of
/// a Relation (see ARCHITECTURE.md, "Row vs columnar representation").
struct ColumnVector {
  types::DataType type = types::DataType::kBool;
  size_t num_rows = 0;

  /// Packed null bitmap: bit r of word r/64 is 1 iff row r is null. Empty
  /// when the column has no nulls (the common case — skip the test).
  std::vector<uint64_t> null_bits;

  std::vector<uint8_t> bools;     // kBool
  std::vector<int64_t> ints;      // kInt
  std::vector<double> floats;     // kFloat
  std::vector<std::string> strings;  // kString
  std::vector<int64_t> dates;     // kDate, as days since epoch
  std::vector<types::Value> boxed;   // kDisplay

  /// Dictionary encoding of a kString column, built once when the column
  /// first materializes (gated by the process-default ExecPolicy's
  /// `dict_encode`; see MaterializeColumn). `dict_values` is the
  /// sorted-unique value table in ascending std::string order — exactly the
  /// order Value::Compare gives strings, so code order == string order and
  /// ordered comparisons are valid on codes. `dict_codes[r]` indexes it for
  /// every non-null row r (null rows hold 0, never read). The canonical
  /// `strings` vector is always populated too: the dictionary accelerates
  /// downstream operators, it never replaces the typed vector.
  ///
  /// Selection/join views *share* `dict_values` (one shared_ptr copy) and
  /// gather only the codes, so an encoding decision made once at base
  /// materialization propagates through arbitrarily deep view chains
  /// without re-encoding — and two columns with the same `dict_values`
  /// pointer can compare, group, and join on codes alone.
  std::shared_ptr<const std::vector<std::string>> dict_values;
  std::vector<uint32_t> dict_codes;

  bool has_dict() const { return dict_values != nullptr; }

  bool has_nulls() const { return !null_bits.empty(); }

  bool IsNull(size_t row) const {
    return has_nulls() && ((null_bits[row >> 6] >> (row & 63)) & 1) != 0;
  }

  /// Reconstructs the boxed value of row `row` — bit-identical to the value
  /// stored in the originating tuple (asserted by columnar_test's round-trip
  /// property).
  types::Value ValueAt(size_t row) const;
};

/// The lazily materialized columnar image of a Relation. Columns are built
/// independently on first access (a Sort touching one key column does not
/// pay for materializing strings or display lists it never reads), guarded
/// by per-column once_flags so concurrent readers — the ParallelEngine fires
/// independent boxes over shared base relations — see each column built
/// exactly once.
class ColumnarTable {
 public:
  /// `relation` must outlive the table (the table is owned by it).
  explicit ColumnarTable(const Relation* relation);

  ColumnarTable(const ColumnarTable&) = delete;
  ColumnarTable& operator=(const ColumnarTable&) = delete;

  size_t num_columns() const { return columns_.size(); }

  /// Column `c`, materializing it from the row store on first use.
  const ColumnVector& column(size_t c) const;

 private:
  const Relation* relation_;
  mutable std::vector<std::once_flag> once_;
  mutable std::vector<ColumnVector> columns_;
};

/// Builds one typed column from shared rows (exposed for tests; Relation
/// callers go through Relation::columnar()).
ColumnVector MaterializeColumn(
    const std::vector<std::shared_ptr<const std::vector<types::Value>>>& rows,
    size_t column, types::DataType type);

/// Gathers `rows` of `src` into a new ColumnVector of the same type —
/// element k of the result is src[rows[k]]. This is how a selection or join
/// view's columnar() builds its columns straight from the parents' typed
/// vectors, without boxing a Value or touching any row store (exposed for
/// tests).
ColumnVector GatherColumn(const ColumnVector& src,
                          const std::vector<uint32_t>& rows);

/// A column of `n` rows, every element equal to src[row] (or all-null when
/// src[row] is null). The batched nested-loop join broadcasts the fixed
/// left-row cells over a block of right rows with this.
ColumnVector SplatCell(const ColumnVector& src, size_t row, size_t n);

}  // namespace tioga2::db

#endif  // TIOGA2_DB_COLUMNAR_H_
