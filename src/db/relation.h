#ifndef TIOGA2_DB_RELATION_H_
#define TIOGA2_DB_RELATION_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "db/columnar.h"
#include "db/schema.h"
#include "types/value.h"

namespace tioga2::db {

/// One row: values positionally aligned with a Schema.
using Tuple = std::vector<types::Value>;

class Relation;
using RelationPtr = std::shared_ptr<const Relation>;

/// An in-memory relation. Relations are built once via RelationBuilder and
/// immutable afterwards; all query operators produce new relations. This
/// gives the dataflow engine's memoization (the basis of the paper's
/// "immediate visual feedback") value semantics for free.
///
/// The row store is the canonical representation; columnar() exposes a
/// lazily materialized per-column typed view (vectors + null bitmaps) that
/// the vectorized operators and expr::BatchEvaluator scan. The columnar view
/// is a pure cache: it never diverges from the rows, and operators that copy
/// tuples between relations keep values bit-identical regardless of which
/// representation produced the decision (see ARCHITECTURE.md).
class Relation {
 public:
  /// An empty relation over `schema`.
  explicit Relation(SchemaPtr schema) : schema_(std::move(schema)) {}

  /// The schema. Never null.
  const SchemaPtr& schema() const { return schema_; }

  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return schema_->num_columns(); }

  /// Row `i`; i < num_rows().
  const Tuple& row(size_t i) const { return rows_[i]; }
  const std::vector<Tuple>& rows() const { return rows_; }

  /// Value at row `r`, column `c`.
  const types::Value& at(size_t r, size_t c) const { return rows_[r][c]; }

  /// The columnar view of this relation, materialized (per column) on first
  /// use. Thread-safe: concurrent box firings over a shared base relation
  /// build each column exactly once.
  const ColumnarTable& columnar() const;

  /// A table rendering ("name | name\n----\nv | v ..."), the shape produced
  /// by a "terminal monitor" (§5.2); used for debugging and golden tests.
  std::string ToString(size_t max_rows = 20) const;

  friend class RelationBuilder;

 private:
  SchemaPtr schema_;
  std::vector<Tuple> rows_;
  mutable std::once_flag columnar_once_;
  mutable std::unique_ptr<const ColumnarTable> columnar_;
};

/// Accumulates tuples for a new Relation, type-checking each row against the
/// schema (nulls are allowed in any column).
class RelationBuilder {
 public:
  explicit RelationBuilder(SchemaPtr schema);

  /// Appends a row after checking arity and column types.
  Status AddRow(Tuple row);

  /// Appends a row without checks. Only for operators that construct rows
  /// directly from already-checked relations (hot path).
  void AddRowUnchecked(Tuple row);

  /// Reserves capacity for `n` rows.
  void Reserve(size_t n);

  size_t num_rows() const { return relation_->rows_.size(); }
  const SchemaPtr& schema() const { return relation_->schema_; }

  /// Finishes and returns the relation; the builder is left empty.
  RelationPtr Build();

 private:
  std::shared_ptr<Relation> relation_;
};

/// Convenience: builds a relation from columns and rows, failing on any
/// schema or type mismatch.
Result<RelationPtr> MakeRelation(std::vector<Column> columns, std::vector<Tuple> rows);

/// Row-splice helpers for the delta-maintenance path (dataflow/delta.h).
/// Each returns a new relation byte-identical to rebuilding the input with
/// the one-row edit applied; the input is untouched. The edited tuple is
/// type-checked against the schema; unchanged rows are copied unchecked.
/// For inserts, `row` may equal num_rows() (append).
Result<RelationPtr> WithRowReplaced(const RelationPtr& input, size_t row, Tuple tuple);
Result<RelationPtr> WithRowInserted(const RelationPtr& input, size_t row, Tuple tuple);
Result<RelationPtr> WithRowErased(const RelationPtr& input, size_t row);

/// Structural equality: same schema, same rows in the same order.
bool RelationEquals(const Relation& a, const Relation& b);

}  // namespace tioga2::db

#endif  // TIOGA2_DB_RELATION_H_
