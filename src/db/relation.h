#ifndef TIOGA2_DB_RELATION_H_
#define TIOGA2_DB_RELATION_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "db/columnar.h"
#include "db/schema.h"
#include "types/value.h"

namespace tioga2::db {

/// One row: values positionally aligned with a Schema.
using Tuple = std::vector<types::Value>;

/// Shared immutable row. Tuples are never mutated after a relation is built,
/// so operators that keep a surviving row (Restrict, Sort, Limit, Sample,
/// the delta splice helpers) share the pointer instead of copying the
/// values — copying a demo-station row costs two string allocations, sharing
/// it costs one refcount bump (ROADMAP "Cheaper tuple materialization").
using TuplePtr = std::shared_ptr<const Tuple>;

class Relation;
using RelationPtr = std::shared_ptr<const Relation>;

/// An in-memory relation. Relations are built once via RelationBuilder (or
/// derived as a view, below) and immutable afterwards; all query operators
/// produce new relations. This gives the dataflow engine's memoization (the
/// basis of the paper's "immediate visual feedback") value semantics for
/// free.
///
/// A relation exists in one of two forms:
///
///   * **Materialized** — owns a row store of shared tuples. This is what
///     RelationBuilder produces and what every scalar (`policy.vectorized ==
///     false`) operator path emits; it is the byte-identity oracle the
///     vectorized paths are property-tested against.
///   * **View** — a selection over one parent (Restrict's vectorized path:
///     the surviving row ids) or a gather over two parents (the columnar
///     hash/nested-loop join: aligned left/right row ids, output row k being
///     left[left_rows[k]] ++ right[right_rows[k]]). Views hold their parents
///     alive via shared_ptr and materialize a row store lazily, on first
///     row-wise access: a single-parent view shares the parent's TuplePtrs
///     (pointer copies), a join view concatenates once. `at()` and
///     `columnar()` never materialize rows — `columnar()` gathers typed
///     column vectors directly through the selection from the parents'
///     columnar views.
///
/// Both forms hold exactly the same values: fingerprints, stamps, ToString
/// and RelationEquals cannot tell them apart (see DESIGN.md "Join
/// execution" for the lifetime rules).
class Relation {
 public:
  /// An empty materialized relation over `schema`.
  explicit Relation(SchemaPtr schema) : schema_(std::move(schema)) {}

  /// A view selecting rows `rows` of `parent`, in order (duplicates allowed:
  /// Sort emits a permutation, Restrict a subsequence). Shares the parent's
  /// schema.
  static RelationPtr MakeSelectionView(RelationPtr parent,
                                       std::vector<uint32_t> rows);

  /// A join view over `schema` (= left columns then right columns): row k is
  /// the concatenation of left[left_rows[k]] and right[right_rows[k]]. The
  /// two row vectors must have equal length.
  static RelationPtr MakeJoinView(SchemaPtr schema, RelationPtr left,
                                  std::vector<uint32_t> left_rows,
                                  RelationPtr right,
                                  std::vector<uint32_t> right_rows);

  /// The schema. Never null.
  const SchemaPtr& schema() const { return schema_; }

  size_t num_rows() const {
    return is_view() ? left_rows_.size() : rows_.size();
  }
  size_t num_columns() const { return schema_->num_columns(); }

  /// True when this relation is a selection/join view over parent
  /// relations (its row store materializes lazily).
  bool is_view() const { return left_parent_ != nullptr; }

  /// Row `i`; i < num_rows(). Materializes the row store of a view on first
  /// use (thread-safe, exactly once).
  const Tuple& row(size_t i) const {
    EnsureRows();
    return *rows_[i];
  }

  /// Shared pointer to row `i` — the copy-free way to keep a surviving row.
  const TuplePtr& row_ptr(size_t i) const {
    EnsureRows();
    return rows_[i];
  }

  /// All rows as shared pointers (materializing a view's row store first).
  const std::vector<TuplePtr>& row_ptrs() const {
    EnsureRows();
    return rows_;
  }

  /// Value at row `r`, column `c`. Never materializes a view's row store:
  /// views forward to the parent cell through the selection.
  const types::Value& at(size_t r, size_t c) const {
    if (!is_view()) return (*rows_[r])[c];
    if (right_parent_ == nullptr) return left_parent_->at(left_rows_[r], c);
    return c < left_width_
               ? left_parent_->at(left_rows_[r], c)
               : right_parent_->at(right_rows_[r], c - left_width_);
  }

  /// The columnar view of this relation, materialized (per column) on first
  /// use. Thread-safe: concurrent box firings over a shared base relation
  /// build each column exactly once. For a view, columns gather from the
  /// parents' columnar views through the selection — a typed copy that never
  /// boxes a Value and never touches the row store.
  const ColumnarTable& columnar() const;

  /// A table rendering ("name | name\n----\nv | v ..."), the shape produced
  /// by a "terminal monitor" (§5.2); used for debugging and golden tests.
  std::string ToString(size_t max_rows = 20) const;

  friend class RelationBuilder;
  friend class ColumnarTable;

 private:
  /// Builds column `c` for the ColumnarTable: materialized relations scan
  /// the row store, views gather through the selection.
  ColumnVector BuildColumn(size_t c) const;

  /// Resolves the composed selection of a chain of selection views: fills
  /// compose_base_/compose_rows_ so that this view's row k is
  /// compose_base_->row((*compose_rows_)[k]) with compose_base_ the deepest
  /// ancestor that is not itself a selection view. Lets a view-of-a-view
  /// gather its columns once from the base columns instead of materializing
  /// every intermediate columnar image. Only meaningful for selection views.
  void EnsureComposedSelection() const;

  /// Fills a view's row store (no-op for materialized relations).
  void EnsureRows() const;

  SchemaPtr schema_;

  /// Row store. Canonical for materialized relations; lazily filled for
  /// views (guarded by rows_once_).
  mutable std::vector<TuplePtr> rows_;
  mutable std::once_flag rows_once_;

  /// View state; left_parent_ == nullptr means materialized.
  RelationPtr left_parent_;
  RelationPtr right_parent_;  // join views only
  std::vector<uint32_t> left_rows_;
  std::vector<uint32_t> right_rows_;
  size_t left_width_ = 0;  // join views: columns owned by the left parent

  mutable std::once_flag columnar_once_;
  mutable std::unique_ptr<const ColumnarTable> columnar_;

  /// Composed-selection cache (see EnsureComposedSelection). compose_base_
  /// stays alive through the parent shared_ptr chain; compose_rows_ points
  /// at left_rows_ when no composition was needed (chain depth 1).
  mutable std::once_flag compose_once_;
  mutable const Relation* compose_base_ = nullptr;
  mutable const std::vector<uint32_t>* compose_rows_ = nullptr;
  mutable std::vector<uint32_t> composed_rows_storage_;
};

/// Accumulates tuples for a new materialized Relation, type-checking each
/// row against the schema (nulls are allowed in any column).
class RelationBuilder {
 public:
  explicit RelationBuilder(SchemaPtr schema);

  /// Appends a row after checking arity and column types.
  Status AddRow(Tuple row);

  /// Appends a row without checks. Only for operators that construct rows
  /// directly from already-checked relations (hot path).
  void AddRowUnchecked(Tuple row);

  /// Appends an already-shared row without checks or copies — the tuple is
  /// referenced, not duplicated. Callers must pass rows of a relation with
  /// a compatible schema.
  void AddRowShared(TuplePtr row);

  /// Reserves capacity for `n` rows.
  void Reserve(size_t n);

  size_t num_rows() const { return relation_->rows_.size(); }
  const SchemaPtr& schema() const { return relation_->schema_; }

  /// Finishes and returns the relation; the builder is left empty.
  RelationPtr Build();

 private:
  std::shared_ptr<Relation> relation_;
};

/// Convenience: builds a relation from columns and rows, failing on any
/// schema or type mismatch.
Result<RelationPtr> MakeRelation(std::vector<Column> columns, std::vector<Tuple> rows);

/// Row-splice helpers for the delta-maintenance path (dataflow/delta.h).
/// Each returns a new relation byte-identical to rebuilding the input with
/// the one-row edit applied; the input is untouched. The edited tuple is
/// type-checked against the schema; unchanged rows are *shared* with the
/// input (pointer copies), which is what keeps single-row §8 updates cheap
/// on large tables. For inserts, `row` may equal num_rows() (append).
Result<RelationPtr> WithRowReplaced(const RelationPtr& input, size_t row, Tuple tuple);
Result<RelationPtr> WithRowInserted(const RelationPtr& input, size_t row, Tuple tuple);
Result<RelationPtr> WithRowErased(const RelationPtr& input, size_t row);

/// Structural equality: same schema, same rows in the same order.
bool RelationEquals(const Relation& a, const Relation& b);

}  // namespace tioga2::db

#endif  // TIOGA2_DB_RELATION_H_
