#include "db/aggregates.h"

#include <unordered_map>
#include <utility>

#include "common/str_util.h"

namespace tioga2::db {

using types::DataType;
using types::Value;

std::string AggFnToString(AggFn fn) {
  switch (fn) {
    case AggFn::kCount: return "count";
    case AggFn::kSum: return "sum";
    case AggFn::kAvg: return "avg";
    case AggFn::kMin: return "min";
    case AggFn::kMax: return "max";
  }
  return "?";
}

bool AggFnFromString(const std::string& text, AggFn* out) {
  static constexpr std::pair<const char*, AggFn> kNames[] = {
      {"count", AggFn::kCount}, {"sum", AggFn::kSum}, {"avg", AggFn::kAvg},
      {"min", AggFn::kMin},     {"max", AggFn::kMax},
  };
  for (const auto& [name, fn] : kNames) {
    if (text == name) {
      *out = fn;
      return true;
    }
  }
  return false;
}

Result<std::string> TupleKey(const Tuple& tuple, const std::vector<size_t>& columns) {
  std::string key;
  for (size_t c : columns) {
    if (c >= tuple.size()) return Status::Internal("TupleKey column out of range");
    const Value& v = tuple[c];
    if (v.is_null()) {
      key += "\x01n";
    } else if (v.is_int() || v.is_float()) {
      // Unify 2 and 2.0.
      key += "\x01#" + FormatDouble(v.AsDouble());
    } else if (v.is_display()) {
      return Status::TypeError("display values cannot be grouping keys");
    } else {
      key += "\x01v" + v.ToString();
    }
  }
  return key;
}

namespace {

/// Running state of one aggregate within one group.
struct AggState {
  int64_t count = 0;
  double sum = 0;
  Value extreme;  // min or max so far
};

DataType AggResultType(const AggSpec& spec, DataType column_type) {
  switch (spec.fn) {
    case AggFn::kCount:
      return DataType::kInt;
    case AggFn::kSum:
    case AggFn::kAvg:
      return DataType::kFloat;
    case AggFn::kMin:
    case AggFn::kMax:
      return column_type;
  }
  return DataType::kFloat;
}

}  // namespace

Result<RelationPtr> GroupBy(const RelationPtr& input,
                            const std::vector<std::string>& keys,
                            const std::vector<AggSpec>& aggs) {
  const Schema& schema = *input->schema();
  std::vector<size_t> key_columns;
  std::vector<Column> out_columns;
  for (const std::string& key : keys) {
    TIOGA2_ASSIGN_OR_RETURN(size_t index, schema.ColumnIndex(key));
    if (schema.column(index).type == DataType::kDisplay) {
      return Status::TypeError("display column '" + key + "' cannot be a grouping key");
    }
    key_columns.push_back(index);
    out_columns.push_back(schema.column(index));
  }
  std::vector<size_t> agg_columns;
  for (const AggSpec& spec : aggs) {
    if (spec.output_name.empty()) {
      return Status::InvalidArgument("aggregate output name must be non-empty");
    }
    size_t index = 0;
    DataType column_type = DataType::kInt;
    if (spec.fn != AggFn::kCount) {
      TIOGA2_ASSIGN_OR_RETURN(index, schema.ColumnIndex(spec.column));
      column_type = schema.column(index).type;
      if (spec.fn == AggFn::kSum || spec.fn == AggFn::kAvg) {
        if (!types::IsNumericType(column_type)) {
          return Status::TypeError(AggFnToString(spec.fn) + "(" + spec.column +
                                   ") needs a numeric column");
        }
      } else if (column_type == DataType::kDisplay) {
        return Status::TypeError("display columns cannot be aggregated");
      }
    }
    agg_columns.push_back(index);
    out_columns.push_back(Column{spec.output_name, AggResultType(spec, column_type)});
  }
  TIOGA2_ASSIGN_OR_RETURN(Schema out_schema, Schema::Make(std::move(out_columns)));

  struct Group {
    Tuple key_values;
    std::vector<AggState> states;
  };
  std::unordered_map<std::string, size_t> index_by_key;
  std::vector<Group> groups;
  for (size_t r = 0; r < input->num_rows(); ++r) {
    const Tuple& row = input->row(r);
    TIOGA2_ASSIGN_OR_RETURN(std::string key, TupleKey(row, key_columns));
    auto [it, inserted] = index_by_key.emplace(key, groups.size());
    if (inserted) {
      Group group;
      for (size_t c : key_columns) group.key_values.push_back(row[c]);
      group.states.resize(aggs.size());
      groups.push_back(std::move(group));
    }
    Group& group = groups[it->second];
    for (size_t a = 0; a < aggs.size(); ++a) {
      AggState& state = group.states[a];
      if (aggs[a].fn == AggFn::kCount) {
        ++state.count;
        continue;
      }
      const Value& v = row[agg_columns[a]];
      if (v.is_null()) continue;
      switch (aggs[a].fn) {
        case AggFn::kSum:
        case AggFn::kAvg:
          state.sum += v.AsDouble();
          ++state.count;
          break;
        case AggFn::kMin:
        case AggFn::kMax: {
          if (state.count == 0) {
            state.extreme = v;
          } else {
            TIOGA2_ASSIGN_OR_RETURN(int cmp, v.Compare(state.extreme));
            if ((aggs[a].fn == AggFn::kMin && cmp < 0) ||
                (aggs[a].fn == AggFn::kMax && cmp > 0)) {
              state.extreme = v;
            }
          }
          ++state.count;
          break;
        }
        case AggFn::kCount:
          break;
      }
    }
  }

  RelationBuilder builder(std::make_shared<const Schema>(std::move(out_schema)));
  builder.Reserve(groups.size());
  for (const Group& group : groups) {
    Tuple row = group.key_values;
    for (size_t a = 0; a < aggs.size(); ++a) {
      const AggState& state = group.states[a];
      switch (aggs[a].fn) {
        case AggFn::kCount:
          row.push_back(Value::Int(state.count));
          break;
        case AggFn::kSum:
          row.push_back(state.count == 0 ? Value::Null() : Value::Float(state.sum));
          break;
        case AggFn::kAvg:
          row.push_back(state.count == 0
                            ? Value::Null()
                            : Value::Float(state.sum / static_cast<double>(state.count)));
          break;
        case AggFn::kMin:
        case AggFn::kMax:
          row.push_back(state.count == 0 ? Value::Null() : state.extreme);
          break;
      }
    }
    builder.AddRowUnchecked(std::move(row));
  }
  return builder.Build();
}

Result<RelationPtr> Distinct(const RelationPtr& input) {
  std::vector<size_t> all_columns(input->schema()->num_columns());
  for (size_t i = 0; i < all_columns.size(); ++i) all_columns[i] = i;
  std::unordered_map<std::string, bool> seen;
  RelationBuilder builder(input->schema());
  for (size_t r = 0; r < input->num_rows(); ++r) {
    TIOGA2_ASSIGN_OR_RETURN(std::string key, TupleKey(input->row(r), all_columns));
    if (seen.emplace(std::move(key), true).second) {
      builder.AddRowShared(input->row_ptr(r));
    }
  }
  return builder.Build();
}

Result<RelationPtr> UnionAll(const RelationPtr& first, const RelationPtr& second) {
  if (!(*first->schema() == *second->schema())) {
    return Status::TypeError("UnionAll needs identical schemas: " +
                             first->schema()->ToString() + " vs " +
                             second->schema()->ToString());
  }
  RelationBuilder builder(first->schema());
  builder.Reserve(first->num_rows() + second->num_rows());
  for (const TuplePtr& row : first->row_ptrs()) builder.AddRowShared(row);
  for (const TuplePtr& row : second->row_ptrs()) builder.AddRowShared(row);
  return builder.Build();
}

}  // namespace tioga2::db
