#include "db/aggregates.h"

#include <cstring>
#include <unordered_map>
#include <utility>

#include "common/str_util.h"
#include "db/columnar.h"

namespace tioga2::db {

using types::DataType;
using types::Value;

std::string AggFnToString(AggFn fn) {
  switch (fn) {
    case AggFn::kCount: return "count";
    case AggFn::kSum: return "sum";
    case AggFn::kAvg: return "avg";
    case AggFn::kMin: return "min";
    case AggFn::kMax: return "max";
  }
  return "?";
}

bool AggFnFromString(const std::string& text, AggFn* out) {
  static constexpr std::pair<const char*, AggFn> kNames[] = {
      {"count", AggFn::kCount}, {"sum", AggFn::kSum}, {"avg", AggFn::kAvg},
      {"min", AggFn::kMin},     {"max", AggFn::kMax},
  };
  for (const auto& [name, fn] : kNames) {
    if (text == name) {
      *out = fn;
      return true;
    }
  }
  return false;
}

Result<std::string> TupleKey(const Tuple& tuple, const std::vector<size_t>& columns) {
  std::string key;
  for (size_t c : columns) {
    if (c >= tuple.size()) return Status::Internal("TupleKey column out of range");
    const Value& v = tuple[c];
    if (v.is_null()) {
      key += "\x01n";
    } else if (v.is_int() || v.is_float()) {
      // Unify 2 and 2.0.
      key += "\x01#" + FormatDouble(v.AsDouble());
    } else if (v.is_display()) {
      return Status::TypeError("display values cannot be grouping keys");
    } else {
      key += "\x01v" + v.ToString();
    }
  }
  return key;
}

namespace {

/// Running state of one aggregate within one group.
struct AggState {
  int64_t count = 0;
  double sum = 0;
  Value extreme;  // min or max so far
};

DataType AggResultType(const AggSpec& spec, DataType column_type) {
  switch (spec.fn) {
    case AggFn::kCount:
      return DataType::kInt;
    case AggFn::kSum:
    case AggFn::kAvg:
      return DataType::kFloat;
    case AggFn::kMin:
    case AggFn::kMax:
      return column_type;
  }
  return DataType::kFloat;
}

// ---------------------------------------------------------------------------
// Columnar group-by fast path.
//
// The scalar loop groups rows by TupleKey — per column "\x01n" for null,
// "\x01#" + FormatDouble(AsDouble) for numerics, "\x01v" + ToString
// otherwise. The columnar path must group *exactly* the same way, so a key
// column is eligible only when per-cell canonical equality provably matches
// TupleKey string equality:
//   kInt  — FormatDouble is injective per double, so key equality ⇔ equality
//           of the ints' double images (ints beyond 2^53 that round together
//           collapse into one group on both paths).
//   kBool / kDate — ToString is injective per stored value.
//   kString with a dictionary — equality ⇔ code equality. The TupleKey cell
//           is "\x01v" + QuoteString(value), which is injective per value
//           (interior quotes are escaped, so no value can forge a cell
//           boundary). Distinct values containing the '\x01' tag byte are
//           still declined as a conservative guard: they are vanishingly
//           rare in categorical data, and falling back keeps the scalar
//           oracle authoritative for any concatenation subtlety.
//   kFloat — ineligible: FormatDouble("-0") ≠ "0" yet -0.0 == 0.0, and every
//           NaN formats as "nan" yet compares unequal, so the double image
//           diverges from the string image both ways.
// Group order is first appearance on both paths, aggregate accumulation runs
// in the same row order with the same double arithmetic, and min/max track
// the winning *row* so the output Value round-trips bit-identically through
// ColumnVector::ValueAt.

inline uint64_t MixHash64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

bool ColumnarGroupKeysEligible(const Relation& input,
                               const std::vector<size_t>& key_columns,
                               std::vector<const ColumnVector*>* cols) {
  for (size_t c : key_columns) {
    const ColumnVector& col = input.columnar().column(c);
    switch (col.type) {
      case DataType::kInt:
      case DataType::kBool:
      case DataType::kDate:
        break;
      case DataType::kString:
        if (!col.has_dict()) return false;
        for (const std::string& s : *col.dict_values) {
          if (s.find('\x01') != std::string::npos) return false;
        }
        break;
      case DataType::kFloat:
      case DataType::kDisplay:
        return false;
    }
    cols->push_back(&col);
  }
  return true;
}

uint64_t HashKeyRow(const std::vector<const ColumnVector*>& cols, size_t r) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const ColumnVector* col : cols) {
    uint64_t cell = 0;
    if (col->IsNull(r)) {
      cell = 0x9ae16a3b2f90404fULL;
    } else {
      switch (col->type) {
        case DataType::kInt: {
          // Hash the double image so ints that group together hash together.
          const double d = static_cast<double>(col->ints[r]);
          std::memcpy(&cell, &d, sizeof(cell));
          break;
        }
        case DataType::kBool:
          cell = col->bools[r] != 0 ? 1 : 2;
          break;
        case DataType::kDate:
          cell = static_cast<uint64_t>(col->dates[r]) ^ 0xe7037ed1a0b428dbULL;
          break;
        default:  // kString with a dictionary (eligibility guarantees it)
          cell = static_cast<uint64_t>(col->dict_codes[r]) ^
                 0x8ebc6af09c88c6e3ULL;
          break;
      }
    }
    h = MixHash64(h ^ MixHash64(cell));
  }
  return h;
}

bool KeysEqualRows(const std::vector<const ColumnVector*>& cols, size_t a,
                   size_t b) {
  for (const ColumnVector* col : cols) {
    const bool an = col->IsNull(a);
    const bool bn = col->IsNull(b);
    if (an != bn) return false;
    if (an) continue;
    switch (col->type) {
      case DataType::kInt:
        if (static_cast<double>(col->ints[a]) !=
            static_cast<double>(col->ints[b])) {
          return false;
        }
        break;
      case DataType::kBool:
        if ((col->bools[a] != 0) != (col->bools[b] != 0)) return false;
        break;
      case DataType::kDate:
        if (col->dates[a] != col->dates[b]) return false;
        break;
      default:
        if (col->dict_codes[a] != col->dict_codes[b]) return false;
        break;
    }
  }
  return true;
}

/// Three-way compare of two cells of one column, mirroring Value::Compare's
/// `a < b ? -1 : (a > b ? 1 : 0)` construction exactly (numerics compare as
/// double including int pairs; a NaN operand yields 0, so min/max keep the
/// earlier row — same as the scalar loop). Dictionary string cells compare
/// codes, valid because code order == string order.
int CompareCells(const ColumnVector& col, size_t a, size_t b) {
  switch (col.type) {
    case DataType::kInt: {
      const double x = static_cast<double>(col.ints[a]);
      const double y = static_cast<double>(col.ints[b]);
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case DataType::kFloat: {
      const double x = col.floats[a];
      const double y = col.floats[b];
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case DataType::kBool: {
      const int x = col.bools[a] != 0 ? 1 : 0;
      const int y = col.bools[b] != 0 ? 1 : 0;
      return x - y;
    }
    case DataType::kDate: {
      const int64_t x = col.dates[a];
      const int64_t y = col.dates[b];
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case DataType::kString: {
      if (col.has_dict()) {
        const uint32_t x = col.dict_codes[a];
        const uint32_t y = col.dict_codes[b];
        return x < y ? -1 : (x > y ? 1 : 0);
      }
      const int c = col.strings[a].compare(col.strings[b]);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case DataType::kDisplay:
      break;  // rejected during validation
  }
  return 0;
}

Result<RelationPtr> GroupByColumnar(const RelationPtr& input,
                                    const std::vector<const ColumnVector*>& key_cols,
                                    const std::vector<AggSpec>& aggs,
                                    const std::vector<size_t>& agg_columns,
                                    SchemaPtr out_schema) {
  struct ColAggState {
    int64_t count = 0;
    double sum = 0;
    uint32_t extreme_row = 0;  // row holding the min/max so far
  };
  struct ColGroup {
    uint32_t rep = 0;  // first row of the group (key values read from here)
    std::vector<ColAggState> states;
  };

  std::vector<const ColumnVector*> agg_cols(aggs.size(), nullptr);
  for (size_t a = 0; a < aggs.size(); ++a) {
    if (aggs[a].fn != AggFn::kCount) {
      agg_cols[a] = &input->columnar().column(agg_columns[a]);
    }
  }

  std::unordered_map<uint64_t, std::vector<size_t>> buckets;
  std::vector<ColGroup> groups;
  const size_t num_rows = input->num_rows();
  for (size_t r = 0; r < num_rows; ++r) {
    const uint64_t h = HashKeyRow(key_cols, r);
    std::vector<size_t>& chain = buckets[h];
    size_t gi = SIZE_MAX;
    for (size_t g : chain) {
      if (KeysEqualRows(key_cols, r, groups[g].rep)) {
        gi = g;
        break;
      }
    }
    if (gi == SIZE_MAX) {
      gi = groups.size();
      chain.push_back(gi);
      ColGroup group;
      group.rep = static_cast<uint32_t>(r);
      group.states.resize(aggs.size());
      groups.push_back(std::move(group));
    }
    ColGroup& group = groups[gi];
    for (size_t a = 0; a < aggs.size(); ++a) {
      ColAggState& state = group.states[a];
      if (aggs[a].fn == AggFn::kCount) {
        ++state.count;
        continue;
      }
      const ColumnVector& col = *agg_cols[a];
      if (col.IsNull(r)) continue;
      switch (aggs[a].fn) {
        case AggFn::kSum:
        case AggFn::kAvg:
          state.sum += col.type == DataType::kInt
                           ? static_cast<double>(col.ints[r])
                           : col.floats[r];
          ++state.count;
          break;
        case AggFn::kMin:
        case AggFn::kMax: {
          if (state.count == 0) {
            state.extreme_row = static_cast<uint32_t>(r);
          } else {
            const int cmp = CompareCells(col, r, state.extreme_row);
            if ((aggs[a].fn == AggFn::kMin && cmp < 0) ||
                (aggs[a].fn == AggFn::kMax && cmp > 0)) {
              state.extreme_row = static_cast<uint32_t>(r);
            }
          }
          ++state.count;
          break;
        }
        case AggFn::kCount:
          break;
      }
    }
  }

  RelationBuilder builder(std::move(out_schema));
  builder.Reserve(groups.size());
  for (const ColGroup& group : groups) {
    Tuple row;
    row.reserve(key_cols.size() + aggs.size());
    for (const ColumnVector* col : key_cols) {
      row.push_back(col->ValueAt(group.rep));
    }
    for (size_t a = 0; a < aggs.size(); ++a) {
      const ColAggState& state = group.states[a];
      switch (aggs[a].fn) {
        case AggFn::kCount:
          row.push_back(Value::Int(state.count));
          break;
        case AggFn::kSum:
          row.push_back(state.count == 0 ? Value::Null() : Value::Float(state.sum));
          break;
        case AggFn::kAvg:
          row.push_back(state.count == 0
                            ? Value::Null()
                            : Value::Float(state.sum / static_cast<double>(state.count)));
          break;
        case AggFn::kMin:
        case AggFn::kMax:
          row.push_back(state.count == 0 ? Value::Null()
                                         : agg_cols[a]->ValueAt(state.extreme_row));
          break;
      }
    }
    builder.AddRowUnchecked(std::move(row));
  }
  return builder.Build();
}

}  // namespace

Result<RelationPtr> GroupBy(const RelationPtr& input,
                            const std::vector<std::string>& keys,
                            const std::vector<AggSpec>& aggs,
                            const ExecPolicy& policy) {
  const Schema& schema = *input->schema();
  std::vector<size_t> key_columns;
  std::vector<Column> out_columns;
  for (const std::string& key : keys) {
    TIOGA2_ASSIGN_OR_RETURN(size_t index, schema.ColumnIndex(key));
    if (schema.column(index).type == DataType::kDisplay) {
      return Status::TypeError("display column '" + key + "' cannot be a grouping key");
    }
    key_columns.push_back(index);
    out_columns.push_back(schema.column(index));
  }
  std::vector<size_t> agg_columns;
  for (const AggSpec& spec : aggs) {
    if (spec.output_name.empty()) {
      return Status::InvalidArgument("aggregate output name must be non-empty");
    }
    size_t index = 0;
    DataType column_type = DataType::kInt;
    if (spec.fn != AggFn::kCount) {
      TIOGA2_ASSIGN_OR_RETURN(index, schema.ColumnIndex(spec.column));
      column_type = schema.column(index).type;
      if (spec.fn == AggFn::kSum || spec.fn == AggFn::kAvg) {
        if (!types::IsNumericType(column_type)) {
          return Status::TypeError(AggFnToString(spec.fn) + "(" + spec.column +
                                   ") needs a numeric column");
        }
      } else if (column_type == DataType::kDisplay) {
        return Status::TypeError("display columns cannot be aggregated");
      }
    }
    agg_columns.push_back(index);
    out_columns.push_back(Column{spec.output_name, AggResultType(spec, column_type)});
  }
  TIOGA2_ASSIGN_OR_RETURN(Schema out_schema, Schema::Make(std::move(out_columns)));

  if (policy.vectorized) {
    std::vector<const ColumnVector*> key_cols;
    if (ColumnarGroupKeysEligible(*input, key_columns, &key_cols)) {
      return GroupByColumnar(input, key_cols, aggs, agg_columns,
                             std::make_shared<const Schema>(std::move(out_schema)));
    }
  }

  struct Group {
    Tuple key_values;
    std::vector<AggState> states;
  };
  std::unordered_map<std::string, size_t> index_by_key;
  std::vector<Group> groups;
  for (size_t r = 0; r < input->num_rows(); ++r) {
    const Tuple& row = input->row(r);
    TIOGA2_ASSIGN_OR_RETURN(std::string key, TupleKey(row, key_columns));
    auto [it, inserted] = index_by_key.emplace(key, groups.size());
    if (inserted) {
      Group group;
      for (size_t c : key_columns) group.key_values.push_back(row[c]);
      group.states.resize(aggs.size());
      groups.push_back(std::move(group));
    }
    Group& group = groups[it->second];
    for (size_t a = 0; a < aggs.size(); ++a) {
      AggState& state = group.states[a];
      if (aggs[a].fn == AggFn::kCount) {
        ++state.count;
        continue;
      }
      const Value& v = row[agg_columns[a]];
      if (v.is_null()) continue;
      switch (aggs[a].fn) {
        case AggFn::kSum:
        case AggFn::kAvg:
          state.sum += v.AsDouble();
          ++state.count;
          break;
        case AggFn::kMin:
        case AggFn::kMax: {
          if (state.count == 0) {
            state.extreme = v;
          } else {
            TIOGA2_ASSIGN_OR_RETURN(int cmp, v.Compare(state.extreme));
            if ((aggs[a].fn == AggFn::kMin && cmp < 0) ||
                (aggs[a].fn == AggFn::kMax && cmp > 0)) {
              state.extreme = v;
            }
          }
          ++state.count;
          break;
        }
        case AggFn::kCount:
          break;
      }
    }
  }

  RelationBuilder builder(std::make_shared<const Schema>(std::move(out_schema)));
  builder.Reserve(groups.size());
  for (const Group& group : groups) {
    Tuple row = group.key_values;
    for (size_t a = 0; a < aggs.size(); ++a) {
      const AggState& state = group.states[a];
      switch (aggs[a].fn) {
        case AggFn::kCount:
          row.push_back(Value::Int(state.count));
          break;
        case AggFn::kSum:
          row.push_back(state.count == 0 ? Value::Null() : Value::Float(state.sum));
          break;
        case AggFn::kAvg:
          row.push_back(state.count == 0
                            ? Value::Null()
                            : Value::Float(state.sum / static_cast<double>(state.count)));
          break;
        case AggFn::kMin:
        case AggFn::kMax:
          row.push_back(state.count == 0 ? Value::Null() : state.extreme);
          break;
      }
    }
    builder.AddRowUnchecked(std::move(row));
  }
  return builder.Build();
}

Result<RelationPtr> Distinct(const RelationPtr& input) {
  std::vector<size_t> all_columns(input->schema()->num_columns());
  for (size_t i = 0; i < all_columns.size(); ++i) all_columns[i] = i;
  std::unordered_map<std::string, bool> seen;
  RelationBuilder builder(input->schema());
  for (size_t r = 0; r < input->num_rows(); ++r) {
    TIOGA2_ASSIGN_OR_RETURN(std::string key, TupleKey(input->row(r), all_columns));
    if (seen.emplace(std::move(key), true).second) {
      builder.AddRowShared(input->row_ptr(r));
    }
  }
  return builder.Build();
}

Result<RelationPtr> UnionAll(const RelationPtr& first, const RelationPtr& second) {
  if (!(*first->schema() == *second->schema())) {
    return Status::TypeError("UnionAll needs identical schemas: " +
                             first->schema()->ToString() + " vs " +
                             second->schema()->ToString());
  }
  RelationBuilder builder(first->schema());
  builder.Reserve(first->num_rows() + second->num_rows());
  for (const TuplePtr& row : first->row_ptrs()) builder.AddRowShared(row);
  for (const TuplePtr& row : second->row_ptrs()) builder.AddRowShared(row);
  return builder.Build();
}

}  // namespace tioga2::db
